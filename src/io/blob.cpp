#include "io/blob.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <utility>

#include "fault/fault.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/posix_io.hpp"

namespace wm::blob {

namespace {

// ---- little-endian scalar plumbing ----------------------------------
// Raw IEEE bits for doubles (bit-exact round trips); explicit byte
// order for integers so a blob compiled on any host maps on any other.

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

std::uint32_t read_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t read_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

/// Bounds-checked cursor over one section's payload. Every decode
/// failure names the blob's section so a truncated record is a loud,
/// attributable rejection rather than a read past the mapping.
struct Cursor {
  const std::uint8_t* p;
  std::size_t left;
  const char* what;

  void need(std::size_t n) const {
    if (left < n) {
      throw Error(std::string("blob: truncated \"") + what +
                  "\" section (needed " + std::to_string(n) +
                  " more byte(s))");
    }
  }
  std::uint32_t u32() {
    need(4);
    const std::uint32_t v = read_u32(p);
    p += 4;
    left -= 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    const std::uint64_t v = read_u64(p);
    p += 8;
    left -= 8;
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(p), n);
    p += n;
    left -= n;
    return s;
  }
};

// ---- waveform / LUT record codecs -----------------------------------

void put_waveform(std::vector<std::uint8_t>& out, const Waveform& w) {
  put_u64(out, w.size());
  if (w.empty()) return;  // identically-zero waveform: no grid to keep
  put_f64(out, w.t0());
  put_f64(out, w.dt());
  for (std::size_t i = 0; i < w.size(); ++i) put_f64(out, w[i]);
}

Waveform read_waveform(Cursor& c) {
  const std::uint64_t n = c.u64();
  if (n == 0) return Waveform();
  const double t0 = c.f64();
  const double dt = c.f64();
  std::vector<double> samples;
  samples.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) samples.push_back(c.f64());
  return Waveform(t0, dt, std::move(samples));
}

void put_doubles(std::vector<std::uint8_t>& out,
                 const std::vector<double>& xs) {
  put_u32(out, static_cast<std::uint32_t>(xs.size()));
  for (double x : xs) put_f64(out, x);
}

std::vector<double> read_doubles(Cursor& c) {
  const std::uint32_t n = c.u32();
  std::vector<double> xs;
  xs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) xs.push_back(c.f64());
  return xs;
}

std::string offset_error(const std::string& path, std::size_t offset,
                         const std::string& what) {
  return "blob: " + path + ": " + what + " at offset " +
         std::to_string(offset);
}

} // namespace

// ---- Writer ---------------------------------------------------------

void Writer::add_section(std::string_view name,
                         std::vector<std::uint8_t> bytes) {
  WM_REQUIRE(!name.empty() && name.size() < kSectionNameBytes,
             "blob: section name must be 1..15 bytes");
  for (const Section& s : sections_) {
    WM_REQUIRE(s.name != name, "blob: duplicate section \"" +
                                   std::string(name) + "\"");
  }
  sections_.push_back({std::string(name), std::move(bytes)});
}

std::vector<std::uint8_t> Writer::to_bytes() const {
  const std::size_t table_bytes = sections_.size() * kSectionEntryBytes;
  std::size_t total = kHeaderBytes + table_bytes + 4;
  for (const Section& s : sections_) total += s.bytes.size();

  std::vector<std::uint8_t> out;
  out.reserve(total);
  out.insert(out.end(), kBlobMagic.begin(), kBlobMagic.end());
  put_u32(out, kBlobVersion);
  put_u32(out, static_cast<std::uint32_t>(sections_.size()));
  put_u64(out, total);
  std::size_t off = kHeaderBytes + table_bytes;
  for (const Section& s : sections_) {
    std::uint8_t name[kSectionNameBytes] = {};
    std::memcpy(name, s.name.data(), s.name.size());
    out.insert(out.end(), name, name + kSectionNameBytes);
    put_u64(out, off);
    put_u64(out, s.bytes.size());
    off += s.bytes.size();
  }
  for (const Section& s : sections_) {
    out.insert(out.end(), s.bytes.begin(), s.bytes.end());
  }
  put_u32(out, crc32(out.data(), out.size()));
  return out;
}

void Writer::save(const std::string& path) const {
  const std::vector<std::uint8_t> image = to_bytes();
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw Error("blob: cannot open " + tmp + " for write");
  }
  const bool wrote =
      write_all(fd, image.data(), image.size()) && ::fsync(fd) == 0;
  ::close(fd);
  if (!wrote || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("blob: write failed for " + path);
  }
}

// ---- View -----------------------------------------------------------

View::View(View&& other) noexcept
    : path_(std::move(other.path_)),
      data_(other.data_),
      size_(other.size_),
      entries_(std::move(other.entries_)) {
  other.data_ = nullptr;
  other.size_ = 0;
}

View& View::operator=(View&& other) noexcept {
  if (this != &other) {
    this->~View();
    new (this) View(std::move(other));
  }
  return *this;
}

View::~View() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
    data_ = nullptr;
  }
}

View View::map(const std::string& path) {
  // Chaos hook: an armed io.blob_corrupt makes this map fail exactly
  // like real corruption would, so the pool's loud-rejection path is
  // testable without hand-flipping bits on disk.
  fault::inject("io.blob_corrupt");

  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw Error("blob: cannot open " + path);
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw Error("blob: cannot stat " + path);
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size < kHeaderBytes + 4) {
    ::close(fd);
    throw Error("blob: " + path + ": short file (" +
                std::to_string(size) + " bytes, header needs " +
                std::to_string(kHeaderBytes + 4) + ")");
  }
  void* mem = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (mem == MAP_FAILED) {
    throw Error("blob: cannot mmap " + path);
  }
  View v;
  v.path_ = path;
  v.data_ = static_cast<const std::uint8_t*>(mem);
  v.size_ = size;

  // Validation order matters for the error offsets the negative corpus
  // pins: magic, version, section count, declared size, CRC, table.
  if (std::memcmp(v.data_, kBlobMagic.data(), kBlobMagic.size()) != 0) {
    throw Error(offset_error(path, 0, "bad magic"));
  }
  const std::uint32_t version = read_u32(v.data_ + 8);
  if (version != kBlobVersion) {
    throw Error(offset_error(path, 8,
                             "unsupported version " +
                                 std::to_string(version) + " (want " +
                                 std::to_string(kBlobVersion) + ")"));
  }
  const std::uint32_t n_sections = read_u32(v.data_ + 12);
  if (n_sections > kMaxSections) {
    throw Error(offset_error(path, 12,
                             "section count " +
                                 std::to_string(n_sections) +
                                 " out of range"));
  }
  const std::uint64_t declared = read_u64(v.data_ + 16);
  if (declared != size) {
    throw Error(offset_error(
        path, 16,
        "file size mismatch (header says " + std::to_string(declared) +
            ", file is " + std::to_string(size) + " bytes)"));
  }
  const std::size_t payload_end = size - 4;
  const std::uint32_t want = read_u32(v.data_ + payload_end);
  const std::uint32_t got = crc32(v.data_, payload_end);
  if (want != got) {
    throw Error(offset_error(path, payload_end, "CRC mismatch"));
  }
  const std::size_t table_end =
      kHeaderBytes +
      static_cast<std::size_t>(n_sections) * kSectionEntryBytes;
  if (table_end > payload_end) {
    throw Error(offset_error(path, kHeaderBytes,
                             "truncated section table"));
  }
  for (std::uint32_t i = 0; i < n_sections; ++i) {
    const std::size_t entry = kHeaderBytes + i * kSectionEntryBytes;
    const std::uint8_t* p = v.data_ + entry;
    const std::size_t name_len =
        ::strnlen(reinterpret_cast<const char*>(p), kSectionNameBytes);
    if (name_len == 0 || name_len == kSectionNameBytes) {
      throw Error(offset_error(path, entry, "bad section name"));
    }
    Entry e;
    e.name.assign(reinterpret_cast<const char*>(p), name_len);
    e.off = read_u64(p + kSectionNameBytes);
    e.size = read_u64(p + kSectionNameBytes + 8);
    if (e.off < table_end || e.off > payload_end ||
        e.size > payload_end - e.off) {
      throw Error(offset_error(path, entry,
                               "section \"" + e.name +
                                   "\" out of bounds"));
    }
    v.entries_.push_back(std::move(e));
  }
  return v;
}

const std::uint8_t* View::section(std::string_view name,
                                  std::size_t* size) const {
  for (const Entry& e : entries_) {
    if (e.name == name) {
      if (size != nullptr) *size = e.size;
      return data_ + e.off;
    }
  }
  return nullptr;
}

// ---- library / LUT (de)serialization --------------------------------

namespace {

std::vector<std::uint8_t> encode_library(const CellLibrary& lib) {
  std::vector<std::uint8_t> out;
  put_u32(out, static_cast<std::uint32_t>(lib.cells().size()));
  for (const Cell& c : lib.cells()) {
    put_str(out, c.name);
    put_u32(out, static_cast<std::uint32_t>(c.kind));
    put_u32(out, static_cast<std::uint32_t>(c.drive));
    put_f64(out, c.c_in);
    put_f64(out, c.c_self);
    put_f64(out, c.r_out);
    put_f64(out, c.d0);
    put_f64(out, c.slew0);
    put_f64(out, c.sc_frac);
    put_f64(out, c.adj_step);
    put_u32(out, static_cast<std::uint32_t>(c.adj_max_code));
  }
  return out;
}

std::vector<std::uint8_t> encode_charlut(const Characterizer& chr) {
  const CharacterizerOptions& o = chr.options();
  std::vector<std::uint8_t> out;
  put_doubles(out, o.load_bins);
  put_doubles(out, o.vdds);
  put_doubles(out, o.temps);
  put_f64(out, o.slew);
  put_f64(out, o.period);
  put_f64(out, o.dt);
  const auto& table = chr.table();
  // Cells in index order, so the restored table lines up with the
  // restored indices without a second pass.
  std::vector<std::string> names(table.size());
  for (const auto& [name, idx] : chr.cell_index()) names[idx] = name;
  put_u32(out, static_cast<std::uint32_t>(table.size()));
  for (std::size_t i = 0; i < table.size(); ++i) {
    put_str(out, names[i]);
    put_u32(out, static_cast<std::uint32_t>(table[i].size()));
    for (const CellWave& w : table[i]) {
      put_f64(out, w.timing.delay_rise);
      put_f64(out, w.timing.delay_fall);
      put_f64(out, w.timing.slew_rise);
      put_f64(out, w.timing.slew_fall);
      put_waveform(out, w.idd);
      put_waveform(out, w.iss);
    }
  }
  return out;
}

Cursor section_cursor(const View& view, const char* name) {
  std::size_t size = 0;
  const std::uint8_t* p = view.section(name, &size);
  if (p == nullptr) {
    throw Error("blob: " + view.path() + ": missing \"" +
                std::string(name) + "\" section");
  }
  return Cursor{p, size, name};
}

} // namespace

void write_blob(const std::string& path, const CellLibrary& lib,
                const Characterizer& chr) {
  Writer w;
  w.add_section("library", encode_library(lib));
  w.add_section("charlut", encode_charlut(chr));
  w.save(path);
}

CellLibrary load_library(const View& view) {
  Cursor c = section_cursor(view, "library");
  const std::uint32_t n = c.u32();
  CellLibrary lib;
  for (std::uint32_t i = 0; i < n; ++i) {
    Cell cell;
    cell.name = c.str();
    const std::uint32_t kind = c.u32();
    if (kind > static_cast<std::uint32_t>(CellKind::Adi)) {
      throw Error("blob: " + view.path() + ": cell \"" + cell.name +
                  "\" has unknown kind " + std::to_string(kind));
    }
    cell.kind = static_cast<CellKind>(kind);
    cell.drive = static_cast<int>(c.u32());
    cell.c_in = c.f64();
    cell.c_self = c.f64();
    cell.r_out = c.f64();
    cell.d0 = c.f64();
    cell.slew0 = c.f64();
    cell.sc_frac = c.f64();
    cell.adj_step = c.f64();
    cell.adj_max_code = static_cast<int>(c.u32());
    lib.add(std::move(cell));
  }
  return lib;
}

Characterizer load_characterizer(const View& view,
                                 const CellLibrary& lib) {
  Cursor c = section_cursor(view, "charlut");
  CharacterizerOptions opts;
  opts.load_bins = read_doubles(c);
  opts.vdds = read_doubles(c);
  opts.temps = read_doubles(c);
  opts.slew = c.f64();
  opts.period = c.f64();
  opts.dt = c.f64();
  const std::uint32_t n_cells = c.u32();
  const std::size_t want_waves =
      opts.load_bins.size() * opts.vdds.size() * opts.temps.size();
  std::unordered_map<std::string, std::size_t> index;
  std::vector<std::vector<CellWave>> table;
  table.reserve(n_cells);
  for (std::uint32_t i = 0; i < n_cells; ++i) {
    const std::string name = c.str();
    if (lib.find(name) == nullptr) {
      throw Error("blob: " + view.path() + ": LUT cell \"" + name +
                  "\" is not in the library");
    }
    const std::uint32_t n_waves = c.u32();
    if (n_waves != want_waves) {
      throw Error("blob: " + view.path() + ": cell \"" + name +
                  "\" has " + std::to_string(n_waves) +
                  " LUT entries, grid needs " +
                  std::to_string(want_waves));
    }
    std::vector<CellWave> waves;
    waves.reserve(n_waves);
    for (std::uint32_t wi = 0; wi < n_waves; ++wi) {
      CellWave w;
      w.timing.delay_rise = c.f64();
      w.timing.delay_fall = c.f64();
      w.timing.slew_rise = c.f64();
      w.timing.slew_fall = c.f64();
      w.idd = read_waveform(c);
      w.iss = read_waveform(c);
      waves.push_back(std::move(w));
    }
    index.emplace(name, table.size());
    table.push_back(std::move(waves));
  }
  for (const Cell& cell : lib.cells()) {
    if (index.find(cell.name) == index.end()) {
      throw Error("blob: " + view.path() + ": library cell \"" +
                  cell.name + "\" has no LUT entry");
    }
  }
  return Characterizer::restore(std::move(opts), std::move(index),
                                std::move(table));
}

} // namespace wm::blob
