#pragma once
// Plain-text serialization of clock trees and cell libraries.
//
// A production CTS tool has to interoperate: designs arrive from a
// synthesis flow and optimized trees go back into it. This module
// defines a small line-oriented format (".ctree") that round-trips
// everything the optimizer touches — topology, placement, wire lengths,
// route detours, cell bindings, sink loads, islands and per-mode ADB
// codes — plus a reader/writer for cell libraries so third-party cell
// data can be dropped in without recompiling.
//
// Format (one record per line, '#' comments, whitespace-separated):
//
//   ctree v1
//   node <id> <parent|-1> <cell> <x> <y> <wire_len> <route_extra>
//        <sink_cap> <island> [codes <c0> <c1> ...]
//
// Nodes must appear parent-before-child; ids must be dense 0..n-1 in
// file order (the arena layout). The cell column references the library
// by name.
//
//   celllib v1
//   cell <name> <kind> <drive> <c_in> <c_self> <r_out> <d0> <slew0>
//        <sc_frac> <adj_step> <adj_max_code>

#include <iosfwd>
#include <string>

#include "cells/library.hpp"
#include "tree/clock_tree.hpp"

namespace wm {

/// Serialize a tree (cells referenced by name).
void write_tree(std::ostream& os, const ClockTree& tree);
std::string tree_to_string(const ClockTree& tree);

/// Parse a tree; cell names are resolved against `lib`.
/// Throws wm::Error on malformed input or unknown cells. The readers
/// are hardened (docs/robustness.md): NaN/Inf fields, duplicate or
/// non-dense ids, parent-after-child order, truncated records,
/// oversized lines/files and unknown cells are all rejected with the
/// offending line (and field) named in the message.
ClockTree read_tree(std::istream& is, const CellLibrary& lib);
ClockTree tree_from_string(const std::string& text,
                           const CellLibrary& lib);

/// Serialize / parse a cell library.
void write_library(std::ostream& os, const CellLibrary& lib);
std::string library_to_string(const CellLibrary& lib);
CellLibrary read_library(std::istream& is);
CellLibrary library_from_string(const std::string& text);

/// File helpers (throw wm::Error on IO failure).
void save_tree(const std::string& path, const ClockTree& tree);
ClockTree load_tree(const std::string& path, const CellLibrary& lib);
void save_library(const std::string& path, const CellLibrary& lib);
CellLibrary load_library(const std::string& path);

} // namespace wm
