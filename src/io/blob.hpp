#pragma once
// wavemin.blob/v1 — mmap-able binary artifact holding the cell library
// and the characterization LUT (docs/serving.md "Shared artifacts").
//
// Characterization is the dominant per-attempt cost for small jobs:
// every fork-per-attempt worker re-simulates every cell x load bin x
// vdd x temperature before it can touch the design. The blob moves
// that work to build time: `wavemin_blobc` compiles a library once,
// and every pool worker maps the result read-only — the kernel shares
// one page-cache copy across the whole pool, and no worker ever
// simulates a cell again.
//
// Layout (little-endian, offsets in bytes):
//
//   [0..7]    magic  "WMBLOB1\n"
//   [8..11]   u32    format version (1)
//   [12..15]  u32    section count
//   [16..23]  u64    total file size (trailer included)
//   [24..]    section table: count x { char name[16], u64 off, u64 size }
//   ...       section payloads
//   [sz-4..]  u32    CRC-32 (IEEE) of every byte before the trailer
//
// Doubles are stored as raw IEEE-754 bits, so a LUT loaded from a blob
// is bit-identical to the one the compiler simulated — pool-mode
// results match fork-per-attempt results byte for byte.
//
// View::map validates magic, version, declared size, section bounds
// and the CRC before returning; every failure is a wm::Error naming
// the path and the byte offset of the problem (tests/io_negative_test
// pins the messages against the tests/data/bad_io corpus). Corruption
// is loud by design: a worker that maps a bad blob must die telling
// the operator which file to rebuild, never serve garbage timing.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cells/characterizer.hpp"
#include "cells/library.hpp"

namespace wm::blob {

inline constexpr std::string_view kBlobMagic = "WMBLOB1\n";
inline constexpr std::uint32_t kBlobVersion = 1;
inline constexpr std::size_t kHeaderBytes = 24;
inline constexpr std::size_t kSectionNameBytes = 16;
inline constexpr std::size_t kSectionEntryBytes = kSectionNameBytes + 16;
/// Sanity bound on the section count: a header claiming more sections
/// than this is corruption, not a big file.
inline constexpr std::uint32_t kMaxSections = 64;

/// Accumulates named sections and writes the framed, CRC-trailed file
/// via tmp + atomic rename. Section names longer than 15 bytes or
/// duplicated are a caller bug (wm::Error).
class Writer {
 public:
  void add_section(std::string_view name, std::vector<std::uint8_t> bytes);

  /// Serialize to `path + ".tmp"`, fsync, rename. Throws wm::Error on
  /// any I/O failure (the temp file is removed).
  void save(const std::string& path) const;

  /// The full framed image (header, table, payloads, CRC trailer).
  std::vector<std::uint8_t> to_bytes() const;

 private:
  struct Section {
    std::string name;
    std::vector<std::uint8_t> bytes;
  };
  std::vector<Section> sections_;
};

/// A validated, read-only mapping of one blob file. Move-only; the
/// mapping lives until destruction, so returned section pointers stay
/// valid for the View's lifetime.
class View {
 public:
  /// Open + mmap + validate. Throws wm::Error (path and offset named)
  /// on any structural problem; the io.blob_corrupt fault site injects
  /// here so the rejection path stays exercised.
  static View map(const std::string& path);

  View() = default;
  View(View&& other) noexcept;
  View& operator=(View&& other) noexcept;
  View(const View&) = delete;
  View& operator=(const View&) = delete;
  ~View();

  bool mapped() const { return data_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Payload pointer for a named section, or nullptr when absent.
  const std::uint8_t* section(std::string_view name,
                              std::size_t* size) const;

 private:
  std::string path_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  struct Entry {
    std::string name;
    std::size_t off = 0;
    std::size_t size = 0;
  };
  std::vector<Entry> entries_;
};

/// Compile `lib` + its characterization into a blob at `path`
/// (sections "library" and "charlut").
void write_blob(const std::string& path, const CellLibrary& lib,
                const Characterizer& chr);

/// Deserialize the "library" section. Throws wm::Error on a missing
/// section or a truncated/garbled record.
CellLibrary load_library(const View& view);

/// Deserialize the "charlut" section into a ready Characterizer (no
/// simulation runs; counts "cells.lut_restored"). The cell set must
/// match `lib` exactly — the blob is the library's artifact.
Characterizer load_characterizer(const View& view, const CellLibrary& lib);

} // namespace wm::blob
