#include "io/tree_io.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/error.hpp"

namespace wm {

namespace {

const char* kind_name(CellKind k) {
  switch (k) {
    case CellKind::Buffer: return "buffer";
    case CellKind::Inverter: return "inverter";
    case CellKind::Adb: return "adb";
    case CellKind::Adi: return "adi";
  }
  return "?";
}

CellKind kind_from(const std::string& s) {
  if (s == "buffer") return CellKind::Buffer;
  if (s == "inverter") return CellKind::Inverter;
  if (s == "adb") return CellKind::Adb;
  if (s == "adi") return CellKind::Adi;
  throw Error("unknown cell kind: " + s);
}

/// Next non-empty, non-comment line.
bool next_line(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    const auto pos = line.find('#');
    if (pos != std::string::npos) line.erase(pos);
    std::istringstream probe(line);
    std::string tok;
    if (probe >> tok) return true;
  }
  return false;
}

} // namespace

void write_tree(std::ostream& os, const ClockTree& tree) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "ctree v1\n";
  os << "# node <id> <parent> <cell> <x> <y> <wire_len> <route_extra> "
        "<sink_cap> <island> [codes ...]\n";
  // Emit in topological order with remapped dense ids so the file is
  // loadable regardless of how the in-memory arena was built.
  const auto order = tree.topological_order();
  std::vector<NodeId> remap(tree.size(), kNoNode);
  for (std::size_t i = 0; i < order.size(); ++i) {
    remap[static_cast<std::size_t>(order[i])] = static_cast<NodeId>(i);
  }
  for (const NodeId id : order) {
    const TreeNode& n = tree.node(id);
    const NodeId parent =
        n.parent == kNoNode ? kNoNode
                            : remap[static_cast<std::size_t>(n.parent)];
    os << "node " << remap[static_cast<std::size_t>(id)] << ' ' << parent
       << ' ' << n.cell->name << ' ' << n.pos.x << ' ' << n.pos.y << ' '
       << n.wire_len << ' ' << n.route_extra << ' ' << n.sink_cap << ' '
       << n.island;
    if (!n.adj_codes.empty()) {
      os << " codes";
      for (int c : n.adj_codes) os << ' ' << c;
    }
    if (!n.xor_negative.empty()) {
      os << " xor";
      for (std::uint8_t b : n.xor_negative) {
        os << ' ' << static_cast<int>(b);
      }
    }
    if (n.cell_extra_delay != 0.0) {
      os << " xtra " << n.cell_extra_delay;
    }
    os << '\n';
  }
}

std::string tree_to_string(const ClockTree& tree) {
  std::ostringstream os;
  write_tree(os, tree);
  return os.str();
}

ClockTree read_tree(std::istream& is, const CellLibrary& lib) {
  std::string line;
  WM_REQUIRE(next_line(is, line), "empty ctree input");
  {
    std::istringstream header(line);
    std::string magic, version;
    header >> magic >> version;
    WM_REQUIRE(magic == "ctree" && version == "v1",
               "not a ctree v1 file (header: '" + line + "')");
  }

  ClockTree tree;
  while (next_line(is, line)) {
    std::istringstream ls(line);
    std::string rec;
    ls >> rec;
    WM_REQUIRE(rec == "node", "unexpected record: " + rec);
    NodeId id = kNoNode, parent = kNoNode;
    std::string cell_name;
    Point pos;
    Um wire_len = 0.0;
    Ps route_extra = 0.0;
    Ff sink_cap = 0.0;
    int island = 0;
    ls >> id >> parent >> cell_name >> pos.x >> pos.y >> wire_len >>
        route_extra >> sink_cap >> island;
    WM_REQUIRE(!ls.fail(), "malformed node record: " + line);
    WM_REQUIRE(id == static_cast<NodeId>(tree.size()),
               "node ids must be dense and in order (got " +
                   std::to_string(id) + ")");
    const Cell& cell = lib.by_name(cell_name);
    NodeId created;
    if (parent == kNoNode) {
      WM_REQUIRE(tree.empty(), "multiple roots in ctree input");
      created = tree.add_root(pos, &cell);
    } else {
      created = tree.add_node(parent, pos, &cell, wire_len);
    }
    TreeNode& n = tree.node(created);
    n.wire_len = wire_len;
    n.route_extra = route_extra;
    n.sink_cap = sink_cap;
    n.island = island;
    std::string tok;
    while (ls >> tok) {
      if (tok == "codes") {
        int code;
        while (ls >> code) n.adj_codes.push_back(code);
        ls.clear();  // hit a non-integer (next keyword) or EOF
      } else if (tok == "xor") {
        int bit;
        while (ls >> bit) {
          n.xor_negative.push_back(static_cast<std::uint8_t>(bit));
        }
        ls.clear();
      } else if (tok == "xtra") {
        WM_REQUIRE(static_cast<bool>(ls >> n.cell_extra_delay),
                   "malformed xtra token: " + line);
      } else {
        throw Error("unexpected trailing token: " + tok);
      }
    }
  }
  WM_REQUIRE(!tree.empty(), "ctree input has no nodes");
  return tree;
}

ClockTree tree_from_string(const std::string& text,
                           const CellLibrary& lib) {
  std::istringstream is(text);
  return read_tree(is, lib);
}

void write_library(std::ostream& os, const CellLibrary& lib) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "celllib v1\n";
  os << "# cell <name> <kind> <drive> <c_in> <c_self> <r_out> <d0> "
        "<slew0> <sc_frac> <adj_step> <adj_max_code>\n";
  for (const Cell& c : lib.cells()) {
    os << "cell " << c.name << ' ' << kind_name(c.kind) << ' ' << c.drive
       << ' ' << c.c_in << ' ' << c.c_self << ' ' << c.r_out << ' '
       << c.d0 << ' ' << c.slew0 << ' ' << c.sc_frac << ' ' << c.adj_step
       << ' ' << c.adj_max_code << '\n';
  }
}

std::string library_to_string(const CellLibrary& lib) {
  std::ostringstream os;
  write_library(os, lib);
  return os.str();
}

CellLibrary read_library(std::istream& is) {
  std::string line;
  WM_REQUIRE(next_line(is, line), "empty celllib input");
  {
    std::istringstream header(line);
    std::string magic, version;
    header >> magic >> version;
    WM_REQUIRE(magic == "celllib" && version == "v1",
               "not a celllib v1 file (header: '" + line + "')");
  }
  CellLibrary lib;
  while (next_line(is, line)) {
    std::istringstream ls(line);
    std::string rec, kind;
    ls >> rec;
    WM_REQUIRE(rec == "cell", "unexpected record: " + rec);
    Cell c;
    ls >> c.name >> kind >> c.drive >> c.c_in >> c.c_self >> c.r_out >>
        c.d0 >> c.slew0 >> c.sc_frac >> c.adj_step >> c.adj_max_code;
    WM_REQUIRE(!ls.fail(), "malformed cell record: " + line);
    c.kind = kind_from(kind);
    lib.add(std::move(c));
  }
  return lib;
}

CellLibrary library_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_library(is);
}

void save_tree(const std::string& path, const ClockTree& tree) {
  std::ofstream os(path);
  WM_REQUIRE(static_cast<bool>(os), "cannot open for write: " + path);
  write_tree(os, tree);
  WM_REQUIRE(static_cast<bool>(os), "write failed: " + path);
}

ClockTree load_tree(const std::string& path, const CellLibrary& lib) {
  std::ifstream is(path);
  WM_REQUIRE(static_cast<bool>(is), "cannot open: " + path);
  return read_tree(is, lib);
}

void save_library(const std::string& path, const CellLibrary& lib) {
  std::ofstream os(path);
  WM_REQUIRE(static_cast<bool>(os), "cannot open for write: " + path);
  write_library(os, lib);
  WM_REQUIRE(static_cast<bool>(os), "write failed: " + path);
}

CellLibrary load_library(const std::string& path) {
  std::ifstream is(path);
  WM_REQUIRE(static_cast<bool>(is), "cannot open: " + path);
  return read_library(is);
}

} // namespace wm
