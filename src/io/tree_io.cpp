#include "io/tree_io.hpp"

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <set>
#include <sstream>

#include "fault/fault.hpp"
#include "util/error.hpp"

namespace wm {

namespace {

// Hardening limits (docs/robustness.md): a hostile or corrupted input
// must produce a wm::Error with a location, never an OOM or a crash
// deeper in the pipeline.
constexpr std::size_t kMaxLineLen = 1 << 16;     ///< 64 KiB per line
constexpr std::size_t kMaxTreeNodes = 4'000'000; ///< arena ids are i32
constexpr std::size_t kMaxLibCells = 100'000;
constexpr std::size_t kMaxPerModeEntries = 64;   ///< codes / xor bits

const char* kind_name(CellKind k) {
  switch (k) {
    case CellKind::Buffer: return "buffer";
    case CellKind::Inverter: return "inverter";
    case CellKind::Adb: return "adb";
    case CellKind::Adi: return "adi";
  }
  return "?";
}

[[noreturn]] void fail_at(std::size_t line_no, const std::string& msg) {
  throw Error("line " + std::to_string(line_no) + ": " + msg);
}

/// Line source that strips comments, skips blanks, rejects oversized
/// lines, and remembers the 1-based line number for diagnostics.
class LineScanner {
 public:
  explicit LineScanner(std::istream& is) : is_(is) {}

  bool next(std::string& line) {
    while (std::getline(is_, line)) {
      ++line_no_;
      fault::inject("io.read_line");
      if (line.size() > kMaxLineLen) {
        fail_at(line_no_, "oversized line (" +
                              std::to_string(line.size()) +
                              " bytes, limit " +
                              std::to_string(kMaxLineLen) + ")");
      }
      const auto pos = line.find('#');
      if (pos != std::string::npos) line.erase(pos);
      std::istringstream probe(line);
      std::string tok;
      if (probe >> tok) return true;
    }
    return false;
  }

  std::size_t line_no() const { return line_no_; }

 private:
  std::istream& is_;
  std::size_t line_no_ = 0;
};

/// Whitespace-field tokenizer over one record line. Every extraction
/// failure names the line, the 1-based field column and the field, so a
/// truncated or garbled record is locatable at a glance.
class FieldParser {
 public:
  FieldParser(const std::string& line, std::size_t line_no)
      : ls_(line), line_no_(line_no) {}

  std::string word(const char* name) {
    std::string v;
    ++field_;
    if (!(ls_ >> v)) {
      fail_at(line_no_, truncated(name));
    }
    return v;
  }

  long long integer(const char* name) {
    ++field_;
    long long v = 0;
    if (!(ls_ >> v)) {
      fail_at(line_no_, truncated(name));
    }
    return v;
  }

  /// Finite double — NaN/Inf in geometry or electrical data poisons
  /// every downstream comparison, so reject it at the boundary. Parsed
  /// via strtod on the whole token (not stream extraction) so "nan",
  /// "inf" and overflowing literals like 1e999 all reach the finite
  /// check instead of failing with a generic parse error.
  double finite(const char* name) {
    ++field_;
    std::string tok;
    if (!(ls_ >> tok)) {
      fail_at(line_no_, truncated(name));
    }
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) {
      fail_at(line_no_, "field " + std::to_string(field_) + " ('" +
                            name + "'): not a number ('" + tok + "')");
    }
    if (!std::isfinite(v)) {
      fail_at(line_no_, "field " + std::to_string(field_) + " ('" +
                            name + "'): non-finite value ('" + tok +
                            "')");
    }
    return v;
  }

  /// Remaining keyword-introduced extras ("codes", "xor", "xtra").
  std::istringstream& rest() { return ls_; }
  std::size_t line_no() const { return line_no_; }

 private:
  std::string truncated(const char* name) const {
    return "field " + std::to_string(field_) + " ('" + name +
           "'): missing or unparsable (truncated record?)";
  }

  std::istringstream ls_;
  std::size_t line_no_;
  int field_ = 0;
};

} // namespace

void write_tree(std::ostream& os, const ClockTree& tree) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "ctree v1\n";
  os << "# node <id> <parent> <cell> <x> <y> <wire_len> <route_extra> "
        "<sink_cap> <island> [codes ...]\n";
  // Emit in topological order with remapped dense ids so the file is
  // loadable regardless of how the in-memory arena was built.
  const auto order = tree.topological_order();
  std::vector<NodeId> remap(tree.size(), kNoNode);
  for (std::size_t i = 0; i < order.size(); ++i) {
    remap[static_cast<std::size_t>(order[i])] = static_cast<NodeId>(i);
  }
  for (const NodeId id : order) {
    const TreeNode& n = tree.node(id);
    const NodeId parent =
        n.parent == kNoNode ? kNoNode
                            : remap[static_cast<std::size_t>(n.parent)];
    os << "node " << remap[static_cast<std::size_t>(id)] << ' ' << parent
       << ' ' << n.cell->name << ' ' << n.pos.x << ' ' << n.pos.y << ' '
       << n.wire_len << ' ' << n.route_extra << ' ' << n.sink_cap << ' '
       << n.island;
    if (!n.adj_codes.empty()) {
      os << " codes";
      for (int c : n.adj_codes) os << ' ' << c;
    }
    if (!n.xor_negative.empty()) {
      os << " xor";
      for (std::uint8_t b : n.xor_negative) {
        os << ' ' << static_cast<int>(b);
      }
    }
    if (n.cell_extra_delay != 0.0) {
      os << " xtra " << n.cell_extra_delay;
    }
    os << '\n';
  }
}

std::string tree_to_string(const ClockTree& tree) {
  std::ostringstream os;
  write_tree(os, tree);
  return os.str();
}

ClockTree read_tree(std::istream& is, const CellLibrary& lib) {
  LineScanner scan(is);
  std::string line;
  WM_REQUIRE(scan.next(line), "empty ctree input");
  {
    std::istringstream header(line);
    std::string magic, version;
    header >> magic >> version;
    if (!(magic == "ctree" && version == "v1")) {
      fail_at(scan.line_no(),
              "not a ctree v1 file (header: '" + line + "')");
    }
  }

  ClockTree tree;
  while (scan.next(line)) {
    fault::inject("io.tree_record");
    const std::size_t ln = scan.line_no();
    if (tree.size() >= kMaxTreeNodes) {
      fail_at(ln, "too many nodes (limit " +
                      std::to_string(kMaxTreeNodes) + ")");
    }
    FieldParser p(line, ln);
    const std::string rec = p.word("record");
    if (rec != "node") {
      fail_at(ln, "unexpected record '" + rec + "' (expected 'node')");
    }
    const long long id = p.integer("id");
    const long long parent = p.integer("parent");
    const std::string cell_name = p.word("cell");
    Point pos;
    pos.x = p.finite("x");
    pos.y = p.finite("y");
    const Um wire_len = p.finite("wire_len");
    const Ps route_extra = p.finite("route_extra");
    const Ff sink_cap = p.finite("sink_cap");
    const int island = static_cast<int>(p.integer("island"));

    // Dense in-order ids are the arena layout contract; distinguish the
    // duplicate/out-of-order case from a gap so the fix is obvious.
    const auto want = static_cast<long long>(tree.size());
    if (id != want) {
      if (id < want && id >= 0) {
        fail_at(ln, "duplicate or out-of-order node id " +
                        std::to_string(id) + " (expected " +
                        std::to_string(want) + ")");
      }
      fail_at(ln, "non-dense node id " + std::to_string(id) +
                      " (expected " + std::to_string(want) + ")");
    }
    if (parent != static_cast<long long>(kNoNode)) {
      if (parent < 0 || parent >= want) {
        fail_at(ln, "parent " + std::to_string(parent) +
                        " of node " + std::to_string(id) +
                        " must precede it (parent-before-child order, "
                        "ids 0.." +
                        std::to_string(want - 1) + " so far)");
      }
    }
    const Cell* cell = lib.find(cell_name);
    if (cell == nullptr) {
      fail_at(ln, "unknown cell '" + cell_name + "' (not in library)");
    }
    NodeId created;
    if (parent == static_cast<long long>(kNoNode)) {
      if (!tree.empty()) fail_at(ln, "multiple roots in ctree input");
      created = tree.add_root(pos, cell);
    } else {
      created = tree.add_node(static_cast<NodeId>(parent), pos, cell,
                              wire_len);
    }
    TreeNode& n = tree.node(created);
    n.wire_len = wire_len;
    n.route_extra = route_extra;
    n.sink_cap = sink_cap;
    n.island = island;
    std::istringstream& ls = p.rest();
    std::string tok;
    while (ls >> tok) {
      if (tok == "codes") {
        int code;
        while (ls >> code) {
          if (n.adj_codes.size() >= kMaxPerModeEntries) {
            fail_at(ln, "too many adj codes (limit " +
                            std::to_string(kMaxPerModeEntries) + ")");
          }
          n.adj_codes.push_back(code);
        }
        ls.clear();  // hit a non-integer (next keyword) or EOF
      } else if (tok == "xor") {
        int bit;
        while (ls >> bit) {
          if (n.xor_negative.size() >= kMaxPerModeEntries) {
            fail_at(ln, "too many xor bits (limit " +
                            std::to_string(kMaxPerModeEntries) + ")");
          }
          n.xor_negative.push_back(static_cast<std::uint8_t>(bit));
        }
        ls.clear();
      } else if (tok == "xtra") {
        std::string vtok;
        if (!(ls >> vtok)) {
          fail_at(ln, "malformed xtra token (missing value)");
        }
        char* end = nullptr;
        n.cell_extra_delay = std::strtod(vtok.c_str(), &end);
        if (end != vtok.c_str() + vtok.size()) {
          fail_at(ln, "malformed xtra token ('" + vtok + "')");
        }
        if (!std::isfinite(n.cell_extra_delay)) {
          fail_at(ln, "non-finite xtra value ('" + vtok + "')");
        }
      } else {
        fail_at(ln, "unexpected trailing token: " + tok);
      }
    }
  }
  WM_REQUIRE(!tree.empty(), "ctree input has no nodes");
  return tree;
}

ClockTree tree_from_string(const std::string& text,
                           const CellLibrary& lib) {
  std::istringstream is(text);
  return read_tree(is, lib);
}

void write_library(std::ostream& os, const CellLibrary& lib) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "celllib v1\n";
  os << "# cell <name> <kind> <drive> <c_in> <c_self> <r_out> <d0> "
        "<slew0> <sc_frac> <adj_step> <adj_max_code>\n";
  for (const Cell& c : lib.cells()) {
    os << "cell " << c.name << ' ' << kind_name(c.kind) << ' ' << c.drive
       << ' ' << c.c_in << ' ' << c.c_self << ' ' << c.r_out << ' '
       << c.d0 << ' ' << c.slew0 << ' ' << c.sc_frac << ' ' << c.adj_step
       << ' ' << c.adj_max_code << '\n';
  }
}

std::string library_to_string(const CellLibrary& lib) {
  std::ostringstream os;
  write_library(os, lib);
  return os.str();
}

CellLibrary read_library(std::istream& is) {
  LineScanner scan(is);
  std::string line;
  WM_REQUIRE(scan.next(line), "empty celllib input");
  {
    std::istringstream header(line);
    std::string magic, version;
    header >> magic >> version;
    if (!(magic == "celllib" && version == "v1")) {
      fail_at(scan.line_no(),
              "not a celllib v1 file (header: '" + line + "')");
    }
  }
  CellLibrary lib;
  std::set<std::string> seen;
  while (scan.next(line)) {
    fault::inject("io.cell_record");
    const std::size_t ln = scan.line_no();
    if (lib.cells().size() >= kMaxLibCells) {
      fail_at(ln, "too many cells (limit " +
                      std::to_string(kMaxLibCells) + ")");
    }
    FieldParser p(line, ln);
    const std::string rec = p.word("record");
    if (rec != "cell") {
      fail_at(ln, "unexpected record '" + rec + "' (expected 'cell')");
    }
    Cell c;
    c.name = p.word("name");
    if (!seen.insert(c.name).second) {
      fail_at(ln, "duplicate cell name '" + c.name + "'");
    }
    const std::string kind = p.word("kind");
    if (kind == "buffer") {
      c.kind = CellKind::Buffer;
    } else if (kind == "inverter") {
      c.kind = CellKind::Inverter;
    } else if (kind == "adb") {
      c.kind = CellKind::Adb;
    } else if (kind == "adi") {
      c.kind = CellKind::Adi;
    } else {
      fail_at(ln, "unknown cell kind '" + kind + "'");
    }
    c.drive = static_cast<int>(p.integer("drive"));
    c.c_in = p.finite("c_in");
    c.c_self = p.finite("c_self");
    c.r_out = p.finite("r_out");
    c.d0 = p.finite("d0");
    c.slew0 = p.finite("slew0");
    c.sc_frac = p.finite("sc_frac");
    c.adj_step = p.finite("adj_step");
    c.adj_max_code = static_cast<int>(p.integer("adj_max_code"));
    std::string extra;
    if (p.rest() >> extra) {
      fail_at(ln, "unexpected trailing token: " + extra);
    }
    lib.add(std::move(c));
  }
  return lib;
}

CellLibrary library_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_library(is);
}

namespace {

/// 256 MiB — far above any legitimate design file; a larger input is a
/// corrupted or hostile path, rejected before any allocation.
constexpr std::uintmax_t kMaxFileBytes = 1ull << 28;

std::ifstream open_checked(const std::string& path) {
  fault::inject("io.open_read");
  std::ifstream is(path, std::ios::ate);
  WM_REQUIRE(static_cast<bool>(is), "cannot open: " + path);
  const auto size = static_cast<std::uintmax_t>(is.tellg());
  WM_REQUIRE(size <= kMaxFileBytes,
             "oversized file (" + std::to_string(size) +
                 " bytes, limit " + std::to_string(kMaxFileBytes) +
                 "): " + path);
  is.seekg(0);
  return is;
}

/// Prefix reader diagnostics ("line 12: ...") with the file path.
template <typename Fn>
auto with_path_context(const std::string& path, Fn&& fn)
    -> decltype(fn()) {
  try {
    return fn();
  } catch (const Error& e) {
    throw Error(path + ": " + e.what());
  }
}

} // namespace

void save_tree(const std::string& path, const ClockTree& tree) {
  fault::inject("io.save_tree");
  std::ofstream os(path);
  WM_REQUIRE(static_cast<bool>(os), "cannot open for write: " + path);
  write_tree(os, tree);
  WM_REQUIRE(static_cast<bool>(os), "write failed: " + path);
}

ClockTree load_tree(const std::string& path, const CellLibrary& lib) {
  std::ifstream is = open_checked(path);
  return with_path_context(path, [&] { return read_tree(is, lib); });
}

void save_library(const std::string& path, const CellLibrary& lib) {
  std::ofstream os(path);
  WM_REQUIRE(static_cast<bool>(os), "cannot open for write: " + path);
  write_library(os, lib);
  WM_REQUIRE(static_cast<bool>(os), "write failed: " + path);
}

CellLibrary load_library(const std::string& path) {
  std::ifstream is = open_checked(path);
  return with_path_context(path, [&] { return read_library(is); });
}

} // namespace wm
