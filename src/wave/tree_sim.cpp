#include "wave/tree_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "timing/arrival.hpp"
#include "util/error.hpp"

namespace wm {

namespace {

double factor_or_1(const std::vector<double>& v, NodeId id) {
  if (v.empty()) return 1.0;
  return v[static_cast<std::size_t>(id)];
}

} // namespace

TreeSim::TreeSim(const ClockTree& tree, const ModeSet& modes,
                 std::size_t mode_index, TreeSimOptions opts)
    : tree_(tree), opts_(std::move(opts)) {
  WM_REQUIRE(!tree.empty(), "empty tree");
  // TreeSim has no options plumbing back to the caller, so it reports
  // to the process-global registry when one is installed (the CLI's
  // --metrics / --metrics-out runs).
  obs::ScopedPhase phase_sim(obs::global(), "tree_sim");
  obs::add(obs::global(), "tree_sim.runs");
  obs::add(obs::global(), "tree_sim.nodes_simulated", tree.size());
  const std::size_t n = tree.size();
  input_arrival_.assign(n, 0.0);
  output_arrival_.assign(n, 0.0);
  slew_in_.assign(n, tech::kCharacterizationSlew);
  shift_.assign(n, 0.0);
  node_wave_.resize(n);

  std::vector<Ps> slew_out(n, tech::kCharacterizationSlew);
  std::vector<bool> input_negative(n, false);
  gated_.assign(n, 0);
  for (const TreeNode& node : tree.nodes()) {
    if (node.is_leaf() && modes.gated(mode_index, node.island)) {
      gated_[static_cast<std::size_t>(node.id)] = 1;
    }
  }

  for (const NodeId nid : tree.topological_order()) {
    const TreeNode& node = tree.node(nid);
    const auto i = static_cast<std::size_t>(node.id);
    Ps in_arr = 0.0;
    Ps sin = tech::kCharacterizationSlew;
    bool neg = false;
    if (node.parent != kNoNode) {
      const auto p = static_cast<std::size_t>(node.parent);
      const Ps wd = (wire_elmore(tree_, node.id) + node.route_extra) *
                    factor_or_1(opts_.wire_delay_factor, node.id);
      in_arr = output_arrival_[p] + wd;
      if (opts_.propagate_slew) {
        // Wire RC degrades the transition on top of the driver's output
        // slew (same helper the timing analysis uses).
        sin = slew_out[p] + wire_slew_degradation(wire_elmore(tree_, node.id));
      }
      neg = input_negative[p] != tree.node(node.parent).cell->inverting();
    }
    // An XOR-reconfigurable leaf flips its effective input phase in the
    // modes where its control selects negative polarity.
    if (!node.xor_negative.empty() &&
        mode_index < node.xor_negative.size() &&
        node.xor_negative[mode_index]) {
      neg = !neg;
    }
    input_arrival_[i] = in_arr;
    slew_in_[i] = sin;
    input_negative[i] = neg;

    const Volt vdd = modes.vdd(mode_index, node.island);
    DriveConditions dc{tree.load_of(node.id), sin, vdd,
                       modes.temp(mode_index, node.island)};
    Ps extra = 0.0;
    if (node.cell->adjustable() && !node.adj_codes.empty()) {
      WM_REQUIRE(mode_index < node.adj_codes.size(),
                 "adjustable node lacks a code for this mode");
      extra = node.cell->adj_step *
              static_cast<Ps>(node.adj_codes[mode_index]);
    }
    CellWave cw = simulate_cell(*node.cell, dc, opts_.period, opts_.dt,
                                extra);
    const double df = factor_or_1(opts_.cell_delay_factor, node.id);
    const double cf = factor_or_1(opts_.current_factor, node.id);
    if (cf != 1.0) {
      cw.idd.scale(cf);
      cw.iss.scale(cf);
    }
    // Delay perturbation moves the output event; approximate by shifting
    // the whole response (the pulse rides on the output transition).
    const Ps delay_shift = (df - 1.0) * cw.timing.delay();

    // cw.timing already includes the configured adjustable extra delay.
    output_arrival_[i] =
        in_arr + df * cw.timing.delay() + node.cell_extra_delay;
    slew_out[i] = 0.5 * (cw.timing.slew_rise + cw.timing.slew_fall);

    // A negative-polarity input swaps the roles of the two source edges:
    // shift the full-period response by half a period (mod period).
    shift_[i] = in_arr + delay_shift + node.cell_extra_delay +
                (neg ? 0.5 * opts_.period : 0.0);
    node_wave_[i] = std::move(cw);
  }

  // Accumulate everything on an extended window, then fold. Leaves of a
  // clock-gated island do not toggle in this mode.
  Waveform ext_idd, ext_iss;
  for (const TreeNode& node : tree.nodes()) {
    if (node.is_leaf() && modes.gated(mode_index, node.island)) continue;
    const auto i = static_cast<std::size_t>(node.id);
    ext_idd.accumulate(node_wave_[i].idd, shift_[i]);
    ext_iss.accumulate(node_wave_[i].iss, shift_[i]);
  }
  total_idd_ = folded(ext_idd);
  total_iss_ = folded(ext_iss);
}

Waveform TreeSim::folded(const Waveform& ext) const {
  const auto n = static_cast<std::size_t>(opts_.period / opts_.dt);
  Waveform out = Waveform::zeros(0.0, opts_.dt, n);
  if (ext.empty()) return out;
  // Sum all periodic images that intersect the stored span.
  const auto k_lo = static_cast<long>(
      std::floor(ext.t0() / opts_.period)) - 1;
  const auto k_hi = static_cast<long>(
      std::ceil(ext.t_end() / opts_.period)) + 1;
  for (std::size_t i = 0; i < n; ++i) {
    const Ps t = out.time_at(i);
    double acc = 0.0;
    for (long k = k_lo; k <= k_hi; ++k) {
      acc += ext.value_at(t + static_cast<Ps>(k) * opts_.period);
    }
    out[i] = acc;
  }
  return out;
}

UA TreeSim::peak_current() const {
  return std::max(total_idd_.peak(), total_iss_.peak());
}

Waveform TreeSim::sum_rail(std::span<const NodeId> ids, Rail rail) const {
  Waveform ext;
  for (NodeId id : ids) {
    const TreeNode& n = tree_.node(id);
    if (n.is_leaf() && gated_[static_cast<std::size_t>(id)]) continue;
    const auto i = static_cast<std::size_t>(id);
    const Waveform& w =
        rail == Rail::Vdd ? node_wave_[i].idd : node_wave_[i].iss;
    ext.accumulate(w, shift_[i]);
  }
  return folded(ext);
}

Waveform TreeSim::leaves_rail(Rail rail) const {
  const auto ids = tree_.leaves();
  return sum_rail(ids, rail);
}

Waveform TreeSim::non_leaves_rail(Rail rail) const {
  const auto ids = tree_.non_leaves();
  return sum_rail(ids, rail);
}

Ps TreeSim::input_arrival(NodeId id) const {
  return input_arrival_[static_cast<std::size_t>(id)];
}

Ps TreeSim::output_arrival(NodeId id) const {
  return output_arrival_[static_cast<std::size_t>(id)];
}

Ps TreeSim::slew_in(NodeId id) const {
  return slew_in_[static_cast<std::size_t>(id)];
}

Ps TreeSim::skew() const {
  Ps lo = std::numeric_limits<Ps>::max();
  Ps hi = std::numeric_limits<Ps>::lowest();
  for (const TreeNode& n : tree_.nodes()) {
    if (!n.is_leaf()) continue;
    if (gated_[static_cast<std::size_t>(n.id)]) continue;
    const Ps a = output_arrival_[static_cast<std::size_t>(n.id)];
    lo = std::min(lo, a);
    hi = std::max(hi, a);
  }
  return hi - lo;
}

} // namespace wm
