#include "wave/waveform.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace wm {

Waveform::Waveform(Ps t0, Ps dt, std::vector<double> samples)
    : t0_(t0), dt_(dt), samples_(std::move(samples)) {
  WM_REQUIRE(dt > 0.0, "waveform step must be positive");
}

Waveform Waveform::zeros(Ps t0, Ps dt, std::size_t n) {
  return Waveform(t0, dt, std::vector<double>(n, 0.0));
}

Ps Waveform::t_end() const {
  if (samples_.empty()) return t0_;
  return t0_ + dt_ * static_cast<Ps>(samples_.size() - 1);
}

std::size_t Waveform::index_floor(Ps t) const {
  const double idx = (t - t0_) / dt_;
  if (idx <= 0.0) return 0;
  return static_cast<std::size_t>(idx);
}

double Waveform::value_at(Ps t) const {
  if (samples_.empty()) return 0.0;
  const double x = (t - t0_) / dt_;
  if (x < 0.0 || x > static_cast<double>(samples_.size() - 1)) return 0.0;
  const auto i = static_cast<std::size_t>(x);
  if (i + 1 >= samples_.size()) return samples_.back();
  const double frac = x - static_cast<double>(i);
  return samples_[i] * (1.0 - frac) + samples_[i + 1] * frac;
}

double Waveform::max_in(Ps lo, Ps hi) const {
  if (samples_.empty() || hi < lo) return 0.0;
  double best = std::max(value_at(lo), value_at(hi));
  // Interior grid samples dominate any interpolated value between them.
  std::size_t i = index_floor(lo);
  if (time_at(i) < lo) ++i;
  for (; i < samples_.size() && time_at(i) <= hi; ++i) {
    best = std::max(best, samples_[i]);
  }
  return best;
}

double Waveform::peak() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

Ps Waveform::peak_time() const {
  if (samples_.empty()) return t0_;
  const auto it = std::max_element(samples_.begin(), samples_.end());
  return time_at(static_cast<std::size_t>(it - samples_.begin()));
}

double Waveform::integral() const {
  if (samples_.size() < 2) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i + 1 < samples_.size(); ++i) {
    acc += 0.5 * (samples_[i] + samples_[i + 1]);
  }
  return acc * dt_;
}

void Waveform::ensure_span(Ps lo, Ps hi, Ps dt_hint) {
  WM_REQUIRE(hi >= lo, "ensure_span: hi < lo");
  if (samples_.empty()) {
    dt_ = dt_hint;
    t0_ = std::floor(lo / dt_) * dt_;
    const auto n =
        static_cast<std::size_t>(std::ceil((hi - t0_) / dt_)) + 2;
    samples_.assign(n, 0.0);
    return;
  }
  if (lo < t0_) {
    const auto extra =
        static_cast<std::size_t>(std::ceil((t0_ - lo) / dt_)) + 1;
    samples_.insert(samples_.begin(), extra, 0.0);
    t0_ -= dt_ * static_cast<Ps>(extra);
  }
  if (hi > t_end()) {
    const auto extra =
        static_cast<std::size_t>(std::ceil((hi - t_end()) / dt_)) + 1;
    samples_.insert(samples_.end(), extra, 0.0);
  }
}

void Waveform::regrid(Ps new_dt) {
  if (samples_.empty() || new_dt >= dt_) return;
  const auto n =
      static_cast<std::size_t>(std::ceil((t_end() - t0_) / new_dt)) + 1;
  std::vector<double> fine(n);
  for (std::size_t i = 0; i < n; ++i) {
    fine[i] = value_at(t0_ + new_dt * static_cast<Ps>(i));
  }
  dt_ = new_dt;
  samples_ = std::move(fine);
}

void Waveform::accumulate(const Waveform& other, Ps shift) {
  if (other.empty()) return;
  regrid(other.dt());  // never lose resolution to a coarse accumulator
  ensure_span(other.t0() + shift, other.t_end() + shift, other.dt());
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    samples_[i] += other.value_at(time_at(i) - shift);
  }
}

void Waveform::accumulate_scaled(const Waveform& other, double k,
                                 Ps shift) {
  if (other.empty() || k == 0.0) return;
  regrid(other.dt());
  ensure_span(other.t0() + shift, other.t_end() + shift, other.dt());
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    samples_[i] += k * other.value_at(time_at(i) - shift);
  }
}

void Waveform::accumulate_triangle(Ps t_start, Ps rise, Ps fall,
                                   double peak) {
  WM_REQUIRE(rise > 0.0 && fall > 0.0, "triangle edges must be positive");
  ensure_span(t_start, t_start + rise + fall);
  const Ps t_peak = t_start + rise;
  const Ps t_stop = t_peak + fall;
  std::size_t i = index_floor(t_start);
  for (; i < samples_.size(); ++i) {
    const Ps t = time_at(i);
    if (t < t_start) continue;
    if (t > t_stop) break;
    const double v = (t <= t_peak) ? peak * (t - t_start) / rise
                                   : peak * (t_stop - t) / fall;
    samples_[i] += v;
  }
}

void Waveform::scale(double k) {
  for (auto& s : samples_) s *= k;
}

} // namespace wm
