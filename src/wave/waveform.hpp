#pragma once
// Uniformly sampled current waveforms.
//
// A Waveform stores samples of a current (or voltage) signal on a uniform
// time grid starting at t0 with step dt. Outside the stored span the
// signal is defined to be zero, which matches the physics: a clock
// buffer's supply current is zero away from the switching edges.
//
// This is the numeric workhorse of the reproduction: cell
// characterization (paper Fig. 7), the superposition "HSPICE-lite"
// validation simulation (Fig. 2), and the fine-grained noise sampling
// (Sec. IV-B) all operate on Waveforms.

#include <cstddef>
#include <vector>

#include "util/units.hpp"

namespace wm {

/// Which supply rail a current waveform belongs to.
enum class Rail { Vdd, Gnd };

inline const char* to_string(Rail r) { return r == Rail::Vdd ? "Vdd" : "Gnd"; }

class Waveform {
 public:
  /// Empty waveform (identically zero everywhere).
  Waveform() = default;

  Waveform(Ps t0, Ps dt, std::vector<double> samples);

  /// All-zero waveform spanning [t0, t0 + n*dt].
  static Waveform zeros(Ps t0, Ps dt, std::size_t n);

  bool empty() const { return samples_.empty(); }
  std::size_t size() const { return samples_.size(); }
  Ps t0() const { return t0_; }
  Ps dt() const { return dt_; }
  Ps t_end() const;

  double& operator[](std::size_t i) { return samples_[i]; }
  double operator[](std::size_t i) const { return samples_[i]; }
  const std::vector<double>& samples() const { return samples_; }

  /// Time of sample i.
  Ps time_at(std::size_t i) const { return t0_ + dt_ * static_cast<Ps>(i); }

  /// Linearly interpolated value; zero outside the stored span.
  double value_at(Ps t) const;

  /// Maximum over [lo, hi] (linear-interpolation-exact: checks both the
  /// interior samples and the interpolated endpoints). Zero if the window
  /// misses the span entirely.
  double max_in(Ps lo, Ps hi) const;

  /// Global maximum sample value (0 for empty waveform).
  double peak() const;

  /// Time at which the global maximum is attained (t0 for empty).
  Ps peak_time() const;

  /// Integral over the whole span (trapezoidal) — total charge for a
  /// current waveform, in fC when samples are uA... see note in units.hpp:
  /// uA * ps = 1e-6 A * 1e-12 s = 1e-18 C; we report in fC = 1e-15 C,
  /// so integral() * 1e-3 is fC. Callers use it for relative checks only.
  double integral() const;

  /// Grow (never shrink) the stored span so [lo, hi] is covered,
  /// padding with zeros. Establishes a grid if the waveform is empty
  /// (using the given dt_hint).
  void ensure_span(Ps lo, Ps hi, Ps dt_hint = 1.0);

  /// Accumulate `other` shifted right by `shift`: this += other(t - shift).
  /// The span grows as needed; `other`'s samples are linearly resampled
  /// onto this grid.
  void accumulate(const Waveform& other, Ps shift = 0.0);

  /// this += k * other(t - shift). Used by the resistive-kernel power
  /// grid model, where each tile's current couples with a distance-
  /// dependent weight.
  void accumulate_scaled(const Waveform& other, double k, Ps shift = 0.0);

  /// Accumulate an analytic asymmetric triangular pulse: zero before
  /// t_start, rising linearly to `peak` over `rise`, falling back to zero
  /// over `fall`. This is the primitive the cell current model emits.
  void accumulate_triangle(Ps t_start, Ps rise, Ps fall, double peak);

  /// Multiply all samples by a constant.
  void scale(double k);

 private:
  std::size_t index_floor(Ps t) const;

  /// Resample onto a finer grid (no-op if new_dt >= dt).
  void regrid(Ps new_dt);

  Ps t0_ = 0.0;
  Ps dt_ = 1.0;
  std::vector<double> samples_;
};

} // namespace wm
