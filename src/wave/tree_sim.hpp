#pragma once
// Full-tree current simulation by superposition — the reproduction's
// stand-in for the paper's HSPICE validation runs.
//
// Unlike the optimizer's characterization-table model, this simulator
//   * propagates slews through the tree (a leaf sized differently sees
//     and produces different transition times),
//   * uses exact (un-quantized) loads,
//   * folds the response into one steady-state clock period,
// so it disagrees with the optimizer's LUT model in exactly the ways the
// paper reports (Sec. VII-C).
//
// The source clock rises at t = 0 and falls at t = period/2. A node whose
// input polarity is negative (an inverting ancestor) responds to the
// source's falling edge half a period later; periodic folding puts all
// pulses back into [0, period).

#include <functional>
#include <span>
#include <vector>

#include "cells/electrical.hpp"
#include "timing/power_mode.hpp"
#include "tree/clock_tree.hpp"
#include "util/units.hpp"
#include "wave/waveform.hpp"

namespace wm {

struct TreeSimOptions {
  Ps period = tech::kClockPeriod;
  Ps dt = 0.5;
  /// Propagate parent-dependent slews (true) or freeze the
  /// characterization slew everywhere (false; makes the simulator agree
  /// with the LUT model, useful in tests).
  bool propagate_slew = true;
  /// Optional multiplicative perturbations for Monte Carlo: per-node
  /// cell-delay factors, wire-delay factors and current-peak factors.
  std::vector<double> cell_delay_factor;
  std::vector<double> wire_delay_factor;
  std::vector<double> current_factor;
};

class TreeSim {
 public:
  TreeSim(const ClockTree& tree, const ModeSet& modes,
          std::size_t mode_index, TreeSimOptions opts = {});

  /// Whole-tree supply current, folded into [0, period).
  const Waveform& total_idd() const { return total_idd_; }
  const Waveform& total_iss() const { return total_iss_; }

  /// Peak of the total current waveform: max over both rails.
  UA peak_current() const;

  /// Folded subtotal over an arbitrary node subset.
  Waveform sum_rail(std::span<const NodeId> ids, Rail rail) const;

  /// Convenience: subtotal over leaves only / non-leaves only.
  Waveform leaves_rail(Rail rail) const;
  Waveform non_leaves_rail(Rail rail) const;

  Ps input_arrival(NodeId id) const;
  Ps output_arrival(NodeId id) const;
  Ps slew_in(NodeId id) const;

  /// Clock skew over leaf output arrivals as seen by this simulator.
  Ps skew() const;

 private:
  Waveform folded(const Waveform& ext) const;

  const ClockTree& tree_;
  TreeSimOptions opts_;
  std::vector<Ps> input_arrival_;
  std::vector<Ps> output_arrival_;
  std::vector<Ps> slew_in_;
  std::vector<Ps> shift_;  // waveform placement incl. polarity half-period
  std::vector<std::uint8_t> gated_;  // leaf gated in this mode
  std::vector<CellWave> node_wave_;
  Waveform total_idd_;
  Waveform total_iss_;
};

} // namespace wm
