#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "core/candidates.hpp"
#include "core/intervals.hpp"
#include "verify/verify.hpp"

namespace wm::verify {

namespace {

// Matches the arrival-grid merge tolerance used by window_mask; window
// bounds are only meaningful to that resolution.
constexpr Ps kTol = 0.01;

void check_one(const Preprocessed& p, const Intersection& x,
               std::size_t idx, Ps kappa, Report& r) {
  const std::string loc = "intersection " + std::to_string(idx);

  if (x.windows.size() != p.mode_count) {
    r.error("interval.mode-count", loc,
            std::to_string(x.windows.size()) + " windows for " +
                std::to_string(p.mode_count) + " power modes");
    return;
  }
  if (x.masks.size() != p.sinks.size()) {
    r.error("interval.mask-count", loc,
            std::to_string(x.masks.size()) + " masks for " +
                std::to_string(p.sinks.size()) + " sinks");
    return;
  }

  for (std::size_t m = 0; m < x.windows.size(); ++m) {
    const TimeWindow& w = x.windows[m];
    if (w.lo > w.hi) {
      r.error("interval.bounds", loc + " mode " + std::to_string(m),
              "window lower bound exceeds upper bound");
    } else if (w.hi - w.lo > kappa + 2.0 * kTol) {
      r.error("interval.bounds", loc + " mode " + std::to_string(m),
              "window wider than the skew bound kappa");
    }
  }

  long dof = 0;
  for (std::size_t s = 0; s < x.masks.size(); ++s) {
    const std::uint32_t mask = x.masks[s];
    const SinkInfo& sink = p.sinks[s];
    const std::string sink_loc = loc + " sink " + std::to_string(s);
    if (mask == 0) {
      r.error("interval.empty-mode", sink_loc,
              "no surviving candidate (empty per-mode intersection)");
      continue;
    }
    if (sink.candidates.size() < 32 &&
        (mask >> sink.candidates.size()) != 0) {
      r.error("interval.mask-range", sink_loc,
              "mask selects candidates beyond the sink's " +
                  std::to_string(sink.candidates.size()) + " candidates");
      continue;
    }
    std::uint32_t expected = ~0u;
    for (std::size_t m = 0; m < x.windows.size(); ++m) {
      expected &= window_mask(sink, m, x.windows[m]);
    }
    if (mask != expected) {
      r.error("interval.mask-stale", sink_loc,
              "stored mask does not reproduce from the stored windows");
    }
    dof += std::popcount(mask);
  }
  if (dof != x.dof) {
    r.error("interval.dof", loc,
            "stored degree of freedom " + std::to_string(x.dof) +
                " != surviving-candidate count " + std::to_string(dof));
  }
}

} // namespace

Report check_intersections(const Preprocessed& p,
                           const std::vector<Intersection>& xs, Ps kappa) {
  Report r;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    check_one(p, xs[i], i, kappa, r);
    if (i > 0 && xs[i].dof > xs[i - 1].dof) {
      r.warning("interval.order",
                "intersection " + std::to_string(i),
                "intersections not sorted by decreasing degree of "
                "freedom");
    }
  }
  return r;
}

} // namespace wm::verify
