#pragma once
// wm::verify — machine-checked structural invariants of the WaveMin
// pipeline (the domain half of the static-analysis layer; the toolchain
// half is the sanitizer/clang-tidy wiring in CMake).
//
// Each checker sweeps one data structure and reports every violation as
// a structured diagnostic (diagnostics.hpp) instead of stopping at the
// first, so `wavemin_lint` can print a complete picture. The checks are
// also wired into run_wavemin / clk_wavemin_m as phase-boundary hooks
// (WaveMinOptions::verify_invariants, on by default in debug builds):
// there, an Error-severity diagnostic escalates to wm::Error via
// enforce().
//
// Rule catalog (stable ids; see docs/static_analysis.md):
//   tree.root / tree.id / tree.parent-link / tree.cycle /
//   tree.unreachable / tree.cell-binding / tree.geometry /
//   tree.leaf-polarity / tree.adj-codes / tree.zone-membership
//   lib.empty / lib.duplicate-name / lib.nonpositive / lib.sc-frac /
//   lib.adjustable / lib.monotone-sizing
//   mosp.dims / mosp.no-rows / mosp.row-empty / mosp.weight-dims /
//   mosp.weight-value / mosp.option-range
//   interval.mode-count / interval.mask-count / interval.bounds /
//   interval.empty-mode / interval.mask-range / interval.mask-stale /
//   interval.dof / interval.order

#include <cstddef>
#include <vector>

#include "util/units.hpp"
#include "verify/diagnostics.hpp"

namespace wm {
class CellLibrary;
class ClockTree;
class ZoneMap;
struct Intersection;
struct MospGraph;
struct Preprocessed;
} // namespace wm

namespace wm::verify {

/// Clock-tree well-formedness: arena id density, parent/child link
/// symmetry, acyclicity/reachability from the root, cell bindings,
/// non-negative geometry, per-mode polarity/ADB-code consistency. If
/// `zones` is given, additionally checks zone membership (every leaf in
/// exactly one zone, members are leaves, zone_of agrees).
Report check_tree(const ClockTree& tree, const ZoneMap* zones = nullptr);

/// Cell-library consistency: unique names, positive electrical
/// parameters, adjustable-parameter coherence, and (as warnings)
/// monotone sizing within a cell kind — bigger drive must not raise
/// output resistance or intrinsic delay, nor shrink input capacitance.
Report check_library(const CellLibrary& lib);

/// MOSP instance shape: positive weight dimension (== |S| when
/// `expected_dims` is non-zero), at least one row, no empty row, every
/// vertex weight of dimension `dims`, finite non-negative weights,
/// in-range option indices. The layered rows/options representation
/// forbids back edges by construction; these shape rules are exactly
/// what encodes that layering.
Report check_mosp(const MospGraph& g, std::size_t expected_dims = 0);

/// Feasible-interval sanity for the output of enumerate_intersections:
/// per-mode window count, monotone bounds of width <= kappa, non-empty
/// per-mode candidate intersection for every sink, masks within the
/// candidate range and reproducible from the stored windows, dof equal
/// to the surviving-candidate popcount, decreasing-dof ordering.
Report check_intersections(const Preprocessed& p,
                           const std::vector<Intersection>& xs, Ps kappa);

/// Aggregate of everything checkable from a standalone design:
/// check_library + check_tree (+ zones when given).
Report check_design(const ClockTree& tree, const CellLibrary& lib,
                    const ZoneMap* zones = nullptr);

/// Phase-boundary escalation: log warnings, and throw wm::Error naming
/// `phase` and the first few diagnostics if the report contains errors.
void enforce(const Report& report, const char* phase);

} // namespace wm::verify
