#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "tree/clock_tree.hpp"
#include "tree/zone.hpp"
#include "verify/verify.hpp"

namespace wm::verify {

namespace {

std::string node_loc(NodeId id) { return "node " + std::to_string(id); }

bool in_range(NodeId id, std::size_t n) {
  return id >= 0 && static_cast<std::size_t>(id) < n;
}

void check_links(const ClockTree& tree, Report& r) {
  const std::size_t n = tree.size();
  std::size_t roots = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const TreeNode& node = tree.nodes()[i];
    if (node.id != static_cast<NodeId>(i)) {
      r.error("tree.id", node_loc(static_cast<NodeId>(i)),
              "arena id " + std::to_string(node.id) +
                  " does not match its index");
    }
    if (node.parent == kNoNode) {
      ++roots;
      if (i != 0) {
        r.error("tree.root", node_loc(node.id),
                "parentless node is not node 0");
      }
    } else if (!in_range(node.parent, n)) {
      r.error("tree.parent-link", node_loc(node.id),
              "parent " + std::to_string(node.parent) + " out of range");
    } else if (node.parent == node.id) {
      r.error("tree.cycle", node_loc(node.id), "node is its own parent");
    } else {
      const TreeNode& parent = tree.nodes()[
          static_cast<std::size_t>(node.parent)];
      std::size_t links = 0;
      for (const NodeId c : parent.children) {
        if (c == node.id) ++links;
      }
      if (links != 1) {
        r.error("tree.parent-link", node_loc(node.id),
                "listed " + std::to_string(links) +
                    " times in the child list of parent " +
                    std::to_string(node.parent));
      }
    }
    for (const NodeId c : node.children) {
      if (!in_range(c, n)) {
        r.error("tree.parent-link", node_loc(node.id),
                "child " + std::to_string(c) + " out of range");
      } else if (tree.nodes()[static_cast<std::size_t>(c)].parent !=
                 node.id) {
        r.error("tree.parent-link", node_loc(node.id),
                "child " + std::to_string(c) +
                    " names a different parent (" +
                    std::to_string(
                        tree.nodes()[static_cast<std::size_t>(c)].parent) +
                    ")");
      }
    }
  }
  if (roots != 1) {
    r.error("tree.root", "",
            std::to_string(roots) + " parentless nodes (expected exactly "
                                    "one root)");
  }
}

void check_reachability(const ClockTree& tree, Report& r) {
  const std::size_t n = tree.size();
  std::vector<std::uint8_t> visited(n, 0);
  std::deque<NodeId> queue;
  if (tree.root() != kNoNode) {
    queue.push_back(tree.root());
    visited[0] = 1;
  }
  std::size_t reached = queue.size();
  while (!queue.empty()) {
    const NodeId id = queue.front();
    queue.pop_front();
    for (const NodeId c : tree.nodes()[static_cast<std::size_t>(id)]
                              .children) {
      if (!in_range(c, n)) continue;  // reported by check_links
      if (visited[static_cast<std::size_t>(c)]) {
        r.error("tree.cycle", node_loc(c),
                "reached twice walking child edges from the root (cycle "
                "or shared subtree)");
        continue;
      }
      visited[static_cast<std::size_t>(c)] = 1;
      ++reached;
      queue.push_back(c);
    }
  }
  if (reached != n) {
    r.error("tree.unreachable", "",
            std::to_string(n - reached) +
                " node(s) unreachable from the root");
  }
}

void check_node_payload(const ClockTree& tree, Report& r) {
  // Per-mode vector lengths must agree tree-wide: the first non-empty
  // length seen is the reference mode count.
  std::size_t mode_ref = 0;
  auto check_mode_len = [&](const TreeNode& node, std::size_t len,
                            const char* what) {
    if (len == 0) return;
    if (mode_ref == 0) {
      mode_ref = len;
    } else if (len != mode_ref) {
      r.error("tree.leaf-polarity", node_loc(node.id),
              std::string(what) + " vector of length " +
                  std::to_string(len) +
                  " disagrees with the design's mode count " +
                  std::to_string(mode_ref));
    }
  };

  for (const TreeNode& node : tree.nodes()) {
    if (node.cell == nullptr) {
      r.error("tree.cell-binding", node_loc(node.id),
              "no buffering cell bound");
    }
    if (node.wire_len < 0.0 || node.route_extra < 0.0 ||
        node.sink_cap < 0.0) {
      r.error("tree.geometry", node_loc(node.id),
              "negative wire_len, route_extra or sink_cap");
    }
    if (!node.is_leaf() && node.sink_cap > 0.0) {
      r.warning("tree.geometry", node_loc(node.id),
                "non-leaf node carries a sink load");
    }

    if (!node.xor_negative.empty() && !node.is_leaf()) {
      r.error("tree.leaf-polarity", node_loc(node.id),
              "XOR-reconfigurable polarity on a non-leaf node");
    }
    check_mode_len(node, node.adj_codes.size(), "adj_codes");
    check_mode_len(node, node.xor_negative.size(), "xor_negative");

    if (!node.adj_codes.empty()) {
      if (node.cell != nullptr && !node.cell->adjustable()) {
        r.error("tree.adj-codes", node_loc(node.id),
                "delay codes on non-adjustable cell " + node.cell->name);
      } else if (node.cell != nullptr) {
        for (const int code : node.adj_codes) {
          if (code < 0 || code > node.cell->adj_max_code) {
            r.error("tree.adj-codes", node_loc(node.id),
                    "code " + std::to_string(code) + " outside [0, " +
                        std::to_string(node.cell->adj_max_code) + "]");
            break;
          }
        }
      }
    }
  }
}

void check_zone_membership(const ClockTree& tree, const ZoneMap& zones,
                           Report& r) {
  const std::size_t n = tree.size();
  std::vector<int> membership(n, 0);
  for (std::size_t z = 0; z < zones.zones().size(); ++z) {
    const Zone& zone = zones.zones()[z];
    const std::string loc = "zone " + std::to_string(z);
    if (zone.members.empty()) {
      r.warning("tree.zone-membership", loc,
                "empty zone kept in the zone map");
    }
    for (const NodeId m : zone.members) {
      if (!in_range(m, n)) {
        r.error("tree.zone-membership", loc,
                "member " + std::to_string(m) + " out of range");
        continue;
      }
      if (!tree.node(m).is_leaf()) {
        r.error("tree.zone-membership", loc,
                "member " + std::to_string(m) + " is not a leaf");
      }
      if (zones.zone_of(m) != static_cast<int>(z)) {
        r.error("tree.zone-membership", loc,
                "zone_of(" + std::to_string(m) + ") = " +
                    std::to_string(zones.zone_of(m)) +
                    " disagrees with the member list");
      }
      ++membership[static_cast<std::size_t>(m)];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!tree.nodes()[i].is_leaf()) continue;
    if (membership[i] != 1) {
      r.error("tree.zone-membership", node_loc(static_cast<NodeId>(i)),
              "leaf appears in " + std::to_string(membership[i]) +
                  " zones (expected exactly one)");
    }
  }
}

} // namespace

Report check_tree(const ClockTree& tree, const ZoneMap* zones) {
  Report r;
  if (tree.empty()) {
    r.warning("tree.root", "", "tree has no nodes");
    return r;
  }
  check_links(tree, r);
  check_reachability(tree, r);
  check_node_payload(tree, r);
  if (zones != nullptr) check_zone_membership(tree, *zones, r);
  return r;
}

} // namespace wm::verify
