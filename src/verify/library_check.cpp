#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "cells/cell.hpp"
#include "cells/library.hpp"
#include "verify/verify.hpp"

namespace wm::verify {

namespace {

std::string cell_loc(const Cell& c) { return "cell " + c.name; }

void check_cell(const Cell& c, Report& r) {
  if (c.drive <= 0) {
    r.error("lib.nonpositive", cell_loc(c),
            "drive strength must be positive");
  }
  if (c.c_in <= 0.0 || c.c_self < 0.0) {
    r.error("lib.nonpositive", cell_loc(c),
            "input capacitance must be positive and self-capacitance "
            "non-negative");
  }
  if (c.r_out <= 0.0) {
    r.error("lib.nonpositive", cell_loc(c),
            "output resistance must be positive");
  }
  if (c.d0 <= 0.0 || c.slew0 <= 0.0) {
    r.error("lib.nonpositive", cell_loc(c),
            "intrinsic delay and slew must be positive");
  }
  if (!(std::isfinite(c.sc_frac) && c.sc_frac >= 0.0 && c.sc_frac <= 1.0)) {
    r.error("lib.sc-frac", cell_loc(c),
            "short-circuit fraction must lie in [0, 1]");
  }

  const bool is_adjustable_kind =
      c.kind == CellKind::Adb || c.kind == CellKind::Adi;
  if (is_adjustable_kind != c.adjustable()) {
    r.error("lib.adjustable", cell_loc(c),
            is_adjustable_kind
                ? "ADB/ADI cell without a usable code range"
                : "plain buffer/inverter with adjustable-delay codes");
  }
  if ((c.adj_step > 0.0) != (c.adj_max_code > 0) || c.adj_step < 0.0 ||
      c.adj_max_code < 0) {
    r.error("lib.adjustable", cell_loc(c),
            "adj_step and adj_max_code must be positive together or "
            "zero together");
  }
}

/// Within one kind, a bigger drive must not be electrically weaker:
/// output resistance and intrinsic delay non-increasing, input
/// capacitance non-decreasing. Warning severity — a hand-written
/// third-party library may deliberately break the scaling law, but in
/// the built-in family a violation means corrupted cell data.
void check_monotone(const std::vector<const Cell*>& family, Report& r) {
  std::vector<const Cell*> sorted = family;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Cell* a, const Cell* b) {
                     return a->drive < b->drive;
                   });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    const Cell& lo = *sorted[i - 1];
    const Cell& hi = *sorted[i];
    if (hi.drive == lo.drive) {
      r.warning("lib.monotone-sizing", cell_loc(hi),
                "duplicate drive strength within kind (also " + lo.name +
                    ")");
      continue;
    }
    if (hi.r_out > lo.r_out) {
      r.warning("lib.monotone-sizing", cell_loc(hi),
                "output resistance rises with drive (vs " + lo.name + ")");
    }
    if (hi.d0 > lo.d0) {
      r.warning("lib.monotone-sizing", cell_loc(hi),
                "intrinsic delay rises with drive (vs " + lo.name + ")");
    }
    if (hi.c_in < lo.c_in) {
      r.warning("lib.monotone-sizing", cell_loc(hi),
                "input capacitance falls with drive (vs " + lo.name + ")");
    }
  }
}

} // namespace

Report check_library(const CellLibrary& lib) {
  Report r;
  if (lib.cells().empty()) {
    r.warning("lib.empty", "", "library has no cells");
    return r;
  }
  for (std::size_t i = 0; i < lib.cells().size(); ++i) {
    const Cell& c = lib.cells()[i];
    check_cell(c, r);
    for (std::size_t j = i + 1; j < lib.cells().size(); ++j) {
      if (lib.cells()[j].name == c.name) {
        r.error("lib.duplicate-name", cell_loc(c),
                "name appears more than once");
      }
    }
  }
  for (const CellKind kind : {CellKind::Buffer, CellKind::Inverter,
                              CellKind::Adb, CellKind::Adi}) {
    check_monotone(lib.of_kind(kind), r);
  }
  return r;
}

} // namespace wm::verify
