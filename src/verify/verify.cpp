#include "verify/verify.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/log.hpp"

namespace wm::verify {

Report check_design(const ClockTree& tree, const CellLibrary& lib,
                    const ZoneMap* zones) {
  Report r = check_library(lib);
  r.merge(check_tree(tree, zones));
  return r;
}

void enforce(const Report& report, const char* phase) {
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.severity == Severity::Warning) {
      WM_LOG(Warn) << "verify[" << phase << "]: " << to_string(d);
    }
  }
  if (report.error_count() == 0) return;

  std::ostringstream oss;
  oss << "invariant check failed at phase '" << phase << "' ("
      << report.error_count() << " error(s))";
  std::size_t listed = 0;
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.severity != Severity::Error) continue;
    oss << "\n  " << to_string(d);
    if (++listed == 8) {
      oss << "\n  ...";
      break;
    }
  }
  throw Error(oss.str());
}

} // namespace wm::verify
