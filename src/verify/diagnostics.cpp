#include "verify/diagnostics.hpp"

#include <sstream>

namespace wm::verify {

const char* to_string(Severity severity) {
  return severity == Severity::Error ? "error" : "warning";
}

std::string to_string(const Diagnostic& d) {
  std::ostringstream oss;
  oss << to_string(d.severity) << '[' << d.rule << ']';
  if (!d.location.empty()) oss << ' ' << d.location;
  oss << ": " << d.message;
  return oss.str();
}

void Report::add(Severity severity, std::string rule, std::string location,
                 std::string message) {
  if (severity == Severity::Error) ++errors_;
  diags_.push_back(Diagnostic{severity, std::move(rule), std::move(location),
                              std::move(message)});
}

void Report::error(std::string rule, std::string location,
                   std::string message) {
  add(Severity::Error, std::move(rule), std::move(location),
      std::move(message));
}

void Report::warning(std::string rule, std::string location,
                     std::string message) {
  add(Severity::Warning, std::move(rule), std::move(location),
      std::move(message));
}

bool Report::has(std::string_view rule) const {
  for (const Diagnostic& d : diags_) {
    if (d.rule == rule) return true;
  }
  return false;
}

void Report::merge(const Report& other) {
  diags_.insert(diags_.end(), other.diags_.begin(), other.diags_.end());
  errors_ += other.errors_;
}

std::string Report::to_string() const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    out += verify::to_string(d);
    out += '\n';
  }
  return out;
}

} // namespace wm::verify
