#include <cmath>
#include <string>

#include "mosp/graph.hpp"
#include "verify/verify.hpp"

namespace wm::verify {

namespace {

std::string vertex_loc(std::size_t row, std::size_t v) {
  return "row " + std::to_string(row) + " vertex " + std::to_string(v);
}

} // namespace

Report check_mosp(const MospGraph& g, std::size_t expected_dims) {
  Report r;
  if (g.dims <= 0) {
    r.error("mosp.dims", "", "weight dimension must be positive");
  } else if (expected_dims != 0 &&
             static_cast<std::size_t>(g.dims) != expected_dims) {
    r.error("mosp.dims", "",
            "weight dimension " + std::to_string(g.dims) +
                " does not match the sampling-slot count " +
                std::to_string(expected_dims));
  }
  if (g.rows.empty()) {
    r.error("mosp.no-rows", "", "graph has no sink rows");
    return r;
  }

  const std::size_t dims =
      g.dims > 0 ? static_cast<std::size_t>(g.dims) : 0;
  for (std::size_t row = 0; row < g.rows.size(); ++row) {
    if (g.rows[row].empty()) {
      r.error("mosp.row-empty", "row " + std::to_string(row),
              "no feasible option (the feasible-interval preprocessing "
              "must leave every sink at least one candidate)");
      continue;
    }
    for (std::size_t v = 0; v < g.rows[row].size(); ++v) {
      const MospVertex& vx = g.rows[row][v];
      if (dims != 0 && vx.weight.size() != dims) {
        r.error("mosp.weight-dims", vertex_loc(row, v),
                "weight vector of dimension " +
                    std::to_string(vx.weight.size()) + " (graph dims " +
                    std::to_string(g.dims) + ")");
      }
      if (vx.option < 0) {
        r.error("mosp.option-range", vertex_loc(row, v),
                "negative candidate-option index " +
                    std::to_string(vx.option));
      }
      for (const double w : vx.weight) {
        if (!std::isfinite(w) || w < 0.0) {
          r.error("mosp.weight-value", vertex_loc(row, v),
                  "noise weights must be finite and non-negative");
          break;
        }
      }
    }
  }

  if (!g.dest_weight.empty()) {
    if (dims != 0 && g.dest_weight.size() != dims) {
      r.error("mosp.weight-dims", "dest",
              "dest weight of dimension " +
                  std::to_string(g.dest_weight.size()) + " (graph dims " +
                  std::to_string(g.dims) + ")");
    }
    for (const double w : g.dest_weight) {
      if (!std::isfinite(w) || w < 0.0) {
        r.error("mosp.weight-value", "dest",
                "noise weights must be finite and non-negative");
        break;
      }
    }
  }
  return r;
}

} // namespace wm::verify
