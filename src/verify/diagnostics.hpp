#pragma once
// Structured diagnostics for the wm::verify invariant checker.
//
// Every violated invariant becomes a Diagnostic: a severity, a stable
// rule id ("tree.cycle", "mosp.weight-dims", ...), a location string
// ("node 17", "row 3 vertex 0"), and a human-readable message. Checkers
// accumulate diagnostics into a Report instead of asserting, so a lint
// pass can list *every* problem in one run; the in-flow phase hooks
// (core/wavemin.cpp) then escalate Error-severity reports to wm::Error.
//
// The rule catalog is documented in docs/static_analysis.md; rule ids
// are part of the tool's interface (tests and CI grep for them), so
// renaming one is a breaking change.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace wm::verify {

enum class Severity { Warning, Error };

const char* to_string(Severity severity);

struct Diagnostic {
  Severity severity = Severity::Error;
  std::string rule;      ///< stable rule id, e.g. "tree.cycle"
  std::string location;  ///< e.g. "node 17", "mode 1", "cell BUF_X8"
  std::string message;
};

/// Render as "error[tree.cycle] node 17: message".
std::string to_string(const Diagnostic& d);

class Report {
 public:
  void error(std::string rule, std::string location, std::string message);
  void warning(std::string rule, std::string location, std::string message);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  bool clean() const { return diags_.empty(); }
  std::size_t error_count() const { return errors_; }
  std::size_t warning_count() const { return diags_.size() - errors_; }

  /// True if any diagnostic carries the given rule id (test helper).
  bool has(std::string_view rule) const;

  /// Append all of `other`'s diagnostics to this report.
  void merge(const Report& other);

  /// One to_string(Diagnostic) line per diagnostic.
  std::string to_string() const;

 private:
  void add(Severity severity, std::string rule, std::string location,
           std::string message);

  std::vector<Diagnostic> diags_;
  std::size_t errors_ = 0;
};

} // namespace wm::verify
