#pragma once
// wm::metalint — project-level source/artifact lint (docs/static_analysis.md).
//
// Where wm::verify checks *designs* (trees, libraries, MOSP graphs),
// metalint checks the *repository*: the string catalogs that tie the
// code to its contracts. The repo's observability names, fault sites,
// verify rule ids and the serve error vocabulary are all plain strings
// — nothing in the compiler keeps `registry_.add("serve.submited")`
// from silently minting a counter the docs never heard of. metalint
// closes that gap with a standalone scanner (no LLVM dependency): a
// small C++ tokenizer walks src/ and tools/, a markdown parser reads
// the anchored catalog regions in docs/, and every catalog is checked
// BIDIRECTIONALLY — code→docs (no uncataloged emission) and docs→code
// (no stale catalog entry).
//
// Rules (stable ids, cataloged in docs/static_analysis.md):
//   metalint.counter-uncataloged    metric literals  <-> docs metrics
//   metalint.fault-site-uncataloged inject/note sites <-> docs fault-sites
//   metalint.rule-id-collision      rule-id ownership + <-> docs rules
//   metalint.error-vocab-drift      serve error codes <-> docs error-vocab
//   metalint.status-discarded       [[nodiscard]] on Status-shaped types
//                                   and no bare discarded Status calls
//   metalint.include-guard          every src/ header is #pragma once
//
// Catalog regions are delimited in the docs with HTML comments:
//   <!-- metalint:<kind>:begin --> ... <!-- metalint:<kind>:end -->
// where <kind> is one of metrics, fault-sites, rules, error-vocab.
// Inside a region, every `backtick` token matching the kind's grammar
// is a catalog entry; `prefix.*` wildcards satisfy code→docs and are
// exempt from docs→code.
//
// Diagnostics reuse wm::verify's machinery (stable rule ids, Report),
// and the driver (tools/wavemin_metalint) shares wavemin_lint's exit
// contract: 0 clean, 1 usage/bad root, 2 findings.

#include <string>
#include <string_view>
#include <vector>

#include "verify/diagnostics.hpp"

namespace wm::metalint {

struct Options {
  /// Repository root: the directory holding src/, tools/ and docs/.
  std::string root = ".";
};

/// Run every metalint rule against the tree at `options.root`.
verify::Report run(const Options& options);

// ---- testable building blocks (metalint_test.cpp) -------------------

/// Dotted lowercase identifier: metric / fault-site names
/// ("serve.queue_depth", "ck.kill_after_write").
bool is_dotted_name(std::string_view token);

/// Dotted name that may also use dashes: verify/metalint rule ids
/// ("mosp.beam-capped", "metalint.rule-id-collision").
bool is_rule_name(std::string_view token);

/// Lowercase dash word: serve error vocabulary ("breaker-open").
bool is_vocab_name(std::string_view token);

/// Wildcard catalog entry: "prefix.*" (the prefix itself dotted-valid
/// or a single segment).
bool is_wildcard(std::string_view token);

/// One catalog entry parsed out of an anchored docs region.
struct CatalogEntry {
  std::string name;
  std::string file;  ///< repo-relative markdown path
  int line = 0;
};

/// Extract the `backtick` tokens inside every
/// "<!-- metalint:<kind>:begin/end -->" region of one markdown file.
/// No grammar filtering here — callers filter; `file` only labels the
/// returned entries.
std::vector<CatalogEntry> catalog_entries(std::string_view markdown,
                                          std::string_view kind,
                                          std::string_view file);

} // namespace wm::metalint
