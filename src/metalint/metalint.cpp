#include "metalint/metalint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace wm::metalint {

namespace {

namespace fs = std::filesystem;

// ---- grammar --------------------------------------------------------

bool lower_word(std::string_view s, bool dashes) {
  if (s.empty()) return false;
  if (std::islower(static_cast<unsigned char>(s.front())) == 0) {
    return false;
  }
  for (const char c : s) {
    const bool ok = std::islower(static_cast<unsigned char>(c)) != 0 ||
                    std::isdigit(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || (dashes && c == '-');
    if (!ok) return false;
  }
  return true;
}

bool dotted(std::string_view s, bool dashes) {
  std::size_t begin = 0;
  int segments = 0;
  while (begin <= s.size()) {
    const std::size_t dot = s.find('.', begin);
    const std::string_view seg =
        s.substr(begin, (dot == std::string_view::npos ? s.size() : dot) -
                            begin);
    if (!lower_word(seg, dashes)) return false;
    ++segments;
    if (dot == std::string_view::npos) break;
    begin = dot + 1;
  }
  return segments >= 2;
}

} // namespace

bool is_dotted_name(std::string_view token) {
  return dotted(token, /*dashes=*/false);
}

bool is_rule_name(std::string_view token) {
  return dotted(token, /*dashes=*/true);
}

bool is_vocab_name(std::string_view token) {
  return lower_word(token, /*dashes=*/true);
}

bool is_wildcard(std::string_view token) {
  if (token.size() < 3 || token.substr(token.size() - 2) != ".*") {
    return false;
  }
  const std::string_view prefix = token.substr(0, token.size() - 2);
  return lower_word(prefix, /*dashes=*/false) ||
         dotted(prefix, /*dashes=*/false);
}

namespace {

// ---- C++ tokenizer --------------------------------------------------
// Just enough lexing to make string literals, comments and call
// structure unambiguous. Preprocessor directives are skipped whole
// (so #include "path" never looks like a string operand); numbers
// become opaque tokens; char literals vanish.

struct Tok {
  enum class Kind { Ident, Str, Num, Punct };
  Kind kind;
  std::string text;  ///< Str: contents between the quotes, raw escapes
  int line = 0;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::vector<Tok> tokenize(std::string_view src) {
  std::vector<Tok> out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  bool at_line_start = true;  // only whitespace seen since the newline

  auto newline = [&] {
    ++line;
    at_line_start = true;
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      newline();
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Preprocessor directive: swallow to end of line, honoring
    // backslash continuations.
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          newline();
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      continue;
    }
    at_line_start = false;
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') newline();
        ++i;
      }
      i = std::min(i + 2, n);
      continue;
    }
    if (c == '"') {
      const int start_line = line;
      std::string text;
      ++i;
      while (i < n && src[i] != '"') {
        if (src[i] == '\\' && i + 1 < n) {
          text += src[i];
          text += src[i + 1];
          i += 2;
          continue;
        }
        if (src[i] == '\n') newline();  // unterminated; keep lexing
        text += src[i];
        ++i;
      }
      ++i;  // closing quote
      out.push_back({Tok::Kind::Str, std::move(text), start_line});
      continue;
    }
    if (c == '\'') {
      ++i;
      while (i < n && src[i] != '\'') {
        if (src[i] == '\\') ++i;
        if (i < n && src[i] == '\n') newline();
        ++i;
      }
      ++i;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(src[j])) ++j;
      out.push_back(
          {Tok::Kind::Ident, std::string(src.substr(i, j - i)), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i;
      // Accept ' digit separators (4'000'000) so they don't get lexed
      // as char literals.
      while (j < n &&
             (ident_char(src[j]) || src[j] == '.' ||
              (src[j] == '\'' && j + 1 < n && ident_char(src[j + 1])))) {
        ++j;
      }
      out.push_back({Tok::Kind::Num, std::string(src.substr(i, j - i)),
                     line});
      i = j;
      continue;
    }
    out.push_back({Tok::Kind::Punct, std::string(1, c), line});
    ++i;
  }
  return out;
}

// First string literal inside the call whose open paren is at `open`
// (any nesting depth) that satisfies `grammar`; empty if none. Sets
// `*close` to the index of the matching ')'.
std::string first_literal_in_call(const std::vector<Tok>& toks,
                                  std::size_t open,
                                  bool (*grammar)(std::string_view),
                                  std::size_t* close, int* lit_line) {
  int depth = 0;
  std::string found;
  for (std::size_t i = open; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (t.kind == Tok::Kind::Punct && t.text == "(") {
      ++depth;
    } else if (t.kind == Tok::Kind::Punct && t.text == ")") {
      --depth;
      if (depth == 0) {
        *close = i;
        return found;
      }
    } else if (found.empty() && t.kind == Tok::Kind::Str &&
               grammar(t.text)) {
      found = t.text;
      if (lit_line != nullptr) *lit_line = t.line;
    }
  }
  *close = toks.size();
  return found;
}

// ---- repository walking ---------------------------------------------

struct SourceFile {
  std::string rel;   ///< path relative to the repo root
  std::string text;  ///< full contents
};

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// All .cpp/.hpp under root/<subdir>, sorted by relative path so the
// report order is deterministic.
std::vector<SourceFile> collect_sources(const fs::path& root,
                                        const char* subdir) {
  std::vector<SourceFile> files;
  const fs::path base = root / subdir;
  std::error_code ec;
  if (!fs::is_directory(base, ec)) return files;
  for (fs::recursive_directory_iterator it(base, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file()) continue;
    const std::string ext = it->path().extension().string();
    if (ext != ".cpp" && ext != ".hpp") continue;
    files.push_back({fs::relative(it->path(), root).generic_string(),
                     slurp(it->path())});
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel < b.rel;
            });
  return files;
}

std::vector<SourceFile> collect_docs(const fs::path& root) {
  std::vector<SourceFile> files;
  const fs::path base = root / "docs";
  std::error_code ec;
  if (!fs::is_directory(base, ec)) return files;
  for (fs::directory_iterator it(base, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file()) continue;
    if (it->path().extension() != ".md") continue;
    files.push_back({fs::relative(it->path(), root).generic_string(),
                     slurp(it->path())});
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel < b.rel;
            });
  return files;
}

// ---- shared cross-check plumbing ------------------------------------

struct Use {
  std::string name;
  std::string file;
  int line = 0;
};

std::string loc(const std::string& file, int line) {
  return file + ":" + std::to_string(line);
}

// Pull `name` uses out of calls to any function in `callees`
// ("add"/"inject"/...), applying `grammar` to candidate literals.
// `dot_qualified` restricts to member-style calls (`x.error(`,
// `x->error(`) — the rule-id scan needs it because bare error(...)
// identifiers are everywhere.
void scan_calls(const SourceFile& f, const std::set<std::string>& callees,
                bool (*grammar)(std::string_view), bool dot_qualified,
                std::vector<Use>* out) {
  const std::vector<Tok> toks = tokenize(f.text);
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Tok::Kind::Ident ||
        callees.count(toks[i].text) == 0) {
      continue;
    }
    if (toks[i + 1].kind != Tok::Kind::Punct || toks[i + 1].text != "(") {
      continue;
    }
    if (dot_qualified) {
      if (i == 0) continue;
      const Tok& prev = toks[i - 1];
      const bool member =
          prev.kind == Tok::Kind::Punct &&
          (prev.text == "." || prev.text == ">");  // ">" tail of "->"
      if (!member) continue;
    }
    std::size_t close = 0;
    int lit_line = toks[i].line;
    const std::string name =
        first_literal_in_call(toks, i + 1, grammar, &close, &lit_line);
    if (!name.empty()) {
      out->push_back({name, f.rel, lit_line});
    }
    if (close > i) i = close;
  }
}

struct Catalog {
  std::map<std::string, CatalogEntry> exact;  ///< name -> first mention
  std::vector<CatalogEntry> wildcards;        ///< "prefix.*" entries
};

Catalog build_catalog(const std::vector<SourceFile>& docs,
                      std::string_view kind,
                      bool (*grammar)(std::string_view)) {
  Catalog cat;
  for (const SourceFile& doc : docs) {
    for (CatalogEntry& e : catalog_entries(doc.text, kind, doc.rel)) {
      if (is_wildcard(e.name)) {
        cat.wildcards.push_back(std::move(e));
      } else if (grammar(e.name)) {
        cat.exact.emplace(e.name, std::move(e));
      }
    }
  }
  return cat;
}

bool cataloged(const Catalog& cat, const std::string& name) {
  if (cat.exact.count(name) != 0) return true;
  for (const CatalogEntry& w : cat.wildcards) {
    const std::string_view prefix(w.name.data(), w.name.size() - 1);
    if (name.size() > prefix.size() &&
        std::string_view(name).substr(0, prefix.size()) == prefix) {
      return true;
    }
  }
  return false;
}

// The bidirectional drift check every catalog rule shares: each code
// use must be cataloged, each exact catalog entry must be used. The
// caller supplies `emit` so the rule id is a string literal at a real
// Report::error() call — which is exactly the shape the rule-id scan
// itself looks for.
template <typename Emit>
void cross_check(const std::vector<Use>& uses, const Catalog& cat,
                 const char* what, const char* where, Emit&& emit) {
  std::set<std::string> reported;
  std::set<std::string> used;
  for (const Use& u : uses) {
    used.insert(u.name);
    if (cataloged(cat, u.name)) continue;
    if (!reported.insert(u.name).second) continue;
    emit(loc(u.file, u.line),
         std::string(what) + " \"" + u.name + "\" is not cataloged in " +
             where +
             " (add it to the metalint region, or fix the name)");
  }
  for (const auto& [name, entry] : cat.exact) {
    if (used.count(name) != 0) continue;
    emit(loc(entry.file, entry.line),
         std::string(what) + " \"" + name +
             "\" is cataloged but never appears in the code "
             "(stale docs entry, or the emission was renamed)");
  }
}

// ---- rule: metalint.include-guard -----------------------------------

void check_include_guards(const std::vector<SourceFile>& files,
                          verify::Report* out) {
  for (const SourceFile& f : files) {
    if (f.rel.size() < 4 ||
        f.rel.substr(f.rel.size() - 4) != ".hpp") {
      continue;
    }
    std::istringstream ss(f.text);
    std::string line;
    int lineno = 0;
    bool in_block_comment = false;
    while (std::getline(ss, line)) {
      ++lineno;
      std::string_view s(line);
      while (!s.empty() &&
             std::isspace(static_cast<unsigned char>(s.front())) != 0) {
        s.remove_prefix(1);
      }
      if (in_block_comment) {
        const std::size_t close = s.find("*/");
        if (close == std::string_view::npos) continue;
        in_block_comment = false;
        s.remove_prefix(close + 2);
        while (!s.empty() &&
               std::isspace(static_cast<unsigned char>(s.front())) != 0) {
          s.remove_prefix(1);
        }
      }
      if (s.empty()) continue;
      if (s.substr(0, 2) == "//") continue;
      if (s.substr(0, 2) == "/*") {
        if (s.find("*/", 2) == std::string_view::npos) {
          in_block_comment = true;
        }
        continue;  // assume nothing after the comment on this line
      }
      // First meaningful line.
      if (s.substr(0, 12) == "#pragma once") break;
      out->error("metalint.include-guard", loc(f.rel, lineno),
                 s.substr(0, 7) == "#ifndef"
                     ? "header opens with an #ifndef guard; this repo "
                       "standardizes on #pragma once as the first "
                       "meaningful line"
                     : "header does not start with #pragma once "
                       "(every src/ header must, before any other "
                       "code)");
      break;
    }
  }
}

// ---- rule: metalint.status-discarded --------------------------------

bool status_shaped(std::string_view name) {
  if (name == "Status") return true;
  if (name.size() > 8 && name.substr(0, 8) == "StatusOr") return true;
  return name.size() >= 12 && name.substr(0, 6) == "TryRun" &&
         name.substr(name.size() - 6) == "Result";
}

// Definitions of Status-shaped classes must carry [[nodiscard]].
void check_nodiscard_types(const SourceFile& f, verify::Report* out) {
  const std::vector<Tok> toks = tokenize(f.text);
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Tok::Kind::Ident ||
        (toks[i].text != "class" && toks[i].text != "struct")) {
      continue;
    }
    if (i > 0 && toks[i - 1].kind == Tok::Kind::Ident &&
        toks[i - 1].text == "enum") {
      continue;  // enum class
    }
    // Swallow attribute groups, remembering a [[nodiscard]].
    std::size_t j = i + 1;
    bool nodiscard = false;
    while (j + 1 < toks.size() && toks[j].kind == Tok::Kind::Punct &&
           toks[j].text == "[" && toks[j + 1].text == "[") {
      int brackets = 0;
      for (; j < toks.size(); ++j) {
        if (toks[j].kind == Tok::Kind::Punct && toks[j].text == "[") {
          ++brackets;
        } else if (toks[j].kind == Tok::Kind::Punct &&
                   toks[j].text == "]") {
          if (--brackets == 0) {
            ++j;
            break;
          }
        } else if (toks[j].kind == Tok::Kind::Ident &&
                   toks[j].text == "nodiscard") {
          nodiscard = true;
        }
      }
    }
    if (j >= toks.size() || toks[j].kind != Tok::Kind::Ident) continue;
    const Tok& name = toks[j];
    if (!status_shaped(name.text)) continue;
    if (j + 1 >= toks.size()) continue;
    const Tok& after = toks[j + 1];
    const bool definition =
        after.kind == Tok::Kind::Punct &&
        (after.text == "{" || after.text == ":");
    if (!definition || nodiscard) continue;
    out->error("metalint.status-discarded", loc(f.rel, name.line),
               "Status-shaped type " + name.text +
                   " is defined without [[nodiscard]]; callers could "
                   "silently drop errors");
  }
}

// Function names declared in src/ headers to return a Status-shaped
// type — calls to these must not be bare expression statements.
std::set<std::string> collect_status_returning(
    const std::vector<SourceFile>& headers) {
  std::set<std::string> names;
  for (const SourceFile& f : headers) {
    if (f.rel.size() < 4 ||
        f.rel.substr(f.rel.size() - 4) != ".hpp") {
      continue;
    }
    const std::vector<Tok> toks = tokenize(f.text);
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].kind == Tok::Kind::Ident &&
          status_shaped(toks[i].text) &&
          toks[i + 1].kind == Tok::Kind::Ident &&
          toks[i + 2].kind == Tok::Kind::Punct &&
          toks[i + 2].text == "(") {
        names.insert(toks[i + 1].text);
      }
    }
  }
  return names;
}

void check_discarded_calls(const SourceFile& f,
                           const std::set<std::string>& returning,
                           verify::Report* out) {
  const std::vector<Tok> toks = tokenize(f.text);
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Tok::Kind::Ident ||
        returning.count(toks[i].text) == 0) {
      continue;
    }
    if (toks[i + 1].kind != Tok::Kind::Punct || toks[i + 1].text != "(") {
      continue;
    }
    // Only bare statements: the previous token ends a statement (or
    // the call is qualified like wm::try_run(...) right after one).
    std::size_t p = i;
    while (p >= 2 && toks[p - 1].kind == Tok::Kind::Punct &&
           toks[p - 1].text == ":" && toks[p - 2].text == ":") {
      if (p < 3 || toks[p - 3].kind != Tok::Kind::Ident) break;
      p -= 3;  // step over a name:: qualifier
    }
    const bool stmt_start =
        p == 0 || (toks[p - 1].kind == Tok::Kind::Punct &&
                   (toks[p - 1].text == ";" || toks[p - 1].text == "{" ||
                    toks[p - 1].text == "}"));
    if (!stmt_start) continue;
    std::size_t close = 0;
    (void)first_literal_in_call(toks, i + 1, is_dotted_name, &close,
                                nullptr);
    if (close + 1 >= toks.size()) continue;
    const Tok& after = toks[close + 1];
    if (after.kind == Tok::Kind::Punct && after.text == ";") {
      out->error("metalint.status-discarded", loc(f.rel, toks[i].line),
                 "result of " + toks[i].text +
                     "() is discarded; it returns a Status-shaped "
                     "value — check it or cast to (void) with a "
                     "reason");
    }
    i = close;
  }
}

} // namespace

// ---- markdown catalog parsing ---------------------------------------

std::vector<CatalogEntry> catalog_entries(std::string_view markdown,
                                          std::string_view kind,
                                          std::string_view file) {
  const std::string begin_tag =
      "<!-- metalint:" + std::string(kind) + ":begin -->";
  const std::string end_tag =
      "<!-- metalint:" + std::string(kind) + ":end -->";
  std::vector<CatalogEntry> out;
  std::istringstream ss{std::string(markdown)};
  std::string line;
  int lineno = 0;
  bool inside = false;
  while (std::getline(ss, line)) {
    ++lineno;
    if (line.find(begin_tag) != std::string::npos) {
      inside = true;
      continue;
    }
    if (line.find(end_tag) != std::string::npos) {
      inside = false;
      continue;
    }
    if (!inside) continue;
    std::size_t i = 0;
    while (true) {
      const std::size_t open = line.find('`', i);
      if (open == std::string::npos) break;
      const std::size_t close = line.find('`', open + 1);
      if (close == std::string::npos) break;
      CatalogEntry e;
      e.name = line.substr(open + 1, close - open - 1);
      e.file = std::string(file);
      e.line = lineno;
      if (!e.name.empty()) out.push_back(std::move(e));
      i = close + 1;
    }
  }
  return out;
}

// ---- the engine -----------------------------------------------------

verify::Report run(const Options& options) {
  verify::Report out;
  const fs::path root(options.root);

  const std::vector<SourceFile> src = collect_sources(root, "src");
  const std::vector<SourceFile> tools = collect_sources(root, "tools");
  const std::vector<SourceFile> docs = collect_docs(root);

  std::vector<SourceFile> src_and_tools = src;
  src_and_tools.insert(src_and_tools.end(), tools.begin(), tools.end());

  // metalint.counter-uncataloged — every metric literal passed to the
  // obs helpers must be in a docs metrics region, and vice versa.
  {
    const std::set<std::string> callees = {"add",        "gauge_set",
                                           "gauge_max",  "observe_ms",
                                           "counter",    "histogram"};
    std::vector<Use> uses;
    for (const SourceFile& f : src) {
      scan_calls(f, callees, &is_dotted_name, /*dot_qualified=*/false,
                 &uses);
    }
    const Catalog cat = build_catalog(docs, "metrics", &is_dotted_name);
    cross_check(uses, cat, "metric",
                "a docs metrics region (docs/observability.md)",
                [&out](const std::string& at, const std::string& msg) {
                  out.error("metalint.counter-uncataloged", at, msg);
                });
  }

  // metalint.fault-site-uncataloged — inject()/note() site names vs the
  // fault-site matrix in docs/robustness.md.
  {
    const std::set<std::string> callees = {"inject", "note",
                                           "alloc_guard"};
    std::vector<Use> uses;
    for (const SourceFile& f : src) {
      scan_calls(f, callees, &is_dotted_name, /*dot_qualified=*/false,
                 &uses);
    }
    const Catalog cat =
        build_catalog(docs, "fault-sites", &is_dotted_name);
    cross_check(uses, cat, "fault site",
                "a docs fault-sites region (docs/robustness.md)",
                [&out](const std::string& at, const std::string& msg) {
                  out.error("metalint.fault-site-uncataloged", at, msg);
                });
  }

  // metalint.rule-id-collision — every diagnostic rule id has exactly
  // one owning file, and the id set matches the docs rule catalog.
  {
    const std::set<std::string> callees = {"error", "warning"};
    std::vector<Use> uses;
    for (const SourceFile& f : src_and_tools) {
      scan_calls(f, callees, &is_rule_name, /*dot_qualified=*/true,
                 &uses);
    }
    std::map<std::string, std::map<std::string, int>> owners;
    for (const Use& u : uses) {
      owners[u.name].emplace(u.file, u.line);
    }
    for (const auto& [id, files] : owners) {
      if (files.size() <= 1) continue;
      std::string listing;
      for (const auto& [file, line] : files) {
        if (!listing.empty()) listing += ", ";
        listing += loc(file, line);
      }
      out.error("metalint.rule-id-collision",
                loc(files.begin()->first, files.begin()->second),
                "rule id \"" + id + "\" is emitted from " +
                    std::to_string(files.size()) +
                    " different files (" + listing +
                    "); rule ids are owned by exactly one checker");
    }
    const Catalog cat = build_catalog(docs, "rules", &is_rule_name);
    cross_check(uses, cat, "rule id",
                "the docs rules region (docs/static_analysis.md)",
                [&out](const std::string& at, const std::string& msg) {
                  out.error("metalint.rule-id-collision", at, msg);
                });
  }

  // metalint.error-vocab-drift — error_frame() codes in src/serve vs
  // the wavemin.jobs/v1 vocabulary in docs/serving.md.
  {
    const std::set<std::string> callees = {"error_frame"};
    std::vector<Use> uses;
    for (const SourceFile& f : src) {
      if (f.rel.substr(0, 10) != "src/serve/") continue;
      scan_calls(f, callees, &is_vocab_name, /*dot_qualified=*/false,
                 &uses);
    }
    const Catalog cat = build_catalog(docs, "error-vocab",
                                      &is_vocab_name);
    cross_check(uses, cat, "serve error code",
                "the docs error-vocab region (docs/serving.md)",
                [&out](const std::string& at, const std::string& msg) {
                  out.error("metalint.error-vocab-drift", at, msg);
                });
  }

  // metalint.status-discarded — [[nodiscard]] on the types, no bare
  // calls dropping a Status-shaped result.
  {
    for (const SourceFile& f : src) check_nodiscard_types(f, &out);
    const std::set<std::string> returning =
        collect_status_returning(src);
    for (const SourceFile& f : src_and_tools) {
      check_discarded_calls(f, returning, &out);
    }
  }

  // metalint.include-guard — pragma-once hygiene across src/ headers.
  check_include_guards(src, &out);

  return out;
}

} // namespace wm::metalint
