#pragma once
// Zone partitioning (paper Sec. V-A / VII-A).
//
// Power/ground noise is a local effect, so the design is divided into
// square zones (50 x 50 um by default) and the optimization minimizes
// each zone's local peak current. A Zone is the set of leaf buffering
// elements whose placement falls inside one grid tile.

#include <vector>

#include "tree/clock_tree.hpp"
#include "util/units.hpp"

namespace wm {

struct Zone {
  int gx = 0;  ///< grid column
  int gy = 0;  ///< grid row
  std::vector<NodeId> members;  ///< leaf nodes inside this tile
  Point center;                 ///< tile center (for the grid noise model)
};

class ZoneMap {
 public:
  /// Partition the tree's leaves into zones of the given tile size.
  /// Only non-empty zones are kept.
  ZoneMap(const ClockTree& tree, Um tile = tech::kZoneSize);

  const std::vector<Zone>& zones() const { return zones_; }
  Um tile() const { return tile_; }

  /// Average leaves per (non-empty) zone — the statistic the paper
  /// quotes (4.3 for ISCAS'89, 4.9 for ISPD'09, 7.1 for s35932).
  double mean_occupancy() const;

  /// Index of the zone containing the given leaf; -1 if not a leaf.
  int zone_of(NodeId leaf) const;

 private:
  Um tile_;
  std::vector<Zone> zones_;
  std::vector<int> leaf_zone_;  // indexed by NodeId
};

} // namespace wm
