#pragma once
// Buffered clock tree data structure.
//
// Nodes form an arena (ids are stable indices). Ids are created in
// parent-before-child order, but split_edge() can break that, so
// traversals use topological_order(). Every node carries a buffering
// cell; leaf nodes additionally carry the lumped capacitance of the
// flip-flops they drive (the paper calls leaf buffering elements "sinks").
//
// Polarity assignment / buffer sizing mutate a node's cell in place; the
// tree also stores, per adjustable cell, the per-power-mode delay codes
// chosen by the ADB allocator.

#include <cstdint>
#include <vector>

#include "cells/cell.hpp"
#include "util/units.hpp"

namespace wm {

using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

struct Point {
  Um x = 0.0;
  Um y = 0.0;
};

inline Um manhattan(const Point& a, const Point& b) {
  const Um dx = a.x > b.x ? a.x - b.x : b.x - a.x;
  const Um dy = a.y > b.y ? a.y - b.y : b.y - a.y;
  return dx + dy;
}

struct TreeNode {
  NodeId id = kNoNode;
  NodeId parent = kNoNode;
  std::vector<NodeId> children;
  Point pos;
  const Cell* cell = nullptr;  ///< buffering element placed at this node
  Um wire_len = 0.0;           ///< routed length of the edge from parent
  Ps route_extra = 0.0;        ///< extra edge delay from a resistive
                               ///< via/detour stack (delay without the
                               ///< capacitive load of a snaked wire)
  Ff sink_cap = 0.0;           ///< leaf only: lumped FF + local wire load
  int island = 0;              ///< voltage island the node sits in
  /// Per-power-mode capacitor-bank codes (empty unless the node holds an
  /// adjustable cell configured by the ADB allocator).
  std::vector<int> adj_codes;
  /// Per-power-mode polarity selection of an XOR-reconfigurable leaf
  /// ([30],[31]: an XOR gate ahead of the cell flips the clock phase
  /// under mode control). Empty = static polarity from the cell itself.
  std::vector<std::uint8_t> xor_negative;
  /// Extra static cell delay (e.g. the XOR gate of a reconfigurable
  /// leaf); applies identically in every mode.
  Ps cell_extra_delay = 0.0;

  bool is_leaf() const { return children.empty(); }
};

class ClockTree {
 public:
  /// Create the root node. Must be called exactly once, first.
  NodeId add_root(Point pos, const Cell* cell);

  /// Append a child of `parent`. wire_len defaults to the Manhattan
  /// distance between the two node positions.
  NodeId add_node(NodeId parent, Point pos, const Cell* cell,
                  Um wire_len = -1.0);

  bool empty() const { return nodes_.empty(); }
  std::size_t size() const { return nodes_.size(); }
  NodeId root() const { return nodes_.empty() ? kNoNode : 0; }

  TreeNode& node(NodeId id);
  const TreeNode& node(NodeId id) const;
  const std::vector<TreeNode>& nodes() const { return nodes_; }

  /// Ids of all leaf nodes (the paper's set L), in id order.
  std::vector<NodeId> leaves() const;

  /// Ids of all non-leaf nodes, in id order.
  std::vector<NodeId> non_leaves() const;

  std::size_t leaf_count() const;

  /// Replace the buffering cell at `id` (polarity assignment / sizing).
  void set_cell(NodeId id, const Cell* cell);

  /// Insert a new node on the edge from `child`'s parent to `child`
  /// (repeater insertion). The new node takes over a proportional share
  /// of the edge's wire length based on its position. Returns the new id.
  NodeId split_edge(NodeId child, Point pos, const Cell* cell);

  /// Insert a new node directly below `parent`, adopting ALL of
  /// parent's current children (used for source-route repeater chains:
  /// a common-path cell delays every sink equally, so it is
  /// skew-neutral). Returns the new id.
  NodeId insert_below(NodeId parent, Point pos, const Cell* cell);

  /// Parent-before-child order (BFS from the root).
  std::vector<NodeId> topological_order() const;

  /// Capacitive load seen by the cell at `id`: its own sink load plus,
  /// for every child edge, the wire capacitance and the child cell's
  /// input pin capacitance.
  Ff load_of(NodeId id) const;

  /// Signal polarity (relative to the clock source) at the *output* of
  /// node `id`: counts inverting cells on the root-to-id path.
  Polarity output_polarity(NodeId id) const;

  /// All leaf ids in the subtree rooted at `id` (id itself if a leaf).
  std::vector<NodeId> leaves_under(NodeId id) const;

  /// Deep copy with cells re-pointed into the same library (cells are
  /// owned by the CellLibrary, so the default copy is already correct;
  /// provided for clarity at call sites).
  ClockTree clone() const { return *this; }

 private:
  std::vector<TreeNode> nodes_;
};

} // namespace wm
