#include "tree/zone.hpp"

#include <cmath>
#include <map>

#include "util/error.hpp"

namespace wm {

ZoneMap::ZoneMap(const ClockTree& tree, Um tile) : tile_(tile) {
  WM_REQUIRE(tile > 0.0, "zone tile size must be positive");
  leaf_zone_.assign(tree.size(), -1);

  std::map<std::pair<int, int>, std::size_t> index;
  for (const TreeNode& n : tree.nodes()) {
    if (!n.is_leaf()) continue;
    const int gx = static_cast<int>(std::floor(n.pos.x / tile));
    const int gy = static_cast<int>(std::floor(n.pos.y / tile));
    const auto key = std::make_pair(gx, gy);
    auto it = index.find(key);
    if (it == index.end()) {
      Zone z;
      z.gx = gx;
      z.gy = gy;
      z.center = {(static_cast<Um>(gx) + 0.5) * tile,
                  (static_cast<Um>(gy) + 0.5) * tile};
      it = index.emplace(key, zones_.size()).first;
      zones_.push_back(std::move(z));
    }
    zones_[it->second].members.push_back(n.id);
    leaf_zone_[n.id] = static_cast<int>(it->second);
  }
}

double ZoneMap::mean_occupancy() const {
  if (zones_.empty()) return 0.0;
  std::size_t total = 0;
  for (const Zone& z : zones_) total += z.members.size();
  return static_cast<double>(total) / static_cast<double>(zones_.size());
}

int ZoneMap::zone_of(NodeId leaf) const {
  if (leaf < 0 || leaf >= static_cast<NodeId>(leaf_zone_.size())) return -1;
  return leaf_zone_[leaf];
}

} // namespace wm
