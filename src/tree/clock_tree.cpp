#include "tree/clock_tree.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace wm {

NodeId ClockTree::add_root(Point pos, const Cell* cell) {
  WM_REQUIRE(nodes_.empty(), "tree already has a root");
  WM_REQUIRE(cell != nullptr, "root needs a cell");
  TreeNode n;
  n.id = 0;
  n.pos = pos;
  n.cell = cell;
  nodes_.push_back(std::move(n));
  return 0;
}

NodeId ClockTree::add_node(NodeId parent, Point pos, const Cell* cell,
                           Um wire_len) {
  WM_REQUIRE(parent >= 0 && parent < static_cast<NodeId>(nodes_.size()),
             "invalid parent id");
  WM_REQUIRE(cell != nullptr, "node needs a cell");
  const auto id = static_cast<NodeId>(nodes_.size());
  TreeNode n;
  n.id = id;
  n.parent = parent;
  n.pos = pos;
  n.cell = cell;
  n.wire_len = wire_len >= 0.0 ? wire_len : manhattan(pos, nodes_[parent].pos);
  nodes_.push_back(std::move(n));
  nodes_[parent].children.push_back(id);
  return id;
}

TreeNode& ClockTree::node(NodeId id) {
  WM_REQUIRE(id >= 0 && id < static_cast<NodeId>(nodes_.size()),
             "invalid node id");
  return nodes_[id];
}

const TreeNode& ClockTree::node(NodeId id) const {
  WM_REQUIRE(id >= 0 && id < static_cast<NodeId>(nodes_.size()),
             "invalid node id");
  return nodes_[id];
}

std::vector<NodeId> ClockTree::leaves() const {
  std::vector<NodeId> out;
  for (const TreeNode& n : nodes_) {
    if (n.is_leaf()) out.push_back(n.id);
  }
  return out;
}

std::vector<NodeId> ClockTree::non_leaves() const {
  std::vector<NodeId> out;
  for (const TreeNode& n : nodes_) {
    if (!n.is_leaf()) out.push_back(n.id);
  }
  return out;
}

std::size_t ClockTree::leaf_count() const {
  std::size_t k = 0;
  for (const TreeNode& n : nodes_) {
    if (n.is_leaf()) ++k;
  }
  return k;
}

void ClockTree::set_cell(NodeId id, const Cell* cell) {
  WM_REQUIRE(cell != nullptr, "cannot clear a node's cell");
  node(id).cell = cell;
}

NodeId ClockTree::split_edge(NodeId child, Point pos, const Cell* cell) {
  WM_REQUIRE(cell != nullptr, "repeater needs a cell");
  TreeNode& c = node(child);
  WM_REQUIRE(c.parent != kNoNode, "cannot split above the root");
  const NodeId parent = c.parent;
  const Um total = c.wire_len;
  const Um to_new = manhattan(nodes_[parent].pos, pos);
  const Um frac = total > 0.0 ? std::min(1.0, to_new / (to_new + manhattan(
                                                 pos, c.pos) + 1e-9))
                              : 0.5;

  const auto id = static_cast<NodeId>(nodes_.size());
  TreeNode m;
  m.id = id;
  m.parent = parent;
  m.pos = pos;
  m.cell = cell;
  m.wire_len = total * frac;
  m.children.push_back(child);
  nodes_.push_back(std::move(m));

  // Re-point the edge: parent -> m -> child.
  auto& siblings = nodes_[parent].children;
  *std::find(siblings.begin(), siblings.end(), child) = id;
  nodes_[child].parent = id;
  nodes_[child].wire_len = total * (1.0 - frac);
  return id;
}

NodeId ClockTree::insert_below(NodeId parent, Point pos, const Cell* cell) {
  WM_REQUIRE(cell != nullptr, "node needs a cell");
  TreeNode& p = node(parent);
  const auto id = static_cast<NodeId>(nodes_.size());
  TreeNode m;
  m.id = id;
  m.parent = parent;
  m.pos = pos;
  m.cell = cell;
  m.wire_len = manhattan(pos, p.pos);
  m.children = std::move(p.children);
  nodes_.push_back(std::move(m));
  for (NodeId c : nodes_[static_cast<std::size_t>(id)].children) {
    nodes_[static_cast<std::size_t>(c)].parent = id;
  }
  nodes_[static_cast<std::size_t>(parent)].children = {id};
  return id;
}

std::vector<NodeId> ClockTree::topological_order() const {
  std::vector<NodeId> order;
  if (nodes_.empty()) return order;
  order.reserve(nodes_.size());
  std::vector<NodeId> queue{root()};
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId v = queue[head];
    order.push_back(v);
    for (NodeId c : nodes_[static_cast<std::size_t>(v)].children) {
      queue.push_back(c);
    }
  }
  WM_ASSERT(order.size() == nodes_.size(), "tree is not connected");
  return order;
}

Ff ClockTree::load_of(NodeId id) const {
  const TreeNode& n = node(id);
  Ff load = n.sink_cap;
  for (NodeId c : n.children) {
    const TreeNode& ch = nodes_[c];
    load += ch.wire_len * tech::kWireCapPerUm + ch.cell->c_in;
  }
  return load;
}

Polarity ClockTree::output_polarity(NodeId id) const {
  int inversions = 0;
  for (NodeId v = id; v != kNoNode; v = nodes_[v].parent) {
    if (nodes_[v].cell->inverting()) ++inversions;
  }
  return inversions % 2 == 0 ? Polarity::Positive : Polarity::Negative;
}

std::vector<NodeId> ClockTree::leaves_under(NodeId id) const {
  std::vector<NodeId> out;
  std::vector<NodeId> stack{id};
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    const TreeNode& n = node(v);
    if (n.is_leaf()) {
      out.push_back(v);
    } else {
      for (NodeId c : n.children) stack.push_back(c);
    }
  }
  return out;
}

} // namespace wm
