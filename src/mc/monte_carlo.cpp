#include "mc/monte_carlo.hpp"

#include <algorithm>
#include <vector>

#include "grid/power_grid.hpp"
#include "timing/arrival.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "wave/tree_sim.hpp"

namespace wm {

McResult run_monte_carlo(const ClockTree& tree, const ModeSet& modes,
                         McOptions opts) {
  WM_REQUIRE(opts.instances >= 1, "need at least one MC instance");
  Rng master(opts.seed);

  std::vector<double> skews, peaks, vdds, gnds;
  skews.reserve(static_cast<std::size_t>(opts.instances));
  int pass = 0;

  for (int inst = 0; inst < opts.instances; ++inst) {
    Rng rng = master.split();
    const std::size_t n = tree.size();

    // Gaussian 5% variations: buffer/inverter width and Vth fold into a
    // cell-delay factor and a drive-current factor; wire width/length
    // into a wire-delay factor.
    std::vector<double> cell_f(n), wire_f(n), cur_f(n);
    for (std::size_t i = 0; i < n; ++i) {
      cell_f[i] = rng.vary(1.0, opts.sigma_over_mu);
      wire_f[i] = rng.vary(1.0, opts.sigma_over_mu);
      cur_f[i] = rng.vary(1.0, opts.sigma_over_mu);
    }

    // Skew across all modes with perturbed delays.
    DelayPerturbation pert;
    pert.cell_factor = cell_f;
    pert.wire_factor = wire_f;
    Ps worst = 0.0;
    for (std::size_t m = 0; m < modes.count(); ++m) {
      worst = std::max(worst,
                       compute_arrivals(tree, modes, m, &pert).skew());
    }
    skews.push_back(worst);
    if (worst <= opts.kappa) ++pass;

    if (opts.with_noise) {
      TreeSimOptions so;
      so.dt = opts.dt;
      so.cell_delay_factor = cell_f;
      so.wire_delay_factor = wire_f;
      so.current_factor = cur_f;
      // Noise statistics in the nominal mode (the study's setup).
      const TreeSim sim(tree, modes, 0, so);
      peaks.push_back(sim.peak_current());
      const GridNoiseResult gn = grid_noise(tree, sim);
      vdds.push_back(gn.vdd_noise);
      gnds.push_back(gn.gnd_noise);
    }
  }

  McResult r;
  r.instances = opts.instances;
  r.skew_yield = static_cast<double>(pass) /
                 static_cast<double>(opts.instances);
  r.mean_skew = mean(skews);
  if (opts.with_noise) {
    r.mean_peak = mean(peaks);
    r.norm_std_peak = normalized_stddev(peaks);
    r.mean_vdd_noise = mean(vdds);
    r.norm_std_vdd = normalized_stddev(vdds);
    r.mean_gnd_noise = mean(gnds);
    r.norm_std_gnd = normalized_stddev(gnds);
  }
  return r;
}

} // namespace wm
