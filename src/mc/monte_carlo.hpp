#pragma once
// Monte Carlo process-variation study (paper Sec. VII-D).
//
// Wire geometry, buffer/inverter widths and threshold voltages are
// drawn from Gaussian distributions with sigma/mu = 5% around nominal;
// each randomized instance is re-analyzed for clock skew (yield against
// the bound) and re-simulated for peak current and power-grid noise.
// The paper reports the skew yield and the normalized standard
// deviations (sigma-hat / mu-hat) of peak current and VDD/Gnd noise.

#include <cstdint>

#include "timing/power_mode.hpp"
#include "tree/clock_tree.hpp"
#include "util/units.hpp"

namespace wm {

struct McOptions {
  int instances = 1000;
  double sigma_over_mu = 0.05;
  std::uint64_t seed = 4242;
  Ps kappa = 100.0;  ///< the Sec. VII-D study uses kappa = 100 ps
  Ps dt = 4.0;       ///< coarse waveform grid (statistics, not shapes)
  bool with_noise = true;  ///< also simulate peak current / grid noise
};

struct McResult {
  int instances = 0;
  double skew_yield = 0.0;  ///< fraction of instances with skew <= kappa
  double mean_skew = 0.0;
  double mean_peak = 0.0;
  double norm_std_peak = 0.0;  ///< sigma-hat / mu-hat of peak current
  double mean_vdd_noise = 0.0;
  double norm_std_vdd = 0.0;
  double mean_gnd_noise = 0.0;
  double norm_std_gnd = 0.0;
};

McResult run_monte_carlo(const ClockTree& tree, const ModeSet& modes,
                         McOptions opts = {});

} // namespace wm
