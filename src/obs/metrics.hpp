#pragma once
// wm::obs — low-overhead observability for the WaveMin pipeline.
//
// Three primitives, all owned by a MetricsRegistry:
//   * hierarchical phase timers — RAII ScopedPhase scopes; nesting
//     builds slash-separated paths ("wavemin/zone_solve") and repeated
//     entries of the same path aggregate (call count + total wall time),
//   * named counters (monotonic, atomic — safe to bump from the MOSP
//     worker pool) and gauges (last-value or running-max doubles),
//   * log2-bucketed histograms for wall-time distributions (the
//     per-zone solve times).
//
// Everything is opt-in and null-safe: instrumentation sites hold a
// MetricsRegistry* that is nullptr when collection is off
// (WaveMinOptions::collect_metrics, default false), and every helper in
// this header reduces to a single pointer test in that case — no clock
// reads, no allocation, no locks. Tests assert this no-op path stays
// allocation-free.
//
// Snapshots serialize to a stable, versioned JSON schema
// (metrics_json.hpp, "wavemin.metrics/v1") and to a human-readable
// table (report/table). The registry clock is injectable so tests can
// drive timers with a fake clock.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/thread_annotations.hpp"

namespace wm::obs {

/// Schema identifier embedded in every serialized snapshot. Bump the
/// suffix when the JSON layout changes shape (see docs/observability.md).
inline constexpr std::string_view kSchemaVersion = "wavemin.metrics/v1";

using Nanos = std::uint64_t;
using ClockFn = std::function<Nanos()>;

/// std::chrono::steady_clock, as nanoseconds since an arbitrary epoch.
Nanos monotonic_now();

/// Monotonic atomic counter; relaxed ordering (counts, not fences).
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Fixed log2-bucketed wall-time histogram (nanoseconds internally,
/// milliseconds at the API). Bucket k counts samples <= 2^(kFirstShift+k)
/// ns; the last bucket is the overflow. Lock-free recording.
class Histogram {
 public:
  static constexpr int kFirstShift = 10;  ///< first bucket: <= 1024 ns
  static constexpr int kBuckets = 27;     ///< last finite: ~67 s

  void record_ns(Nanos ns);
  void record_ms(double ms);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  struct Bucket {
    double le_ms = 0.0;       ///< inclusive upper bound (ms); last is +inf
    std::uint64_t count = 0;  ///< samples in this bucket (not cumulative)
  };
  struct Sample {
    std::uint64_t count = 0;
    double min_ms = 0.0;
    double max_ms = 0.0;
    double sum_ms = 0.0;
    std::vector<Bucket> buckets;  ///< non-empty buckets only
  };
  Sample sample() const;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> min_ns_{UINT64_MAX};
  std::atomic<std::uint64_t> max_ns_{0};
  std::atomic<std::uint64_t> bucket_[kBuckets + 1] = {};
};

struct PhaseSample {
  std::string path;  ///< slash-separated nesting, e.g. "wavemin/assign"
  std::uint64_t calls = 0;
  double wall_ms = 0.0;
};

/// Point-in-time copy of a registry, and the unit serialized to JSON.
/// All sequences are sorted by key so serialization is stable.
struct MetricsSnapshot {
  std::string schema{kSchemaVersion};
  std::vector<PhaseSample> phases;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, Histogram::Sample>> histograms;
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Stable reference (std::map nodes don't move); hot loops may cache
  /// it and bump the atomic without touching the registry lock again.
  Counter& counter(std::string_view name);
  void add(std::string_view name, std::uint64_t delta = 1);

  void gauge_set(std::string_view name, double value);
  /// Keep the maximum of all observations (Pareto frontier peaks etc.).
  void gauge_max(std::string_view name, double value);

  Histogram& histogram(std::string_view name);
  void observe_ms(std::string_view name, double ms);

  /// Aggregate one finished phase scope into the per-path totals.
  void add_phase(std::string_view path, Nanos wall);

  Nanos now() const { return clock_(); }
  /// Replace the monotonic clock (tests). Not thread-safe: install
  /// before handing the registry to workers.
  void set_clock(ClockFn clock);

  MetricsSnapshot snapshot() const;

 private:
  struct PhaseAgg {
    std::uint64_t calls = 0;
    Nanos total = 0;
  };

  // mu_ guards the name->metric maps (insertion and lookup); the
  // Counter/Histogram *values* are atomic, so references handed out by
  // counter()/histogram() stay valid and writable without the lock
  // (std::map nodes don't move).
  mutable Mutex mu_;
  std::map<std::string, Counter, std::less<>> counters_ GUARDED_BY(mu_);
  std::map<std::string, double, std::less<>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, Histogram, std::less<>> histograms_
      GUARDED_BY(mu_);
  std::map<std::string, PhaseAgg, std::less<>> phases_ GUARDED_BY(mu_);
  ClockFn clock_;  // installed before workers exist (see set_clock)
};

/// RAII phase scope. With a null registry the constructor and destructor
/// do nothing at all — no clock read, no allocation. Nesting is tracked
/// per thread: a ScopedPhase constructed while another is alive on the
/// same thread gets "<parent-path>/<name>" as its path.
class ScopedPhase {
 public:
  ScopedPhase(MetricsRegistry* registry, std::string_view name);
  ~ScopedPhase();
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  MetricsRegistry* registry_;
  ScopedPhase* parent_ = nullptr;
  Nanos start_ = 0;
  std::string path_;
};

// Null-safe free helpers for instrumentation sites: exactly one pointer
// test when collection is disabled.
inline void add(MetricsRegistry* m, std::string_view name,
                std::uint64_t delta = 1) {
  if (m != nullptr) m->add(name, delta);
}
inline void gauge_set(MetricsRegistry* m, std::string_view name, double v) {
  if (m != nullptr) m->gauge_set(name, v);
}
inline void gauge_max(MetricsRegistry* m, std::string_view name, double v) {
  if (m != nullptr) m->gauge_max(name, v);
}
inline void observe_ms(MetricsRegistry* m, std::string_view name,
                       double ms) {
  if (m != nullptr) m->observe_ms(name, ms);
}

/// Process-global registry for call sites that have no options plumbing
/// (wave/TreeSim). Null until installed; the CLI installs its registry
/// for the duration of a metrics-collecting run. Not owned.
MetricsRegistry* global();
void install_global(MetricsRegistry* registry);

} // namespace wm::obs
