#include "obs/metrics_json.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "fault/fault.hpp"
#include "report/table.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace wm::obs {

namespace {

// Emit helpers delegate to wm::json so the serialized bytes stay
// identical to the pre-refactor writer (round-trip tests pin them).

std::string fmt_double(double v) { return json::number_token(v); }

std::string quote(std::string_view s) { return json::quote(s); }

const json::Value& require(const json::Value& obj, std::string_view key,
                           json::Value::Kind kind, const char* context) {
  const json::Value* v = obj.find(key);
  WM_REQUIRE(v != nullptr, std::string("metrics json: ") + context +
                               " missing \"" + std::string(key) + "\"");
  WM_REQUIRE(v->kind == kind, std::string("metrics json: ") + context +
                                  " field \"" + std::string(key) +
                                  "\" has the wrong type");
  return *v;
}

double number_or_inf(const json::Value& v, const char* context) {
  if (v.is_string()) {
    if (v.str == "inf") return std::numeric_limits<double>::infinity();
    if (v.str == "-inf") return -std::numeric_limits<double>::infinity();
    throw Error(std::string("metrics json: ") + context +
                ": non-numeric string");
  }
  WM_REQUIRE(v.is_number(),
             std::string("metrics json: ") + context + ": expected number");
  return v.number;
}

std::uint64_t u64_field(const json::Value& v, const char* context) {
  WM_REQUIRE(v.is_number(),
             std::string("metrics json: ") + context + ": expected number");
  WM_REQUIRE(!v.raw.empty() && v.raw[0] != '-',
             std::string("metrics json: ") + context + ": negative count");
  return std::strtoull(v.raw.c_str(), nullptr, 10);
}

} // namespace

std::string to_json(const MetricsSnapshot& s) {
  std::ostringstream out;
  out << "{\n  \"schema\": " << quote(s.schema) << ",\n";

  out << "  \"phases\": [";
  for (std::size_t i = 0; i < s.phases.size(); ++i) {
    const PhaseSample& p = s.phases[i];
    out << (i ? ",\n    " : "\n    ") << "{\"path\": " << quote(p.path)
        << ", \"calls\": " << p.calls
        << ", \"wall_ms\": " << fmt_double(p.wall_ms) << "}";
  }
  out << (s.phases.empty() ? "]" : "\n  ]") << ",\n";

  out << "  \"counters\": {";
  for (std::size_t i = 0; i < s.counters.size(); ++i) {
    out << (i ? ",\n    " : "\n    ") << quote(s.counters[i].first) << ": "
        << s.counters[i].second;
  }
  out << (s.counters.empty() ? "}" : "\n  }") << ",\n";

  out << "  \"gauges\": {";
  for (std::size_t i = 0; i < s.gauges.size(); ++i) {
    out << (i ? ",\n    " : "\n    ") << quote(s.gauges[i].first) << ": "
        << fmt_double(s.gauges[i].second);
  }
  out << (s.gauges.empty() ? "}" : "\n  }") << ",\n";

  out << "  \"histograms\": {";
  for (std::size_t i = 0; i < s.histograms.size(); ++i) {
    const auto& [name, h] = s.histograms[i];
    out << (i ? ",\n    " : "\n    ") << quote(name) << ": {\"count\": "
        << h.count << ", \"min_ms\": " << fmt_double(h.min_ms)
        << ", \"max_ms\": " << fmt_double(h.max_ms)
        << ", \"sum_ms\": " << fmt_double(h.sum_ms) << ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      out << (b ? ", " : "") << "{\"le_ms\": "
          << fmt_double(h.buckets[b].le_ms)
          << ", \"count\": " << h.buckets[b].count << "}";
    }
    out << "]}";
  }
  out << (s.histograms.empty() ? "}" : "\n  }") << "\n}\n";
  return out.str();
}

MetricsSnapshot parse_metrics_json(std::string_view text) {
  const json::Value root = [&] {
    try {
      return json::parse(text);
    } catch (const Error& e) {
      throw Error(std::string("metrics ") + e.what());
    }
  }();
  WM_REQUIRE(root.is_object(),
             "metrics json: top level must be an object");

  using JK = json::Value::Kind;
  MetricsSnapshot s;
  s.schema = require(root, "schema", JK::String, "top level").str;

  for (const json::Value& p :
       require(root, "phases", JK::Array, "top level").array) {
    WM_REQUIRE(p.is_object(),
               "metrics json: phase entry must be an object");
    PhaseSample ps;
    ps.path = require(p, "path", JK::String, "phase").str;
    ps.calls = u64_field(require(p, "calls", JK::Number, "phase"),
                      "phase calls");
    ps.wall_ms = require(p, "wall_ms", JK::Number, "phase").number;
    s.phases.push_back(std::move(ps));
  }

  for (const auto& [name, v] :
       require(root, "counters", JK::Object, "top level").object) {
    s.counters.emplace_back(name, u64_field(v, "counter"));
  }

  for (const auto& [name, v] :
       require(root, "gauges", JK::Object, "top level").object) {
    s.gauges.emplace_back(name, number_or_inf(v, "gauge"));
  }

  for (const auto& [name, v] :
       require(root, "histograms", JK::Object, "top level").object) {
    WM_REQUIRE(v.is_object(),
               "metrics json: histogram must be an object");
    Histogram::Sample h;
    h.count = u64_field(require(v, "count", JK::Number, "histogram"),
                     "histogram count");
    h.min_ms = require(v, "min_ms", JK::Number, "histogram").number;
    h.max_ms = require(v, "max_ms", JK::Number, "histogram").number;
    h.sum_ms = require(v, "sum_ms", JK::Number, "histogram").number;
    for (const json::Value& b :
         require(v, "buckets", JK::Array, "histogram").array) {
      WM_REQUIRE(b.is_object(),
                 "metrics json: bucket must be an object");
      Histogram::Bucket bk;
      const json::Value* le = b.find("le_ms");
      WM_REQUIRE(le != nullptr, "metrics json: bucket missing le_ms");
      bk.le_ms = number_or_inf(*le, "bucket le_ms");
      bk.count = u64_field(require(b, "count", JK::Number, "bucket"),
                        "bucket count");
      h.buckets.push_back(bk);
    }
    s.histograms.emplace_back(name, std::move(h));
  }
  return s;
}

std::vector<std::string> validate(const MetricsSnapshot& s) {
  std::vector<std::string> problems;
  if (s.schema != kSchemaVersion) {
    problems.push_back("schema is \"" + s.schema + "\", expected \"" +
                       std::string(kSchemaVersion) + "\"");
  }
  auto check_sorted = [&problems](const auto& seq, auto key,
                                  const char* what) {
    for (std::size_t i = 1; i < seq.size(); ++i) {
      if (!(key(seq[i - 1]) < key(seq[i]))) {
        problems.push_back(std::string(what) + " keys not sorted/unique: \"" +
                           key(seq[i]) + "\"");
      }
    }
  };
  check_sorted(s.phases, [](const PhaseSample& p) { return p.path; },
               "phase");
  check_sorted(s.counters, [](const auto& c) { return c.first; },
               "counter");
  check_sorted(s.gauges, [](const auto& g) { return g.first; }, "gauge");
  check_sorted(s.histograms, [](const auto& h) { return h.first; },
               "histogram");

  for (const PhaseSample& p : s.phases) {
    if (p.path.empty()) problems.push_back("phase with empty path");
    if (p.calls == 0) problems.push_back("phase " + p.path + ": 0 calls");
    if (!(p.wall_ms >= 0.0)) {
      problems.push_back("phase " + p.path + ": negative wall_ms");
    }
  }
  for (const auto& [name, v] : s.gauges) {
    if (std::isnan(v)) problems.push_back("gauge " + name + ": NaN");
  }
  for (const auto& [name, h] : s.histograms) {
    std::uint64_t bucket_total = 0;
    double prev = -1.0;
    for (const Histogram::Bucket& b : h.buckets) {
      bucket_total += b.count;
      if (!(b.le_ms > prev)) {
        problems.push_back("histogram " + name + ": buckets not sorted");
      }
      prev = b.le_ms;
    }
    if (bucket_total != h.count) {
      problems.push_back("histogram " + name +
                         ": bucket counts do not sum to count");
    }
    if (h.count > 0 && !(h.min_ms <= h.max_ms)) {
      problems.push_back("histogram " + name + ": min_ms > max_ms");
    }
    if (!(h.sum_ms >= 0.0)) {
      problems.push_back("histogram " + name + ": negative sum_ms");
    }
  }
  return problems;
}

void write_json_file(const MetricsSnapshot& s, const std::string& path) {
  fault::inject("obs.metrics_write");
  std::ofstream out(path);
  WM_REQUIRE(out.good(), "cannot open " + path + " for writing");
  out << to_json(s);
  out.flush();
  WM_REQUIRE(out.good(), "failed writing " + path);
}

MetricsSnapshot read_json_file(const std::string& path) {
  std::ifstream in(path);
  WM_REQUIRE(in.good(), "cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_metrics_json(buf.str());
}

void merge(MetricsSnapshot& into, const MetricsSnapshot& from) {
  auto overlay = [](auto& dst, const auto& src, auto key) {
    for (const auto& entry : src) {
      bool replaced = false;
      for (auto& existing : dst) {
        if (key(existing) == key(entry)) {
          existing = entry;
          replaced = true;
          break;
        }
      }
      if (!replaced) dst.push_back(entry);
    }
    std::sort(dst.begin(), dst.end(),
              [&key](const auto& a, const auto& b) {
                return key(a) < key(b);
              });
  };
  overlay(into.phases, from.phases,
          [](const PhaseSample& p) -> const std::string& { return p.path; });
  overlay(into.counters, from.counters,
          [](const auto& c) -> const std::string& { return c.first; });
  overlay(into.gauges, from.gauges,
          [](const auto& g) -> const std::string& { return g.first; });
  overlay(into.histograms, from.histograms,
          [](const auto& h) -> const std::string& { return h.first; });
  into.schema = from.schema;
}

void merge_into_file(const MetricsSnapshot& snapshot,
                     const std::string& path) {
  MetricsSnapshot combined;
  try {
    combined = read_json_file(path);
  } catch (const Error&) {
    // First write, or a stale/corrupt file: start over.
    combined = MetricsSnapshot{};
  }
  merge(combined, snapshot);
  // Same tmp-file + atomic-rename discipline as wm::ck::save, so
  // concurrent bench/serve writers never tear the accumulated file: a
  // racing reader sees the previous complete JSON or the new one.
  fault::inject("obs.metrics_write");
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    WM_REQUIRE(out.good(), "cannot open " + tmp + " for writing");
    out << to_json(combined);
    out.flush();
    if (!out.good()) {
      std::remove(tmp.c_str());
      throw Error("failed writing " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("cannot rename " + tmp + " -> " + path);
  }
}

Table to_table(const MetricsSnapshot& s) {
  Table t({"metric", "kind", "value", "detail"});
  for (const PhaseSample& p : s.phases) {
    t.add_row({p.path, "phase", Table::num(p.wall_ms, 3) + " ms",
               "calls=" + std::to_string(p.calls)});
  }
  for (const auto& [name, v] : s.counters) {
    t.add_row({name, "counter", std::to_string(v), ""});
  }
  for (const auto& [name, v] : s.gauges) {
    t.add_row({name, "gauge", Table::num(v, 4), ""});
  }
  for (const auto& [name, h] : s.histograms) {
    t.add_row({name, "histogram", std::to_string(h.count) + " samples",
               h.count == 0
                   ? ""
                   : Table::num(h.min_ms, 3) + "/" +
                         Table::num(h.sum_ms /
                                        static_cast<double>(h.count),
                                    3) +
                         "/" + Table::num(h.max_ms, 3) +
                         " ms min/mean/max"});
  }
  return t;
}

} // namespace wm::obs
