#include "obs/metrics_json.hpp"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "fault/fault.hpp"
#include "report/table.hpp"
#include "util/error.hpp"

namespace wm::obs {

namespace {

// ---------------------------------------------------------------- emit

std::string fmt_double(double v) {
  if (std::isinf(v)) return v > 0 ? "\"inf\"" : "\"-inf\"";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

// --------------------------------------------------------------- parse
//
// Minimal recursive-descent JSON reader — just enough for the metrics
// schema (objects, arrays, strings, numbers, bools, null). Numbers keep
// their raw spelling so counters survive as exact uint64.

struct JValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string raw;  ///< number spelling as written
  std::string str;
  std::vector<JValue> array;
  std::vector<std::pair<std::string, JValue>> object;

  const JValue* find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JValue parse() {
    JValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("metrics json: " + what + " at offset " +
                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        JValue v;
        v.kind = JValue::Kind::String;
        v.str = string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        JValue v;
        v.kind = JValue::Kind::Bool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        JValue v;
        v.kind = JValue::Kind::Bool;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JValue{};
      }
      default: return number();
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            const std::string hex(text_.substr(pos_, 4));
            pos_ += 4;
            const long cp = std::strtol(hex.c_str(), nullptr, 16);
            // Metrics names are ASCII; anything else round-trips as '?'.
            out += cp < 0x80 ? static_cast<char>(cp) : '?';
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  JValue number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JValue v;
    v.kind = JValue::Kind::Number;
    v.raw = std::string(text_.substr(start, pos_ - start));
    char* end = nullptr;
    v.number = std::strtod(v.raw.c_str(), &end);
    if (end != v.raw.c_str() + v.raw.size()) fail("bad number");
    return v;
  }

  JValue array() {
    expect('[');
    JValue v;
    v.kind = JValue::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JValue object() {
    expect('{');
    JValue v;
    v.kind = JValue::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

const JValue& require(const JValue& obj, std::string_view key,
                      JValue::Kind kind, const char* context) {
  const JValue* v = obj.find(key);
  WM_REQUIRE(v != nullptr, std::string("metrics json: ") + context +
                               " missing \"" + std::string(key) + "\"");
  WM_REQUIRE(v->kind == kind, std::string("metrics json: ") + context +
                                  " field \"" + std::string(key) +
                                  "\" has the wrong type");
  return *v;
}

double number_or_inf(const JValue& v, const char* context) {
  if (v.kind == JValue::Kind::String) {
    if (v.str == "inf") return std::numeric_limits<double>::infinity();
    if (v.str == "-inf") return -std::numeric_limits<double>::infinity();
    throw Error(std::string("metrics json: ") + context +
                ": non-numeric string");
  }
  WM_REQUIRE(v.kind == JValue::Kind::Number,
             std::string("metrics json: ") + context + ": expected number");
  return v.number;
}

std::uint64_t to_u64(const JValue& v, const char* context) {
  WM_REQUIRE(v.kind == JValue::Kind::Number,
             std::string("metrics json: ") + context + ": expected number");
  WM_REQUIRE(!v.raw.empty() && v.raw[0] != '-',
             std::string("metrics json: ") + context + ": negative count");
  return std::strtoull(v.raw.c_str(), nullptr, 10);
}

} // namespace

std::string to_json(const MetricsSnapshot& s) {
  std::ostringstream out;
  out << "{\n  \"schema\": " << quote(s.schema) << ",\n";

  out << "  \"phases\": [";
  for (std::size_t i = 0; i < s.phases.size(); ++i) {
    const PhaseSample& p = s.phases[i];
    out << (i ? ",\n    " : "\n    ") << "{\"path\": " << quote(p.path)
        << ", \"calls\": " << p.calls
        << ", \"wall_ms\": " << fmt_double(p.wall_ms) << "}";
  }
  out << (s.phases.empty() ? "]" : "\n  ]") << ",\n";

  out << "  \"counters\": {";
  for (std::size_t i = 0; i < s.counters.size(); ++i) {
    out << (i ? ",\n    " : "\n    ") << quote(s.counters[i].first) << ": "
        << s.counters[i].second;
  }
  out << (s.counters.empty() ? "}" : "\n  }") << ",\n";

  out << "  \"gauges\": {";
  for (std::size_t i = 0; i < s.gauges.size(); ++i) {
    out << (i ? ",\n    " : "\n    ") << quote(s.gauges[i].first) << ": "
        << fmt_double(s.gauges[i].second);
  }
  out << (s.gauges.empty() ? "}" : "\n  }") << ",\n";

  out << "  \"histograms\": {";
  for (std::size_t i = 0; i < s.histograms.size(); ++i) {
    const auto& [name, h] = s.histograms[i];
    out << (i ? ",\n    " : "\n    ") << quote(name) << ": {\"count\": "
        << h.count << ", \"min_ms\": " << fmt_double(h.min_ms)
        << ", \"max_ms\": " << fmt_double(h.max_ms)
        << ", \"sum_ms\": " << fmt_double(h.sum_ms) << ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      out << (b ? ", " : "") << "{\"le_ms\": "
          << fmt_double(h.buckets[b].le_ms)
          << ", \"count\": " << h.buckets[b].count << "}";
    }
    out << "]}";
  }
  out << (s.histograms.empty() ? "}" : "\n  }") << "\n}\n";
  return out.str();
}

MetricsSnapshot parse_metrics_json(std::string_view text) {
  const JValue root = Parser(text).parse();
  WM_REQUIRE(root.kind == JValue::Kind::Object,
             "metrics json: top level must be an object");

  MetricsSnapshot s;
  s.schema =
      require(root, "schema", JValue::Kind::String, "top level").str;

  for (const JValue& p :
       require(root, "phases", JValue::Kind::Array, "top level").array) {
    WM_REQUIRE(p.kind == JValue::Kind::Object,
               "metrics json: phase entry must be an object");
    PhaseSample ps;
    ps.path = require(p, "path", JValue::Kind::String, "phase").str;
    ps.calls = to_u64(require(p, "calls", JValue::Kind::Number, "phase"),
                      "phase calls");
    ps.wall_ms =
        require(p, "wall_ms", JValue::Kind::Number, "phase").number;
    s.phases.push_back(std::move(ps));
  }

  for (const auto& [name, v] :
       require(root, "counters", JValue::Kind::Object, "top level")
           .object) {
    s.counters.emplace_back(name, to_u64(v, "counter"));
  }

  for (const auto& [name, v] :
       require(root, "gauges", JValue::Kind::Object, "top level").object) {
    s.gauges.emplace_back(name, number_or_inf(v, "gauge"));
  }

  for (const auto& [name, v] :
       require(root, "histograms", JValue::Kind::Object, "top level")
           .object) {
    WM_REQUIRE(v.kind == JValue::Kind::Object,
               "metrics json: histogram must be an object");
    Histogram::Sample h;
    h.count = to_u64(require(v, "count", JValue::Kind::Number, "histogram"),
                     "histogram count");
    h.min_ms =
        require(v, "min_ms", JValue::Kind::Number, "histogram").number;
    h.max_ms =
        require(v, "max_ms", JValue::Kind::Number, "histogram").number;
    h.sum_ms =
        require(v, "sum_ms", JValue::Kind::Number, "histogram").number;
    for (const JValue& b :
         require(v, "buckets", JValue::Kind::Array, "histogram").array) {
      WM_REQUIRE(b.kind == JValue::Kind::Object,
                 "metrics json: bucket must be an object");
      Histogram::Bucket bk;
      const JValue* le = b.find("le_ms");
      WM_REQUIRE(le != nullptr, "metrics json: bucket missing le_ms");
      bk.le_ms = number_or_inf(*le, "bucket le_ms");
      bk.count = to_u64(require(b, "count", JValue::Kind::Number, "bucket"),
                        "bucket count");
      h.buckets.push_back(bk);
    }
    s.histograms.emplace_back(name, std::move(h));
  }
  return s;
}

std::vector<std::string> validate(const MetricsSnapshot& s) {
  std::vector<std::string> problems;
  if (s.schema != kSchemaVersion) {
    problems.push_back("schema is \"" + s.schema + "\", expected \"" +
                       std::string(kSchemaVersion) + "\"");
  }
  auto check_sorted = [&problems](const auto& seq, auto key,
                                  const char* what) {
    for (std::size_t i = 1; i < seq.size(); ++i) {
      if (!(key(seq[i - 1]) < key(seq[i]))) {
        problems.push_back(std::string(what) + " keys not sorted/unique: \"" +
                           key(seq[i]) + "\"");
      }
    }
  };
  check_sorted(s.phases, [](const PhaseSample& p) { return p.path; },
               "phase");
  check_sorted(s.counters, [](const auto& c) { return c.first; },
               "counter");
  check_sorted(s.gauges, [](const auto& g) { return g.first; }, "gauge");
  check_sorted(s.histograms, [](const auto& h) { return h.first; },
               "histogram");

  for (const PhaseSample& p : s.phases) {
    if (p.path.empty()) problems.push_back("phase with empty path");
    if (p.calls == 0) problems.push_back("phase " + p.path + ": 0 calls");
    if (!(p.wall_ms >= 0.0)) {
      problems.push_back("phase " + p.path + ": negative wall_ms");
    }
  }
  for (const auto& [name, v] : s.gauges) {
    if (std::isnan(v)) problems.push_back("gauge " + name + ": NaN");
  }
  for (const auto& [name, h] : s.histograms) {
    std::uint64_t bucket_total = 0;
    double prev = -1.0;
    for (const Histogram::Bucket& b : h.buckets) {
      bucket_total += b.count;
      if (!(b.le_ms > prev)) {
        problems.push_back("histogram " + name + ": buckets not sorted");
      }
      prev = b.le_ms;
    }
    if (bucket_total != h.count) {
      problems.push_back("histogram " + name +
                         ": bucket counts do not sum to count");
    }
    if (h.count > 0 && !(h.min_ms <= h.max_ms)) {
      problems.push_back("histogram " + name + ": min_ms > max_ms");
    }
    if (!(h.sum_ms >= 0.0)) {
      problems.push_back("histogram " + name + ": negative sum_ms");
    }
  }
  return problems;
}

void write_json_file(const MetricsSnapshot& s, const std::string& path) {
  fault::inject("obs.metrics_write");
  std::ofstream out(path);
  WM_REQUIRE(out.good(), "cannot open " + path + " for writing");
  out << to_json(s);
  out.flush();
  WM_REQUIRE(out.good(), "failed writing " + path);
}

MetricsSnapshot read_json_file(const std::string& path) {
  std::ifstream in(path);
  WM_REQUIRE(in.good(), "cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_metrics_json(buf.str());
}

void merge(MetricsSnapshot& into, const MetricsSnapshot& from) {
  auto overlay = [](auto& dst, const auto& src, auto key) {
    for (const auto& entry : src) {
      bool replaced = false;
      for (auto& existing : dst) {
        if (key(existing) == key(entry)) {
          existing = entry;
          replaced = true;
          break;
        }
      }
      if (!replaced) dst.push_back(entry);
    }
    std::sort(dst.begin(), dst.end(),
              [&key](const auto& a, const auto& b) {
                return key(a) < key(b);
              });
  };
  overlay(into.phases, from.phases,
          [](const PhaseSample& p) -> const std::string& { return p.path; });
  overlay(into.counters, from.counters,
          [](const auto& c) -> const std::string& { return c.first; });
  overlay(into.gauges, from.gauges,
          [](const auto& g) -> const std::string& { return g.first; });
  overlay(into.histograms, from.histograms,
          [](const auto& h) -> const std::string& { return h.first; });
  into.schema = from.schema;
}

void merge_into_file(const MetricsSnapshot& snapshot,
                     const std::string& path) {
  MetricsSnapshot combined;
  try {
    combined = read_json_file(path);
  } catch (const Error&) {
    // First write, or a stale/corrupt file: start over.
    combined = MetricsSnapshot{};
  }
  merge(combined, snapshot);
  write_json_file(combined, path);
}

Table to_table(const MetricsSnapshot& s) {
  Table t({"metric", "kind", "value", "detail"});
  for (const PhaseSample& p : s.phases) {
    t.add_row({p.path, "phase", Table::num(p.wall_ms, 3) + " ms",
               "calls=" + std::to_string(p.calls)});
  }
  for (const auto& [name, v] : s.counters) {
    t.add_row({name, "counter", std::to_string(v), ""});
  }
  for (const auto& [name, v] : s.gauges) {
    t.add_row({name, "gauge", Table::num(v, 4), ""});
  }
  for (const auto& [name, h] : s.histograms) {
    t.add_row({name, "histogram", std::to_string(h.count) + " samples",
               h.count == 0
                   ? ""
                   : Table::num(h.min_ms, 3) + "/" +
                         Table::num(h.sum_ms /
                                        static_cast<double>(h.count),
                                    3) +
                         "/" + Table::num(h.max_ms, 3) +
                         " ms min/mean/max"});
  }
  return t;
}

} // namespace wm::obs
