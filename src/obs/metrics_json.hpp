#pragma once
// Serialization of obs::MetricsSnapshot to the versioned
// "wavemin.metrics/v1" JSON schema, the matching parser (round-trip —
// what tools wrote, tools and tests can read back), structural
// validation, and a human-readable rendering via report/table.
//
// Schema (all sections always present, keys sorted):
//   {
//     "schema": "wavemin.metrics/v1",
//     "phases": [{"path": "wavemin/assign", "calls": 1, "wall_ms": 0.2}],
//     "counters": {"mosp.labels_created": 1234},
//     "gauges": {"wavemin.kappa": 20.0},
//     "histograms": {
//       "wavemin.zone_solve_ms": {
//         "count": 10, "min_ms": 0.01, "max_ms": 2.5, "sum_ms": 6.0,
//         "buckets": [{"le_ms": 0.262144, "count": 7}, ...]
//       }
//     }
//   }
// An overflow histogram bucket serializes its bound as the string "inf".
// The full metric catalog lives in docs/observability.md.

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace wm {
class Table;
} // namespace wm

namespace wm::obs {

/// Stable serialization: sections and keys in sorted order, fixed
/// number formatting — equal snapshots produce byte-identical JSON.
std::string to_json(const MetricsSnapshot& snapshot);

/// Parse JSON previously produced by to_json (or hand-written in the
/// same schema). Throws wm::Error on malformed JSON or schema shape
/// violations (wrong types, missing required fields).
MetricsSnapshot parse_metrics_json(std::string_view text);

/// Structural validation beyond what parsing enforces: schema version
/// match, sorted unique keys, non-negative times and counts. Returns a
/// human-readable problem list; empty means valid.
std::vector<std::string> validate(const MetricsSnapshot& snapshot);

/// Whole-file helpers; both throw wm::Error on I/O failure.
void write_json_file(const MetricsSnapshot& snapshot,
                     const std::string& path);
MetricsSnapshot read_json_file(const std::string& path);

/// Merge `from` into `into` section-by-section (keyed by metric name /
/// phase path); `from` wins on collisions. Used by the bench harness so
/// several binaries can accumulate into one BENCH_perf.json.
void merge(MetricsSnapshot& into, const MetricsSnapshot& from);

/// Merge this snapshot into the JSON file at `path`: parse what is
/// there (a missing or unreadable file starts fresh), overlay
/// `snapshot`, write back.
void merge_into_file(const MetricsSnapshot& snapshot,
                     const std::string& path);

/// Human-readable rendering — one row per metric with kind and value
/// (phase wall times, counter totals, gauge values, histogram spreads).
Table to_table(const MetricsSnapshot& snapshot);

} // namespace wm::obs
