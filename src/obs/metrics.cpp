#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

namespace wm::obs {

namespace {

std::atomic<MetricsRegistry*> g_global{nullptr};

thread_local ScopedPhase* t_current_phase = nullptr;

double ns_to_ms(Nanos ns) { return static_cast<double>(ns) / 1e6; }

// Smallest bucket index whose upper bound 2^(kFirstShift+i) holds `ns`;
// kBuckets = overflow.
int bucket_index(Nanos ns) {
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    if (ns <= (Nanos{1} << (Histogram::kFirstShift + i))) return i;
  }
  return Histogram::kBuckets;
}

void atomic_min(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

} // namespace

Nanos monotonic_now() {
  return static_cast<Nanos>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Histogram::record_ns(Nanos ns) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  atomic_min(min_ns_, ns);
  atomic_max(max_ns_, ns);
  bucket_[bucket_index(ns)].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::record_ms(double ms) {
  record_ns(ms <= 0.0 ? 0 : static_cast<Nanos>(ms * 1e6));
}

Histogram::Sample Histogram::sample() const {
  Sample s;
  s.count = count_.load(std::memory_order_relaxed);
  if (s.count == 0) return s;
  s.min_ms = ns_to_ms(min_ns_.load(std::memory_order_relaxed));
  s.max_ms = ns_to_ms(max_ns_.load(std::memory_order_relaxed));
  s.sum_ms = ns_to_ms(sum_ns_.load(std::memory_order_relaxed));
  for (int i = 0; i <= kBuckets; ++i) {
    const std::uint64_t c = bucket_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    Bucket b;
    b.le_ms = i == kBuckets
                  ? std::numeric_limits<double>::infinity()
                  : ns_to_ms(Nanos{1} << (kFirstShift + i));
    b.count = c;
    s.buckets.push_back(b);
  }
  return s;
}

MetricsRegistry::MetricsRegistry() : clock_(&monotonic_now) {}

Counter& MetricsRegistry::counter(std::string_view name) {
  const MutexLock lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_[std::string(name)];
}

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  counter(name).add(delta);
}

void MetricsRegistry::gauge_set(std::string_view name, double value) {
  const MutexLock lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    it->second = value;
  } else {
    gauges_.emplace(std::string(name), value);
  }
}

void MetricsRegistry::gauge_max(std::string_view name, double value) {
  const MutexLock lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    it->second = std::max(it->second, value);
  } else {
    gauges_.emplace(std::string(name), value);
  }
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const MutexLock lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_[std::string(name)];
}

void MetricsRegistry::observe_ms(std::string_view name, double ms) {
  histogram(name).record_ms(ms);
}

void MetricsRegistry::add_phase(std::string_view path, Nanos wall) {
  const MutexLock lock(mu_);
  auto it = phases_.find(path);
  if (it == phases_.end()) {
    it = phases_.emplace(std::string(path), PhaseAgg{}).first;
  }
  ++it->second.calls;
  it->second.total += wall;
}

void MetricsRegistry::set_clock(ClockFn clock) {
  clock_ = std::move(clock);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const MutexLock lock(mu_);
  MetricsSnapshot s;
  for (const auto& [path, agg] : phases_) {
    s.phases.push_back({path, agg.calls, ns_to_ms(agg.total)});
  }
  for (const auto& [name, c] : counters_) {
    s.counters.emplace_back(name, c.value());
  }
  for (const auto& [name, v] : gauges_) {
    s.gauges.emplace_back(name, v);
  }
  for (const auto& [name, h] : histograms_) {
    s.histograms.emplace_back(name, h.sample());
  }
  return s;  // std::map iteration order keeps every section sorted
}

ScopedPhase::ScopedPhase(MetricsRegistry* registry, std::string_view name)
    : registry_(registry) {
  if (registry_ == nullptr) return;
  if (t_current_phase != nullptr) {
    path_.reserve(t_current_phase->path_.size() + 1 + name.size());
    path_ = t_current_phase->path_;
    path_ += '/';
    path_ += name;
  } else {
    path_ = name;
  }
  parent_ = t_current_phase;
  t_current_phase = this;
  start_ = registry_->now();
}

ScopedPhase::~ScopedPhase() {
  if (registry_ == nullptr) return;
  const Nanos end = registry_->now();
  registry_->add_phase(path_, end >= start_ ? end - start_ : 0);
  t_current_phase = parent_;
}

MetricsRegistry* global() {
  return g_global.load(std::memory_order_acquire);
}

void install_global(MetricsRegistry* registry) {
  g_global.store(registry, std::memory_order_release);
}

} // namespace wm::obs
