#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace wm::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        Value v;
        v.kind = Value::Kind::String;
        v.str = string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        Value v;
        v.kind = Value::Kind::Bool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        Value v;
        v.kind = Value::Kind::Bool;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      }
      default: return number();
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            const std::string hex(text_.substr(pos_, 4));
            pos_ += 4;
            char* end = nullptr;
            const long cp = std::strtol(hex.c_str(), &end, 16);
            if (end != hex.c_str() + 4) fail("bad \\u escape");
            // Payloads are ASCII; anything else round-trips as '?'.
            out += cp < 0x80 ? static_cast<char>(cp) : '?';
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Value number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    Value v;
    v.kind = Value::Kind::Number;
    v.raw = std::string(text_.substr(start, pos_ - start));
    char* end = nullptr;
    v.number = std::strtod(v.raw.c_str(), &end);
    if (end != v.raw.c_str() + v.raw.size()) fail("bad number");
    return v;
  }

  Value array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Value object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_to(const Value& v, std::string& out) {
  switch (v.kind) {
    case Value::Kind::Null: out += "null"; return;
    case Value::Kind::Bool: out += v.boolean ? "true" : "false"; return;
    case Value::Kind::Number:
      out += v.raw.empty() ? number_token(v.number) : v.raw;
      return;
    case Value::Kind::String: out += quote(v.str); return;
    case Value::Kind::Array: {
      out += '[';
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        if (i != 0) out += ", ";
        dump_to(v.array[i], out);
      }
      out += ']';
      return;
    }
    case Value::Kind::Object: {
      out += '{';
      for (std::size_t i = 0; i < v.object.size(); ++i) {
        if (i != 0) out += ", ";
        out += quote(v.object[i].first);
        out += ": ";
        dump_to(v.object[i].second, out);
      }
      out += '}';
      return;
    }
  }
}

} // namespace

const Value* Value::find(std::string_view key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value Value::null() { return Value{}; }

Value Value::boolean_v(bool b) {
  Value v;
  v.kind = Kind::Bool;
  v.boolean = b;
  return v;
}

Value Value::number_v(double d) {
  Value v;
  v.kind = Kind::Number;
  v.number = d;
  return v;
}

Value Value::number_v(std::uint64_t n) {
  Value v;
  v.kind = Kind::Number;
  v.number = static_cast<double>(n);
  v.raw = std::to_string(n);  // exact spelling, not %.9g
  return v;
}

Value Value::string_v(std::string s) {
  Value v;
  v.kind = Kind::String;
  v.str = std::move(s);
  return v;
}

Value Value::object_v() {
  Value v;
  v.kind = Kind::Object;
  return v;
}

Value Value::array_v() {
  Value v;
  v.kind = Kind::Array;
  return v;
}

Value& Value::set(std::string key, Value v) {
  WM_ASSERT(kind == Kind::Object, "set() on a non-object json value");
  object.emplace_back(std::move(key), std::move(v));
  return *this;
}

Value& Value::push(Value v) {
  WM_ASSERT(kind == Kind::Array, "push() on a non-array json value");
  array.push_back(std::move(v));
  return *this;
}

const std::string& Value::get_string(std::string_view key,
                                     const char* context) const {
  const Value* v = find(key);
  WM_REQUIRE(v != nullptr && v->is_string(),
             std::string(context) + ": missing string field \"" +
                 std::string(key) + "\"");
  return v->str;
}

std::string Value::get_string_or(std::string_view key,
                                 std::string fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->is_string() ? v->str : std::move(fallback);
}

double Value::get_number(std::string_view key, const char* context) const {
  const Value* v = find(key);
  WM_REQUIRE(v != nullptr && v->is_number(),
             std::string(context) + ": missing numeric field \"" +
                 std::string(key) + "\"");
  return v->number;
}

double Value::get_number_or(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

std::uint64_t Value::get_u64_or(std::string_view key,
                                std::uint64_t fallback) const {
  const Value* v = find(key);
  if (v == nullptr || !v->is_number()) return fallback;
  return to_u64(*v, "field");
}

bool Value::get_bool_or(std::string_view key, bool fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->kind == Kind::Bool ? v->boolean : fallback;
}

Value parse(std::string_view text) { return Parser(text).parse(); }

std::string dump(const Value& v) {
  std::string out;
  dump_to(v, out);
  return out;
}

std::string quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string number_token(double v) {
  if (std::isinf(v)) return v > 0 ? "\"inf\"" : "\"-inf\"";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::uint64_t to_u64(const Value& v, const char* context) {
  WM_REQUIRE(v.is_number(),
             std::string("json: ") + context + ": expected number");
  WM_REQUIRE(!v.raw.empty() && v.raw[0] != '-',
             std::string("json: ") + context + ": negative count");
  char* endp = nullptr;
  const std::uint64_t n = std::strtoull(v.raw.c_str(), &endp, 10);
  // The raw token must be digits through the end — "1.5" and "1e3"
  // are numbers but not counts.
  WM_REQUIRE(endp == v.raw.c_str() + v.raw.size(),
             std::string("json: ") + context +
                 ": expected unsigned integer, got '" + v.raw + "'");
  return n;
}

} // namespace wm::json
