#pragma once
// EINTR/partial-transfer discipline for the serving layer's raw POSIX
// I/O (docs/serving.md "Signals and partial I/O").
//
// The daemon installs SIGCHLD/SIGTERM handlers, so *every* blocking
// syscall in the process can return EINTR — and SA_RESTART does not
// cover poll(2) at all. Scattering `errno == EINTR` checks across call
// sites is how latent bugs breed (several sites simply lacked them);
// these helpers are the one place the policy lives:
//
//   * retry_read  — one read(2), retried only on EINTR. It deliberately
//     does NOT loop to fill the buffer: nonblocking event-loop readers
//     depend on seeing the short read / EAGAIN that ends a drain.
//   * write_all   — full-buffer write loop (EINTR retried, partial
//     writes continued). A zero-byte write reports failure: the fd ran
//     dry mid-record, which callers must treat as loss, not progress.
//   * retry_poll  — poll(2) retried on EINTR with the timeout
//     recomputed against a deadline, so a signal storm cannot stretch
//     a bounded wait into an unbounded one.
//
// Free functions only; no state, no allocation, nothing to initialize.

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstddef>

namespace wm {

/// read(2) with EINTR retried. Returns exactly what one successful
/// read would: > 0 bytes, 0 on EOF, or -1 with errno set (EAGAIN
/// included — nonblocking semantics are preserved).
inline ssize_t retry_read(int fd, void* buf, std::size_t n) {
  while (true) {
    const ssize_t got = ::read(fd, buf, n);
    if (got >= 0 || errno != EINTR) return got;
  }
}

/// write(2) until the whole buffer is down the fd (EINTR retried,
/// short writes continued). False on error or a zero-byte write.
inline bool write_all(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t wrote = ::write(fd, p, n);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (wrote == 0) return false;
    p += wrote;
    n -= static_cast<std::size_t>(wrote);
  }
  return true;
}

/// write(2) of one byte or more with only EINTR retried — the partial
/// write is returned for the caller's buffer bookkeeping (event-loop
/// writers keep their own out-queues and must not block to finish).
inline ssize_t retry_write(int fd, const void* data, std::size_t n) {
  while (true) {
    const ssize_t wrote = ::write(fd, data, n);
    if (wrote >= 0 || errno != EINTR) return wrote;
  }
}

/// poll(2) with EINTR retried and the timeout recomputed, so the call
/// waits at most `timeout_ms` of wall clock regardless of how many
/// signals land. timeout_ms < 0 waits forever (plain EINTR retry).
inline int retry_poll(pollfd* fds, nfds_t nfds, int timeout_ms) {
  if (timeout_ms < 0) {
    while (true) {
      const int rc = ::poll(fds, nfds, -1);
      if (rc >= 0 || errno != EINTR) return rc;
    }
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  int remaining = timeout_ms;
  while (true) {
    const int rc = ::poll(fds, nfds, remaining);
    if (rc >= 0 || errno != EINTR) return rc;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    remaining = left.count() > 0 ? static_cast<int>(left.count()) : 0;
  }
}

} // namespace wm
