#pragma once
// Small statistics helpers used by the Monte Carlo engine (Sec. VII-D)
// and the degree-of-freedom correlation study (Fig. 14).

#include <span>

namespace wm {

double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0 for n < 2.
double stddev(std::span<const double> xs);

/// sigma-hat / mu-hat, the normalized standard deviation the paper
/// reports for the MC study; 0 when the mean is 0.
double normalized_stddev(std::span<const double> xs);

/// Pearson correlation coefficient; 0 if either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

} // namespace wm
