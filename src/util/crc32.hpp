#pragma once
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity
// trailer of the .wmck checkpoint format (core/checkpoint.hpp). Header-
// only, table generated at compile time; no dependency beyond <cstdint>.

#include <cstddef>
#include <cstdint>

namespace wm {

namespace detail {

struct Crc32Table {
  std::uint32_t t[256];
};

constexpr Crc32Table make_crc32_table() {
  Crc32Table tbl{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tbl.t[i] = c;
  }
  return tbl;
}

inline constexpr Crc32Table kCrc32Table = make_crc32_table();

} // namespace detail

/// CRC-32 of `n` bytes. Chainable: pass a previous result as `seed` to
/// continue over a split buffer.
inline std::uint32_t crc32(const void* data, std::size_t n,
                           std::uint32_t seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = detail::kCrc32Table.t[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

} // namespace wm
