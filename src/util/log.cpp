#include "util/log.hpp"

#include <atomic>
#include <cstdio>

#include "util/thread_annotations.hpp"

namespace wm {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
// Serializes the fprintf so concurrent zone-solve workers don't
// interleave lines. Nothing is GUARDED_BY it — stderr is the resource.
Mutex g_mutex;

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::Warn: return "warn";
    case LogLevel::Info: return "info";
    case LogLevel::Debug: return "debug";
    case LogLevel::Silent: break;
  }
  return "?";
}
} // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  const MutexLock lock(g_mutex);
  std::fprintf(stderr, "[wm:%s] %s\n", tag(level), message.c_str());
}
} // namespace detail

} // namespace wm
