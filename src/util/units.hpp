#pragma once
// Unit conventions used across the whole library (see DESIGN.md §6).
//
// All quantities are plain `double`s in fixed engineering units chosen so
// that the common products come out unit-consistent without conversion
// factors:
//
//   time         : picoseconds  (ps)
//   capacitance  : femtofarads  (fF)
//   resistance   : kilo-ohms    (kOhm)   =>  R*C = kOhm*fF = ps
//   current      : microamperes (uA)
//   voltage      : volts        (V)
//   noise        : millivolts   (mV)     =>  uA * kOhm = mV
//   distance     : micrometers  (um)
//
// Strong typedefs were considered; plain doubles with `_ps`-style naming
// won for interoperability with the numeric kernels (waveform arrays,
// label vectors) where wrapping every element would obscure the math.

namespace wm {

using Ps = double;    ///< time in picoseconds
using Ff = double;    ///< capacitance in femtofarads
using KOhm = double;  ///< resistance in kilo-ohms
using UA = double;    ///< current in microamperes
using Volt = double;  ///< voltage in volts
using MV = double;    ///< voltage noise in millivolts
using Um = double;    ///< distance in micrometers

/// Process / operating constants of the 45 nm-class cell model.
namespace tech {

inline constexpr Volt kVddNominal = 1.1;   ///< nominal supply
inline constexpr Volt kVddLow = 0.9;       ///< low-power-mode supply
inline constexpr Volt kVth = 0.42;         ///< threshold voltage
inline constexpr double kAlphaPower = 1.7; ///< alpha-power law exponent

inline constexpr Ps kClockPeriod = 1000.0; ///< 1 GHz clock
inline constexpr Ps kCharacterizationSlew = 20.0; ///< 1-3 ps sharper than
                                                  ///< the mean tree slew
                                                  ///< (paper Sec. IV-B)

inline constexpr Um kZoneSize = 50.0; ///< 50x50 um zones (paper Sec. VII-A)

/// Per-unit-length wire parasitics (per um), 45 nm-class thin
/// intermediate metal. The resistance/capacitance ratio matters for
/// zero-skew balancing: delay added along a snaked wire must dominate
/// the load-delay the same wire adds to its driver, or balancing cannot
/// converge (ratio here ~4x at typical lengths).
inline constexpr KOhm kWireResPerUm = 0.002; ///< 2 Ohm/um
inline constexpr Ff kWireCapPerUm = 0.12;    ///< 0.12 fF/um

} // namespace tech

} // namespace wm
