#pragma once
// Minimal leveled logging.
//
// The optimizers are silent by default (library code must not spam
// stdout); set the level to Info/Debug to watch the interval sweep,
// zone solves and ADB allocation decide. The CLI exposes this as
// --verbose / --debug. Thread-safe for concurrent zone solves (a single
// global mutex — logging is not on the hot path).

#include <sstream>
#include <string>

namespace wm {

enum class LogLevel { Silent = 0, Warn = 1, Info = 2, Debug = 3 };

/// Process-wide log level (default Silent... warnings only).
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
} // namespace detail

} // namespace wm

/// Usage: WM_LOG(Info) << "solved zone " << z << " worst " << w;
#define WM_LOG(level_)                                                   \
  if (::wm::log_level() < ::wm::LogLevel::level_) {                      \
  } else                                                                 \
    ::wm::detail::LogLine(::wm::LogLevel::level_)

namespace wm::detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

} // namespace wm::detail
