#include "util/rng.hpp"

#include <cmath>

namespace wm {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

} // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next() % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  double u2 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::vary(double nominal, double sigma_over_mu) {
  const double v = normal(nominal, sigma_over_mu * nominal);
  // A physical width/length/Vth cannot collapse to zero or flip sign; the
  // 4-sigma floor keeps extreme MC draws physical without biasing the bulk.
  const double floor = nominal * (1.0 - 4.0 * sigma_over_mu);
  return v < floor ? floor : v;
}

Rng Rng::split() {
  return Rng(next() ^ 0xd1b54a32d192ed03ULL);
}

} // namespace wm
