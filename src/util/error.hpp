#pragma once
// Error-handling helpers.
//
// Library invariants are checked with WM_ASSERT (active in all build
// types: an invariant violation in an EDA optimizer silently corrupts
// results, which is far worse than an abort). User-facing precondition
// violations throw wm::Error so callers can recover.

#include <sstream>
#include <stdexcept>
#include <string>

namespace wm {

/// Exception thrown on violated user-facing preconditions
/// (malformed trees, empty libraries, inconsistent mode counts, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);
} // namespace detail

} // namespace wm

/// Internal invariant check; always active.
#define WM_ASSERT(expr, msg)                                              \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::wm::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));        \
    }                                                                     \
  } while (false)

/// Precondition check on public API entry points; throws wm::Error.
#define WM_REQUIRE(expr, msg)                                             \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream oss_;                                            \
      oss_ << "precondition failed: " << (msg) << " [" << #expr << "]";   \
      throw ::wm::Error(oss_.str());                                      \
    }                                                                     \
  } while (false)
