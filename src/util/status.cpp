#include "util/status.hpp"

namespace wm {

const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::Ok: return "ok";
    case StatusCode::Infeasible: return "infeasible";
    case StatusCode::DeadlineExceeded: return "deadline-exceeded";
    case StatusCode::ResourceExhausted: return "resource-exhausted";
    case StatusCode::Cancelled: return "cancelled";
    case StatusCode::InvalidInput: return "invalid-input";
    case StatusCode::Internal: return "internal";
  }
  return "?";
}

ErrorCategory error_category(StatusCode code) {
  switch (code) {
    case StatusCode::Ok: return ErrorCategory::None;
    case StatusCode::Infeasible: return ErrorCategory::Infeasible;
    case StatusCode::InvalidInput: return ErrorCategory::InvalidInput;
    // Budget exhaustion and cancellation are transient properties of
    // one attempt (another attempt may have more budget), as is any
    // unexpected exception — all retryable.
    case StatusCode::DeadlineExceeded:
    case StatusCode::ResourceExhausted:
    case StatusCode::Cancelled:
    case StatusCode::Internal: return ErrorCategory::Internal;
  }
  return ErrorCategory::Internal;
}

const char* to_string(ErrorCategory category) {
  switch (category) {
    case ErrorCategory::None: return "none";
    case ErrorCategory::InvalidInput: return "invalid-input";
    case ErrorCategory::Internal: return "internal";
    case ErrorCategory::Infeasible: return "infeasible";
  }
  return "?";
}

int cli_exit_code(StatusCode code) {
  switch (error_category(code)) {
    case ErrorCategory::None: return 0;
    case ErrorCategory::Infeasible: return 2;
    case ErrorCategory::InvalidInput:
    case ErrorCategory::Internal: return 4;
  }
  return 4;
}

std::string Status::to_string() const {
  std::string s = wm::to_string(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

} // namespace wm
