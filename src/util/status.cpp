#include "util/status.hpp"

namespace wm {

const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::Ok: return "ok";
    case StatusCode::Infeasible: return "infeasible";
    case StatusCode::DeadlineExceeded: return "deadline-exceeded";
    case StatusCode::ResourceExhausted: return "resource-exhausted";
    case StatusCode::Cancelled: return "cancelled";
    case StatusCode::InvalidInput: return "invalid-input";
    case StatusCode::Internal: return "internal";
  }
  return "?";
}

std::string Status::to_string() const {
  std::string s = wm::to_string(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

} // namespace wm
