#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace wm {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double normalized_stddev(std::span<const double> xs) {
  const double m = mean(xs);
  if (m == 0.0) return 0.0;
  return stddev(xs) / std::abs(m);
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  WM_REQUIRE(xs.size() == ys.size(), "pearson: size mismatch");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double min_of(std::span<const double> xs) {
  WM_REQUIRE(!xs.empty(), "min_of: empty span");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  WM_REQUIRE(!xs.empty(), "max_of: empty span");
  return *std::max_element(xs.begin(), xs.end());
}

} // namespace wm
