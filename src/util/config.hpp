#pragma once
// Key=value configuration files.
//
// Flows pin their optimization settings in a small text file checked in
// next to the design ("wavemin.cfg"), instead of long command lines:
//
//     # single-mode run
//     kappa       = 20
//     samples     = 158
//     epsilon     = 0.01
//     solver      = warburton      # warburton|exact|greedy|exhaustive
//     guard_band  = 0
//     threads     = 1
//     xor         = false
//
// Unknown keys are rejected (typos must not silently fall back to
// defaults). The CLI consumes this via --config <file>.

#include <iosfwd>
#include <string>

#include "core/options.hpp"

namespace wm {

/// Parse a configuration stream into WaveMinOptions (starting from the
/// given defaults). Throws wm::Error on malformed lines, unknown keys
/// or out-of-range values.
WaveMinOptions parse_wavemin_config(std::istream& is,
                                    WaveMinOptions defaults = {});

WaveMinOptions parse_wavemin_config_string(const std::string& text,
                                           WaveMinOptions defaults = {});

/// Load from a file path.
WaveMinOptions load_wavemin_config(const std::string& path,
                                   WaveMinOptions defaults = {});

/// Serialize options back out (round-trips through the parser).
std::string wavemin_config_to_string(const WaveMinOptions& opts);

} // namespace wm
