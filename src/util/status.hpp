#pragma once
// wm::Status — non-throwing error propagation for the fault-tolerant
// run layer (docs/robustness.md).
//
// The library's throwing APIs (wm::Error) stay the primary interface
// for programming errors and strict flows; Status is the currency of
// the try_* wrappers (try_run_wavemin, try_clk_wavemin_m), where a
// production caller needs "what happened" as data instead of an
// exception unwinding the service loop.

#include <string>
#include <utility>

namespace wm {

enum class StatusCode {
  Ok,                 ///< run completed (possibly degraded — see RunReport)
  Infeasible,         ///< no feasible intersection at the skew bound
  DeadlineExceeded,   ///< wall-clock budget spent before any result
  ResourceExhausted,  ///< global label budget spent before any result
  Cancelled,          ///< cooperative cancellation before any result
  InvalidInput,       ///< malformed input or bad options (wm::Error text)
  Internal,           ///< unexpected failure (non-wm exception text)
};

const char* to_string(StatusCode code);

/// Coarse error category a StatusCode belongs to. This is the serving
/// supervisor's retry policy key (docs/serving.md): InvalidInput is
/// deterministic (retrying burns budget — the circuit breaker's
/// domain), Internal covers transient/unexpected failures (retried
/// with backoff), Infeasible is a *data* outcome, not a failure.
/// Every non-Ok StatusCode maps to exactly one category; see the
/// table-driven test in tests/status_map_test.cpp.
enum class ErrorCategory {
  None,          ///< StatusCode::Ok
  InvalidInput,  ///< malformed input / bad options — do not retry
  Internal,      ///< transient or unexpected — retry with backoff
  Infeasible,    ///< well-formed but unsatisfiable — report, not retry
};

ErrorCategory error_category(StatusCode code);
const char* to_string(ErrorCategory category);

/// The CLI/serve exit contract (docs/robustness.md): Ok -> 0,
/// Infeasible -> 2, every failure -> 4. Exit 3 (degraded) is decided
/// from RunReport::degraded(), never from a StatusCode, so it does not
/// appear here. wavemin_cli and the serve worker children both derive
/// their exit codes through this single function.
int cli_exit_code(StatusCode code);

// [[nodiscard]] on the class: every function returning a Status must
// have its result inspected (or explicitly (void)-cast) — dropping an
// error on the floor is a compile warning, and metalint.status-discarded
// backstops the few shapes the compiler can't see.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == StatusCode::Ok; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "invalid-input: unknown cell 'X'".
  std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::Ok;
  std::string message_;
};

} // namespace wm
