#include "util/config.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace wm {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

bool parse_bool(const std::string& v, const std::string& key) {
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw Error("config: bad boolean for '" + key + "': " + v);
}

double parse_num(const std::string& v, const std::string& key) {
  std::size_t used = 0;
  double out = 0.0;
  try {
    out = std::stod(v, &used);
  } catch (const std::exception&) {
    throw Error("config: bad number for '" + key + "': " + v);
  }
  if (used != v.size()) {
    throw Error("config: trailing junk for '" + key + "': " + v);
  }
  return out;
}

SolverKind parse_solver(const std::string& v) {
  if (v == "warburton") return SolverKind::Warburton;
  if (v == "exact") return SolverKind::Exact;
  if (v == "greedy") return SolverKind::Greedy;
  if (v == "exhaustive") return SolverKind::Exhaustive;
  throw Error("config: unknown solver: " + v);
}

const char* solver_name(SolverKind s) {
  switch (s) {
    case SolverKind::Warburton: return "warburton";
    case SolverKind::Exact: return "exact";
    case SolverKind::Greedy: return "greedy";
    case SolverKind::Exhaustive: return "exhaustive";
  }
  return "?";
}

} // namespace

WaveMinOptions parse_wavemin_config(std::istream& is,
                                    WaveMinOptions defaults) {
  WaveMinOptions opts = defaults;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string t = trim(line);
    if (t.empty()) continue;
    const auto eq = t.find('=');
    WM_REQUIRE(eq != std::string::npos,
               "config line " + std::to_string(line_no) +
                   ": expected key = value");
    const std::string key = trim(t.substr(0, eq));
    std::string value = trim(t.substr(eq + 1));
    std::transform(value.begin(), value.end(), value.begin(),
                   [](unsigned char c) { return std::tolower(c); });

    if (key == "kappa") {
      opts.kappa = parse_num(value, key);
      WM_REQUIRE(opts.kappa > 0.0, "config: kappa must be positive");
    } else if (key == "samples") {
      opts.samples = static_cast<int>(parse_num(value, key));
      WM_REQUIRE(opts.samples >= 4, "config: samples must be >= 4");
    } else if (key == "epsilon") {
      opts.epsilon = parse_num(value, key);
      WM_REQUIRE(opts.epsilon > 0.0, "config: epsilon must be positive");
    } else if (key == "solver") {
      opts.solver = parse_solver(value);
    } else if (key == "guard_band") {
      opts.skew_guard_band = parse_num(value, key);
    } else if (key == "threads") {
      opts.threads = static_cast<unsigned>(parse_num(value, key));
    } else if (key == "xor") {
      opts.enable_xor_polarity = parse_bool(value, key);
    } else if (key == "include_nonleaf") {
      opts.include_nonleaf = parse_bool(value, key);
    } else if (key == "shift_by_arrival") {
      opts.shift_by_arrival = parse_bool(value, key);
    } else if (key == "dof_beam") {
      opts.dof_beam = static_cast<std::size_t>(parse_num(value, key));
    } else if (key == "zone_tile") {
      opts.zone_tile = parse_num(value, key);
      WM_REQUIRE(opts.zone_tile > 0.0,
                 "config: zone_tile must be positive");
    } else if (key == "verify_invariants") {
      opts.verify_invariants = parse_bool(value, key);
    } else if (key == "deadline_ms") {
      opts.budget.deadline_ms = parse_num(value, key);
      WM_REQUIRE(opts.budget.deadline_ms >= 0.0,
                 "config: deadline_ms must be >= 0");
    } else if (key == "label_budget") {
      const double n = parse_num(value, key);
      WM_REQUIRE(n >= 0.0, "config: label_budget must be >= 0");
      opts.budget.max_total_labels = static_cast<std::uint64_t>(n);
    } else if (key == "seed") {
      const double n = parse_num(value, key);
      WM_REQUIRE(n >= 0.0, "config: seed must be >= 0");
      opts.seed = static_cast<std::uint64_t>(n);
    } else {
      throw Error("config: unknown key '" + key + "' (line " +
                  std::to_string(line_no) + ")");
    }
  }
  return opts;
}

WaveMinOptions parse_wavemin_config_string(const std::string& text,
                                           WaveMinOptions defaults) {
  std::istringstream is(text);
  return parse_wavemin_config(is, defaults);
}

WaveMinOptions load_wavemin_config(const std::string& path,
                                   WaveMinOptions defaults) {
  std::ifstream is(path);
  WM_REQUIRE(static_cast<bool>(is), "cannot open config: " + path);
  return parse_wavemin_config(is, defaults);
}

std::string wavemin_config_to_string(const WaveMinOptions& opts) {
  std::ostringstream os;
  os << "kappa = " << opts.kappa << '\n';
  os << "samples = " << opts.samples << '\n';
  os << "epsilon = " << opts.epsilon << '\n';
  os << "solver = " << solver_name(opts.solver) << '\n';
  os << "guard_band = " << opts.skew_guard_band << '\n';
  os << "threads = " << opts.threads << '\n';
  os << "xor = " << (opts.enable_xor_polarity ? "true" : "false") << '\n';
  os << "include_nonleaf = "
     << (opts.include_nonleaf ? "true" : "false") << '\n';
  os << "shift_by_arrival = "
     << (opts.shift_by_arrival ? "true" : "false") << '\n';
  os << "dof_beam = " << opts.dof_beam << '\n';
  os << "zone_tile = " << opts.zone_tile << '\n';
  os << "verify_invariants = "
     << (opts.verify_invariants ? "true" : "false") << '\n';
  os << "deadline_ms = " << opts.budget.deadline_ms << '\n';
  os << "label_budget = " << opts.budget.max_total_labels << '\n';
  os << "seed = " << opts.seed << '\n';
  return os.str();
}

} // namespace wm
