#pragma once
// Run budgets and cooperative cancellation (docs/robustness.md).
//
// RunBudget is the *specification* a caller puts on WaveMinOptions: a
// wall-clock deadline and/or a global cap on DP labels created across
// every zone solve of the run. BudgetTracker is the *runtime* state one
// run (or one clk_wavemin_m flow spanning several run_wavemin passes)
// shares across its worker threads: a started clock, an atomic label
// pool, and an atomic cancel flag.
//
// Everything is cooperative: hot loops (the MOSP label DP row loop, the
// zone worker pool, the intersection sweep) poll should_stop() and
// degrade gracefully — nothing is killed. All members are safe to call
// concurrently; deadline expiry and label exhaustion latch so a budget
// that trips once stays tripped for the rest of the run.

#include <atomic>
#include <chrono>
#include <cstdint>

namespace wm {

/// Budget specification; both fields 0 (the default) means unlimited —
/// the run layer then adds no checks and results are bit-identical to a
/// build without it.
struct RunBudget {
  double deadline_ms = 0.0;           ///< wall-clock budget; 0 = none
  std::uint64_t max_total_labels = 0; ///< global DP label pool; 0 = none

  bool enabled() const {
    return deadline_ms > 0.0 || max_total_labels > 0;
  }
};

class BudgetTracker {
 public:
  /// Starts the wall clock at construction.
  explicit BudgetTracker(const RunBudget& spec = RunBudget{})
      : spec_(spec), start_(std::chrono::steady_clock::now()) {}
  BudgetTracker(const BudgetTracker&) = delete;
  BudgetTracker& operator=(const BudgetTracker&) = delete;

  const RunBudget& spec() const { return spec_; }

  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  /// True once the wall-clock budget is spent (latched: the first
  /// expired clock read is remembered, later calls skip the clock).
  bool deadline_expired() const {
    if (spec_.deadline_ms <= 0.0) return false;
    if (deadline_hit_.load(std::memory_order_relaxed)) return true;
    if (elapsed_ms() < spec_.deadline_ms) return false;
    deadline_hit_.store(true, std::memory_order_relaxed);
    return true;
  }

  /// Draw `n` labels from the global pool. Returns false once the pool
  /// is exhausted; the overdraw itself is counted, so labels_consumed()
  /// reports the true amount of work done.
  bool consume_labels(std::uint64_t n) {
    const std::uint64_t now =
        labels_.fetch_add(n, std::memory_order_relaxed) + n;
    if (spec_.max_total_labels == 0) return true;
    return now <= spec_.max_total_labels;
  }

  std::uint64_t labels_consumed() const {
    return labels_.load(std::memory_order_relaxed);
  }

  bool labels_exhausted() const {
    return spec_.max_total_labels != 0 &&
           labels_consumed() > spec_.max_total_labels;
  }

  /// Record a MOSP label-arena footprint (mosp/labels.hpp). The global
  /// label pool this tracker meters is backed by those arenas; keeping
  /// the byte high-watermark here gives the run layer one place to ask
  /// what the pool actually cost in memory. Monotonic max, any thread.
  void note_arena_bytes(std::uint64_t bytes) {
    std::uint64_t prev = arena_peak_.load(std::memory_order_relaxed);
    while (prev < bytes &&
           !arena_peak_.compare_exchange_weak(prev, bytes,
                                              std::memory_order_relaxed)) {
    }
  }

  std::uint64_t arena_peak_bytes() const {
    return arena_peak_.load(std::memory_order_relaxed);
  }

  /// Cooperative kill switch; safe from any thread (e.g. a serving
  /// front-end tearing down a request).
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// The single poll hot loops use: should in-flight work wind down?
  bool should_stop() const {
    return cancelled() || labels_exhausted() || deadline_expired();
  }

 private:
  // Lock-free by design (util/thread_annotations.hpp conventions): no
  // capability guards anything here. spec_ and start_ are immutable
  // after construction; the global label pool (labels_) and both latch
  // flags are relaxed atomics — every cross-thread protocol is a
  // monotonic latch, so no ordering beyond the counter itself is
  // needed and the thread-safety analysis has nothing to check.
  RunBudget spec_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<std::uint64_t> labels_{0};
  std::atomic<std::uint64_t> arena_peak_{0};
  std::atomic<bool> cancelled_{false};
  mutable std::atomic<bool> deadline_hit_{false};
};

} // namespace wm
