#pragma once
// wm::json — minimal dependency-free JSON value, parser and writer.
//
// Grown out of the metrics reader (obs/metrics_json) when the serving
// layer needed the same machinery for its newline-delimited request
// protocol ("wavemin.jobs/v1", docs/serving.md). Just enough JSON:
// objects, arrays, strings, numbers, bools, null. Numbers keep their
// raw spelling so 64-bit counters round-trip exactly; object keys keep
// insertion order so serialization is deterministic.
//
// Parse errors throw wm::Error with the byte offset named. dump()
// emits a single line (no trailing newline) — exactly one protocol
// frame.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wm::json {

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string raw;  ///< number spelling as written / to write
  std::string str;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  /// First value under `key` (objects), or nullptr.
  const Value* find(std::string_view key) const;

  bool is_object() const { return kind == Kind::Object; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_string() const { return kind == Kind::String; }
  bool is_number() const { return kind == Kind::Number; }

  // -- construction helpers (builder style, used by the protocol) -----
  static Value null();
  static Value boolean_v(bool b);
  static Value number_v(double v);
  static Value number_v(std::uint64_t v);
  static Value number_v(int v) { return number_v(static_cast<double>(v)); }
  static Value string_v(std::string s);
  static Value object_v();
  static Value array_v();

  /// Append (key, value) to an object; no key dedup (callers own keys).
  Value& set(std::string key, Value v);
  Value& push(Value v);

  // -- typed field accessors, throwing wm::Error with `context` -------
  const std::string& get_string(std::string_view key,
                                const char* context) const;
  std::string get_string_or(std::string_view key,
                            std::string fallback) const;
  double get_number(std::string_view key, const char* context) const;
  double get_number_or(std::string_view key, double fallback) const;
  std::uint64_t get_u64_or(std::string_view key,
                           std::uint64_t fallback) const;
  bool get_bool_or(std::string_view key, bool fallback) const;
};

/// Parse one complete JSON document (trailing content is an error).
Value parse(std::string_view text);

/// Serialize compactly on one line (NDJSON frame, no newline appended).
std::string dump(const Value& v);

/// JSON string token for `s`, quotes included, control chars escaped.
std::string quote(std::string_view s);

/// Number token: "%.9g", with inf spelled as the string "inf" (quoted)
/// to match the metrics schema.
std::string number_token(double v);

/// Strict uint64 read of a Number value (rejects sign/fraction noise by
/// raw spelling). Throws wm::Error naming `context`.
std::uint64_t to_u64(const Value& v, const char* context);

} // namespace wm::json
