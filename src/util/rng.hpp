#pragma once
// Deterministic random number generation.
//
// Every stochastic component of the reproduction (benchmark generation,
// Monte Carlo process variation) must be reproducible from a single
// seed, so we carry our own tiny xoshiro256** implementation instead of
// depending on std::mt19937 (whose distributions are not guaranteed to
// be bit-stable across standard libraries).

#include <cstdint>

namespace wm {

/// xoshiro256** by Blackman & Vigna, seeded via SplitMix64.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Gaussian N(nominal, (ratio*nominal)^2) — the sigma/mu = 5% process
  /// variation model of the paper (Sec. VII-D). Clamped to stay positive.
  double vary(double nominal, double sigma_over_mu);

  /// Derive an independent child stream (for per-instance MC streams).
  Rng split();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

} // namespace wm
