#pragma once
// Clang Thread Safety Analysis annotations (docs/static_analysis.md).
//
// These macros put the repo's locking contracts into the type system:
// which mutex guards which field, which capability a function needs,
// and which RAII types acquire/release what. Under clang with
// -Wthread-safety (the WAVEMIN_THREAD_SAFETY build, CI job
// `thread-safety`) a violated contract is a *compile error*; on gcc
// and other compilers every macro expands to nothing and the
// annotated code is byte-identical to unannotated code.
//
// Two capability flavors are used in this repo:
//
//   * real mutexes — wm::Mutex + wm::MutexLock below. std::mutex is
//     not annotated by libstdc++, so guarded state must be locked
//     through these wrappers for the analysis to see the acquisition
//     (wm::obs::MetricsRegistry, the log sink, the zone worker pool).
//
//   * thread roles — wm::ThreadRole, a *fake* capability that models
//     "this code runs on the owning thread". Single-threaded-by-design
//     state (the serve daemon's job table/queue/breaker) is GUARDED_BY
//     a role the event loop acquires at entry; any future thread that
//     reaches that state without the role becomes a compile error
//     instead of a data race.
//
// Lock-free atomics (BudgetTracker, wm::fault arming, obs::Counter)
// need no capability to touch; where a lock-free *protocol* exists
// (publish-then-read epochs), the reader is marked
// NO_THREAD_SAFETY_ANALYSIS with the protocol documented at the
// opt-out — the analysis enforces the writers' mutual exclusion.
//
// Macro names follow the official clang documentation so examples
// from the manual paste in unchanged.

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#define WM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define WM_THREAD_ANNOTATION(x)
#endif

#define CAPABILITY(x) WM_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY WM_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) WM_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) WM_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) \
  WM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  WM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) \
  WM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  WM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) \
  WM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  WM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  WM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  WM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  WM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) WM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) \
  WM_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) WM_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  WM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace wm {

/// std::mutex wearing the CAPABILITY attribute so clang can track who
/// holds it. Drop-in: same lock/unlock surface, zero overhead.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII guard for wm::Mutex (the std::lock_guard shape). A scoped
/// capability: clang knows the mutex is held exactly for the guard's
/// lifetime.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// A fake capability that models *which thread* may touch some state,
/// with no runtime lock at all. Single-threaded-by-design subsystems
/// (the serve daemon's poll loop) declare one, GUARDED_BY their state
/// with it, and acquire it once at the loop entry via ThreadRoleGuard;
/// functions reaching that state are REQUIRES(role). The contract
/// costs nothing at runtime and turns "we promise only the loop
/// thread calls this" into a compile-time fact.
class CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  // No-ops: the "acquisition" is purely for the analysis.
  void acquire() ACQUIRE() {}
  void release() RELEASE() {}
};

/// Scoped acquisition of a ThreadRole for the duration of a frame
/// (e.g. the whole Server::run()).
class SCOPED_CAPABILITY ThreadRoleGuard {
 public:
  explicit ThreadRoleGuard(ThreadRole& role) ACQUIRE(role)
      : role_(role) {
    role_.acquire();
  }
  ~ThreadRoleGuard() RELEASE() { role_.release(); }
  ThreadRoleGuard(const ThreadRoleGuard&) = delete;
  ThreadRoleGuard& operator=(const ThreadRoleGuard&) = delete;

 private:
  ThreadRole& role_;
};

} // namespace wm
