#pragma once
// Resistive-mesh power grid solver — the higher-fidelity alternative to
// the kernel model of power_grid.hpp, closer to the explicit grid of
// [36] (Zhu, "Power Distribution Network Design for VLSI").
//
// The die is covered by a uniform mesh of grid nodes connected by strap
// resistances; VDD pads sit on the die boundary (ideal sources). Each
// buffering element injects its current at the nearest grid node. The
// IR drop at the instant of worst total current is found by solving the
// conductance system G * v = i with Gauss-Seidel (diagonally dominant,
// converges unconditionally).
//
// The kernel model remains the default in evaluate_design — it is ~20x
// faster and tracks the mesh closely (see bench/ext_mesh_vs_kernel) —
// but the mesh is the reference when absolute fidelity matters.

#include "grid/power_grid.hpp"
#include "tree/clock_tree.hpp"
#include "wave/tree_sim.hpp"

namespace wm {

struct MeshGridOptions {
  Um pitch = 50.0;          ///< strap pitch (grid node spacing)
  KOhm strap_res = 0.002;   ///< 2 Ohm per strap segment
  int max_iterations = 2000;
  double tolerance = 1e-6;  ///< max |dv| per sweep to declare converged
  /// Sample this many time points around each rail's peak instant (the
  /// worst drop does not always coincide with the total-current peak).
  int time_samples = 5;
};

struct MeshGridResult {
  MV vdd_noise = 0.0;  ///< worst VDD droop over grid nodes and samples
  MV gnd_noise = 0.0;  ///< worst ground bounce
  int nodes_x = 0;
  int nodes_y = 0;
  int iterations = 0;  ///< Gauss-Seidel sweeps of the worst solve
  bool converged = true;
};

MeshGridResult grid_noise_mesh(const ClockTree& tree, const TreeSim& sim,
                               MeshGridOptions opts = {});

} // namespace wm
