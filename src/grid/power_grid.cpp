#include "grid/power_grid.hpp"

#include <cmath>
#include <map>

#include "util/error.hpp"

namespace wm {

GridNoiseResult grid_noise(const ClockTree& tree, const TreeSim& sim,
                           PowerGridOptions opts) {
  WM_REQUIRE(opts.tile > 0.0 && opts.lambda > 0.0,
             "tile and lambda must be positive");

  // Bin every buffering element (leaf and non-leaf) into tiles.
  struct Tile {
    Point center;
    std::vector<NodeId> members;
  };
  std::map<std::pair<int, int>, Tile> tiles;
  for (const TreeNode& n : tree.nodes()) {
    const int gx = static_cast<int>(std::floor(n.pos.x / opts.tile));
    const int gy = static_cast<int>(std::floor(n.pos.y / opts.tile));
    Tile& t = tiles[{gx, gy}];
    t.center = {(static_cast<Um>(gx) + 0.5) * opts.tile,
                (static_cast<Um>(gy) + 0.5) * opts.tile};
    t.members.push_back(n.id);
  }

  // Per-tile injected current waveforms.
  std::vector<Tile*> tile_list;
  std::vector<Waveform> idd, iss;
  for (auto& [key, t] : tiles) {
    (void)key;
    tile_list.push_back(&t);
    idd.push_back(sim.sum_rail(t.members, Rail::Vdd));
    iss.push_back(sim.sum_rail(t.members, Rail::Gnd));
  }

  GridNoiseResult r;
  r.tiles = tile_list.size();
  for (std::size_t j = 0; j < tile_list.size(); ++j) {
    r.tile_peak_current = std::max(
        {r.tile_peak_current, idd[j].peak(), iss[j].peak()});
  }

  // Observe the IR drop at every tile center.
  for (std::size_t i = 0; i < tile_list.size(); ++i) {
    Waveform v_vdd, v_gnd;
    for (std::size_t j = 0; j < tile_list.size(); ++j) {
      const Um d = manhattan(tile_list[i]->center, tile_list[j]->center);
      const double k =
          opts.r0 / (1.0 + (d / opts.lambda) * (d / opts.lambda));
      v_vdd.accumulate_scaled(idd[j], k);
      v_gnd.accumulate_scaled(iss[j], k);
    }
    r.vdd_noise = std::max(r.vdd_noise, v_vdd.peak());
    r.gnd_noise = std::max(r.gnd_noise, v_gnd.peak());
  }
  return r;
}

} // namespace wm
