#pragma once
// Power/ground grid noise model.
//
// Substitutes for the power-grid model of [36] (Zhu, "Power Distribution
// Network Design for VLSI") used in the paper's experiments: the on-chip
// grid is a dense resistive mesh, so a switching current injected at one
// point produces an IR drop that decays with distance. We model this
// with a distance-decaying effective-resistance kernel over tiles:
//
//   V_noise(tile_i, t) = sum_j R_eff(d_ij) * I_tile_j(t)
//   R_eff(d) = r0 / (1 + (d / lambda)^2)
//
// VDD noise uses the I_DD waveforms, ground bounce the I_SS waveforms,
// and the reported figure is the worst fluctuation over all tiles and
// times — exactly the "maximum voltage fluctuation observed in the
// power and ground grids" of Table V.

#include <vector>

#include "timing/power_mode.hpp"
#include "tree/clock_tree.hpp"
#include "util/units.hpp"
#include "wave/tree_sim.hpp"
#include "wave/waveform.hpp"

namespace wm {

struct PowerGridOptions {
  Um tile = tech::kZoneSize;
  KOhm r0 = 0.0005;   ///< 0.5 Ohm local effective resistance
  Um lambda = 75.0;   ///< kernel decay length
};

struct GridNoiseResult {
  MV vdd_noise = 0.0;  ///< worst VDD droop over all tiles
  MV gnd_noise = 0.0;  ///< worst ground bounce over all tiles
  UA tile_peak_current = 0.0;  ///< worst tile-local current peak — the
                               ///< localized peak-current figure the
                               ///< zone-wise optimization targets
  std::size_t tiles = 0;
};

/// Evaluate grid noise from a completed tree simulation. All buffering
/// elements (leaf and non-leaf) inject current at their placement.
GridNoiseResult grid_noise(const ClockTree& tree, const TreeSim& sim,
                           PowerGridOptions opts = {});

} // namespace wm
