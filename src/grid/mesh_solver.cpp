#include "grid/mesh_solver.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace wm {

namespace {

/// Solve the mesh for one injection vector (mA at each node); returns
/// the worst node voltage (mV) and reports iterations/convergence.
double solve_mesh(int nx, int ny, double g_strap,
                  const std::vector<double>& inj, int max_iters,
                  double tol, int* iters_out, bool* converged) {
  // Boundary nodes are pads (v = 0); interior nodes unknown.
  auto idx = [nx](int x, int y) { return y * nx + x; };
  std::vector<double> v(static_cast<std::size_t>(nx * ny), 0.0);

  auto is_pad = [&](int x, int y) {
    return x == 0 || y == 0 || x == nx - 1 || y == ny - 1;
  };

  int sweeps = 0;
  double delta = 0.0;
  for (sweeps = 0; sweeps < max_iters; ++sweeps) {
    delta = 0.0;
    for (int y = 1; y < ny - 1; ++y) {
      for (int x = 1; x < nx - 1; ++x) {
        double g_sum = 0.0;
        double flow = inj[static_cast<std::size_t>(idx(x, y))];
        const int nbr[4][2] = {{x - 1, y}, {x + 1, y}, {x, y - 1},
                               {x, y + 1}};
        for (const auto& n : nbr) {
          g_sum += g_strap;
          const double vn =
              is_pad(n[0], n[1]) ? 0.0
                                 : v[static_cast<std::size_t>(
                                       idx(n[0], n[1]))];
          flow += g_strap * vn;
        }
        const double nv = flow / g_sum;
        delta = std::max(delta,
                         std::abs(nv - v[static_cast<std::size_t>(
                                       idx(x, y))]));
        v[static_cast<std::size_t>(idx(x, y))] = nv;
      }
    }
    if (delta < tol) break;
  }
  if (iters_out) *iters_out = std::max(*iters_out, sweeps);
  if (converged) *converged = *converged && (delta < tol);

  double worst = 0.0;
  for (double x : v) worst = std::max(worst, x);
  return worst;
}

} // namespace

MeshGridResult grid_noise_mesh(const ClockTree& tree, const TreeSim& sim,
                               MeshGridOptions opts) {
  WM_REQUIRE(opts.pitch > 0.0 && opts.strap_res > 0.0,
             "pitch and strap resistance must be positive");
  WM_REQUIRE(opts.time_samples >= 1, "need at least one time sample");

  // Mesh extents from the placement bounding box, one ring of pad
  // nodes around it.
  Um max_x = 0.0, max_y = 0.0;
  for (const TreeNode& n : tree.nodes()) {
    max_x = std::max(max_x, n.pos.x);
    max_y = std::max(max_y, n.pos.y);
  }
  const int nx = std::max(
      4, static_cast<int>(std::ceil(max_x / opts.pitch)) + 3);
  const int ny = std::max(
      4, static_cast<int>(std::ceil(max_y / opts.pitch)) + 3);

  // Per-node current waveforms, folded to one period, per rail.
  auto node_of = [&](const Point& p) {
    const int x = std::clamp(
        static_cast<int>(std::lround(p.x / opts.pitch)) + 1, 1, nx - 2);
    const int y = std::clamp(
        static_cast<int>(std::lround(p.y / opts.pitch)) + 1, 1, ny - 2);
    return y * nx + x;
  };

  MeshGridResult r;
  r.nodes_x = nx;
  r.nodes_y = ny;
  const double g = 1.0 / opts.strap_res;  // 1/kOhm

  for (const Rail rail : {Rail::Vdd, Rail::Gnd}) {
    // Group currents per grid node.
    std::vector<std::vector<NodeId>> members(
        static_cast<std::size_t>(nx * ny));
    for (const TreeNode& n : tree.nodes()) {
      members[static_cast<std::size_t>(node_of(n.pos))].push_back(n.id);
    }
    std::vector<Waveform> waves(members.size());
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (!members[i].empty()) {
        waves[i] = sim.sum_rail(members[i], rail);
      }
    }

    // Candidate instants: around the rail total's peak.
    const Waveform& total =
        rail == Rail::Vdd ? sim.total_idd() : sim.total_iss();
    const Ps t_peak = total.peak_time();
    double worst = 0.0;
    for (int k = 0; k < opts.time_samples; ++k) {
      const Ps t = t_peak + 2.0 * (k - opts.time_samples / 2);
      std::vector<double> inj(members.size(), 0.0);
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (!waves[i].empty()) inj[i] = waves[i].value_at(t);
      }
      // Units: injections in uA, conductances in 1/kOhm, so the nodal
      // voltages come out directly in uA * kOhm = mV.
      const double drop = solve_mesh(nx, ny, g, inj, opts.max_iterations,
                                     opts.tolerance, &r.iterations,
                                     &r.converged);
      worst = std::max(worst, drop);
    }
    if (rail == Rail::Vdd) {
      r.vdd_noise = worst;
    } else {
      r.gnd_noise = worst;
    }
  }
  return r;
}

} // namespace wm
