#pragma once
// Adjustable-delay-buffer allocation for multi-power-mode skew legality
// (stand-in for the minimum-count ADB embedding of [17], which the
// paper's ClkWaveMin-M flow invokes when sizing alone cannot meet the
// skew bound — Fig. 13's Insert-ADB box).
//
// Method: per power mode m, anchor the target window at the latest leaf
// arrival T_m and give every leaf the required-extra-delay interval
//   [max(0, T_m - kappa' - a_m), T_m - a_m].
// Intervals are intersected bottom-up; where the intersection dies at an
// internal node, the conflicting children are converted to ADBs with
// per-mode codes that pull their subtrees back into agreement (a
// bottom-up interval-stabbing cover — the classic minimum-count
// construction). kappa' < kappa leaves headroom for code quantization
// and the later re-sizing pass. A few outer iterations absorb the
// arrival changes caused by the cell swaps themselves.

#include "cells/library.hpp"
#include "timing/power_mode.hpp"
#include "tree/clock_tree.hpp"
#include "util/units.hpp"

namespace wm {

struct AdbOptions {
  double target_fraction = 0.8;  ///< kappa' = target_fraction * kappa
  int max_iterations = 8;
};

struct AdbAllocationResult {
  int adbs_inserted = 0;  ///< buffers converted to ADBs
  bool feasible = false;  ///< worst skew <= kappa after allocation
  Ps final_worst_skew = 0.0;
};

/// Convert buffers to ADBs (setting per-mode codes) until every mode
/// meets the skew bound, or the iteration budget runs out.
AdbAllocationResult allocate_adbs(ClockTree& tree, const CellLibrary& lib,
                                  const ModeSet& modes, Ps kappa,
                                  AdbOptions opts = {});

} // namespace wm
