#include "adb/allocation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "cells/electrical.hpp"
#include "timing/arrival.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace wm {

namespace {

constexpr Ps kTol = 1e-6;

struct ModeIv {
  Ps lo = 0.0;
  Ps hi = 0.0;
  bool empty() const { return lo > hi + kTol; }
};

using Req = std::vector<ModeIv>;  // one interval per mode

bool intersect(Req& acc, const Req& other) {
  bool ok = true;
  for (std::size_t m = 0; m < acc.size(); ++m) {
    acc[m].lo = std::max(acc[m].lo, other[m].lo);
    acc[m].hi = std::min(acc[m].hi, other[m].hi);
    if (acc[m].empty()) ok = false;
  }
  return ok;
}

bool compatible(const std::vector<Ps>& x, const Req& r) {
  for (std::size_t m = 0; m < x.size(); ++m) {
    if (x[m] < r[m].lo - kTol || x[m] > r[m].hi + kTol) return false;
  }
  return true;
}

const Cell* adb_cell_for(const CellLibrary& lib, const Cell& current) {
  const Cell* c = lib.find("ADB_X" + std::to_string(current.drive));
  if (c != nullptr) return c;
  return current.drive <= 8 ? lib.find("ADB_X8") : lib.find("ADB_X16");
}

/// Convert `id` to an ADB (or extend its codes if already adjustable) so
/// that its subtree's requirement is met assuming ancestors contribute
/// the common value x. Returns the per-mode delay actually added,
/// including the cell-swap conversion penalty (an ADB is intrinsically
/// slower than the buffer it replaces even at code 0).
std::vector<Ps> apply_adb(ClockTree& tree, const CellLibrary& lib,
                          const ModeSet& modes, NodeId id, const Req& r,
                          const std::vector<Ps>& x, int* new_adbs) {
  TreeNode& n = tree.node(id);
  const bool was_adjustable = n.cell->adjustable();
  std::vector<Ps> conversion(x.size(), 0.0);
  if (!was_adjustable) {
    const Cell* adb = adb_cell_for(lib, *n.cell);
    WM_REQUIRE(adb != nullptr, "library has no ADB cell");
    const Ff load = tree.load_of(id);
    for (std::size_t m = 0; m < x.size(); ++m) {
      const Volt vdd = modes.vdd(m, n.island);
      const DriveConditions dc{load, tech::kCharacterizationSlew, vdd};
      conversion[m] = cell_timing(*adb, dc).delay() -
                      cell_timing(*n.cell, dc).delay();
    }
    tree.set_cell(id, adb);
    n.adj_codes.assign(x.size(), 0);
    ++*new_adbs;
  } else if (n.adj_codes.size() != x.size()) {
    n.adj_codes.assign(x.size(), 0);
  }

  const Cell& cell = *n.cell;
  std::vector<Ps> added(x.size(), 0.0);
  for (std::size_t m = 0; m < x.size(); ++m) {
    // Need total extra in [lo - x, hi - x]; the conversion penalty
    // already contributes, the code grid covers the rest (rounded up).
    const Ps want = std::max(0.0, r[m].lo - x[m] - conversion[m]);
    int steps = static_cast<int>(std::ceil(want / cell.adj_step - kTol));
    const int room = cell.adj_max_code - n.adj_codes[m];
    // Small uniform code bias where the window allows it: a code of at
    // least 2 in every mode is what later lets ClkWaveMin-M swap the
    // ADB for an ADI (the swap must absorb the ADI's longer intrinsic
    // delay by lowering codes, Sec. VI).
    const int head = static_cast<int>(std::floor(
        (r[m].hi - x[m] - conversion[m]) / cell.adj_step + kTol));
    steps = std::max(steps, std::min(2, head));
    steps = std::clamp(steps, 0, room);
    // Do not overshoot the upper bound if avoidable.
    while (steps > 0 &&
           conversion[m] + cell.adj_step * static_cast<Ps>(steps) >
               r[m].hi - x[m] + kTol &&
           cell.adj_step * static_cast<Ps>(steps - 1) >= want - kTol) {
      --steps;
    }
    n.adj_codes[m] += steps;
    added[m] = conversion[m] + cell.adj_step * static_cast<Ps>(steps);
  }
  return added;
}

} // namespace

AdbAllocationResult allocate_adbs(ClockTree& tree, const CellLibrary& lib,
                                  const ModeSet& modes, Ps kappa,
                                  AdbOptions opts) {
  WM_REQUIRE(kappa > 0.0, "skew bound must be positive");
  AdbAllocationResult result;

  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    const Ps skew = worst_skew(tree, modes);
    if (skew <= kappa) break;

    const Ps keff = opts.target_fraction * kappa;
    const std::size_t n_modes = modes.count();

    // Per-mode arrivals and window anchors.
    std::vector<ArrivalResult> arr;
    std::vector<Ps> t_anchor(n_modes, std::numeric_limits<Ps>::lowest());
    for (std::size_t m = 0; m < n_modes; ++m) {
      arr.push_back(compute_arrivals(tree, modes, m));
      // Headroom above the latest leaf: converting a buffer to an ADB
      // costs ~one conversion delay even at code 0, and that cost may
      // land on the currently-latest path.
      t_anchor[m] = arr[m].max_leaf + 12.0;
    }

    std::vector<Req> req(tree.size());
    const std::vector<NodeId> topo = tree.topological_order();

    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const NodeId v = *it;
      const TreeNode& node = tree.node(v);
      const auto vi = static_cast<std::size_t>(v);

      if (node.is_leaf()) {
        Req r(n_modes);
        for (std::size_t m = 0; m < n_modes; ++m) {
          const Ps a = arr[m].output_arrival[vi];
          r[m].lo = std::max(0.0, t_anchor[m] - keff - a);
          r[m].hi = t_anchor[m] - a;
        }
        req[vi] = std::move(r);
        continue;
      }

      // Intersect the children's requirements.
      Req inter = req[static_cast<std::size_t>(node.children.front())];
      bool ok = true;
      for (std::size_t c = 1; c < node.children.size(); ++c) {
        ok = intersect(
                 inter,
                 req[static_cast<std::size_t>(node.children[c])]) &&
             ok;
      }
      if (ok) {
        req[vi] = std::move(inter);
        continue;
      }

      // Conflict: the common value x the ancestors will contribute goes
      // to *every* child, and a child ADB can only add delay on top —
      // so x is bounded above by the smallest child upper bound in
      // every mode. Taking exactly that bound keeps the most children
      // compatible (any smaller x can only violate more lower bounds).
      std::vector<Ps> x(n_modes, 0.0);
      for (std::size_t m = 0; m < n_modes; ++m) {
        Ps min_hi = std::numeric_limits<Ps>::max();
        for (NodeId c : node.children) {
          min_hi = std::min(min_hi, req[static_cast<std::size_t>(c)][m].hi);
        }
        x[m] = std::max(0.0, min_hi);
      }

      // ADB the incompatible children and recompute the intersection.
      // Small subtrees are converted at *leaf* granularity: the paper's
      // trees carry ADBs at both leaf and non-leaf positions, and only
      // leaf ADBs are later eligible for the ADB->ADI swap (Sec. VI).
      for (NodeId c : node.children) {
        Req& rc = req[static_cast<std::size_t>(c)];
        if (compatible(x, rc)) continue;
        std::vector<NodeId> targets;
        const auto below = tree.leaves_under(c);
        if (below.size() <= 6) {
          targets = below;
        } else {
          targets = {c};
        }
        std::vector<Ps> added;
        for (NodeId t : targets) {
          added = apply_adb(tree, lib, modes, t, rc, x,
                            &result.adbs_inserted);
        }
        for (std::size_t m = 0; m < n_modes; ++m) {
          rc[m].lo -= added[m];
          rc[m].hi -= added[m];
        }
      }
      Req merged = req[static_cast<std::size_t>(node.children.front())];
      for (std::size_t c = 1; c < node.children.size(); ++c) {
        intersect(merged,
                  req[static_cast<std::size_t>(node.children[c])]);
      }
      // A child whose code range was exhausted still needs more delay
      // than one ADB can give: propagate the unmet lower bound upward,
      // so an ancestor branch point stacks another ADB on the same
      // path. (The overshoot this forces onto sibling subtrees is
      // rebalanced by the next outer iteration, which re-derives the
      // requirements from actual arrivals.)
      for (std::size_t m = 0; m < n_modes; ++m) {
        if (!merged[m].empty()) continue;
        Ps need = 0.0;
        for (NodeId c : node.children) {
          need = std::max(need, req[static_cast<std::size_t>(c)][m].lo);
        }
        merged[m] = {std::max(0.0, need), std::max(0.0, need)};
      }
      req[vi] = std::move(merged);
    }
  }

  // Post-pass: give leaf ADBs a uniform all-mode code cushion where the
  // skew budget allows. A uniform bump shifts the leaf identically in
  // every mode, and a nonzero code in every mode is the prerequisite
  // for the ADB->ADI swap (the swap pays the ADI's intrinsic-delay
  // penalty out of the codes, Sec. VI).
  if (worst_skew(tree, modes) <= kappa) {
    for (const TreeNode& n : tree.nodes()) {
      if (!n.is_leaf() || !n.cell->adjustable() || n.adj_codes.empty()) {
        continue;
      }
      TreeNode& leaf = tree.node(n.id);
      const std::vector<int> saved = leaf.adj_codes;
      bool ok = true;
      for (int& code : leaf.adj_codes) {
        if (code + 3 > leaf.cell->adj_max_code) ok = false;
      }
      if (ok) {
        for (int& code : leaf.adj_codes) code += 3;
        if (worst_skew(tree, modes) > 0.95 * kappa) ok = false;
      }
      if (!ok) leaf.adj_codes = saved;
    }
  }

  result.final_worst_skew = worst_skew(tree, modes);
  result.feasible = result.final_worst_skew <= kappa;
  WM_LOG(Info) << "adb allocation: " << result.adbs_inserted
               << " ADBs, final worst skew " << result.final_worst_skew
               << " ps (bound " << kappa << ")";
  return result;
}

} // namespace wm
