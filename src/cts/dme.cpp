#include "cts/dme.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cells/electrical.hpp"
#include "util/error.hpp"

namespace wm {

namespace {

constexpr double kRw = tech::kWireResPerUm;
constexpr double kCw = tech::kWireCapPerUm;

/// Elmore delay of a wire of length L into a lumped cap c_end.
Ps wire_delay(Um len, Ff c_end) {
  return kRw * len * (0.5 * kCw * len + c_end);
}

/// Wire length whose Elmore delay into c_end equals d (positive root).
Um length_for_delay(Ps d, Ff c_end) {
  if (d <= 0.0) return 0.0;
  const double a = 0.5 * kRw * kCw;
  const double b = kRw * c_end;
  return (-b + std::sqrt(b * b + 4.0 * a * d)) / (2.0 * a);
}

struct Blueprint {
  Point pos;                // tap / cell placement
  const Cell* cell = nullptr;
  Ff sink_cap = 0.0;        // leaves only
  int child_a = -1;
  int child_b = -1;
  Um wire_a = 0.0;          // tap -> child a route length
  Um wire_b = 0.0;
};

struct Sub {
  int blue = -1;   // blueprint index
  Point tap;       // where the subtree is tapped
  Ps delay = 0.0;  // tap input -> sink output (balanced)
  Ff cap = 0.0;    // capacitance presented at the tap
};

/// Point at Manhattan distance `dist` from a toward b along an L-route.
Point along_route(const Point& a, const Point& b, Um dist) {
  const Um dx = std::abs(b.x - a.x);
  Point p = a;
  if (dist <= dx) {
    p.x += (b.x >= a.x ? dist : -dist);
    return p;
  }
  p.x = b.x;
  const Um rest = dist - dx;
  p.y += (b.y >= a.y ? rest : -rest);
  return p;
}

/// Zero-skew split of a route of length d between subtrees a and b:
/// returns x in [0, d] (distance from a) with equal tap-to-sink delays,
/// or a negative value / value > d when one side needs extension.
double solve_split(const Sub& a, const Sub& b, Um d) {
  auto diff = [&](double x) {
    return (a.delay + wire_delay(x, a.cap)) -
           (b.delay + wire_delay(d - x, b.cap));
  };
  double lo = 0.0, hi = d;
  if (diff(lo) >= 0.0) return -1.0;  // a slower even at x = 0
  if (diff(hi) <= 0.0) return d + 1.0;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    (diff(mid) < 0.0 ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

} // namespace

ClockTree synthesize_tree_dme(const std::vector<LeafSpec>& leaves,
                              const CellLibrary& lib, DmeOptions opts) {
  WM_REQUIRE(!leaves.empty(), "need at least one leaf");
  const Cell* leaf_cell = &lib.by_name(opts.leaf_cell);
  const Cell* merge_cell = &lib.by_name(opts.merge_cell);
  const Cell* root_cell = &lib.by_name(opts.root_cell);

  std::vector<Blueprint> blues;
  std::vector<Sub> active;
  for (const LeafSpec& s : leaves) {
    Blueprint bl;
    bl.pos = s.pos;
    bl.cell = leaf_cell;
    bl.sink_cap = s.sink_cap;
    Sub sub;
    sub.blue = static_cast<int>(blues.size());
    sub.tap = s.pos;
    sub.delay = cell_timing(*leaf_cell,
                            DriveConditions{s.sink_cap,
                                            tech::kCharacterizationSlew,
                                            tech::kVddNominal})
                    .delay();
    sub.cap = leaf_cell->c_in;
    blues.push_back(bl);
    active.push_back(sub);
  }

  // Bottom-up nearest-neighbour merging.
  while (active.size() > 1) {
    // Closest pair (O(n^2); fine at clock-tree scale).
    std::size_t bi = 0, bj = 1;
    Um best = std::numeric_limits<Um>::max();
    for (std::size_t i = 0; i < active.size(); ++i) {
      for (std::size_t j = i + 1; j < active.size(); ++j) {
        const Um d = manhattan(active[i].tap, active[j].tap);
        if (d < best) {
          best = d;
          bi = i;
          bj = j;
        }
      }
    }
    Sub a = active[bi];
    Sub b = active[bj];
    const Um d = std::max<Um>(manhattan(a.tap, b.tap), 1.0);

    // Zero-skew tap along (or beyond) the route.
    Um wire_a, wire_b;
    Point tap;
    const double x = solve_split(a, b, d);
    if (x < 0.0) {
      // a is slower: tap at a, extend b's wire (snaking).
      tap = a.tap;
      wire_a = 0.0;
      wire_b = d + length_for_delay(a.delay - b.delay - wire_delay(d, b.cap),
                                    b.cap);
      if (wire_b < d) wire_b = d;  // numerical guard
    } else if (x > d) {
      tap = b.tap;
      wire_b = 0.0;
      wire_a = d + length_for_delay(b.delay - a.delay - wire_delay(d, a.cap),
                                    a.cap);
      if (wire_a < d) wire_a = d;
    } else {
      tap = along_route(a.tap, b.tap, static_cast<Um>(x));
      wire_a = static_cast<Um>(x);
      wire_b = d - static_cast<Um>(x);
    }

    const bool is_root = active.size() == 2;
    const Cell* cell = is_root ? root_cell : merge_cell;
    Blueprint bl;
    bl.pos = tap;
    bl.cell = cell;
    bl.child_a = a.blue;
    bl.child_b = b.blue;
    bl.wire_a = wire_a;
    bl.wire_b = wire_b;

    const Ff load = wire_a * kCw + wire_b * kCw +
                    blues[static_cast<std::size_t>(a.blue)].cell->c_in +
                    blues[static_cast<std::size_t>(b.blue)].cell->c_in;
    Sub merged;
    merged.blue = static_cast<int>(blues.size());
    merged.tap = tap;
    merged.delay =
        cell_timing(*cell, DriveConditions{load,
                                           tech::kCharacterizationSlew,
                                           tech::kVddNominal})
            .delay() +
        a.delay + wire_delay(wire_a, a.cap);
    merged.cap = cell->c_in;
    blues.push_back(bl);

    // Replace the pair with the merge (erase the later index first).
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(bj));
    active[bi] = merged;
  }

  // Emit the blueprint top-down into the arena.
  ClockTree tree;
  const int top = active.front().blue;
  struct Frame {
    int blue;
    NodeId parent;
    Um wire;
  };
  std::vector<Frame> stack{{top, kNoNode, 0.0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Blueprint& bl = blues[static_cast<std::size_t>(f.blue)];
    NodeId id;
    if (f.parent == kNoNode) {
      id = tree.add_root(bl.pos, bl.cell);
    } else {
      id = tree.add_node(f.parent, bl.pos, bl.cell, f.wire);
    }
    if (bl.child_a < 0) {
      tree.node(id).sink_cap = bl.sink_cap;
    } else {
      stack.push_back({bl.child_a, id, bl.wire_a});
      stack.push_back({bl.child_b, id, bl.wire_b});
    }
  }

  if (leaves.size() > 1) balance_skew(tree, opts.polish_iters);
  return tree;
}

} // namespace wm
