#include "cts/benchmarks.hpp"

#include <algorithm>
#include <cmath>

#include "cts/synthesis.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace wm {

const std::vector<BenchmarkSpec>& benchmark_suite() {
  // n and |L| are the published Table V values; die sides are sized so
  // the 50 um zone grid reproduces the quoted mean occupancies; ISPD
  // circuits get clustered placement and (via their large non-leaf
  // budget) long repeatered routes.
  static const std::vector<BenchmarkSpec> suite = {
      {"s13207", 58, 50, 200.0, false, 13207, 4},
      {"s15850", 22, 19, 150.0, false, 15850, 4},
      {"s35932", 323, 246, 300.0, false, 35932, 6},
      {"s38417", 304, 228, 400.0, false, 38417, 6},
      {"s38584", 210, 169, 350.0, false, 38584, 5},
      {"ispd09f31", 328, 111, 600.0, true, 9310, 8},
      {"ispd09f34", 210, 69, 500.0, true, 9340, 6},
  };
  return suite;
}

const BenchmarkSpec& spec_by_name(const std::string& name) {
  for (const BenchmarkSpec& s : benchmark_suite()) {
    if (s.name == name) return s;
  }
  throw Error("unknown benchmark: " + name);
}

namespace {

std::vector<LeafSpec> place_leaves(const BenchmarkSpec& spec, Rng& rng) {
  std::vector<LeafSpec> leaves;
  leaves.reserve(static_cast<std::size_t>(spec.n_leaves));
  const Um margin = 10.0;
  const Um lo = margin;
  const Um hi = spec.die - margin;

  if (!spec.clustered) {
    for (int i = 0; i < spec.n_leaves; ++i) {
      LeafSpec s;
      s.pos = {rng.uniform(lo, hi), rng.uniform(lo, hi)};
      // FF-bank loads span more than a decade in real netlists (one
      // flop to tens of flops behind one leaf buffer); this timing and
      // magnitude heterogeneity is exactly what the fine-grained model
      // can exploit and coarse 4-point models cannot.
      s.sink_cap = std::exp(rng.uniform(std::log(7.0), std::log(28.0)));
      leaves.push_back(s);
    }
    return leaves;
  }

  // ISPD-style: a handful of placement blobs with Gaussian spread.
  const int n_clusters = std::max(3, spec.n_leaves / 12);
  std::vector<Point> centers;
  centers.reserve(static_cast<std::size_t>(n_clusters));
  for (int c = 0; c < n_clusters; ++c) {
    centers.push_back({rng.uniform(lo, hi), rng.uniform(lo, hi)});
  }
  for (int i = 0; i < spec.n_leaves; ++i) {
    const Point& c =
        centers[static_cast<std::size_t>(rng.uniform_int(0, n_clusters - 1))];
    LeafSpec s;
    s.pos = {std::clamp(rng.normal(c.x, 25.0), lo, hi),
             std::clamp(rng.normal(c.y, 25.0), lo, hi)};
    // FF-bank loads span more than a decade in real netlists (one
      // flop to tens of flops behind one leaf buffer); this timing and
      // magnitude heterogeneity is exactly what the fine-grained model
      // can exploit and coarse 4-point models cannot.
      s.sink_cap = std::exp(rng.uniform(std::log(7.0), std::log(28.0)));
    leaves.push_back(s);
  }
  return leaves;
}

} // namespace

ClockTree make_benchmark(const BenchmarkSpec& spec, const CellLibrary& lib) {
  WM_REQUIRE(spec.n_leaves >= 1 && spec.n_total > spec.n_leaves,
             "spec must have n_total > n_leaves >= 1");
  Rng rng(spec.seed);
  const std::vector<LeafSpec> leaves = place_leaves(spec, rng);

  // Pick the fanout whose synthesized node count comes closest to the
  // target from below; repeaters fill the remaining non-leaf budget
  // (this is what makes the ISPD trees deep chains, as in the contest
  // benchmarks).
  // Fanout capped at 10 and leaf groups at 12: beyond that a driver's
  // load (and so its output slew) leaves the regime clock cells are
  // designed for.
  ClockTree best;
  int best_count = -1;
  for (int fanout = 2; fanout <= 10; ++fanout) {
    for (int group = fanout; group <= 12; ++group) {
      CtsOptions opts;
      opts.fanout = fanout;
      opts.max_leaf_group = group;
      ClockTree t = synthesize_tree(leaves, lib, opts);
      const int count = static_cast<int>(t.size());
      if (count <= spec.n_total && count > best_count) {
        best_count = count;
        best = std::move(t);
      }
    }
  }
  WM_REQUIRE(best_count > 0,
             "no fanout yields a tree within the node budget for " +
                 spec.name);

  const int budget = spec.n_total - best_count;
  insert_repeaters(best, lib, "BUF_X16", budget);
  WM_ASSERT(static_cast<int>(best.size()) == spec.n_total,
            "node budget not met for " + spec.name);

  // Voltage islands: vertical stripes across the die.
  const Um stripe = spec.die / static_cast<Um>(spec.islands);
  for (const TreeNode& n : best.nodes()) {
    const int isl = std::clamp(
        static_cast<int>(n.pos.x / stripe), 0, spec.islands - 1);
    best.node(n.id).island = isl;
  }

  // Alternate balancing with load-driven upsizing of internal drivers
  // (including the root): balancing adds snake-wire load, and keeping
  // output slews near the characterization slew is a stated requirement
  // of the paper's noise model (Sec. IV-B).
  for (int round = 0; round < 2; ++round) {
    balance_skew(best, 10);
    for (const TreeNode& n : best.nodes()) {
      if (n.is_leaf()) continue;
      const Ff load = best.load_of(n.id);
      if (load > 50.0) {
        best.set_cell(n.id, &lib.by_name("BUF_X64"));
      } else if (load > 25.0 && n.cell->drive < 32) {
        best.set_cell(n.id, &lib.by_name("BUF_X32"));
      }
    }
  }
  balance_skew(best, 10);

  // Real CTS leaves a few ps of residual skew (the paper quotes < 10 ps
  // for its input trees); a perfectly zero-skew tree would be an
  // unrealistically easy input. Deterministic per-leaf route jitter
  // restores that arrival diversity.
  jitter_leaf_arrivals(best, rng, 4.0);
  return best;
}

BenchmarkSpec make_scaled_spec(int n_leaves, std::uint64_t seed) {
  WM_REQUIRE(n_leaves >= 4, "need at least 4 leaves");
  BenchmarkSpec spec;
  spec.name = "scaled" + std::to_string(n_leaves);
  spec.n_leaves = n_leaves;
  // Non-leaf budget ~ a third of the leaves (ISCAS-like ratio).
  spec.n_total = n_leaves + std::max(3, n_leaves / 3);
  const double zones = static_cast<double>(n_leaves) / 4.5;
  spec.die = std::ceil(std::sqrt(zones)) * tech::kZoneSize;
  spec.clustered = false;
  spec.seed = seed;
  spec.islands = std::max(4, n_leaves / 60);
  return spec;
}

ModeSet make_mode_set(const BenchmarkSpec& spec) {
  const auto k = static_cast<std::size_t>(spec.islands);
  auto fill = [k](Volt v) { return std::vector<Volt>(k, v); };

  PowerMode m1{"M1:all-high", fill(tech::kVddNominal), {}, {}};

  PowerMode m2{"M2:left-low", fill(tech::kVddNominal), {}, {}};
  for (std::size_t i = 0; i < k / 2; ++i) m2.island_vdd[i] = tech::kVddLow;

  PowerMode m3{"M3:right-low", fill(tech::kVddNominal), {}, {}};
  for (std::size_t i = k / 2; i < k; ++i) m3.island_vdd[i] = tech::kVddLow;

  PowerMode m4{"M4:alternating", fill(tech::kVddNominal), {}, {}};
  for (std::size_t i = 0; i < k; i += 2) m4.island_vdd[i] = tech::kVddLow;

  return ModeSet({m1, m2, m3, m4});
}

} // namespace wm
