#pragma once
// Benchmark circuit generation.
//
// The paper evaluates on five ISCAS'89 circuits (clock trees synthesized
// with Synopsys DC/ICC) and two ISPD'09 CTS contest circuits. Those
// exact trees are not publicly reconstructable, so this module generates
// deterministic synthetic equivalents that match the published
// statistics the algorithms are sensitive to:
//   * total buffering elements n and leaf count |L| (paper Table V),
//   * mean zone occupancy (4.3 leaves/zone ISCAS, 4.9 ISPD, 7.1 for
//     s35932 — Sec. VII-A) via the die size,
//   * ISPD trees have far more non-leaf elements than ISCAS (long routes
//     with repeater chains) and a clustered placement,
//   * near-zero initial skew (< ~10 ps).
// See DESIGN.md §2 for the substitution rationale.

#include <cstdint>
#include <string>
#include <vector>

#include "cells/library.hpp"
#include "timing/power_mode.hpp"
#include "tree/clock_tree.hpp"
#include "util/units.hpp"

namespace wm {

struct BenchmarkSpec {
  std::string name;
  int n_total = 0;   ///< total buffering elements (column n of Table V)
  int n_leaves = 0;  ///< leaf buffering elements (column |L|)
  Um die = 300.0;    ///< die side length
  bool clustered = false;  ///< ISPD-style clustered placement
  std::uint64_t seed = 1;
  int islands = 4;  ///< voltage islands for multi-mode experiments
};

/// The seven circuits of the paper's evaluation (Table V).
const std::vector<BenchmarkSpec>& benchmark_suite();

/// Lookup by name; throws wm::Error if unknown.
const BenchmarkSpec& spec_by_name(const std::string& name);

/// Generate the clock tree for a spec. Node/leaf counts match the spec
/// exactly; the returned tree is skew-balanced and every node carries a
/// voltage-island index (vertical stripes).
ClockTree make_benchmark(const BenchmarkSpec& spec, const CellLibrary& lib);

/// The power modes used in the multi-mode experiments (Sec. VII-E):
/// four modes over the spec's islands, each island at 0.9 V or 1.1 V.
ModeSet make_mode_set(const BenchmarkSpec& spec);

/// A synthetic spec with `n_leaves` sinks at the ISCAS-like zone
/// occupancy (~4-5 leaves per 50 um tile) — the scalability ladder for
/// runtime studies beyond the published circuit sizes.
BenchmarkSpec make_scaled_spec(int n_leaves, std::uint64_t seed = 7777);

} // namespace wm
