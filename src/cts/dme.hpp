#pragma once
// Zero-skew clock tree synthesis by deferred-merge embedding (DME),
// Tsay-style: bottom-up nearest-neighbour topology construction with
// exact Elmore zero-skew merge points.
//
// This is the classical algorithm behind the zero-skew trees the paper's
// references [6]-[11] build on, provided as an alternative to the
// recursive-bisection synthesizer in synthesis.hpp:
//
//   * topology: greedy nearest-neighbour pairing, bottom-up (binary);
//   * embedding: at every merge of subtrees a and b with Elmore delays
//     t_a, t_b and downstream capacitances c_a, c_b over a route of
//     length d, the tap point x (distance from a) solves
//
//        t_a + r x (c x / 2 + c_a) = t_b + r (d-x) (c (d-x) / 2 + c_b)
//
//     if x lands outside [0, d], the shorter side is extended (wire
//     snaking) so the merge stays exact;
//   * buffering: a driver is placed at every merge point (this library
//     models *buffered* trees); each buffer resets the downstream
//     capacitance budget, which is what keeps deep trees from
//     quadratic wire-delay blowup.
//
// The result plugs into the same balance_skew() polish as the default
// synthesizer (the merge math is exact only under the wire-only Elmore
// model; buffer input-slew effects leave small residues).

#include <vector>

#include "cells/library.hpp"
#include "cts/synthesis.hpp"
#include "tree/clock_tree.hpp"

namespace wm {

struct DmeOptions {
  const char* leaf_cell = "BUF_X16";
  const char* merge_cell = "BUF_X32";
  const char* root_cell = "BUF_X64";
  int polish_iters = 6;  ///< balance_skew() rounds after embedding
};

/// Synthesize a buffered binary zero-skew tree over the leaf specs.
ClockTree synthesize_tree_dme(const std::vector<LeafSpec>& leaves,
                              const CellLibrary& lib,
                              DmeOptions opts = {});

} // namespace wm
