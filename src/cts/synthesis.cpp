#include "cts/synthesis.hpp"

#include "cells/electrical.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "timing/arrival.hpp"
#include "util/error.hpp"

namespace wm {

namespace {

Point centroid(const std::vector<LeafSpec>& items) {
  Point c;
  for (const LeafSpec& s : items) {
    c.x += s.pos.x;
    c.y += s.pos.y;
  }
  const auto n = static_cast<double>(items.size());
  c.x /= n;
  c.y /= n;
  return c;
}

/// Split `items` into k geometric groups by recursive median bisection
/// along the wider bounding-box dimension.
void split_groups(std::vector<LeafSpec> items, int k,
                  std::vector<std::vector<LeafSpec>>& out) {
  if (k <= 1 || items.size() <= 1) {
    out.push_back(std::move(items));
    return;
  }
  Um min_x = std::numeric_limits<Um>::max(), max_x = -min_x;
  Um min_y = min_x, max_y = -min_x;
  for (const LeafSpec& s : items) {
    min_x = std::min(min_x, s.pos.x);
    max_x = std::max(max_x, s.pos.x);
    min_y = std::min(min_y, s.pos.y);
    max_y = std::max(max_y, s.pos.y);
  }
  const bool by_x = (max_x - min_x) >= (max_y - min_y);
  std::sort(items.begin(), items.end(),
            [by_x](const LeafSpec& a, const LeafSpec& b) {
              return by_x ? a.pos.x < b.pos.x : a.pos.y < b.pos.y;
            });
  const int k1 = k / 2;
  const int k2 = k - k1;
  const auto cut = items.size() * static_cast<std::size_t>(k1) /
                   static_cast<std::size_t>(k);
  std::vector<LeafSpec> left(items.begin(),
                             items.begin() + static_cast<std::ptrdiff_t>(
                                                 std::max<std::size_t>(
                                                     1, cut)));
  std::vector<LeafSpec> right(items.begin() + static_cast<std::ptrdiff_t>(
                                                  std::max<std::size_t>(
                                                      1, cut)),
                              items.end());
  if (right.empty()) {
    out.push_back(std::move(left));
    return;
  }
  split_groups(std::move(left), k1, out);
  split_groups(std::move(right), k2, out);
}

/// Internal levels needed so that leaf groups of at most `g` hang off a
/// tree with fanout `f` at uniform depth.
int levels_needed(std::size_t n_items, int f, int g) {
  int levels = 1;
  double capacity = g;
  while (capacity < static_cast<double>(n_items)) {
    capacity *= f;
    ++levels;
  }
  return levels;
}

/// Build a *uniform-depth* subtree: every leaf ends up exactly
/// `levels_left` internal levels below `parent`. Depth balance is what
/// keeps the zero-skew balancing pass in the regime where wire snaking
/// can absorb the residuals (cell-count asymmetry cannot be snaked
/// away). Single-child chains keep the depth uniform when a group is
/// small.
void build_subtree(ClockTree& tree, NodeId parent,
                   std::vector<LeafSpec> items, int levels_left,
                   const CellLibrary& lib, const CtsOptions& opts) {
  const Cell* leaf_cell = &lib.by_name(opts.leaf_cell);
  const Cell* internal_cell = &lib.by_name(opts.internal_cell);

  if (levels_left == 0) {
    for (const LeafSpec& s : items) {
      const NodeId id = tree.add_node(parent, s.pos, leaf_cell);
      tree.node(id).sink_cap = s.sink_cap;
    }
    return;
  }

  // How many groups this level needs so the remaining levels suffice.
  double sub_capacity = opts.max_leaf_group > 0
                            ? static_cast<double>(opts.max_leaf_group)
                            : static_cast<double>(opts.fanout);
  for (int l = 1; l < levels_left; ++l) {
    sub_capacity *= opts.fanout;
  }
  const int k = std::clamp(
      static_cast<int>(std::ceil(static_cast<double>(items.size()) /
                                 sub_capacity)),
      1, opts.fanout);

  std::vector<std::vector<LeafSpec>> groups;
  split_groups(std::move(items), k, groups);
  for (auto& g : groups) {
    WM_ASSERT(!g.empty(), "empty CTS group");
    const NodeId id = tree.add_node(parent, centroid(g), internal_cell);
    build_subtree(tree, id, std::move(g), levels_left - 1, lib, opts);
  }
}

} // namespace

ClockTree synthesize_tree(const std::vector<LeafSpec>& leaves,
                          const CellLibrary& lib, CtsOptions opts) {
  WM_REQUIRE(!leaves.empty(), "need at least one leaf");
  WM_REQUIRE(opts.fanout >= 2, "fanout must be at least 2");

  ClockTree tree;
  const Cell* root_cell = &lib.by_name(opts.root_cell);
  const NodeId root = tree.add_root(centroid(leaves), root_cell);

  const int group =
      opts.max_leaf_group > 0 ? opts.max_leaf_group : opts.fanout;
  const int levels = levels_needed(leaves.size(), opts.fanout, group);
  // The root itself is the first level.
  build_subtree(tree, root, leaves, levels - 1, lib, opts);
  return tree;
}

namespace {

/// Wire length whose Elmore delay (driving a pin of capacitance c_in)
/// equals d_target — the positive root of (r*c/2) L^2 + (r*Cin) L = d.
Um wire_len_for_delay(Ps d_target, Ff c_in) {
  if (d_target <= 0.0) return 0.0;
  const double a = 0.5 * tech::kWireResPerUm * tech::kWireCapPerUm;
  const double b = tech::kWireResPerUm * c_in;
  return (-b + std::sqrt(b * b + 4.0 * a * d_target)) / (2.0 * a);
}

/// Bottom-up zero-skew merge (DME-style): equalize, at every internal
/// node, each child's edge-plus-subtree delay by adjusting the edge
/// lengths (down to the Manhattan route, up as snaking). Cell delays use
/// the per-node input slews of the previous global analysis (frozen for
/// this pass), so iterating merge + analysis converges to the
/// slew-aware zero-skew tree. Returns the balanced subtree delay
/// (input of v -> deepest leaf output).
Ps balance_node(ClockTree& tree, NodeId v, const std::vector<Ps>& slews) {
  TreeNode& node = tree.node(v);
  const Ps slew = slews[static_cast<std::size_t>(v)];
  if (node.is_leaf()) {
    DriveConditions dc{tree.load_of(v), slew, tech::kVddNominal};
    return cell_timing(*node.cell, dc).delay();
  }
  std::vector<Ps> sub(node.children.size());
  Ps target = 0.0;
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    const NodeId c = node.children[i];
    sub[i] = balance_node(tree, c, slews);
    const TreeNode& child = tree.node(c);
    // The edge may shrink back to the direct route if its subtree is
    // slow, so the merge target is the max over *floor-length* edges.
    const Um floor_len = manhattan(node.pos, child.pos);
    const KOhm rw = floor_len * tech::kWireResPerUm;
    const Ff cw = floor_len * tech::kWireCapPerUm;
    const Ps floor_elmore = rw * (0.5 * cw + child.cell->c_in);
    target = std::max(target, floor_elmore + sub[i]);
  }
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    const NodeId c = node.children[i];
    TreeNode& child = tree.node(c);
    const Um floor_len = manhattan(node.pos, child.pos);
    const Um len = wire_len_for_delay(target - sub[i], child.cell->c_in);
    child.wire_len = std::max(len, floor_len);
  }
  DriveConditions dc{tree.load_of(v), slew, tech::kVddNominal};
  return cell_timing(*node.cell, dc).delay() + target;
}

} // namespace

Ps balance_skew(ClockTree& tree, int iters) {
  // Alternate the bottom-up zero-skew merge with a global slew-aware
  // analysis: each merge pass balances exactly under the slews of the
  // previous analysis, and the slews converge as the wire adjustments
  // shrink.
  const int passes = std::max(2, iters);
  for (int it = 0; it < passes; ++it) {
    const ArrivalResult r = compute_arrivals(tree);
    balance_node(tree, tree.root(), r.slew_in);
  }
  return compute_arrivals(tree).skew();
}

void jitter_leaf_arrivals(ClockTree& tree, Rng& rng, Ps max_extra) {
  for (const TreeNode& n : tree.nodes()) {
    if (!n.is_leaf()) continue;
    tree.node(n.id).route_extra = rng.uniform(0.0, max_extra);
  }
}

int insert_repeaters(ClockTree& tree, const CellLibrary& lib,
                     const char* repeater_cell, int max_extra) {
  if (max_extra <= 0) return 0;
  const Cell* cell = &lib.by_name(repeater_cell);

  // Spend the budget skew-neutrally:
  //   * an equal number of repeaters on every leaf edge (equal chain
  //     depth on every path), and
  //   * the remainder as a common source-route chain directly below the
  //     root (a shared-path cell delays every sink equally).
  // This is how deep ISPD-style trees look — long repeatered source
  // routes plus per-branch chains — without manufacturing artificial
  // skew that wire snaking would then have to absorb.
  const std::vector<NodeId> leaves = tree.leaves();
  const int per_leaf = max_extra / static_cast<int>(leaves.size());
  int remainder = max_extra - per_leaf * static_cast<int>(leaves.size());

  int inserted = 0;
  for (const NodeId leaf : leaves) {
    NodeId below = leaf;
    for (int k = per_leaf; k >= 1; --k) {
      const TreeNode& b = tree.node(below);
      const Point p = tree.node(b.parent).pos;
      const double f =
          static_cast<double>(k) / static_cast<double>(per_leaf + 1);
      const Point pos{p.x + f * (tree.node(leaf).pos.x - p.x),
                      p.y + f * (tree.node(leaf).pos.y - p.y)};
      below = tree.split_edge(below, pos, cell);
      ++inserted;
    }
  }

  // Source-route chain, zig-zagged near the root so its cells spread
  // over a few tiles instead of stacking in one point.
  const Point root_pos = tree.node(tree.root()).pos;
  NodeId attach = tree.root();
  for (int k = 0; k < remainder; ++k) {
    const Um dx = 20.0 * static_cast<Um>((k % 5) - 2);
    const Um dy = 20.0 * static_cast<Um>((k / 5) % 5 - 2);
    attach = tree.insert_below(attach,
                               Point{root_pos.x + dx, root_pos.y + dy},
                               cell);
    ++inserted;
  }
  return inserted;
}

} // namespace wm
