#pragma once
// Clock tree synthesis.
//
// Substitutes for the Synopsys IC Compiler flow the paper used to
// produce its benchmark clock trees (Sec. VII-A): given the placed leaf
// buffering elements (each lumping a small cluster of flip-flops), build
// a buffered tree above them by recursive geometric clustering, then
// balance it to near-zero skew (< ~10 ps, as the paper quotes for its
// trees) by elongating (snaking) leaf wires.

#include <vector>

#include "cells/library.hpp"
#include "tree/clock_tree.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace wm {

/// A leaf buffering element to be driven by the synthesized tree.
struct LeafSpec {
  Point pos;
  Ff sink_cap = 16.0;  ///< lumped FF-bank + local-net load the leaf drives
};

struct CtsOptions {
  int fanout = 4;          ///< target children per internal node
  int max_leaf_group = 0;  ///< leaf buffers per last-level driver
                           ///< (0 = same as fanout)
  Um max_edge_len = 120.0; ///< insert repeaters on longer edges
  int skew_balance_iters = 8;
  /// Cells by role (names looked up in the library).
  const char* leaf_cell = "BUF_X16";
  const char* internal_cell = "BUF_X16";
  const char* repeater_cell = "BUF_X16";
  const char* root_cell = "BUF_X32";
};

/// Build a buffered clock tree over the given leaves.
ClockTree synthesize_tree(const std::vector<LeafSpec>& leaves,
                          const CellLibrary& lib, CtsOptions opts = {});

/// Elongate leaf wires so every leaf's *input* arrival approaches the
/// latest one (zero-skew balancing). Returns the residual input skew.
Ps balance_skew(ClockTree& tree, int iters = 8);

/// Add a small deterministic extra route delay (0..max_extra ps) to
/// every leaf edge — models the residual arrival diversity real CTS
/// leaves behind (< ~10 ps in the paper's input trees).
void jitter_leaf_arrivals(ClockTree& tree, Rng& rng, Ps max_extra);

/// Insert exactly `max_extra` repeater cells, each on the leaf edge of
/// the then-earliest leaf — the repeaters double as coarse delay
/// balancers (ISPD-style deep trees arise exactly this way). Returns
/// how many were inserted.
int insert_repeaters(ClockTree& tree, const CellLibrary& lib,
                     const char* repeater_cell, int max_extra);

} // namespace wm
