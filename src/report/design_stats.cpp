#include "report/design_stats.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "tree/zone.hpp"
#include "util/error.hpp"

namespace wm {

DesignStats analyze_tree(const ClockTree& tree) {
  WM_REQUIRE(!tree.empty(), "empty tree");
  DesignStats s;
  s.nodes = tree.size();
  s.leaves = tree.leaf_count();
  s.min_leaf_depth = std::numeric_limits<int>::max();
  s.min_sink_cap = std::numeric_limits<Ff>::max();

  for (const TreeNode& n : tree.nodes()) {
    s.total_wire += n.wire_len;
    s.max_edge_wire = std::max(s.max_edge_wire, n.wire_len);
    if (n.cell->adjustable()) ++s.adjustable_cells;
    if (!n.is_leaf()) continue;

    int depth = 0;
    for (NodeId v = n.id; v != kNoNode; v = tree.node(v).parent) ++depth;
    s.min_leaf_depth = std::min(s.min_leaf_depth, depth);
    s.max_leaf_depth = std::max(s.max_leaf_depth, depth);

    s.total_sink_cap += n.sink_cap;
    s.min_sink_cap = std::min(s.min_sink_cap, n.sink_cap);
    s.max_sink_cap = std::max(s.max_sink_cap, n.sink_cap);
    ++s.leaf_cells[n.cell->name];
    if (!n.xor_negative.empty()) ++s.xor_reconfigurable;
  }

  const ZoneMap zones(tree);
  s.zones = zones.zones().size();
  s.mean_zone_occupancy = zones.mean_occupancy();
  return s;
}

std::string to_string(const DesignStats& s) {
  std::ostringstream os;
  os.precision(2);
  os << std::fixed;
  os << "nodes           : " << s.nodes << " (" << s.leaves
     << " leaves, depth " << s.min_leaf_depth << ".." << s.max_leaf_depth
     << ")\n";
  os << "wire            : " << s.total_wire << " um total, longest edge "
     << s.max_edge_wire << " um\n";
  os << "sink loads      : " << s.total_sink_cap << " fF total ["
     << s.min_sink_cap << ", " << s.max_sink_cap << "]\n";
  os << "zones (50 um)   : " << s.zones << ", mean occupancy "
     << s.mean_zone_occupancy << " leaves\n";
  os << "leaf cells      :";
  for (const auto& [name, count] : s.leaf_cells) {
    os << ' ' << name << "=" << count;
  }
  os << '\n';
  if (s.adjustable_cells > 0) {
    os << "adjustable cells: " << s.adjustable_cells << '\n';
  }
  if (s.xor_reconfigurable > 0) {
    os << "XOR leaves      : " << s.xor_reconfigurable << '\n';
  }
  return os.str();
}

} // namespace wm
