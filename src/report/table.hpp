#pragma once
// Paper-style table rendering for the benchmark binaries: fixed-width
// aligned text for the console plus CSV export for downstream plotting.

#include <string>
#include <vector>

namespace wm {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  std::size_t rows() const { return rows_.size(); }

  /// Aligned fixed-width rendering with a header rule.
  std::string to_text() const;

  std::string to_csv() const;

  /// Fixed-precision number formatting ("12.34").
  static std::string num(double v, int precision = 2);

  /// Signed percentage ("-12.39").
  static std::string pct(double v, int precision = 2);

  /// If the environment variable WAVEMIN_CSV_DIR names a directory,
  /// write this table there as <name>.csv (for downstream plotting) and
  /// return true; otherwise do nothing. Benches call this so every
  /// reproduced table is machine-readable on demand.
  bool maybe_export_csv(const std::string& name) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

} // namespace wm
