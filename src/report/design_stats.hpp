#pragma once
// Design statistics — the quick health report an engineer looks at
// before and after optimization (also the numbers DESIGN.md quotes for
// the benchmark generator's fidelity to the published circuits).

#include <map>
#include <string>

#include "tree/clock_tree.hpp"
#include "util/units.hpp"

namespace wm {

struct DesignStats {
  std::size_t nodes = 0;
  std::size_t leaves = 0;
  int min_leaf_depth = 0;
  int max_leaf_depth = 0;
  Um total_wire = 0.0;
  Um max_edge_wire = 0.0;
  Ff total_sink_cap = 0.0;
  Ff min_sink_cap = 0.0;
  Ff max_sink_cap = 0.0;
  double mean_zone_occupancy = 0.0;  ///< leaves per non-empty 50um tile
  std::size_t zones = 0;
  /// Leaf cell usage by name (the polarity/sizing census).
  std::map<std::string, std::size_t> leaf_cells;
  std::size_t adjustable_cells = 0;       ///< ADB+ADI anywhere
  std::size_t xor_reconfigurable = 0;     ///< per-mode-polarity leaves
};

DesignStats analyze_tree(const ClockTree& tree);

/// Human-readable multi-line rendering.
std::string to_string(const DesignStats& stats);

} // namespace wm
