#include "report/table.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace wm {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  WM_REQUIRE(!headers_.empty(), "table needs headers");
}

void Table::add_row(std::vector<std::string> cells) {
  WM_REQUIRE(cells.size() == headers_.size(),
             "row width does not match headers");
  rows_.push_back(std::move(cells));
}

std::string Table::to_text() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << cells[c];
      out << std::string(width[c] - cells[c].size(), ' ');
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << ',';
      out << cells[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

bool Table::maybe_export_csv(const std::string& name) const {
  // Read-only env lookup on a reporting path that only runs from the
  // single-threaded CLI/bench mains; nothing in the process calls
  // setenv, so the getenv data race concurrency-mt-unsafe guards
  // against cannot occur.
  const char* dir = std::getenv("WAVEMIN_CSV_DIR");  // NOLINT(concurrency-mt-unsafe)
  if (dir == nullptr || *dir == '\0') return false;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  std::ofstream os(path);
  if (!os) return false;
  os << to_csv();
  return static_cast<bool>(os);
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

} // namespace wm
