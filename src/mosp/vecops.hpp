#pragma once
// Vector kernels for the MOSP label DP (DESIGN.md "MOSP label kernel").
//
// The label DP spends essentially all of its time in two |S|-dimensional
// operations per label: the fused add+max that extends a label along an
// arc and the component-wise dominance compare that prunes the Pareto
// frontier. This header exposes them as a function-pointer bundle
// (VecOps) with two backends:
//
//   scalar — portable reference implementation, always compiled;
//   avx2   — 4-wide double kernels (vecops_avx2.cpp), compiled when the
//            WAVEMIN_SIMD CMake option is ON and selected at runtime
//            only if the CPU actually reports AVX2.
//
// Both backends are bit-identical by construction: every operation is
// an element-wise IEEE-754 add or compare plus a max-reduction, and max
// is associative and commutative over the finite, non-negative values
// the solver feeds it — so tests/mosp_differential_test.cpp asserts
// *equality* between backends, never tolerance.
//
// Padding contract (tests/randomized_property_test.cpp proves it):
// callers round vector widths up to padded_width() and keep every
// padding lane at +0.0. All kernels then treat padding as neutral:
// x + 0 = x, max(m, 0) = m because label costs are non-negative, and
// 0 <= 0 leaves every dominance verdict unchanged.

#include <cstddef>

namespace wm::mosp {

/// Doubles per SIMD register (AVX2: 256 bit / 64 bit). The scalar
/// backend honours the same padding so widths agree across backends.
inline constexpr std::size_t kSimdLanes = 4;

/// Round a weight-vector dimension up to the SIMD width.
inline constexpr std::size_t padded_width(std::size_t dims) {
  return (dims + kSimdLanes - 1) / kSimdLanes * kSimdLanes;
}

/// Backend request. Auto prefers AVX2 when compiled in and supported by
/// the CPU; the WAVEMIN_MOSP_KERNEL environment variable ("scalar" or
/// "simd") overrides Auto for whole-process experiments.
enum class Kernel {
  Auto,
  Scalar,
  Simd,  ///< explicit AVX2 request; falls back to scalar when absent
};

/// One backend: free functions over padded, densely stored vectors.
/// `n` is always a padded_width() multiple — the AVX2 kernels load full
/// registers with no tail loop.
struct VecOps {
  const char* name;  ///< "scalar" or "avx2" (metrics / bench labels)

  /// dst[i] = a[i] + b[i] for i < n; returns max(0, max_i dst[i]).
  /// The 0 floor mirrors the solver's historical max_entry() seed and
  /// is what makes the +0.0 padding lanes neutral.
  double (*add_max)(double* dst, const double* a, const double* b,
                    std::size_t n);

  /// The DP's candidate sweep in one streaming pass, nothing stored:
  /// with s[i] = a[i] + b[i], writes max_ab = max(0, max_i s[i]) (the
  /// candidate's own min-max value) and max_abc =
  /// max(0, max_i (s[i] + c[i])) (its admissible completion bound,
  /// c[i] being the least any completion still adds to dimension i).
  /// Most candidates die on the bound or the beam and never get an
  /// arena slot — add_max materializes only the survivors.
  void (*add_max_bound)(const double* a, const double* b, const double* c,
                        std::size_t n, double* max_ab, double* max_abc);

  /// Fused materialize-and-sweep, the DP's hot loop on the exact path:
  /// writes dst[i] = a[i] + b[i] (a lazy survivor's cost vector) and,
  /// in the same pass while the sums are still in registers, evaluates
  /// the next row's k options against it — with s_o[i] = dst[i] +
  /// w[o][i], wmax[o] = max(0, max_i s_o[i]) and bmax[o] =
  /// max(0, max_i (s_o[i] + c[i])). Element-for-element equivalent to
  /// add_max(dst, a, b, n) followed by k add_max_bound(dst, w[o], c)
  /// calls, but touches memory once. With `stream` true the AVX2
  /// backend stores dst past the cache (requires a 32-byte-aligned
  /// slot): right for arena bursts the next row re-reads as one long
  /// sequential scan, wrong for scratch slots read back immediately.
  void (*extend_sweep)(double* dst, const double* a, const double* b,
                       const double* const* w, std::size_t k,
                       const double* c, std::size_t n, double* wmax,
                       double* bmax, bool stream);

  /// True iff a[i] <= b[i] for every i < n (component-wise dominance).
  bool (*dominates)(const double* a, const double* b, std::size_t n);
};

/// Resolve a backend choice to concrete kernels.
const VecOps& vec_ops(Kernel k = Kernel::Auto);

/// Always the portable reference backend.
const VecOps& scalar_ops();

/// True when the AVX2 backend is compiled in (WAVEMIN_SIMD=ON) and the
/// CPU supports it; when false, vec_ops(Kernel::Simd) == scalar_ops().
bool simd_available();

} // namespace wm::mosp
