#include "mosp/solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "fault/fault.hpp"
#include "mosp/labels.hpp"
#include "util/error.hpp"

namespace wm {

namespace {

double max_entry(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, x);
  return m;
}

std::vector<double> initial_cost(const MospGraph& g) {
  if (!g.dest_weight.empty()) return g.dest_weight;
  return std::vector<double>(static_cast<std::size_t>(g.dims), 0.0);
}

// Pairwise dominance pruning is O(n^2 * dims); past this size we fall
// back to incumbent/beam pruning only.
constexpr std::size_t kDominanceLimit = 1024;

/// Li & Shi-style pre-DP candidate pruning: drop a row option whose
/// weight vector is component-wise dominated by a sibling's — no
/// Pareto-optimal label can ever use it. Equal vectors keep the
/// first occurrence, so exactly one representative survives a tie.
/// Returns surviving vertex indices per row, in original order.
std::vector<std::vector<std::uint32_t>> prune_row_candidates(
    const MospGraph& g, const PackedRows& packed,
    const mosp::VecOps& ops, bool enabled, MospStats& st) {
  std::vector<std::vector<std::uint32_t>> live(g.row_count());
  for (std::size_t r = 0; r < g.row_count(); ++r) {
    const std::size_t k = g.rows[r].size();
    auto& keep = live[r];
    keep.reserve(k);
    for (std::uint32_t v = 0; v < k; ++v) {
      bool dominated = false;
      if (enabled) {
        const double* wv = packed.vertex(r, v);
        for (std::uint32_t u = 0; u < k && !dominated; ++u) {
          if (u == v) continue;
          const double* wu = packed.vertex(r, u);
          if (ops.dominates(wu, wv, packed.width) &&
              (u < v || !ops.dominates(wv, wu, packed.width))) {
            dominated = true;
          }
        }
      }
      if (dominated) {
        ++st.labels_pruned_pre;
      } else {
        keep.push_back(v);
      }
    }
  }
  return live;
}

MospSolution label_dp(const MospGraph& g, bool grid_merge,
                      const MospSolverOptions& opts, MospStats* stats) {
  g.validate();
  MospStats local_stats;
  MospStats& st = stats ? *stats : local_stats;

  const mosp::VecOps& ops = mosp::vec_ops(opts.kernel);
  const std::size_t dims = static_cast<std::size_t>(g.dims);
  const std::size_t width = mosp::padded_width(dims);

  // Pack the weight vectors into a padded SoA block once; the DP below
  // then touches only contiguous memory (mosp/labels.hpp).
  const PackedRows packed = g.pack_padded(width);
  const std::vector<std::vector<std::uint32_t>> live =
      prune_row_candidates(g, packed, ops, opts.prune_rows, st);

  // Greedy incumbent: upper-bounds the optimum, prunes hopeless labels.
  const MospSolution incumbent = solve_greedy(g);

  // Admissible completion bound: minrem row r holds, per dimension, the
  // least any completion through rows r+1.. can still add (each row's
  // minimum over its live options, summed). A candidate entering row r
  // is dead the moment max_d(cost[d] + minrem[d]) cannot beat the
  // incumbent; on the last row minrem is zero and the test degenerates
  // to the plain incumbent check. The bound folds the suffix into one
  // precomputed sum where a real completion adds row by row —
  // ulp-level reassociation, which can prune a label that beats the
  // incumbent by < 1 ulp; the solver's documented tolerance is far
  // coarser. Built once in scalar code so both kernels read
  // bit-identical bound vectors (padding dims stay 0.0).
  std::vector<double> minrem(g.row_count() * width, 0.0);
  for (std::size_t r = g.row_count(); r-- > 1;) {
    const double* below = minrem.data() + r * width;
    double* here = minrem.data() + (r - 1) * width;
    const std::size_t base = packed.offset[r];
    for (std::size_t d = 0; d < dims; ++d) {
      double lo = std::numeric_limits<double>::max();
      for (const std::uint32_t v : live[r]) {
        const double x = packed.weights[(base + v) * width + d];
        lo = x < lo ? x : lo;
      }
      here[d] = below[d] + lo;
    }
  }

  // Grid step for Warburton-style merging: each row can introduce at most
  // `step` rounding error per dimension, so the final worst value is
  // within rows*step = epsilon * UB of the exact optimum.
  const double step =
      grid_merge
          ? std::max(1e-12, opts.epsilon * incumbent.worst /
                                static_cast<double>(g.row_count()))
          : 0.0;

  BudgetTracker* budget = opts.budget;
  // Append-only (parent, option) trail shared by all labels; a label
  // carries one int32 into it instead of a per-label choice vector.
  std::vector<std::pair<std::int32_t, std::int32_t>> trail;
  mosp::LabelArena cur(width, budget);
  mosp::LabelArena nxt(width, budget);
  // Indices of the live frontier inside `cur` — survivor selection
  // shrinks this list; the arena itself is never compacted or copied.
  std::vector<std::uint32_t> front;
  {
    const std::vector<double> init = initial_cost(g);
    double* dst = cur.scratch();
    std::fill(dst, dst + width, 0.0);
    std::copy(init.begin(), init.end(), dst);
    cur.commit(max_entry(init), /*trail_id=*/-1);
    front.assign(1, 0);
  }

  // A swept candidate is 16 bytes; its |S|-wide cost vector is
  // materialized only when something actually needs it. On the exact
  // path past the dominance limit a whole row's survivors stay *lazy*
  // — (parent, vertex, worst) records over `cur` — and the next row's
  // fused extend_sweep writes each survivor's vector exactly once
  // while already sweeping its children, so the frontier crosses
  // memory once per row instead of twice. Beam-evicted and
  // bound-pruned candidates never touch the arena at all, and the DP
  // is memory-bound (DESIGN.md "MOSP label kernel").
  struct Cand {
    std::uint32_t parent;  ///< slot in `cur` (store-free last row:
                           ///< index into `srec` instead)
    std::uint32_t vertex;  ///< index into the row's vertex list
    double worst;          ///< min-max objective if committed
  };
  std::vector<Cand> cands;  // this row's bound-surviving candidates
  std::vector<Cand> srec;   // previous row's lazy survivor records
  bool lazy = false;        // frontier is `srec` over `cur`, not `front`
  std::vector<std::uint32_t> idx;
  std::vector<const double*> wopt;     // live weight vectors, this row
  std::vector<double> wmax_o, bmax_o;  // per-option sweep results
  std::vector<double> tmp(width);      // rebuilt parent, store-free row

  for (std::size_t r = 0; r < g.row_count(); ++r) {
    fault::inject("mosp.dp_row");
    // Cooperative budget poll (deadline / global label pool /
    // cancellation): bail to the greedy incumbent — feasible, just not
    // Pareto-searched — instead of running past the caller's budget.
    if (budget != nullptr && budget->should_stop()) {
      st.budget_stopped = true;
      return incumbent;
    }
    const auto& row = g.rows[r];
    const double* rem = minrem.data() + r * width;
    const std::size_t row_created_base = st.labels_created;
    bool budget_tripped = false;
    cands.clear();

    wopt.clear();
    for (const std::uint32_t vi : live[r]) {
      wopt.push_back(packed.vertex(r, vi));
    }
    wmax_o.resize(wopt.size());
    bmax_o.resize(wopt.size());

    // The last exact row never needs the previous generation written
    // out: each lazy parent is rebuilt into a cache-resident scratch
    // slot, swept, and forgotten — only the winner's two-row chain is
    // materialized (unless the caller wants the whole frontier).
    const bool store_free =
        lazy && r + 1 == g.row_count() && !opts.capture_frontier;

    // Bound-test one swept option and record the survivor. Same
    // candidate order, counters and 1024-label budget cadence on every
    // sweep variant below.
    const auto emit = [&](std::uint32_t parent, std::size_t oi,
                          double lworst) {
      const double bmax = bmax_o[oi];
      if ((lworst > bmax ? lworst : bmax) >= incumbent.worst) {
        ++st.labels_pruned_incumbent;
        return;  // no completion can beat the greedy incumbent
      }
      const double wmax = wmax_o[oi];
      cands.push_back(
          Cand{parent, live[r][oi], lworst > wmax ? lworst : wmax});
      ++st.labels_created;
      // A single row can blow up combinatorially, so re-poll inside
      // the sweep every 1024 created labels.
      if (budget != nullptr && (st.labels_created & 1023u) == 0 &&
          budget->should_stop()) {
        budget_tripped = true;
      }
    };

    if (!lazy) {
      for (std::size_t jj = 0; jj < front.size() && !budget_tripped;
           ++jj) {
        const std::uint32_t j = front[jj];
        const double* lc = cur.cost(j);
        const double lworst = cur.worst(j);
        for (std::size_t oi = 0; oi < wopt.size() && !budget_tripped;
             ++oi) {
          // One streaming pass yields both the candidate's own worst
          // and its completion bound; nothing is written.
          ops.add_max_bound(lc, wopt[oi], rem, width, &wmax_o[oi],
                            &bmax_o[oi]);
          emit(j, oi, lworst);
        }
      }
    } else {
      // Fused pass: materialize each lazy survivor of row r-1 into
      // `nxt` and sweep its row-r children while its sums are still in
      // registers (or, store-free, in a scratch slot in cache).
      const auto& prow = g.rows[r - 1];
      if (!store_free) {
        nxt.clear();
        nxt.reserve(srec.size());
      }
      for (std::size_t sj = 0; sj < srec.size() && !budget_tripped;
           ++sj) {
        const Cand& rec = srec[sj];
        const double* pc = cur.cost(rec.parent);
        const double* pw = packed.vertex(r - 1, rec.vertex);
        std::uint32_t slot;
        if (store_free) {
          ops.extend_sweep(tmp.data(), pc, pw, wopt.data(), wopt.size(),
                           rem, width, wmax_o.data(), bmax_o.data(),
                           /*stream=*/false);
          slot = static_cast<std::uint32_t>(sj);
        } else {
          double* dst = nxt.scratch();
          ops.extend_sweep(dst, pc, pw, wopt.data(), wopt.size(), rem,
                           width, wmax_o.data(), bmax_o.data(),
                           /*stream=*/true);
          trail.emplace_back(cur.trail(rec.parent),
                             prow[rec.vertex].option);
          nxt.commit(rec.worst,
                     static_cast<std::int32_t>(trail.size() - 1));
          slot = static_cast<std::uint32_t>(nxt.count() - 1);
        }
        for (std::size_t oi = 0; oi < wopt.size() && !budget_tripped;
             ++oi) {
          emit(slot, oi, rec.worst);
        }
      }
      if (!store_free) {
        // Row r-1 is now materialized in `nxt`; make it the parent
        // arena so candidate slots resolve uniformly below.
        std::swap(cur, nxt);
      }
    }

    if (budget != nullptr) {
      if (!budget->consume_labels(st.labels_created - row_created_base)) {
        budget_tripped = true;
      }
      if (budget_tripped) {
        st.budget_stopped = true;
        return incumbent;
      }
    }
    if (cands.empty()) {
      return incumbent;
    }

    // Turn a surviving candidate into a real label in `nxt`. The
    // add_max recomputes exactly the element-wise sums the sweep saw,
    // so the stored vector is bit-identical across backends.
    const auto materialize = [&](const Cand& c) {
      double* dst = nxt.scratch();
      ops.add_max(dst, cur.cost(c.parent), packed.vertex(r, c.vertex),
                  width);
      trail.emplace_back(cur.trail(c.parent), row[c.vertex].option);
      nxt.commit(c.worst, static_cast<std::int32_t>(trail.size() - 1));
    };

    // Rebuild a store-free candidate in two hops: its lazy parent into
    // `tmp`, then the candidate itself into `nxt`, pushing both trail
    // links the chain skipped.
    const auto materialize2 = [&](const Cand& c) {
      const Cand& rec = srec[c.parent];
      ops.add_max(tmp.data(), cur.cost(rec.parent),
                  packed.vertex(r - 1, rec.vertex), width);
      double* dst = nxt.scratch();
      ops.add_max(dst, tmp.data(), packed.vertex(r, c.vertex), width);
      trail.emplace_back(cur.trail(rec.parent),
                         g.rows[r - 1][rec.vertex].option);
      trail.emplace_back(static_cast<std::int32_t>(trail.size() - 1),
                         row[c.vertex].option);
      nxt.commit(c.worst, static_cast<std::int32_t>(trail.size() - 1));
    };

    // Grid/dominance/beam selection over fully materialized candidates
    // in `nxt`; on success `cur`/`front` become the new frontier.
    const auto select_materialized = [&]() -> bool {
      idx.resize(nxt.count());
      std::iota(idx.begin(), idx.end(), 0u);

      if (grid_merge) {
        // Keep one representative per rounded cost vector.
        std::unordered_map<std::size_t, std::size_t> seen;
        std::vector<std::uint32_t> merged;
        merged.reserve(idx.size());
        for (const std::uint32_t li : idx) {
          const double* c = nxt.cost(li);
          std::size_t h = 1469598103934665603ULL;
          for (std::size_t d = 0; d < dims; ++d) {
            const auto q = static_cast<long long>(std::floor(c[d] / step));
            h ^= static_cast<std::size_t>(q) + 0x9e3779b97f4a7c15ULL +
                 (h << 6) + (h >> 2);
          }
          auto [it, inserted] = seen.emplace(h, merged.size());
          if (inserted) {
            merged.push_back(li);
          } else {
            if (nxt.worst(li) < nxt.worst(merged[it->second])) {
              merged[it->second] = li;
            }
            ++st.labels_merged_grid;
          }
        }
        idx = std::move(merged);
      }

      if (idx.size() <= kDominanceLimit) {
        // Exact pairwise dominance pruning (cheapest labels first so a
        // dominated label is found quickly). stable_sort keeps ties in
        // creation order — both backends see the same permutation.
        std::stable_sort(idx.begin(), idx.end(),
                         [&](std::uint32_t a, std::uint32_t b) {
                           return nxt.worst(a) < nxt.worst(b);
                         });
        std::vector<std::uint32_t> kept;
        kept.reserve(idx.size());
        for (const std::uint32_t c : idx) {
          bool dominated = false;
          for (const std::uint32_t k : kept) {
            if (ops.dominates(nxt.cost(k), nxt.cost(c), width)) {
              dominated = true;
              break;
            }
          }
          if (dominated) {
            ++st.labels_pruned_dominated;
          } else {
            kept.push_back(c);
          }
        }
        idx = std::move(kept);
      }

      if (idx.size() > opts.max_labels) {
        // Safety valve: beam on the min-max objective.
        std::nth_element(
            idx.begin(),
            idx.begin() + static_cast<std::ptrdiff_t>(opts.max_labels),
            idx.end(), [&](std::uint32_t a, std::uint32_t b) {
              return nxt.worst(a) < nxt.worst(b);
            });
        idx.resize(opts.max_labels);
        st.beam_capped = true;
      }

      if (idx.empty()) {
        return false;
      }
      st.frontier_peak = std::max(st.frontier_peak, idx.size());
      std::swap(cur, nxt);
      front = idx;
      lazy = false;
      return true;
    };

    // Beam the 16-byte candidate records in place, restoring creation
    // order afterwards: candidates were swept parent-first, so
    // ascending indices keep parent reads sequential and tie-breaks
    // identical to a materialized frontier scan.
    const auto beam_records = [&]() {
      idx.resize(cands.size());
      std::iota(idx.begin(), idx.end(), 0u);
      if (idx.size() > opts.max_labels) {
        std::nth_element(
            idx.begin(),
            idx.begin() + static_cast<std::ptrdiff_t>(opts.max_labels),
            idx.end(), [&](std::uint32_t a, std::uint32_t b) {
              return cands[a].worst < cands[b].worst;
            });
        idx.resize(opts.max_labels);
        std::sort(idx.begin(), idx.end());
        st.beam_capped = true;
      }
      st.frontier_peak = std::max(st.frontier_peak, idx.size());
    };

    if (store_free) {
      if (cands.size() <= kDominanceLimit) {
        // The final row thinned below the dominance limit after all:
        // rebuild every candidate's vector and run the exact pipeline.
        nxt.clear();
        nxt.reserve(cands.size());
        for (const Cand& c : cands) materialize2(c);
        if (!select_materialized()) {
          return incumbent;
        }
      } else {
        beam_records();
        // Only the winner's cost vector is ever read again: first
        // minimal worst in selection order — the same label the
        // epilogue scan would pick from a materialized frontier.
        std::uint32_t best_c = idx[0];
        for (const std::uint32_t ci : idx) {
          if (cands[ci].worst < cands[best_c].worst) best_c = ci;
        }
        nxt.clear();
        materialize2(cands[best_c]);
        std::swap(cur, nxt);
        front.assign(1, 0);
        lazy = false;
      }
    } else if (grid_merge || cands.size() <= kDominanceLimit) {
      // Grid merging and pairwise dominance both inspect full cost
      // vectors, so this path materializes every candidate up front.
      nxt.clear();
      nxt.reserve(cands.size());
      for (const Cand& c : cands) materialize(c);
      if (!select_materialized()) {
        return incumbent;
      }
    } else {
      // Exact path past the dominance limit: select on the candidate
      // records alone and keep the survivors lazy — the next row's
      // fused pass (or the epilogue) writes their vectors.
      beam_records();
      srec.clear();
      srec.reserve(idx.size());
      for (const std::uint32_t ci : idx) srec.push_back(cands[ci]);
      lazy = true;
    }
    WM_ASSERT(trail.size() < static_cast<std::size_t>(
                                 std::numeric_limits<std::int32_t>::max()),
              "label trail overflow");
    st.arena_peak_bytes =
        std::max(st.arena_peak_bytes, cur.bytes() + nxt.bytes());
  }

  if (lazy) {
    // The DP ended while the frontier was still lazy (the last row was
    // deferred off a materialized frontier): write only the labels the
    // epilogue reads — all of them when capturing, else the winner.
    const std::size_t pr = g.row_count() - 1;
    const auto rebuild = [&](const Cand& rec) {
      double* dst = nxt.scratch();
      ops.add_max(dst, cur.cost(rec.parent),
                  packed.vertex(pr, rec.vertex), width);
      trail.emplace_back(cur.trail(rec.parent),
                         g.rows[pr][rec.vertex].option);
      nxt.commit(rec.worst, static_cast<std::int32_t>(trail.size() - 1));
    };
    nxt.clear();
    if (opts.capture_frontier) {
      nxt.reserve(srec.size());
      for (const Cand& rec : srec) rebuild(rec);
      front.resize(nxt.count());
      std::iota(front.begin(), front.end(), 0u);
    } else {
      std::size_t best_r = 0;
      for (std::size_t j = 1; j < srec.size(); ++j) {
        if (srec[j].worst < srec[best_r].worst) best_r = j;
      }
      rebuild(srec[best_r]);
      front.assign(1, 0);
    }
    std::swap(cur, nxt);
  }

  if (opts.capture_frontier) {
    st.final_frontier.reserve(front.size());
    for (const std::uint32_t j : front) {
      st.final_frontier.emplace_back(cur.cost(j), cur.cost(j) + dims);
    }
  }

  std::uint32_t best = front[0];
  for (const std::uint32_t j : front) {
    if (cur.worst(j) < cur.worst(best)) best = j;
  }
  MospSolution sol;
  sol.feasible = true;
  sol.total.assign(cur.cost(best), cur.cost(best) + dims);
  sol.worst = cur.worst(best);
  for (const double v : sol.total) sol.sum += v;
  sol.choice.resize(g.row_count());
  std::size_t row_out = g.row_count();
  for (std::int32_t t = cur.trail(best); t >= 0;) {
    const auto& [parent, option] = trail[static_cast<std::size_t>(t)];
    sol.choice[--row_out] = option;
    t = parent;
  }
  WM_ASSERT(row_out == 0, "trail walk did not cover every row");
  return sol.better_than(incumbent) ? sol : incumbent;
}

} // namespace

MospSolution solve_exact(const MospGraph& g, MospSolverOptions opts,
                         MospStats* stats) {
  return label_dp(g, /*grid_merge=*/false, opts, stats);
}

MospSolution solve_warburton(const MospGraph& g, MospSolverOptions opts,
                             MospStats* stats) {
  return label_dp(g, /*grid_merge=*/true, opts, stats);
}

MospSolution solve_greedy(const MospGraph& g) {
  g.validate();
  const std::size_t n_rows = g.row_count();
  std::vector<double> sum = initial_cost(g);
  std::vector<int> choice(n_rows, -1);
  std::vector<bool> done(n_rows, false);

  for (std::size_t iter = 0; iter < n_rows; ++iter) {
    double best_m = std::numeric_limits<double>::max();
    std::size_t best_row = 0;
    const MospVertex* best_v = nullptr;
    for (std::size_t r = 0; r < n_rows; ++r) {
      if (done[r]) continue;
      for (const MospVertex& v : g.rows[r]) {
        double m = 0.0;
        for (std::size_t d = 0; d < sum.size(); ++d) {
          m = std::max(m, sum[d] + v.weight[d]);
        }
        if (m < best_m) {
          best_m = m;
          best_row = r;
          best_v = &v;
        }
      }
    }
    WM_ASSERT(best_v != nullptr, "greedy found no candidate");
    for (std::size_t d = 0; d < sum.size(); ++d) {
      sum[d] += best_v->weight[d];
    }
    choice[best_row] = best_v->option;
    done[best_row] = true;
  }

  MospSolution s;
  s.feasible = true;
  s.choice = std::move(choice);
  s.total = std::move(sum);
  s.worst = max_entry(s.total);
  for (double v : s.total) s.sum += v;
  return s;
}

MospSolution solve_exhaustive(const MospGraph& g) {
  g.validate();
  // Guard against accidental huge enumerations.
  double paths = 1.0;
  for (const auto& row : g.rows) {
    paths *= static_cast<double>(row.size());
  }
  WM_REQUIRE(paths <= 4.0e6, "exhaustive oracle limited to 4M paths");

  MospSolution best;
  best.worst = std::numeric_limits<double>::max();
  std::vector<double> cost = initial_cost(g);

  // Iterative odometer over all option combinations.
  std::vector<std::size_t> idx(g.row_count(), 0);
  while (true) {
    std::vector<double> total = cost;
    for (std::size_t r = 0; r < g.row_count(); ++r) {
      const auto& w = g.rows[r][idx[r]].weight;
      for (std::size_t d = 0; d < total.size(); ++d) total[d] += w[d];
    }
    const double worst = max_entry(total);
    double sum = 0.0;
    for (double v : total) sum += v;
    MospSolution cand;
    cand.worst = worst;
    cand.sum = sum;
    if (!best.feasible || cand.better_than(best)) {
      best.feasible = true;
      best.worst = worst;
      best.sum = sum;
      best.total = std::move(total);
      best.choice.resize(g.row_count());
      for (std::size_t r = 0; r < g.row_count(); ++r) {
        best.choice[r] = g.rows[r][idx[r]].option;
      }
    }
    // Advance the odometer.
    std::size_t r = 0;
    while (r < g.row_count()) {
      if (++idx[r] < g.rows[r].size()) break;
      idx[r] = 0;
      ++r;
    }
    if (r == g.row_count()) break;
  }
  return best;
}

} // namespace wm
