#include "mosp/solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "fault/fault.hpp"
#include "util/error.hpp"

namespace wm {

namespace {

double max_entry(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, x);
  return m;
}

struct Label {
  std::vector<double> cost;
  std::vector<int> choice;
  double worst = 0.0;
  double sum = 0.0;

  bool better_than(const Label& other) const {
    return worst < other.worst;
  }
};

bool dominates(const std::vector<double>& a, const std::vector<double>& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

std::vector<double> initial_cost(const MospGraph& g) {
  if (!g.dest_weight.empty()) return g.dest_weight;
  return std::vector<double>(static_cast<std::size_t>(g.dims), 0.0);
}

MospSolution to_solution(const Label& l) {
  MospSolution s;
  s.feasible = true;
  s.choice = l.choice;
  s.total = l.cost;
  s.worst = l.worst;
  s.sum = l.sum;
  return s;
}

// Pairwise dominance pruning is O(n^2 * dims); past this size we fall
// back to incumbent/beam pruning only.
constexpr std::size_t kDominanceLimit = 1024;

MospSolution label_dp(const MospGraph& g, bool grid_merge,
                      const MospSolverOptions& opts, MospStats* stats) {
  g.validate();
  MospStats local_stats;
  MospStats& st = stats ? *stats : local_stats;

  // Greedy incumbent: upper-bounds the optimum, prunes hopeless labels.
  const MospSolution incumbent = solve_greedy(g);

  // Grid step for Warburton-style merging: each row can introduce at most
  // `step` rounding error per dimension, so the final worst value is
  // within rows*step = epsilon * UB of the exact optimum.
  const double step =
      grid_merge
          ? std::max(1e-12, opts.epsilon * incumbent.worst /
                                static_cast<double>(g.row_count()))
          : 0.0;

  std::vector<Label> labels;
  {
    Label init;
    init.cost = initial_cost(g);
    init.worst = max_entry(init.cost);
    for (double c : init.cost) init.sum += c;
    labels.push_back(std::move(init));
  }

  BudgetTracker* budget = opts.budget;
  for (const auto& row : g.rows) {
    fault::inject("mosp.dp_row");
    // Cooperative budget poll (deadline / global label pool /
    // cancellation): bail to the greedy incumbent — feasible, just not
    // Pareto-searched — instead of running past the caller's budget.
    if (budget != nullptr && budget->should_stop()) {
      st.budget_stopped = true;
      return incumbent;
    }
    const std::size_t row_created_base = st.labels_created;
    bool budget_tripped = false;
    std::vector<Label> next;
    next.reserve(labels.size() * row.size());
    for (const Label& l : labels) {
      for (const MospVertex& v : row) {
        Label nl;
        nl.cost.resize(l.cost.size());
        double worst = l.worst;
        double sum = 0.0;
        for (std::size_t d = 0; d < l.cost.size(); ++d) {
          nl.cost[d] = l.cost[d] + v.weight[d];
          worst = std::max(worst, nl.cost[d]);
          sum += nl.cost[d];
        }
        if (worst >= incumbent.worst) {
          ++st.labels_pruned_incumbent;
          continue;  // cannot beat the greedy incumbent
        }
        nl.worst = worst;
        nl.sum = sum;
        nl.choice = l.choice;
        nl.choice.push_back(v.option);
        ++st.labels_created;
        next.push_back(std::move(nl));
        // A single row can blow up combinatorially, so re-poll inside
        // the expansion every 1024 created labels.
        if (budget != nullptr && (st.labels_created & 1023u) == 0 &&
            budget->should_stop()) {
          budget_tripped = true;
          break;
        }
      }
      if (budget_tripped) break;
    }
    if (budget != nullptr) {
      if (!budget->consume_labels(st.labels_created - row_created_base)) {
        budget_tripped = true;
      }
      if (budget_tripped) {
        st.budget_stopped = true;
        return incumbent;
      }
    }

    if (grid_merge && !next.empty()) {
      // Keep one representative per rounded cost vector.
      std::unordered_map<std::size_t, std::size_t> seen;
      std::vector<Label> merged;
      merged.reserve(next.size());
      for (auto& l : next) {
        std::size_t h = 1469598103934665603ULL;
        for (double c : l.cost) {
          const auto q = static_cast<long long>(std::floor(c / step));
          h ^= static_cast<std::size_t>(q) + 0x9e3779b97f4a7c15ULL +
               (h << 6) + (h >> 2);
        }
        auto [it, inserted] = seen.emplace(h, merged.size());
        if (inserted) {
          merged.push_back(std::move(l));
        } else if (l.better_than(merged[it->second])) {
          merged[it->second] = std::move(l);
          ++st.labels_merged_grid;
        } else {
          ++st.labels_merged_grid;
        }
      }
      next = std::move(merged);
    }

    if (next.size() <= kDominanceLimit) {
      // Exact pairwise dominance pruning (cheapest labels first so a
      // dominated label is found quickly).
      std::sort(next.begin(), next.end(),
                [](const Label& a, const Label& b) {
                  return a.better_than(b);
                });
      std::vector<Label> kept;
      kept.reserve(next.size());
      for (auto& cand : next) {
        bool dominated = false;
        for (const Label& k : kept) {
          if (dominates(k.cost, cand.cost)) {
            dominated = true;
            break;
          }
        }
        if (dominated) {
          ++st.labels_pruned_dominated;
        } else {
          kept.push_back(std::move(cand));
        }
      }
      next = std::move(kept);
    }

    if (next.size() > opts.max_labels) {
      // Safety valve: beam on the min-max objective.
      std::nth_element(next.begin(),
                       next.begin() + static_cast<std::ptrdiff_t>(
                                          opts.max_labels),
                       next.end(), [](const Label& a, const Label& b) {
                         return a.better_than(b);
                       });
      next.resize(opts.max_labels);
      st.beam_capped = true;
    }

    if (next.empty()) {
      // Everything pruned against the incumbent: greedy was optimal
      // within this search.
      return incumbent;
    }
    st.frontier_peak = std::max(st.frontier_peak, next.size());
    labels = std::move(next);
  }

  const auto best = std::min_element(
      labels.begin(), labels.end(),
      [](const Label& a, const Label& b) { return a.better_than(b); });
  if (best == labels.end()) return incumbent;
  MospSolution sol = to_solution(*best);
  return sol.better_than(incumbent) ? sol : incumbent;
}

} // namespace

MospSolution solve_exact(const MospGraph& g, MospSolverOptions opts,
                         MospStats* stats) {
  return label_dp(g, /*grid_merge=*/false, opts, stats);
}

MospSolution solve_warburton(const MospGraph& g, MospSolverOptions opts,
                             MospStats* stats) {
  return label_dp(g, /*grid_merge=*/true, opts, stats);
}

MospSolution solve_greedy(const MospGraph& g) {
  g.validate();
  const std::size_t n_rows = g.row_count();
  std::vector<double> sum = initial_cost(g);
  std::vector<int> choice(n_rows, -1);
  std::vector<bool> done(n_rows, false);

  for (std::size_t iter = 0; iter < n_rows; ++iter) {
    double best_m = std::numeric_limits<double>::max();
    std::size_t best_row = 0;
    const MospVertex* best_v = nullptr;
    for (std::size_t r = 0; r < n_rows; ++r) {
      if (done[r]) continue;
      for (const MospVertex& v : g.rows[r]) {
        double m = 0.0;
        for (std::size_t d = 0; d < sum.size(); ++d) {
          m = std::max(m, sum[d] + v.weight[d]);
        }
        if (m < best_m) {
          best_m = m;
          best_row = r;
          best_v = &v;
        }
      }
    }
    WM_ASSERT(best_v != nullptr, "greedy found no candidate");
    for (std::size_t d = 0; d < sum.size(); ++d) {
      sum[d] += best_v->weight[d];
    }
    choice[best_row] = best_v->option;
    done[best_row] = true;
  }

  MospSolution s;
  s.feasible = true;
  s.choice = std::move(choice);
  s.total = std::move(sum);
  s.worst = max_entry(s.total);
  for (double v : s.total) s.sum += v;
  return s;
}

MospSolution solve_exhaustive(const MospGraph& g) {
  g.validate();
  // Guard against accidental huge enumerations.
  double paths = 1.0;
  for (const auto& row : g.rows) {
    paths *= static_cast<double>(row.size());
  }
  WM_REQUIRE(paths <= 4.0e6, "exhaustive oracle limited to 4M paths");

  MospSolution best;
  best.worst = std::numeric_limits<double>::max();
  std::vector<double> cost = initial_cost(g);

  // Iterative odometer over all option combinations.
  std::vector<std::size_t> idx(g.row_count(), 0);
  while (true) {
    std::vector<double> total = cost;
    for (std::size_t r = 0; r < g.row_count(); ++r) {
      const auto& w = g.rows[r][idx[r]].weight;
      for (std::size_t d = 0; d < total.size(); ++d) total[d] += w[d];
    }
    const double worst = max_entry(total);
    double sum = 0.0;
    for (double v : total) sum += v;
    MospSolution cand;
    cand.worst = worst;
    cand.sum = sum;
    if (!best.feasible || cand.better_than(best)) {
      best.feasible = true;
      best.worst = worst;
      best.sum = sum;
      best.total = std::move(total);
      best.choice.resize(g.row_count());
      for (std::size_t r = 0; r < g.row_count(); ++r) {
        best.choice[r] = g.rows[r][idx[r]].option;
      }
    }
    // Advance the odometer.
    std::size_t r = 0;
    while (r < g.row_count()) {
      if (++idx[r] < g.rows[r].size()) break;
      idx[r] = 0;
      ++r;
    }
    if (r == g.row_count()) break;
  }
  return best;
}

} // namespace wm
