#include "mosp/graph.hpp"

#include "util/error.hpp"

namespace wm {

std::size_t MospGraph::vertex_count() const {
  std::size_t n = 0;
  for (const auto& row : rows) n += row.size();
  return n;
}

void MospGraph::validate() const {
  WM_REQUIRE(dims > 0, "MOSP graph needs a positive weight dimension");
  WM_REQUIRE(!rows.empty(), "MOSP graph needs at least one row");
  for (const auto& row : rows) {
    WM_REQUIRE(!row.empty(),
               "every row needs at least one feasible option (the "
               "feasible-interval preprocessing guarantees this)");
    for (const auto& v : row) {
      WM_REQUIRE(v.weight.size() == static_cast<std::size_t>(dims),
                 "vertex weight dimension mismatch");
    }
  }
  WM_REQUIRE(dest_weight.empty() ||
                 dest_weight.size() == static_cast<std::size_t>(dims),
             "dest weight dimension mismatch");
}

} // namespace wm
