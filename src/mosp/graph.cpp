#include "mosp/graph.hpp"

#include "util/error.hpp"

namespace wm {

std::size_t MospGraph::vertex_count() const {
  std::size_t n = 0;
  for (const auto& row : rows) n += row.size();
  return n;
}

PackedRows MospGraph::pack_padded(std::size_t width) const {
  WM_REQUIRE(width >= static_cast<std::size_t>(dims),
             "packed width must cover the weight dimension");
  PackedRows p;
  p.width = width;
  p.offset.reserve(rows.size() + 1);
  std::size_t total = 0;
  for (const auto& row : rows) {
    p.offset.push_back(total);
    total += row.size();
  }
  p.offset.push_back(total);
  p.weights.assign(total * width, 0.0);  // padding lanes stay +0.0
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t v = 0; v < rows[r].size(); ++v) {
      const auto& w = rows[r][v].weight;
      double* dst = p.weights.data() + (p.offset[r] + v) * width;
      for (std::size_t d = 0; d < w.size(); ++d) dst[d] = w[d];
    }
  }
  return p;
}

void MospGraph::validate() const {
  WM_REQUIRE(dims > 0, "MOSP graph needs a positive weight dimension");
  WM_REQUIRE(!rows.empty(), "MOSP graph needs at least one row");
  for (const auto& row : rows) {
    WM_REQUIRE(!row.empty(),
               "every row needs at least one feasible option (the "
               "feasible-interval preprocessing guarantees this)");
    for (const auto& v : row) {
      WM_REQUIRE(v.weight.size() == static_cast<std::size_t>(dims),
                 "vertex weight dimension mismatch");
    }
  }
  WM_REQUIRE(dest_weight.empty() ||
                 dest_weight.size() == static_cast<std::size_t>(dims),
             "dest weight dimension mismatch");
}

} // namespace wm
