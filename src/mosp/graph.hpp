#pragma once
// Multi-objective shortest path (MOSP) instances (paper Sec. V-B, Fig. 9).
//
// The WaveMin-to-MOSP mapping produces a layered DAG: one row per sink,
// one vertex per feasible (sink, cell-type) pair, full bipartite arcs
// between consecutive rows, a src before the first row and a dest after
// the last. Every arc entering a vertex carries that vertex's noise
// vector, and the arcs into dest carry the non-leaf noise vector
// (Observation 1). Consequently a path cost is
//
//     dest_weight + sum over rows of weight(chosen vertex in row)
//
// which is what this representation stores directly: the layered
// structure is kept (rows/options), the redundant arc list is not.

#include <string>
#include <vector>

#include "util/units.hpp"

namespace wm {

struct MospVertex {
  int option = 0;  ///< index into the row's candidate list (caller-defined)
  std::vector<double> weight;  ///< r-dimensional noise vector
  std::string label;           ///< e.g. "e2:INV_X8" (diagnostics)
};

struct MospGraph {
  std::vector<std::vector<MospVertex>> rows;
  std::vector<double> dest_weight;  ///< non-leaf contribution (may be empty)
  int dims = 0;

  std::size_t row_count() const { return rows.size(); }

  /// Total vertex count excluding src/dest.
  std::size_t vertex_count() const;

  /// Validate row/vector shapes; throws wm::Error on inconsistency.
  void validate() const;
};

/// A resolved path: one option per row plus its accumulated cost vector.
///
/// Solutions are ordered by `worst` alone (the paper's min-max
/// objective). A lexicographic (worst, sum) tie-break was implemented
/// and evaluated — it makes the *model* pick deterministic in zones
/// whose max is saturated by the fixed non-leaf term — but it
/// systematically worsened the *validated* results (Table V average
/// flipped from +0.9% to -1.0%), because among model-equal choices the
/// smallest-total-charge pick is not the best-validated pick under the
/// Sec. VII-C model gap. Negative result recorded in EXPERIMENTS.md;
/// `sum` is kept as a reporting field only.
struct MospSolution {
  bool feasible = false;
  std::vector<int> choice;     ///< option per row (index into rows[i])
  std::vector<double> total;   ///< accumulated cost vector (incl. dest)
  double worst = 0.0;          ///< max entry of total (min-max objective)
  double sum = 0.0;            ///< sum of entries (reporting only)

  bool better_than(const MospSolution& other) const {
    return worst < other.worst;
  }
};

} // namespace wm
