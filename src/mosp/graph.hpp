#pragma once
// Multi-objective shortest path (MOSP) instances (paper Sec. V-B, Fig. 9).
//
// The WaveMin-to-MOSP mapping produces a layered DAG: one row per sink,
// one vertex per feasible (sink, cell-type) pair, full bipartite arcs
// between consecutive rows, a src before the first row and a dest after
// the last. Every arc entering a vertex carries that vertex's noise
// vector, and the arcs into dest carry the non-leaf noise vector
// (Observation 1). Consequently a path cost is
//
//     dest_weight + sum over rows of weight(chosen vertex in row)
//
// which is what this representation stores directly: the layered
// structure is kept (rows/options), the redundant arc list is not.

#include <string>
#include <vector>

#include "util/units.hpp"

namespace wm {

struct MospVertex {
  int option = 0;  ///< index into the row's candidate list (caller-defined)
  /// r-dimensional noise vector. Entries are finite and non-negative
  /// (charge/current samples); the SIMD label kernel's 0-seeded max and
  /// zero padding lanes rely on this (mosp/vecops.hpp).
  std::vector<double> weight;
  std::string label;           ///< e.g. "e2:INV_X8" (diagnostics)
};

/// The graph's weight vectors re-laid-out for the DP hot loop: one
/// contiguous block, vertex-major, each vector padded to `width` with
/// +0.0 lanes so the vecops kernels can run full SIMD registers with no
/// tail handling.
struct PackedRows {
  std::size_t width = 0;        ///< padded vector width
  std::vector<double> weights;  ///< vertex v of row r at (offset[r]+v)*width
  std::vector<std::size_t> offset;  ///< per-row first vertex; rows+1 entries

  const double* vertex(std::size_t row, std::size_t v) const {
    return weights.data() + (offset[row] + v) * width;
  }
};

struct MospGraph {
  std::vector<std::vector<MospVertex>> rows;
  std::vector<double> dest_weight;  ///< non-leaf contribution (may be empty)
  int dims = 0;

  std::size_t row_count() const { return rows.size(); }

  /// Total vertex count excluding src/dest.
  std::size_t vertex_count() const;

  /// Pack every row's weight vectors into a padded SoA block
  /// (`width` >= dims, a mosp::padded_width multiple).
  PackedRows pack_padded(std::size_t width) const;

  /// Validate row/vector shapes; throws wm::Error on inconsistency.
  void validate() const;
};

/// A resolved path: one option per row plus its accumulated cost vector.
///
/// Solutions are ordered by `worst` alone (the paper's min-max
/// objective). A lexicographic (worst, sum) tie-break was implemented
/// and evaluated — it makes the *model* pick deterministic in zones
/// whose max is saturated by the fixed non-leaf term — but it
/// systematically worsened the *validated* results (Table V average
/// flipped from +0.9% to -1.0%), because among model-equal choices the
/// smallest-total-charge pick is not the best-validated pick under the
/// Sec. VII-C model gap. Negative result recorded in EXPERIMENTS.md;
/// `sum` is kept as a reporting field only.
struct MospSolution {
  bool feasible = false;
  std::vector<int> choice;     ///< option per row (index into rows[i])
  std::vector<double> total;   ///< accumulated cost vector (incl. dest)
  double worst = 0.0;          ///< max entry of total (min-max objective)
  double sum = 0.0;            ///< sum of entries (reporting only)

  bool better_than(const MospSolution& other) const {
    return worst < other.worst;
  }
};

} // namespace wm
