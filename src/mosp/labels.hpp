#pragma once
// Structure-of-arrays label storage for the MOSP DP (DESIGN.md "MOSP
// label kernel").
//
// The label-correcting DP used to hold each label as a heap-allocated
// std::vector<double> cost plus a std::vector<int> choice copied on
// every extension — at |S|=158 that is one 1.3 KB allocation and one
// growing copy per created label, and the solver churned the allocator
// harder than it did arithmetic. A LabelArena instead stores one DP
// frontier as parallel columns:
//
//   cost   — count × width doubles, contiguous, width padded to the
//            SIMD lane multiple (vecops.hpp padding contract: padding
//            lanes are +0.0 and stay +0.0 under add);
//   worst  — the label's running min-max objective value;
//   trail  — index into the solver's append-only (parent, option)
//            trail, replacing the per-label choice vector entirely
//            (paths are reconstructed once, for the winner).
//
// Thread-safety: an arena belongs to exactly one zone solve on one
// thread — it is deliberately unsynchronized (docs/static_analysis.md).
// The only cross-thread traffic is the optional BudgetTracker, which
// keeps a relaxed high-watermark of arena bytes so the run layer can
// report the label pool's true memory footprint.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "util/budget.hpp"

namespace wm::mosp {

class LabelArena {
 public:
  /// `width` is the padded vector width; `budget` (nullable, not
  /// owned) receives byte high-watermarks as the arena grows.
  explicit LabelArena(std::size_t width, BudgetTracker* budget = nullptr)
      : width_(width), budget_(budget) {}

  std::size_t width() const { return width_; }
  std::size_t count() const { return count_; }

  double* cost(std::size_t i) { return cost_.get() + i * width_; }
  const double* cost(std::size_t i) const {
    return cost_.get() + i * width_;
  }
  double worst(std::size_t i) const { return worst_[i]; }
  std::int32_t trail(std::size_t i) const { return trail_[i]; }

  void clear() {
    count_ = 0;
    worst_.clear();
    trail_.clear();
  }

  void reserve(std::size_t labels) {
    if (labels > cap_) grow(labels);
    worst_.reserve(labels);
    trail_.reserve(labels);
  }

  /// Cost slot for the *next* label. The slot only becomes a label via
  /// commit(); an uncommitted scratch write (e.g. a label the incumbent
  /// bound rejects) is simply overwritten by the next candidate, so
  /// pruned labels cost no copy at all.
  double* scratch() {
    if (count_ + 1 > cap_) grow(count_ + 1);
    return cost(count_);
  }

  void commit(double worst, std::int32_t trail_id) {
    worst_.push_back(worst);
    trail_.push_back(trail_id);
    ++count_;
  }

  /// Current heap footprint (capacity, not count — what the allocator
  /// actually holds).
  std::uint64_t bytes() const {
    return static_cast<std::uint64_t>(cap_) * width_ * sizeof(double) +
           static_cast<std::uint64_t>(worst_.capacity()) * sizeof(double) +
           static_cast<std::uint64_t>(trail_.capacity()) *
               sizeof(std::int32_t);
  }

 private:
  struct Free {
    void operator()(double* p) const { std::free(p); }
  };

  void grow(std::size_t labels) {
    // Geometric growth into *uninitialized*, 64-byte-aligned storage:
    // the solver always reserve()s before a materialization burst, so
    // growth almost always happens at count_ == 0 and copies nothing —
    // and unlike vector::resize there is no zero-fill pass over tens
    // of megabytes the very next store would overwrite anyway. The
    // alignment (with width padded to the lane multiple) keeps every
    // cost slot on a 32-byte boundary, which lets the AVX2
    // extend_sweep kernel use non-temporal stores for the frontier
    // write.
    std::size_t cap = cap_ < 16 ? 16 : cap_;
    while (cap < labels) cap *= 2;
    const std::size_t raw = (cap * width_ * sizeof(double) + 63) / 64 * 64;
    std::unique_ptr<double[], Free> fresh(
        static_cast<double*>(std::aligned_alloc(64, raw)));
    if (count_ != 0) {
      std::memcpy(fresh.get(), cost_.get(),
                  count_ * width_ * sizeof(double));
    }
    cost_ = std::move(fresh);
    cap_ = cap;
    if (budget_ != nullptr) budget_->note_arena_bytes(bytes());
  }

  std::size_t width_;
  BudgetTracker* budget_;
  std::size_t count_ = 0;
  std::size_t cap_ = 0;
  std::unique_ptr<double[], Free> cost_;
  std::vector<double> worst_;
  std::vector<std::int32_t> trail_;
};

} // namespace wm::mosp
