#include "mosp/vecops.hpp"

#include <cstdlib>
#include <cstring>

namespace wm::mosp {

// Defined in vecops_avx2.cpp; returns null when the backend was not
// compiled in (WAVEMIN_SIMD=OFF / non-x86) or the CPU lacks AVX2.
const VecOps* avx2_vec_ops();

namespace {

double scalar_add_max(double* dst, const double* a, const double* b,
                      std::size_t n) {
  double m = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double s = a[i] + b[i];
    dst[i] = s;
    // Written as a compare-select (not std::max) to match the vector
    // backend's maxpd tie semantics exactly.
    m = m > s ? m : s;
  }
  return m;
}

void scalar_add_max_bound(const double* a, const double* b, const double* c,
                          std::size_t n, double* max_ab, double* max_abc) {
  double m1 = 0.0;
  double m2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double s = a[i] + b[i];
    m1 = m1 > s ? m1 : s;
    const double t = s + c[i];
    m2 = m2 > t ? m2 : t;
  }
  *max_ab = m1;
  *max_abc = m2;
}

void scalar_extend_sweep(double* dst, const double* a, const double* b,
                         const double* const* w, std::size_t k,
                         const double* c, std::size_t n, double* wmax,
                         double* bmax, bool /*stream*/) {
  for (std::size_t o = 0; o < k; ++o) {
    wmax[o] = 0.0;
    bmax[o] = 0.0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double v = a[i] + b[i];
    dst[i] = v;
    const double ci = c[i];
    for (std::size_t o = 0; o < k; ++o) {
      const double s = v + w[o][i];
      wmax[o] = wmax[o] > s ? wmax[o] : s;
      const double t = s + ci;
      bmax[o] = bmax[o] > t ? bmax[o] : t;
    }
  }
}

bool scalar_dominates(const double* a, const double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

constexpr VecOps kScalarOps{"scalar", scalar_add_max, scalar_add_max_bound,
                            scalar_extend_sweep, scalar_dominates};

Kernel env_kernel() {
  const char* e = std::getenv("WAVEMIN_MOSP_KERNEL");
  if (e == nullptr) return Kernel::Auto;
  if (std::strcmp(e, "scalar") == 0) return Kernel::Scalar;
  if (std::strcmp(e, "simd") == 0 || std::strcmp(e, "avx2") == 0) {
    return Kernel::Simd;
  }
  return Kernel::Auto;
}

} // namespace

const VecOps& scalar_ops() { return kScalarOps; }

bool simd_available() { return avx2_vec_ops() != nullptr; }

const VecOps& vec_ops(Kernel k) {
  if (k == Kernel::Auto) {
    static const Kernel forced = env_kernel();
    k = forced == Kernel::Scalar ? Kernel::Scalar : Kernel::Simd;
  }
  if (k == Kernel::Simd) {
    const VecOps* v = avx2_vec_ops();
    if (v != nullptr) return *v;
  }
  return kScalarOps;
}

} // namespace wm::mosp
