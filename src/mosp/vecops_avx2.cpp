// AVX2 backend of the MOSP vector kernels (see vecops.hpp for the
// bit-identity and padding contracts). This translation unit is the
// only one compiled with -mavx2 (WAVEMIN_SIMD=ON, x86-64 only), so the
// rest of the library never emits AVX instructions and the binary
// still runs on pre-AVX2 machines: avx2_vec_ops() probes the CPU at
// first use and hands back null when the instructions would fault.
//
// Deliberately no FMA anywhere: a fused multiply-add rounds once where
// the scalar backend rounds twice, which would break the differential
// suite's exact-equality contract. Plain add/max/compare round
// identically lane-by-lane.

#include "mosp/vecops.hpp"

#if defined(WAVEMIN_SIMD_AVX2) && defined(__AVX2__)

#include <immintrin.h>

#include <cstdint>

namespace wm::mosp {
namespace {

double hmax(__m256d acc) {
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d m2 = _mm_max_pd(lo, hi);
  const __m128d m1 = _mm_max_sd(m2, _mm_unpackhi_pd(m2, m2));
  return _mm_cvtsd_f64(m1);
}

double avx2_add_max(double* dst, const double* a, const double* b,
                    std::size_t n) {
  // acc starts at +0.0 per lane — the same floor the scalar kernel
  // seeds — so the horizontal reduction below maxes the identical
  // multiset of values (max is associative/commutative over the
  // finite inputs, hence order-independent).
  __m256d acc = _mm256_setzero_pd();
  for (std::size_t i = 0; i < n; i += kSimdLanes) {
    const __m256d s =
        _mm256_add_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    _mm256_storeu_pd(dst + i, s);
    acc = _mm256_max_pd(acc, s);
  }
  return hmax(acc);
}

// One option block of avx2_extend_sweep, K options wide so every
// accumulator lives in a register. mode: 2 = non-temporal store of the
// materialized label (32-byte-aligned arena slot; the line is not read
// again until the next row streams it, so bypassing the cache skips
// the read-for-ownership on tens of MB per row), 1 = plain store,
// 0 = no store (later chunks when a row has more than four options).
template <int K>
void extend_block(double* dst, const double* a, const double* b,
                  const double* const* w, const double* c, std::size_t n,
                  double* wmax, double* bmax, int mode) {
  __m256d acc1[K];
  __m256d acc2[K];
  for (int o = 0; o < K; ++o) {
    acc1[o] = _mm256_setzero_pd();
    acc2[o] = _mm256_setzero_pd();
  }
  for (std::size_t i = 0; i < n; i += kSimdLanes) {
    const __m256d v =
        _mm256_add_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    if (mode == 2) {
      _mm256_stream_pd(dst + i, v);
    } else if (mode == 1) {
      _mm256_storeu_pd(dst + i, v);
    }
    const __m256d cv = _mm256_loadu_pd(c + i);
    for (int o = 0; o < K; ++o) {
      const __m256d s = _mm256_add_pd(v, _mm256_loadu_pd(w[o] + i));
      acc1[o] = _mm256_max_pd(acc1[o], s);
      acc2[o] = _mm256_max_pd(acc2[o], _mm256_add_pd(s, cv));
    }
  }
  for (int o = 0; o < K; ++o) {
    wmax[o] = hmax(acc1[o]);
    bmax[o] = hmax(acc2[o]);
  }
}

void avx2_extend_sweep(double* dst, const double* a, const double* b,
                       const double* const* w, std::size_t k,
                       const double* c, std::size_t n, double* wmax,
                       double* bmax, bool stream) {
  if (k == 0) {
    avx2_add_max(dst, a, b, n);
    return;
  }
  int mode =
      stream && (reinterpret_cast<std::uintptr_t>(dst) & 31u) == 0 ? 2 : 1;
  for (std::size_t o = 0; o < k; o += 4) {
    const std::size_t kk = k - o < 4 ? k - o : 4;
    switch (kk) {
      case 1:
        extend_block<1>(dst, a, b, w + o, c, n, wmax + o, bmax + o, mode);
        break;
      case 2:
        extend_block<2>(dst, a, b, w + o, c, n, wmax + o, bmax + o, mode);
        break;
      case 3:
        extend_block<3>(dst, a, b, w + o, c, n, wmax + o, bmax + o, mode);
        break;
      default:
        extend_block<4>(dst, a, b, w + o, c, n, wmax + o, bmax + o, mode);
        break;
    }
    mode = 0;  // later chunks recompute a+b; dst is already written
  }
}

void avx2_add_max_bound(const double* a, const double* b, const double* c,
                        std::size_t n, double* max_ab, double* max_abc) {
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  for (std::size_t i = 0; i < n; i += kSimdLanes) {
    const __m256d s =
        _mm256_add_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc1 = _mm256_max_pd(acc1, s);
    acc2 = _mm256_max_pd(acc2, _mm256_add_pd(s, _mm256_loadu_pd(c + i)));
  }
  *max_ab = hmax(acc1);
  *max_abc = hmax(acc2);
}

bool avx2_dominates(const double* a, const double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; i += kSimdLanes) {
    const __m256d gt = _mm256_cmp_pd(_mm256_loadu_pd(a + i),
                                     _mm256_loadu_pd(b + i), _CMP_GT_OQ);
    if (_mm256_movemask_pd(gt) != 0) return false;
  }
  return true;
}

constexpr VecOps kAvx2Ops{"avx2", avx2_add_max, avx2_add_max_bound,
                          avx2_extend_sweep, avx2_dominates};

} // namespace

const VecOps* avx2_vec_ops() {
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported ? &kAvx2Ops : nullptr;
}

} // namespace wm::mosp

#else // !WAVEMIN_SIMD_AVX2

namespace wm::mosp {

const VecOps* avx2_vec_ops() { return nullptr; }

} // namespace wm::mosp

#endif
