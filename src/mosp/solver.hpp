#pragma once
// Solvers for the min-max objective over MOSP paths (paper Sec. V).
//
// solve_exact      — Pareto label-correcting dynamic program with
//                    dominance and incumbent pruning; exact.
// solve_warburton  — Warburton-style fully polynomial epsilon-
//                    approximation: labels are additionally merged when
//                    they coincide on an epsilon-scaled integer grid,
//                    bounding the label count; the returned worst cost is
//                    within (1+epsilon) of optimal.
// solve_greedy     — the ClkWaveMin-f inner loop (Sec. V-C): repeatedly
//                    commit the (row, option) whose inclusion worsens the
//                    running max the least.
// solve_exhaustive — brute-force oracle for tests (small instances only).

#include <cstdint>
#include <vector>

#include "mosp/graph.hpp"
#include "mosp/vecops.hpp"
#include "util/budget.hpp"

namespace wm {

struct MospSolverOptions {
  double epsilon = 0.01;        ///< Warburton scaling parameter
  std::size_t max_labels = 20000;  ///< beam cap per row (safety valve)
  /// Cooperative run budget (docs/robustness.md). When set, the label
  /// DP polls it in its row loop and draws created labels from the
  /// global pool; on a trip it returns the greedy incumbent (a feasible
  /// solution) with MospStats::budget_stopped set instead of searching
  /// on. Not owned; null = unlimited.
  BudgetTracker* budget = nullptr;
  /// Vector backend for the label kernels (mosp/vecops.hpp). Auto picks
  /// AVX2 when available; the differential test harness pins Scalar and
  /// Simd explicitly and asserts bit-identical results.
  mosp::Kernel kernel = mosp::Kernel::Auto;
  /// Li&Shi-style pre-DP candidate pruning ([19]'s O(bn^2) insight):
  /// a row option whose weight vector is component-wise dominated by a
  /// sibling option can never appear in a Pareto-optimal label, so it
  /// is dropped before the DP ever expands it. Counted in
  /// MospStats::labels_pruned_pre.
  bool prune_rows = true;
  /// Copy the final row's surviving label costs (unpadded, frontier
  /// order) into MospStats::final_frontier — the differential harness
  /// uses this to assert bit-identical label *sets*, not just the
  /// winning solution. Off in production solves.
  bool capture_frontier = false;
};

struct MospStats {
  std::size_t labels_created = 0;
  std::size_t labels_pruned_dominated = 0;
  std::size_t labels_pruned_incumbent = 0;
  /// Row options eliminated before the DP (dominated by a sibling).
  std::size_t labels_pruned_pre = 0;
  std::size_t labels_merged_grid = 0;
  /// Largest surviving label set (Pareto frontier) after any row's
  /// pruning — the DP's peak working-set size.
  std::size_t frontier_peak = 0;
  bool beam_capped = false;  ///< true if max_labels truncated the search
  /// True if the run budget (deadline / label pool / cancellation)
  /// stopped the DP early; the returned solution is then the greedy
  /// incumbent (degradation ladder level "greedy").
  bool budget_stopped = false;
  /// Peak heap footprint of the DP's label arenas for this solve.
  std::uint64_t arena_peak_bytes = 0;
  /// Final-row surviving label costs, one vector per label, only when
  /// MospSolverOptions::capture_frontier is set.
  std::vector<std::vector<double>> final_frontier;
};

MospSolution solve_exact(const MospGraph& g, MospSolverOptions opts = {},
                         MospStats* stats = nullptr);

MospSolution solve_warburton(const MospGraph& g,
                             MospSolverOptions opts = {},
                             MospStats* stats = nullptr);

MospSolution solve_greedy(const MospGraph& g);

MospSolution solve_exhaustive(const MospGraph& g);

} // namespace wm
