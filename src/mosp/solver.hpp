#pragma once
// Solvers for the min-max objective over MOSP paths (paper Sec. V).
//
// solve_exact      — Pareto label-correcting dynamic program with
//                    dominance and incumbent pruning; exact.
// solve_warburton  — Warburton-style fully polynomial epsilon-
//                    approximation: labels are additionally merged when
//                    they coincide on an epsilon-scaled integer grid,
//                    bounding the label count; the returned worst cost is
//                    within (1+epsilon) of optimal.
// solve_greedy     — the ClkWaveMin-f inner loop (Sec. V-C): repeatedly
//                    commit the (row, option) whose inclusion worsens the
//                    running max the least.
// solve_exhaustive — brute-force oracle for tests (small instances only).

#include <cstdint>

#include "mosp/graph.hpp"
#include "util/budget.hpp"

namespace wm {

struct MospSolverOptions {
  double epsilon = 0.01;        ///< Warburton scaling parameter
  std::size_t max_labels = 20000;  ///< beam cap per row (safety valve)
  /// Cooperative run budget (docs/robustness.md). When set, the label
  /// DP polls it in its row loop and draws created labels from the
  /// global pool; on a trip it returns the greedy incumbent (a feasible
  /// solution) with MospStats::budget_stopped set instead of searching
  /// on. Not owned; null = unlimited.
  BudgetTracker* budget = nullptr;
};

struct MospStats {
  std::size_t labels_created = 0;
  std::size_t labels_pruned_dominated = 0;
  std::size_t labels_pruned_incumbent = 0;
  std::size_t labels_merged_grid = 0;
  /// Largest surviving label set (Pareto frontier) after any row's
  /// pruning — the DP's peak working-set size.
  std::size_t frontier_peak = 0;
  bool beam_capped = false;  ///< true if max_labels truncated the search
  /// True if the run budget (deadline / label pool / cancellation)
  /// stopped the DP early; the returned solution is then the greedy
  /// incumbent (degradation ladder level "greedy").
  bool budget_stopped = false;
};

MospSolution solve_exact(const MospGraph& g, MospSolverOptions opts = {},
                         MospStats* stats = nullptr);

MospSolution solve_warburton(const MospGraph& g,
                             MospSolverOptions opts = {},
                             MospStats* stats = nullptr);

MospSolution solve_greedy(const MospGraph& g);

MospSolution solve_exhaustive(const MospGraph& g);

} // namespace wm
