#include "cells/characterizer.hpp"

#include <cmath>
#include <limits>
#include <utility>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace wm {

Characterizer::Characterizer(const CellLibrary& lib,
                             CharacterizerOptions opts)
    : opts_(std::move(opts)) {
  WM_REQUIRE(!opts_.load_bins.empty(), "need at least one load bin");
  WM_REQUIRE(!opts_.vdds.empty(), "need at least one vdd");
  WM_REQUIRE(!opts_.temps.empty(), "need at least one temperature");

  table_.reserve(lib.cells().size());
  for (const Cell& cell : lib.cells()) {
    cell_index_.emplace(cell.name, table_.size());
    std::vector<CellWave> waves;
    waves.reserve(opts_.load_bins.size() * opts_.vdds.size() *
                  opts_.temps.size());
    for (Ff load : opts_.load_bins) {
      for (Volt vdd : opts_.vdds) {
        for (double temp : opts_.temps) {
          DriveConditions dc{load, opts_.slew, vdd, temp};
          waves.push_back(
              simulate_cell(cell, dc, opts_.period, opts_.dt));
        }
      }
    }
    table_.push_back(std::move(waves));
  }
  // The serving layer's throughput lever hangs off this counter: a
  // fork-per-attempt worker pays it every job, a blob-backed pool
  // worker at most once per process (docs/serving.md).
  obs::add(obs::global(), "cells.characterized", table_.size());
}

Characterizer Characterizer::restore(
    CharacterizerOptions opts,
    std::unordered_map<std::string, std::size_t> cell_index,
    std::vector<std::vector<CellWave>> table) {
  WM_REQUIRE(cell_index.size() == table.size(),
             "characterizer restore: index/table size mismatch");
  const std::size_t want =
      opts.load_bins.size() * opts.vdds.size() * opts.temps.size();
  for (const auto& waves : table) {
    WM_REQUIRE(waves.size() == want,
               "characterizer restore: table row does not match the "
               "options grid");
  }
  Characterizer chr;
  chr.opts_ = std::move(opts);
  chr.cell_index_ = std::move(cell_index);
  chr.table_ = std::move(table);
  obs::add(obs::global(), "cells.lut_restored", chr.table_.size());
  return chr;
}

std::size_t Characterizer::bin_index(Ff c_load) const {
  // Nearest bin in log space (bins are geometric).
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::max();
  const double lc = std::log(std::max(c_load, 0.01));
  for (std::size_t i = 0; i < opts_.load_bins.size(); ++i) {
    const double d = std::abs(std::log(opts_.load_bins[i]) - lc);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

std::size_t Characterizer::vdd_index(Volt vdd) const {
  for (std::size_t i = 0; i < opts_.vdds.size(); ++i) {
    if (std::abs(opts_.vdds[i] - vdd) < 1e-9) return i;
  }
  throw Error("vdd not characterized: " + std::to_string(vdd));
}

std::size_t Characterizer::temp_index(double temp_c) const {
  for (std::size_t i = 0; i < opts_.temps.size(); ++i) {
    if (std::abs(opts_.temps[i] - temp_c) < 1e-9) return i;
  }
  throw Error("temperature not characterized: " +
              std::to_string(temp_c));
}

const CellWave& Characterizer::lookup(const Cell& cell, Ff c_load,
                                      Volt vdd, double temp_c) const {
  const auto it = cell_index_.find(cell.name);
  WM_REQUIRE(it != cell_index_.end(),
             "cell not characterized: " + cell.name);
  const std::size_t bi = bin_index(c_load);
  const std::size_t vi = vdd_index(vdd);
  const std::size_t ti = temp_index(temp_c);
  return table_[it->second][(bi * opts_.vdds.size() + vi) *
                                opts_.temps.size() +
                            ti];
}

CellTiming Characterizer::timing(const Cell& cell, Ff c_load, Volt vdd,
                                 double temp_c) const {
  DriveConditions dc{c_load, opts_.slew, vdd, temp_c};
  return cell_timing(cell, dc);
}

double Characterizer::noise_in(const Cell& cell, Ff c_load, Volt vdd,
                               Rail rail, Ps input_arrival, Ps t_lo,
                               Ps t_hi, Ps extra_delay,
                               double temp_c) const {
  const CellWave& w = lookup(cell, c_load, vdd, temp_c);
  const Waveform& wf = rail == Rail::Vdd ? w.idd : w.iss;
  // The characterized waveform has its input edge at t = 0; in the tree
  // the edge arrives at input_arrival and an adjustable cell delays its
  // output (and current pulse) by extra_delay more. The clock is
  // periodic, so the response is evaluated as the sum of the adjacent
  // periodic images (a negative-polarity input shifts the response by
  // half a period, which would otherwise leave the characterized span).
  const Ps shift = input_arrival + extra_delay;
  const Ps T = opts_.period;
  double acc = 0.0;
  for (int k = -1; k <= 1; ++k) {
    const Ps s = shift + static_cast<Ps>(k) * T;
    acc += (t_lo == t_hi) ? wf.value_at(t_lo - s)
                          : wf.max_in(t_lo - s, t_hi - s);
  }
  return acc;
}

} // namespace wm
