#include "cells/library.hpp"

#include <cmath>

#include "util/error.hpp"

namespace wm {

namespace {

Cell make_buffer(int drive) {
  Cell c;
  c.name = "BUF_X" + std::to_string(drive);
  c.kind = CellKind::Buffer;
  c.drive = drive;
  const double s = std::sqrt(static_cast<double>(drive));
  // Buffer input stage is small regardless of drive (paper Table I quotes
  // BUF_X4 Cin ~ 1 fF), output stage scales with drive.
  c.c_in = 0.6 + 0.12 * s;
  c.c_self = 0.9 * std::pow(static_cast<double>(drive), 0.7);
  c.r_out = 6.4 / static_cast<double>(drive);  // X16 -> 0.40 kOhm
  c.d0 = 8.0 + 42.0 / s;  // two-stage intrinsic delay; the
                           // strong size dependence is what gives
                           // sizing its pulse-placement leverage
  c.slew0 = 8.0;
  c.sc_frac = 0.18;  // first-stage inverter draws from the opposite rail
  return c;
}

Cell make_inverter(int drive) {
  Cell c;
  c.name = "INV_X" + std::to_string(drive);
  c.kind = CellKind::Inverter;
  c.drive = drive;
  const double s = std::sqrt(static_cast<double>(drive));
  c.c_in = 0.28 * static_cast<double>(drive);  // X8 -> 2.24 fF (Table I)
  c.c_self = 0.5 * std::pow(static_cast<double>(drive), 0.7);
  c.r_out = 5.6 / static_cast<double>(drive);
  c.d0 = 4.0 + 16.0 / s;  // single stage: faster than the buffer
  c.slew0 = 7.0;
  c.sc_frac = 0.10;
  return c;
}

Cell make_adb(int drive) {
  Cell c = make_buffer(drive);
  c.name = "ADB_X" + std::to_string(drive);
  c.kind = CellKind::Adb;
  c.c_in += 0.3;   // bank control loading
  c.c_self += 2.0; // capacitor bank
  c.d0 += 8.0;     // bank insertion penalty
  c.adj_step = 4.0;
  c.adj_max_code = 40;  // up to +160 ps (bank size is a design knob of
                        // the Fig. 4 implementation)
  return c;
}

Cell make_adi(int drive) {
  Cell c = make_adb(drive);
  c.name = "ADI_X" + std::to_string(drive);
  c.kind = CellKind::Adi;
  // Third inverter (Fig. 4): ADIs are unavoidably slower than ADBs — the
  // first inverter is already at minimum feature size (Sec. VII-E).
  c.d0 += 5.0;
  c.sc_frac = 0.12;
  return c;
}

} // namespace

CellLibrary CellLibrary::nangate45_like() {
  CellLibrary lib;
  for (int drive : {1, 2, 4, 8, 16, 32, 64}) {
    lib.add(make_buffer(drive));
    lib.add(make_inverter(drive));
  }
  for (int drive : {8, 16}) {
    lib.add(make_adb(drive));
    lib.add(make_adi(drive));
  }
  return lib;
}

void CellLibrary::add(Cell cell) {
  WM_REQUIRE(find(cell.name) == nullptr,
             "duplicate cell name: " + cell.name);
  cells_.push_back(std::move(cell));
}

const Cell& CellLibrary::by_name(std::string_view name) const {
  const Cell* c = find(name);
  WM_REQUIRE(c != nullptr, "unknown cell: " + std::string(name));
  return *c;
}

const Cell* CellLibrary::find(std::string_view name) const {
  for (const Cell& c : cells_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::vector<const Cell*> CellLibrary::of_kind(CellKind kind) const {
  std::vector<const Cell*> out;
  for (const Cell& c : cells_) {
    if (c.kind == kind) out.push_back(&c);
  }
  return out;
}

std::vector<const Cell*> CellLibrary::assignment_library() const {
  return {&by_name("BUF_X8"), &by_name("BUF_X16"), &by_name("INV_X8"),
          &by_name("INV_X16")};
}

std::vector<const Cell*>
CellLibrary::assignment_library_with_adjustables() const {
  auto lib = assignment_library();
  lib.push_back(&by_name("ADB_X8"));
  lib.push_back(&by_name("ADI_X8"));
  return lib;
}

} // namespace wm
