#include "cells/electrical.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace wm {

double vdd_delay_factor(Volt vdd) {
  WM_REQUIRE(vdd > tech::kVth + 0.05, "supply too close to threshold");
  const double v_ratio = tech::kVddNominal / vdd;
  const double drive_ratio =
      (tech::kVddNominal - tech::kVth) / (vdd - tech::kVth);
  return v_ratio * std::pow(drive_ratio, tech::kAlphaPower - 1.0);
}

double temp_delay_factor(double temp_c) {
  return 1.0 + 0.0012 * (temp_c - 25.0);
}

Ps wire_slew_degradation(Ps elmore) {
  // Long balancing snakes are routed shielded/buffered, so their edge-
  // rate damage saturates quickly; the cap keeps tree slews near the
  // characterization slew, which the paper calls out as a requirement
  // for the noise table to stay accurate (Sec. IV-B).
  return std::min(1.2 * elmore, 12.0);
}

namespace {

// nMOS/pMOS asymmetry: output-falling transitions are a little slower
// (weaker pull-down sizing in clock cells) — reproduces the rise/fall
// asymmetry visible in the paper's Table I.
constexpr double kFallDelayPenalty = 1.10;
constexpr double kFallRcPenalty = 1.10;
constexpr double kFallSlewPenalty = 1.08;
constexpr double kIssPeakDerate = 0.92;

// Effective-capacitance weights of the linear delay/slew model.
constexpr double kRcDelayWeight = 0.69;  // ln 2
constexpr double kSlewDelayWeight = 0.20;
constexpr double kRcSlewWeight = 1.40;  // 20%-80% transition

struct EdgeTiming {
  Ps delay;
  Ps slew;
};

EdgeTiming output_edge_timing(const Cell& cell, const DriveConditions& dc,
                              bool output_rises) {
  const double vf =
      vdd_delay_factor(dc.vdd) * temp_delay_factor(dc.temp_c);
  const Ff c_total = dc.c_load + cell.c_self;
  double delay = cell.d0 + kRcDelayWeight * cell.r_out * c_total +
                 kSlewDelayWeight * dc.slew_in;
  double slew = cell.slew0 + kRcSlewWeight * cell.r_out * c_total;
  if (!output_rises) {
    delay = kFallDelayPenalty * cell.d0 +
            kFallRcPenalty * kRcDelayWeight * cell.r_out * c_total +
            kSlewDelayWeight * dc.slew_in;
    slew *= kFallSlewPenalty;
  }
  return {delay * vf, slew * vf};
}

} // namespace

CellTiming cell_timing(const Cell& cell, const DriveConditions& dc) {
  const EdgeTiming out_rise = output_edge_timing(cell, dc, /*rises=*/true);
  const EdgeTiming out_fall = output_edge_timing(cell, dc, /*rises=*/false);
  CellTiming t;
  if (cell.inverting()) {
    t.delay_rise = out_fall.delay;  // input rise -> output fall
    t.delay_fall = out_rise.delay;
    t.slew_rise = out_rise.slew;  // slew of the *rising output* edge
    t.slew_fall = out_fall.slew;
  } else {
    t.delay_rise = out_rise.delay;
    t.delay_fall = out_fall.delay;
    t.slew_rise = out_rise.slew;
    t.slew_fall = out_fall.slew;
  }
  return t;
}

namespace {

/// Emit the current pulses caused by one input edge.
void emit_input_edge(CellWave& w, const Cell& cell,
                     const DriveConditions& dc, Ps t_input_edge,
                     bool input_rises, Ps extra_delay) {
  const double vf = vdd_delay_factor(dc.vdd);
  const bool output_rises = input_rises != cell.inverting();
  const EdgeTiming et = output_edge_timing(cell, dc, output_rises);

  // Charge drawn through the primary rail: load + internal capacitance,
  // plus (for adjustable cells) the capacitor-bank charge proportional to
  // the configured extra delay.
  Ff c_switched = dc.c_load + cell.c_self;
  if (cell.adjustable() && extra_delay > 0.0) {
    c_switched += 0.12 * extra_delay;  // bank caps engaged by the code
  }
  const double q = c_switched * dc.vdd;  // fC

  // Pulse geometry: the leading edge tracks the input transition, the
  // trailing edge the RC discharge of the output stage.
  const Ps w_rise = std::max(0.15 * dc.slew_in * vf, 1.5);
  const Ps w_fall = std::max(0.25 * et.slew, 2.5);
  double peak = 2.0 * q / (w_rise + w_fall) * 1000.0;  // fC/ps -> uA
  if (!output_rises) peak *= kIssPeakDerate;

  const Ps t_event = t_input_edge + et.delay + extra_delay;
  const Ps t_start = t_event - w_rise;

  Waveform& primary = output_rises ? w.idd : w.iss;
  Waveform& secondary = output_rises ? w.iss : w.idd;
  primary.accumulate_triangle(t_start, w_rise, w_fall, peak);

  // First-stage / short-circuit current on the opposite rail, slightly
  // ahead of the main pulse (the internal node switches first).
  const double q_sc = cell.sc_frac * q;
  const Ps w_sc = std::max(0.5 * dc.slew_in * vf, 3.0);
  const double peak_sc = 2.0 * q_sc / (2.0 * w_sc) * 1000.0;
  secondary.accumulate_triangle(t_start - 0.25 * cell.d0 * vf, w_sc, w_sc,
                                peak_sc);
}

} // namespace

CellWave simulate_cell(const Cell& cell, const DriveConditions& dc,
                       Ps period, Ps dt, Ps extra_delay) {
  WM_REQUIRE(period > 0.0 && dt > 0.0, "period and dt must be positive");
  WM_REQUIRE(extra_delay >= 0.0, "extra delay cannot be negative");
  WM_REQUIRE(extra_delay <=
                 (cell.adjustable() ? cell.adj_range() : 0.0) + 1e-9,
             "extra delay exceeds the cell's adjustable range");

  CellWave w;
  const auto n = static_cast<std::size_t>(period / dt) + 1;
  w.idd = Waveform::zeros(0.0, dt, n);
  w.iss = Waveform::zeros(0.0, dt, n);
  w.timing = cell_timing(cell, dc);
  w.timing.delay_rise += extra_delay;
  w.timing.delay_fall += extra_delay;

  emit_input_edge(w, cell, dc, 0.0, /*input_rises=*/true, extra_delay);
  emit_input_edge(w, cell, dc, 0.5 * period, /*input_rises=*/false,
                  extra_delay);
  return w;
}

} // namespace wm
