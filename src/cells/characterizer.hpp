#pragma once
// Cell characterization lookup tables (paper Sec. IV-B, Fig. 7).
//
// The paper characterizes every buffer/inverter once with HSPICE — a
// clock pulse at the input, I_DD/I_SS waveforms and propagation delay
// recorded — and the optimizer then works entirely from this table.
// We do the same: the Characterizer eagerly simulates every cell of a
// library over a grid of load bins and supply voltages using the
// analytic model (electrical.cpp) at the fixed characterization slew
// (20 ps, Sec. IV-B), and serves nearest-bin lookups.
//
// Deliberately retained inaccuracies (they reproduce the paper's
// model-vs-HSPICE gap, Sec. VII-C):
//   * load is quantized to the nearest characterization bin;
//   * the input slew is frozen at 20 ps, whereas the real tree slew
//     depends on the (assignment-dependent) parent loading.

#include <unordered_map>
#include <vector>

#include "cells/cell.hpp"
#include "cells/electrical.hpp"
#include "cells/library.hpp"
#include "util/units.hpp"
#include "wave/waveform.hpp"

namespace wm {

struct CharacterizerOptions {
  std::vector<Ff> load_bins = {1.0,  1.5,  2.0,  3.0,  4.0,  6.0,
                               8.0,  12.0, 16.0, 24.0, 32.0, 48.0,
                               64.0, 96.0, 128.0};
  std::vector<Volt> vdds = {tech::kVddNominal};
  std::vector<double> temps = {25.0};
  Ps slew = tech::kCharacterizationSlew;
  Ps period = tech::kClockPeriod;
  Ps dt = 0.5;
};

class Characterizer {
 public:
  /// Eager characterization: simulates every cell over the full grid
  /// (counts "cells.characterized" — the serving layer asserts pool
  /// workers pay this at most once per process, docs/serving.md).
  Characterizer(const CellLibrary& lib, CharacterizerOptions opts = {});

  /// Rebuild from a precomputed table — the wavemin.blob/v1 load path
  /// (io/blob.hpp); no simulation runs ("cells.lut_restored"). The
  /// table must come from a Characterizer with the same options over
  /// the same cells; lookups are then bit-identical to the original.
  static Characterizer restore(
      CharacterizerOptions opts,
      std::unordered_map<std::string, std::size_t> cell_index,
      std::vector<std::vector<CellWave>> table);

  const CharacterizerOptions& options() const { return opts_; }

  /// Serialization access (io/blob.cpp): the LUT proper and the
  /// cell-name -> table-row mapping.
  const std::vector<std::vector<CellWave>>& table() const {
    return table_;
  }
  const std::unordered_map<std::string, std::size_t>& cell_index() const {
    return cell_index_;
  }

  /// Characterized response of `cell` at the nearest load bin / exact
  /// vdd and temperature. Throws wm::Error for an unknown cell or an
  /// un-characterized operating point.
  const CellWave& lookup(const Cell& cell, Ff c_load,
                         Volt vdd = tech::kVddNominal,
                         double temp_c = 25.0) const;

  /// Exact (non-quantized) analytic timing at the characterization slew.
  /// Used for arrival-time bookkeeping, where bin quantization would
  /// corrupt the feasible-interval computation.
  CellTiming timing(const Cell& cell, Ff c_load,
                    Volt vdd = tech::kVddNominal,
                    double temp_c = 25.0) const;

  /// Estimated noise contribution of `cell` on `rail` within the absolute
  /// time window [t_lo, t_hi], when the cell's input clock edge arrives
  /// at `input_arrival` (the characterized waveform has its input edge at
  /// t = 0) and an adjustable cell is configured to add `extra_delay`.
  /// For a point sample pass t_lo == t_hi.
  double noise_in(const Cell& cell, Ff c_load, Volt vdd, Rail rail,
                  Ps input_arrival, Ps t_lo, Ps t_hi,
                  Ps extra_delay = 0.0, double temp_c = 25.0) const;

 private:
  Characterizer() = default;  // restore() fills the members directly

  std::size_t bin_index(Ff c_load) const;
  std::size_t vdd_index(Volt vdd) const;
  std::size_t temp_index(double temp_c) const;

  CharacterizerOptions opts_;
  std::unordered_map<std::string, std::size_t> cell_index_;
  // table_[cell][(bin * n_vdd + vdd) * n_temp + temp]
  std::vector<std::vector<CellWave>> table_;
};

} // namespace wm
