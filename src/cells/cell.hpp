#pragma once
// Clock buffering cell models.
//
// Four kinds of buffering element appear in the paper:
//   - BUF_X*  : non-inverting buffer      (positive polarity)
//   - INV_X*  : inverter                  (negative polarity)
//   - ADB     : adjustable delay buffer   (positive polarity, Fig. 4 of
//               [16]; capacitor-bank tunable delay)
//   - ADI     : adjustable delay inverter (negative polarity; the paper's
//               proposed new cell, Fig. 4 — an ADB with a third inverter,
//               hence a delay penalty)
//
// A Cell is a plain value describing the electrical parameters the
// analytic model needs. The full Nangate-45-like family is constructed by
// CellLibrary (library.hpp).

#include <cstdint>
#include <string>

#include "util/units.hpp"

namespace wm {

enum class CellKind : std::uint8_t { Buffer, Inverter, Adb, Adi };

/// Output polarity relative to the clock source (paper footnote 1).
enum class Polarity : std::uint8_t { Positive, Negative };

inline const char* to_string(CellKind k) {
  switch (k) {
    case CellKind::Buffer: return "BUF";
    case CellKind::Inverter: return "INV";
    case CellKind::Adb: return "ADB";
    case CellKind::Adi: return "ADI";
  }
  return "?";
}

inline const char* to_string(Polarity p) {
  return p == Polarity::Positive ? "P" : "N";
}

struct Cell {
  std::string name;  ///< e.g. "BUF_X8"
  CellKind kind = CellKind::Buffer;
  int drive = 1;  ///< drive strength multiplier (X1, X2, ... X32)

  Ff c_in = 1.0;        ///< input pin capacitance
  Ff c_self = 1.0;      ///< internal switched capacitance (self-loading)
  KOhm r_out = 1.0;     ///< output (pull) resistance at nominal VDD
  Ps d0 = 10.0;         ///< intrinsic delay at nominal VDD
  Ps slew0 = 8.0;       ///< intrinsic output transition time
  double sc_frac = 0.12;  ///< short-circuit / first-stage opposite-rail
                          ///< current fraction of the main pulse

  // Adjustable-delay parameters (ADB / ADI only).
  Ps adj_step = 0.0;     ///< delay quantum of the capacitor bank
  int adj_max_code = 0;  ///< number of usable codes (0 => not adjustable)

  Polarity polarity() const {
    return (kind == CellKind::Buffer || kind == CellKind::Adb)
               ? Polarity::Positive
               : Polarity::Negative;
  }

  bool inverting() const { return polarity() == Polarity::Negative; }
  bool adjustable() const { return adj_max_code > 0; }

  /// Maximum extra delay the capacitor bank can add.
  Ps adj_range() const { return adj_step * static_cast<Ps>(adj_max_code); }
};

} // namespace wm
