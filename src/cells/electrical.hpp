#pragma once
// Analytic electrical model of a clock buffering cell.
//
// Substitutes for the paper's HSPICE characterization (Sec. IV-B, Fig. 7).
// The model captures exactly the behaviours the WaveMin algorithms
// depend on:
//   * propagation delay d(C_load, slew_in, VDD): linear RC term +
//     intrinsic delay + slew dependence, scaled by the alpha-power-law
//     supply factor (so 0.9 V islands are slower than 1.1 V ones);
//   * output slew: RC-dominated, load-dependent (this creates the
//     model-vs-validation inconsistency of Sec. VII-C: the noise LUT is
//     characterized at the fixed 20 ps slew while validation uses the
//     assignment-dependent slews);
//   * per-edge supply current pulses: charge-conserving asymmetric
//     triangles on the primary rail (I_DD when the output rises, I_SS
//     when it falls) plus a smaller opposite-rail pulse from the
//     first-stage inverter / short-circuit current (Fig. 1);
//   * nMOS/pMOS asymmetry: falling transitions are slower and flatter
//     (visible in Table I's rise/fall columns).

#include "cells/cell.hpp"
#include "util/units.hpp"
#include "wave/waveform.hpp"

namespace wm {

/// Supply-voltage delay scaling factor (alpha-power law), normalized so
/// factor(kVddNominal) == 1.
double vdd_delay_factor(Volt vdd);

/// Slew degradation across a wire with the given Elmore delay. The cap
/// reflects that severely RC-filtered edges are re-buffered in practice;
/// both the timing analysis and the validation simulator use this same
/// helper, so the two agree on delays (their intended disagreement is
/// confined to the noise lookup table — Sec. VII-C).
Ps wire_slew_degradation(Ps elmore);

/// Temperature delay derating (normalized to 1 at 25 C): carrier
/// mobility falls as silicon heats, so cells slow down — and, because
/// the pulse width tracks the transition times, current pulses flatten
/// when hot and sharpen when cool. This is why the prior art treated
/// the *coolest* corner as the noise-pessimistic one (Sec. VI).
double temp_delay_factor(double temp_c);

/// Electrical operating point of a cell instance.
struct DriveConditions {
  Ff c_load = 5.0;                        ///< lumped downstream capacitance
  Ps slew_in = tech::kCharacterizationSlew;  ///< input transition time
  Volt vdd = tech::kVddNominal;
  double temp_c = 25.0;                   ///< junction temperature
};

/// Scalar timing results.
struct CellTiming {
  Ps delay_rise = 0.0;  ///< input-rise to output-transition delay
  Ps delay_fall = 0.0;  ///< input-fall to output-transition delay
  Ps slew_rise = 0.0;   ///< output slew when the output rises
  Ps slew_fall = 0.0;   ///< output slew when the output falls
  /// Mode-independent average delay used for arrival-time bookkeeping.
  Ps delay() const { return 0.5 * (delay_rise + delay_fall); }
};

CellTiming cell_timing(const Cell& cell, const DriveConditions& dc);

/// Full-period current response of one cell (paper Fig. 7):
/// the input clock rises at t = 0 and falls at t = period/2; idd/iss hold
/// the resulting supply/ground current waveforms in uA.
struct CellWave {
  Waveform idd;
  Waveform iss;
  CellTiming timing;
};

/// Simulate one cell with an ideal clock pulse at its input.
/// `extra_delay` models a configured ADB/ADI capacitor-bank code: it
/// shifts the output transition (and its current pulse) later and
/// slightly widens the pulse (the bank's charge also flows through the
/// rails).
CellWave simulate_cell(const Cell& cell, const DriveConditions& dc,
                       Ps period = tech::kClockPeriod, Ps dt = 0.5,
                       Ps extra_delay = 0.0);

} // namespace wm
