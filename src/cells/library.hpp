#pragma once
// Cell library construction and lookup.
//
// nangate45_like() builds the buffering-cell family the experiments use:
// BUF_X{1..32}, INV_X{1..32}, plus adjustable cells ADB_X{8,16} and
// ADI_X{8,16}. Electrical parameters follow the scaling laws of a 45 nm
// library (input cap grows with drive for inverters but only weakly for
// buffers, output resistance ~ 1/drive with BUF_X16 at ~0.4 kOhm as the
// paper quotes, inverters faster than buffers of equal drive — compare
// the paper's Table II ordering).

#include <string>
#include <string_view>
#include <vector>

#include "cells/cell.hpp"

namespace wm {

class CellLibrary {
 public:
  /// The 45 nm-like family used throughout the experiments.
  static CellLibrary nangate45_like();

  /// Empty library; add cells with add().
  CellLibrary() = default;

  void add(Cell cell);

  /// Lookup by exact name; throws wm::Error if absent.
  const Cell& by_name(std::string_view name) const;

  /// Lookup by exact name; nullptr if absent.
  const Cell* find(std::string_view name) const;

  const std::vector<Cell>& cells() const { return cells_; }

  std::vector<const Cell*> of_kind(CellKind kind) const;

  /// The sizing library the paper's experiments allow for leaf
  /// assignment (Sec. VII-A): {BUF_X8, BUF_X16, INV_X8, INV_X16}.
  std::vector<const Cell*> assignment_library() const;

  /// assignment_library() extended with the adjustable cells, used by
  /// ClkWaveMin-M after ADB insertion (Sec. VI).
  std::vector<const Cell*> assignment_library_with_adjustables() const;

 private:
  std::vector<Cell> cells_;
};

} // namespace wm
