#pragma once
// Feasible time intervals and their multi-mode intersections
// (paper Sec. IV-A "Step 2", Figs. 6 and 11, Table IV).
//
// For one power mode, every candidate arrival time t defines the window
// [t - kappa, t]; the window is feasible if every sink has at least one
// candidate whose arrival falls inside it (then an assignment restricted
// to in-window candidates meets the skew bound). For multiple power
// modes an *intersection* picks one window per mode, and a candidate
// survives only if it is in-window in every mode simultaneously.
//
// The intersection count is exponential in the mode count; the paper
// prunes using the degree of freedom (total surviving candidate count,
// Fig. 14 shows it anti-correlates with achievable noise). We implement
// that as a per-level beam: after extending partial intersections by one
// mode, only the top `beam` by degree of freedom are kept (0 = no beam).

#include <cstdint>
#include <vector>

#include "core/candidates.hpp"
#include "util/units.hpp"

namespace wm {

struct TimeWindow {
  Ps lo = 0.0;
  Ps hi = 0.0;
};

struct Intersection {
  std::vector<TimeWindow> windows;   ///< one per mode
  std::vector<std::uint32_t> masks;  ///< per sink: surviving candidates
  long dof = 0;                      ///< degree of freedom (Sec. VI)
};

/// Candidate-in-window masks for one sink in one mode.
std::uint32_t window_mask(const SinkInfo& sink, std::size_t mode,
                          const TimeWindow& w);

/// All feasible windows of a single mode, deduplicated by mask
/// signature, sorted by decreasing degree of freedom.
std::vector<Intersection> enumerate_single_mode(const Preprocessed& p,
                                                std::size_t mode, Ps kappa);

/// All feasible multi-mode intersections (beam-pruned per level),
/// sorted by decreasing degree of freedom. For a single-mode design this
/// degenerates to enumerate_single_mode(p, 0, kappa).
std::vector<Intersection> enumerate_intersections(const Preprocessed& p,
                                                  Ps kappa,
                                                  std::size_t beam = 0);

} // namespace wm
