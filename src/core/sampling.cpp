#include "core/sampling.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace wm {

namespace {

// Pulse support around a switching instant: leading edge tracks the
// input slew, tail the RC discharge (see cells/electrical.cpp).
constexpr Ps kLead = 30.0;
constexpr Ps kTail = 70.0;

void emit_windows(std::vector<SampleSlot>& out, Rail rail,
                  std::size_t mode, Ps lo, Ps hi, int pieces) {
  const Ps step = (hi - lo) / static_cast<Ps>(pieces);
  for (int i = 0; i < pieces; ++i) {
    out.push_back({rail, mode, lo + step * static_cast<Ps>(i),
                   lo + step * static_cast<Ps>(i + 1)});
  }
}

void emit_points(std::vector<SampleSlot>& out, Rail rail,
                 std::size_t mode, Ps lo, Ps hi, int count) {
  if (count <= 0) return;
  if (count == 1) {
    const Ps mid = 0.5 * (lo + hi);
    out.push_back({rail, mode, mid, mid});
    return;
  }
  const Ps step = (hi - lo) / static_cast<Ps>(count - 1);
  for (int i = 0; i < count; ++i) {
    const Ps t = lo + step * static_cast<Ps>(i);
    out.push_back({rail, mode, t, t});
  }
}

} // namespace

std::vector<SampleSlot> build_slots(
    const Preprocessed& p, const std::vector<std::size_t>& zone_sinks,
    const Intersection& x, int samples_per_mode, Ps period) {
  WM_REQUIRE(samples_per_mode >= 4, "need at least 4 sampling slots");
  WM_REQUIRE(!zone_sinks.empty(), "empty zone");

  std::vector<SampleSlot> slots;
  slots.reserve(static_cast<std::size_t>(samples_per_mode) * p.mode_count);

  for (std::size_t mode = 0; mode < p.mode_count; ++mode) {
    // Hot region: span of the surviving candidates' switching instants.
    Ps a_min = std::numeric_limits<Ps>::max();
    Ps a_max = std::numeric_limits<Ps>::lowest();
    for (std::size_t s : zone_sinks) {
      const SinkInfo& sink = p.sinks[s];
      const std::uint32_t mask = x.masks[s];
      for (std::size_t c = 0; c < sink.candidates.size(); ++c) {
        if ((mask & (1u << c)) == 0) continue;
        const Ps a = sink.candidates[c].arrival[mode];
        a_min = std::min(a_min, a);
        a_max = std::max(a_max, a);
      }
    }
    WM_ASSERT(a_min <= a_max, "zone has no surviving candidates");

    const Ps rise_lo = a_min - kLead;
    const Ps rise_hi = a_max + kTail;
    const Ps fall_lo = rise_lo + 0.5 * period;
    const Ps fall_hi = rise_hi + 0.5 * period;

    if (samples_per_mode <= 8) {
      const int pieces = samples_per_mode / 4;  // per (rail, edge)
      for (Rail rail : {Rail::Vdd, Rail::Gnd}) {
        emit_windows(slots, rail, mode, rise_lo, rise_hi, pieces);
        emit_windows(slots, rail, mode, fall_lo, fall_hi, pieces);
      }
    } else {
      const int per_rail = samples_per_mode / 2;
      const int rise_n = (per_rail + 1) / 2;
      const int fall_n = per_rail - rise_n;
      for (Rail rail : {Rail::Vdd, Rail::Gnd}) {
        emit_points(slots, rail, mode, rise_lo, rise_hi, rise_n);
        emit_points(slots, rail, mode, fall_lo, fall_hi, fall_n);
      }
    }
  }
  return slots;
}

} // namespace wm
