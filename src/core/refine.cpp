#include "core/refine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>

#include "cells/electrical.hpp"
#include "timing/arrival.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "wave/tree_sim.hpp"

namespace wm {

namespace {

struct TileRef {
  std::vector<NodeId> members;
  Waveform idd;
  Waveform iss;
  double peak() const { return std::max(idd.peak(), iss.peak()); }
};

std::pair<int, int> tile_of(const Point& p, Um tile) {
  return {static_cast<int>(std::floor(p.x / tile)),
          static_cast<int>(std::floor(p.y / tile))};
}

/// Fold `w` shifted by `shift` into one clock period on a fresh grid.
Waveform fold_pulse(const Waveform& w, Ps shift, Ps period, Ps dt) {
  const auto n = static_cast<std::size_t>(period / dt);
  Waveform out = Waveform::zeros(0.0, dt, n);
  for (std::size_t i = 0; i < n; ++i) {
    const Ps t = out.time_at(i);
    double acc = 0.0;
    for (int k = -1; k <= 2; ++k) {
      acc += w.value_at(t - shift + static_cast<Ps>(k) * period);
    }
    out[i] = acc;
  }
  return out;
}

Waveform combine(const Waveform& tile, const Waveform& remove,
                 const Waveform& add) {
  Waveform out = tile;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const Ps t = out.time_at(i);
    out[i] = std::max(0.0, out[i] - remove.value_at(t) + add.value_at(t));
  }
  return out;
}

} // namespace

RefineResult refine_with_simulation(ClockTree& tree,
                                    const CellLibrary& lib,
                                    const ModeSet& modes,
                                    RefineOptions opts) {
  WM_REQUIRE(modes.count() == 1,
             "simulation refinement supports single-mode designs");
  const auto t0 = std::chrono::steady_clock::now();
  RefineResult result;

  const std::vector<const Cell*> candidates = lib.assignment_library();
  const Ps period = tech::kClockPeriod;

  for (int round = 0; round < opts.max_rounds; ++round) {
    TreeSimOptions so;
    so.dt = opts.dt;
    const TreeSim sim(tree, modes, 0, so);

    // Tile aggregation.
    std::map<std::pair<int, int>, TileRef> tiles;
    for (const TreeNode& n : tree.nodes()) {
      tiles[tile_of(n.pos, opts.tile)].members.push_back(n.id);
    }
    double worst = 0.0;
    for (auto& [key, t] : tiles) {
      (void)key;
      t.idd = sim.sum_rail(t.members, Rail::Vdd);
      t.iss = sim.sum_rail(t.members, Rail::Gnd);
      worst = std::max(worst, t.peak());
    }
    if (round == 0) result.peak_before = worst;

    // Leaves in worst-tile-first order.
    std::vector<NodeId> order = tree.leaves();
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      return tiles[tile_of(tree.node(a).pos, opts.tile)].peak() >
             tiles[tile_of(tree.node(b).pos, opts.tile)].peak();
    });

    int moves_this_round = 0;
    for (const NodeId leaf : order) {
      TreeNode& node = tree.node(leaf);
      if (node.cell->adjustable() || !node.xor_negative.empty()) {
        continue;
      }
      TileRef& tile = tiles[tile_of(node.pos, opts.tile)];
      const Waveform old_idd =
          sim.sum_rail(std::vector<NodeId>{leaf}, Rail::Vdd);
      const Waveform old_iss =
          sim.sum_rail(std::vector<NodeId>{leaf}, Rail::Gnd);

      const Cell* best_cell = node.cell;
      double best_peak = tile.peak();
      Waveform best_idd, best_iss;

      const bool neg_input =
          node.parent != kNoNode &&
          tree.output_polarity(node.parent) == Polarity::Negative;
      for (const Cell* cand : candidates) {
        if (cand == node.cell || cand->adjustable()) continue;
        // Trial: swap, check skew, evaluate the tile incrementally.
        const Cell* saved = node.cell;
        tree.set_cell(leaf, cand);
        if (compute_arrivals(tree).skew() > opts.kappa) {
          tree.set_cell(leaf, saved);
          continue;
        }
        const DriveConditions dc{tree.load_of(leaf), sim.slew_in(leaf),
                                 modes.vdd(0, node.island),
                                 modes.temp(0, node.island)};
        const CellWave cw = simulate_cell(*cand, dc, period, opts.dt);
        const Ps shift =
            sim.input_arrival(leaf) + (neg_input ? 0.5 * period : 0.0);
        const Waveform new_idd =
            fold_pulse(cw.idd, shift, period, opts.dt);
        const Waveform new_iss =
            fold_pulse(cw.iss, shift, period, opts.dt);
        const Waveform trial_idd = combine(tile.idd, old_idd, new_idd);
        const Waveform trial_iss = combine(tile.iss, old_iss, new_iss);
        const double trial_peak =
            std::max(trial_idd.peak(), trial_iss.peak());
        if (trial_peak < best_peak - 1e-6) {
          best_peak = trial_peak;
          best_cell = cand;
          best_idd = trial_idd;
          best_iss = trial_iss;
        }
        tree.set_cell(leaf, saved);
      }

      if (best_cell != node.cell) {
        tree.set_cell(leaf, best_cell);
        tile.idd = best_idd;
        tile.iss = best_iss;
        ++moves_this_round;
      }
    }
    result.moves += moves_this_round;
    WM_LOG(Info) << "refine round " << round << ": "
                 << moves_this_round << " accepted swaps";
    if (moves_this_round == 0) break;
  }

  // Honest final measurement with a fresh full simulation.
  TreeSimOptions so;
  so.dt = opts.dt;
  const TreeSim final_sim(tree, modes, 0, so);
  std::map<std::pair<int, int>, std::vector<NodeId>> members;
  for (const TreeNode& n : tree.nodes()) {
    members[tile_of(n.pos, opts.tile)].push_back(n.id);
  }
  for (const auto& [key, ids] : members) {
    (void)key;
    const double p =
        std::max(final_sim.sum_rail(ids, Rail::Vdd).peak(),
                 final_sim.sum_rail(ids, Rail::Gnd).peak());
    result.peak_after = std::max(result.peak_after, p);
  }

  result.runtime_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  return result;
}

} // namespace wm
