#pragma once
// Preprocessing: per-sink assignment candidates and their per-mode
// arrival times (paper Sec. IV, "Step 1" of the PeakMin review, extended
// to multiple power modes).
//
// For every leaf (sink) we enumerate the cells it may be assigned to and
// the resulting per-mode output arrival times:
//   * a normal leaf may take any cell of the assignment library
//     (BUF_X8/BUF_X16/INV_X8/INV_X16 in the experiments) but may NOT
//     become an ADB/ADI (area, Sec. VI);
//   * a leaf holding an allocator-placed ADB may stay an ADB or swap to
//     an ADI with its per-mode codes reduced to absorb the ADI's longer
//     intrinsic delay (Fig. 13's restriction); it may NOT go back to a
//     normal buffer (the ADB is required for skew legality).
//
// Per Observation 4 the input arrival of a sink is taken from the
// current tree (sizing a sink does not move its siblings).

#include <cstdint>
#include <vector>

#include "cells/characterizer.hpp"
#include "core/options.hpp"
#include "timing/power_mode.hpp"
#include "tree/clock_tree.hpp"
#include "tree/zone.hpp"

namespace wm {

struct Candidate {
  const Cell* cell = nullptr;
  std::vector<Ps> arrival;    ///< output arrival per mode
  std::vector<int> adj_codes; ///< per-mode codes (adjustable cells only)
  /// XOR-reconfigurable candidates only: per-mode polarity selection
  /// (1 = negative in that mode). Empty for static cells.
  std::vector<std::uint8_t> xor_negative;
  Ps cell_extra_delay = 0.0;  ///< XOR gate delay (identical per mode)
};

struct SinkInfo {
  NodeId id = kNoNode;
  Ff load = 0.0;
  int island = 0;
  int zone = -1;                   ///< index into ZoneMap::zones()
  bool input_negative = false;     ///< polarity of the clock at the input
  std::vector<Ps> input_arrival;   ///< per mode
  std::vector<Ps> slew_in;         ///< per mode (propagated input slew)
  std::vector<std::uint8_t> gated;  ///< per mode: leaf clock-gated off
  std::vector<Candidate> candidates;
};

struct NonLeafInfo {
  NodeId id = kNoNode;
  const Cell* cell = nullptr;
  Point pos;
  Ff load = 0.0;
  int island = 0;
  bool input_negative = false;
  std::vector<Ps> input_arrival;  ///< per mode
  std::vector<Ps> extra_delay;    ///< per mode (configured ADB codes)
};

struct Preprocessed {
  std::vector<SinkInfo> sinks;
  std::vector<NonLeafInfo> non_leaves;
  /// Sorted unique candidate arrival times per mode (the dots of Fig. 6).
  std::vector<std::vector<Ps>> arrival_grid;
  std::size_t mode_count = 0;
};

struct XorCandidateOptions {
  Ps xor_delay = 6.0;
  const Cell* base_cell = nullptr;
};

/// Run the preprocessing over the tree's current state.
/// If `xor_opts` is non-null, XOR-reconfigurable candidates are added
/// for every normal leaf (requires <= 5 power modes: 2^M vectors).
Preprocessed preprocess(const ClockTree& tree, const ZoneMap& zones,
                        const ModeSet& modes,
                        const std::vector<const Cell*>& assignable,
                        const Characterizer& chr,
                        const CellLibrary& lib,
                        const XorCandidateOptions* xor_opts = nullptr);

} // namespace wm
