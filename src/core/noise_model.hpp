#pragma once
// Construction of the per-zone MOSP instance (paper Sec. V-B, Fig. 9,
// Algorithm 1).
//
// Rows are the zone's sinks; a row's vertices are the candidates that
// survive the feasible intersection; vertex weights are the candidates'
// noise contributions at every sampling slot; the dest weight carries
// the non-leaf buffering elements' contribution (Observation 1).
//
// Two ablation flags (DESIGN.md D2/D3):
//   * include_nonleaf=false zeroes the dest weight;
//   * shift_by_arrival=false aligns every sink's pulse at the zone's
//     mean arrival (the arrival-unaware behaviour of prior work).

#include <vector>

#include "cells/characterizer.hpp"
#include "core/candidates.hpp"
#include "core/intervals.hpp"
#include "core/options.hpp"
#include "core/sampling.hpp"
#include "mosp/graph.hpp"
#include "timing/power_mode.hpp"
#include "tree/zone.hpp"

namespace wm {

MospGraph build_zone_mosp(const Preprocessed& p,
                          const std::vector<std::size_t>& zone_sinks,
                          const Zone& zone, const Intersection& x,
                          const Characterizer& chr, const ModeSet& modes,
                          const std::vector<SampleSlot>& slots,
                          const WaveMinOptions& opts);

} // namespace wm
