#include "core/candidates.hpp"

#include <algorithm>
#include <cmath>

#include "cells/electrical.hpp"
#include "timing/arrival.hpp"
#include "util/error.hpp"

namespace wm {

namespace {

bool input_is_negative(const ClockTree& tree, NodeId id) {
  const NodeId parent = tree.node(id).parent;
  if (parent == kNoNode) return false;
  return tree.output_polarity(parent) == Polarity::Negative;
}

void append_sorted_unique(std::vector<Ps>& grid, Ps v) {
  grid.push_back(v);
}

void finalize_grid(std::vector<Ps>& grid) {
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end(),
                         [](Ps a, Ps b) { return std::abs(a - b) < 0.01; }),
             grid.end());
}

} // namespace

Preprocessed preprocess(const ClockTree& tree, const ZoneMap& zones,
                        const ModeSet& modes,
                        const std::vector<const Cell*>& assignable,
                        const Characterizer& chr,
                        const CellLibrary& lib,
                        const XorCandidateOptions* xor_opts) {
  WM_REQUIRE(modes.count() >= 1, "need at least one power mode");
  WM_REQUIRE(!assignable.empty(), "assignment library is empty");
  (void)chr;  // delays use the analytic model directly; the LUT serves
              // only the noise queries (build_zone_mosp)

  Preprocessed p;
  p.mode_count = modes.count();
  p.arrival_grid.resize(p.mode_count);

  std::vector<ArrivalResult> arr;
  arr.reserve(p.mode_count);
  for (std::size_t m = 0; m < p.mode_count; ++m) {
    arr.push_back(compute_arrivals(tree, modes, m));
  }

  for (const TreeNode& n : tree.nodes()) {
    const auto ni = static_cast<std::size_t>(n.id);
    if (!n.is_leaf()) {
      NonLeafInfo info;
      info.id = n.id;
      info.cell = n.cell;
      info.pos = n.pos;
      info.load = tree.load_of(n.id);
      info.island = n.island;
      info.input_negative = input_is_negative(tree, n.id);
      for (std::size_t m = 0; m < p.mode_count; ++m) {
        info.input_arrival.push_back(arr[m].input_arrival[ni]);
        Ps extra = 0.0;
        if (n.cell->adjustable() && !n.adj_codes.empty()) {
          extra = n.cell->adj_step * static_cast<Ps>(n.adj_codes[m]);
        }
        info.extra_delay.push_back(extra);
      }
      p.non_leaves.push_back(std::move(info));
      continue;
    }

    SinkInfo si;
    si.id = n.id;
    si.load = tree.load_of(n.id);
    si.island = n.island;
    si.zone = zones.zone_of(n.id);
    si.input_negative = input_is_negative(tree, n.id);
    for (std::size_t m = 0; m < p.mode_count; ++m) {
      si.input_arrival.push_back(arr[m].input_arrival[ni]);
      si.slew_in.push_back(arr[m].slew_in[ni]);
      si.gated.push_back(modes.gated(m, n.island) ? 1 : 0);
    }

    if (n.cell->adjustable()) {
      // Allocator-placed ADB: stay, or swap to the same-drive ADI.
      WM_REQUIRE(n.adj_codes.size() == p.mode_count,
                 "ADB leaf lacks per-mode codes");
      Candidate stay;
      stay.cell = n.cell;
      stay.adj_codes = n.adj_codes;
      for (std::size_t m = 0; m < p.mode_count; ++m) {
        const Volt vdd = modes.vdd(m, n.island);
        const DriveConditions dc{si.load, si.slew_in[m], vdd,
                                 modes.temp(m, n.island)};
        const Ps d = cell_timing(*n.cell, dc).delay() +
                     n.cell->adj_step * static_cast<Ps>(n.adj_codes[m]);
        stay.arrival.push_back(si.input_arrival[m] + d);
      }
      si.candidates.push_back(std::move(stay));

      const Cell* adi =
          lib.find("ADI_X" + std::to_string(n.cell->drive));
      if (adi != nullptr) {
        Candidate swap;
        swap.cell = adi;
        bool ok = true;
        for (std::size_t m = 0; m < p.mode_count; ++m) {
          const Volt vdd = modes.vdd(m, n.island);
          const DriveConditions dc{si.load, si.slew_in[m], vdd,
                                   modes.temp(m, n.island)};
          const Ps d_adb = cell_timing(*n.cell, dc).delay();
          const Ps d_adi = cell_timing(*adi, dc).delay();
          // Absorb the ADI's longer intrinsic delay by lowering the
          // code; infeasible if the code would go negative (this is why
          // only a fraction of ADBs become ADIs, Sec. VII-E).
          const int delta_steps = static_cast<int>(
              std::ceil((d_adi - d_adb) / adi->adj_step - 1e-9));
          const int code = n.adj_codes[m] - delta_steps;
          if (code < 0 || code > adi->adj_max_code) {
            ok = false;
            break;
          }
          swap.adj_codes.push_back(code);
          swap.arrival.push_back(si.input_arrival[m] + d_adi +
                                 adi->adj_step * static_cast<Ps>(code));
        }
        if (ok) si.candidates.push_back(std::move(swap));
      }
    } else {
      for (const Cell* cell : assignable) {
        if (cell->adjustable()) continue;  // non-ADBs may not become ADBs
        Candidate c;
        c.cell = cell;
        for (std::size_t m = 0; m < p.mode_count; ++m) {
          const Volt vdd = modes.vdd(m, n.island);
          const DriveConditions dc{si.load, si.slew_in[m], vdd,
                                   modes.temp(m, n.island)};
          c.arrival.push_back(si.input_arrival[m] +
                              cell_timing(*cell, dc).delay());
        }
        si.candidates.push_back(std::move(c));
      }

      if (xor_opts != nullptr) {
        // XOR-reconfigurable candidates ([30],[31]): one per polarity
        // vector over the modes. The XOR gate costs a fixed delay in
        // every mode; the base cell stays a non-inverting buffer and
        // the per-mode flip is realized as a half-period phase shift.
        WM_REQUIRE(p.mode_count <= 5,
                   "XOR polarity vectors limited to 5 modes (2^M)");
        const Cell* base = xor_opts->base_cell != nullptr
                               ? xor_opts->base_cell
                               : &lib.by_name("BUF_X16");
        std::vector<Ps> arrival;
        for (std::size_t m = 0; m < p.mode_count; ++m) {
          const Volt vdd = modes.vdd(m, n.island);
          const DriveConditions dc{si.load, si.slew_in[m], vdd,
                                   modes.temp(m, n.island)};
          arrival.push_back(si.input_arrival[m] +
                            cell_timing(*base, dc).delay() +
                            xor_opts->xor_delay);
        }
        const std::uint32_t vectors = 1u << p.mode_count;
        for (std::uint32_t v = 0; v < vectors; ++v) {
          Candidate c;
          c.cell = base;
          c.arrival = arrival;
          c.cell_extra_delay = xor_opts->xor_delay;
          for (std::size_t m = 0; m < p.mode_count; ++m) {
            c.xor_negative.push_back(
                static_cast<std::uint8_t>((v >> m) & 1u));
          }
          si.candidates.push_back(std::move(c));
        }
      }
    }

    WM_ASSERT(!si.candidates.empty(), "sink has no candidates");
    WM_REQUIRE(si.candidates.size() <= 32,
               "candidate masks are limited to 32 cells per sink");
    for (const Candidate& c : si.candidates) {
      for (std::size_t m = 0; m < p.mode_count; ++m) {
        append_sorted_unique(p.arrival_grid[m], c.arrival[m]);
      }
    }
    p.sinks.push_back(std::move(si));
  }

  for (auto& grid : p.arrival_grid) finalize_grid(grid);
  return p;
}

} // namespace wm
