#pragma once
// Single bridge from the flow-level WaveMinOptions to the inner MOSP
// solver: both the main flow (core/wavemin.cpp) and the ECO flow
// (core/eco.cpp) used to hand-copy the solver fields, which is exactly
// how a newly added knob (e.g. the run budget) drifts out of one of
// them. Keep every WaveMinOptions -> MospSolverOptions mapping here.

#include "core/options.hpp"
#include "mosp/solver.hpp"

namespace wm {

/// Map the flow options onto the inner-solver options. `budget` (may be
/// null) is the run's shared tracker; it overrides opts.budget_tracker.
MospSolverOptions to_solver_options(const WaveMinOptions& opts,
                                    BudgetTracker* budget = nullptr);

/// Run the solver selected by opts.solver on `g`.
MospSolution dispatch_solve(const MospGraph& g, const WaveMinOptions& opts,
                            MospStats* stats = nullptr,
                            BudgetTracker* budget = nullptr);

} // namespace wm
