#pragma once
// ClkWaveMin-M — the multi-power-mode flow (paper Sec. VI, Fig. 13).
//
// 1. If polarity assignment + sizing alone can satisfy the skew bound in
//    every mode (a feasible intersection exists), run the multi-mode
//    WaveMin optimization directly.
// 2. Otherwise insert ADBs first (adb/allocation.hpp) to restore skew
//    legality, then re-run the optimization with the adjustable cells in
//    the library: allocator-placed leaf ADBs may stay or become ADIs
//    (never plain buffers), normal leaves keep the plain library.

#include "adb/allocation.hpp"
#include "cells/characterizer.hpp"
#include "cells/library.hpp"
#include "core/options.hpp"
#include "core/wavemin.hpp"
#include "timing/power_mode.hpp"
#include "tree/clock_tree.hpp"

namespace wm {

struct WaveMinMResult {
  WaveMinResult opt;
  AdbAllocationResult adb;
  bool used_adb_flow = false;
  int adb_count = 0;  ///< adjustable buffers in the final tree
  int adi_count = 0;  ///< adjustable inverters in the final tree
};

WaveMinMResult clk_wavemin_m(ClockTree& tree, const CellLibrary& lib,
                             const Characterizer& chr, const ModeSet& modes,
                             const WaveMinOptions& opts);

/// Non-throwing result envelope for try_clk_wavemin_m.
struct [[nodiscard]] TryRunMResult {
  Status status;  ///< Ok also covers degraded runs — check
                  ///< result.opt.report.degraded()
  WaveMinMResult result;
};

/// Fault-tolerant multi-mode flow: never throws wm::Error. The whole
/// flow (sizing pass, ADB allocation, re-optimization) draws from ONE
/// budget tracker, so a deadline covers the flow end to end; zone
/// errors are quarantined per zone (see try_run_wavemin).
TryRunMResult try_clk_wavemin_m(ClockTree& tree, const CellLibrary& lib,
                                const Characterizer& chr,
                                const ModeSet& modes,
                                const WaveMinOptions& opts);

/// Count adjustable cells currently in the tree (leaf + non-leaf).
void count_adjustables(const ClockTree& tree, int* adbs, int* adis);

} // namespace wm
