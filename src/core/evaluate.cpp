#include "core/evaluate.hpp"

#include <algorithm>

#include "grid/power_grid.hpp"
#include "wave/tree_sim.hpp"

namespace wm {

Evaluation evaluate_design(const ClockTree& tree, const ModeSet& modes,
                           Ps dt) {
  Evaluation e;
  for (std::size_t m = 0; m < modes.count(); ++m) {
    TreeSimOptions so;
    so.dt = dt;
    const TreeSim sim(tree, modes, m, so);
    const UA peak = sim.peak_current();
    e.peak_by_mode.push_back(peak);
    e.peak_current = std::max(e.peak_current, peak);
    const GridNoiseResult gn = grid_noise(tree, sim);
    e.tile_peak_current = std::max(e.tile_peak_current, gn.tile_peak_current);
    e.vdd_noise = std::max(e.vdd_noise, gn.vdd_noise);
    e.gnd_noise = std::max(e.gnd_noise, gn.gnd_noise);
    e.worst_skew = std::max(e.worst_skew, sim.skew());
    if (m == 0) {
      // Average power: total charge per period through VDD times VDD
      // times the clock frequency. integral() is in uA*ps = 1e-18 C;
      // over a 1 ns period at VDD this lands in mW after scaling.
      const double q_fc = sim.total_idd().integral() * 1e-3;  // fC
      const double freq_ghz = 1000.0 / tech::kClockPeriod;
      e.avg_power_mw = q_fc * tech::kVddNominal * freq_ghz * 1e-3;
    }
  }
  return e;
}

Evaluation evaluate_design(const ClockTree& tree, Ps dt) {
  int max_island = 0;
  for (const TreeNode& n : tree.nodes()) {
    max_island = std::max(max_island, n.island);
  }
  return evaluate_design(tree, ModeSet::single(max_island + 1), dt);
}

} // namespace wm
