#include "core/checkpoint.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <string_view>
#include <system_error>
#include <unordered_set>

#include "fault/fault.hpp"
#include "io/tree_io.hpp"
#include "obs/metrics.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace wm::ck {

namespace {

// A checkpoint scales with the design (zones x sinks), never beyond it;
// anything larger is corrupt or hostile.
constexpr std::size_t kMaxCheckpointBytes = 1ull << 28;  // 256 MiB
constexpr std::size_t kMaxZoneEntries = 4'000'000;
constexpr std::size_t kMaxChoices = 1'000'000;

std::uint64_t fnv1a(const void* data, std::size_t n,
                    std::uint64_t h = 1469598103934665603ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t fnv1a_str(const std::string& s, std::uint64_t h) {
  return fnv1a(s.data(), s.size(), h);
}

template <typename T>
std::uint64_t fnv1a_pod(const T& v, std::uint64_t h) {
  return fnv1a(&v, sizeof v, h);
}

[[noreturn]] void fail_at(std::size_t line_no, const std::string& msg) {
  throw Error("wmck line " + std::to_string(line_no) + ": " + msg);
}

/// Percent-escape so an error message survives the whitespace-separated
/// record format ('%', ' ', tab, CR, LF).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '%': out += "%25"; break;
      case ' ': out += "%20"; break;
      case '\t': out += "%09"; break;
      case '\r': out += "%0d"; break;
      case '\n': out += "%0a"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescape(const std::string& s, std::size_t line_no) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out += s[i];
      continue;
    }
    if (i + 2 >= s.size()) fail_at(line_no, "truncated %-escape");
    const auto hex = [&](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      fail_at(line_no, std::string("bad %-escape digit '") + c + "'");
    };
    out += static_cast<char>(hex(s[i + 1]) * 16 + hex(s[i + 2]));
    i += 2;
  }
  return out;
}

std::uint64_t parse_u64(const std::string& tok, std::size_t line_no,
                        const char* what, int base = 10) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(tok.c_str(), &end, base);
  if (tok.empty() || end != tok.c_str() + tok.size()) {
    fail_at(line_no, std::string("bad ") + what + " ('" + tok + "')");
  }
  return v;
}

double parse_finite(const std::string& tok, std::size_t line_no,
                    const char* what) {
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (tok.empty() || end != tok.c_str() + tok.size() ||
      !std::isfinite(v)) {
    fail_at(line_no, std::string("bad ") + what + " ('" + tok + "')");
  }
  return v;
}

} // namespace

std::uint64_t options_fingerprint(const WaveMinOptions& opts,
                                  const ClockTree& tree,
                                  const CellLibrary& lib,
                                  const ModeSet& modes) {
  std::uint64_t h = fnv1a_str(tree_to_string(tree),
                              1469598103934665603ULL);
  h = fnv1a_str(library_to_string(lib), h);
  h = fnv1a_pod(modes.count(), h);
  for (const double v : modes.distinct_vdds()) h = fnv1a_pod(v, h);
  for (const double t : modes.distinct_temps()) h = fnv1a_pod(t, h);
  // Every option that changes zone solutions. The budget, thread count,
  // verify hooks and metrics knobs are deliberately excluded: they
  // change how much gets solved, never what a solved zone contains.
  h = fnv1a_pod(opts.kappa, h);
  h = fnv1a_pod(opts.skew_guard_band, h);
  h = fnv1a_pod(opts.samples, h);
  h = fnv1a_pod(static_cast<int>(opts.solver), h);
  h = fnv1a_pod(opts.epsilon, h);
  h = fnv1a_pod(opts.max_labels, h);
  h = fnv1a_pod(opts.include_nonleaf, h);
  h = fnv1a_pod(opts.shift_by_arrival, h);
  h = fnv1a_pod(opts.zone_tile, h);
  h = fnv1a_pod(opts.dof_beam, h);
  h = fnv1a_pod(opts.period, h);
  h = fnv1a_pod(opts.enable_xor_polarity, h);
  if (opts.enable_xor_polarity) {
    h = fnv1a_pod(opts.xor_delay, h);
    h = fnv1a_str(opts.xor_base_cell, h);
  }
  return h;
}

std::string to_string(const Checkpoint& c) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "wmck v1\n";
  os << "opts " << std::hex << std::setw(16) << std::setfill('0')
     << c.options_hash << std::dec << std::setfill(' ') << '\n';
  os << "seed " << c.seed << '\n';
  for (const ZoneEntry& z : c.zones) {
    os << "zone " << z.key << ' ' << z.ladder << ' '
       << (z.beam_capped ? 1 : 0) << ' ' << z.worst << ' '
       << z.elapsed_ms << ' ' << z.choice.size();
    for (const int ch : z.choice) os << ' ' << ch;
    if (!z.error.empty()) os << " err " << escape(z.error);
    os << '\n';
  }
  std::string body = os.str();
  const std::uint32_t crc = crc32(body.data(), body.size());
  std::ostringstream trailer;
  trailer << "crc " << std::hex << std::setw(8) << std::setfill('0')
          << crc << '\n';
  return body + trailer.str();
}

Checkpoint from_string(const std::string& text) {
  WM_REQUIRE(text.size() <= kMaxCheckpointBytes,
             "oversized checkpoint (" + std::to_string(text.size()) +
                 " bytes, limit " + std::to_string(kMaxCheckpointBytes) +
                 ")");
  // Split off the trailer: the last non-empty line must be "crc <hex8>"
  // and the CRC covers every byte before that line.
  const auto last_nl = text.find_last_of('\n', text.size() - 1);
  std::size_t trailer_pos = std::string::npos;
  if (!text.empty() && last_nl == text.size() - 1) {
    trailer_pos = text.find_last_of('\n', text.size() - 2);
    trailer_pos = trailer_pos == std::string::npos ? 0 : trailer_pos + 1;
  }
  if (trailer_pos == std::string::npos ||
      text.compare(trailer_pos, 4, "crc ") != 0) {
    throw Error("wmck: missing crc trailer (truncated checkpoint?)");
  }
  const std::string crc_tok = [&] {
    std::string t = text.substr(trailer_pos + 4);
    while (!t.empty() && (t.back() == '\n' || t.back() == '\r')) {
      t.pop_back();
    }
    return t;
  }();
  const auto want_crc =
      static_cast<std::uint32_t>(parse_u64(crc_tok, 0, "crc", 16));
  const std::uint32_t got_crc = crc32(text.data(), trailer_pos);
  if (want_crc != got_crc) {
    std::ostringstream os;
    os << "wmck: crc mismatch (file " << std::hex << std::setw(8)
       << std::setfill('0') << want_crc << ", computed " << std::setw(8)
       << got_crc << ") — corrupted checkpoint";
    throw Error(os.str());
  }

  std::istringstream is(text.substr(0, trailer_pos));
  std::string line;
  std::size_t line_no = 0;
  Checkpoint c;

  WM_REQUIRE(std::getline(is, line), "empty wmck input");
  ++line_no;
  if (line != "wmck v1") {
    fail_at(line_no, "not a wmck v1 file (header: '" + line + "')");
  }

  bool saw_opts = false;
  bool saw_seed = false;
  std::unordered_set<std::uint64_t> seen_keys;
  while (std::getline(is, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string rec;
    if (!(ls >> rec)) continue;
    if (rec == "opts") {
      std::string tok;
      if (!(ls >> tok)) fail_at(line_no, "missing opts hash");
      c.options_hash = parse_u64(tok, line_no, "opts hash", 16);
      saw_opts = true;
    } else if (rec == "seed") {
      std::string tok;
      if (!(ls >> tok)) fail_at(line_no, "missing seed");
      c.seed = parse_u64(tok, line_no, "seed");
      saw_seed = true;
    } else if (rec == "zone") {
      if (c.zones.size() >= kMaxZoneEntries) {
        fail_at(line_no, "too many zone entries (limit " +
                             std::to_string(kMaxZoneEntries) + ")");
      }
      ZoneEntry z;
      std::string key_tok, ladder_tok, beam_tok, worst_tok, ms_tok,
          n_tok;
      if (!(ls >> key_tok >> ladder_tok >> beam_tok >> worst_tok >>
            ms_tok >> n_tok)) {
        fail_at(line_no, "truncated zone record");
      }
      z.key = parse_u64(key_tok, line_no, "zone key");
      const std::uint64_t ladder =
          parse_u64(ladder_tok, line_no, "ladder");
      if (ladder > 2) fail_at(line_no, "ladder out of range");
      z.ladder = static_cast<int>(ladder);
      const std::uint64_t beam = parse_u64(beam_tok, line_no, "beam");
      if (beam > 1) fail_at(line_no, "beam flag out of range");
      z.beam_capped = beam == 1;
      z.worst = parse_finite(worst_tok, line_no, "worst");
      z.elapsed_ms = parse_finite(ms_tok, line_no, "elapsed_ms");
      const std::uint64_t n = parse_u64(n_tok, line_no, "choice count");
      if (n > kMaxChoices) {
        fail_at(line_no, "too many choices (limit " +
                             std::to_string(kMaxChoices) + ")");
      }
      z.choice.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < n; ++i) {
        std::string tok;
        if (!(ls >> tok)) fail_at(line_no, "truncated choice list");
        const long long v = static_cast<long long>(
            parse_u64(tok, line_no, "choice"));
        z.choice.push_back(static_cast<int>(v));
      }
      std::string tok;
      if (ls >> tok) {
        if (tok != "err") {
          fail_at(line_no, "unexpected trailing token: " + tok);
        }
        std::string esc;
        if (!(ls >> esc)) fail_at(line_no, "missing err text");
        z.error = unescape(esc, line_no);
        if (ls >> tok) {
          fail_at(line_no, "unexpected trailing token: " + tok);
        }
      }
      if (!seen_keys.insert(z.key).second) {
        fail_at(line_no,
                "duplicate zone key " + std::to_string(z.key));
      }
      c.zones.push_back(std::move(z));
    } else {
      fail_at(line_no, "unexpected record '" + rec + "'");
    }
  }
  if (!saw_opts) throw Error("wmck: missing opts record");
  if (!saw_seed) throw Error("wmck: missing seed record");
  return c;
}

std::size_t clean_stale_tmps(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return 0;
  std::size_t removed = 0;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    constexpr std::string_view kSuffix = ".wmck.tmp";
    if (name.size() < kSuffix.size() ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                     kSuffix) != 0) {
      continue;
    }
    if (std::remove(entry.path().string().c_str()) == 0) ++removed;
  }
  if (removed > 0) {
    obs::add(obs::global(), "ck.stale_tmp_removed", removed);
    WM_LOG(Info) << "ck: removed " << removed
                 << " stale checkpoint tmp file(s) from " << dir;
  }
  return removed;
}

void save(const std::string& path, const Checkpoint& c) {
  fault::inject("ck.write");
  const std::string tmp = path + ".tmp";
  // A leftover tmp from a writer that died between open and rename is
  // dead weight (resume only ever reads the renamed file) — drop it
  // before writing so it cannot outlive this run either.
  if (std::remove(tmp.c_str()) == 0) {
    obs::add(obs::global(), "ck.stale_tmp_removed");
  }
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    WM_REQUIRE(static_cast<bool>(os),
               "cannot open for write: " + tmp);
    os << to_string(c);
    os.flush();
    if (!os) {
      std::remove(tmp.c_str());
      throw Error("write failed: " + tmp);
    }
  }
  // POSIX rename within one directory is atomic: a concurrent reader
  // (or a resume after SIGKILL mid-write) sees the old complete file or
  // the new one, never a prefix.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("cannot rename " + tmp + " -> " + path);
  }
  fault::inject("ck.kill_after_write");
  // The wedge twin of kill_after_write: the checkpoint is durable but
  // the worker never makes progress again — exactly what the serving
  // daemon's hung-worker watchdog exists to SIGKILL (docs/serving.md).
  fault::inject("ck.hang_after_write");
}

std::size_t sweep_orphans(const std::string& dir,
                          const std::vector<std::string>& suffixes,
                          const std::vector<std::string>& keep_stems) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return 0;
  std::size_t removed = 0;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    for (const std::string& suffix : suffixes) {
      if (name.size() <= suffix.size() ||
          name.compare(name.size() - suffix.size(), suffix.size(),
                       suffix) != 0) {
        continue;
      }
      const std::string stem = name.substr(0, name.size() - suffix.size());
      bool keep = false;
      for (const std::string& live : keep_stems) {
        if (stem == live) {
          keep = true;
          break;
        }
      }
      if (!keep && std::remove(entry.path().string().c_str()) == 0) {
        ++removed;
      }
      break;  // a name matches at most one suffix
    }
  }
  if (removed > 0) {
    WM_LOG(Info) << "ck: removed " << removed
                 << " orphaned spool file(s) from " << dir;
  }
  return removed;
}

Checkpoint load(const std::string& path,
                std::uint64_t expect_options_hash) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  WM_REQUIRE(static_cast<bool>(is), "cannot open checkpoint: " + path);
  const auto size = static_cast<std::uint64_t>(is.tellg());
  WM_REQUIRE(size <= kMaxCheckpointBytes,
             "oversized checkpoint (" + std::to_string(size) +
                 " bytes): " + path);
  is.seekg(0);
  std::string text(static_cast<std::size_t>(size), '\0');
  is.read(text.data(), static_cast<std::streamsize>(size));
  WM_REQUIRE(static_cast<bool>(is), "read failed: " + path);
  try {
    Checkpoint c = from_string(text);
    if (c.options_hash != expect_options_hash) {
      std::ostringstream os;
      os << "stale checkpoint: options/design fingerprint " << std::hex
         << c.options_hash << " does not match this run's "
         << expect_options_hash
         << " (tree, library, modes or solver options changed)";
      throw Error(os.str());
    }
    return c;
  } catch (const Error& e) {
    throw Error(path + ": " + e.what());
  }
}

} // namespace wm::ck
