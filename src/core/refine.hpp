#pragma once
// Simulation-in-the-loop local refinement.
//
// The optimizer works from the characterization lookup table; the
// validator disagrees with it slightly (quantized loads, frozen slew —
// the Sec. VII-C gap). The oracle studies in EXPERIMENTS.md show the
// LUT-guided assignment captures only part of the achievable headroom.
// This post-pass closes some of the rest the expensive-but-honest way:
// greedy coordinate descent on the *validated* tile-local peaks.
//
// For each leaf (worst tiles first), try its alternative candidates
// that keep the skew bound; re-simulate the affected tile; keep the
// best. A full TreeSim per trial would be wasteful, so trials reuse the
// one-cell-changed incremental evaluation: only the changed leaf's
// pulse and its tile sum are recomputed (the Observation-4 premise —
// siblings' waveforms barely move — is exactly what makes this sound,
// and the final full simulation verifies it).

#include "cells/characterizer.hpp"
#include "cells/library.hpp"
#include "core/options.hpp"
#include "timing/power_mode.hpp"
#include "tree/clock_tree.hpp"

namespace wm {

struct RefineOptions {
  int max_rounds = 2;      ///< full passes over the leaves
  Ps kappa = 20.0;         ///< skew bound to preserve
  Ps dt = 1.0;             ///< simulation grid for the trials
  Um tile = tech::kZoneSize;
};

struct RefineResult {
  int moves = 0;            ///< accepted cell swaps
  UA peak_before = 0.0;     ///< worst tile-local peak (validated)
  UA peak_after = 0.0;
  double runtime_ms = 0.0;
};

/// Refine an already-assigned tree against the validation simulator.
/// Only plain (non-adjustable, non-XOR) leaves are touched; candidates
/// come from `lib.assignment_library()`. Single-mode designs only.
RefineResult refine_with_simulation(ClockTree& tree,
                                    const CellLibrary& lib,
                                    const ModeSet& modes,
                                    RefineOptions opts = {});

} // namespace wm
