#pragma once
// RunReport — per-zone account of what the fault-tolerant run layer did
// (docs/robustness.md). Returned inside WaveMinResult so a caller can
// tell a clean optimum from a budget-degraded one without parsing logs.
//
// Degradation ladder (applied per zone, best rung first):
//   Full     — the configured solver (Warburton/exact/...) ran to
//              completion on the zone's MOSP instance;
//   Greedy   — the budget tripped mid-DP, the solver returned its
//              greedy incumbent (the ClkWaveMin-f solution, Sec. V-C):
//              still a modeled, feasible assignment, just not Pareto-
//              searched;
//   Identity — no solve at all: every sink takes its first surviving
//              candidate of the chosen intersection. Feasible w.r.t.
//              the skew bound by construction (the intersection masks
//              encode exactly the in-window candidates), but its noise
//              peak is not modeled (reported as 0).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace wm {

enum class LadderLevel {
  Full = 0,
  Greedy = 1,
  Identity = 2,
};

const char* to_string(LadderLevel level);

struct ZoneRunReport {
  std::size_t zone = 0;    ///< index into ZoneMap::zones()
  std::size_t sinks = 0;   ///< leaves assigned in this zone
  LadderLevel ladder = LadderLevel::Full;
  bool beam_capped = false;   ///< max_labels truncated the Pareto search
  double elapsed_ms = 0.0;    ///< wall time of this zone's solve
  std::string error;          ///< quarantined wm::Error text (if any)
};

struct RunReport {
  /// One entry per nonempty zone, for the *chosen* intersection.
  std::vector<ZoneRunReport> zones;

  bool deadline_hit = false;      ///< wall-clock budget tripped
  bool label_budget_hit = false;  ///< global label pool exhausted
  bool cancelled = false;         ///< BudgetTracker::cancel() observed
  std::uint64_t labels_consumed = 0;
  /// Feasible intersections left unevaluated when the budget tripped.
  std::size_t intersections_skipped = 0;
  /// Zones whose wm::Error was quarantined (fault-tolerant mode only).
  std::size_t quarantined_errors = 0;
  /// Zone solutions preloaded from a --resume checkpoint (their solves
  /// were skipped); 0 on a fresh run.
  std::size_t resumed_zones = 0;
  /// The run seed (WaveMinOptions::seed), recorded so a degraded run is
  /// reproducible from the artifact alone.
  std::uint64_t seed = 0;
  /// Serving-layer job id (WaveMinOptions::job_id): ties this report —
  /// and every log line and checkpoint derived from it — back to the
  /// submitted job. Empty outside the serve flow.
  std::string job_id;

  /// Any zone below Full, any quarantined error, or any budget trip.
  bool degraded() const;
  std::size_t zones_at(LadderLevel level) const;
  std::size_t beam_capped_zones() const;

  /// Human-readable multi-line summary (CLI --verbose / degraded runs).
  std::string summary() const;
};

} // namespace wm
