#pragma once
// Incremental (ECO) re-optimization.
//
// Late design changes — a moved flip-flop bank, a resized macro, an
// added sink — invalidate the polarity assignment only locally, because
// power/ground noise is a local effect (the zone premise of the whole
// method). This module re-runs the WaveMin zone optimization only for
// the zones touched by a change, keeping every other zone's assignment
// frozen. Typical ECO turnaround is the cost of a handful of zone
// solves instead of the full interval sweep.
//
// Scope/contract:
//   * the tree topology is the current one (apply your edit first);
//   * the frozen zones' cells are kept verbatim — their arrivals still
//     participate in the feasibility windows, so the skew bound holds
//     across the whole design, not just the re-optimized part;
//   * returns which zones were re-solved and the model peak over them.

#include <vector>

#include "cells/characterizer.hpp"
#include "cells/library.hpp"
#include "core/options.hpp"
#include "core/wavemin.hpp"
#include "timing/power_mode.hpp"
#include "tree/clock_tree.hpp"

namespace wm {

struct EcoResult {
  bool success = false;
  std::size_t zones_touched = 0;   ///< zones containing a changed node
  std::size_t zones_total = 0;
  double model_peak = 0.0;         ///< worst re-solved zone (uA)
  double runtime_ms = 0.0;
  /// DP effort across the re-solved zones (ECO is a hot loop for the
  /// co-optimization direction — ROADMAP item 5 — so the label kernel's
  /// work and the pre-DP pruning win are surfaced per call).
  std::size_t labels_created = 0;
  std::size_t labels_pruned_pre = 0;
};

/// Re-optimize only the zones containing (or adjacent to, within one
/// tile ring) the given changed nodes. `changed` may list any node ids;
/// non-leaves select the zones of the leaves beneath them.
EcoResult eco_reoptimize(ClockTree& tree, const CellLibrary& lib,
                         const Characterizer& chr, const ModeSet& modes,
                         const std::vector<NodeId>& changed,
                         const WaveMinOptions& opts);

} // namespace wm
