#include "core/noise_model.hpp"

#include <cmath>

#include "util/error.hpp"

namespace wm {

namespace {

/// Mean input arrival per mode over the zone's sinks — the common pulse
/// position used when arrival-shift awareness is disabled.
std::vector<Ps> zone_reference_arrival(
    const Preprocessed& p, const std::vector<std::size_t>& zone_sinks) {
  std::vector<Ps> ref(p.mode_count, 0.0);
  for (std::size_t m = 0; m < p.mode_count; ++m) {
    for (std::size_t s : zone_sinks) {
      ref[m] += p.sinks[s].input_arrival[m];
    }
    ref[m] /= static_cast<Ps>(zone_sinks.size());
  }
  return ref;
}

} // namespace

MospGraph build_zone_mosp(const Preprocessed& p,
                          const std::vector<std::size_t>& zone_sinks,
                          const Zone& zone, const Intersection& x,
                          const Characterizer& chr, const ModeSet& modes,
                          const std::vector<SampleSlot>& slots,
                          const WaveMinOptions& opts) {
  WM_REQUIRE(!slots.empty(), "no sampling slots");
  const Ps half_period = 0.5 * opts.period;
  const std::vector<Ps> ref = zone_reference_arrival(p, zone_sinks);

  MospGraph g;
  g.dims = static_cast<int>(slots.size());
  g.rows.reserve(zone_sinks.size());

  for (std::size_t s : zone_sinks) {
    const SinkInfo& sink = p.sinks[s];
    const std::uint32_t mask = x.masks[s];
    std::vector<MospVertex> row;
    for (std::size_t c = 0; c < sink.candidates.size(); ++c) {
      if ((mask & (1u << c)) == 0) continue;
      const Candidate& cand = sink.candidates[c];
      MospVertex v;
      v.option = static_cast<int>(c);
      v.label = "e" + std::to_string(sink.id) + ":" + cand.cell->name;
      v.weight.reserve(slots.size());
      for (const SampleSlot& slot : slots) {
        if (!sink.gated.empty() && sink.gated[slot.mode]) {
          v.weight.push_back(0.0);  // gated off: no switching current
          continue;
        }
        const Volt vdd = modes.vdd(slot.mode, sink.island);
        Ps arr = opts.shift_by_arrival ? sink.input_arrival[slot.mode]
                                       : ref[slot.mode];
        bool negative = sink.input_negative;
        if (!cand.xor_negative.empty() && cand.xor_negative[slot.mode]) {
          negative = !negative;
        }
        if (negative) arr += half_period;
        Ps extra = cand.cell_extra_delay;
        if (!cand.adj_codes.empty()) {
          extra += cand.cell->adj_step *
                   static_cast<Ps>(cand.adj_codes[slot.mode]);
        }
        v.weight.push_back(chr.noise_in(
            *cand.cell, sink.load, vdd, slot.rail, arr, slot.lo, slot.hi,
            extra, modes.temp(slot.mode, sink.island)));
      }
      row.push_back(std::move(v));
    }
    WM_ASSERT(!row.empty(), "intersection left a sink without options");
    g.rows.push_back(std::move(row));
  }

  // Non-leaf contribution (Observation 1): every non-leaf buffering
  // element placed inside this zone tile adds its fixed waveform.
  g.dest_weight.assign(slots.size(), 0.0);
  if (opts.include_nonleaf) {
    const Um tile = opts.zone_tile;
    for (const NonLeafInfo& nl : p.non_leaves) {
      const int gx = static_cast<int>(std::floor(nl.pos.x / tile));
      const int gy = static_cast<int>(std::floor(nl.pos.y / tile));
      if (gx != zone.gx || gy != zone.gy) continue;
      for (std::size_t i = 0; i < slots.size(); ++i) {
        const SampleSlot& slot = slots[i];
        const Volt vdd = modes.vdd(slot.mode, nl.island);
        Ps arr = nl.input_arrival[slot.mode];
        if (nl.input_negative) arr += half_period;
        g.dest_weight[i] += chr.noise_in(
            *nl.cell, nl.load, vdd, slot.rail, arr, slot.lo, slot.hi,
            nl.extra_delay[slot.mode],
            modes.temp(slot.mode, nl.island));
      }
    }
  }
  return g;
}

} // namespace wm
