#include "core/wavemin.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>
#include <limits>
#include <unordered_map>

#include "core/intervals.hpp"
#include "core/noise_model.hpp"
#include "core/sampling.hpp"
#include "mosp/solver.hpp"
#include "obs/metrics.hpp"
#include "tree/zone.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "verify/verify.hpp"

namespace wm {

namespace {

MospSolution dispatch_solve(const MospGraph& g, const WaveMinOptions& o,
                            MospStats* stats) {
  MospSolverOptions so;
  so.epsilon = o.epsilon;
  so.max_labels = o.max_labels;
  switch (o.solver) {
    case SolverKind::Warburton: return solve_warburton(g, so, stats);
    case SolverKind::Greedy: return solve_greedy(g);
    case SolverKind::Exact: return solve_exact(g, so, stats);
    case SolverKind::Exhaustive: return solve_exhaustive(g);
  }
  return solve_warburton(g, so, stats);
}

obs::MetricsRegistry* metrics_for(const WaveMinOptions& o) {
  if (!o.collect_metrics) return nullptr;
  return o.metrics != nullptr ? o.metrics : obs::global();
}

/// Fold one zone solve's MOSP search statistics into the registry
/// (called from worker threads — counter/gauge ops are thread-safe).
void record_mosp_stats(obs::MetricsRegistry* m, const MospStats& st) {
  if (m == nullptr) return;
  m->add("mosp.labels_created", st.labels_created);
  m->add("mosp.labels_pruned_dominated", st.labels_pruned_dominated);
  m->add("mosp.labels_pruned_incumbent", st.labels_pruned_incumbent);
  m->add("mosp.labels_merged_grid", st.labels_merged_grid);
  if (st.beam_capped) m->add("mosp.beam_capped_solves");
  m->gauge_max("mosp.frontier_peak",
               static_cast<double>(st.frontier_peak));
}

std::size_t zone_mask_key(std::size_t zone_idx,
                          const std::vector<std::size_t>& zone_sinks,
                          const Intersection& x) {
  std::size_t h = 1469598103934665603ULL ^ zone_idx;
  for (std::size_t s : zone_sinks) {
    h ^= x.masks[s] + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

struct ZoneSolution {
  double worst = 0.0;
  std::vector<int> choice;  ///< candidate index per zone sink
};

} // namespace

WaveMinResult run_wavemin(ClockTree& tree, const CellLibrary& lib,
                          const Characterizer& chr, const ModeSet& modes,
                          const std::vector<const Cell*>& assignable,
                          const WaveMinOptions& opts) {
  const auto t0 = std::chrono::steady_clock::now();
  WaveMinResult result;

  obs::MetricsRegistry* m = metrics_for(opts);
  obs::ScopedPhase phase_run(m, "wavemin");
  obs::add(m, "wavemin.runs");
  obs::gauge_set(m, "wavemin.kappa", opts.kappa);
  obs::gauge_set(m, "wavemin.samples", static_cast<double>(opts.samples));

  const ZoneMap zones(tree, opts.zone_tile);
  result.zones = zones.zones().size();
  obs::gauge_set(m, "wavemin.zones",
                 static_cast<double>(zones.zones().size()));

  XorCandidateOptions xor_opts;
  if (opts.enable_xor_polarity) {
    xor_opts.xor_delay = opts.xor_delay;
    xor_opts.base_cell = lib.find(opts.xor_base_cell);
  }
  const Preprocessed pre = [&] {
    obs::ScopedPhase phase(m, "preprocess");
    // Check the inputs before preprocess() walks them: a corrupted tree
    // or library must surface as a diagnostic, not a crash deeper in.
    if (opts.verify_invariants) {
      obs::add(m, "verify.hooks_run");
      verify::enforce(verify::check_design(tree, lib, &zones),
                      "preprocess");
    }
    return preprocess(tree, zones, modes, assignable, chr, lib,
                      opts.enable_xor_polarity ? &xor_opts : nullptr);
  }();
  obs::add(m, "wavemin.sinks", pre.sinks.size());

  // Sink indices per zone, in pre.sinks order.
  std::vector<std::vector<std::size_t>> zone_sinks(zones.zones().size());
  for (std::size_t s = 0; s < pre.sinks.size(); ++s) {
    WM_ASSERT(pre.sinks[s].zone >= 0, "sink without a zone");
    zone_sinks[static_cast<std::size_t>(pre.sinks[s].zone)].push_back(s);
  }

  WM_REQUIRE(opts.skew_guard_band >= 0.0 &&
                 opts.skew_guard_band < opts.kappa,
             "guard band must be in [0, kappa)");
  const std::vector<Intersection> inters = [&] {
    obs::ScopedPhase phase(m, "intervals");
    std::vector<Intersection> xs = enumerate_intersections(
        pre, opts.kappa - opts.skew_guard_band, opts.dof_beam);
    if (opts.verify_invariants) {
      obs::add(m, "verify.hooks_run");
      verify::enforce(
          verify::check_intersections(pre, xs,
                                      opts.kappa - opts.skew_guard_band),
          "intervals");
    }
    return xs;
  }();
  result.intersections = inters.size();
  obs::add(m, "wavemin.intersections_feasible", inters.size());
  WM_LOG(Info) << "wavemin: " << pre.sinks.size() << " sinks, "
               << zones.zones().size() << " zones, " << inters.size()
               << " feasible intersections (kappa=" << opts.kappa
               << ", |S|=" << opts.samples << ")";
  if (inters.empty()) {
    result.runtime_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    return result;  // infeasible: skew bound unreachable by sizing alone
  }

  std::unordered_map<std::size_t, ZoneSolution> memo;
  double best_worst = std::numeric_limits<double>::max();
  const Intersection* best_x = nullptr;
  std::vector<std::vector<int>> best_choices;

  std::size_t nonempty_zones = 0;
  for (const auto& zs : zone_sinks) {
    if (!zs.empty()) ++nonempty_zones;
  }
  obs::add(m, "wavemin.zones_nonempty", nonempty_zones);

  const unsigned n_threads = std::max(1u, opts.threads);
  {
  obs::ScopedPhase phase_solve(m, "zone_solve");
  for (const Intersection& x : inters) {
    obs::add(m, "wavemin.intersections_evaluated");
    // Phase 1: solve the memo misses (optionally in parallel — zones
    // are independent subproblems).
    std::vector<std::size_t> misses;
    for (std::size_t z = 0; z < zones.zones().size(); ++z) {
      if (zone_sinks[z].empty()) continue;
      if (memo.find(zone_mask_key(z, zone_sinks[z], x)) == memo.end()) {
        misses.push_back(z);
      }
    }
    obs::add(m, "wavemin.zone_solves", misses.size());
    obs::add(m, "wavemin.zone_memo_hits", nonempty_zones - misses.size());
    // Zone MOSP verification reports are collected per miss and
    // enforced on the main thread only — workers must not throw.
    std::vector<verify::Report> mosp_reports(
        opts.verify_invariants ? misses.size() : 0);
    auto solve_zone = [&](std::size_t z, verify::Report* vr) {
      const obs::Nanos zt0 = m != nullptr ? m->now() : 0;
      const auto slots =
          build_slots(pre, zone_sinks[z], x, opts.samples, opts.period);
      const MospGraph g = build_zone_mosp(pre, zone_sinks[z],
                                          zones.zones()[z], x, chr,
                                          modes, slots, opts);
      if (vr != nullptr) *vr = verify::check_mosp(g, slots.size());
      MospStats mosp_stats;
      const MospSolution sol =
          dispatch_solve(g, opts, m != nullptr ? &mosp_stats : nullptr);
      ZoneSolution zs;
      zs.worst = sol.worst;
      zs.choice = sol.choice;
      if (m != nullptr) {
        obs::gauge_max(m, "mosp.dims", static_cast<double>(g.dims));
        record_mosp_stats(m, mosp_stats);
        m->histogram("wavemin.zone_solve_ms").record_ns(m->now() - zt0);
      }
      return zs;
    };
    auto report_for = [&](std::size_t i) {
      return opts.verify_invariants ? &mosp_reports[i] : nullptr;
    };
    if (n_threads <= 1 || misses.size() <= 1) {
      for (std::size_t i = 0; i < misses.size(); ++i) {
        const std::size_t z = misses[i];
        memo.emplace(zone_mask_key(z, zone_sinks[z], x),
                     solve_zone(z, report_for(i)));
      }
    } else {
      std::vector<ZoneSolution> solved(misses.size());
      std::mutex next_mutex;
      std::size_t next = 0;
      auto worker = [&] {
        while (true) {
          std::size_t i;
          {
            const std::lock_guard<std::mutex> lock(next_mutex);
            if (next >= misses.size()) return;
            i = next++;
          }
          solved[i] = solve_zone(misses[i], report_for(i));
        }
      };
      std::vector<std::thread> pool;
      const unsigned n = std::min<unsigned>(
          n_threads, static_cast<unsigned>(misses.size()));
      pool.reserve(n);
      for (unsigned t = 0; t < n; ++t) pool.emplace_back(worker);
      for (std::thread& t : pool) t.join();
      for (std::size_t i = 0; i < misses.size(); ++i) {
        memo.emplace(zone_mask_key(misses[i], zone_sinks[misses[i]], x),
                     std::move(solved[i]));
      }
    }
    if (opts.verify_invariants) {
      obs::add(m, "verify.hooks_run");
      verify::Report merged;
      for (const verify::Report& vr : mosp_reports) merged.merge(vr);
      verify::enforce(merged, "zone-mosp");
    }

    // Phase 2: aggregate.
    double global_worst = 0.0;
    std::vector<std::vector<int>> choices(zones.zones().size());
    for (std::size_t z = 0; z < zones.zones().size(); ++z) {
      if (zone_sinks[z].empty()) continue;
      const auto it = memo.find(zone_mask_key(z, zone_sinks[z], x));
      WM_ASSERT(it != memo.end(), "zone solution missing");
      global_worst = std::max(global_worst, it->second.worst);
      choices[z] = it->second.choice;
    }
    result.dof_scatter.push_back({x.dof, global_worst});
    if (global_worst < best_worst) {
      WM_LOG(Debug) << "intersection dof=" << x.dof << " improves worst "
                    << best_worst << " -> " << global_worst;
      best_worst = global_worst;
      best_x = &x;
      best_choices = std::move(choices);
    }
  }
  }  // phase zone_solve

  WM_ASSERT(best_x != nullptr, "no intersection evaluated");

  // Record per-zone peaks of the winning intersection.
  result.zone_peaks.assign(zones.zones().size(), 0.0);
  for (std::size_t z = 0; z < zones.zones().size(); ++z) {
    if (zone_sinks[z].empty()) continue;
    const auto it = memo.find(zone_mask_key(z, zone_sinks[z], *best_x));
    if (it != memo.end()) result.zone_peaks[z] = it->second.worst;
  }

  // Apply the winning assignment.
  {
    obs::ScopedPhase phase_assign(m, "assign");
    for (std::size_t z = 0; z < zone_sinks.size(); ++z) {
      const auto& sinks = zone_sinks[z];
      const auto& choice = best_choices[z];
      WM_ASSERT(choice.size() == sinks.size(),
                "choice/sink size mismatch");
      for (std::size_t i = 0; i < sinks.size(); ++i) {
        const SinkInfo& sink = pre.sinks[sinks[i]];
        const Candidate& cand =
            sink.candidates[static_cast<std::size_t>(choice[i])];
        tree.set_cell(sink.id, cand.cell);
        TreeNode& node = tree.node(sink.id);
        node.adj_codes = cand.adj_codes;
        node.xor_negative = cand.xor_negative;
        node.cell_extra_delay = cand.cell_extra_delay;
      }
      obs::add(m, "wavemin.leaves_assigned", sinks.size());
    }

    if (opts.verify_invariants) {
      obs::add(m, "verify.hooks_run");
      verify::enforce(verify::check_tree(tree, &zones), "assignment");
    }
  }

  result.success = true;
  result.model_peak = best_worst;
  result.chosen_dof = best_x->dof;
  result.runtime_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  return result;
}

WaveMinResult clk_wavemin(ClockTree& tree, const CellLibrary& lib,
                          const Characterizer& chr,
                          const WaveMinOptions& opts) {
  int max_island = 0;
  for (const TreeNode& n : tree.nodes()) {
    max_island = std::max(max_island, n.island);
  }
  return run_wavemin(tree, lib, chr, ModeSet::single(max_island + 1),
                     lib.assignment_library(), opts);
}

WaveMinResult clk_wavemin_f(ClockTree& tree, const CellLibrary& lib,
                            const Characterizer& chr,
                            WaveMinOptions opts) {
  opts.solver = SolverKind::Greedy;
  return clk_wavemin(tree, lib, chr, opts);
}

} // namespace wm
