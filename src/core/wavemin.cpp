#include "core/wavemin.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <optional>
#include <thread>
#include <unordered_map>

#include "core/checkpoint.hpp"
#include "core/intervals.hpp"
#include "core/noise_model.hpp"
#include "core/sampling.hpp"
#include "core/solver_dispatch.hpp"
#include "fault/fault.hpp"
#include "mosp/solver.hpp"
#include "obs/metrics.hpp"
#include "tree/zone.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "verify/verify.hpp"

namespace wm {

namespace {

obs::MetricsRegistry* metrics_for(const WaveMinOptions& o) {
  if (!o.collect_metrics) return nullptr;
  return o.metrics != nullptr ? o.metrics : obs::global();
}

/// Fold one zone solve's MOSP search statistics into the registry
/// (called from worker threads — counter/gauge ops are thread-safe).
void record_mosp_stats(obs::MetricsRegistry* m, const MospStats& st) {
  if (m == nullptr) return;
  m->add("mosp.labels_created", st.labels_created);
  m->add("mosp.labels_pruned_dominated", st.labels_pruned_dominated);
  m->add("mosp.labels_pruned_incumbent", st.labels_pruned_incumbent);
  m->add("mosp.labels_pruned_pre", st.labels_pruned_pre);
  m->add("mosp.labels_merged_grid", st.labels_merged_grid);
  if (st.beam_capped) m->add("mosp.beam_capped_solves");
  m->gauge_max("mosp.frontier_peak",
               static_cast<double>(st.frontier_peak));
  m->gauge_max("mosp.arena_peak_bytes",
               static_cast<double>(st.arena_peak_bytes));
}

std::size_t zone_mask_key(std::size_t zone_idx,
                          const std::vector<std::size_t>& zone_sinks,
                          const Intersection& x) {
  std::size_t h = 1469598103934665603ULL ^ zone_idx;
  for (std::size_t s : zone_sinks) {
    h ^= x.masks[s] + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

/// One zone's solve outcome — the memoized unit, now carrying the
/// degradation-ladder account alongside the solution proper.
struct ZoneSolution {
  double worst = 0.0;
  std::vector<int> choice;  ///< candidate index per zone sink
  LadderLevel ladder = LadderLevel::Full;
  bool beam_capped = false;
  double elapsed_ms = 0.0;
  std::string error;  ///< quarantined wm::Error text (if any)
};

/// Ladder bottom: every sink takes its first surviving candidate of the
/// intersection. Feasible w.r.t. the skew bound by construction (the
/// masks encode exactly the in-window candidates); peak not modeled.
ZoneSolution identity_solution(const std::vector<std::size_t>& sinks,
                               const Intersection& x) {
  ZoneSolution zs;
  zs.ladder = LadderLevel::Identity;
  zs.choice.reserve(sinks.size());
  for (std::size_t s : sinks) {
    const std::uint32_t mask = x.masks[s];
    WM_ASSERT(mask != 0, "intersection with empty sink mask");
    int c = 0;
    while ((mask & (1u << c)) == 0) ++c;
    zs.choice.push_back(c);
  }
  return zs;
}

} // namespace

namespace detail {

WaveMinResult run_wavemin_impl(ClockTree& tree, const CellLibrary& lib,
                               const Characterizer& chr,
                               const ModeSet& modes,
                               const std::vector<const Cell*>& assignable,
                               const WaveMinOptions& opts) {
  const auto t0 = std::chrono::steady_clock::now();
  WaveMinResult result;

  // Run-budget tracker: reuse a caller-installed one (clk_wavemin_m
  // threads a single deadline through its passes; servers install one
  // to cancel() from outside), else create a private tracker when a
  // budget is set. Null tracker = no budget = bit-identical legacy path.
  std::optional<BudgetTracker> own_tracker;
  BudgetTracker* tracker = opts.budget_tracker;
  if (tracker == nullptr && opts.budget.enabled()) {
    own_tracker.emplace(opts.budget);
    tracker = &*own_tracker;
  }
  const bool quarantine = opts.quarantine_zone_errors;

  obs::MetricsRegistry* m = metrics_for(opts);
  obs::ScopedPhase phase_run(m, "wavemin");
  obs::add(m, "wavemin.runs");
  obs::gauge_set(m, "wavemin.kappa", opts.kappa);
  obs::gauge_set(m, "wavemin.samples", static_cast<double>(opts.samples));
  result.report.seed = opts.seed;
  result.report.job_id = opts.job_id;
  if (opts.seed != 0) {
    obs::gauge_set(m, "run.seed", static_cast<double>(opts.seed));
  }
  if (!opts.job_id.empty()) {
    WM_LOG(Info) << "wavemin: job " << opts.job_id;
  }

  // Checkpoint/resume binds to an options/design fingerprint computed
  // over the *input* tree (before the assignment phase mutates it).
  const bool use_ck = !opts.checkpoint_path.empty() ||
                      !opts.resume_path.empty() ||
                      !opts.resume_paths.empty();
  const std::uint64_t ck_fp =
      use_ck ? ck::options_fingerprint(opts, tree, lib, modes) : 0;

  // Zone sharding (docs/serving.md "Worker pool"): a shard run solves
  // only its stripe of the zone space and skips winner selection; the
  // merge run (shard_index < 0) behaves as a normal full run — any
  // stripe a shard delivered is a memo hit, any stripe lost to a
  // poisoned shard is either re-solved here or, when listed in
  // identity_shards, forced down to the ladder bottom.
  const bool shard_run = opts.shard_count > 1 && opts.shard_index >= 0;
  if (shard_run) {
    WM_REQUIRE(opts.shard_index < opts.shard_count,
               "shard_index out of range");
    obs::add(m, "wavemin.shard_runs");
  }
  auto zone_owned = [&](std::size_t z) {
    return !shard_run ||
           static_cast<int>(z % static_cast<std::size_t>(
                                    opts.shard_count)) == opts.shard_index;
  };
  auto zone_forced_identity = [&](std::size_t z) {
    if (opts.shard_count <= 1 || opts.identity_shards.empty()) {
      return false;
    }
    const int stripe = static_cast<int>(
        z % static_cast<std::size_t>(opts.shard_count));
    return std::find(opts.identity_shards.begin(),
                     opts.identity_shards.end(),
                     stripe) != opts.identity_shards.end();
  };

  const ZoneMap zones(tree, opts.zone_tile);
  result.zones = zones.zones().size();
  obs::gauge_set(m, "wavemin.zones",
                 static_cast<double>(zones.zones().size()));

  XorCandidateOptions xor_opts;
  if (opts.enable_xor_polarity) {
    xor_opts.xor_delay = opts.xor_delay;
    xor_opts.base_cell = lib.find(opts.xor_base_cell);
  }
  const Preprocessed pre = [&] {
    obs::ScopedPhase phase(m, "preprocess");
    fault::inject("core.preprocess");
    // Check the inputs before preprocess() walks them: a corrupted tree
    // or library must surface as a diagnostic, not a crash deeper in.
    if (opts.verify_invariants) {
      obs::add(m, "verify.hooks_run");
      verify::enforce(verify::check_design(tree, lib, &zones),
                      "preprocess");
    }
    return preprocess(tree, zones, modes, assignable, chr, lib,
                      opts.enable_xor_polarity ? &xor_opts : nullptr);
  }();
  obs::add(m, "wavemin.sinks", pre.sinks.size());

  // Sink indices per zone, in pre.sinks order.
  std::vector<std::vector<std::size_t>> zone_sinks(zones.zones().size());
  for (std::size_t s = 0; s < pre.sinks.size(); ++s) {
    WM_ASSERT(pre.sinks[s].zone >= 0, "sink without a zone");
    zone_sinks[static_cast<std::size_t>(pre.sinks[s].zone)].push_back(s);
  }

  WM_REQUIRE(opts.skew_guard_band >= 0.0 &&
                 opts.skew_guard_band < opts.kappa,
             "guard band must be in [0, kappa)");
  const std::vector<Intersection> inters = [&] {
    obs::ScopedPhase phase(m, "intervals");
    std::vector<Intersection> xs = enumerate_intersections(
        pre, opts.kappa - opts.skew_guard_band, opts.dof_beam);
    if (opts.verify_invariants) {
      obs::add(m, "verify.hooks_run");
      verify::enforce(
          verify::check_intersections(pre, xs,
                                      opts.kappa - opts.skew_guard_band),
          "intervals");
    }
    return xs;
  }();
  result.intersections = inters.size();
  obs::add(m, "wavemin.intersections_feasible", inters.size());
  WM_LOG(Info) << "wavemin: " << pre.sinks.size() << " sinks, "
               << zones.zones().size() << " zones, " << inters.size()
               << " feasible intersections (kappa=" << opts.kappa
               << ", |S|=" << opts.samples << ")";
  if (inters.empty()) {
    result.runtime_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    return result;  // infeasible: skew bound unreachable by sizing alone
  }

  std::unordered_map<std::size_t, ZoneSolution> memo;

  // --- resume: preload memoized zone solutions from checkpoints -------
  // resume_path plus every resume_paths entry (the shard merge feeds
  // all shard checkpoints through here). Keys collide only between
  // shards that solved the same (zone, mask) — identical entries by
  // determinism — so first-wins emplace is safe.
  std::vector<std::string> resume_from;
  if (!opts.resume_path.empty()) resume_from.push_back(opts.resume_path);
  for (const std::string& p : opts.resume_paths) {
    if (!p.empty()) resume_from.push_back(p);
  }
  for (const std::string& path : resume_from) {
    const ck::Checkpoint c = ck::load(path, ck_fp);
    std::size_t loaded = 0;
    for (const ck::ZoneEntry& z : c.zones) {
      ZoneSolution zs;
      zs.worst = z.worst;
      zs.choice = z.choice;
      zs.ladder = static_cast<LadderLevel>(z.ladder);
      zs.beam_capped = z.beam_capped;
      zs.elapsed_ms = z.elapsed_ms;
      zs.error = z.error;
      if (memo.emplace(static_cast<std::size_t>(z.key), std::move(zs))
              .second) {
        ++loaded;
      }
    }
    result.report.resumed_zones += loaded;
    obs::add(m, "ck.zones_resumed", loaded);
    WM_LOG(Info) << "wavemin: resumed " << loaded
                 << " zone solution(s) from " << path;
  }

  // --- checkpoint writer: snapshot the memo, throttled by the
  // checkpoint_interval_ms cadence (final flush is unconditional) -----
  std::size_t ck_written = 0;
  double last_ck_ms = 0.0;
  auto write_checkpoint = [&] {
    ck::Checkpoint c;
    c.options_hash = ck_fp;
    c.seed = opts.seed;
    c.zones.reserve(memo.size());
    for (const auto& [key, zs] : memo) {
      ck::ZoneEntry z;
      z.key = key;
      z.ladder = static_cast<int>(zs.ladder);
      z.beam_capped = zs.beam_capped;
      z.worst = zs.worst;
      z.elapsed_ms = zs.elapsed_ms;
      z.choice = zs.choice;
      z.error = zs.error;
      c.zones.push_back(std::move(z));
    }
    std::sort(c.zones.begin(), c.zones.end(),
              [](const ck::ZoneEntry& a, const ck::ZoneEntry& b) {
                return a.key < b.key;
              });
    try {
      ck::save(opts.checkpoint_path, c);
      ck_written = memo.size();
      obs::add(m, "ck.writes");
      obs::gauge_set(m, "ck.zones", static_cast<double>(memo.size()));
    } catch (const Error& e) {
      // A checkpoint write failure must never take down a healthy run:
      // warn, count, and carry on without crash protection.
      obs::add(m, "ck.write_failures");
      WM_LOG(Warn) << "wavemin: checkpoint write failed: " << e.what();
    }
  };

  // Chosen-intersection tracking. `best_cmp` is the comparison key: an
  // intersection containing identity-degraded zones has an unmodeled
  // worst, so it compares as +inf — a fully modeled intersection always
  // beats it, and it can only win when nothing else was evaluated.
  double best_worst = 0.0;
  double best_cmp = std::numeric_limits<double>::infinity();
  const Intersection* best_x = nullptr;
  std::vector<std::vector<int>> best_choices;

  std::size_t nonempty_zones = 0;
  for (const auto& zs : zone_sinks) {
    if (!zs.empty()) ++nonempty_zones;
  }
  obs::add(m, "wavemin.zones_nonempty", nonempty_zones);

  const unsigned n_threads = std::max(1u, opts.threads);
  std::size_t intersections_evaluated = 0;
  {
  obs::ScopedPhase phase_solve(m, "zone_solve");
  for (const Intersection& x : inters) {
    // Budget trip with a result in hand: stop sweeping intersections.
    // (Without one, press on — the ladder makes the first intersection
    // cheap to finish, so the run always yields a valid assignment.)
    if (tracker != nullptr && best_x != nullptr && tracker->should_stop()) {
      break;
    }
    ++intersections_evaluated;
    obs::add(m, "wavemin.intersections_evaluated");
    // Phase 1: solve the memo misses (optionally in parallel — zones
    // are independent subproblems).
    std::vector<std::size_t> misses;
    std::size_t owned_nonempty = 0;
    for (std::size_t z = 0; z < zones.zones().size(); ++z) {
      if (zone_sinks[z].empty()) continue;
      if (!zone_owned(z)) continue;  // another shard's stripe
      ++owned_nonempty;
      if (memo.find(zone_mask_key(z, zone_sinks[z], x)) == memo.end()) {
        misses.push_back(z);
      }
    }
    obs::add(m, "wavemin.zone_solves", misses.size());
    obs::add(m, "wavemin.zone_memo_hits", owned_nonempty - misses.size());
    // Zone MOSP verification reports are collected per miss and
    // enforced on the main thread only — workers must not throw.
    std::vector<verify::Report> mosp_reports(
        opts.verify_invariants ? misses.size() : 0);
    auto solve_zone = [&](std::size_t z,
                          verify::Report* vr) -> ZoneSolution {
      const auto zwall0 = std::chrono::steady_clock::now();
      const obs::Nanos zt0 = m != nullptr ? m->now() : 0;
      ZoneSolution zs;
      // Ladder bottom first: a stripe the serving supervisor gave up on
      // (identity_shards), or a zone whose turn comes after the budget
      // tripped, is not solved at all — identity assignment, no graph.
      if (zone_forced_identity(z)) {
        zs = identity_solution(zone_sinks[z], x);
        obs::add(m, "run.zones_forced_identity");
      } else if (tracker != nullptr && tracker->should_stop()) {
        zs = identity_solution(zone_sinks[z], x);
      } else {
        auto run_ladder = [&]() -> ZoneSolution {
          fault::inject("core.zone_solve");
          fault::alloc_guard("core.zone_alloc");
          const auto slots = build_slots(pre, zone_sinks[z], x,
                                         opts.samples, opts.period);
          const MospGraph g = build_zone_mosp(pre, zone_sinks[z],
                                              zones.zones()[z], x, chr,
                                              modes, slots, opts);
          if (vr != nullptr) *vr = verify::check_mosp(g, slots.size());
          MospStats mosp_stats;
          const MospSolution sol =
              dispatch_solve(g, opts, &mosp_stats, tracker);
          ZoneSolution out;
          out.worst = sol.worst;
          out.choice = sol.choice;
          out.ladder = mosp_stats.budget_stopped ? LadderLevel::Greedy
                                                 : LadderLevel::Full;
          out.beam_capped = mosp_stats.beam_capped;
          if (m != nullptr) {
            obs::gauge_max(m, "mosp.dims", static_cast<double>(g.dims));
            record_mosp_stats(m, mosp_stats);
          }
          return out;
        };
        if (!quarantine) {
          zs = run_ladder();
        } else {
          // Fault quarantine: a zone's wm::Error (corrupt electrical
          // data, a failed graph invariant, ...) degrades that zone to
          // the identity assignment instead of aborting the run.
          try {
            zs = run_ladder();
          } catch (const Error& e) {
            // Poll the budget even on the error path: a solve that died
            // *because* the deadline passed must still latch the trip,
            // or the remaining zones keep attempting full solves.
            if (tracker != nullptr) (void)tracker->should_stop();
            zs = identity_solution(zone_sinks[z], x);
            zs.error = e.what();
          } catch (const std::exception& e) {
            if (tracker != nullptr) (void)tracker->should_stop();
            zs = identity_solution(zone_sinks[z], x);
            zs.error = e.what();
          }
        }
      }
      zs.elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - zwall0)
                          .count();
      if (m != nullptr) {
        m->histogram("wavemin.zone_solve_ms").record_ns(m->now() - zt0);
      }
      return zs;
    };
    auto report_for = [&](std::size_t i) {
      return opts.verify_invariants ? &mosp_reports[i] : nullptr;
    };
    if (n_threads <= 1 || misses.size() <= 1) {
      for (std::size_t i = 0; i < misses.size(); ++i) {
        const std::size_t z = misses[i];
        memo.emplace(zone_mask_key(z, zone_sinks[z], x),
                     solve_zone(z, report_for(i)));
      }
    } else {
      std::vector<ZoneSolution> solved(misses.size());
      // Work queue for the zone pool: mu_ guards the claim cursor; each
      // worker writes only the solved[] slots it claimed.
      struct ZoneWorkQueue {
        Mutex mu_;
        std::size_t next_ GUARDED_BY(mu_) = 0;
        const std::size_t end_;
        explicit ZoneWorkQueue(std::size_t end) : end_(end) {}
        bool take(std::size_t* i) EXCLUDES(mu_) {
          const MutexLock lock(mu_);
          if (next_ >= end_) return false;
          *i = next_++;
          return true;
        }
      } queue(misses.size());
      auto worker = [&] {
        std::size_t i;
        while (queue.take(&i)) {
          solved[i] = solve_zone(misses[i], report_for(i));
        }
      };
      std::vector<std::thread> pool;
      const unsigned n = std::min<unsigned>(
          n_threads, static_cast<unsigned>(misses.size()));
      pool.reserve(n);
      for (unsigned t = 0; t < n; ++t) pool.emplace_back(worker);
      for (std::thread& t : pool) t.join();
      for (std::size_t i = 0; i < misses.size(); ++i) {
        memo.emplace(zone_mask_key(misses[i], zone_sinks[misses[i]], x),
                     std::move(solved[i]));
      }
    }
    if (opts.verify_invariants) {
      obs::add(m, "verify.hooks_run");
      verify::Report merged;
      for (const verify::Report& vr : mosp_reports) merged.merge(vr);
      verify::enforce(merged, "zone-mosp");
    }

    // Phase 2: aggregate. A shard run only fills the memo — winner
    // selection needs every stripe, which is the merge run's job.
    if (!shard_run) {
      double global_worst = 0.0;
      bool unmodeled = false;  // any identity-degraded zone in this mix?
      std::vector<std::vector<int>> choices(zones.zones().size());
      for (std::size_t z = 0; z < zones.zones().size(); ++z) {
        if (zone_sinks[z].empty()) continue;
        const auto it = memo.find(zone_mask_key(z, zone_sinks[z], x));
        WM_ASSERT(it != memo.end(), "zone solution missing");
        global_worst = std::max(global_worst, it->second.worst);
        if (it->second.ladder == LadderLevel::Identity) unmodeled = true;
        choices[z] = it->second.choice;
      }
      result.dof_scatter.push_back({x.dof, global_worst});
      const double cmp = unmodeled
                             ? std::numeric_limits<double>::infinity()
                             : global_worst;
      if (best_x == nullptr || cmp < best_cmp) {
        WM_LOG(Debug) << "intersection dof=" << x.dof << " improves worst "
                      << best_worst << " -> " << global_worst;
        best_cmp = cmp;
        best_worst = global_worst;
        best_x = &x;
        best_choices = std::move(choices);
      }
    }
    if (!opts.checkpoint_path.empty() && memo.size() > ck_written) {
      // Bounded-staleness cadence: a mid-sweep write only after the
      // configured quiet period, so fast runs pay one final flush
      // instead of a full-memo rewrite per intersection.
      const double el = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      if (opts.checkpoint_interval_ms <= 0.0 ||
          el - last_ck_ms >= opts.checkpoint_interval_ms) {
        write_checkpoint();
        last_ck_ms = el;
      }
    }
  }
  }  // phase zone_solve
  // The budget can break out of the sweep between writes; flush once
  // more so the checkpoint always covers every solved zone.
  if (!opts.checkpoint_path.empty() && memo.size() > ck_written) {
    write_checkpoint();
  }

  if (shard_run) {
    // The shard's deliverable is its checkpoint; report only what this
    // stripe saw so the serving layer can account for degradation.
    for (const auto& entry : memo) {
      if (!entry.second.error.empty()) {
        ++result.report.quarantined_errors;
      }
    }
    if (tracker != nullptr) {
      result.report.deadline_hit = tracker->deadline_expired();
      result.report.label_budget_hit = tracker->labels_exhausted();
      result.report.cancelled = tracker->cancelled();
      result.report.labels_consumed = tracker->labels_consumed();
    }
    result.sharded = true;
    result.success = true;
    result.runtime_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    WM_LOG(Info) << "wavemin: shard " << opts.shard_index << "/"
                 << opts.shard_count << " solved " << memo.size()
                 << " zone solution(s) over " << intersections_evaluated
                 << " intersection(s)";
    return result;
  }

  WM_ASSERT(best_x != nullptr, "no intersection evaluated");

  // Record per-zone peaks of the winning intersection, and assemble the
  // run report from the memoized ladder accounts.
  result.zone_peaks.assign(zones.zones().size(), 0.0);
  RunReport& report = result.report;
  for (std::size_t z = 0; z < zones.zones().size(); ++z) {
    if (zone_sinks[z].empty()) continue;
    const auto it = memo.find(zone_mask_key(z, zone_sinks[z], *best_x));
    if (it == memo.end()) continue;
    result.zone_peaks[z] = it->second.worst;
    ZoneRunReport zr;
    zr.zone = z;
    zr.sinks = zone_sinks[z].size();
    zr.ladder = it->second.ladder;
    zr.beam_capped = it->second.beam_capped;
    zr.elapsed_ms = it->second.elapsed_ms;
    zr.error = it->second.error;
    report.zones.push_back(std::move(zr));
  }
  // Count quarantines over *every* solve, not just the winning
  // intersection's: a zone that errored on a losing intersection made
  // that intersection compare as unmodeled (+inf), so the sweep was
  // incomplete and the result may be suboptimal — that is a degraded
  // run even when the chosen assignment itself is clean.
  for (const auto& entry : memo) {
    if (!entry.second.error.empty()) ++report.quarantined_errors;
  }
  if (tracker != nullptr) {
    report.deadline_hit = tracker->deadline_expired();
    report.label_budget_hit = tracker->labels_exhausted();
    report.cancelled = tracker->cancelled();
    report.labels_consumed = tracker->labels_consumed();
  }
  report.intersections_skipped = inters.size() - intersections_evaluated;

  // Surface the formerly silent beam cap and the ladder account as
  // structured diagnostics (enforce() logs warnings; no errors here, so
  // it never throws) plus obs counters.
  {
    verify::Report warn;
    for (const ZoneRunReport& zr : report.zones) {
      if (zr.beam_capped) {
        obs::add(m, "mosp.beam_capped_zones");
        warn.warning("mosp.beam-capped",
                     "zone " + std::to_string(zr.zone),
                     "label beam cap (max_labels=" +
                         std::to_string(opts.max_labels) +
                         ") truncated the Pareto search; the zone's "
                         "result may be suboptimal");
      }
      if (zr.ladder == LadderLevel::Greedy) {
        obs::add(m, "run.zones_degraded_greedy");
      } else if (zr.ladder == LadderLevel::Identity) {
        obs::add(m, "run.zones_degraded_identity");
      }
      if (!zr.error.empty()) {
        obs::add(m, "run.zone_errors_quarantined");
        warn.warning("run.zone-quarantined",
                     "zone " + std::to_string(zr.zone),
                     "zone error quarantined, identity assignment used: " +
                         zr.error);
      }
    }
    if (report.deadline_hit) obs::add(m, "run.deadline_hit");
    if (report.label_budget_hit) obs::add(m, "run.label_budget_hit");
    if (report.cancelled) obs::add(m, "run.cancelled");
    obs::add(m, "run.intersections_skipped",
             report.intersections_skipped);
    if (!warn.clean()) verify::enforce(warn, "run-report");
  }
  if (report.degraded()) {
    WM_LOG(Warn) << "wavemin: degraded run — "
                 << report.zones_at(LadderLevel::Full) << " full / "
                 << report.zones_at(LadderLevel::Greedy) << " greedy / "
                 << report.zones_at(LadderLevel::Identity)
                 << " identity zone(s)"
                 << (report.deadline_hit ? ", deadline hit" : "")
                 << (report.label_budget_hit ? ", label budget hit" : "")
                 << (report.cancelled ? ", cancelled" : "")
                 << (report.quarantined_errors > 0 ? ", zone errors quarantined"
                                                   : "");
  }

  // Apply the winning assignment.
  {
    obs::ScopedPhase phase_assign(m, "assign");
    for (std::size_t z = 0; z < zone_sinks.size(); ++z) {
      const auto& sinks = zone_sinks[z];
      const auto& choice = best_choices[z];
      WM_ASSERT(choice.size() == sinks.size(),
                "choice/sink size mismatch");
      for (std::size_t i = 0; i < sinks.size(); ++i) {
        const SinkInfo& sink = pre.sinks[sinks[i]];
        const Candidate& cand =
            sink.candidates[static_cast<std::size_t>(choice[i])];
        tree.set_cell(sink.id, cand.cell);
        TreeNode& node = tree.node(sink.id);
        node.adj_codes = cand.adj_codes;
        node.xor_negative = cand.xor_negative;
        node.cell_extra_delay = cand.cell_extra_delay;
      }
      obs::add(m, "wavemin.leaves_assigned", sinks.size());
    }

    if (opts.verify_invariants) {
      obs::add(m, "verify.hooks_run");
      verify::enforce(verify::check_tree(tree, &zones), "assignment");
    }
  }

  result.success = true;
  result.model_peak = best_worst;
  result.chosen_dof = best_x->dof;
  result.runtime_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  return result;
}

} // namespace detail

WaveMinResult run_wavemin(ClockTree& tree, const CellLibrary& lib,
                          const Characterizer& chr, const ModeSet& modes,
                          const std::vector<const Cell*>& assignable,
                          const WaveMinOptions& opts) {
  return detail::run_wavemin_impl(tree, lib, chr, modes, assignable, opts);
}

TryRunResult try_run_wavemin(ClockTree& tree, const CellLibrary& lib,
                             const Characterizer& chr, const ModeSet& modes,
                             const std::vector<const Cell*>& assignable,
                             const WaveMinOptions& opts) {
  TryRunResult out;
  WaveMinOptions ft = opts;
  ft.quarantine_zone_errors = true;
  try {
    out.result =
        detail::run_wavemin_impl(tree, lib, chr, modes, assignable, ft);
    if (!out.result.success) {
      out.status = Status(StatusCode::Infeasible,
                          "no feasible intersection at kappa=" +
                              std::to_string(opts.kappa));
    }
  } catch (const Error& e) {
    out.status = Status(StatusCode::InvalidInput, e.what());
  } catch (const std::exception& e) {
    out.status = Status(StatusCode::Internal, e.what());
  }
  return out;
}

TryRunResult try_clk_wavemin(ClockTree& tree, const CellLibrary& lib,
                             const Characterizer& chr,
                             const WaveMinOptions& opts) {
  int max_island = 0;
  for (const TreeNode& n : tree.nodes()) {
    max_island = std::max(max_island, n.island);
  }
  return try_run_wavemin(tree, lib, chr, ModeSet::single(max_island + 1),
                         lib.assignment_library(), opts);
}

WaveMinResult clk_wavemin(ClockTree& tree, const CellLibrary& lib,
                          const Characterizer& chr,
                          const WaveMinOptions& opts) {
  int max_island = 0;
  for (const TreeNode& n : tree.nodes()) {
    max_island = std::max(max_island, n.island);
  }
  return run_wavemin(tree, lib, chr, ModeSet::single(max_island + 1),
                     lib.assignment_library(), opts);
}

WaveMinResult clk_wavemin_f(ClockTree& tree, const CellLibrary& lib,
                            const Characterizer& chr,
                            WaveMinOptions opts) {
  opts.solver = SolverKind::Greedy;
  return clk_wavemin(tree, lib, chr, opts);
}

} // namespace wm
