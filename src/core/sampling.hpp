#pragma once
// Time sampling slot construction (paper Sec. IV-B, Fig. 7(b)).
//
// The optimizer evaluates noise only at a set S of sampling slots per
// power mode. Each slot names a rail (I_DD or I_SS) and a time window:
//   * |S| <= 8  — coarse windowed slots ("the maximum value from the
//     first and the second halves of the waveform", Sec. VII-C): the hot
//     region around each clock edge is covered by |S|/4 max-windows per
//     rail;
//   * |S| > 8  — fine point samples spread uniformly over the hot
//     regions (|S| = 158 is the paper's reference setting).
// The hot regions are derived from the zone's candidate arrival times:
// current pulses live around the sinks' switching instants, at both the
// rising edge and (half a period later) the falling edge.

#include <vector>

#include "core/candidates.hpp"
#include "core/intervals.hpp"
#include "wave/waveform.hpp"

namespace wm {

struct SampleSlot {
  Rail rail = Rail::Vdd;
  std::size_t mode = 0;
  Ps lo = 0.0;  ///< window start (== hi for a point sample)
  Ps hi = 0.0;
};

/// Build the slots for one zone (indices into p.sinks) under one
/// feasible intersection. `samples_per_mode` is the paper's |S|.
std::vector<SampleSlot> build_slots(
    const Preprocessed& p, const std::vector<std::size_t>& zone_sinks,
    const Intersection& x, int samples_per_mode, Ps period);

} // namespace wm
