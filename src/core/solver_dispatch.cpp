#include "core/solver_dispatch.hpp"

namespace wm {

MospSolverOptions to_solver_options(const WaveMinOptions& opts,
                                    BudgetTracker* budget) {
  MospSolverOptions so;
  so.epsilon = opts.epsilon;
  so.max_labels = opts.max_labels;
  so.budget = budget != nullptr ? budget : opts.budget_tracker;
  so.kernel = opts.mosp_kernel;
  so.prune_rows = opts.mosp_prune_rows;
  return so;
}

MospSolution dispatch_solve(const MospGraph& g, const WaveMinOptions& opts,
                            MospStats* stats, BudgetTracker* budget) {
  const MospSolverOptions so = to_solver_options(opts, budget);
  switch (opts.solver) {
    case SolverKind::Warburton: return solve_warburton(g, so, stats);
    case SolverKind::Greedy: return solve_greedy(g);
    case SolverKind::Exact: return solve_exact(g, so, stats);
    case SolverKind::Exhaustive: return solve_exhaustive(g);
  }
  return solve_warburton(g, so, stats);
}

} // namespace wm
