#pragma once
// wm::ck — crash-safe checkpoint/resume of WaveMin runs
// (docs/robustness.md).
//
// run_wavemin memoizes one ZoneSolution per (zone, surviving-candidate
// mask) key; that memo is exactly the state worth surviving a crash. A
// checkpoint serializes every memo entry — choice vector, ladder rung,
// quarantined error text, solve wall time — plus an options/design
// fingerprint, to a versioned ".wmck" text file with a CRC-32 trailer.
// Writes go through a temp file + atomic rename, so a reader never sees
// a torn checkpoint; a killed run leaves either the previous complete
// checkpoint or the new one, never garbage.
//
// On resume the fingerprint must match (same tree bytes, library,
// modes and solver-relevant options), the CRC must hold, and every
// record must parse — anything else is a wm::Error naming the problem.
// Preloaded entries hit the memo, so a resumed run re-derives the
// intersection sweep from identical zone solutions and produces results
// bit-identical to an uninterrupted run.
//
// Format (line-oriented, '#'-free, LF only):
//
//   wmck v1
//   opts <16-hex fingerprint>
//   seed <u64>
//   zone <key> <ladder> <beam> <worst> <elapsed_ms> <n> <c0> ... [err <esc>]
//   ...
//   crc <8-hex CRC-32 of every preceding byte>

#include <cstdint>
#include <string>
#include <vector>

#include "cells/library.hpp"
#include "core/options.hpp"
#include "timing/power_mode.hpp"
#include "tree/clock_tree.hpp"

namespace wm::ck {

/// One memoized zone solution (mirrors wavemin.cpp's ZoneSolution).
struct ZoneEntry {
  std::uint64_t key = 0;  ///< zone_mask_key of (zone, masks)
  int ladder = 0;         ///< LadderLevel as int (0 full / 1 greedy / 2 id)
  bool beam_capped = false;
  double worst = 0.0;
  double elapsed_ms = 0.0;
  std::vector<int> choice;  ///< candidate index per zone sink
  std::string error;        ///< quarantined error text ("" if none)
};

struct Checkpoint {
  std::uint64_t options_hash = 0;
  std::uint64_t seed = 0;
  std::vector<ZoneEntry> zones;
};

/// Fingerprint binding a checkpoint to its run: FNV-1a over the
/// serialized tree and library, the mode set, and every option that
/// changes zone solutions. Two runs with equal fingerprints produce
/// bit-identical memo entries for equal keys.
std::uint64_t options_fingerprint(const WaveMinOptions& opts,
                                  const ClockTree& tree,
                                  const CellLibrary& lib,
                                  const ModeSet& modes);

/// Serialize with full double precision (round-trips bit-exactly) and
/// the CRC trailer already appended.
std::string to_string(const Checkpoint& c);

/// Parse + verify. Throws wm::Error on a bad header, a CRC mismatch, a
/// truncated/garbled record, a duplicate key, or an out-of-range field.
Checkpoint from_string(const std::string& text);

/// Atomic write: serialize to `path + ".tmp"`, then rename over `path`.
/// Throws wm::Error on I/O failure (the temp file is removed). A stale
/// tmp file left by a process that died between open and rename is
/// removed first and counted as "ck.stale_tmp_removed".
void save(const std::string& path, const Checkpoint& c);

/// Remove every stale "*.wmck.tmp" under `dir` (non-recursive) — the
/// droppings of checkpoint writers killed mid-save. Returns the number
/// removed, also added to the "ck.stale_tmp_removed" counter. A
/// missing/unreadable directory is not an error (returns 0): callers
/// run this opportunistically at startup (the serve daemon sweeps its
/// spool on boot).
std::size_t clean_stale_tmps(const std::string& dir);

/// Remove every file under `dir` (non-recursive) whose name is
/// `<stem><suffix>` for some suffix in `suffixes` and whose stem is
/// *not* in `keep_stems` — the serving daemon's boot-time sweep of
/// result/output files orphaned by jobs the journal does not know
/// (docs/serving.md "Crash recovery"). Returns the number removed;
/// the caller owns any counter. A missing/unreadable directory is
/// not an error (returns 0).
std::size_t sweep_orphans(const std::string& dir,
                          const std::vector<std::string>& suffixes,
                          const std::vector<std::string>& keep_stems);

/// Load + verify; additionally rejects a fingerprint mismatch against
/// `expect_options_hash` ("stale checkpoint") with both hashes named.
Checkpoint load(const std::string& path,
                std::uint64_t expect_options_hash);

} // namespace wm::ck
