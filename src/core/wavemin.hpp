#pragma once
// ClkWaveMin / ClkWaveMin-f drivers (paper Sec. V, Fig. 8).
//
// Flow per Fig. 8: preprocess (candidates + noise data + sampling
// points), enumerate feasible time intervals (intersections for multi-
// mode designs), and for every (interval, zone) build the MOSP instance
// and solve it; the interval whose worst zone peak is smallest wins and
// its assignment is applied to the tree.
//
// Zone solutions depend only on the zone's surviving-candidate masks, so
// they are memoized across intervals — the dedup that makes the interval
// sweep cheap.

#include <vector>

#include "cells/characterizer.hpp"
#include "cells/library.hpp"
#include "core/candidates.hpp"
#include "core/options.hpp"
#include "core/run_report.hpp"
#include "timing/power_mode.hpp"
#include "tree/clock_tree.hpp"
#include "util/status.hpp"

namespace wm {

struct DofSample {
  long dof = 0;        ///< degree of freedom of a feasible intersection
  double worst = 0.0;  ///< model peak noise achieved under it (uA)
};

struct WaveMinResult {
  bool success = false;
  /// True for a shard run (opts.shard_count > 1, shard_index >= 0):
  /// the owned zone stripes were solved and checkpointed, but no
  /// winner was chosen and the tree was not touched — model_peak,
  /// chosen_dof and zone_peaks are not populated. The merge run (which
  /// preloads every shard checkpoint) produces the full result.
  bool sharded = false;
  double model_peak = 0.0;  ///< optimizer objective at the chosen
                            ///< intersection: max over zones of the
                            ///< min-max path cost (uA)
  long chosen_dof = 0;
  std::size_t intersections = 0;  ///< feasible intersections examined
  std::size_t zones = 0;
  double runtime_ms = 0.0;
  /// Per-intersection (dof, worst) pairs — the Fig. 14 scatter.
  std::vector<DofSample> dof_scatter;
  /// Model peak per zone (uA) under the chosen intersection, indexed
  /// like ZoneMap::zones(); empty zones carry 0. Identity-degraded
  /// zones (see report) also carry 0: their peak is not modeled.
  std::vector<double> zone_peaks;
  /// Fault-tolerant run layer account: per-zone ladder levels, budget
  /// trips, quarantined errors (docs/robustness.md). Empty/clean when
  /// no budget is set and nothing degraded.
  RunReport report;
};

/// Non-throwing result envelope for the try_* entry points.
struct [[nodiscard]] TryRunResult {
  Status status;        ///< Ok also covers degraded runs — check
                        ///< result.report.degraded() for the exit-3 case
  WaveMinResult result;
};

/// Run the optimization and apply the winning assignment to `tree`.
/// `assignable` is the candidate library for normal leaves (e.g.
/// CellLibrary::assignment_library()). Returns success=false (tree
/// untouched) when no feasible intersection exists for opts.kappa.
WaveMinResult run_wavemin(ClockTree& tree, const CellLibrary& lib,
                          const Characterizer& chr, const ModeSet& modes,
                          const std::vector<const Cell*>& assignable,
                          const WaveMinOptions& opts);

/// Single-mode convenience wrapper (ClkWaveMin proper).
WaveMinResult clk_wavemin(ClockTree& tree, const CellLibrary& lib,
                          const Characterizer& chr,
                          const WaveMinOptions& opts);

/// ClkWaveMin-f: same flow with the greedy inner solver (Sec. V-C).
WaveMinResult clk_wavemin_f(ClockTree& tree, const CellLibrary& lib,
                            const Characterizer& chr, WaveMinOptions opts);

/// Fault-tolerant entry point: never throws wm::Error. Zone-level
/// errors are quarantined to their zone (the zone degrades to the
/// identity assignment, the error text lands in its ZoneRunReport);
/// run-level errors (bad options, corrupt inputs caught by the verify
/// hooks) come back as a non-Ok Status with result.success == false and
/// the tree untouched. A budget-degraded but valid run returns Ok —
/// inspect result.report.degraded().
TryRunResult try_run_wavemin(ClockTree& tree, const CellLibrary& lib,
                             const Characterizer& chr, const ModeSet& modes,
                             const std::vector<const Cell*>& assignable,
                             const WaveMinOptions& opts);

/// Single-mode convenience wrapper around try_run_wavemin.
TryRunResult try_clk_wavemin(ClockTree& tree, const CellLibrary& lib,
                             const Characterizer& chr,
                             const WaveMinOptions& opts);

} // namespace wm
