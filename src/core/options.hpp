#pragma once
// Knobs of the WaveMin optimization (paper Secs. V-VII).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mosp/vecops.hpp"
#include "util/budget.hpp"
#include "util/units.hpp"

namespace wm::obs {
class MetricsRegistry;
} // namespace wm::obs

namespace wm {

/// Default for WaveMinOptions::verify_invariants: debug builds pay for
/// the wm::verify phase hooks, optimized builds skip them.
#ifdef NDEBUG
inline constexpr bool kVerifyInvariantsDefault = false;
#else
inline constexpr bool kVerifyInvariantsDefault = true;
#endif

enum class SolverKind {
  Warburton,   ///< ClkWaveMin: epsilon-approximate Pareto DP (Sec. V-B)
  Greedy,      ///< ClkWaveMin-f: least-worsening vertex commit (Sec. V-C)
  Exact,       ///< exact Pareto DP (small instances / tests)
  Exhaustive,  ///< brute-force oracle (tests only)
};

struct WaveMinOptions {
  Ps kappa = 20.0;  ///< clock skew bound (ps)

  /// Variation guard band ([26], Kang & Kim: polarity assignment under
  /// delay variations): feasible windows are built against
  /// kappa - skew_guard_band, reserving margin so process variation
  /// does not push the realized skew over the bound. 0 = nominal.
  Ps skew_guard_band = 0.0;

  /// Number of time sampling slots per power mode (the paper's |S|):
  /// 4 and 8 use windowed-max slots ("max of each half of the
  /// waveform"), larger values use point samples across the hot
  /// windows. Table VI sweeps this.
  int samples = 158;

  SolverKind solver = SolverKind::Warburton;
  double epsilon = 0.01;        ///< Warburton scaling (Table V setting)
  std::size_t max_labels = 20000;

  /// Vector backend for the MOSP label kernels (mosp/vecops.hpp):
  /// Auto = AVX2 when compiled in and the CPU has it, else scalar.
  /// The two backends are bit-identical (the differential suite
  /// enforces it), so this knob only moves runtime, never results.
  mosp::Kernel mosp_kernel = mosp::Kernel::Auto;

  /// Li&Shi-style pre-DP pruning of dominated row candidates (counted
  /// as `mosp.labels_pruned_pre`). On by default; off reproduces the
  /// pre-kernel search order exactly, for ablation.
  bool mosp_prune_rows = true;

  bool include_nonleaf = true;    ///< Observation 1 (D2 in DESIGN.md)
  bool shift_by_arrival = true;   ///< Observation 2 (D3 in DESIGN.md)

  Um zone_tile = tech::kZoneSize;

  /// Worker threads for the per-zone MOSP solves (1 = sequential).
  /// Results are bit-identical regardless of thread count: zones are
  /// independent subproblems and the merge is order-insensitive.
  unsigned threads = 1;

  /// Beam width of the multi-mode intersection enumeration, ranked by
  /// degree of freedom (Sec. VI, Fig. 14). 0 = keep everything.
  std::size_t dof_beam = 64;

  Ps period = tech::kClockPeriod;

  /// Run the wm::verify invariant checker at the flow's phase
  /// boundaries (after preprocessing, interval enumeration, each zone
  /// MOSP build, ADB allocation and the final assignment). An
  /// Error-severity diagnostic escalates to wm::Error. On by default in
  /// debug builds; force-enable anywhere when chasing corruption.
  bool verify_invariants = kVerifyInvariantsDefault;

  // --- fault-tolerant run layer (docs/robustness.md) -----------------

  /// Run budget: wall-clock deadline and/or a global DP-label pool.
  /// Disabled by default; with both fields 0 the run layer adds no
  /// checks and results are bit-identical to an unbudgeted build. When
  /// the budget trips, zones degrade down the ladder (full -> greedy ->
  /// identity) instead of the run dying; the per-zone account lands in
  /// WaveMinResult::report.
  ///
  /// The serving daemon's brownout controller (docs/serving.md
  /// "Admission & overload control") is a budget consumer: under
  /// sustained queue-wait pressure it caps the label pool (tier 1) and
  /// forces the Greedy rung (tier 2) per attempt, so overload degrades
  /// answer cost instead of only shedding jobs. The budget feeds the
  /// options fingerprint, which is why the daemon pins it for all
  /// shards + merge of one attempt.
  RunBudget budget;

  /// Runtime tracker shared across nested flows — clk_wavemin_m's
  /// sizing pass, ADB allocation and re-optimization all draw from one
  /// deadline through this. When null and budget.enabled(), run_wavemin
  /// creates a private tracker. Callers may also install their own to
  /// cancel() a run from another thread. Not owned.
  BudgetTracker* budget_tracker = nullptr;

  /// Quarantine a zone's wm::Error to that zone: the zone falls to the
  /// bottom of the degradation ladder (identity assignment) and the
  /// error text is recorded in its ZoneRunReport instead of aborting
  /// the run. Set by the try_* wrappers; off by default so the throwing
  /// API keeps its fail-fast contract.
  bool quarantine_zone_errors = false;

  /// Run seed: the single seed every stochastic or schedule-driven
  /// companion of a run derives from (fault schedules, MC studies
  /// launched alongside, benchmark generation via the CLI). The
  /// optimization itself is deterministic; the seed is recorded in
  /// RunReport::seed and the metrics JSON (gauge "run.seed") so a
  /// degraded run is reproducible from its artifacts alone.
  std::uint64_t seed = 0;

  /// Serving-layer job id (docs/serving.md). Purely observational:
  /// recorded in RunReport::job_id and the run's log lines so one
  /// daemon log interleaving many jobs stays attributable. Never part
  /// of the checkpoint fingerprint — a retry of the same job (or a
  /// different job over the same design) may resume the same .wmck.
  std::string job_id;

  // --- crash-safe checkpoint/resume (docs/robustness.md) -------------

  /// When non-empty, run_wavemin writes a ".wmck" checkpoint of every
  /// memoized zone solution after each intersection (atomic rename,
  /// CRC-checked). A checkpoint write failure degrades to a warning +
  /// "ck.write_failures" counter — it never aborts a healthy run.
  std::string checkpoint_path;

  /// Minimum wall-clock spacing between mid-run checkpoint writes. A
  /// crash loses at most this much solved work; the final flush after
  /// the sweep is unconditional, so a clean run always leaves a
  /// complete checkpoint. Each write snapshots the whole memo, so the
  /// dense cadence (0 = after every intersection that grew the memo)
  /// costs O(intersections x zones) serialization and dominates small
  /// runs — only the chaos harness, which wants a kill point at every
  /// write, should ask for it. Never part of the resume fingerprint.
  double checkpoint_interval_ms = 100.0;

  /// When non-empty, preload zone solutions from this checkpoint before
  /// solving. The checkpoint's options/design fingerprint must match
  /// this run's (else wm::Error); matched entries skip their zone
  /// solves and the run's results are bit-identical to an uninterrupted
  /// one. The count lands in RunReport::resumed_zones.
  std::string resume_path;

  /// Additional checkpoints to preload alongside resume_path — the
  /// shard-merge run feeds every shard's .wmck through here and then
  /// finds 100% memo hits. Same fingerprint contract as resume_path;
  /// duplicate keys keep the first entry seen.
  std::vector<std::string> resume_paths;

  // --- zone-sharded serving (docs/serving.md "Worker pool") ----------
  // None of these feed ck::options_fingerprint: a shard's checkpoint
  // must interoperate with its siblings', with the merge run's, and
  // with a fork-per-attempt retry of the same job.

  /// Shard the zone space: with shard_count > 1 and shard_index >= 0,
  /// the run solves only zones z with z % shard_count == shard_index,
  /// checkpoints them, and skips winner selection + assignment (the
  /// merge run owns those; WaveMinResult::sharded is set). Zones are
  /// independent, deterministic subproblems, so shard + merge is
  /// bit-identical to a monolithic run.
  int shard_count = 0;
  /// Which stripe this run owns; -1 with shard_count > 1 marks the
  /// merge run (solves nothing that a shard already solved, but may
  /// fill stripes a poisoned shard never delivered).
  int shard_index = -1;

  /// Shard stripes forced straight to the identity rung without
  /// solving ("run.zones_forced_identity"): the serving supervisor
  /// lists the stripes of shards that exhausted their retries, so the
  /// merge completes degraded (exit 3) instead of failing the job.
  /// Ignored when shard_count <= 1.
  std::vector<int> identity_shards;

  /// Collect wm::obs phase timers / counters / histograms during the
  /// run (docs/observability.md lists the catalog). Off by default:
  /// with collection disabled every instrumentation site reduces to one
  /// null-pointer test — no clock reads, no allocation.
  bool collect_metrics = false;

  /// Destination registry for collect_metrics. When left null with
  /// collection enabled, the process-global registry (obs::global(),
  /// installed by the CLI) is used; if that is also null, metrics are
  /// silently not collected. Not owned.
  obs::MetricsRegistry* metrics = nullptr;

  // --- XOR-reconfigurable polarity extension ([30],[31]) -------------
  // When enabled (multi-mode designs only), every normal leaf gains
  // candidates whose polarity is selected *per power mode* by an XOR
  // gate ahead of a base buffer: 2^M polarity vectors at the cost of an
  // extra gate delay and input load.
  bool enable_xor_polarity = false;
  Ps xor_delay = 6.0;          ///< XOR gate delay (all modes)
  const char* xor_base_cell = "BUF_X16";
};

} // namespace wm
