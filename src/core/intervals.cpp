#include "core/intervals.hpp"

#include <algorithm>
#include <bit>
#include <unordered_set>

#include "util/error.hpp"

namespace wm {

namespace {

constexpr Ps kTol = 0.01;  // matches the arrival-grid merge tolerance

long popcount_sum(const std::vector<std::uint32_t>& masks) {
  long s = 0;
  for (std::uint32_t m : masks) s += std::popcount(m);
  return s;
}

std::size_t mask_hash(const std::vector<std::uint32_t>& masks) {
  std::size_t h = 1469598103934665603ULL;
  for (std::uint32_t m : masks) {
    h ^= m + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

void sort_by_dof(std::vector<Intersection>& xs) {
  std::stable_sort(xs.begin(), xs.end(),
                   [](const Intersection& a, const Intersection& b) {
                     return a.dof > b.dof;
                   });
}

/// Keep at most `beam` intersections (by DOF); 0 = unlimited.
void apply_beam(std::vector<Intersection>& xs, std::size_t beam) {
  if (beam == 0 || xs.size() <= beam) return;
  sort_by_dof(xs);
  xs.resize(beam);
}

} // namespace

std::uint32_t window_mask(const SinkInfo& sink, std::size_t mode,
                          const TimeWindow& w) {
  std::uint32_t mask = 0;
  // A leaf that is clock-gated in this mode neither switches nor
  // constrains the mode's skew: every candidate is acceptable.
  const bool gated = !sink.gated.empty() && sink.gated[mode] != 0;
  for (std::size_t c = 0; c < sink.candidates.size(); ++c) {
    const Ps a = sink.candidates[c].arrival[mode];
    if (gated || (a >= w.lo - kTol && a <= w.hi + kTol)) {
      mask |= (1u << c);
    }
  }
  return mask;
}

std::vector<Intersection> enumerate_single_mode(const Preprocessed& p,
                                                std::size_t mode,
                                                Ps kappa) {
  WM_REQUIRE(mode < p.mode_count, "mode out of range");
  WM_REQUIRE(kappa > 0.0, "skew bound must be positive");

  std::vector<Intersection> out;
  std::unordered_set<std::size_t> seen;
  for (const Ps t : p.arrival_grid[mode]) {
    const TimeWindow w{t - kappa, t};
    Intersection x;
    x.windows.assign(p.mode_count, TimeWindow{});
    x.windows[mode] = w;
    x.masks.reserve(p.sinks.size());
    bool feasible = true;
    for (const SinkInfo& s : p.sinks) {
      const std::uint32_t m = window_mask(s, mode, w);
      if (m == 0) {
        feasible = false;
        break;
      }
      x.masks.push_back(m);
    }
    if (!feasible) continue;
    if (!seen.insert(mask_hash(x.masks)).second) continue;
    x.dof = popcount_sum(x.masks);
    out.push_back(std::move(x));
  }
  sort_by_dof(out);
  return out;
}

std::vector<Intersection> enumerate_intersections(const Preprocessed& p,
                                                  Ps kappa,
                                                  std::size_t beam) {
  std::vector<Intersection> partial = enumerate_single_mode(p, 0, kappa);
  apply_beam(partial, beam);

  for (std::size_t mode = 1; mode < p.mode_count; ++mode) {
    const std::vector<Intersection> extension =
        enumerate_single_mode(p, mode, kappa);
    std::vector<Intersection> next;
    std::unordered_set<std::size_t> seen;
    for (const Intersection& a : partial) {
      for (const Intersection& b : extension) {
        Intersection x;
        x.windows = a.windows;
        x.windows[mode] = b.windows[mode];
        x.masks.resize(p.sinks.size());
        bool feasible = true;
        for (std::size_t s = 0; s < p.sinks.size(); ++s) {
          x.masks[s] = a.masks[s] & b.masks[s];
          if (x.masks[s] == 0) {
            feasible = false;
            break;
          }
        }
        if (!feasible) continue;
        if (!seen.insert(mask_hash(x.masks)).second) continue;
        x.dof = popcount_sum(x.masks);
        next.push_back(std::move(x));
      }
    }
    apply_beam(next, beam);
    partial = std::move(next);
  }
  sort_by_dof(partial);
  return partial;
}

} // namespace wm
