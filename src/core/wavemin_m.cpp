#include "core/wavemin_m.hpp"

#include <algorithm>
#include <cstdint>
#include <optional>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "verify/verify.hpp"

namespace wm {

void count_adjustables(const ClockTree& tree, int* adbs, int* adis) {
  *adbs = 0;
  *adis = 0;
  for (const TreeNode& n : tree.nodes()) {
    if (n.cell->kind == CellKind::Adb) ++*adbs;
    if (n.cell->kind == CellKind::Adi) ++*adis;
  }
}

WaveMinMResult clk_wavemin_m(ClockTree& tree, const CellLibrary& lib,
                             const Characterizer& chr, const ModeSet& modes,
                             const WaveMinOptions& raw_opts) {
  WaveMinMResult r;

  // One budget tracker for the whole flow: the sizing pass, the ADB
  // allocation and the re-optimization all draw from a single deadline
  // and label pool, so a caller's budget bounds the flow end to end.
  std::optional<BudgetTracker> own_tracker;
  WaveMinOptions opts = raw_opts;
  if (opts.budget_tracker == nullptr && opts.budget.enabled()) {
    own_tracker.emplace(opts.budget);
    opts.budget_tracker = &*own_tracker;
  }

  // Attempt the sizing-only flow first (Fig. 13's left branch).
  r.opt = run_wavemin(tree, lib, chr, modes, lib.assignment_library(),
                      opts);
  if (r.opt.success) {
    count_adjustables(tree, &r.adb_count, &r.adi_count);
    return r;
  }

  // Skew cannot be met by sizing alone: insert ADBs, then re-optimize.
  obs::MetricsRegistry* m =
      opts.collect_metrics
          ? (opts.metrics != nullptr ? opts.metrics : obs::global())
          : nullptr;
  r.used_adb_flow = true;
  obs::add(m, "adb.flow_invocations");
  {
    obs::ScopedPhase phase(m, "adb_allocation");
    fault::inject("core.adb_alloc");
    r.adb = allocate_adbs(tree, lib, modes, opts.kappa);
    if (opts.verify_invariants) {
      obs::add(m, "verify.hooks_run");
      verify::enforce(verify::check_tree(tree), "adb-allocation");
    }
  }
  obs::add(m, "adb.inserted",
           static_cast<std::uint64_t>(
               std::max(0, r.adb.adbs_inserted)));
  obs::gauge_set(m, "adb.final_worst_skew", r.adb.final_worst_skew);

  fault::inject("core.reopt");
  r.opt = run_wavemin(tree, lib, chr, modes, lib.assignment_library(),
                      opts);
  if (!r.opt.success && opts.dof_beam != 0) {
    // The DOF beam may have pruned the only feasible intersections;
    // retry with the full enumeration before giving up.
    WaveMinOptions wide = opts;
    wide.dof_beam = 0;
    r.opt = run_wavemin(tree, lib, chr, modes, lib.assignment_library(),
                        wide);
  }

  count_adjustables(tree, &r.adb_count, &r.adi_count);
  return r;
}

TryRunMResult try_clk_wavemin_m(ClockTree& tree, const CellLibrary& lib,
                                const Characterizer& chr,
                                const ModeSet& modes,
                                const WaveMinOptions& opts) {
  TryRunMResult out;
  WaveMinOptions ft = opts;
  ft.quarantine_zone_errors = true;
  try {
    out.result = clk_wavemin_m(tree, lib, chr, modes, ft);
    if (!out.result.opt.success) {
      out.status = Status(StatusCode::Infeasible,
                          "no feasible intersection at kappa=" +
                              std::to_string(opts.kappa) +
                              (out.result.used_adb_flow
                                   ? " even after ADB insertion"
                                   : ""));
    }
  } catch (const Error& e) {
    out.status = Status(StatusCode::InvalidInput, e.what());
  } catch (const std::exception& e) {
    out.status = Status(StatusCode::Internal, e.what());
  }
  return out;
}

} // namespace wm
