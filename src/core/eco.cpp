#include "core/eco.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <set>

#include "core/intervals.hpp"
#include "core/noise_model.hpp"
#include "core/sampling.hpp"
#include "core/solver_dispatch.hpp"
#include "mosp/solver.hpp"
#include "tree/zone.hpp"
#include "util/error.hpp"

namespace wm {

namespace {

/// Does this candidate reproduce the sink's current configuration?
bool is_current_config(const TreeNode& n, const Candidate& c) {
  return c.cell == n.cell && c.adj_codes == n.adj_codes &&
         c.xor_negative == n.xor_negative;
}

} // namespace

EcoResult eco_reoptimize(ClockTree& tree, const CellLibrary& lib,
                         const Characterizer& chr, const ModeSet& modes,
                         const std::vector<NodeId>& changed,
                         const WaveMinOptions& opts) {
  const auto t0 = std::chrono::steady_clock::now();
  EcoResult result;

  const ZoneMap zones(tree, opts.zone_tile);
  result.zones_total = zones.zones().size();

  // Touched tiles: the changed nodes' zones plus a one-tile ring (their
  // current couples into neighbours through the grid).
  std::set<std::pair<int, int>> touched_tiles;
  for (const NodeId id : changed) {
    for (const NodeId leaf : tree.leaves_under(id)) {
      const int z = zones.zone_of(leaf);
      if (z < 0) continue;
      const Zone& zone = zones.zones()[static_cast<std::size_t>(z)];
      for (int dx = -1; dx <= 1; ++dx) {
        for (int dy = -1; dy <= 1; ++dy) {
          touched_tiles.insert({zone.gx + dx, zone.gy + dy});
        }
      }
    }
  }
  std::vector<bool> touched(zones.zones().size(), false);
  for (std::size_t z = 0; z < zones.zones().size(); ++z) {
    const Zone& zone = zones.zones()[z];
    touched[z] = touched_tiles.count({zone.gx, zone.gy}) > 0;
  }
  result.zones_touched = static_cast<std::size_t>(
      std::count(touched.begin(), touched.end(), true));
  if (result.zones_touched == 0) {
    result.success = true;
    return result;
  }

  Preprocessed pre =
      preprocess(tree, zones, modes, lib.assignment_library(), chr, lib);

  // Freeze every sink outside the touched zones to its current
  // configuration (single surviving candidate).
  for (SinkInfo& s : pre.sinks) {
    if (s.zone >= 0 && touched[static_cast<std::size_t>(s.zone)]) {
      continue;
    }
    const TreeNode& n = tree.node(s.id);
    const auto it = std::find_if(
        s.candidates.begin(), s.candidates.end(),
        [&](const Candidate& c) { return is_current_config(n, c); });
    if (it == s.candidates.end()) continue;  // unknown config: leave free
    const Candidate keep = *it;
    s.candidates.assign(1, keep);
  }

  const std::vector<Intersection> inters =
      enumerate_intersections(pre, opts.kappa - opts.skew_guard_band,
                              opts.dof_beam);
  if (inters.empty()) {
    result.runtime_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    return result;  // the edit broke feasibility: needs a full re-run
  }

  std::vector<std::vector<std::size_t>> zone_sinks(zones.zones().size());
  for (std::size_t s = 0; s < pre.sinks.size(); ++s) {
    zone_sinks[static_cast<std::size_t>(pre.sinks[s].zone)].push_back(s);
  }

  double best_worst = std::numeric_limits<double>::max();
  const Intersection* best_x = nullptr;
  std::vector<std::vector<int>> best_choices;
  for (const Intersection& x : inters) {
    double worst = 0.0;
    std::vector<std::vector<int>> choices(zones.zones().size());
    for (std::size_t z = 0; z < zones.zones().size(); ++z) {
      if (!touched[z] || zone_sinks[z].empty()) continue;
      const auto slots =
          build_slots(pre, zone_sinks[z], x, opts.samples, opts.period);
      const MospGraph g = build_zone_mosp(pre, zone_sinks[z],
                                          zones.zones()[z], x, chr,
                                          modes, slots, opts);
      MospStats mosp_stats;
      const MospSolution sol = dispatch_solve(g, opts, &mosp_stats);
      result.labels_created += mosp_stats.labels_created;
      result.labels_pruned_pre += mosp_stats.labels_pruned_pre;
      worst = std::max(worst, sol.worst);
      choices[z] = sol.choice;
    }
    if (worst < best_worst) {
      best_worst = worst;
      best_x = &x;
      best_choices = std::move(choices);
    }
  }
  WM_ASSERT(best_x != nullptr, "no intersection evaluated");

  for (std::size_t z = 0; z < zones.zones().size(); ++z) {
    if (!touched[z]) continue;
    const auto& sinks = zone_sinks[z];
    const auto& choice = best_choices[z];
    for (std::size_t i = 0; i < sinks.size(); ++i) {
      const SinkInfo& sink = pre.sinks[sinks[i]];
      const Candidate& cand =
          sink.candidates[static_cast<std::size_t>(choice[i])];
      tree.set_cell(sink.id, cand.cell);
      TreeNode& node = tree.node(sink.id);
      node.adj_codes = cand.adj_codes;
      node.xor_negative = cand.xor_negative;
      node.cell_extra_delay = cand.cell_extra_delay;
    }
  }

  result.success = true;
  result.model_peak = best_worst;
  result.runtime_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  return result;
}

} // namespace wm
