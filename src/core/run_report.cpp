#include "core/run_report.hpp"

#include <sstream>

namespace wm {

const char* to_string(LadderLevel level) {
  switch (level) {
    case LadderLevel::Full: return "full";
    case LadderLevel::Greedy: return "greedy";
    case LadderLevel::Identity: return "identity";
  }
  return "?";
}

bool RunReport::degraded() const {
  if (deadline_hit || label_budget_hit || cancelled) return true;
  if (quarantined_errors > 0 || intersections_skipped > 0) return true;
  for (const ZoneRunReport& z : zones) {
    if (z.ladder != LadderLevel::Full || !z.error.empty()) return true;
  }
  return false;
}

std::size_t RunReport::zones_at(LadderLevel level) const {
  std::size_t n = 0;
  for (const ZoneRunReport& z : zones) {
    if (z.ladder == level) ++n;
  }
  return n;
}

std::size_t RunReport::beam_capped_zones() const {
  std::size_t n = 0;
  for (const ZoneRunReport& z : zones) {
    if (z.beam_capped) ++n;
  }
  return n;
}

std::string RunReport::summary() const {
  std::ostringstream os;
  os << "run report: " << zones.size() << " zone(s) — "
     << zones_at(LadderLevel::Full) << " full, "
     << zones_at(LadderLevel::Greedy) << " greedy, "
     << zones_at(LadderLevel::Identity) << " identity";
  if (beam_capped_zones() > 0) {
    os << "; " << beam_capped_zones() << " beam-capped";
  }
  if (deadline_hit) os << "; deadline hit";
  if (label_budget_hit) os << "; label budget hit";
  if (cancelled) os << "; cancelled";
  if (labels_consumed > 0) os << "; " << labels_consumed << " labels";
  if (intersections_skipped > 0) {
    os << "; " << intersections_skipped << " intersection(s) skipped";
  }
  if (quarantined_errors > 0) {
    os << "; " << quarantined_errors << " zone error(s) quarantined";
  }
  if (resumed_zones > 0) {
    os << "; " << resumed_zones << " zone(s) resumed from checkpoint";
  }
  if (seed != 0) os << "; seed " << seed;
  if (!job_id.empty()) os << "; job " << job_id;
  os << '\n';
  for (const ZoneRunReport& z : zones) {
    if (z.ladder == LadderLevel::Full && z.error.empty() &&
        !z.beam_capped) {
      continue;  // only report the interesting zones
    }
    os << "  zone " << z.zone << " (" << z.sinks
       << " sink(s)): " << to_string(z.ladder);
    if (z.beam_capped) os << ", beam-capped";
    if (!z.error.empty()) os << ", quarantined: " << z.error;
    os << '\n';
  }
  return os.str();
}

} // namespace wm
