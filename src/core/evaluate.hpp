#pragma once
// Validation harness: evaluate a (possibly optimized) clock tree with
// the full superposition simulator and the power-grid noise model —
// the reproduction's equivalent of the paper's HSPICE + power-grid
// measurement loop that produces the Table V / VII columns.

#include <vector>

#include "timing/power_mode.hpp"
#include "tree/clock_tree.hpp"
#include "util/units.hpp"

namespace wm {

struct Evaluation {
  /// Whole-chip total current waveform peak over modes — the
  /// reproduction's "Peak curr." column (the paper's per-circuit
  /// magnitudes are consistent with a chip-level figure).
  UA peak_current = 0.0;
  /// Worst tile-local current peak (secondary, localized view; its worst
  /// tile is often a cluster of non-leaf cells the assignment cannot
  /// touch).
  UA tile_peak_current = 0.0;
  MV vdd_noise = 0.0;  ///< worst VDD droop over modes and tiles
  MV gnd_noise = 0.0;  ///< worst ground bounce
  Ps worst_skew = 0.0; ///< worst clock skew over modes
  /// Average clock-tree power in the nominal (first) mode, in mW:
  /// mean supply current over the period times VDD.
  double avg_power_mw = 0.0;
  std::vector<UA> peak_by_mode;
};

/// Simulate every mode and aggregate the worst-case metrics.
Evaluation evaluate_design(const ClockTree& tree, const ModeSet& modes,
                           Ps dt = 1.0);

/// Single-nominal-mode shorthand.
Evaluation evaluate_design(const ClockTree& tree, Ps dt = 1.0);

} // namespace wm
