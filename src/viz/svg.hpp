#pragma once
// SVG rendering of clock trees and waveforms.
//
// A reproduction lives and dies by being inspectable: these helpers
// render the tree layout (placement, routing, polarity, islands) and
// current waveforms as standalone SVG documents, for docs and debugging.
// No external dependencies — the SVG is assembled as text.

#include <string>
#include <vector>

#include "tree/clock_tree.hpp"
#include "wave/tree_sim.hpp"
#include "wave/waveform.hpp"

namespace wm {

struct TreeSvgOptions {
  double scale = 3.0;       ///< pixels per um
  double margin = 24.0;     ///< canvas margin in pixels
  bool shade_islands = true;
  bool label_leaves = false;
};

/// Render the tree: island stripes, wires (parent->child), nodes
/// colored by role and polarity (buffers blue, inverters red, ADB/ADI
/// purple/orange, non-leaves gray; XOR-reconfigurable leaves get a ring).
std::string tree_to_svg(const ClockTree& tree, TreeSvgOptions opts = {});

struct WaveSvgOptions {
  double width = 860.0;
  double height = 320.0;
  Ps t_min = 0.0;         ///< plotted time range; t_max <= t_min plots all
  Ps t_max = 0.0;
  const char* x_label = "time (ps)";
  const char* y_label = "current (uA)";
};

/// Plot one or more waveforms as colored polylines with axes and a
/// legend. `labels` must match `waves` in length.
std::string waveforms_to_svg(const std::vector<const Waveform*>& waves,
                             const std::vector<std::string>& labels,
                             WaveSvgOptions opts = {});

struct HeatmapSvgOptions {
  Um tile = 50.0;       ///< aggregation tile (the zone size)
  double scale = 3.0;   ///< pixels per um
  double margin = 24.0;
};

/// Tile-level peak-current heat map: each 50 um tile is shaded by the
/// peak of its local current waveform (max of both rails), the
/// quantity the zone-wise optimization minimizes. Node markers overlay
/// the tiles.
std::string noise_heatmap_svg(const ClockTree& tree, const TreeSim& sim,
                              HeatmapSvgOptions opts = {});

/// Write any SVG string to a file (throws wm::Error on IO failure).
void save_svg(const std::string& path, const std::string& svg);

} // namespace wm
