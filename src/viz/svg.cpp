#include "viz/svg.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/error.hpp"

namespace wm {

namespace {

const char* kSeriesColors[] = {"#1f77b4", "#d62728", "#2ca02c",
                               "#9467bd", "#ff7f0e", "#8c564b"};

const char* node_color(const TreeNode& n) {
  if (!n.is_leaf()) return "#9aa0a6";  // gray
  switch (n.cell->kind) {
    case CellKind::Buffer: return "#1f77b4";    // blue
    case CellKind::Inverter: return "#d62728";  // red
    case CellKind::Adb: return "#9467bd";       // purple
    case CellKind::Adi: return "#ff7f0e";       // orange
  }
  return "#000000";
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(2);
  os << std::fixed << v;
  return os.str();
}

} // namespace

std::string tree_to_svg(const ClockTree& tree, TreeSvgOptions opts) {
  WM_REQUIRE(!tree.empty(), "empty tree");
  Um max_x = 0.0, max_y = 0.0;
  int max_island = 0;
  for (const TreeNode& n : tree.nodes()) {
    max_x = std::max(max_x, n.pos.x);
    max_y = std::max(max_y, n.pos.y);
    max_island = std::max(max_island, n.island);
  }
  const double w = max_x * opts.scale + 2.0 * opts.margin;
  const double h = max_y * opts.scale + 2.0 * opts.margin;
  auto px = [&](Um x) { return opts.margin + x * opts.scale; };
  // SVG y grows downward; flip so the layout reads like a floorplan.
  auto py = [&](Um y) { return h - opts.margin - y * opts.scale; };

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << fmt(w)
      << "\" height=\"" << fmt(h) << "\" viewBox=\"0 0 " << fmt(w) << ' '
      << fmt(h) << "\">\n";
  svg << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";

  if (opts.shade_islands && max_island > 0) {
    // Vertical stripes, alternating tint (matches the generator's
    // island geometry).
    const double stripe_w = max_x * opts.scale /
                            static_cast<double>(max_island + 1);
    for (int i = 0; i <= max_island; ++i) {
      svg << "<rect x=\"" << fmt(opts.margin + i * stripe_w) << "\" y=\""
          << fmt(opts.margin) << "\" width=\"" << fmt(stripe_w)
          << "\" height=\"" << fmt(h - 2.0 * opts.margin) << "\" fill=\""
          << (i % 2 ? "#f2f6fc" : "#fbfbf5") << "\"/>\n";
    }
  }

  // Wires.
  for (const TreeNode& n : tree.nodes()) {
    if (n.parent == kNoNode) continue;
    const TreeNode& p = tree.node(n.parent);
    svg << "<line x1=\"" << fmt(px(p.pos.x)) << "\" y1=\""
        << fmt(py(p.pos.y)) << "\" x2=\"" << fmt(px(n.pos.x))
        << "\" y2=\"" << fmt(py(n.pos.y))
        << "\" stroke=\"#c0c4cc\" stroke-width=\"1\"/>\n";
  }

  // Nodes.
  for (const TreeNode& n : tree.nodes()) {
    const double r = n.is_leaf() ? 4.0 : (n.parent == kNoNode ? 7.0 : 5.0);
    svg << "<circle cx=\"" << fmt(px(n.pos.x)) << "\" cy=\""
        << fmt(py(n.pos.y)) << "\" r=\"" << fmt(r) << "\" fill=\""
        << node_color(n) << "\"";
    if (!n.xor_negative.empty()) {
      svg << " stroke=\"#111111\" stroke-width=\"2\"";
    }
    svg << "><title>" << n.cell->name << " @ (" << fmt(n.pos.x) << ','
        << fmt(n.pos.y) << ")</title></circle>\n";
    if (opts.label_leaves && n.is_leaf()) {
      svg << "<text x=\"" << fmt(px(n.pos.x) + 6.0) << "\" y=\""
          << fmt(py(n.pos.y) - 6.0)
          << "\" font-size=\"9\" fill=\"#333\">" << n.id << "</text>\n";
    }
  }
  svg << "</svg>\n";
  return svg.str();
}

std::string waveforms_to_svg(const std::vector<const Waveform*>& waves,
                             const std::vector<std::string>& labels,
                             WaveSvgOptions opts) {
  WM_REQUIRE(!waves.empty(), "no waveforms to plot");
  WM_REQUIRE(waves.size() == labels.size(),
             "labels must match waveforms");

  Ps lo = opts.t_min, hi = opts.t_max;
  if (hi <= lo) {
    lo = std::numeric_limits<Ps>::max();
    hi = std::numeric_limits<Ps>::lowest();
    for (const Waveform* w : waves) {
      WM_REQUIRE(w != nullptr && !w->empty(), "null/empty waveform");
      lo = std::min(lo, w->t0());
      hi = std::max(hi, w->t_end());
    }
  }
  double y_max = 0.0;
  for (const Waveform* w : waves) y_max = std::max(y_max, w->peak());
  if (y_max <= 0.0) y_max = 1.0;

  const double ml = 56.0, mr = 16.0, mt = 18.0, mb = 40.0;
  const double pw = opts.width - ml - mr;
  const double ph = opts.height - mt - mb;
  auto sx = [&](Ps t) { return ml + pw * (t - lo) / (hi - lo); };
  auto sy = [&](double v) { return mt + ph * (1.0 - v / y_max); };

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
      << fmt(opts.width) << "\" height=\"" << fmt(opts.height)
      << "\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  // Axes.
  svg << "<line x1=\"" << fmt(ml) << "\" y1=\"" << fmt(mt + ph)
      << "\" x2=\"" << fmt(ml + pw) << "\" y2=\"" << fmt(mt + ph)
      << "\" stroke=\"#333\"/>\n";
  svg << "<line x1=\"" << fmt(ml) << "\" y1=\"" << fmt(mt) << "\" x2=\""
      << fmt(ml) << "\" y2=\"" << fmt(mt + ph) << "\" stroke=\"#333\"/>\n";
  // Ticks (5 on each axis).
  for (int i = 0; i <= 5; ++i) {
    const Ps t = lo + (hi - lo) * i / 5.0;
    svg << "<text x=\"" << fmt(sx(t)) << "\" y=\"" << fmt(mt + ph + 16.0)
        << "\" font-size=\"10\" text-anchor=\"middle\" fill=\"#333\">"
        << fmt(t) << "</text>\n";
    const double v = y_max * i / 5.0;
    svg << "<text x=\"" << fmt(ml - 6.0) << "\" y=\"" << fmt(sy(v) + 3.0)
        << "\" font-size=\"10\" text-anchor=\"end\" fill=\"#333\">"
        << fmt(v) << "</text>\n";
  }
  svg << "<text x=\"" << fmt(ml + pw / 2.0) << "\" y=\""
      << fmt(opts.height - 6.0)
      << "\" font-size=\"11\" text-anchor=\"middle\" fill=\"#333\">"
      << opts.x_label << "</text>\n";

  // Series.
  for (std::size_t s = 0; s < waves.size(); ++s) {
    const Waveform& w = *waves[s];
    const char* color = kSeriesColors[s % 6];
    svg << "<polyline fill=\"none\" stroke=\"" << color
        << "\" stroke-width=\"1.5\" points=\"";
    const int n_pts = 400;
    for (int i = 0; i <= n_pts; ++i) {
      const Ps t = lo + (hi - lo) * i / n_pts;
      svg << fmt(sx(t)) << ',' << fmt(sy(std::max(0.0, w.value_at(t))))
          << ' ';
    }
    svg << "\"/>\n";
    // Legend entry.
    const double ly = mt + 14.0 * (static_cast<double>(s) + 1.0);
    svg << "<rect x=\"" << fmt(ml + pw - 150.0) << "\" y=\""
        << fmt(ly - 8.0)
        << "\" width=\"10\" height=\"10\" fill=\"" << color << "\"/>\n";
    svg << "<text x=\"" << fmt(ml + pw - 136.0) << "\" y=\"" << fmt(ly)
        << "\" font-size=\"11\" fill=\"#333\">" << labels[s]
        << "</text>\n";
  }
  svg << "</svg>\n";
  return svg.str();
}

std::string noise_heatmap_svg(const ClockTree& tree, const TreeSim& sim,
                              HeatmapSvgOptions opts) {
  WM_REQUIRE(!tree.empty(), "empty tree");
  WM_REQUIRE(opts.tile > 0.0, "tile must be positive");

  // Aggregate per tile.
  struct Tile {
    int gx, gy;
    std::vector<NodeId> members;
    double peak = 0.0;
  };
  std::vector<Tile> tiles;
  auto find_tile = [&](int gx, int gy) -> Tile& {
    for (Tile& t : tiles) {
      if (t.gx == gx && t.gy == gy) return t;
    }
    tiles.push_back(Tile{gx, gy, {}, 0.0});
    return tiles.back();
  };
  Um max_x = 0.0, max_y = 0.0;
  for (const TreeNode& n : tree.nodes()) {
    max_x = std::max(max_x, n.pos.x);
    max_y = std::max(max_y, n.pos.y);
    find_tile(static_cast<int>(std::floor(n.pos.x / opts.tile)),
              static_cast<int>(std::floor(n.pos.y / opts.tile)))
        .members.push_back(n.id);
  }
  double worst = 1e-9;
  for (Tile& t : tiles) {
    const Waveform idd = sim.sum_rail(t.members, Rail::Vdd);
    const Waveform iss = sim.sum_rail(t.members, Rail::Gnd);
    t.peak = std::max(idd.peak(), iss.peak());
    worst = std::max(worst, t.peak);
  }

  const double w = max_x * opts.scale + 2.0 * opts.margin;
  const double h = max_y * opts.scale + 2.0 * opts.margin;
  auto px = [&](Um x) { return opts.margin + x * opts.scale; };
  auto py = [&](Um y) { return h - opts.margin - y * opts.scale; };
  const double tp = opts.tile * opts.scale;

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << fmt(w)
      << "\" height=\"" << fmt(h) << "\">\n";
  svg << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  for (const Tile& t : tiles) {
    // White -> red ramp by relative peak.
    const double rel = t.peak / worst;
    const int g = static_cast<int>(255.0 * (1.0 - 0.85 * rel));
    svg << "<rect x=\"" << fmt(px(t.gx * opts.tile)) << "\" y=\""
        << fmt(py((t.gy + 1) * opts.tile)) << "\" width=\"" << fmt(tp)
        << "\" height=\"" << fmt(tp) << "\" fill=\"rgb(255," << g << ','
        << g << ")\" stroke=\"#ddd\"><title>tile (" << t.gx << ','
        << t.gy << "): " << fmt(t.peak) << " uA</title></rect>\n";
  }
  for (const TreeNode& n : tree.nodes()) {
    svg << "<circle cx=\"" << fmt(px(n.pos.x)) << "\" cy=\""
        << fmt(py(n.pos.y)) << "\" r=\"" << (n.is_leaf() ? 3 : 4)
        << "\" fill=\"" << node_color(n) << "\"/>\n";
  }
  svg << "</svg>\n";
  return svg.str();
}

void save_svg(const std::string& path, const std::string& svg) {
  std::ofstream os(path);
  WM_REQUIRE(static_cast<bool>(os), "cannot open for write: " + path);
  os << svg;
  WM_REQUIRE(static_cast<bool>(os), "write failed: " + path);
}

} // namespace wm
