#pragma once
// Earlier polarity-assignment baselines from the paper's related work,
// implemented for the lineage comparison bench:
//
//   [22] Nieh et al., DAC'05   — "opposite-phase clock tree": split the
//        tree into two halves at the root and invert one half's root
//        buffer, so half the chip charges while the other discharges.
//        Global balance only; no local (zone) awareness.
//
//   [24] Chen et al., TODAES'09 — skew-aware *leaf* polarity assignment
//        using placement: per zone, balance the leaf polarities without
//        resizing, subject to the skew bound.
//
// Both reuse this repo's substrates so the comparison against
// ClkPeakMin [27] and ClkWaveMin is apples-to-apples.

#include "cells/characterizer.hpp"
#include "cells/library.hpp"
#include "core/wavemin.hpp"
#include "tree/clock_tree.hpp"

namespace wm {

/// [22]: invert the root subtrees covering (closest to) half the
/// leaves. Returns how many subtree roots were inverted. Leaf cells are
/// untouched; flip-flops under inverted subtrees become negative-edge
/// triggered (outside this model's scope, as in the paper).
int apply_nieh_half_split(ClockTree& tree, const CellLibrary& lib);

/// [24]: per-zone, skew-aware leaf polarity assignment *without* buffer
/// sizing: candidates are the same-drive buffer/inverter pair only.
WaveMinResult clk_chen_polarity(ClockTree& tree, const CellLibrary& lib,
                                const Characterizer& chr, Ps kappa);

} // namespace wm
