#include "peakmin/clkpeakmin.hpp"

namespace wm {

WaveMinOptions peakmin_options(Ps kappa) {
  WaveMinOptions o;
  o.kappa = kappa;
  o.samples = 4;               // the four classic sampling points
  o.shift_by_arrival = false;  // limitation 1 of the prior art
  o.include_nonleaf = false;   // limitation 2
  o.solver = SolverKind::Exact;  // knapsack-exact per zone
  return o;
}

WaveMinResult clk_peakmin(ClockTree& tree, const CellLibrary& lib,
                          const Characterizer& chr, Ps kappa) {
  return clk_wavemin(tree, lib, chr, peakmin_options(kappa));
}

} // namespace wm
