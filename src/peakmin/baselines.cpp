#include "peakmin/baselines.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace wm {

int apply_nieh_half_split(ClockTree& tree, const CellLibrary& lib) {
  WM_REQUIRE(!tree.empty(), "empty tree");
  // Descend through single-child segments (source-route repeater
  // chains) to the first real branch point — that is where the paper's
  // "two subtrees" live.
  NodeId split_at = tree.root();
  while (tree.node(split_at).children.size() == 1) {
    split_at = tree.node(split_at).children.front();
  }
  const TreeNode& root = tree.node(split_at);
  WM_REQUIRE(!root.children.empty(), "tree has no subtrees");

  // Greedily pick root subtrees until ~half the leaves are covered
  // (largest first, the way the paper divides the tree evenly).
  struct Sub {
    NodeId id;
    std::size_t leaves;
  };
  std::vector<Sub> subs;
  std::size_t total = 0;
  for (NodeId c : root.children) {
    const std::size_t n = tree.leaves_under(c).size();
    subs.push_back({c, n});
    total += n;
  }
  std::sort(subs.begin(), subs.end(),
            [](const Sub& a, const Sub& b) { return a.leaves > b.leaves; });

  int inverted = 0;
  std::size_t covered = 0;
  for (const Sub& s : subs) {
    if (covered * 2 >= total) break;
    const TreeNode& n = tree.node(s.id);
    // Swap the subtree root's buffer for the same-drive inverter.
    const Cell* inv = lib.find("INV_X" + std::to_string(n.cell->drive));
    if (inv == nullptr) continue;
    tree.set_cell(s.id, inv);
    covered += s.leaves;
    ++inverted;
  }
  return inverted;
}

WaveMinResult clk_chen_polarity(ClockTree& tree, const CellLibrary& lib,
                                const Characterizer& chr, Ps kappa) {
  // Leaf polarity only, no sizing: same-drive buffer/inverter pair.
  // The rest of the machinery (zones, feasible intervals, the 4-point
  // objective of the era) is shared with the PeakMin baseline.
  int drive = 16;
  for (const TreeNode& n : tree.nodes()) {
    if (n.is_leaf()) {
      drive = n.cell->drive;
      break;
    }
  }
  const std::vector<const Cell*> pair = {
      &lib.by_name("BUF_X" + std::to_string(drive)),
      &lib.by_name("INV_X" + std::to_string(drive))};

  WaveMinOptions opts;
  opts.kappa = kappa;
  opts.samples = 4;
  opts.shift_by_arrival = false;
  opts.include_nonleaf = false;
  opts.solver = SolverKind::Exact;

  int max_island = 0;
  for (const TreeNode& n : tree.nodes()) {
    max_island = std::max(max_island, n.island);
  }
  return run_wavemin(tree, lib, chr, ModeSet::single(max_island + 1),
                     pair, opts);
}

} // namespace wm
