#pragma once
// ClkPeakMin — the comparison baseline ([27]: Jang, Joo, Kim, TCAD'11),
// the "best ever known method" the paper measures against.
//
// PeakMin performs polarity assignment with sizing per feasible interval
// and zone, but estimates noise only from four scalar peak values per
// cell — (VDD, rising), (VDD, falling), (Gnd, rising), (Gnd, falling) —
// without the arrival-time shift of each sink's pulse and without the
// non-leaf elements' waveform. Its knapsack formulation solves each zone
// exactly under that coarse objective.
//
// This implementation reuses the WaveMin machinery with the
// corresponding settings: |S| = 4 windowed slots, shift_by_arrival off,
// include_nonleaf off, exact inner solver (the Pareto DP on a 4-dim
// objective is the knapsack equivalent). That makes the baseline share
// the same preprocessing, skew legality and reporting paths — exactly
// the controlled comparison Table V needs.

#include "cells/characterizer.hpp"
#include "cells/library.hpp"
#include "core/options.hpp"
#include "core/wavemin.hpp"
#include "timing/power_mode.hpp"
#include "tree/clock_tree.hpp"

namespace wm {

/// The options run_wavemin needs to behave like ClkPeakMin.
WaveMinOptions peakmin_options(Ps kappa);

/// Run the baseline on a single-mode design and apply its assignment.
WaveMinResult clk_peakmin(ClockTree& tree, const CellLibrary& lib,
                          const Characterizer& chr, Ps kappa);

} // namespace wm
