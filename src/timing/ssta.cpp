#include "timing/ssta.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "timing/arrival.hpp"
#include "util/error.hpp"

namespace wm {

namespace {

/// P(Z > x) for a standard normal.
double tail(double x) {
  return 0.5 * std::erfc(x / std::sqrt(2.0));
}

} // namespace

SstaResult analyze_skew_yield(const ClockTree& tree, const ModeSet& modes,
                              std::size_t mode_index, Ps kappa,
                              SstaOptions opts) {
  WM_REQUIRE(kappa > 0.0, "skew bound must be positive");
  WM_REQUIRE(opts.sigma_over_mu >= 0.0, "sigma must be non-negative");

  const ArrivalResult arr = compute_arrivals(tree, modes, mode_index);

  // Per-node variance of the *output* arrival: parent's variance plus
  // this edge's wire-stage and cell-stage contributions.
  std::vector<double> var(tree.size(), 0.0);
  std::vector<int> depth(tree.size(), 0);
  const double s2 = opts.sigma_over_mu * opts.sigma_over_mu;
  for (const NodeId id : tree.topological_order()) {
    const TreeNode& n = tree.node(id);
    const auto i = static_cast<std::size_t>(n.id);
    double v = 0.0;
    if (n.parent != kNoNode) {
      const auto p = static_cast<std::size_t>(n.parent);
      v = var[p];
      depth[i] = depth[static_cast<std::size_t>(n.parent)] + 1;
      const Ps wire = arr.input_arrival[i] - arr.output_arrival[p];
      v += s2 * wire * wire;
    }
    const Ps cell = arr.output_arrival[i] - arr.input_arrival[i];
    v += s2 * cell * cell;
    var[i] = v;
  }

  const std::vector<NodeId> leaves = tree.leaves();
  SstaResult r;
  r.nominal_skew = arr.skew();
  if (leaves.size() < 2 || opts.sigma_over_mu == 0.0) {
    r.yield = r.nominal_skew <= kappa ? 1.0 : 0.0;
    return r;
  }

  // Pairwise violation probabilities with shared-prefix covariance.
  auto lca_var = [&](NodeId a, NodeId b) {
    int da = depth[static_cast<std::size_t>(a)];
    int db = depth[static_cast<std::size_t>(b)];
    while (da > db) {
      a = tree.node(a).parent;
      --da;
    }
    while (db > da) {
      b = tree.node(b).parent;
      --db;
    }
    while (a != b) {
      a = tree.node(a).parent;
      b = tree.node(b).parent;
    }
    return var[static_cast<std::size_t>(a)];
  };

  double p_total = 0.0;
  double p_worst = 0.0;
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    for (std::size_t j = i + 1; j < leaves.size(); ++j) {
      const auto li = static_cast<std::size_t>(leaves[i]);
      const auto lj = static_cast<std::size_t>(leaves[j]);
      const double mu =
          arr.output_arrival[li] - arr.output_arrival[lj];
      const double cov = lca_var(leaves[i], leaves[j]);
      const double v = std::max(var[li] + var[lj] - 2.0 * cov, 1e-12);
      const double sd = std::sqrt(v);
      const double p =
          tail((kappa - mu) / sd) + tail((kappa + mu) / sd);
      p_total += p;
      if (p > p_worst) {
        p_worst = p;
        r.skew_sigma = sd;
        if (mu >= 0.0) {
          r.critical_late = leaves[i];
          r.critical_early = leaves[j];
        } else {
          r.critical_late = leaves[j];
          r.critical_early = leaves[i];
        }
      }
    }
  }
  // Union bound: a lower bound on the true yield (exact when a single
  // pair dominates).
  r.yield = std::clamp(1.0 - p_total, 0.0, 1.0);
  return r;
}

SstaResult analyze_skew_yield(const ClockTree& tree, const ModeSet& modes,
                              Ps kappa, SstaOptions opts) {
  SstaResult worst;
  worst.yield = std::numeric_limits<double>::max();
  for (std::size_t m = 0; m < modes.count(); ++m) {
    const SstaResult r =
        analyze_skew_yield(tree, modes, m, kappa, opts);
    if (r.yield < worst.yield) worst = r;
  }
  return worst;
}

} // namespace wm
