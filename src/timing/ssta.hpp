#pragma once
// Statistical timing analysis (SSTA-lite) for skew-yield estimation.
//
// The Monte Carlo engine (mc/monte_carlo.hpp) measures skew yield by
// brute force; this module estimates the same quantity analytically,
// the way variation-aware assignment ([26], Kang & Kim) needs it inside
// an optimization loop where a thousand simulations per candidate are
// unaffordable.
//
// Model: every cell delay and every wire delay carries independent
// Gaussian multiplicative variation with the given sigma/mu (matching
// the MC engine's model). Arrival times are then Gaussians whose
// variances accumulate along each root-to-sink path:
//
//     var(arrival_i) = sum over path edges/cells of (sigma * d_k)^2.
//
// Two sinks share the variance of their common path prefix, so the
// *skew* between them is Gaussian with
//
//     var(a_i - a_j) = var_i + var_j - 2 cov_ij,
//     cov_ij = variance accumulated on the common prefix.
//
// The worst pair bounds the yield: P(skew <= kappa) is estimated from
// the maximum over pairs of P(|a_i - a_j| > kappa) via a union bound
// (tight when one pair dominates, conservative otherwise).

#include <vector>

#include "timing/power_mode.hpp"
#include "tree/clock_tree.hpp"
#include "util/units.hpp"

namespace wm {

struct SstaOptions {
  double sigma_over_mu = 0.05;  ///< per-stage delay variation
};

struct SstaResult {
  Ps nominal_skew = 0.0;
  /// Standard deviation of the critical (max-mean, max-variance) sink
  /// pair's skew.
  Ps skew_sigma = 0.0;
  /// P(skew <= kappa), union bound over sink pairs (lower bound on the
  /// true yield; exact in the single-dominant-pair regime).
  double yield = 1.0;
  /// The pair realizing the worst violation probability.
  NodeId critical_early = kNoNode;
  NodeId critical_late = kNoNode;
};

/// Analytical skew-yield estimate for one power mode.
SstaResult analyze_skew_yield(const ClockTree& tree, const ModeSet& modes,
                              std::size_t mode_index, Ps kappa,
                              SstaOptions opts = {});

/// Worst (minimum) yield across all modes.
SstaResult analyze_skew_yield(const ClockTree& tree, const ModeSet& modes,
                              Ps kappa, SstaOptions opts = {});

} // namespace wm
