#include "timing/power_mode.hpp"

#include <algorithm>
#include <cmath>

namespace wm {

ModeSet ModeSet::single(int islands) {
  WM_REQUIRE(islands >= 1, "need at least one island");
  PowerMode m;
  m.name = "nominal";
  m.island_vdd.assign(static_cast<std::size_t>(islands),
                      tech::kVddNominal);
  return ModeSet({std::move(m)});
}

ModeSet::ModeSet(std::vector<PowerMode> modes) : modes_(std::move(modes)) {
  for (const PowerMode& m : modes_) {
    WM_REQUIRE(m.island_vdd.size() == island_count(),
               "all modes must cover the same islands");
  }
}

void ModeSet::add(PowerMode mode) {
  if (!modes_.empty()) {
    WM_REQUIRE(mode.island_vdd.size() == island_count(),
               "all modes must cover the same islands");
  }
  modes_.push_back(std::move(mode));
}

const PowerMode& ModeSet::mode(std::size_t m) const {
  WM_REQUIRE(m < modes_.size(), "mode index out of range");
  return modes_[m];
}

Volt ModeSet::vdd(std::size_t mode, int island) const {
  const PowerMode& m = this->mode(mode);
  WM_REQUIRE(island >= 0 &&
                 island < static_cast<int>(m.island_vdd.size()),
             "island index out of range");
  return m.island_vdd[static_cast<std::size_t>(island)];
}

bool ModeSet::gated(std::size_t mode, int island) const {
  const PowerMode& m = this->mode(mode);
  if (m.gated_islands.empty()) return false;
  WM_REQUIRE(island >= 0, "island index out of range");
  const auto i = static_cast<std::size_t>(island);
  return i < m.gated_islands.size() && m.gated_islands[i] != 0;
}

double ModeSet::temp(std::size_t mode, int island) const {
  const PowerMode& m = this->mode(mode);
  if (m.island_temp.empty()) return 25.0;
  WM_REQUIRE(island >= 0, "island index out of range");
  const auto i = static_cast<std::size_t>(island);
  return i < m.island_temp.size() ? m.island_temp[i] : 25.0;
}

std::vector<double> ModeSet::distinct_temps() const {
  std::vector<double> out{25.0};
  for (const PowerMode& m : modes_) {
    for (double t : m.island_temp) {
      const bool seen = std::any_of(out.begin(), out.end(), [t](double u) {
        return std::abs(u - t) < 1e-9;
      });
      if (!seen) out.push_back(t);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Volt> ModeSet::distinct_vdds() const {
  std::vector<Volt> out;
  for (const PowerMode& m : modes_) {
    for (Volt v : m.island_vdd) {
      const bool seen = std::any_of(out.begin(), out.end(), [v](Volt u) {
        return std::abs(u - v) < 1e-9;
      });
      if (!seen) out.push_back(v);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

} // namespace wm
