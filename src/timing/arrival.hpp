#pragma once
// Arrival-time analysis over the buffered clock tree.
//
// Elmore-style model with slew propagation:
//   input_arrival(child) = output_arrival(parent) + wire_elmore(edge)
//   output_arrival(v)    = input_arrival(v) + cell_delay(v) [+ ADB code]
//   slew_in(child)       = slew_out(parent) + wire degradation
// where cell_delay is the analytic timing model at the node's load, the
// propagated input slew and the island supply of the analyzed power
// mode, and wire_elmore is R_wire * (C_wire/2 + C_in(child)). This is
// the same delay model the validation simulator uses, so optimizer and
// validation agree on timing; their intended disagreement (Sec. VII-C)
// is confined to the noise lookup table.
//
// Per the paper's Observation 4, the optimizer treats a leaf's input
// arrival as independent of its own cell choice (sizing a leaf does not
// measurably move its siblings); validation re-runs this analysis on the
// fully assigned tree, so the approximation is checked, not assumed.

#include <vector>

#include "timing/power_mode.hpp"
#include "tree/clock_tree.hpp"
#include "util/units.hpp"

namespace wm {

struct ArrivalResult {
  std::vector<Ps> input_arrival;   ///< per node id
  std::vector<Ps> output_arrival;  ///< per node id
  std::vector<Ps> slew_in;         ///< per node id (propagated)
  Ps min_leaf = 0.0;               ///< earliest leaf output arrival
  Ps max_leaf = 0.0;               ///< latest leaf output arrival
  Ps skew() const { return max_leaf - min_leaf; }
};

/// Optional per-node multiplicative delay perturbations (Monte Carlo).
struct DelayPerturbation {
  std::vector<double> cell_factor;  ///< per node; empty => all 1
  std::vector<double> wire_factor;  ///< per node (edge from parent)
};

/// Compute arrivals for one power mode of a mode set.
ArrivalResult compute_arrivals(const ClockTree& tree, const ModeSet& modes,
                               std::size_t mode_index,
                               const DelayPerturbation* perturb = nullptr);

/// Nominal single-mode shorthand.
ArrivalResult compute_arrivals(const ClockTree& tree);

/// Elmore delay of the edge into `child` (wire only).
Ps wire_elmore(const ClockTree& tree, NodeId child);

/// Delay of the cell at node `id` in the given mode (analytic model at
/// the node's current load and the given input slew), including any
/// configured adjustable-delay code for that mode.
Ps cell_delay_in_mode(const ClockTree& tree, NodeId id,
                      const ModeSet& modes, std::size_t mode_index,
                      Ps slew_in = tech::kCharacterizationSlew);

/// Worst skew across all modes.
Ps worst_skew(const ClockTree& tree, const ModeSet& modes);

} // namespace wm
