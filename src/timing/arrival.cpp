#include "timing/arrival.hpp"

#include <algorithm>
#include <limits>

#include "cells/electrical.hpp"
#include "util/error.hpp"

namespace wm {

Ps wire_elmore(const ClockTree& tree, NodeId child) {
  const TreeNode& n = tree.node(child);
  if (n.parent == kNoNode) return 0.0;
  const KOhm rw = n.wire_len * tech::kWireResPerUm;
  const Ff cw = n.wire_len * tech::kWireCapPerUm;
  return rw * (0.5 * cw + n.cell->c_in);
}

Ps cell_delay_in_mode(const ClockTree& tree, NodeId id,
                      const ModeSet& modes, std::size_t mode_index,
                      Ps slew_in) {
  const TreeNode& n = tree.node(id);
  const Volt vdd = modes.vdd(mode_index, n.island);
  DriveConditions dc{tree.load_of(id), slew_in, vdd,
                     modes.temp(mode_index, n.island)};
  Ps d = cell_timing(*n.cell, dc).delay() + n.cell_extra_delay;
  if (n.cell->adjustable() && !n.adj_codes.empty()) {
    WM_REQUIRE(mode_index < n.adj_codes.size(),
               "adjustable node lacks a code for this mode");
    d += n.cell->adj_step * static_cast<Ps>(n.adj_codes[mode_index]);
  }
  return d;
}

ArrivalResult compute_arrivals(const ClockTree& tree, const ModeSet& modes,
                               std::size_t mode_index,
                               const DelayPerturbation* perturb) {
  WM_REQUIRE(!tree.empty(), "empty tree");
  ArrivalResult r;
  r.input_arrival.assign(tree.size(), 0.0);
  r.output_arrival.assign(tree.size(), 0.0);
  r.slew_in.assign(tree.size(), tech::kCharacterizationSlew);
  r.min_leaf = std::numeric_limits<Ps>::max();
  r.max_leaf = std::numeric_limits<Ps>::lowest();

  std::vector<Ps> slew_out(tree.size(), tech::kCharacterizationSlew);

  for (const NodeId id : tree.topological_order()) {
    const TreeNode& n = tree.node(id);
    const auto i = static_cast<std::size_t>(n.id);
    Ps in_arr = 0.0;
    Ps sin = tech::kCharacterizationSlew;
    if (n.parent != kNoNode) {
      const Ps we = wire_elmore(tree, n.id);
      Ps wd = we + n.route_extra;
      if (perturb && !perturb->wire_factor.empty()) {
        wd *= perturb->wire_factor[i];
      }
      const auto pi = static_cast<std::size_t>(n.parent);
      in_arr = r.output_arrival[pi] + wd;
      sin = slew_out[pi] + wire_slew_degradation(we);
    }
    Ps cd = cell_delay_in_mode(tree, n.id, modes, mode_index, sin);
    if (perturb && !perturb->cell_factor.empty()) {
      cd *= perturb->cell_factor[i];
    }
    const Volt vdd = modes.vdd(mode_index, n.island);
    const CellTiming ct = cell_timing(
        *n.cell, DriveConditions{tree.load_of(n.id), sin, vdd,
                                 modes.temp(mode_index, n.island)});
    slew_out[i] = 0.5 * (ct.slew_rise + ct.slew_fall);

    r.input_arrival[i] = in_arr;
    r.slew_in[i] = sin;
    r.output_arrival[i] = in_arr + cd;
    if (n.is_leaf() && !modes.gated(mode_index, n.island)) {
      r.min_leaf = std::min(r.min_leaf, r.output_arrival[i]);
      r.max_leaf = std::max(r.max_leaf, r.output_arrival[i]);
    }
  }
  return r;
}

ArrivalResult compute_arrivals(const ClockTree& tree) {
  int max_island = 0;
  for (const TreeNode& n : tree.nodes()) {
    max_island = std::max(max_island, n.island);
  }
  return compute_arrivals(tree, ModeSet::single(max_island + 1), 0);
}

Ps worst_skew(const ClockTree& tree, const ModeSet& modes) {
  Ps worst = 0.0;
  for (std::size_t m = 0; m < modes.count(); ++m) {
    worst = std::max(worst, compute_arrivals(tree, modes, m).skew());
  }
  return worst;
}

} // namespace wm
