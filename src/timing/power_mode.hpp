#pragma once
// Power modes and voltage islands (paper Sec. VI).
//
// A design is divided into voltage islands; a power mode assigns a
// supply voltage to every island. Tree nodes carry an island index
// (TreeNode::island). Cell delays scale with the island's supply via
// the alpha-power law (cells/electrical.hpp), so each mode induces its
// own set of arrival times and its own clock skew.

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/units.hpp"

namespace wm {

struct PowerMode {
  std::string name;
  std::vector<Volt> island_vdd;  ///< supply per island
  /// Junction temperature per island in Celsius (optional; empty =
  /// 25 C everywhere). Thermal operating points are the scenario the
  /// prior art [27] handled with the coolest-corner pessimism the paper
  /// revisits in Sec. VI.
  std::vector<double> island_temp;
  /// Clock-gated islands (optional; empty = nothing gated). The leaf
  /// buffers of a gated island do not toggle in this mode: they emit no
  /// current and do not constrain the mode's skew ([30],[31] target
  /// exactly this scenario with reconfigurable polarities).
  std::vector<std::uint8_t> gated_islands;
};

class ModeSet {
 public:
  /// Single nominal mode over `islands` islands (default design).
  static ModeSet single(int islands = 1);

  explicit ModeSet(std::vector<PowerMode> modes = {});

  void add(PowerMode mode);

  std::size_t count() const { return modes_.size(); }
  std::size_t island_count() const {
    return modes_.empty() ? 0 : modes_.front().island_vdd.size();
  }

  const PowerMode& mode(std::size_t m) const;
  const std::vector<PowerMode>& modes() const { return modes_; }

  Volt vdd(std::size_t mode, int island) const;

  /// True if `island` is clock-gated in `mode`.
  bool gated(std::size_t mode, int island) const;

  /// Junction temperature of `island` in `mode` (25 C by default).
  double temp(std::size_t mode, int island) const;

  /// Sorted unique temperatures across all modes (characterization grid).
  std::vector<double> distinct_temps() const;

  /// Sorted unique list of supply values appearing in any mode — the
  /// characterization grid the Characterizer needs.
  std::vector<Volt> distinct_vdds() const;

 private:
  std::vector<PowerMode> modes_;
};

} // namespace wm
