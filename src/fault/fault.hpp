#pragma once
// wm::fault — deterministic fault injection (docs/robustness.md).
//
// Named injection sites are threaded through the hardened readers
// (io.*), the zone worker pool and flow passes (core.*), the MOSP label
// DP (mosp.*), the metrics writer (obs.*) and the checkpointer (ck.*).
// Disarmed — the default — a site costs exactly one relaxed atomic
// load; compiled with -DWAVEMIN_NO_FAULT the sites vanish entirely.
//
// Arming is driven by a spec string plus a seed so every failure is
// replayable bit-for-bit:
//
//   fault::arm("io.read_line=3");          // trip on the 3rd hit
//   fault::arm("core.zone_solve", 1234);   // K-th hit, K drawn from
//                                          // wm::Rng(seed ^ fnv(site))
//
// What a tripped site does is a property of the site (its catalog
// Action), not of the spec: Error sites throw wm::Error (exercising the
// quarantine / Status paths), BadAlloc sites throw std::bad_alloc (the
// flaky-allocation path), Kill sites raise SIGKILL (the crash-safety /
// checkpoint-resume e2e). The catalog is the source of truth for the
// fault-site matrix in docs/robustness.md and for the chaos driver's
// sweep (tools/wavemin_chaos).
//
// Hit counters are atomic, so sites may fire from the zone worker pool;
// the Nth global hit trips regardless of which thread lands on it. For
// bit-for-bit replay of *which work item* failed, run single-threaded
// (the chaos driver does).

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace wm::fault {

/// What a tripped site does.
enum class Action {
  Error,     ///< throw wm::Error("fault injected: <site>")
  BadAlloc,  ///< throw std::bad_alloc (simulated allocation failure)
  Kill,      ///< raise(SIGKILL) — crash-safety e2e only, never swept
  Hang,      ///< sleep forever — hung-worker watchdog e2e only, never swept
};

struct Site {
  const char* name;    ///< e.g. "io.read_line"
  const char* layer;   ///< owning subsystem ("io", "core", "mosp", ...)
  Action action;
  const char* expect;  ///< documented outcome (CLI exit codes)
};

/// Every injection site compiled into the library.
const std::vector<Site>& site_catalog();

/// Arm the injector. `spec` is a comma-separated list of entries
/// "site=K" (1-based: trip on the K-th hit of that site) or bare
/// "site" (K drawn uniformly from [1, 8] via wm::Rng(seed ^ fnv(site))
/// — the seeded schedule). Unknown sites throw wm::Error. Arming
/// resets all hit counters; arm/disarm must not race running work
/// (hits themselves are thread-safe). Throws wm::Error when the
/// library was built with WAVEMIN_NO_FAULT.
void arm(const std::string& spec, std::uint64_t seed = 0);
void disarm();
bool armed();

/// Scheduled trip hit for an armed site (0 = site not armed). Lets the
/// chaos driver print the replay recipe next to each outcome.
std::uint64_t scheduled_hit(const std::string& site);

/// Hits observed on `site` since the last arm().
std::uint64_t hits(const std::string& site);

/// Faults actually fired since the last arm().
std::uint64_t fired_total();

namespace detail {
extern std::atomic<bool> g_armed;
void on_hit(const char* site);
void on_note(const char* site);
} // namespace detail

#ifdef WAVEMIN_NO_FAULT
inline void inject(const char*) {}
inline void note(const char*) {}
#else
/// The injection point. Disarmed cost: one relaxed atomic load.
inline void inject(const char* site) {
  if (detail::g_armed.load(std::memory_order_relaxed)) {
    detail::on_hit(site);
  }
}

/// Count a hit on `site` without ever tripping it. Lets a supervisor
/// process advance a site's schedule on behalf of work it forks out:
/// the serve daemon note()s "serve.worker_kill" once per worker launch,
/// and the launch whose count lands on the scheduled hit forks the
/// child that actually dies (docs/serving.md).
inline void note(const char* site) {
  if (detail::g_armed.load(std::memory_order_relaxed)) {
    detail::on_note(site);
  }
}
#endif

/// Reads as intent at allocation-heavy call sites; the BadAlloc action
/// itself comes from the site's catalog entry.
inline void alloc_guard(const char* site) { inject(site); }

} // namespace wm::fault
