#include "fault/fault.hpp"

#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <new>
#include <thread>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace wm::fault {

const std::vector<Site>& site_catalog() {
  // Source of truth for the fault-site matrix in docs/robustness.md.
  // `expect` names the CLI exit codes an injection may land on; "0"
  // appears where the site is not reached on every flow (e.g. the ADB
  // branch only runs when sizing alone is infeasible).
  static const std::vector<Site> catalog = {
      {"io.open_read", "io", Action::Error, "4"},
      {"io.read_line", "io", Action::Error, "4"},
      {"io.tree_record", "io", Action::Error, "4"},
      {"io.cell_record", "io", Action::Error, "0,4"},
      {"io.save_tree", "io", Action::Error, "4"},
      {"core.preprocess", "core", Action::Error, "4"},
      {"core.zone_solve", "core", Action::Error, "3"},
      {"core.zone_alloc", "core", Action::BadAlloc, "3"},
      {"core.adb_alloc", "core", Action::Error, "0,4"},
      {"core.reopt", "core", Action::Error, "0,4"},
      {"mosp.dp_row", "mosp", Action::Error, "3"},
      {"obs.metrics_write", "obs", Action::Error, "0,4"},
      {"ck.write", "ck", Action::Error, "0,3"},
      {"ck.kill_after_write", "ck", Action::Kill, "SIGKILL"},
      // Serving-layer chaos (docs/serving.md). worker_kill selects a
      // forked job worker to die: the daemon note()s the launch count,
      // and the launch landing on the scheduled hit becomes the victim
      // (killed after its first checkpoint write, so the retry can
      // prove resume; arming it in a job's own fault_spec instead
      // kills at worker startup). queue_full forces an admission
      // rejection; socket_torn tears a client connection mid-reply.
      // None are reachable from the one-shot CLI flow, so the chaos
      // sweep passes them through untripped (exit 0).
      {"serve.worker_kill", "serve", Action::Kill, "SIGKILL"},
      {"serve.queue_full", "serve", Action::Error, "overloaded"},
      {"serve.socket_torn", "serve", Action::Error, "drop"},
      // Crash-consistency chaos (docs/serving.md "Crash recovery").
      // worker_hang mirrors worker_kill with a wedge instead of a
      // death: the scheduled victim sleeps forever after its first
      // checkpoint write (ck.hang_after_write) until the daemon's
      // watchdog SIGKILLs it. journal_torn makes the next journal
      // append write only half its record (a simulated torn tail);
      // daemon_kill SIGKILLs the daemon itself right after a worker
      // launch, which is what the restart soak recovers from.
      {"serve.worker_hang", "serve", Action::Hang, "watchdog SIGKILL"},
      {"ck.hang_after_write", "ck", Action::Hang, "watchdog SIGKILL"},
      {"serve.journal_torn", "serve", Action::Error, "torn tail dropped"},
      {"serve.daemon_kill", "serve", Action::Kill, "SIGKILL"},
      // Worker-pool chaos (docs/serving.md "Worker pool").
      // pool_worker_stall wedges a pool worker mid-shard: the
      // supervisor note()s each shard assignment and the one landing
      // on the scheduled hit is told to stall, until the pool watchdog
      // SIGKILLs and respawns the worker and the shard retries
      // elsewhere. shard_poison is its deterministic twin: the chosen
      // shard fails on *every* attempt, exhausts its retries, and
      // degrades its zones via the identity rung (job exit 3).
      // blob_corrupt makes the next wavemin.blob/v1 map fail exactly
      // like real corruption — a loud rejection, never silent reuse.
      {"serve.pool_worker_stall", "serve", Action::Hang,
       "pool watchdog SIGKILL"},
      {"serve.shard_poison", "serve", Action::Error, "3"},
      {"io.blob_corrupt", "io", Action::Error, "rejected at map"},
  };
  return catalog;
}

namespace detail {

std::atomic<bool> g_armed{false};

namespace {

struct ArmedSite {
  const Site* site = nullptr;
  std::uint64_t trip_hit = 0;  ///< 1-based hit that fires the fault
  std::atomic<std::uint64_t> hits{0};
};

// Serializes arm()/disarm() mutation of the armed-site table. The hot
// path (on_hit/on_note) reads the table *without* this mutex under the
// epoch protocol below.
Mutex g_arm_mutex;

// Fixed after arm(), read-only during a run; hit counters are atomic.
// A deque because ArmedSite holds an atomic (not movable) and deque
// growth never relocates existing elements.
std::deque<ArmedSite>& armed_sites() REQUIRES(g_arm_mutex) {
  static std::deque<ArmedSite> sites;
  return sites;
}

std::atomic<std::uint64_t> g_fired{0};

std::uint64_t fnv1a(const char* s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 1099511628211ULL;
  }
  return h;
}

const Site* find_site(const std::string& name) {
  for (const Site& s : site_catalog()) {
    if (name == s.name) return &s;
  }
  return nullptr;
}

// Unpublish first, then tear down: a site that checks g_armed after
// this store skips the table entirely.
void disarm_locked() REQUIRES(g_arm_mutex) {
  g_armed.store(false, std::memory_order_relaxed);
  armed_sites().clear();
  g_fired.store(0, std::memory_order_relaxed);
}

} // namespace

// Epoch protocol (the NO_THREAD_SAFETY_ANALYSIS contract): arm() fully
// builds the table *before* publishing g_armed=true, and the header
// requires that arm/disarm never race running work — so whenever the
// inject()/note() fast path sees g_armed and lands here, the table is
// structurally frozen and only its atomic hit counters mutate. Taking
// g_arm_mutex per hit would put a lock on every instrumented site;
// instead the mutex covers the writers and these two readers opt out
// with the invariant spelled out.
void on_note(const char* site) NO_THREAD_SAFETY_ANALYSIS {
  for (ArmedSite& as : armed_sites()) {
    if (std::strcmp(as.site->name, site) == 0) {
      as.hits.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void on_hit(const char* site) NO_THREAD_SAFETY_ANALYSIS {
  for (ArmedSite& as : armed_sites()) {
    if (std::strcmp(as.site->name, site) != 0) continue;
    const std::uint64_t n =
        as.hits.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n != as.trip_hit) return;
    g_fired.fetch_add(1, std::memory_order_relaxed);
    obs::add(obs::global(), "fault.injected");
    switch (as.site->action) {
      case Action::Error:
        throw Error(std::string("fault injected: ") + site);
      case Action::BadAlloc:
        throw std::bad_alloc();
      case Action::Kill:
        std::raise(SIGKILL);
        return;  // unreachable (but keeps the compiler honest)
      case Action::Hang:
        // A worker that wedges without tripping its own RunBudget —
        // the case the serve watchdog exists for. Sleep, don't spin:
        // a busy loop would eat the soak machine's cores.
        for (;;) {
          std::this_thread::sleep_for(std::chrono::seconds(3600));
        }
    }
  }
}

} // namespace detail

void arm(const std::string& spec, std::uint64_t seed) {
#ifdef WAVEMIN_NO_FAULT
  (void)seed;
  throw Error("fault injection compiled out (WAVEMIN_NO_FAULT); "
              "cannot arm spec: " +
              spec);
#else
  const MutexLock lock(detail::g_arm_mutex);
  detail::disarm_locked();
  auto& sites = detail::armed_sites();
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(begin, end - begin);
    begin = end + 1;
    // Trim surrounding whitespace.
    const auto b = entry.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    const auto e = entry.find_last_not_of(" \t");
    entry = entry.substr(b, e - b + 1);

    std::string name = entry;
    std::uint64_t trip = 0;
    const auto eq = entry.find('=');
    if (eq != std::string::npos) {
      name = entry.substr(0, eq);
      const std::string k = entry.substr(eq + 1);
      char* endp = nullptr;
      trip = std::strtoull(k.c_str(), &endp, 10);
      // The leading-digit check rejects what strtoull would silently
      // accept: "-1" (wraps to ULLONG_MAX), "+3", and leading spaces.
      if (k.empty() || std::isdigit(static_cast<unsigned char>(k[0])) == 0 ||
          endp != k.c_str() + k.size() || trip == 0) {
        throw Error("fault spec: bad hit count '" + k + "' in '" +
                    entry + "' (want a 1-based integer)");
      }
    }
    const Site* site = detail::find_site(name);
    if (site == nullptr) {
      throw Error("fault spec: unknown site '" + name +
                  "' (see fault::site_catalog())");
    }
    if (trip == 0) {
      // Seeded schedule: the trip hit is a deterministic function of
      // (seed, site), replayable by re-arming with the same pair.
      Rng rng(seed ^ detail::fnv1a(site->name));
      trip = static_cast<std::uint64_t>(rng.uniform_int(1, 8));
    }
    sites.emplace_back();
    sites.back().site = site;
    sites.back().trip_hit = trip;
  }
  if (sites.empty()) {
    throw Error("fault spec: no sites in '" + spec + "'");
  }
  obs::add(obs::global(), "fault.armed_sites", sites.size());
  detail::g_armed.store(true, std::memory_order_relaxed);
#endif
}

void disarm() {
  const MutexLock lock(detail::g_arm_mutex);
  detail::disarm_locked();
}

bool armed() {
  return detail::g_armed.load(std::memory_order_relaxed);
}

std::uint64_t scheduled_hit(const std::string& site) {
  const MutexLock lock(detail::g_arm_mutex);
  for (const auto& as : detail::armed_sites()) {
    if (site == as.site->name) return as.trip_hit;
  }
  return 0;
}

std::uint64_t hits(const std::string& site) {
  const MutexLock lock(detail::g_arm_mutex);
  for (const auto& as : detail::armed_sites()) {
    if (site == as.site->name) {
      return as.hits.load(std::memory_order_relaxed);
    }
  }
  return 0;
}

std::uint64_t fired_total() {
  return detail::g_fired.load(std::memory_order_relaxed);
}

} // namespace wm::fault
