#include "serve/protocol.hpp"

#include "util/error.hpp"

namespace wm::serve {

namespace {

json::Value request_header(const char* op) {
  json::Value v = json::Value::object_v();
  v.set("v", json::Value::string_v(std::string(kProtocolVersion)));
  v.set("op", json::Value::string_v(op));
  return v;
}

} // namespace

JobSpec parse_job_spec(const json::Value& root) {
  JobSpec job;
  job.id = root.get_string_or("id", "");
  job.tree = root.get_string("tree", "submit");
  WM_REQUIRE(!job.tree.empty(), "submit: empty \"tree\" path");
  job.out = root.get_string_or("out", "");
  job.algo = root.get_string_or("algo", "wavemin");
  WM_REQUIRE(job.algo == "wavemin" || job.algo == "wavemin-f",
             "submit: unknown algo \"" + job.algo +
                 "\" (want wavemin|wavemin-f)");
  job.kappa = root.get_number_or("kappa", job.kappa);
  WM_REQUIRE(job.kappa > 0.0, "submit: kappa must be > 0");
  job.samples =
      static_cast<int>(root.get_number_or("samples", job.samples));
  WM_REQUIRE(job.samples > 0, "submit: samples must be > 0");
  job.deadline_ms = root.get_number_or("deadline_ms", 0.0);
  WM_REQUIRE(job.deadline_ms >= 0.0, "submit: negative deadline_ms");
  job.max_retries =
      static_cast<int>(root.get_number_or("max_retries", job.max_retries));
  WM_REQUIRE(job.max_retries >= 0 && job.max_retries <= 16,
             "submit: max_retries must be in [0, 16]");
  job.seed = root.get_u64_or("seed", 0);
  job.fault_spec = root.get_string_or("fault_spec", "");
  job.client = root.get_string_or("client", "");
  return job;
}

json::Value job_spec_to_json(const JobSpec& job) {
  json::Value v = json::Value::object_v();
  if (!job.id.empty()) v.set("id", json::Value::string_v(job.id));
  v.set("tree", json::Value::string_v(job.tree));
  if (!job.out.empty()) v.set("out", json::Value::string_v(job.out));
  v.set("algo", json::Value::string_v(job.algo));
  v.set("kappa", json::Value::number_v(job.kappa));
  v.set("samples", json::Value::number_v(job.samples));
  if (job.deadline_ms > 0.0) {
    v.set("deadline_ms", json::Value::number_v(job.deadline_ms));
  }
  v.set("max_retries", json::Value::number_v(job.max_retries));
  if (job.seed != 0) v.set("seed", json::Value::number_v(job.seed));
  if (!job.fault_spec.empty()) {
    v.set("fault_spec", json::Value::string_v(job.fault_spec));
  }
  if (!job.client.empty()) {
    v.set("client", json::Value::string_v(job.client));
  }
  return v;
}

Request parse_request(const std::string& line) {
  const json::Value root = json::parse(line);
  WM_REQUIRE(root.is_object(), "request must be a json object");
  const std::string v = root.get_string_or("v", std::string(kProtocolVersion));
  WM_REQUIRE(v == kProtocolVersion,
             "protocol version \"" + v + "\" is not \"" +
                 std::string(kProtocolVersion) + "\"");
  const std::string& op = root.get_string("op", "request");

  Request req;
  if (op == "submit") {
    req.op = Request::Op::Submit;
    // Job fields live at the top level of the frame, not nested: one
    // line stays human-writable ({"op":"submit","tree":"x.ctree"}).
    req.job = parse_job_spec(root);
    req.wait = root.get_bool_or("wait", false);
  } else if (op == "status") {
    req.op = Request::Op::Status;
    req.id = root.get_string("id", "status");
  } else if (op == "health") {
    req.op = Request::Op::Health;
  } else if (op == "stats") {
    req.op = Request::Op::Stats;
  } else if (op == "drain") {
    req.op = Request::Op::Drain;
  } else {
    throw Error("unknown op \"" + op + "\"");
  }
  return req;
}

std::string dump_submit(const JobSpec& job, bool wait) {
  json::Value v = request_header("submit");
  for (auto& [key, field] : job_spec_to_json(job).object) {
    v.set(key, std::move(field));
  }
  if (wait) v.set("wait", json::Value::boolean_v(true));
  return json::dump(v);
}

std::string dump_simple(const char* op) {
  return json::dump(request_header(op));
}

std::string dump_status(const std::string& id) {
  json::Value v = request_header("status");
  v.set("id", json::Value::string_v(id));
  return json::dump(v);
}

std::string error_frame(const std::string& code,
                        const std::string& message,
                        double retry_after_ms) {
  json::Value v = json::Value::object_v();
  v.set("ok", json::Value::boolean_v(false));
  v.set("error", json::Value::string_v(code));
  if (!message.empty()) v.set("message", json::Value::string_v(message));
  if (retry_after_ms > 0.0) {
    v.set("retry_after_ms", json::Value::number_v(retry_after_ms));
  }
  return json::dump(v);
}

json::Value ok_frame() {
  json::Value v = json::Value::object_v();
  v.set("ok", json::Value::boolean_v(true));
  return v;
}

} // namespace wm::serve
