#include "serve/pool.hpp"

#include <csignal>
#include <cstdio>

#include <fcntl.h>
#include <unistd.h>

#include "util/posix_io.hpp"

namespace wm::serve {

namespace {

void set_nonblocking_fd(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

} // namespace

void WorkerPool::close_slot(Slot& s) {
  if (s.cmd_w >= 0) ::close(s.cmd_w);
  if (s.event_r >= 0) ::close(s.event_r);
  s.cmd_w = -1;
  s.event_r = -1;
  s.buf.clear();
}

long WorkerPool::spawn(int w, const std::function<void()>& in_child) {
  if (slots_.size() < static_cast<std::size_t>(opt_.workers)) {
    slots_.resize(static_cast<std::size_t>(opt_.workers));
  }
  Slot& slot = slots_.at(static_cast<std::size_t>(w));
  close_slot(slot);
  slot.pid = -1;

  int cmd[2];   // supervisor writes, worker reads
  int event[2]; // worker writes, supervisor reads
  if (::pipe(cmd) != 0) return -1;
  if (::pipe(event) != 0) {
    ::close(cmd[0]);
    ::close(cmd[1]);
    return -1;
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(cmd[0]);
    ::close(cmd[1]);
    ::close(event[0]);
    ::close(event[1]);
    return -1;
  }
  if (pid == 0) {
    // Pool worker child: restore default signal dispositions, drop the
    // daemon's fds (in_child) and every sibling's pipe ends — a pipe
    // kept open by a sibling would defeat EOF-based death detection.
    ::signal(SIGCHLD, SIG_DFL);
    ::signal(SIGTERM, SIG_DFL);
    ::signal(SIGINT, SIG_DFL);
    ::signal(SIGPIPE, SIG_IGN);  // a dead supervisor reads as EPIPE
    if (in_child) in_child();
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (static_cast<int>(i) == w) continue;
      if (slots_[i].cmd_w >= 0) ::close(slots_[i].cmd_w);
      if (slots_[i].event_r >= 0) ::close(slots_[i].event_r);
    }
    ::close(cmd[1]);
    ::close(event[0]);
    PoolWorkerConfig cfg;
    cfg.cmd_fd = cmd[0];
    cfg.event_fd = event[1];
    cfg.blob = opt_.blob;
    cfg.char_dt = opt_.char_dt;
    cfg.worker_index = w;
    cfg.fault_seed = opt_.fault_seed;
    ::_exit(run_pool_worker(cfg));
  }

  ::close(cmd[0]);
  ::close(event[1]);
  slot.pid = pid;
  slot.cmd_w = cmd[1];
  slot.event_r = event[0];
  set_nonblocking_fd(slot.event_r);
  return pid;
}

bool WorkerPool::send(int w, const PoolCommand& cmd) {
  const Slot& slot = slots_.at(static_cast<std::size_t>(w));
  if (slot.cmd_w < 0) return false;
  const std::string line = encode_command(cmd) + "\n";
  return write_all(slot.cmd_w, line.data(), line.size());
}

int WorkerPool::event_fd(int w) const {
  if (w < 0 || static_cast<std::size_t>(w) >= slots_.size()) return -1;
  return slots_[static_cast<std::size_t>(w)].event_r;
}

bool WorkerPool::drain_events(int w, std::vector<PoolEvent>* out) {
  Slot& slot = slots_.at(static_cast<std::size_t>(w));
  if (slot.event_r < 0) return false;
  bool alive = true;
  char chunk[4096];
  while (true) {
    const ssize_t n = retry_read(slot.event_r, chunk, sizeof chunk);
    if (n > 0) {
      slot.buf.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) alive = false;  // EOF: the worker is gone
    break;  // EAGAIN (drained) or error
  }
  std::size_t start = 0;
  while (true) {
    const std::size_t nl = slot.buf.find('\n', start);
    if (nl == std::string::npos) break;
    const std::string line = slot.buf.substr(start, nl - start);
    start = nl + 1;
    PoolEvent ev;
    if (!line.empty() && decode_event(line, &ev)) {
      out->push_back(std::move(ev));
    }
  }
  slot.buf.erase(0, start);
  return alive;
}

void WorkerPool::kill(int w) {
  const Slot& slot = slots_.at(static_cast<std::size_t>(w));
  if (slot.pid > 0) ::kill(slot.pid, SIGKILL);
}

int WorkerPool::reap(long pid) {
  for (std::size_t w = 0; w < slots_.size(); ++w) {
    if (slots_[w].pid != pid) continue;
    slots_[w].pid = -1;
    close_slot(slots_[w]);
    return static_cast<int>(w);
  }
  return -1;
}

void WorkerPool::shutdown() {
  for (Slot& slot : slots_) {
    if (slot.pid > 0) ::kill(slot.pid, SIGKILL);
    slot.pid = -1;
    close_slot(slot);
  }
}

} // namespace wm::serve
