#pragma once
// Serving-layer job model (docs/serving.md): the lifecycle of one
// submitted optimization, the supervisor's mapping from a worker
// child's wait-status onto the CLI exit contract, and the retry
// backoff schedule. Everything here is plain data + pure functions so
// the policy is unit-testable without forking a single process
// (tests/serve_test.cpp); the event loop in server.cpp just wires it
// to real pids.

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "util/json.hpp"
#include "util/status.hpp"

namespace wm::serve {

/// Lifecycle:  Queued -> Running -> {terminal} | Backoff -> Running...
enum class JobState {
  Queued,       ///< admitted, waiting for a worker slot
  Running,      ///< a forked worker child is on it
  Backoff,      ///< failed attempt, waiting out the retry delay
  Done,         ///< terminal: clean optimum applied (child exit 0)
  Degraded,     ///< terminal: valid but budget/fault-degraded (exit 3)
  Infeasible,   ///< terminal: skew bound unreachable (exit 2) — data,
                ///< not failure; never retried
  Failed,       ///< terminal: all retries burned, or non-retryable
  Quarantined,  ///< terminal: circuit breaker open for this design
  Drained,      ///< terminal: daemon shut down first; any checkpoint
                ///< written by the killed straggler survives for resume
};

const char* to_string(JobState state);
/// Inverse of to_string; false (out untouched) on an unknown name.
/// Journal replay uses this, so it must not throw on corrupt input.
bool parse_job_state(const std::string& name, JobState* out);
bool is_terminal(JobState state);
/// Terminal states the chaos acceptance gate tolerates: Done, Degraded
/// and (breaker) Quarantined — plus Infeasible, which is data.
bool is_acceptable_terminal(JobState state);

/// What the supervisor learned from one reaped worker child.
struct Attempt {
  enum class Outcome {
    Done,        ///< exit 0
    Degraded,    ///< exit 3
    Infeasible,  ///< exit 2
    Failed,      ///< exit 4 or an unknown exit code
    Crashed,     ///< died on a signal (SIGKILL'd, OOM'd, faulted)
  };
  Outcome outcome = Outcome::Failed;
  int exit_code = -1;  ///< -1 when signaled
  int signal = 0;      ///< 0 when exited
};

const char* to_string(Attempt::Outcome outcome);

/// Map a child's (exited, code) / (signaled, sig) onto the exit
/// contract. Any exit code outside {0,2,3,4} (including 1, which the
/// worker never emits) is Failed — the supervisor treats contract
/// violations as failures, never as successes.
Attempt classify_exit(bool exited, int exit_code, bool signaled,
                      int sig);

/// Should this attempt outcome be retried? Crashes and retryable
/// failures are; terminal data outcomes and invalid input are not.
/// `category` comes from the worker's result file (ErrorCategory::
/// Internal when the child crashed before writing one).
bool retryable(Attempt::Outcome outcome, ErrorCategory category);

/// Exponential backoff with deterministic jitter: attempt k (1-based
/// count of *completed* attempts) waits base * 2^(k-1) capped at
/// `cap_ms`, plus up to 50% jitter drawn from Rng(seed ^ job_key ^ k)
/// so a thundering herd of retries spreads out yet every delay is
/// replayable from the run seed.
double backoff_ms(int completed_attempts, double base_ms, double cap_ms,
                  std::uint64_t seed, std::uint64_t job_key);

/// What a worker child leaves behind for the supervisor (one JSON
/// line at result_path): its Status category, degradation account and
/// checkpoint-resume proof. The parent must never parse the child's
/// stdout — a crashed child leaves no file, and absence is informative.
struct WorkerResult {
  bool valid = false;  ///< file existed and parsed
  ErrorCategory category = ErrorCategory::Internal;
  bool degraded = false;
  std::uint64_t resumed_zones = 0;  ///< > 0 proves checkpoint resume
  std::uint64_t zones_full = 0;
  std::uint64_t zones_greedy = 0;
  std::uint64_t zones_identity = 0;
  std::string error;
};

std::string dump_worker_result(const WorkerResult& r);
/// Missing/corrupt file yields valid == false, never a throw: the
/// supervisor treats that exactly like a crash-before-reporting.
WorkerResult load_worker_result(const std::string& path);
/// Leave the result where the supervisor looks, atomically (tmp +
/// rename): a dead child either wrote the whole line or none of it —
/// the supervisor never sees a torn file it could misclassify. Silent
/// no-op on an empty path; write failures are swallowed (absence reads
/// as crash-before-reporting, the retryable interpretation).
void write_worker_result(const std::string& path, const WorkerResult& r);

/// Supervisor bookkeeping for one admitted job.
struct Job {
  JobSpec spec;
  JobState state = JobState::Queued;
  std::uint64_t design_fp = 0;  ///< circuit-breaker fingerprint
  int attempts = 0;             ///< attempts launched so far
  double submitted_ms = 0.0;    ///< against the server's steady clock
  double launched_ms = 0.0;     ///< Running: when this attempt started —
                                ///< reap feeds (reap - launch) into the
                                ///< scheduler's attempt-time EWMA
  double next_attempt_ms = 0.0; ///< Backoff: earliest relaunch time
  double watchdog_ms = 0.0;     ///< Running: SIGKILL the child past this
                                ///< steady-clock instant (0 = no watchdog)
  long pid = -1;                ///< Running: worker child pid
  std::string checkpoint;       ///< spool .wmck path (shared by retries)
  std::string result_path;      ///< spool result-file path
  Attempt last;                 ///< most recent reaped attempt
  WorkerResult last_result;
  std::string error;            ///< terminal failure text
  std::vector<int> waiters;     ///< conn fds blocked on wait:true
  /// Pool mode: stripes the journal already recorded as Poisoned — a
  /// re-admission after a daemon restart starts them Poisoned instead
  /// of re-burning their retry budget.
  std::vector<int> poisoned_shards;
  /// Brownout budget pinned when the attempt is admitted. Every shard
  /// dispatch and the merge of one attempt must run under the same
  /// RunBudget: the options fingerprint covers the budget, so a tier
  /// change applied mid-attempt would make the merge reject its own
  /// shards' checkpoints as stale.
  std::uint64_t attempt_label_budget = 0;
  bool attempt_force_greedy = false;
};

/// One status frame for a job ({"ok":true,"job":{...}}).
std::string status_frame(const Job& job);

} // namespace wm::serve
