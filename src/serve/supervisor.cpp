#include "serve/supervisor.hpp"

#include <algorithm>
#include <cstring>

#include "serve/job.hpp"  // backoff_ms

namespace wm::serve {

namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

} // namespace

const char* to_string(ShardState state) {
  switch (state) {
    case ShardState::Pending: return "pending";
    case ShardState::Assigned: return "assigned";
    case ShardState::Done: return "done";
    case ShardState::Poisoned: return "poisoned";
  }
  return "unknown";
}

bool parse_shard_state(const std::string& name, ShardState* out) {
  for (const ShardState s :
       {ShardState::Pending, ShardState::Assigned, ShardState::Done,
        ShardState::Poisoned}) {
    if (name == to_string(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

PoolSupervisor::PoolSupervisor(PoolPolicy policy) : policy_(policy) {
  slots_.resize(static_cast<std::size_t>(std::max(1, policy_.workers)));
}

void PoolSupervisor::worker_spawned(int w, long pid, double now) {
  PoolWorkerSlot& s = slots_.at(static_cast<std::size_t>(w));
  s = PoolWorkerSlot{};
  s.state = PoolWorkerSlot::State::Starting;
  s.pid = pid;
  s.last_heard_ms = now;
}

void PoolSupervisor::worker_ready(int w, double now) {
  PoolWorkerSlot& s = slots_.at(static_cast<std::size_t>(w));
  if (s.state == PoolWorkerSlot::State::Starting) {
    s.state = PoolWorkerSlot::State::Idle;
  }
  s.last_heard_ms = now;
}

void PoolSupervisor::worker_heard(int w, double now) {
  slots_.at(static_cast<std::size_t>(w)).last_heard_ms = now;
}

void PoolSupervisor::worker_pong(int w, std::uint64_t seq, double now) {
  PoolWorkerSlot& s = slots_.at(static_cast<std::size_t>(w));
  s.last_heard_ms = now;
  if (seq >= s.pong_seq) s.pong_seq = seq;
  if (s.pong_seq >= s.ping_seq) s.ping_sent_ms = 0.0;
}

double PoolSupervisor::shard_backoff_ms(const std::string& id, int shard,
                                        int attempts) const {
  return backoff_ms(attempts, policy_.retry_base_ms, policy_.retry_cap_ms,
                    policy_.seed,
                    fnv1a(id) ^ static_cast<std::uint64_t>(shard + 1));
}

PoolSupervisor::Held PoolSupervisor::worker_dead(int w, double now) {
  PoolWorkerSlot& s = slots_.at(static_cast<std::size_t>(w));
  Held held;
  if (s.state == PoolWorkerSlot::State::Dead) return held;
  held.job = s.job;
  held.shard = s.state == PoolWorkerSlot::State::Busy ? s.shard : -2;
  s = PoolWorkerSlot{};  // state Dead, pid -1
  ++respawns_;

  PoolJobPlan* p = held.shard != -2 ? find_plan(held.job) : nullptr;
  if (p != nullptr && held.shard >= 0) {
    // The shard died with its worker: back to Pending with backoff, or
    // Poisoned when the retries are gone. The sibling shards keep
    // running — this is the zone-granular half of the recovery story.
    for (ShardTask& t : p->shards) {
      if (t.index != held.shard || t.state != ShardState::Assigned ||
          t.worker != w) {
        continue;
      }
      t.worker = -1;
      t.last_worker = w;
      t.deadline_ms = 0.0;
      if (t.attempts > policy_.shard_max_retries) {
        t.state = ShardState::Poisoned;
      } else {
        t.state = ShardState::Pending;
        t.next_ms = now + shard_backoff_ms(p->id, t.index, t.attempts);
      }
    }
  } else if (p != nullptr && held.shard == -1 && p->merge_assigned &&
             p->merge_worker == w) {
    // The merge died with its worker; the shard checkpoints are all
    // still on disk, so a re-run is cheap (100% memo hits).
    p->merge_assigned = false;
    p->merge_worker = -1;
    p->merge_deadline_ms = 0.0;
  }
  return held;
}

std::vector<int> PoolSupervisor::workers_to_respawn() const {
  std::vector<int> out;
  if (collapsed()) return out;
  for (std::size_t w = 0; w < slots_.size(); ++w) {
    if (slots_[w].state == PoolWorkerSlot::State::Dead) {
      out.push_back(static_cast<int>(w));
    }
  }
  return out;
}

void PoolSupervisor::admit(const std::string& id, int shard_count,
                           double deadline_ms,
                           const std::vector<int>& poisoned) {
  PoolJobPlan p;
  p.id = id;
  p.deadline_ms = deadline_ms;
  p.shards.resize(static_cast<std::size_t>(std::max(1, shard_count)));
  for (std::size_t k = 0; k < p.shards.size(); ++k) {
    p.shards[k].index = static_cast<int>(k);
    if (std::find(poisoned.begin(), poisoned.end(),
                  static_cast<int>(k)) != poisoned.end()) {
      // Journal recovery already burned this stripe's retries in a
      // previous daemon life; don't spend a fresh budget re-proving it.
      p.shards[k].state = ShardState::Poisoned;
    }
  }
  plans_.push_back(std::move(p));
}

void PoolSupervisor::forget(const std::string& id) {
  plans_.erase(std::remove_if(plans_.begin(), plans_.end(),
                              [&](const PoolJobPlan& p) {
                                return p.id == id;
                              }),
               plans_.end());
  // A worker still chewing on the forgotten job stays Busy until its
  // (now stale) done event frees it — shard_done/merge_done return
  // Ignored for unknown jobs but still flip the slot back to Idle.
}

bool PoolSupervisor::has(const std::string& id) const {
  for (const PoolJobPlan& p : plans_) {
    if (p.id == id) return true;
  }
  return false;
}

std::vector<std::string> PoolSupervisor::job_ids() const {
  std::vector<std::string> out;
  out.reserve(plans_.size());
  for (const PoolJobPlan& p : plans_) out.push_back(p.id);
  return out;
}

const PoolJobPlan* PoolSupervisor::plan(const std::string& id) const {
  for (const PoolJobPlan& p : plans_) {
    if (p.id == id) return &p;
  }
  return nullptr;
}

PoolJobPlan* PoolSupervisor::find_plan(const std::string& id) {
  for (PoolJobPlan& p : plans_) {
    if (p.id == id) return &p;
  }
  return nullptr;
}

PoolSupervisor::ShardOutcome PoolSupervisor::shard_done(
    int w, const std::string& job, int shard, int code, double now) {
  PoolWorkerSlot& s = slots_.at(static_cast<std::size_t>(w));
  if (s.state == PoolWorkerSlot::State::Busy && s.job == job &&
      s.shard == shard) {
    s.state = PoolWorkerSlot::State::Idle;
    s.job.clear();
    s.shard = -2;
  }
  s.last_heard_ms = now;

  PoolJobPlan* p = find_plan(job);
  if (p == nullptr) return ShardOutcome::Ignored;
  for (ShardTask& t : p->shards) {
    if (t.index != shard || t.state != ShardState::Assigned ||
        t.worker != w) {
      continue;
    }
    t.worker = -1;
    t.last_worker = w;
    t.deadline_ms = 0.0;
    if (code == 0 || code == 2) {
      t.state = ShardState::Done;
      if (code == 2) p->infeasible = true;
      return ShardOutcome::Ok;
    }
    if (t.attempts > policy_.shard_max_retries) {
      t.state = ShardState::Poisoned;
      return ShardOutcome::Poisoned;
    }
    t.state = ShardState::Pending;
    t.next_ms = now + shard_backoff_ms(p->id, t.index, t.attempts);
    return ShardOutcome::Retry;
  }
  return ShardOutcome::Ignored;
}

PoolSupervisor::MergeOutcome PoolSupervisor::merge_done(
    int w, const std::string& job, int code, double now) {
  PoolWorkerSlot& s = slots_.at(static_cast<std::size_t>(w));
  if (s.state == PoolWorkerSlot::State::Busy && s.job == job &&
      s.shard == -1) {
    s.state = PoolWorkerSlot::State::Idle;
    s.job.clear();
    s.shard = -2;
  }
  s.last_heard_ms = now;

  PoolJobPlan* p = find_plan(job);
  if (p == nullptr || !p->merge_assigned || p->merge_worker != w) {
    return MergeOutcome::Ignored;
  }
  p->merge_assigned = false;
  p->merge_worker = -1;
  p->merge_deadline_ms = 0.0;
  if (code == 0 || code == 2 || code == 3) return MergeOutcome::Terminal;
  // Exit 4 (or a contract violation): retriable like a crashed merge,
  // bounded by the same retry budget shards get.
  if (p->merge_attempts > policy_.shard_max_retries) {
    return MergeOutcome::Exhausted;
  }
  return MergeOutcome::Retry;
}

int PoolSupervisor::pick_idle_worker(int avoid) const {
  int fallback = -1;
  for (std::size_t w = 0; w < slots_.size(); ++w) {
    if (slots_[w].state != PoolWorkerSlot::State::Idle) continue;
    if (static_cast<int>(w) != avoid) return static_cast<int>(w);
    fallback = static_cast<int>(w);
  }
  return fallback;
}

bool PoolSupervisor::next_assignment(double now, Assignment* out) {
  for (PoolJobPlan& p : plans_) {
    bool all_settled = true;
    for (ShardTask& t : p.shards) {
      switch (t.state) {
        case ShardState::Done:
          continue;
        case ShardState::Poisoned:
          continue;
        case ShardState::Assigned:
          all_settled = false;
          continue;
        case ShardState::Pending:
          break;
      }
      // An infeasible short-circuit skips the not-yet-started shards
      // (the merge re-derives infeasibility from the design itself) —
      // and counts them settled, so the merge launches this very pass.
      if (p.infeasible) {
        t.state = ShardState::Done;
        continue;
      }
      all_settled = false;
      if (t.next_ms > now) continue;
      const int w = pick_idle_worker(t.last_worker);
      if (w < 0) continue;
      PoolWorkerSlot& s = slots_[static_cast<std::size_t>(w)];
      s.state = PoolWorkerSlot::State::Busy;
      s.job = p.id;
      s.shard = t.index;
      t.state = ShardState::Assigned;
      t.worker = w;
      ++t.attempts;
      const double budget =
          p.deadline_ms > 0.0 ? std::max(1.0, p.deadline_ms - now) : 0.0;
      double stall = policy_.stall_timeout_ms;
      if (budget > 0.0 && (stall <= 0.0 || budget < stall)) stall = budget;
      t.deadline_ms = stall > 0.0 ? now + stall : 0.0;
      out->kind = Assignment::Kind::Shard;
      out->worker = w;
      out->job = p.id;
      out->shard = t.index;
      out->shard_count = static_cast<int>(p.shards.size());
      out->poison = t.poison;
      out->done_shards.clear();
      out->identity_shards.clear();
      out->deadline_ms = budget;
      return true;
    }
    if (!all_settled || p.merge_assigned) continue;
    // Every stripe settled (and at least the infeasible short-circuit
    // marked them Done): run the merge.
    const int w = pick_idle_worker(-1);
    if (w < 0) continue;
    PoolWorkerSlot& s = slots_[static_cast<std::size_t>(w)];
    s.state = PoolWorkerSlot::State::Busy;
    s.job = p.id;
    s.shard = -1;
    p.merge_assigned = true;
    p.merge_worker = w;
    ++p.merge_attempts;
    const double budget =
        p.deadline_ms > 0.0 ? std::max(1.0, p.deadline_ms - now) : 0.0;
    double stall = policy_.stall_timeout_ms;
    if (budget > 0.0 && (stall <= 0.0 || budget < stall)) stall = budget;
    p.merge_deadline_ms = stall > 0.0 ? now + stall : 0.0;
    out->kind = Assignment::Kind::Merge;
    out->worker = w;
    out->job = p.id;
    out->shard = -1;
    out->shard_count = static_cast<int>(p.shards.size());
    out->poison = false;
    out->done_shards.clear();
    out->identity_shards.clear();
    for (const ShardTask& t : p.shards) {
      if (t.state == ShardState::Done && !p.infeasible) {
        out->done_shards.push_back(t.index);
      } else if (t.state == ShardState::Poisoned) {
        out->identity_shards.push_back(t.index);
      }
    }
    out->deadline_ms = budget;
    return true;
  }
  out->kind = Assignment::Kind::None;
  return false;
}

void PoolSupervisor::mark_poison_target(const std::string& job,
                                        int shard) {
  PoolJobPlan* p = find_plan(job);
  if (p == nullptr) return;
  for (ShardTask& t : p->shards) {
    if (t.index == shard) t.poison = true;
  }
}

std::vector<int> PoolSupervisor::workers_to_ping(double now) {
  std::vector<int> out;
  for (std::size_t w = 0; w < slots_.size(); ++w) {
    PoolWorkerSlot& s = slots_[w];
    if (s.state != PoolWorkerSlot::State::Idle) continue;
    if (s.ping_sent_ms > 0.0) continue;  // one outstanding ping at a time
    if (now - s.last_heard_ms < policy_.ping_interval_ms) continue;
    s.ping_sent_ms = now;
    ++s.ping_seq;
    out.push_back(static_cast<int>(w));
  }
  return out;
}

std::vector<int> PoolSupervisor::stalled_workers(double now) const {
  std::vector<int> out;
  for (std::size_t w = 0; w < slots_.size(); ++w) {
    const PoolWorkerSlot& s = slots_[w];
    switch (s.state) {
      case PoolWorkerSlot::State::Dead:
        break;
      case PoolWorkerSlot::State::Starting:
        // A worker that never says ready is as wedged as one that
        // stops answering pings (e.g. hung loading a blob on dead NFS).
        if (policy_.stall_timeout_ms > 0.0 &&
            now - s.last_heard_ms >= policy_.stall_timeout_ms) {
          out.push_back(static_cast<int>(w));
        }
        break;
      case PoolWorkerSlot::State::Idle:
        if (s.ping_sent_ms > 0.0 &&
            now - s.ping_sent_ms >= policy_.ping_timeout_ms) {
          out.push_back(static_cast<int>(w));
        }
        break;
      case PoolWorkerSlot::State::Busy: {
        // The stall deadline lives on the assignment (shard or merge).
        double deadline = 0.0;
        for (const PoolJobPlan& p : plans_) {
          if (p.id != s.job) continue;
          if (s.shard == -1) {
            deadline = p.merge_deadline_ms;
          } else {
            for (const ShardTask& t : p.shards) {
              if (t.index == s.shard &&
                  t.state == ShardState::Assigned &&
                  t.worker == static_cast<int>(w)) {
                deadline = t.deadline_ms;
              }
            }
          }
        }
        if (deadline > 0.0 && now >= deadline) {
          out.push_back(static_cast<int>(w));
        }
        break;
      }
    }
  }
  return out;
}

double PoolSupervisor::next_deadline_ms() const {
  double next = -1.0;
  auto consider = [&next](double t) {
    if (t > 0.0 && (next < 0.0 || t < next)) next = t;
  };
  for (const PoolWorkerSlot& s : slots_) {
    switch (s.state) {
      case PoolWorkerSlot::State::Dead:
        break;
      case PoolWorkerSlot::State::Starting:
        if (policy_.stall_timeout_ms > 0.0) {
          consider(s.last_heard_ms + policy_.stall_timeout_ms);
        }
        break;
      case PoolWorkerSlot::State::Idle:
        consider(s.ping_sent_ms > 0.0
                     ? s.ping_sent_ms + policy_.ping_timeout_ms
                     : s.last_heard_ms + policy_.ping_interval_ms);
        break;
      case PoolWorkerSlot::State::Busy:
        break;  // covered by the per-assignment deadlines below
    }
  }
  for (const PoolJobPlan& p : plans_) {
    if (p.merge_assigned) consider(p.merge_deadline_ms);
    for (const ShardTask& t : p.shards) {
      if (t.state == ShardState::Assigned) consider(t.deadline_ms);
      if (t.state == ShardState::Pending) consider(t.next_ms);
    }
  }
  return next;
}

} // namespace wm::serve
