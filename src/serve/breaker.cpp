#include "serve/breaker.hpp"

#include <fstream>
#include <sstream>

namespace wm::serve {

namespace {

std::uint64_t fnv1a(const void* data, std::size_t n, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t fnv1a_str(const std::string& s, std::uint64_t h) {
  return fnv1a(s.data(), s.size(), h);
}

} // namespace

std::uint64_t design_fingerprint(const JobSpec& spec) {
  std::uint64_t h = 1469598103934665603ULL;
  // Hash the input bytes when readable; an unreadable input hashes by
  // path — its jobs all fail identically anyway, which is exactly the
  // deterministic-failure shape the breaker exists for.
  std::ifstream is(spec.tree, std::ios::binary);
  if (is.good()) {
    std::ostringstream buf;
    buf << is.rdbuf();
    h = fnv1a_str(buf.str(), h);
  } else {
    h = fnv1a_str(spec.tree, h);
  }
  h = fnv1a_str(spec.algo, h);
  h = fnv1a(&spec.kappa, sizeof spec.kappa, h);
  h = fnv1a(&spec.samples, sizeof spec.samples, h);
  return h;
}

bool CircuitBreaker::is_open(std::uint64_t fingerprint) const {
  if (threshold_ <= 0) return false;
  const auto it = entries_.find(fingerprint);
  return it != entries_.end() && it->second.open;
}

bool CircuitBreaker::record_failure(std::uint64_t fingerprint) {
  if (threshold_ <= 0) return false;
  Entry& e = entries_[fingerprint];
  ++e.consecutive_failures;
  if (!e.open && e.consecutive_failures >= threshold_) {
    e.open = true;
    return true;
  }
  return false;
}

void CircuitBreaker::record_success(std::uint64_t fingerprint) {
  const auto it = entries_.find(fingerprint);
  if (it != entries_.end()) entries_.erase(it);
}

std::size_t CircuitBreaker::open_count() const {
  std::size_t n = 0;
  for (const auto& [fp, e] : entries_) {
    if (e.open) ++n;
  }
  return n;
}

} // namespace wm::serve
