#include "serve/scheduler.hpp"

#include <algorithm>
#include <cmath>

namespace wm::serve {

namespace {

// Recent-dequeue window for the wait p95: big enough to smooth one
// burst, small enough that a cleared queue ages the storm out.
constexpr std::size_t kWaitWindow = 64;
// Below this many samples a p95 is noise, not pressure.
constexpr std::size_t kWaitMinSamples = 8;

constexpr double kRetryHintFloorMs = 10.0;
constexpr double kRetryHintCapMs = 30000.0;

double clamp_hint(double ms) {
  return std::min(kRetryHintCapMs, std::max(kRetryHintFloorMs, ms));
}

} // namespace

AdmissionScheduler::AdmissionScheduler(SchedulerConfig cfg)
    : cfg_(std::move(cfg)) {
  if (cfg_.queue_capacity < 1) cfg_.queue_capacity = 1;
  if (cfg_.workers < 1) cfg_.workers = 1;
  if (cfg_.default_weight <= 0.0) cfg_.default_weight = 1.0;
  if (cfg_.ewma_alpha <= 0.0 || cfg_.ewma_alpha > 1.0) {
    cfg_.ewma_alpha = 0.3;
  }
  if (cfg_.brownout_dwell_ms <= 0.0) cfg_.brownout_dwell_ms = 2000.0;
  if (cfg_.brownout_exit_ratio <= 0.0 || cfg_.brownout_exit_ratio >= 1.0) {
    cfg_.brownout_exit_ratio = 0.5;
  }
  if (cfg_.brownout_max_tier < 1) cfg_.brownout_max_tier = 1;
  if (cfg_.brownout_max_tier > 2) cfg_.brownout_max_tier = 2;
  waits_.assign(kWaitWindow, 0.0);
}

AdmissionScheduler::ClientQueue& AdmissionScheduler::client_for(
    const std::string& name) {
  for (ClientQueue& c : clients_) {
    if (c.name == name) return c;
  }
  ClientQueue c;
  c.name = name;
  clients_.push_back(std::move(c));
  return clients_.back();
}

double AdmissionScheduler::weight_of(const std::string& name) const {
  const auto it = cfg_.weights.find(name);
  const double w = it != cfg_.weights.end() ? it->second
                                            : cfg_.default_weight;
  return w > 0.0 ? w : cfg_.default_weight;
}

void AdmissionScheduler::refill(ClientQueue& c, double now) {
  if (cfg_.quota_rate <= 0.0) return;
  if (!c.bucket_init) {
    c.bucket_init = true;
    c.tokens = cfg_.quota_burst;
    c.refill_ms = now;
    return;
  }
  const double dt = now - c.refill_ms;
  if (dt > 0.0) {
    c.tokens = std::min(cfg_.quota_burst,
                        c.tokens + cfg_.quota_rate * dt / 1000.0);
  }
  c.refill_ms = now;
}

void AdmissionScheduler::insert_edf(ClientQueue& c, Entry entry) {
  if (entry.deadline_instant_ms <= 0.0) {
    // No deadline: FIFO behind every deadline job.
    c.jobs.push_back(std::move(entry));
    return;
  }
  auto it = c.jobs.begin();
  for (; it != c.jobs.end(); ++it) {
    if (it->deadline_instant_ms <= 0.0 ||
        it->deadline_instant_ms > entry.deadline_instant_ms) {
      break;
    }
  }
  c.jobs.insert(it, std::move(entry));
}

double AdmissionScheduler::drain_hint_ms() const {
  const double per = has_global_ ? global_ewma_
                                 : cfg_.min_attempt_floor_ms;
  if (per <= 0.0) return kRetryHintFloorMs;
  return static_cast<double>(total_) * per /
         static_cast<double>(cfg_.workers);
}

AdmitDecision AdmissionScheduler::admit(const std::string& id,
                                        const std::string& client,
                                        std::uint64_t fp,
                                        double deadline_instant_ms,
                                        double now) {
  AdmitDecision d;
  // A deadline the measured attempt time can no longer meet is turned
  // away here: queueing it would only shed it at dequeue after it
  // occupied capacity another job could have used.
  if (deadline_instant_ms > 0.0) {
    const double est = estimate_attempt_ms(fp);
    if (est > 0.0 && deadline_instant_ms - now < est) {
      d.kind = AdmitDecision::Kind::Infeasible;
      d.retry_after_ms = 0.0;  // waiting only makes the deadline worse
      return d;
    }
  }

  ClientQueue& mine = client_for(client);
  refill(mine, now);

  if (total_ >= static_cast<std::size_t>(cfg_.queue_capacity)) {
    // Victim selection: the most over-quota client with queued work
    // loses its newest job; only when nobody (incoming included) is
    // deeper over quota than the newcomer's own client is the newcomer
    // itself shed.
    ClientQueue* victim = nullptr;
    if (cfg_.quota_rate > 0.0) {
      for (ClientQueue& c : clients_) {
        if (c.jobs.empty()) continue;
        refill(c, now);
        if (c.tokens >= 0.0) continue;
        if (victim == nullptr || c.tokens < victim->tokens) victim = &c;
      }
    }
    const bool self_is_worst =
        victim == nullptr ||
        (victim->name == client ||
         (mine.tokens < 0.0 && mine.tokens <= victim->tokens));
    if (self_is_worst) {
      d.kind = AdmitDecision::Kind::Rejected;
      d.over_quota = cfg_.quota_rate > 0.0 && mine.tokens < 0.0;
      double hint = drain_hint_ms();
      if (cfg_.quota_rate > 0.0 && mine.tokens < 1.0) {
        hint = std::max(
            hint, (1.0 - mine.tokens) / cfg_.quota_rate * 1000.0);
      }
      d.retry_after_ms = clamp_hint(hint);
      return d;
    }
    // Evict the victim's newest arrival — the least-invested job of
    // the client most over its quota.
    auto newest = victim->jobs.begin();
    for (auto it = victim->jobs.begin(); it != victim->jobs.end(); ++it) {
      if (it->enqueue_ms >= newest->enqueue_ms) newest = it;
    }
    d.kind = AdmitDecision::Kind::Evicted;
    d.victim = newest->id;
    d.victim_client = victim->name;
    d.retry_after_ms = clamp_hint(
        (1.0 - victim->tokens) / cfg_.quota_rate * 1000.0);
    victim->jobs.erase(newest);
    --total_;
  }

  Entry e;
  e.id = id;
  e.fp = fp;
  e.deadline_instant_ms = deadline_instant_ms;
  e.enqueue_ms = now;
  insert_edf(mine, std::move(e));
  ++total_;
  if (cfg_.quota_rate > 0.0) mine.tokens -= 1.0;
  if (d.kind != AdmitDecision::Kind::Evicted) {
    d.kind = AdmitDecision::Kind::Admitted;
  }
  return d;
}

void AdmissionScheduler::restore(const std::string& id,
                                 const std::string& client,
                                 std::uint64_t fp,
                                 double deadline_instant_ms, double now) {
  Entry e;
  e.id = id;
  e.fp = fp;
  e.deadline_instant_ms = deadline_instant_ms;
  e.enqueue_ms = now;
  insert_edf(client_for(client), std::move(e));
  ++total_;
}

void AdmissionScheduler::remove(const std::string& id) {
  for (ClientQueue& c : clients_) {
    for (auto it = c.jobs.begin(); it != c.jobs.end(); ++it) {
      if (it->id != id) continue;
      c.jobs.erase(it);
      --total_;
      return;
    }
  }
}

std::vector<std::string> AdmissionScheduler::clear() {
  std::vector<std::string> ids;
  ids.reserve(total_);
  for (ClientQueue& c : clients_) {
    for (Entry& e : c.jobs) ids.push_back(std::move(e.id));
    c.jobs.clear();
    c.deficit = 0.0;
  }
  total_ = 0;
  return ids;
}

std::size_t AdmissionScheduler::queued_for(
    const std::string& client) const {
  for (const ClientQueue& c : clients_) {
    if (c.name == client) return c.jobs.size();
  }
  return 0;
}

NextJob AdmissionScheduler::next(double now) {
  NextJob n;
  if (total_ == 0 || clients_.empty()) return n;
  // Weighted deficit round robin, one pop per call: a client earns
  // `weight` credit each time the cursor reaches it and spends 1.0 per
  // job served, so over any window no client exceeds its weight share
  // by more than one quantum. Bounded scan: credit accrues every pass,
  // so some client reaches 1.0 within ceil(1/min_weight) passes.
  for (int guard = 0; guard < 100000; ++guard) {
    ClientQueue& c = clients_[rr_ % clients_.size()];
    if (c.jobs.empty()) {
      c.deficit = 0.0;  // no banking credit while idle
      ++rr_;
      continue;
    }
    if (c.deficit < 1.0) {
      c.deficit += weight_of(c.name);
      if (c.deficit < 1.0) {
        ++rr_;
        continue;
      }
    }
    Entry e = std::move(c.jobs.front());
    c.jobs.pop_front();
    --total_;
    // Shed-at-dequeue: a job whose remaining deadline is under the
    // measured attempt estimate would burn a worker slot and still
    // miss — fail it now, without charging the client's service share.
    bool shed = false;
    if (e.deadline_instant_ms > 0.0) {
      const double est = estimate_attempt_ms(e.fp);
      shed = est > 0.0 && e.deadline_instant_ms - now < est;
    }
    if (!shed) c.deficit -= 1.0;
    if (c.jobs.empty()) {
      c.deficit = 0.0;
      ++rr_;
    } else if (c.deficit < 1.0) {
      ++rr_;  // quantum spent: the next client gets its turn
    }
    if (shed) {
      n.kind = NextJob::Kind::DeadlineShed;
      n.id = std::move(e.id);
      return n;
    }
    n.kind = NextJob::Kind::Run;
    n.id = std::move(e.id);
    n.wait_ms = std::max(0.0, now - e.enqueue_ms);
    note_wait(n.wait_ms);
    return n;
  }
  return n;
}

void AdmissionScheduler::record_attempt(std::uint64_t fp,
                                        double wall_ms) {
  if (wall_ms <= 0.0) return;
  const double a = cfg_.ewma_alpha;
  const auto it = ewma_.find(fp);
  if (it == ewma_.end()) {
    ewma_.emplace(fp, wall_ms);
  } else {
    it->second = a * wall_ms + (1.0 - a) * it->second;
  }
  if (!has_global_) {
    global_ewma_ = wall_ms;
    has_global_ = true;
  } else {
    global_ewma_ = a * wall_ms + (1.0 - a) * global_ewma_;
  }
}

double AdmissionScheduler::estimate_attempt_ms(std::uint64_t fp) const {
  const auto it = ewma_.find(fp);
  if (it != ewma_.end()) return it->second;
  if (has_global_) return global_ewma_;
  return cfg_.min_attempt_floor_ms;
}

void AdmissionScheduler::note_wait(double wait_ms) {
  waits_[wait_at_] = wait_ms;
  wait_at_ = (wait_at_ + 1) % kWaitWindow;
  if (wait_n_ < kWaitWindow) ++wait_n_;
}

double AdmissionScheduler::wait_p95_ms() const {
  if (wait_n_ < kWaitMinSamples) return 0.0;
  std::vector<double> sorted(waits_.begin(),
                             waits_.begin() + wait_n_);
  std::sort(sorted.begin(), sorted.end());
  const std::size_t idx = static_cast<std::size_t>(
      std::ceil(0.95 * static_cast<double>(wait_n_))) - 1;
  return sorted[std::min(idx, wait_n_ - 1)];
}

void AdmissionScheduler::force_tier(int tier, double now) {
  tier_ = std::min(std::max(tier, 0), cfg_.brownout_max_tier);
  has_transitioned_ = true;
  last_transition_ms_ = now;
  pressure_since_ms_ = -1.0;
  clear_since_ms_ = -1.0;
}

int AdmissionScheduler::tick(double now, int busy, int workers) {
  if (cfg_.brownout_wait_p95_ms <= 0.0) return -1;
  const double p95 = wait_p95_ms();
  const bool saturated = workers > 0 && busy >= workers;
  const bool pressured = saturated && p95 >= cfg_.brownout_wait_p95_ms;
  // Exit either on a measured low p95 or on a queue that has emptied
  // with idle workers — the storm can end without enough fresh
  // dequeues to age the window's p95 down.
  const bool cleared =
      p95 <= cfg_.brownout_wait_p95_ms * cfg_.brownout_exit_ratio ||
      (total_ == 0 && !saturated);
  const double dwell = cfg_.brownout_dwell_ms;
  const bool dwelled =
      !has_transitioned_ || now - last_transition_ms_ >= dwell;

  int fired = -1;
  if (pressured) {
    clear_since_ms_ = -1.0;
    if (pressure_since_ms_ < 0.0) pressure_since_ms_ = now;
    if (tier_ < cfg_.brownout_max_tier && dwelled &&
        now - pressure_since_ms_ >= dwell) {
      ++tier_;
      has_transitioned_ = true;
      last_transition_ms_ = now;
      pressure_since_ms_ = now;
      fired = tier_;
    }
  } else if (cleared) {
    pressure_since_ms_ = -1.0;
    if (clear_since_ms_ < 0.0) clear_since_ms_ = now;
    if (tier_ > 0 && dwelled && now - clear_since_ms_ >= dwell) {
      --tier_;
      has_transitioned_ = true;
      last_transition_ms_ = now;
      clear_since_ms_ = now;
      fired = tier_;
    }
  } else {
    // Hysteresis band between the enter and exit thresholds: hold the
    // tier and let neither timer accrue.
    pressure_since_ms_ = -1.0;
    clear_since_ms_ = -1.0;
  }
  return fired;
}

double AdmissionScheduler::next_deadline_ms(double now) const {
  if (cfg_.brownout_wait_p95_ms <= 0.0) return 0.0;
  // A pending escalation/de-escalation, or any nonzero tier, needs a
  // timer so the controller re-evaluates without socket traffic.
  if (tier_ <= 0 && pressure_since_ms_ < 0.0 && clear_since_ms_ < 0.0) {
    return 0.0;
  }
  // Always in the future (the poll timeout must never be 0 in a steady
  // state or the loop would spin); quarter-dwell granularity keeps
  // transitions within dwell/4 of their earliest legal instant.
  return now + std::max(50.0, cfg_.brownout_dwell_ms / 4.0);
}

} // namespace wm::serve
