#pragma once
// The serving daemon (docs/serving.md): a single-threaded poll() event
// loop speaking wavemin.jobs/v1 over a unix-domain socket, a bounded
// admission queue, and a supervisor that runs every job attempt in a
// forked worker child.
//
// Single-threaded on purpose: the daemon forks, and forking a
// multi-threaded process is where deadlocks live. Signals (SIGCHLD,
// SIGTERM, SIGINT) reach the loop through a self-pipe, so there is
// exactly one place where state changes — the loop body — and the
// whole supervisor is sequentially consistent by construction.
//
// Resilience policy (all unit-tested via serve/job.hpp):
//   * admission     — an AdmissionScheduler (serve/scheduler.hpp):
//                     per-client EDF queues under weighted deficit
//                     round robin with token-bucket quotas; a full
//                     queue (or an injected serve.queue_full fault)
//                     sheds the most over-quota client with an
//                     "overloaded" error carrying retry_after_ms, and
//                     sustained pressure engages brownout tiers that
//                     cheapen each attempt's RunBudget;
//   * isolation     — a worker crash (SIGKILL, OOM, assert) costs one
//                     attempt, never the daemon;
//   * retries       — Internal failures and crashes retry with
//                     exponential backoff + deterministic jitter, up to
//                     the job's max_retries, resuming from the job's
//                     .wmck checkpoint;
//   * breaker       — deterministic failures (same design fingerprint,
//                     breaker_threshold consecutive terminal failures)
//                     quarantine the design;
//   * deadlines     — the client's job deadline propagates into each
//                     attempt's RunBudget; an exhausted deadline fails
//                     the job instead of launching a doomed attempt;
//   * drain         — SIGTERM (or the drain op) stops admission,
//                     grants in-flight workers drain_grace_ms, then
//                     SIGKILLs stragglers (their checkpoints survive
//                     for resume) and exits 0;
//   * durability    — every job lifecycle transition lands in an
//                     append-only journal in the spool (journal.hpp);
//                     on boot the daemon replays it, so a crashed
//                     daemon restarted on the same spool loses no job
//                     and re-runs no already-terminal one;
//   * supervision   — a per-child watchdog (client deadline and/or
//                     hang_timeout_ms, plus grace) SIGKILLs wedged
//                     workers so the retry path can take over.

#include <cstdint>
#include <string>

namespace wm::serve {

struct ServerOptions {
  std::string socket_path = "wavemin.sock";
  std::string spool_dir = "spool";  ///< checkpoints, results, default outs
  int queue_capacity = 64;   ///< Queued jobs before shedding (Backoff
                             ///< jobs count against backoff_capacity,
                             ///< so a retry storm cannot lock out
                             ///< fresh admissions)
  int backoff_capacity = 64; ///< Backoff jobs before a retry is denied
  int max_workers = 2;       ///< concurrent forked worker children
  int breaker_threshold = 3; ///< consecutive failures per design; <=0 off
  double retry_base_ms = 100.0;
  double retry_cap_ms = 5000.0;
  double drain_grace_ms = 2000.0;  ///< SIGKILL stragglers after this
  std::uint64_t seed = 0;          ///< backoff jitter seed
  /// Journal fsync policy: "always" | "batch" (once per loop
  /// iteration) | "off" (page cache only). See serve/journal.hpp.
  std::string journal_sync = "batch";
  /// Snapshot-plus-truncate the journal past this size.
  std::uint64_t journal_compact_bytes = 1 << 20;
  /// Hung-worker watchdog: SIGKILL a child still running after
  /// min(remaining client deadline, hang_timeout_ms) + hang_grace_ms.
  /// hang_timeout_ms 0 = only client deadlines arm the watchdog (a
  /// job with no deadline may legitimately run for hours).
  double hang_timeout_ms = 0.0;
  double hang_grace_ms = 1000.0;
  /// Characterization waveform resolution (ps) for in-process LUT
  /// builds — fork-per-attempt workers (who pay it per attempt) and
  /// blob-less pool workers (once at boot). 0 = the library default.
  /// A daemon serving from a blob must pass the dt the blob was
  /// compiled with, or a fork-path fallback would characterize a
  /// different grid than the pool serves.
  double char_dt = 0.0;
  /// Daemon-side chaos (serve.* sites): worker_kill schedules a victim
  /// launch, queue_full forces sheds, socket_torn tears replies.
  std::string fault_spec;
  std::uint64_t fault_seed = 0;
  // -- supervised worker pool (serve/pool.hpp) ------------------------
  /// Pre-forked pool workers; 0 = classic fork-per-attempt serving.
  /// When the pool collapses (pool_collapse_respawns worker respawns)
  /// the daemon degrades back to fork-per-attempt at runtime.
  int pool_workers = 0;
  /// wavemin.blob/v1 shared artifact for pool workers ("" = each
  /// worker characterizes in-process once at boot). A blob that fails
  /// validation disables the pool loudly at startup.
  std::string blob_path;
  /// Zone stripes per pool job; 0 = max(2, pool_workers).
  int shards_per_job = 0;
  int shard_max_retries = 2;          ///< re-assignments per stripe
  double pool_stall_timeout_ms = 30000.0;  ///< busy/booting worker silent cap
  double pool_ping_interval_ms = 500.0;    ///< idle heartbeat cadence
  double pool_ping_timeout_ms = 2000.0;    ///< unanswered ping: SIGKILL
  int pool_collapse_respawns = 5;     ///< respawns before giving up
  // -- admission scheduler (serve/scheduler.hpp) ----------------------
  /// Per-client token-bucket quota: sustained admissions/second and
  /// burst. rate 0 disables quota-based victim selection (full queue
  /// then rejects the newcomer, the pre-fairness behavior).
  double quota_rate = 0.0;
  double quota_burst = 8.0;
  /// DRR weights by client name (--client-weight name=w, repeatable);
  /// unlisted clients weigh 1.
  std::string client_weights;
  /// Brownout controller: enter tier 1 when the queue-wait p95 exceeds
  /// this (ms) with every worker busy, exit at half of it; 0 = off.
  double brownout_wait_ms = 0.0;
  /// Minimum spacing between brownout tier transitions.
  double brownout_dwell_ms = 2000.0;
  /// Tier >= 1 label cap applied to each attempt's RunBudget
  /// (max_total_labels); tier 2 additionally forces the Greedy rung.
  std::uint64_t brownout_label_budget = 200000;
};

/// Run the daemon until drained. Returns the process exit code: 0 for
/// a clean drain (including SIGTERM), nonzero when the loop could not
/// start (bad socket path, spool not writable). Installs SIGCHLD /
/// SIGTERM / SIGINT handlers and the process-global metrics registry
/// for its lifetime; one serve_loop per process.
int serve_loop(const ServerOptions& options);

} // namespace wm::serve
