#pragma once
// Worker pool process mechanics (docs/serving.md "Worker pool"): fork,
// pipe plumbing, command writes, event drains and kills for the
// pre-forked pool workers. Policy (who runs what, who is wedged, when
// to give up) lives in serve/supervisor.hpp; this class only owns the
// pids and fds, so it is the one piece the unit tests cannot cover —
// kept deliberately thin.
//
// Per worker: two pipes. The supervisor holds the command write end
// (blocking — commands are one short line, and the worker is always
// reading between jobs) and the event read end (nonblocking, polled by
// the daemon's event loop). A worker that dies EOFs its event pipe;
// one that must die gets SIGKILL — pool workers hold no state worth a
// graceful signal, their checkpoints are already on disk.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/shard.hpp"

namespace wm::serve {

class WorkerPool {
 public:
  struct Options {
    int workers = 0;
    std::string blob;  ///< shared wavemin.blob/v1 ("" = none)
    double char_dt = 0.0;  ///< blob-less LUT dt (ps); 0 = default
    std::uint64_t fault_seed = 0;
  };

  WorkerPool() = default;
  ~WorkerPool() { shutdown(); }
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  void configure(Options options) { opt_ = std::move(options); }
  int size() const { return static_cast<int>(slots_.size()); }

  /// Fork worker `w` (replacing any previous incarnation's fds).
  /// `in_child` runs in the child before the worker loop — the daemon
  /// closes its listener, connections and journal there. Returns the
  /// child pid, or -1 on fork/pipe failure.
  long spawn(int w, const std::function<void()>& in_child);

  /// One command down worker w's pipe. False when the write fails —
  /// the worker is dead or dying and the caller should treat it so.
  bool send(int w, const PoolCommand& cmd);

  /// The nonblocking event fd to poll for worker w; -1 when the slot
  /// has no live pipe.
  int event_fd(int w) const;

  /// Drain every complete event line currently buffered on worker w.
  /// Returns false when the pipe EOF'd or errored (worker dead);
  /// decoded events (garbled lines are skipped) land in `out`.
  bool drain_events(int w, std::vector<PoolEvent>* out);

  /// SIGKILL worker w (no-op on a dead slot). The pid stays recorded
  /// until reap() so the SIGCHLD handler can attribute the corpse.
  void kill(int w);

  /// Map a reaped pid back to its worker slot; -1 if not pool-owned.
  /// Clears the slot's pid and closes its pipes.
  int reap(long pid);

  /// Kill and forget every worker (used by drain and pool collapse).
  void shutdown();

 private:
  struct Slot {
    long pid = -1;
    int cmd_w = -1;    ///< parent's command write end
    int event_r = -1;  ///< parent's event read end (nonblocking)
    std::string buf;   ///< partial event line
  };

  void close_slot(Slot& s);

  Options opt_;
  std::vector<Slot> slots_;
};

} // namespace wm::serve
