#include "serve/worker.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>

#include "cells/characterizer.hpp"
#include "cells/library.hpp"
#include "core/options.hpp"
#include "core/wavemin.hpp"
#include "fault/fault.hpp"
#include "io/tree_io.hpp"
#include "serve/job.hpp"
#include "timing/power_mode.hpp"
#include "tree/clock_tree.hpp"
#include "util/error.hpp"
#include "util/status.hpp"

namespace wm::serve {

namespace {

std::string combined_fault_spec(const WorkerConfig& cfg) {
  std::string spec = cfg.spec.fault_spec;
  if (cfg.victim) {
    // The scheduled chaos victim dies mid-solve, right after its first
    // checkpoint write hits disk — the worst honest crash: work was
    // done, and the retry must prove it resumes it (resumed_zones > 0)
    // instead of redoing it.
    if (!spec.empty()) spec += ',';
    spec += "ck.kill_after_write=1";
  }
  if (cfg.victim_hang) {
    // The wedge twin: durable progress on disk, then a worker that
    // never returns — SIGKILLed by the daemon's watchdog, retried, and
    // the retry must resume the checkpointed zones.
    if (!spec.empty()) spec += ',';
    spec += "ck.hang_after_write=1";
  }
  return spec;
}

int attempt(const WorkerConfig& cfg, WorkerResult& wr) {
  // The fork copied the daemon's armed fault state (and its hit
  // counters) into this child; drop it before arming our own, or a
  // non-victim child could land on the daemon's scheduled kill hit.
  fault::disarm();
  // Arm before any work so io.* sites cover the loads below. The
  // serve.worker_kill site fires here when a job's own fault_spec arms
  // it (crash-before-any-work); a daemon-scheduled victim instead dies
  // later, on its first checkpoint write (combined_fault_spec).
  const std::string spec = combined_fault_spec(cfg);
  if (!spec.empty()) fault::arm(spec, cfg.fault_seed);
  fault::inject("serve.worker_kill");
  // Job-spec-armed wedge at startup (before any work): the watchdog
  // kill classifies as Crashed and the retry starts from scratch.
  fault::inject("serve.worker_hang");

  const CellLibrary lib = CellLibrary::nangate45_like();
  ClockTree tree = load_tree(cfg.spec.tree, lib);

  int max_island = 0;
  for (const TreeNode& n : tree.nodes()) {
    max_island = std::max(max_island, n.island);
  }
  const ModeSet modes = ModeSet::single(max_island + 1);

  CharacterizerOptions co;
  co.vdds = modes.distinct_vdds();
  if (cfg.char_dt > 0.0) co.dt = cfg.char_dt;
  const Characterizer chr(lib, co);

  WaveMinOptions opts;
  opts.kappa = cfg.spec.kappa;
  opts.samples = cfg.spec.samples;
  if (cfg.spec.algo == "wavemin-f") opts.solver = SolverKind::Greedy;
  // Brownout: the admission controller's degradation tier rides the
  // existing budget/ladder knobs — cheaper attempts, same contract
  // (exit 3 when degradation actually bit).
  if (cfg.force_greedy) opts.solver = SolverKind::Greedy;
  if (cfg.label_budget > 0) opts.budget.max_total_labels = cfg.label_budget;
  opts.seed = cfg.spec.seed;
  opts.job_id = cfg.spec.id;
  opts.quarantine_zone_errors = true;
  if (cfg.attempt_deadline_ms > 0.0) {
    opts.budget.deadline_ms = cfg.attempt_deadline_ms;
  }
  opts.checkpoint_path = cfg.checkpoint;
  std::error_code ec;
  if (!cfg.checkpoint.empty() &&
      std::filesystem::exists(cfg.checkpoint, ec)) {
    // A retry picks up the previous attempt's zone memo; a matching
    // fingerprint is guaranteed because the spec (and so the options
    // that feed the fingerprint) is identical across attempts.
    opts.resume_path = cfg.checkpoint;
  }

  const TryRunResult t = try_clk_wavemin(tree, lib, chr, opts);
  wr.category = error_category(t.status.code());
  if (!t.status.is_ok() &&
      t.status.code() != StatusCode::Infeasible) {
    wr.error = t.status.to_string();
    return cli_exit_code(t.status.code());
  }
  if (!t.result.success) {
    wr.category = ErrorCategory::Infeasible;
    wr.error = "no assignment meets the skew bound";
    return 2;
  }

  const RunReport& rep = t.result.report;
  wr.category = ErrorCategory::None;
  wr.degraded = rep.degraded();
  wr.resumed_zones = rep.resumed_zones;
  wr.zones_full = rep.zones_at(LadderLevel::Full);
  wr.zones_greedy = rep.zones_at(LadderLevel::Greedy);
  wr.zones_identity = rep.zones_at(LadderLevel::Identity);

  save_tree(cfg.out, tree);
  return wr.degraded ? 3 : 0;
}

} // namespace

int run_worker(const WorkerConfig& cfg) noexcept {
  WorkerResult wr;
  int code = 4;
  try {
    code = attempt(cfg, wr);
  } catch (const Error& e) {
    // wm::Error is the library's bad-input currency — deterministic,
    // so the supervisor must not retry it (the breaker's domain).
    wr.category = ErrorCategory::InvalidInput;
    wr.error = e.what();
    std::fprintf(stderr, "worker %s: error: %s\n", cfg.spec.id.c_str(),
                 e.what());
  } catch (const std::exception& e) {
    wr.category = ErrorCategory::Internal;
    wr.error = e.what();
    std::fprintf(stderr, "worker %s: error: %s\n", cfg.spec.id.c_str(),
                 e.what());
  }
  try {
    write_worker_result(cfg.result_path, wr);
  } catch (...) {
    // A lost result file reads as "crashed before reporting" — the
    // retryable interpretation; never turn it into a child abort.
  }
  return code;
}

} // namespace wm::serve
