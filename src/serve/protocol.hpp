#pragma once
// wavemin.jobs/v1 — the serving layer's wire protocol
// (docs/serving.md).
//
// Newline-delimited JSON over a unix-domain socket: every request and
// every response is exactly one JSON object on one line. Requests
// carry {"v": "wavemin.jobs/v1", "op": ...}; responses carry
// {"ok": true, ...} or {"ok": false, "error": "<code>",
// "message": ...} where <code> is a small stable vocabulary
// ("overloaded", "breaker-open", "draining", "bad-request",
// "not-found", "duplicate-id") that clients branch on — the message is
// for humans only.
//
// Parsing is strict about shape (unknown ops, missing fields and
// malformed JSON throw wm::Error, which the daemon answers with a
// "bad-request" frame) and lenient about extras (unknown fields are
// ignored, so v1 clients keep working against later daemons).

#include <cstdint>
#include <string>

#include "util/json.hpp"

namespace wm::serve {

inline constexpr std::string_view kProtocolVersion = "wavemin.jobs/v1";

/// One optimization job as submitted by a client. Mirrors the CLI
/// `opt` surface that makes sense per-job; daemon-wide policy (queue
/// capacity, worker count, retry caps) lives in ServerOptions.
struct JobSpec {
  std::string id;            ///< client-chosen; daemon assigns "j<N>" if empty
  std::string tree;          ///< input .ctree path (required)
  std::string out;           ///< output path ("" = <spool>/<id>.ctree)
  std::string algo = "wavemin";  ///< "wavemin" | "wavemin-f"
  double kappa = 20.0;
  int samples = 158;
  /// Client deadline for the whole job, submit to terminal state. The
  /// remaining share is propagated into RunBudget::deadline_ms at each
  /// attempt launch, so a retried job never outlives its caller's
  /// patience.
  double deadline_ms = 0.0;
  int max_retries = 3;
  std::uint64_t seed = 0;
  /// Per-job fault injection, armed inside the worker child only
  /// (chaos testing; the daemon itself stays clean).
  std::string fault_spec;
  /// Fairness identity for the admission scheduler ("" = the shared
  /// anonymous client). Optional on the wire — lenient-extras keeps
  /// pre-fairness clients working, they just pool one quota.
  std::string client;
};

struct Request {
  enum class Op { Submit, Status, Health, Stats, Drain };
  Op op = Op::Health;
  JobSpec job;         ///< Submit
  bool wait = false;   ///< Submit: hold the reply until terminal state
  std::string id;      ///< Status
};

/// Parse one request frame. Throws wm::Error on malformed JSON, a
/// protocol-version mismatch, an unknown op or a missing field.
Request parse_request(const std::string& line);

/// JobSpec <-> JSON, the same field layout submit frames use. Shared
/// with the job journal (src/serve/journal.hpp), whose admit/snapshot
/// records embed the spec so recovery can relaunch a job without the
/// client. parse_job_spec throws wm::Error on a missing/invalid field.
JobSpec parse_job_spec(const json::Value& root);
json::Value job_spec_to_json(const JobSpec& job);

/// Serialize a submit request (the client side of parse_request).
std::string dump_submit(const JobSpec& job, bool wait);
std::string dump_simple(const char* op);          ///< health/stats/drain
std::string dump_status(const std::string& id);   ///< status

/// {"ok": false, "error": code, "message": message} — one frame.
/// A positive retry_after_ms adds the structured back-pressure hint
/// ("retry_after_ms": <ms>) that "overloaded" rejects carry so
/// clients can pace their retries instead of hammering.
std::string error_frame(const std::string& code,
                        const std::string& message,
                        double retry_after_ms = 0.0);

/// Start an {"ok": true, ...} frame the caller extends and dumps.
json::Value ok_frame();

} // namespace wm::serve
