#include "serve/server.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <system_error>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/checkpoint.hpp"
#include "fault/fault.hpp"
#include "io/blob.hpp"
#include "obs/metrics.hpp"
#include "serve/breaker.hpp"
#include "serve/job.hpp"
#include "serve/journal.hpp"
#include "serve/pool.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "serve/supervisor.hpp"
#include "serve/worker.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/posix_io.hpp"
#include "util/thread_annotations.hpp"

namespace wm::serve {

namespace {

// ---- self-pipe signal plumbing --------------------------------------
// Handlers only set a flag and poke the pipe; every state change
// happens in the loop body. One serve_loop per process, so globals are
// the honest representation.

std::atomic<int> g_wake_fd{-1};
volatile std::sig_atomic_t g_sig_term = 0;
volatile std::sig_atomic_t g_sig_chld = 0;

void on_signal(int sig) {
  if (sig == SIGCHLD) {
    g_sig_chld = 1;
  } else {
    g_sig_term = 1;
  }
  const int fd = g_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 0;
    // A full pipe just means a wakeup is already pending.
    [[maybe_unused]] ssize_t n = ::write(fd, &byte, 1);
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

SchedulerConfig scheduler_config(const ServerOptions& o) {
  SchedulerConfig cfg;
  cfg.queue_capacity = std::max(1, o.queue_capacity);
  cfg.workers = std::max(1, o.max_workers);
  cfg.quota_rate = o.quota_rate;
  cfg.quota_burst = o.quota_burst;
  cfg.brownout_wait_p95_ms = o.brownout_wait_ms;
  cfg.brownout_dwell_ms = o.brownout_dwell_ms;
  // "name=w,name=w" — the CLI validates; a malformed entry here is
  // simply skipped so a hand-built ServerOptions cannot crash the boot.
  std::size_t begin = 0;
  const std::string& spec = o.client_weights;
  while (begin < spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(begin, end - begin);
    begin = end + 1;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) continue;
    char* stop = nullptr;
    const double w = std::strtod(item.c_str() + eq + 1, &stop);
    if (stop == item.c_str() + item.size() && w > 0.0) {
      cfg.weights[item.substr(0, eq)] = w;
    }
  }
  return cfg;
}

class Server {
 public:
  explicit Server(const ServerOptions& options)
      : opt_(options),
        breaker_(options.breaker_threshold),
        epoch_(std::chrono::steady_clock::now()),
        sched_(scheduler_config(options)) {}

  int run();

 private:
  struct Conn {
    std::string in;
    std::string out;
    bool torn = false;  ///< injected serve.socket_torn: close, no reply
    bool eof = false;   ///< peer closed; drop once replies flush
  };

  double now_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  std::string spool_path(const std::string& id,
                         const char* suffix) const {
    return opt_.spool_dir + "/" + id + suffix;
  }

  std::string journal_path() const {
    return opt_.spool_dir + "/jobs.wmj";
  }

  std::size_t pending_count() const REQUIRES(loop_role_) {
    return sched_.queued() + backoff_.size();
  }

  /// Absolute steady-clock instant the job's client deadline expires
  /// (0 = no deadline) — what the scheduler orders and sheds by.
  double deadline_instant(const Job& job) const {
    return job.spec.deadline_ms > 0.0
               ? job.submitted_ms + job.spec.deadline_ms
               : 0.0;
  }

  void touch_gauges() REQUIRES(loop_role_) {
    registry_.gauge_set("serve.queue_depth",
                        static_cast<double>(pending_count()));
    registry_.gauge_max("serve.queue_depth_max",
                        static_cast<double>(pending_count()));
    registry_.gauge_set("serve.in_flight",
                        static_cast<double>(running_.size()));
  }

  int setup() REQUIRES(loop_role_);
  void teardown() REQUIRES(loop_role_);
  void loop_once() REQUIRES(loop_role_);
  int next_timeout_ms() const REQUIRES(loop_role_);

  void accept_clients() REQUIRES(loop_role_);
  void service_conn(int fd, short revents) REQUIRES(loop_role_);
  void close_conn(int fd) REQUIRES(loop_role_);
  void handle_line(int fd, const std::string& line) REQUIRES(loop_role_);
  std::string handle_submit(int fd, Request& req) REQUIRES(loop_role_);
  std::string health_frame() const REQUIRES(loop_role_);
  std::string stats_frame() const REQUIRES(loop_role_);
  void send_reply(int fd, const std::string& frame) REQUIRES(loop_role_);

  void requeue_due() REQUIRES(loop_role_);
  void launch_ready() REQUIRES(loop_role_);
  void brownout_tick() REQUIRES(loop_role_);
  void check_watchdogs() REQUIRES(loop_role_);
  void reap_children() REQUIRES(loop_role_);
  void finish(Job& job, JobState state, std::string error)
      REQUIRES(loop_role_);
  void notify_waiters(Job& job) REQUIRES(loop_role_);

  // -- supervised worker pool (serve/pool.hpp + supervisor.hpp) -------
  std::string shard_ck_path(const std::string& id, int shard) const {
    return opt_.spool_dir + "/" + id + ".s" + std::to_string(shard) +
           ".wmck";
  }
  void boot_pool() REQUIRES(loop_role_);
  void spawn_pool_worker(int w) REQUIRES(loop_role_);
  void pool_schedule() REQUIRES(loop_role_);
  void dispatch_assignment(const PoolSupervisor::Assignment& a)
      REQUIRES(loop_role_);
  void admit_to_pool(Job& job, double attempt_deadline)
      REQUIRES(loop_role_);
  void service_pool_worker(int w) REQUIRES(loop_role_);
  void on_shard_done(int w, const PoolEvent& ev) REQUIRES(loop_role_);
  void on_merge_done(int w, const PoolEvent& ev) REQUIRES(loop_role_);
  void on_pool_worker_exit(int w) REQUIRES(loop_role_);
  void poison_shard(const std::string& id, int shard)
      REQUIRES(loop_role_);
  void remove_shard_checkpoints(const std::string& id)
      REQUIRES(loop_role_);
  void collapse_pool() REQUIRES(loop_role_);

  // -- durable job journal (serve/journal.hpp) ------------------------
  void recover_spool() REQUIRES(loop_role_);
  void journal_append(const JournalRecord& rec) REQUIRES(loop_role_);
  void degrade_journal(const char* what) REQUIRES(loop_role_);
  std::vector<JournalRecord> snapshot_records() const
      REQUIRES(loop_role_);
  void compact_journal_if_needed() REQUIRES(loop_role_);

  void begin_drain(const char* reason) REQUIRES(loop_role_);
  void kill_stragglers() REQUIRES(loop_role_);
  void flush_conns() REQUIRES(loop_role_);

  // The daemon is single-threaded by design: fork() isolates the
  // workers, and only signal handlers (which touch nothing but
  // g_sig_*/g_wake_fd) run concurrently. loop_role_ is a zero-cost
  // capability (util/thread_annotations.hpp) encoding that contract:
  // every piece of loop state below is GUARDED_BY it, run() acquires it
  // for the loop's lifetime, and any future helper thread reaching this
  // state without the role is a compile error under
  // WAVEMIN_THREAD_SAFETY instead of a latent data race.
  ThreadRole loop_role_;

  ServerOptions opt_;
  obs::MetricsRegistry registry_;  // internally synchronized
  CircuitBreaker breaker_ GUARDED_BY(loop_role_);
  std::chrono::steady_clock::time_point epoch_;

  int listen_fd_ GUARDED_BY(loop_role_) = -1;
  int wake_r_ GUARDED_BY(loop_role_) = -1;
  int wake_w_ GUARDED_BY(loop_role_) = -1;
  bool socket_bound_ GUARDED_BY(loop_role_) = false;

  // The WAL of job state. journal_enabled_ drops to false on the
  // first write/fsync failure (ENOSPC and friends): the daemon then
  // serves journal-less from memory — degraded, loudly logged, never
  // aborted (serve.spool_write_failed).
  Journal journal_ GUARDED_BY(loop_role_);
  bool journal_enabled_ GUARDED_BY(loop_role_) = false;
  SyncPolicy journal_sync_ GUARDED_BY(loop_role_) = SyncPolicy::Batch;

  // The pre-forked pool: pool_ owns the pids and pipes, psup_ owns the
  // policy (shard placement, heartbeats, poisoning, collapse). When
  // pool_enabled_ drops — a rejected blob at boot, or a runtime
  // collapse — every job flows through the fork-per-attempt path
  // instead ("serve.pool_degraded").
  WorkerPool pool_ GUARDED_BY(loop_role_);
  PoolSupervisor psup_ GUARDED_BY(loop_role_);
  bool pool_enabled_ GUARDED_BY(loop_role_) = false;

  std::map<std::string, Job> jobs_ GUARDED_BY(loop_role_);
  // Queued jobs live inside the admission scheduler (per-client EDF
  // queues under DRR + quota + brownout; serve/scheduler.hpp) — the
  // old FIFO deque's replacement.
  AdmissionScheduler sched_ GUARDED_BY(loop_role_);
  std::vector<std::string> backoff_
      GUARDED_BY(loop_role_);  ///< Backoff, waiting out the delay
  std::map<pid_t, std::string> running_ GUARDED_BY(loop_role_);
  std::map<int, Conn> conns_ GUARDED_BY(loop_role_);
  std::uint64_t job_seq_ GUARDED_BY(loop_role_) = 0;

  bool draining_ GUARDED_BY(loop_role_) = false;
  bool killed_stragglers_ GUARDED_BY(loop_role_) = false;
  double drain_deadline_ms_ GUARDED_BY(loop_role_) = 0.0;
};

int Server::setup() {
  std::error_code ec;
  std::filesystem::create_directories(opt_.spool_dir, ec);
  if (ec) {
    std::fprintf(stderr, "serve: cannot create spool dir %s: %s\n",
                 opt_.spool_dir.c_str(), ec.message().c_str());
    return 1;
  }
  obs::install_global(&registry_);
  // Sweep droppings of checkpoint writers killed mid-save in a previous
  // daemon life (satellite: ck.stale_tmp_removed counts them).
  ck::clean_stale_tmps(opt_.spool_dir);

  if (!opt_.fault_spec.empty()) {
    try {
      fault::arm(opt_.fault_spec, opt_.fault_seed);
    } catch (const Error& e) {
      std::fprintf(stderr, "serve: bad --fault-spec: %s\n", e.what());
      return 1;
    }
  }

  if (!parse_sync_policy(opt_.journal_sync, &journal_sync_)) {
    std::fprintf(stderr,
                 "serve: bad --journal-sync \"%s\" (want always|batch|off)\n",
                 opt_.journal_sync.c_str());
    return 1;
  }
  recover_spool();

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opt_.socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "serve: socket path too long: %s\n",
                 opt_.socket_path.c_str());
    return 1;
  }
  std::memcpy(addr.sun_path, opt_.socket_path.c_str(),
              opt_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    std::perror("serve: socket");
    return 1;
  }
  // A stale socket file from a crashed daemon would fail the bind; the
  // spool checkpoints are the durable state, the socket never is.
  ::unlink(opt_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    std::perror("serve: bind/listen");
    return 1;
  }
  socket_bound_ = true;
  set_nonblocking(listen_fd_);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    std::perror("serve: pipe");
    return 1;
  }
  wake_r_ = pipe_fds[0];
  wake_w_ = pipe_fds[1];
  set_nonblocking(wake_r_);
  set_nonblocking(wake_w_);
  g_sig_term = 0;
  g_sig_chld = 0;
  g_wake_fd.store(wake_w_, std::memory_order_relaxed);

  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGCHLD, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  WM_LOG(Info) << "serve: listening on " << opt_.socket_path
               << " (spool " << opt_.spool_dir << ", queue "
               << opt_.queue_capacity << ", workers "
               << opt_.max_workers << ")";
  if (opt_.pool_workers > 0) boot_pool();
  return 0;
}

void Server::boot_pool() {
  // A configured blob is validated here, once, before any worker trusts
  // it: the daemon refuses to run a pool on a bad artifact and says so,
  // instead of every worker dying at boot in a respawn loop.
  if (!opt_.blob_path.empty()) {
    try {
      blob::View::map(opt_.blob_path);
    } catch (const Error& e) {
      registry_.add("serve.pool_degraded");
      WM_LOG(Warn) << "serve: shared artifact rejected (" << e.what()
                   << "): pool disabled, degrading to fork-per-attempt";
      return;
    }
  }
  WorkerPool::Options po;
  po.workers = opt_.pool_workers;
  po.blob = opt_.blob_path;
  po.char_dt = opt_.char_dt;
  po.fault_seed = opt_.fault_seed;
  pool_.configure(std::move(po));
  PoolPolicy policy;
  policy.workers = opt_.pool_workers;
  policy.shard_max_retries = opt_.shard_max_retries;
  policy.stall_timeout_ms = opt_.pool_stall_timeout_ms;
  policy.ping_interval_ms = opt_.pool_ping_interval_ms;
  policy.ping_timeout_ms = opt_.pool_ping_timeout_ms;
  policy.collapse_respawns = opt_.pool_collapse_respawns;
  policy.retry_base_ms = opt_.retry_base_ms;
  policy.retry_cap_ms = opt_.retry_cap_ms;
  policy.seed = opt_.seed;
  psup_ = PoolSupervisor(policy);
  pool_enabled_ = true;
  for (const int w : psup_.workers_to_respawn()) spawn_pool_worker(w);
  WM_LOG(Info) << "serve: worker pool up (" << opt_.pool_workers
               << " worker(s), "
               << (opt_.blob_path.empty() ? "in-process characterization"
                                          : ("blob " + opt_.blob_path))
               << ")";
}

void Server::spawn_pool_worker(int w) {
  // Capture the daemon-side fds under the loop role; the child-side
  // lambda runs between fork and exec-less worker entry and must not
  // touch guarded members.
  std::vector<int> close_fds;
  if (listen_fd_ >= 0) close_fds.push_back(listen_fd_);
  if (wake_r_ >= 0) close_fds.push_back(wake_r_);
  if (wake_w_ >= 0) close_fds.push_back(wake_w_);
  for (const auto& [cfd, conn] : conns_) close_fds.push_back(cfd);
  Journal* journal = &journal_;
  const long pid = pool_.spawn(w, [&close_fds, journal] {
    for (const int fd : close_fds) ::close(fd);
    journal->close();  // the supervisor's WAL, never the child's
  });
  if (pid < 0) {
    // Transient (EAGAIN under load): the slot stays Dead and the next
    // scheduling pass retries the fork.
    registry_.add("serve.pool_spawn_failed");
    std::perror("serve: pool fork");
    return;
  }
  psup_.worker_spawned(w, pid, now_ms());
  registry_.add("serve.pool_spawned");
  WM_LOG(Info) << "serve: pool worker " << w << " -> pid " << pid;
}

void Server::teardown() {
  pool_.shutdown();
  if (journal_enabled_) journal_.flush();
  journal_.close();
  g_wake_fd.store(-1, std::memory_order_relaxed);
  for (auto& [fd, conn] : conns_) ::close(fd);
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_r_ >= 0) ::close(wake_r_);
  if (wake_w_ >= 0) ::close(wake_w_);
  if (socket_bound_) ::unlink(opt_.socket_path.c_str());
  fault::disarm();
  obs::install_global(nullptr);
}

int Server::next_timeout_ms() const {
  double next = -1.0;
  for (const std::string& id : backoff_) {
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) continue;
    const double t = it->second.next_attempt_ms;
    if (next < 0.0 || t < next) next = t;
  }
  // The watchdog must fire even when no client talks to us: a wedged
  // child generates no SIGCHLD and no socket traffic.
  for (const auto& [pid, id] : running_) {
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) continue;
    const double t = it->second.watchdog_ms;
    if (t > 0.0 && (next < 0.0 || t < next)) next = t;
  }
  if (draining_ && !running_.empty() && !killed_stragglers_) {
    if (next < 0.0 || drain_deadline_ms_ < next) {
      next = drain_deadline_ms_;
    }
  }
  if (pool_enabled_) {
    // Pool timers: heartbeat pings, ping timeouts, stall deadlines and
    // shard-retry backoff expiries all fire without any socket traffic.
    const double t = psup_.next_deadline_ms();
    if (t > 0.0 && (next < 0.0 || t < next)) next = t;
  }
  {
    // Brownout re-evaluation: a pressured (or clearing) controller must
    // tick even when no client talks to us, or the tier would only move
    // on traffic — the exact moment it must not depend on.
    const double t = sched_.next_deadline_ms(now_ms());
    if (t > 0.0 && (next < 0.0 || t < next)) next = t;
  }
  if (next < 0.0) return -1;
  const double wait = next - now_ms();
  if (wait <= 0.0) return 0;
  return static_cast<int>(std::min(std::ceil(wait), 60000.0));
}

int Server::run() {
  // The whole daemon lifetime runs under the loop role — the one place
  // the capability is ever acquired.
  const ThreadRoleGuard role(loop_role_);
  if (const int rc = setup(); rc != 0) {
    teardown();
    return rc;
  }
  while (true) {
    requeue_due();
    launch_ready();
    pool_schedule();
    brownout_tick();
    check_watchdogs();
    compact_journal_if_needed();
    if (draining_ && !killed_stragglers_ && !running_.empty() &&
        now_ms() >= drain_deadline_ms_) {
      kill_stragglers();
    }
    if (draining_ && running_.empty()) break;
    loop_once();
  }
  flush_conns();
  WM_LOG(Info) << "serve: drained cleanly, " << jobs_.size()
               << " job(s) served";
  teardown();
  return 0;
}

void Server::loop_once() {
  std::vector<pollfd> fds;
  fds.push_back({wake_r_, POLLIN, 0});
  if (!draining_ && listen_fd_ >= 0) {
    fds.push_back({listen_fd_, POLLIN, 0});
  }
  const std::size_t conn_base = fds.size();
  std::vector<int> conn_fds;
  for (const auto& [fd, conn] : conns_) {
    short events = POLLIN;
    if (!conn.out.empty() || conn.torn) events |= POLLOUT;
    fds.push_back({fd, events, 0});
    conn_fds.push_back(fd);
  }
  const std::size_t pool_base = fds.size();
  std::vector<int> pool_polled;
  for (int w = 0; w < pool_.size(); ++w) {
    const int pfd = pool_.event_fd(w);
    if (pfd < 0) continue;
    fds.push_back({pfd, POLLIN, 0});
    pool_polled.push_back(w);
  }

  // Batch sync policy: one fsync covers every transition this
  // iteration appended, paid once before the loop blocks.
  if (journal_enabled_ && !journal_.flush()) {
    degrade_journal("journal fsync failed");
  }

  const int rc = retry_poll(fds.data(), fds.size(), next_timeout_ms());
  if (rc < 0) {
    std::perror("serve: poll");
  }

  if (fds[0].revents != 0) {
    char buf[64];
    while (retry_read(wake_r_, buf, sizeof buf) > 0) {
    }
  }
  if (g_sig_term != 0) {
    g_sig_term = 0;
    begin_drain("signal");
  }
  if (g_sig_chld != 0) {
    g_sig_chld = 0;
    reap_children();
  }
  if (!draining_ && listen_fd_ >= 0 && conn_base > 1 &&
      fds[1].revents != 0) {
    accept_clients();
  }
  for (std::size_t i = 0; i < conn_fds.size(); ++i) {
    const pollfd& p = fds[conn_base + i];
    if (p.revents != 0) service_conn(conn_fds[i], p.revents);
  }
  for (std::size_t i = 0; i < pool_polled.size(); ++i) {
    const pollfd& p = fds[pool_base + i];
    if (p.revents != 0) service_pool_worker(pool_polled[i]);
  }
}

void Server::accept_clients() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;
    set_nonblocking(fd);
    conns_.emplace(fd, Conn{});
    registry_.add("serve.connections");
  }
}

void Server::close_conn(int fd) {
  conns_.erase(fd);
  ::close(fd);
  // A waiter that hung up must not get a write to a recycled fd later.
  for (auto& [id, job] : jobs_) {
    auto& w = job.waiters;
    w.erase(std::remove(w.begin(), w.end(), fd), w.end());
  }
}

void Server::service_conn(int fd, short revents) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = it->second;

  if ((revents & (POLLERR | POLLNVAL)) != 0) {
    close_conn(fd);
    return;
  }
  if ((revents & POLLIN) != 0) {
    char buf[4096];
    while (true) {
      const ssize_t n = retry_read(fd, buf, sizeof buf);
      if (n > 0) {
        conn.in.append(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) {
        // EOF: serve what was already buffered, then drop the conn
        // once the replies flush (or now, if nothing is pending).
        conn.eof = true;
        break;
      }
      break;  // EAGAIN or error
    }
    std::size_t start = 0;
    while (true) {
      const std::size_t nl = conn.in.find('\n', start);
      if (nl == std::string::npos) break;
      const std::string line = conn.in.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty()) handle_line(fd, line);
      // handle_line may close the conn (torn socket fault).
      it = conns_.find(fd);
      if (it == conns_.end()) return;
    }
    conn.in.erase(0, start);
  }
  if ((revents & POLLOUT) != 0 && !conn.out.empty()) {
    const ssize_t n = retry_write(fd, conn.out.data(), conn.out.size());
    if (n > 0) {
      conn.out.erase(0, static_cast<std::size_t>(n));
    } else if (n < 0 && errno != EAGAIN) {
      close_conn(fd);
      return;
    }
  }
  if ((conn.torn || conn.eof || (revents & POLLHUP) != 0) &&
      conn.out.empty()) {
    close_conn(fd);
  }
}

void Server::send_reply(int fd, const std::string& frame) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  try {
    fault::inject("serve.socket_torn");
  } catch (const Error&) {
    // Chaos: the connection dies mid-reply. The client sees EOF and
    // falls back to polling `status` — the job itself is unaffected.
    registry_.add("serve.conn_torn");
    it->second.torn = true;
    it->second.out.clear();
    return;
  }
  it->second.out += frame;
  it->second.out += '\n';
}

void Server::handle_line(int fd, const std::string& line) {
  std::string reply;
  try {
    Request req = parse_request(line);
    switch (req.op) {
      case Request::Op::Submit:
        reply = handle_submit(fd, req);
        break;
      case Request::Op::Status: {
        const auto it = jobs_.find(req.id);
        reply = it == jobs_.end()
                    ? error_frame("not-found", "no job \"" + req.id + "\"")
                    : status_frame(it->second);
        break;
      }
      case Request::Op::Health:
        reply = health_frame();
        break;
      case Request::Op::Stats:
        reply = stats_frame();
        break;
      case Request::Op::Drain: {
        json::Value v = ok_frame();
        v.set("state", json::Value::string_v("draining"));
        reply = json::dump(v);
        send_reply(fd, reply);
        begin_drain("client drain op");
        return;
      }
    }
  } catch (const Error& e) {
    registry_.add("serve.bad_requests");
    reply = error_frame("bad-request", e.what());
  }
  if (!reply.empty()) send_reply(fd, reply);
}

std::string Server::handle_submit(int fd, Request& req) {
  if (draining_) {
    return error_frame("draining", "daemon is draining; resubmit later");
  }
  JobSpec spec = req.job;
  if (spec.id.empty()) spec.id = "j" + std::to_string(++job_seq_);
  const auto dup = jobs_.find(spec.id);
  if (dup != jobs_.end()) {
    Job& old = dup->second;
    if (!is_terminal(old.state)) {
      return error_frame("duplicate-id",
                         "job \"" + spec.id + "\" already exists");
    }
    if (design_fingerprint(spec) != old.design_fp) {
      return error_frame("duplicate-id",
                         "job \"" + spec.id +
                             "\" already ran a different design");
    }
    // Same id, same design, already answered: serve the cached result
    // (possibly rehydrated from the journal after a restart) instead of
    // re-executing — the exactly-once half of crash consistency.
    if (old.state == JobState::Done || old.state == JobState::Degraded ||
        old.state == JobState::Infeasible) {
      registry_.add("serve.result_cache_hits");
      return status_frame(old);
    }
    // Failed/Quarantined/Drained: an explicit resubmit re-admits the
    // job with a fresh retry budget; a surviving spool checkpoint makes
    // the new attempt a resume, not a redo.
    jobs_.erase(dup);
  }
  // The breaker answers before admission runs: an eviction is a side
  // effect, and a breaker-rejected submit must not cost another client
  // its queued job.
  const std::uint64_t fp = design_fingerprint(spec);
  if (breaker_.is_open(fp)) {
    registry_.add("serve.breaker_rejected");
    return error_frame("breaker-open",
                       "design quarantined after repeated failures");
  }
  // Chaos: an injected serve.queue_full forces the full-queue reject
  // without the scheduler's consent.
  try {
    fault::inject("serve.queue_full");
  } catch (const Error&) {
    registry_.add("serve.shed");
    registry_.add("serve.sched_capacity_shed");
    return error_frame("overloaded",
                       "queue full (capacity " +
                           std::to_string(opt_.queue_capacity) + ")");
  }

  const double now = now_ms();
  const double deadline_instant_ms =
      spec.deadline_ms > 0.0 ? now + spec.deadline_ms : 0.0;
  const AdmitDecision d =
      sched_.admit(spec.id, spec.client, fp, deadline_instant_ms, now);
  switch (d.kind) {
    case AdmitDecision::Kind::Infeasible:
      // The measured attempt time can no longer meet this deadline:
      // turning it away beats queueing work we would only shed later.
      registry_.add("serve.sched_infeasible");
      return error_frame("deadline-infeasible",
                         "deadline_ms " +
                             std::to_string(spec.deadline_ms) +
                             " is below the measured attempt estimate");
    case AdmitDecision::Kind::Rejected:
      registry_.add("serve.shed");
      registry_.add(d.over_quota ? "serve.sched_quota_shed"
                                 : "serve.sched_capacity_shed");
      return error_frame("overloaded",
                         "queue full (capacity " +
                             std::to_string(opt_.queue_capacity) + ")",
                         d.retry_after_ms);
    case AdmitDecision::Kind::Evicted: {
      // Admission made room by shedding the most over-quota client's
      // newest job; that job ends Failed, exactly once, right here.
      registry_.add("serve.sched_evicted");
      registry_.add("serve.failed");
      const auto vit = jobs_.find(d.victim);
      if (vit != jobs_.end() && !is_terminal(vit->second.state)) {
        finish(vit->second, JobState::Failed,
               "shed: client \"" + d.victim_client +
                   "\" over quota under load");
      }
      break;
    }
    case AdmitDecision::Kind::Admitted:
      break;
  }

  Job job;
  job.spec = std::move(spec);
  job.design_fp = fp;
  job.submitted_ms = now;
  job.checkpoint = spool_path(job.spec.id, ".wmck");
  job.result_path = spool_path(job.spec.id, ".result.json");
  if (job.spec.out.empty()) {
    job.spec.out = spool_path(job.spec.id, ".ctree");
  }
  const std::string id = job.spec.id;
  if (req.wait) job.waiters.push_back(fd);
  Job& stored = jobs_.emplace(id, std::move(job)).first->second;
  JournalRecord admit;
  admit.type = JournalRecord::Type::Admit;
  admit.id = id;
  admit.fp = stored.design_fp;
  admit.spec = stored.spec;
  journal_append(admit);
  registry_.add("serve.submitted");
  touch_gauges();
  WM_LOG(Info) << "serve: job " << id << " queued (depth "
               << pending_count() << ")";
  return req.wait ? std::string() : status_frame(stored);
}

std::string Server::health_frame() const {
  json::Value v = ok_frame();
  v.set("version",
        json::Value::string_v(std::string(kProtocolVersion)));
  v.set("state",
        json::Value::string_v(draining_ ? "draining" : "serving"));
  v.set("queue_depth", json::Value::number_v(
                           static_cast<std::uint64_t>(pending_count())));
  v.set("queue_capacity", json::Value::number_v(opt_.queue_capacity));
  v.set("in_flight", json::Value::number_v(static_cast<std::uint64_t>(
                         running_.size())));
  v.set("max_workers", json::Value::number_v(opt_.max_workers));
  v.set("jobs", json::Value::number_v(
                    static_cast<std::uint64_t>(jobs_.size())));
  v.set("breakers_open", json::Value::number_v(
                             static_cast<std::uint64_t>(
                                 breaker_.open_count())));
  return json::dump(v);
}

std::string Server::stats_frame() const {
  json::Value v = ok_frame();
  v.set("queue_depth", json::Value::number_v(
                           static_cast<std::uint64_t>(pending_count())));
  v.set("brownout_tier", json::Value::number_v(sched_.tier()));
  v.set("in_flight", json::Value::number_v(static_cast<std::uint64_t>(
                         running_.size())));
  v.set("breakers_open", json::Value::number_v(
                             static_cast<std::uint64_t>(
                                 breaker_.open_count())));
  json::Value counters = json::Value::object_v();
  const obs::MetricsSnapshot snap = registry_.snapshot();
  for (const auto& [name, value] : snap.counters) {
    counters.set(name, json::Value::number_v(value));
  }
  v.set("counters", std::move(counters));
  return json::dump(v);
}

void Server::requeue_due() {
  const double now = now_ms();
  for (auto it = backoff_.begin(); it != backoff_.end();) {
    const auto jit = jobs_.find(*it);
    if (jit == jobs_.end() || jit->second.state != JobState::Backoff) {
      it = backoff_.erase(it);
      continue;
    }
    if (now >= jit->second.next_attempt_ms) {
      Job& job = jit->second;
      job.state = JobState::Queued;
      // Re-entry, not admission: capacity and quota were paid at the
      // original submit, so a retry can never be shed by its own queue.
      sched_.restore(*it, job.spec.client, job.design_fp,
                     deadline_instant(job), now);
      it = backoff_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::launch_ready() {
  while (static_cast<int>(running_.size()) < std::max(1, opt_.max_workers) &&
         sched_.queued() > 0) {
    // Pool mode bounds concurrency by jobs in flight; check before the
    // pop so a full pool never dequeues (and cannot mis-shed) a job it
    // has no slot for.
    if (pool_enabled_ &&
        psup_.jobs() >=
            static_cast<std::size_t>(std::max(1, opt_.max_workers))) {
      break;
    }
    const NextJob next = sched_.next(now_ms());
    if (next.kind == NextJob::Kind::None) break;
    const std::string id = next.id;
    const auto jit = jobs_.find(id);
    if (jit == jobs_.end() || jit->second.state != JobState::Queued) {
      continue;
    }
    Job& job = jit->second;

    // Shed-at-dequeue: the scheduler measured that this job's remaining
    // deadline is under the attempt estimate — fail it here, without it
    // ever occupying a worker slot.
    if (next.kind == NextJob::Kind::DeadlineShed) {
      registry_.add("serve.sched_deadline_shed");
      registry_.add("serve.failed");
      finish(job, JobState::Failed,
             "deadline infeasible at dequeue: remaining budget is below "
             "the measured attempt estimate");
      continue;
    }
    registry_.gauge_set("serve.sched_wait_p95_ms", sched_.wait_p95_ms());

    // A breaker that opened while this job sat in the queue quarantines
    // it at launch — the admission check alone cannot cover that race.
    if (breaker_.is_open(job.design_fp)) {
      registry_.add("serve.breaker_quarantined");
      finish(job, JobState::Quarantined,
             "design quarantined after repeated failures");
      continue;
    }
    double attempt_deadline = 0.0;
    if (job.spec.deadline_ms > 0.0) {
      attempt_deadline = job.spec.deadline_ms -
                         (now_ms() - job.submitted_ms);
      if (attempt_deadline <= 0.0) {
        registry_.add("serve.deadline_exhausted");
        registry_.add("serve.failed");
        finish(job, JobState::Failed,
               "job deadline exhausted before launch");
        continue;
      }
    }

    // Pool mode: jobs fan out into zone shards on the pre-forked
    // workers instead of forking a fresh child.
    if (pool_enabled_) {
      admit_to_pool(job, attempt_deadline);
      continue;
    }

    // The daemon advances the worker-kill schedule on behalf of the
    // children it forks: exactly the launch whose note() lands on the
    // scheduled hit forks a victim (which arms kill-on-first-hit
    // itself). Children never inherit our armed state — run_worker
    // disarms first.
    bool victim = false;
    bool victim_hang = false;
    if (fault::armed()) {
      const std::uint64_t sched = fault::scheduled_hit("serve.worker_kill");
      if (sched != 0) {
        fault::note("serve.worker_kill");
        victim = fault::hits("serve.worker_kill") == sched;
      }
      const std::uint64_t hang_sched =
          fault::scheduled_hit("serve.worker_hang");
      if (hang_sched != 0) {
        fault::note("serve.worker_hang");
        victim_hang = fault::hits("serve.worker_hang") == hang_sched;
      }
    }
    // A stale result file from the previous attempt must not be read as
    // this attempt's report.
    std::remove(job.result_path.c_str());

    // Brownout: tier >= 1 caps the attempt's label budget, tier 2 also
    // forces the Greedy rung — resolved at launch so a tier change
    // mid-queue applies to every launch after it.
    const int tier = sched_.tier();
    std::uint64_t label_budget = 0;
    bool force_greedy = false;
    if (tier >= 1) {
      label_budget = opt_.brownout_label_budget;
      force_greedy = tier >= 2;
      registry_.add("serve.brownout_jobs");
    }

    const pid_t pid = ::fork();
    if (pid < 0) {
      // Transient (EAGAIN under load): put the job back and let the
      // next loop iteration retry the fork.
      std::perror("serve: fork");
      sched_.restore(id, job.spec.client, job.design_fp,
                     deadline_instant(job), now_ms());
      break;
    }
    if (pid == 0) {
      // Worker child: drop every daemon fd, restore default signal
      // dispositions, run the attempt, and _exit with the contract
      // code — never return into the event loop's state.
      ::signal(SIGCHLD, SIG_DFL);
      ::signal(SIGTERM, SIG_DFL);
      ::signal(SIGINT, SIG_DFL);
      ::signal(SIGPIPE, SIG_DFL);
      if (listen_fd_ >= 0) ::close(listen_fd_);
      ::close(wake_r_);
      ::close(wake_w_);
      for (const auto& [cfd, conn] : conns_) ::close(cfd);
      journal_.close();  // the supervisor's WAL, never the child's
      WorkerConfig cfg;
      cfg.spec = job.spec;
      cfg.out = job.spec.out;
      cfg.checkpoint = job.checkpoint;
      cfg.result_path = job.result_path;
      cfg.attempt_deadline_ms = attempt_deadline;
      cfg.char_dt = opt_.char_dt;
      cfg.label_budget = label_budget;
      cfg.force_greedy = force_greedy;
      cfg.victim = victim;
      cfg.victim_hang = victim_hang;
      cfg.fault_seed = opt_.fault_seed;
      ::_exit(run_worker(cfg));
    }

    job.state = JobState::Running;
    job.pid = pid;
    job.launched_ms = now_ms();
    ++job.attempts;
    // Watchdog: the tighter of the client's remaining deadline and the
    // daemon-wide hang cap, plus grace. A cooperative child beats it
    // (its RunBudget degrades first); a wedged one meets SIGKILL.
    double watchdog_limit = attempt_deadline;
    if (opt_.hang_timeout_ms > 0.0 &&
        (watchdog_limit <= 0.0 || opt_.hang_timeout_ms < watchdog_limit)) {
      watchdog_limit = opt_.hang_timeout_ms;
    }
    job.watchdog_ms =
        watchdog_limit > 0.0
            ? now_ms() + watchdog_limit + std::max(0.0, opt_.hang_grace_ms)
            : 0.0;
    running_.emplace(pid, id);
    registry_.add("serve.launched");
    if (job.attempts > 1) registry_.add("serve.retries");
    JournalRecord launch;
    launch.type = JournalRecord::Type::Launch;
    launch.id = id;
    launch.attempt = job.attempts;
    journal_append(launch);
    touch_gauges();
    WM_LOG(Info) << "serve: job " << id << " attempt " << job.attempts
                 << " -> pid " << pid
                 << (victim ? " (chaos victim)" : "")
                 << (victim_hang ? " (chaos hang victim)" : "");
    // Chaos: the daemon itself dies right after a launch hit the
    // journal — the exact crash the restart soak recovers from. A Kill
    // site, so this line simply never returns when it trips.
    fault::inject("serve.daemon_kill");
  }
}

void Server::reap_children() {
  while (true) {
    int st = 0;
    const pid_t pid = ::waitpid(-1, &st, WNOHANG);
    if (pid <= 0) break;
    // Pool workers first: their corpses belong to the pool supervisor,
    // not the per-job running_ table.
    if (const int pw = pool_.reap(pid); pw >= 0) {
      on_pool_worker_exit(pw);
      continue;
    }
    const auto rit = running_.find(pid);
    if (rit == running_.end()) continue;
    const std::string id = rit->second;
    running_.erase(rit);
    const auto jit = jobs_.find(id);
    if (jit == jobs_.end()) continue;
    Job& job = jit->second;
    job.pid = -1;
    job.watchdog_ms = 0.0;
    if (job.launched_ms > 0.0) {
      // Launch-to-reap wall time feeds the scheduler's per-design
      // attempt estimate (the shed-at-dequeue and infeasibility tests).
      sched_.record_attempt(job.design_fp, now_ms() - job.launched_ms);
      job.launched_ms = 0.0;
    }

    const Attempt a = classify_exit(
        WIFEXITED(st), WIFEXITED(st) ? WEXITSTATUS(st) : 0,
        WIFSIGNALED(st), WIFSIGNALED(st) ? WTERMSIG(st) : 0);
    job.last = a;
    // The result file stays on disk: it is what rehydrates a terminal
    // job's status after a daemon restart (launch_ready removes it
    // before each fresh attempt; the boot sweep removes orphans).
    job.last_result = load_worker_result(job.result_path);
    const ErrorCategory cat = job.last_result.valid
                                  ? job.last_result.category
                                  : ErrorCategory::Internal;
    if (job.last_result.valid && job.last_result.resumed_zones > 0) {
      registry_.add("serve.resumed_zones", job.last_result.resumed_zones);
    }

    switch (a.outcome) {
      case Attempt::Outcome::Done:
        registry_.add("serve.done");
        breaker_.record_success(job.design_fp);
        std::remove(job.checkpoint.c_str());
        finish(job, JobState::Done, "");
        break;
      case Attempt::Outcome::Degraded:
        registry_.add("serve.degraded");
        breaker_.record_success(job.design_fp);
        std::remove(job.checkpoint.c_str());
        finish(job, JobState::Degraded, "");
        break;
      case Attempt::Outcome::Infeasible:
        registry_.add("serve.infeasible");
        // Infeasible is an *answer* about the design, not a failure —
        // it closes the breaker account like a success.
        breaker_.record_success(job.design_fp);
        std::remove(job.checkpoint.c_str());
        finish(job, JobState::Infeasible,
               job.last_result.valid ? job.last_result.error
                                     : "infeasible");
        break;
      case Attempt::Outcome::Failed:
      case Attempt::Outcome::Crashed: {
        if (a.outcome == Attempt::Outcome::Crashed) {
          registry_.add("serve.crashes");
        }
        if (draining_) {
          // A straggler we SIGKILLed (or one that failed during drain):
          // its checkpoint stays in the spool for a future resume.
          registry_.add("serve.drained_jobs");
          finish(job, JobState::Drained, "daemon drained mid-attempt");
          break;
        }
        const bool want_retry = retryable(a.outcome, cat) &&
                                job.attempts <= job.spec.max_retries;
        // Backoff has its own capacity, separate from the admission
        // queue: a retry storm fills this pool and fails over, it never
        // locks fresh submits out of queue_capacity.
        const bool backoff_full =
            backoff_.size() >=
            static_cast<std::size_t>(std::max(1, opt_.backoff_capacity));
        if (want_retry && backoff_full) {
          registry_.add("serve.sched_backoff_full");
        }
        if (want_retry && !backoff_full) {
          job.state = JobState::Backoff;
          job.next_attempt_ms =
              now_ms() + backoff_ms(job.attempts, opt_.retry_base_ms,
                                    opt_.retry_cap_ms, opt_.seed,
                                    fnv1a(job.spec.id));
          backoff_.push_back(id);
          JournalRecord exit_rec;
          exit_rec.type = JournalRecord::Type::Exit;
          exit_rec.id = id;
          exit_rec.attempt = job.attempts;
          journal_append(exit_rec);
          registry_.add("serve.backoff_scheduled");
          WM_LOG(Info) << "serve: job " << id << " attempt "
                       << job.attempts << " "
                       << serve::to_string(a.outcome)
                       << ", retrying in "
                       << (job.next_attempt_ms - now_ms()) << " ms";
          break;
        }
        std::string err = job.last_result.valid &&
                                  !job.last_result.error.empty()
                              ? job.last_result.error
                              : (a.outcome == Attempt::Outcome::Crashed
                                     ? "worker crashed on signal " +
                                           std::to_string(a.signal)
                                     : "worker exit " +
                                           std::to_string(a.exit_code));
        registry_.add("serve.failed");
        finish(job, JobState::Failed, std::move(err));
        if (breaker_.record_failure(job.design_fp)) {
          registry_.add("serve.breaker_opened");
          WM_LOG(Warn) << "serve: breaker OPEN for design of job " << id;
        }
        break;
      }
    }
    touch_gauges();
  }
}

void Server::finish(Job& job, JobState state, std::string error) {
  job.state = state;
  job.error = std::move(error);
  JournalRecord term;
  term.type = JournalRecord::Type::Term;
  term.id = job.spec.id;
  term.state = state;
  term.error = job.error;
  journal_append(term);
  WM_LOG(Info) << "serve: job " << job.spec.id << " -> "
               << serve::to_string(state)
               << (job.error.empty() ? "" : (": " + job.error));
  notify_waiters(job);
  touch_gauges();
}

void Server::check_watchdogs() {
  const double now = now_ms();
  for (const auto& [pid, id] : running_) {
    const auto jit = jobs_.find(id);
    if (jit == jobs_.end()) continue;
    Job& job = jit->second;
    if (job.watchdog_ms <= 0.0 || now < job.watchdog_ms) continue;
    // One kill per attempt: the reap classifies the SIGKILL as Crashed
    // and the normal retry-from-checkpoint path takes over.
    job.watchdog_ms = 0.0;
    registry_.add("serve.hung_killed");
    WM_LOG(Warn) << "serve: job " << id << " (pid " << pid
                 << ") overran its watchdog, SIGKILL";
    ::kill(pid, SIGKILL);
  }
}

void Server::brownout_tick() {
  const int before = sched_.tier();
  const int busy = pool_enabled_ ? static_cast<int>(psup_.jobs())
                                 : static_cast<int>(running_.size());
  const int after =
      sched_.tick(now_ms(), busy, std::max(1, opt_.max_workers));
  if (after < 0) return;  // no transition this tick
  // Every transition is journaled before it is acted on, so a daemon
  // killed mid-brownout restarts in the tier it was serving at.
  JournalRecord rec;
  rec.type = JournalRecord::Type::Brownout;
  rec.tier = after;
  journal_append(rec);
  registry_.gauge_set("serve.brownout_tier", static_cast<double>(after));
  if (after > before) {
    registry_.add("serve.brownout_escalations");
    if (before == 0) registry_.add("serve.brownout_entered");
  } else {
    registry_.add("serve.brownout_deescalations");
    if (after == 0) registry_.add("serve.brownout_exited");
  }
  WM_LOG(Warn) << "serve: brownout tier " << before << " -> " << after
               << " (queue-wait p95 " << sched_.wait_p95_ms() << " ms, "
               << busy << "/" << std::max(1, opt_.max_workers)
               << " workers busy)";
}

// ---- worker pool ----------------------------------------------------

void Server::admit_to_pool(Job& job, double attempt_deadline) {
  const std::string& id = job.spec.id;
  const int count = opt_.shards_per_job > 1
                        ? opt_.shards_per_job
                        : std::max(2, opt_.pool_workers);
  const double deadline_instant =
      attempt_deadline > 0.0 ? now_ms() + attempt_deadline : 0.0;
  // A stale result file from a previous attempt must not be read as
  // this attempt's report.
  std::remove(job.result_path.c_str());
  // Pin this attempt's brownout budget now: every shard and the merge
  // see one consistent RunBudget even if the tier moves mid-attempt
  // (a next attempt picks up the new tier).
  job.attempt_label_budget = 0;
  job.attempt_force_greedy = false;
  if (const int tier = sched_.tier(); tier >= 1) {
    job.attempt_label_budget = opt_.brownout_label_budget;
    job.attempt_force_greedy = tier >= 2;
  }
  psup_.admit(id, count, deadline_instant, job.poisoned_shards);
  job.state = JobState::Running;
  job.launched_ms = now_ms();
  ++job.attempts;
  if (sched_.tier() >= 1) registry_.add("serve.brownout_jobs");
  registry_.add("serve.launched");
  registry_.add("serve.pool_jobs");
  if (job.attempts > 1) registry_.add("serve.retries");
  JournalRecord launch;
  launch.type = JournalRecord::Type::Launch;
  launch.id = id;
  launch.attempt = job.attempts;
  journal_append(launch);
  touch_gauges();
  WM_LOG(Info) << "serve: job " << id << " attempt " << job.attempts
               << " -> pool (" << count << " shard(s)"
               << (job.poisoned_shards.empty()
                       ? ""
                       : ", " + std::to_string(job.poisoned_shards.size()) +
                             " pre-poisoned")
               << ")";
  fault::inject("serve.daemon_kill");
}

void Server::pool_schedule() {
  if (!pool_enabled_) return;
  const double now = now_ms();
  for (const int w : psup_.workers_to_respawn()) spawn_pool_worker(w);
  for (const int w : psup_.stalled_workers(now)) {
    // One SIGKILL per wedge: the reap path marks the slot dead, frees
    // the held shard back to Pending, and the respawn pass refills it.
    registry_.add("serve.pool_stall_killed");
    WM_LOG(Warn) << "serve: pool worker " << w
                 << " wedged (no progress), SIGKILL";
    pool_.kill(w);
  }
  for (const int w : psup_.workers_to_ping(now)) {
    PoolCommand ping;
    ping.kind = PoolCommand::Kind::Ping;
    ping.seq = psup_.slot(w).ping_seq;
    if (!pool_.send(w, ping)) pool_.kill(w);
  }
  PoolSupervisor::Assignment a;
  while (psup_.next_assignment(now_ms(), &a)) dispatch_assignment(a);
}

void Server::dispatch_assignment(const PoolSupervisor::Assignment& a) {
  const auto jit = jobs_.find(a.job);
  if (jit == jobs_.end()) {
    psup_.forget(a.job);
    return;
  }
  Job& job = jit->second;
  PoolCommand cmd;
  cmd.spec = job.spec;
  cmd.shard_count = a.shard_count;
  cmd.deadline_ms = a.deadline_ms;
  // The budget pinned at admit_to_pool rides every dispatch of this
  // attempt — shards and merge must agree on the RunBudget or the
  // merge would reject the shard checkpoints as options-stale.
  cmd.label_budget = job.attempt_label_budget;
  cmd.force_greedy = job.attempt_force_greedy;
  if (a.kind == PoolSupervisor::Assignment::Kind::Shard) {
    cmd.kind = PoolCommand::Kind::Shard;
    cmd.shard_index = a.shard;
    cmd.checkpoint = shard_ck_path(a.job, a.shard);
    cmd.poison = a.poison;
    // The daemon advances the chaos schedules on behalf of the shard
    // runs it dispatches, exactly like launch_ready does for forked
    // children: the victim run gets a flag, and the worker arms the
    // site itself. serve.shard_poison sticks to its stripe
    // (mark_poison_target) so every retry fails the same way and the
    // poisoning ladder is actually exercised.
    if (fault::armed()) {
      if (const std::uint64_t sched =
              fault::scheduled_hit("serve.worker_kill");
          sched != 0) {
        fault::note("serve.worker_kill");
        cmd.kill = fault::hits("serve.worker_kill") == sched;
      }
      if (const std::uint64_t sched =
              fault::scheduled_hit("serve.pool_worker_stall");
          sched != 0) {
        fault::note("serve.pool_worker_stall");
        cmd.stall = fault::hits("serve.pool_worker_stall") == sched;
      }
      if (!cmd.poison) {
        if (const std::uint64_t sched =
                fault::scheduled_hit("serve.shard_poison");
            sched != 0) {
          fault::note("serve.shard_poison");
          if (fault::hits("serve.shard_poison") == sched) {
            psup_.mark_poison_target(a.job, a.shard);
            cmd.poison = true;
          }
        }
      }
    }
    WM_LOG(Info) << "serve: job " << a.job << " shard " << a.shard << "/"
                 << a.shard_count << " -> pool worker " << a.worker
                 << (cmd.kill ? " (chaos victim)" : "")
                 << (cmd.stall ? " (chaos stall victim)" : "")
                 << (cmd.poison ? " (chaos poison target)" : "");
  } else {
    cmd.kind = PoolCommand::Kind::Merge;
    for (const int k : a.done_shards) {
      cmd.resume.push_back(shard_ck_path(a.job, k));
    }
    cmd.identity_shards = a.identity_shards;
    cmd.checkpoint = job.checkpoint;
    cmd.out = job.spec.out;
    cmd.result_path = job.result_path;
    WM_LOG(Info) << "serve: job " << a.job << " merge ("
                 << a.done_shards.size() << " shard checkpoint(s), "
                 << a.identity_shards.size()
                 << " poisoned stripe(s)) -> pool worker " << a.worker;
  }
  if (!pool_.send(a.worker, cmd)) {
    // Dead pipe: SIGKILL so the reap path requeues the assignment.
    pool_.kill(a.worker);
  }
}

void Server::service_pool_worker(int w) {
  std::vector<PoolEvent> events;
  const bool alive = pool_.drain_events(w, &events);
  const double now = now_ms();
  for (const PoolEvent& ev : events) {
    psup_.worker_heard(w, now);
    switch (ev.kind) {
      case PoolEvent::Kind::Ready:
        psup_.worker_ready(w, now);
        if (ev.characterized > 0) {
          registry_.add("serve.pool_characterized", ev.characterized);
        } else {
          registry_.add("serve.pool_blob_restored");
        }
        break;
      case PoolEvent::Kind::Pong:
        psup_.worker_pong(w, ev.seq, now);
        break;
      case PoolEvent::Kind::ShardDone:
        on_shard_done(w, ev);
        break;
      case PoolEvent::Kind::MergeDone:
        on_merge_done(w, ev);
        break;
      case PoolEvent::Kind::Fatal:
        registry_.add("serve.pool_worker_fatal");
        WM_LOG(Warn) << "serve: pool worker " << w
                     << " fatal: " << ev.error;
        pool_.kill(w);
        break;
    }
  }
  // EOF: the worker is gone; make sure of it and let the SIGCHLD reap
  // drive the one recovery path (worker_dead).
  if (!alive) pool_.kill(w);
}

void Server::on_shard_done(int w, const PoolEvent& ev) {
  switch (psup_.shard_done(w, ev.job, ev.shard, ev.code, now_ms())) {
    case PoolSupervisor::ShardOutcome::Ok: {
      registry_.add("serve.shards_done");
      JournalRecord rec;
      rec.type = JournalRecord::Type::Shard;
      rec.id = ev.job;
      rec.shard = ev.shard;
      rec.shard_state = ShardState::Done;
      journal_append(rec);
      break;
    }
    case PoolSupervisor::ShardOutcome::Retry:
      registry_.add("serve.shard_retries");
      WM_LOG(Info) << "serve: job " << ev.job << " shard " << ev.shard
                   << " failed (code " << ev.code << "), retrying"
                   << (ev.error.empty() ? "" : ": " + ev.error);
      break;
    case PoolSupervisor::ShardOutcome::Poisoned:
      poison_shard(ev.job, ev.shard);
      break;
    case PoolSupervisor::ShardOutcome::Ignored:
      break;
  }
}

void Server::poison_shard(const std::string& id, int shard) {
  registry_.add("serve.shard_poisoned");
  WM_LOG(Warn) << "serve: job " << id << " shard " << shard
               << " poisoned (retries exhausted): the merge will force "
                  "this stripe to identity";
  JournalRecord rec;
  rec.type = JournalRecord::Type::Shard;
  rec.id = id;
  rec.shard = shard;
  rec.shard_state = ShardState::Poisoned;
  journal_append(rec);
}

void Server::remove_shard_checkpoints(const std::string& id) {
  const PoolJobPlan* p = psup_.plan(id);
  const int count =
      p != nullptr ? static_cast<int>(p->shards.size())
                   : std::max(opt_.shards_per_job,
                              std::max(2, opt_.pool_workers));
  for (int k = 0; k < count; ++k) {
    std::remove(shard_ck_path(id, k).c_str());
  }
}

void Server::on_merge_done(int w, const PoolEvent& ev) {
  const PoolSupervisor::MergeOutcome oc =
      psup_.merge_done(w, ev.job, ev.code, now_ms());
  if (oc == PoolSupervisor::MergeOutcome::Ignored) return;
  const auto jit = jobs_.find(ev.job);
  if (jit == jobs_.end()) {
    psup_.forget(ev.job);
    return;
  }
  Job& job = jit->second;
  if (oc != PoolSupervisor::MergeOutcome::Retry && job.launched_ms > 0.0) {
    sched_.record_attempt(job.design_fp, now_ms() - job.launched_ms);
    job.launched_ms = 0.0;
  }

  if (oc == PoolSupervisor::MergeOutcome::Retry) {
    registry_.add("serve.merge_retries");
    WM_LOG(Info) << "serve: job " << ev.job << " merge failed (code "
                 << ev.code << "), retrying"
                 << (ev.error.empty() ? "" : ": " + ev.error);
    return;
  }
  if (oc == PoolSupervisor::MergeOutcome::Exhausted) {
    // The pool cannot finish this job; hand it to the fork path. The
    // merge checkpoint survives, so the fork attempt is a resume.
    remove_shard_checkpoints(ev.job);
    psup_.forget(ev.job);
    registry_.add("serve.pool_fallback");
    WM_LOG(Warn) << "serve: job " << ev.job
                 << " merge retries exhausted: falling back to "
                    "fork-per-attempt";
    const bool backoff_full =
        backoff_.size() >=
        static_cast<std::size_t>(std::max(1, opt_.backoff_capacity));
    if (!draining_ && job.attempts <= job.spec.max_retries &&
        backoff_full) {
      registry_.add("serve.sched_backoff_full");
    }
    if (!draining_ && job.attempts <= job.spec.max_retries &&
        !backoff_full) {
      job.state = JobState::Backoff;
      job.next_attempt_ms =
          now_ms() + backoff_ms(job.attempts, opt_.retry_base_ms,
                                opt_.retry_cap_ms, opt_.seed,
                                fnv1a(job.spec.id));
      backoff_.push_back(ev.job);
      JournalRecord exit_rec;
      exit_rec.type = JournalRecord::Type::Exit;
      exit_rec.id = ev.job;
      exit_rec.attempt = job.attempts;
      journal_append(exit_rec);
      registry_.add("serve.backoff_scheduled");
    } else {
      registry_.add("serve.failed");
      finish(job, JobState::Failed,
             ev.error.empty() ? "pool merge failed" : ev.error);
      if (breaker_.record_failure(job.design_fp)) {
        registry_.add("serve.breaker_opened");
        WM_LOG(Warn) << "serve: breaker OPEN for design of job "
                     << ev.job;
      }
    }
    touch_gauges();
    return;
  }

  // Terminal: the merge's exit code is the job's answer, exactly once.
  remove_shard_checkpoints(ev.job);
  psup_.forget(ev.job);
  job.last = classify_exit(true, ev.code, false, 0);
  job.last_result = load_worker_result(job.result_path);
  if (job.last_result.valid && job.last_result.resumed_zones > 0) {
    registry_.add("serve.resumed_zones", job.last_result.resumed_zones);
  }
  std::remove(job.checkpoint.c_str());
  switch (ev.code) {
    case 0:
      registry_.add("serve.done");
      breaker_.record_success(job.design_fp);
      finish(job, JobState::Done, "");
      break;
    case 3:
      registry_.add("serve.degraded");
      breaker_.record_success(job.design_fp);
      finish(job, JobState::Degraded, "");
      break;
    default:  // 2: infeasible is data, not failure
      registry_.add("serve.infeasible");
      breaker_.record_success(job.design_fp);
      finish(job, JobState::Infeasible,
             job.last_result.valid && !job.last_result.error.empty()
                 ? job.last_result.error
                 : "infeasible");
      break;
  }
  touch_gauges();
}

void Server::on_pool_worker_exit(int w) {
  const PoolSupervisor::Held held = psup_.worker_dead(w, now_ms());
  registry_.add("serve.pool_worker_deaths");
  if (held.shard >= 0) {
    // worker_dead already requeued the stripe (or poisoned it, when its
    // retries were gone); the siblings keep their checkpoints.
    WM_LOG(Warn) << "serve: pool worker " << w << " died holding job "
                 << held.job << " shard " << held.shard
                 << "; sibling shards keep their results";
    const PoolJobPlan* p = psup_.plan(held.job);
    if (p != nullptr) {
      for (const ShardTask& t : p->shards) {
        if (t.index != held.shard) continue;
        if (t.state == ShardState::Poisoned) {
          poison_shard(held.job, held.shard);
        } else {
          registry_.add("serve.shard_retries");
        }
      }
    }
  } else if (held.shard == -1) {
    WM_LOG(Warn) << "serve: pool worker " << w
                 << " died mid-merge of job " << held.job
                 << "; merge will re-run from the shard checkpoints";
  }
  if (pool_enabled_ && psup_.collapsed()) collapse_pool();
}

void Server::collapse_pool() {
  pool_enabled_ = false;
  registry_.add("serve.pool_degraded");
  WM_LOG(Warn) << "serve: worker pool collapsed after "
               << psup_.respawns()
               << " respawn(s): degrading to fork-per-attempt";
  pool_.shutdown();
  for (const std::string& id : psup_.job_ids()) {
    remove_shard_checkpoints(id);
    psup_.forget(id);
    const auto jit = jobs_.find(id);
    if (jit == jobs_.end() || is_terminal(jit->second.state)) continue;
    Job& job = jit->second;
    if (draining_) {
      registry_.add("serve.drained_jobs");
      finish(job, JobState::Drained, "daemon drained mid-attempt");
      continue;
    }
    // The fork path inherits the job; the merge checkpoint (if any)
    // makes the fresh attempt a resume, and the attempt already spent
    // on the pool counts against the same retry budget.
    job.state = JobState::Queued;
    sched_.restore(id, job.spec.client, job.design_fp,
                   deadline_instant(job), now_ms());
  }
  touch_gauges();
}

void Server::journal_append(const JournalRecord& rec) {
  if (!journal_enabled_) return;
  if (!journal_.append(rec)) {
    degrade_journal("journal append failed");
    return;
  }
  registry_.gauge_set("serve.journal_bytes",
                      static_cast<double>(journal_.bytes()));
}

void Server::degrade_journal(const char* what) {
  journal_.close();
  journal_enabled_ = false;
  registry_.add("serve.spool_write_failed");
  // Loud by design: the daemon keeps serving, but a crash from here on
  // loses job state — an operator must see this line.
  WM_LOG(Warn) << "serve: JOB JOURNAL LOST (" << what << ", spool "
               << opt_.spool_dir
               << "): continuing journal-less; a daemon restart will "
                  "not recover in-flight jobs";
}

std::vector<JournalRecord> Server::snapshot_records() const {
  std::vector<JournalRecord> records;
  records.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) {
    JournalRecord rec;
    rec.type = JournalRecord::Type::Snapshot;
    rec.id = id;
    rec.fp = job.design_fp;
    rec.spec = job.spec;
    rec.attempt = job.attempts;
    rec.state = job.state;
    rec.error = job.error;
    records.push_back(std::move(rec));
  }
  if (sched_.tier() != 0) {
    // Compaction must not lose the brownout tier: a restart from the
    // compacted journal resumes degraded service where it left off.
    JournalRecord rec;
    rec.type = JournalRecord::Type::Brownout;
    rec.tier = sched_.tier();
    records.push_back(std::move(rec));
  }
  return records;
}

void Server::compact_journal_if_needed() {
  if (!journal_enabled_ ||
      journal_.bytes() <= opt_.journal_compact_bytes) {
    return;
  }
  if (!journal_.rewrite(snapshot_records())) {
    degrade_journal("journal compaction failed");
    return;
  }
  registry_.gauge_set("serve.journal_bytes",
                      static_cast<double>(journal_.bytes()));
  WM_LOG(Info) << "serve: journal compacted to " << journal_.bytes()
               << " bytes (" << jobs_.size() << " job snapshot(s))";
}

void Server::recover_spool() {
  ReplayStats stats;
  const std::vector<JournalRecord> records =
      replay_journal(journal_path(), &stats);
  if (stats.applied > 0) {
    registry_.add("serve.journal_replayed", stats.applied);
  }
  if (stats.dropped > 0) {
    registry_.add("serve.journal_truncated", stats.dropped);
    WM_LOG(Warn) << "serve: journal " << journal_path() << ": dropped "
                 << stats.dropped
                 << " torn/corrupt trailing line(s) at replay";
  }

  const double now = now_ms();
  std::size_t rehydrated = 0;
  std::size_t recovered = 0;
  for (auto& [id, rec] : fold_journal(records)) {
    Job job;
    job.spec = rec.spec;
    job.design_fp = rec.fp;
    job.attempts = rec.attempts;
    job.submitted_ms = now;
    job.error = rec.error;
    job.poisoned_shards = rec.poisoned_shards;
    job.checkpoint = spool_path(id, ".wmck");
    job.result_path = spool_path(id, ".result.json");
    if (job.spec.out.empty()) job.spec.out = spool_path(id, ".ctree");
    if (rec.terminal) {
      // Rehydrate: status and duplicate submits answer from memory +
      // the spooled result file, with no re-execution.
      job.state = rec.state;
      job.last_result = load_worker_result(job.result_path);
      jobs_.emplace(id, std::move(job));
      ++rehydrated;
      continue;
    }
    if (rec.attempts > 0) {
      // Mid-attempt at the crash (or already in backoff): rewind to
      // Backoff — the old child is gone or orphaned — and let the
      // relaunch resume from whatever checkpoint the spool holds.
      job.state = JobState::Backoff;
      job.next_attempt_ms =
          now + backoff_ms(rec.attempts, opt_.retry_base_ms,
                           opt_.retry_cap_ms, opt_.seed, fnv1a(id));
      jobs_.emplace(id, std::move(job));
      backoff_.push_back(id);
    } else {
      // Admitted, never launched: back into the queue, original order.
      // restore() bypasses admission — capacity and quota were paid in
      // the previous daemon life.
      job.state = JobState::Queued;
      const std::string client = job.spec.client;
      const std::uint64_t fp = job.design_fp;
      const double dl = deadline_instant(job);
      jobs_.emplace(id, std::move(job));
      sched_.restore(id, client, fp, dl, now);
    }
    ++recovered;
  }
  if (rehydrated > 0) {
    registry_.add("serve.jobs_rehydrated", rehydrated);
  }
  if (recovered > 0) registry_.add("serve.jobs_recovered", recovered);

  // Resume the brownout tier the crashed daemon was in: the last
  // brownout record wins (fold_journal ignores them — they are
  // daemon-wide, not per-job). force_tier counts as a transition, so
  // the controller dwells before moving again instead of flapping.
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    if (it->type != JournalRecord::Type::Brownout) continue;
    if (it->tier > 0) {
      sched_.force_tier(it->tier, now);
      registry_.add("serve.brownout_resumed");
      registry_.gauge_set("serve.brownout_tier",
                          static_cast<double>(sched_.tier()));
      WM_LOG(Warn) << "serve: resuming brownout tier " << sched_.tier()
                   << " from the journal";
    }
    break;
  }

  // Daemon-assigned ids must not collide with recovered ones.
  for (const auto& [id, job] : jobs_) {
    if (id.size() < 2 || id[0] != 'j') continue;
    char* end = nullptr;
    const std::uint64_t n = std::strtoull(id.c_str() + 1, &end, 10);
    if (end == id.c_str() + id.size() && n > job_seq_) job_seq_ = n;
  }

  if (!journal_.open(journal_path(), journal_sync_, &registry_)) {
    degrade_journal("cannot open journal");
  } else {
    journal_enabled_ = true;
    if (stats.torn) {
      // The file ends in half a record; appending onto it would corrupt
      // the next record too. Compact to a clean snapshot before the
      // first append.
      if (!journal_.rewrite(snapshot_records())) {
        degrade_journal("journal compaction failed");
      }
    }
    if (journal_enabled_) {
      registry_.gauge_set("serve.journal_bytes",
                          static_cast<double>(journal_.bytes()));
    }
  }

  // Orphan sweep: result/output files whose job the journal does not
  // know are droppings of a pre-journal daemon or of attempts whose
  // admit record was lost — status can never find them, so they only
  // leak spool space.
  std::vector<std::string> keep;
  keep.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) keep.push_back(id);
  const std::size_t orphans = ck::sweep_orphans(
      opt_.spool_dir, {".result.json", ".ctree"}, keep);
  if (orphans > 0) {
    registry_.add("serve.spool_orphans_removed", orphans);
  }

  if (!jobs_.empty()) {
    WM_LOG(Info) << "serve: journal replay: " << rehydrated
                 << " terminal job(s) rehydrated, " << recovered
                 << " live job(s) recovered (queue " << sched_.queued()
                 << ", backoff " << backoff_.size() << ")";
  }
}

void Server::notify_waiters(Job& job) {
  if (job.waiters.empty()) return;
  const std::string frame = status_frame(job);
  std::vector<int> waiters;
  waiters.swap(job.waiters);
  for (const int fd : waiters) send_reply(fd, frame);
}

void Server::begin_drain(const char* reason) {
  if (draining_) return;
  draining_ = true;
  drain_deadline_ms_ = now_ms() + std::max(0.0, opt_.drain_grace_ms);
  registry_.add("serve.drains");
  WM_LOG(Info) << "serve: draining (" << reason << "): "
               << running_.size() << " in flight, " << pending_count()
               << " pending";
  // Stop admission at the socket: new connects fail fast instead of
  // queueing behind a dying daemon.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (socket_bound_) {
    ::unlink(opt_.socket_path.c_str());
    socket_bound_ = false;
  }
  // Jobs that never launched end Drained; in-flight ones get the grace
  // window (then kill_stragglers).
  std::vector<std::string> pending = sched_.clear();
  for (const std::string& id : backoff_) pending.push_back(id);
  backoff_.clear();
  for (const std::string& id : pending) {
    const auto it = jobs_.find(id);
    if (it == jobs_.end() || is_terminal(it->second.state)) continue;
    if (it->second.state == JobState::Running) continue;
    registry_.add("serve.drained_jobs");
    finish(it->second, JobState::Drained,
           "daemon drained before launch");
  }
  // Pool jobs drain immediately: the workers hold no state their shard
  // checkpoints don't already (those stay in the spool for resume), so
  // there is nothing a grace window would save.
  if (pool_enabled_) {
    pool_enabled_ = false;
    pool_.shutdown();
    for (const std::string& id : psup_.job_ids()) {
      psup_.forget(id);
      const auto it = jobs_.find(id);
      if (it == jobs_.end() || is_terminal(it->second.state)) continue;
      registry_.add("serve.drained_jobs");
      finish(it->second, JobState::Drained, "daemon drained mid-attempt");
    }
  }
}

void Server::kill_stragglers() {
  killed_stragglers_ = true;
  for (const auto& [pid, id] : running_) {
    WM_LOG(Warn) << "serve: drain grace expired, SIGKILL job " << id
                 << " (pid " << pid << ")";
    registry_.add("serve.stragglers_killed");
    ::kill(pid, SIGKILL);
  }
}

void Server::flush_conns() {
  // Best-effort delivery of the final frames (waiter notifications from
  // the drain) before the fds close; bounded so a dead client cannot
  // wedge shutdown.
  const double deadline = now_ms() + 500.0;
  while (now_ms() < deadline) {
    std::vector<pollfd> fds;
    std::vector<int> conn_fds;
    for (const auto& [fd, conn] : conns_) {
      if (conn.out.empty()) continue;
      fds.push_back({fd, POLLOUT, 0});
      conn_fds.push_back(fd);
    }
    if (fds.empty()) return;
    const int rc = retry_poll(fds.data(), fds.size(), 50);
    if (rc <= 0) continue;
    for (std::size_t i = 0; i < conn_fds.size(); ++i) {
      if ((fds[i].revents & POLLOUT) == 0) {
        if (fds[i].revents != 0) close_conn(conn_fds[i]);
        continue;
      }
      Conn& conn = conns_.at(conn_fds[i]);
      const ssize_t n =
          retry_write(conn_fds[i], conn.out.data(), conn.out.size());
      if (n > 0) {
        conn.out.erase(0, static_cast<std::size_t>(n));
      } else if (n < 0 && errno != EAGAIN) {
        close_conn(conn_fds[i]);
      }
    }
  }
}

} // namespace

int serve_loop(const ServerOptions& options) {
  Server server(options);
  return server.run();
}

} // namespace wm::serve
