#pragma once
// Overload-control policy for the serving daemon (docs/serving.md
// "Admission & overload control"): everything the FIFO admission queue
// could not do under pressure, as one pure policy object.
//
//   * deadline-aware dispatch — within a client, jobs pop in earliest-
//     effective-deadline order (EDF; no-deadline jobs queue FIFO behind
//     every deadline), and a job whose remaining deadline has fallen
//     below the measured minimum-attempt estimate is shed *at dequeue*
//     so doomed work never occupies a worker slot;
//   * per-client fairness — weighted deficit round robin across
//     per-client sub-queues, with a token-bucket quota per client;
//     when the queue is full, shedding victim-selects the most
//     over-quota client's newest job instead of the newest arrival,
//     and rejects carry a retry_after_ms hint;
//   * attempt estimation — an EWMA of recent attempt wall times per
//     design fingerprint (falling back to a global EWMA for designs
//     never seen) feeds both the dequeue-shed test and the
//     retry_after_ms hints;
//   * brownout — a hysteresis controller over queue-wait p95 and
//     worker occupancy that escalates through tiers under sustained
//     overload (tier 1 caps each attempt's label budget, tier 2 also
//     forces the Greedy solver rung) and de-escalates when pressure
//     clears, never flapping faster than the dwell window.
//
// Pure policy, same contract as PoolSupervisor (serve/supervisor.hpp):
// no syscalls, no clock of its own — every method takes `double now`
// (the server's steady clock, ms) so tests drive it with a fake clock
// (tests/scheduler_test.cpp). The event loop in server.cpp owns the
// side effects: forking, journaling brownout transitions, answering
// clients.

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace wm::serve {

/// Tuning knobs, all daemon-wide (ServerOptions carries the CLI
/// surface; defaults here keep old daemons' behavior: quota and
/// brownout are opt-in).
struct SchedulerConfig {
  int queue_capacity = 64;  ///< Queued jobs before victim selection
  int workers = 2;          ///< service rate input for retry_after_ms
  /// Token-bucket quota per client: sustained admissions/second and
  /// burst size. rate 0 disables the quota — shedding then falls back
  /// to rejecting the newcomer, exactly the pre-quota behavior.
  double quota_rate = 0.0;
  double quota_burst = 8.0;
  /// DRR weights by client name; absent clients weigh default_weight.
  std::map<std::string, double> weights;
  double default_weight = 1.0;
  /// Attempt-time EWMA smoothing and the floor used before any attempt
  /// has been measured (a fresh daemon must not shed on a wild guess).
  double ewma_alpha = 0.3;
  double min_attempt_floor_ms = 0.0;
  /// Brownout: enter when the queue-wait p95 exceeds wait_p95_ms while
  /// every worker is busy; exit when it falls below exit_ratio * that.
  /// 0 disables the controller. Transitions are at least dwell_ms
  /// apart — the hysteresis that keeps a square-wave load from
  /// flapping the tier.
  double brownout_wait_p95_ms = 0.0;
  double brownout_exit_ratio = 0.5;
  double brownout_dwell_ms = 2000.0;
  int brownout_max_tier = 2;
};

/// What admission decided for one submit.
struct AdmitDecision {
  enum class Kind {
    Admitted,    ///< queued; victim empty
    Evicted,     ///< queued, but `victim` (most over-quota client's
                 ///< newest job) must be shed to make room
    Rejected,    ///< shed the newcomer (queue full, nobody more
                 ///< over-quota than its own client)
    Infeasible,  ///< rejected: deadline already below the attempt
                 ///< estimate — queueing it would only shed it later
  };
  Kind kind = Kind::Admitted;
  std::string victim;         ///< Evicted: job id to shed
  std::string victim_client;  ///< Evicted: its client
  double retry_after_ms = 0.0;  ///< Rejected/Infeasible hint (>= 0)
  /// Rejected: the newcomer's own client was over quota (negative
  /// token balance) — splits serve.sched_quota_shed from
  /// serve.sched_capacity_shed.
  bool over_quota = false;
};

/// What dequeue produced.
struct NextJob {
  enum class Kind {
    None,          ///< nothing runnable
    Run,           ///< launch `id`
    DeadlineShed,  ///< `id` popped with remaining deadline below the
                   ///< attempt estimate: fail it without launching
  };
  Kind kind = Kind::None;
  std::string id;
  double wait_ms = 0.0;  ///< time the job spent queued (Run only)
};

class AdmissionScheduler {
 public:
  AdmissionScheduler() : AdmissionScheduler(SchedulerConfig{}) {}
  explicit AdmissionScheduler(SchedulerConfig cfg);

  // ---- admission ----------------------------------------------------

  /// Decide one submit. `deadline_instant_ms` is the absolute steady-
  /// clock instant the job's deadline expires (0 = no deadline). On
  /// Admitted/Evicted the job is queued; an Evicted victim has already
  /// been dropped from the scheduler — the caller only finishes that
  /// job's bookkeeping. On Rejected/Infeasible nothing is queued and
  /// retry_after_ms carries the client hint.
  AdmitDecision admit(const std::string& id, const std::string& client,
                      std::uint64_t fp, double deadline_instant_ms,
                      double now);

  /// Re-enter a job bypassing admission control: journal recovery,
  /// backoff requeue, a failed fork, a pool collapse. The job was
  /// already admitted once; capacity and quota were paid then.
  void restore(const std::string& id, const std::string& client,
               std::uint64_t fp, double deadline_instant_ms, double now);

  /// Drop a queued job (eviction executed, job finished elsewhere).
  void remove(const std::string& id);

  /// Drain: pop everything, in no particular order.
  std::vector<std::string> clear();

  // ---- dispatch -----------------------------------------------------

  /// Pop the next decision: DRR picks the client, EDF picks its job,
  /// and the feasibility test converts a doomed pop into DeadlineShed.
  /// Each call removes at most one job from the queue.
  NextJob next(double now);

  std::size_t queued() const { return total_; }
  std::size_t queued_for(const std::string& client) const;

  // ---- attempt estimation -------------------------------------------

  /// Feed one finished attempt's wall time (launch to reap).
  void record_attempt(std::uint64_t fp, double wall_ms);
  /// Expected attempt wall time for a design: its own EWMA, else the
  /// global EWMA, else the configured floor.
  double estimate_attempt_ms(std::uint64_t fp) const;

  // ---- brownout -----------------------------------------------------

  /// Current tier: 0 = normal, 1 = label budget capped, 2 = Greedy
  /// rung forced (on top of the cap).
  int tier() const { return tier_; }

  /// Journal replay: resume the tier a crashed daemon was in. Counts
  /// as a transition for dwell purposes so the controller does not
  /// immediately flap out of the restored tier.
  void force_tier(int tier, double now);

  /// Re-evaluate pressure. `busy`/`workers` describe worker occupancy
  /// (fork: running children; pool: jobs in flight). Returns the new
  /// tier when a transition fired, -1 otherwise. At most one step per
  /// call, never two transitions within dwell_ms.
  int tick(double now, int busy, int workers);

  /// Instant the controller next wants a tick() (a transition pending
  /// its dwell, or any nonzero tier), or <= 0 when no timer is needed.
  /// Always strictly after `now`. The event loop folds this into its
  /// poll timeout so brownout exits without socket traffic.
  double next_deadline_ms(double now) const;

  /// Queue-wait p95 over the recent dequeue window (0 until enough
  /// samples exist); exported as the serve.sched_wait_p95_ms gauge.
  double wait_p95_ms() const;

 private:
  struct Entry {
    std::string id;
    std::uint64_t fp = 0;
    double deadline_instant_ms = 0.0;  ///< 0 = none
    double enqueue_ms = 0.0;
  };
  struct ClientQueue {
    std::string name;
    std::deque<Entry> jobs;  ///< EDF order; no-deadline jobs at the back
    double deficit = 0.0;
    double tokens = 0.0;     ///< token bucket; negative = over quota
    double refill_ms = 0.0;  ///< last refill instant
    bool bucket_init = false;
  };

  ClientQueue& client_for(const std::string& name);
  double weight_of(const std::string& name) const;
  void refill(ClientQueue& c, double now);
  void insert_edf(ClientQueue& c, Entry entry);
  void note_wait(double wait_ms);
  double drain_hint_ms() const;

  SchedulerConfig cfg_;
  std::vector<ClientQueue> clients_;  ///< stable order for the DRR scan
  std::size_t rr_ = 0;                ///< DRR cursor into clients_
  std::size_t total_ = 0;

  std::map<std::uint64_t, double> ewma_;  ///< per-fingerprint attempt ms
  double global_ewma_ = 0.0;
  bool has_global_ = false;

  std::vector<double> waits_;  ///< ring of recent queue waits
  std::size_t wait_at_ = 0;
  std::size_t wait_n_ = 0;

  int tier_ = 0;
  double last_transition_ms_ = 0.0;
  bool has_transitioned_ = false;
  /// Pressure must persist (or stay clear) for the whole dwell before
  /// the next step; these track when the current condition started.
  double pressure_since_ms_ = -1.0;
  double clear_since_ms_ = -1.0;
};

} // namespace wm::serve
