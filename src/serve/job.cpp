#include "serve/job.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace wm::serve {

const char* to_string(JobState state) {
  switch (state) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Backoff: return "backoff";
    case JobState::Done: return "done";
    case JobState::Degraded: return "degraded";
    case JobState::Infeasible: return "infeasible";
    case JobState::Failed: return "failed";
    case JobState::Quarantined: return "quarantined";
    case JobState::Drained: return "drained";
  }
  return "?";
}

bool parse_job_state(const std::string& name, JobState* out) {
  static constexpr JobState kAll[] = {
      JobState::Queued,     JobState::Running,     JobState::Backoff,
      JobState::Done,       JobState::Degraded,    JobState::Infeasible,
      JobState::Failed,     JobState::Quarantined, JobState::Drained,
  };
  for (const JobState s : kAll) {
    if (name == to_string(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

bool is_terminal(JobState state) {
  switch (state) {
    case JobState::Queued:
    case JobState::Running:
    case JobState::Backoff: return false;
    default: return true;
  }
}

bool is_acceptable_terminal(JobState state) {
  return state == JobState::Done || state == JobState::Degraded ||
         state == JobState::Infeasible ||
         state == JobState::Quarantined;
}

const char* to_string(Attempt::Outcome outcome) {
  switch (outcome) {
    case Attempt::Outcome::Done: return "done";
    case Attempt::Outcome::Degraded: return "degraded";
    case Attempt::Outcome::Infeasible: return "infeasible";
    case Attempt::Outcome::Failed: return "failed";
    case Attempt::Outcome::Crashed: return "crashed";
  }
  return "?";
}

Attempt classify_exit(bool exited, int exit_code, bool signaled,
                      int sig) {
  Attempt a;
  if (signaled) {
    a.outcome = Attempt::Outcome::Crashed;
    a.signal = sig;
    return a;
  }
  if (!exited) {
    // Stopped/continued never reach the supervisor (no WUNTRACED), but
    // classify defensively rather than asserting on kernel behavior.
    a.outcome = Attempt::Outcome::Failed;
    return a;
  }
  a.exit_code = exit_code;
  switch (exit_code) {
    case 0: a.outcome = Attempt::Outcome::Done; break;
    case 2: a.outcome = Attempt::Outcome::Infeasible; break;
    case 3: a.outcome = Attempt::Outcome::Degraded; break;
    default: a.outcome = Attempt::Outcome::Failed; break;
  }
  return a;
}

bool retryable(Attempt::Outcome outcome, ErrorCategory category) {
  switch (outcome) {
    case Attempt::Outcome::Done:
    case Attempt::Outcome::Degraded:
    case Attempt::Outcome::Infeasible: return false;
    case Attempt::Outcome::Crashed: return true;
    case Attempt::Outcome::Failed:
      // Deterministic rejections re-fail identically on every attempt;
      // retrying burns budget the breaker is meant to protect.
      return category != ErrorCategory::InvalidInput;
  }
  return false;
}

double backoff_ms(int completed_attempts, double base_ms, double cap_ms,
                  std::uint64_t seed, std::uint64_t job_key) {
  WM_ASSERT(completed_attempts >= 1, "backoff before any attempt");
  double delay = base_ms;
  for (int i = 1; i < completed_attempts && delay < cap_ms; ++i) {
    delay *= 2.0;
  }
  delay = std::min(delay, cap_ms);
  Rng rng(seed ^ job_key ^
          static_cast<std::uint64_t>(completed_attempts) * 0x9e3779b97f4a7c15ULL);
  return delay + rng.uniform(0.0, delay * 0.5);
}

std::string dump_worker_result(const WorkerResult& r) {
  json::Value v = json::Value::object_v();
  v.set("category",
        json::Value::string_v(wm::to_string(r.category)));
  v.set("degraded", json::Value::boolean_v(r.degraded));
  v.set("resumed_zones", json::Value::number_v(r.resumed_zones));
  v.set("zones_full", json::Value::number_v(r.zones_full));
  v.set("zones_greedy", json::Value::number_v(r.zones_greedy));
  v.set("zones_identity", json::Value::number_v(r.zones_identity));
  if (!r.error.empty()) v.set("error", json::Value::string_v(r.error));
  return json::dump(v);
}

WorkerResult load_worker_result(const std::string& path) {
  WorkerResult r;
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return r;
  std::ostringstream buf;
  buf << is.rdbuf();
  try {
    const json::Value v = json::parse(buf.str());
    WM_REQUIRE(v.is_object(), "worker result must be an object");
    const std::string cat = v.get_string("category", "worker result");
    if (cat == "none") {
      r.category = ErrorCategory::None;
    } else if (cat == "invalid-input") {
      r.category = ErrorCategory::InvalidInput;
    } else if (cat == "infeasible") {
      r.category = ErrorCategory::Infeasible;
    } else {
      r.category = ErrorCategory::Internal;
    }
    r.degraded = v.get_bool_or("degraded", false);
    r.resumed_zones = v.get_u64_or("resumed_zones", 0);
    r.zones_full = v.get_u64_or("zones_full", 0);
    r.zones_greedy = v.get_u64_or("zones_greedy", 0);
    r.zones_identity = v.get_u64_or("zones_identity", 0);
    r.error = v.get_string_or("error", "");
    r.valid = true;
  } catch (const Error&) {
    // A torn or garbled result file reads as "child crashed before
    // reporting" — the conservative, retryable interpretation.
    r = WorkerResult{};
  }
  return r;
}

void write_worker_result(const std::string& path, const WorkerResult& r) {
  if (path.empty()) return;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os.good()) return;
    os << dump_worker_result(r) << '\n';
    os.flush();
    if (!os.good()) {
      std::remove(tmp.c_str());
      return;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
  }
}

std::string status_frame(const Job& job) {
  json::Value frame = ok_frame();
  json::Value j = json::Value::object_v();
  j.set("id", json::Value::string_v(job.spec.id));
  j.set("state", json::Value::string_v(to_string(job.state)));
  j.set("attempts", json::Value::number_v(job.attempts));
  if (is_terminal(job.state)) {
    j.set("acceptable",
          json::Value::boolean_v(is_acceptable_terminal(job.state)));
  }
  if (job.last.exit_code >= 0) {
    j.set("exit", json::Value::number_v(job.last.exit_code));
  }
  if (job.last.signal != 0) {
    j.set("signal", json::Value::number_v(job.last.signal));
  }
  if (job.last_result.valid) {
    j.set("resumed_zones",
          json::Value::number_v(job.last_result.resumed_zones));
  }
  if (!job.spec.out.empty()) {
    j.set("out", json::Value::string_v(job.spec.out));
  }
  if (!job.error.empty()) {
    j.set("error", json::Value::string_v(job.error));
  }
  frame.set("job", std::move(j));
  return json::dump(frame);
}

} // namespace wm::serve
