#pragma once
// The worker side of the fork boundary (docs/serving.md).
//
// The daemon forks; the child calls run_worker() and _exit()s with its
// return value. run_worker never throws and never returns to the event
// loop's state: it runs the optimization in-process (no exec — the
// library is already mapped), writes the tree and a one-line
// WorkerResult file, and reports through the CLI exit contract
// (0 done / 2 infeasible / 3 degraded / 4 failed). Fault injection —
// the job's own spec plus the daemon's scheduled serve.worker_kill
// victim slot — is armed inside the child only, so chaos never
// destabilizes the supervisor.

#include <cstdint>
#include <string>

#include "serve/protocol.hpp"

namespace wm::serve {

/// Everything a worker child needs, resolved by the supervisor at
/// launch time (the child does no policy, only work).
struct WorkerConfig {
  JobSpec spec;
  std::string out;         ///< resolved output tree path
  std::string checkpoint;  ///< spool .wmck (written always, resumed when present)
  std::string result_path; ///< spool WorkerResult destination
  /// Remaining share of the job's deadline at this launch; 0 = none.
  double attempt_deadline_ms = 0.0;
  /// Characterization dt (ps) for this attempt's in-process LUT;
  /// 0 = the library default (ServerOptions::char_dt).
  double char_dt = 0.0;
  /// Brownout degradation (scheduler tier at launch): a nonzero
  /// label_budget caps RunBudget::max_total_labels for this attempt;
  /// force_greedy additionally pins the solver to the Greedy rung.
  std::uint64_t label_budget = 0;
  bool force_greedy = false;
  /// This launch drew the armed serve.worker_kill slot: the child arms
  /// the site at hit 1 and injects it, SIGKILLing itself mid-setup.
  bool victim = false;
  /// This launch drew the serve.worker_hang slot: the child wedges
  /// forever after its first checkpoint write (ck.hang_after_write)
  /// until the daemon's watchdog SIGKILLs it — proving supervision +
  /// retry-from-checkpoint end to end.
  bool victim_hang = false;
  std::uint64_t fault_seed = 0;
};

/// Run one attempt to completion. Returns the child's exit code; the
/// caller (the forked child) passes it straight to _exit(). Noexcept
/// by contract: every failure is mapped, never propagated.
int run_worker(const WorkerConfig& cfg) noexcept;

} // namespace wm::serve
