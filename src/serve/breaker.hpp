#pragma once
// Per-design circuit breaker (docs/serving.md).
//
// A design that fails deterministically — same fingerprint, N
// consecutive terminal failures — gets quarantined: further jobs over
// it are rejected at admission (and at launch, for jobs already
// queued) with a structured "breaker-open" error instead of burning
// worker slots and retry budget. Any acceptable terminal outcome for
// a fingerprint closes its account again.
//
// The fingerprint is FNV-1a over the input tree bytes plus the
// solver-relevant job knobs (algo, kappa, samples), so two jobs that
// would run the same deterministic optimization share a breaker entry
// while a re-submission with a fixed input file opens a fresh one.

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "serve/protocol.hpp"

namespace wm::serve {

std::uint64_t design_fingerprint(const JobSpec& spec);

class CircuitBreaker {
 public:
  /// `threshold` consecutive failures open the breaker; <= 0 disables
  /// it entirely (is_open is always false).
  explicit CircuitBreaker(int threshold = 3) : threshold_(threshold) {}

  bool is_open(std::uint64_t fingerprint) const;

  /// Record a terminal failure. Returns true when this one opened the
  /// breaker (the transition, for the serve.breaker_open counter).
  bool record_failure(std::uint64_t fingerprint);

  /// Any acceptable terminal outcome resets the consecutive count and
  /// closes an open breaker.
  void record_success(std::uint64_t fingerprint);

  std::size_t open_count() const;

 private:
  struct Entry {
    int consecutive_failures = 0;
    bool open = false;
  };
  int threshold_;
  std::unordered_map<std::uint64_t, Entry> entries_;
};

} // namespace wm::serve
