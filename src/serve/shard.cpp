#include "serve/shard.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <optional>
#include <string>
#include <system_error>

#include "cells/characterizer.hpp"
#include "cells/library.hpp"
#include "core/options.hpp"
#include "core/wavemin.hpp"
#include "fault/fault.hpp"
#include "io/blob.hpp"
#include "io/tree_io.hpp"
#include "serve/job.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/posix_io.hpp"
#include "util/status.hpp"

namespace wm::serve {

// ---------------------------------------------------------------- wire

std::string encode_command(const PoolCommand& cmd) {
  json::Value v = json::Value::object_v();
  switch (cmd.kind) {
    case PoolCommand::Kind::Ping:
      v.set("cmd", json::Value::string_v("ping"));
      v.set("seq", json::Value::number_v(cmd.seq));
      return json::dump(v);
    case PoolCommand::Kind::Exit:
      v.set("cmd", json::Value::string_v("exit"));
      return json::dump(v);
    case PoolCommand::Kind::Shard:
      v.set("cmd", json::Value::string_v("shard"));
      break;
    case PoolCommand::Kind::Merge:
      v.set("cmd", json::Value::string_v("merge"));
      break;
  }
  v.set("job", job_spec_to_json(cmd.spec));
  v.set("count", json::Value::number_v(cmd.shard_count));
  if (cmd.kind == PoolCommand::Kind::Shard) {
    v.set("index", json::Value::number_v(cmd.shard_index));
    if (cmd.poison) v.set("poison", json::Value::boolean_v(true));
    if (cmd.stall) v.set("stall", json::Value::boolean_v(true));
    if (cmd.kill) v.set("kill", json::Value::boolean_v(true));
  } else {
    json::Value cks = json::Value::array_v();
    for (const std::string& p : cmd.resume) {
      cks.push(json::Value::string_v(p));
    }
    v.set("cks", std::move(cks));
    json::Value ident = json::Value::array_v();
    for (const int k : cmd.identity_shards) {
      ident.push(json::Value::number_v(k));
    }
    v.set("identity", std::move(ident));
    v.set("out", json::Value::string_v(cmd.out));
    v.set("result", json::Value::string_v(cmd.result_path));
  }
  if (!cmd.checkpoint.empty()) {
    v.set("ck", json::Value::string_v(cmd.checkpoint));
  }
  if (cmd.deadline_ms > 0.0) {
    v.set("deadline_ms", json::Value::number_v(cmd.deadline_ms));
  }
  if (cmd.label_budget > 0) {
    v.set("label_budget", json::Value::number_v(cmd.label_budget));
  }
  if (cmd.force_greedy) {
    v.set("force_greedy", json::Value::boolean_v(true));
  }
  return json::dump(v);
}

bool decode_command(const std::string& line, PoolCommand* out) {
  try {
    const json::Value v = json::parse(line);
    WM_REQUIRE(v.is_object(), "pool command must be an object");
    const std::string cmd = v.get_string("cmd", "pool command");
    PoolCommand c;
    if (cmd == "ping") {
      c.kind = PoolCommand::Kind::Ping;
      c.seq = v.get_u64_or("seq", 0);
      *out = std::move(c);
      return true;
    }
    if (cmd == "exit") {
      c.kind = PoolCommand::Kind::Exit;
      *out = std::move(c);
      return true;
    }
    if (cmd != "shard" && cmd != "merge") return false;
    c.kind = cmd == "shard" ? PoolCommand::Kind::Shard
                            : PoolCommand::Kind::Merge;
    const json::Value* job = v.find("job");
    WM_REQUIRE(job != nullptr, "pool command: missing job");
    c.spec = parse_job_spec(*job);
    c.shard_count = static_cast<int>(v.get_number("count", "pool command"));
    c.checkpoint = v.get_string_or("ck", "");
    c.deadline_ms = v.get_number_or("deadline_ms", 0.0);
    c.label_budget = v.get_u64_or("label_budget", 0);
    c.force_greedy = v.get_bool_or("force_greedy", false);
    if (c.kind == PoolCommand::Kind::Shard) {
      c.shard_index =
          static_cast<int>(v.get_number("index", "pool command"));
      c.poison = v.get_bool_or("poison", false);
      c.stall = v.get_bool_or("stall", false);
      c.kill = v.get_bool_or("kill", false);
    } else {
      if (const json::Value* cks = v.find("cks");
          cks != nullptr && cks->is_array()) {
        for (const json::Value& p : cks->array) {
          if (p.is_string()) c.resume.push_back(p.str);
        }
      }
      if (const json::Value* ident = v.find("identity");
          ident != nullptr && ident->is_array()) {
        for (const json::Value& k : ident->array) {
          if (k.is_number()) {
            c.identity_shards.push_back(static_cast<int>(k.number));
          }
        }
      }
      c.out = v.get_string_or("out", "");
      c.result_path = v.get_string_or("result", "");
    }
    *out = std::move(c);
    return true;
  } catch (const Error&) {
    return false;
  }
}

std::string encode_event(const PoolEvent& ev) {
  json::Value v = json::Value::object_v();
  switch (ev.kind) {
    case PoolEvent::Kind::Ready:
      v.set("ev", json::Value::string_v("ready"));
      v.set("characterized", json::Value::number_v(ev.characterized));
      break;
    case PoolEvent::Kind::ShardDone:
      v.set("ev", json::Value::string_v("shard_done"));
      v.set("job", json::Value::string_v(ev.job));
      v.set("shard", json::Value::number_v(ev.shard));
      v.set("code", json::Value::number_v(ev.code));
      break;
    case PoolEvent::Kind::MergeDone:
      v.set("ev", json::Value::string_v("merge_done"));
      v.set("job", json::Value::string_v(ev.job));
      v.set("code", json::Value::number_v(ev.code));
      v.set("resumed_zones", json::Value::number_v(ev.resumed_zones));
      break;
    case PoolEvent::Kind::Pong:
      v.set("ev", json::Value::string_v("pong"));
      v.set("seq", json::Value::number_v(ev.seq));
      break;
    case PoolEvent::Kind::Fatal:
      v.set("ev", json::Value::string_v("fatal"));
      break;
  }
  if (!ev.error.empty()) v.set("error", json::Value::string_v(ev.error));
  return json::dump(v);
}

bool decode_event(const std::string& line, PoolEvent* out) {
  try {
    const json::Value v = json::parse(line);
    WM_REQUIRE(v.is_object(), "pool event must be an object");
    const std::string ev = v.get_string("ev", "pool event");
    PoolEvent e;
    if (ev == "ready") {
      e.kind = PoolEvent::Kind::Ready;
      e.characterized = v.get_u64_or("characterized", 0);
    } else if (ev == "shard_done") {
      e.kind = PoolEvent::Kind::ShardDone;
      e.job = v.get_string("job", "pool event");
      e.shard = static_cast<int>(v.get_number("shard", "pool event"));
      e.code = static_cast<int>(v.get_number("code", "pool event"));
    } else if (ev == "merge_done") {
      e.kind = PoolEvent::Kind::MergeDone;
      e.job = v.get_string("job", "pool event");
      e.code = static_cast<int>(v.get_number("code", "pool event"));
      e.resumed_zones = v.get_u64_or("resumed_zones", 0);
    } else if (ev == "pong") {
      e.kind = PoolEvent::Kind::Pong;
      e.seq = v.get_u64_or("seq", 0);
    } else if (ev == "fatal") {
      e.kind = PoolEvent::Kind::Fatal;
    } else {
      return false;
    }
    e.error = v.get_string_or("error", "");
    *out = std::move(e);
    return true;
  } catch (const Error&) {
    return false;
  }
}

// ----------------------------------------------------------- the child

namespace {

bool send_event(int fd, const PoolEvent& ev) {
  const std::string line = encode_event(ev) + "\n";
  return write_all(fd, line.data(), line.size());
}

/// The library + LUT a pool worker serves every job from, loaded once
/// at boot. ModeSet::single keeps every island at the nominal supply,
/// so the default characterization grid matches what each job's
/// make-modes step would request — the blob-restored LUT is bit-equal
/// to the one a fork-per-attempt worker would have built.
struct SharedArtifacts {
  CellLibrary lib;
  std::optional<Characterizer> chr;
  std::uint64_t characterized = 0;
};

SharedArtifacts load_artifacts(const PoolWorkerConfig& cfg) {
  SharedArtifacts a;
  if (!cfg.blob.empty()) {
    const blob::View view = blob::View::map(cfg.blob);
    a.lib = blob::load_library(view);
    a.chr.emplace(blob::load_characterizer(view, a.lib));
    return a;  // characterized stays 0: nothing was recomputed
  }
  a.lib = CellLibrary::nangate45_like();
  CharacterizerOptions co;
  if (cfg.char_dt > 0.0) co.dt = cfg.char_dt;
  a.chr.emplace(a.lib, co);
  a.characterized = a.chr->table().size();
  return a;
}

std::string chaos_spec(const PoolCommand& cmd) {
  std::string spec = cmd.spec.fault_spec;
  auto append = [&spec](const char* site) {
    if (!spec.empty()) spec += ',';
    spec += site;
    spec += "=1";
  };
  if (cmd.poison) append("serve.shard_poison");
  if (cmd.stall) append("serve.pool_worker_stall");
  if (cmd.kill) append("serve.worker_kill");
  return spec;
}

/// Build the run options a shard or merge shares with the fork-path
/// worker (serve/worker.cpp) — identical knobs, so results stay
/// byte-identical across serving modes.
WaveMinOptions base_options(const PoolCommand& cmd) {
  WaveMinOptions opts;
  opts.kappa = cmd.spec.kappa;
  opts.samples = cmd.spec.samples;
  if (cmd.spec.algo == "wavemin-f") opts.solver = SolverKind::Greedy;
  opts.seed = cmd.spec.seed;
  opts.job_id = cmd.spec.id;
  opts.quarantine_zone_errors = true;
  if (cmd.deadline_ms > 0.0) opts.budget.deadline_ms = cmd.deadline_ms;
  // Brownout tier at dispatch — same degradation knobs the fork-path
  // worker applies (serve/worker.cpp), so the two modes stay twins.
  if (cmd.force_greedy) opts.solver = SolverKind::Greedy;
  if (cmd.label_budget > 0) opts.budget.max_total_labels = cmd.label_budget;
  opts.shard_count = cmd.shard_count;
  return opts;
}

int run_shard_cmd(const SharedArtifacts& a, const PoolCommand& cmd,
                  std::string* error) {
  // Chaos sites fire before any work, so a victim dies (or wedges, or
  // errors) without leaving a half-written checkpoint behind.
  fault::inject("serve.worker_kill");
  fault::inject("serve.pool_worker_stall");
  fault::inject("serve.shard_poison");

  ClockTree tree = load_tree(cmd.spec.tree, a.lib);
  WaveMinOptions opts = base_options(cmd);
  opts.shard_index = cmd.shard_index;
  opts.checkpoint_path = cmd.checkpoint;
  std::error_code ec;
  if (!cmd.checkpoint.empty() &&
      std::filesystem::exists(cmd.checkpoint, ec)) {
    // A re-run of a lost shard resumes the zones its previous worker
    // already checkpointed.
    opts.resume_path = cmd.checkpoint;
  }
  const TryRunResult t = try_clk_wavemin(tree, a.lib, *a.chr, opts);
  if (!t.status.is_ok()) {
    *error = t.status.to_string();
    return cli_exit_code(t.status.code());
  }
  if (!t.result.success) return 2;  // no feasible intersection
  return 0;
}

int run_merge_cmd(const SharedArtifacts& a, const PoolCommand& cmd,
                  std::uint64_t* resumed, std::string* error) {
  ClockTree tree = load_tree(cmd.spec.tree, a.lib);
  WaveMinOptions opts = base_options(cmd);
  opts.identity_shards = cmd.identity_shards;
  opts.checkpoint_path = cmd.checkpoint;
  std::error_code ec;
  for (const std::string& p : cmd.resume) {
    // A shard checkpoint lost to the filesystem is not fatal: the
    // merge re-solves that stripe itself (slower, still correct).
    if (std::filesystem::exists(p, ec)) opts.resume_paths.push_back(p);
  }
  if (!cmd.checkpoint.empty() &&
      std::filesystem::exists(cmd.checkpoint, ec)) {
    opts.resume_path = cmd.checkpoint;
  }

  WorkerResult wr;
  const TryRunResult t = try_clk_wavemin(tree, a.lib, *a.chr, opts);
  wr.category = error_category(t.status.code());
  if (!t.status.is_ok() && t.status.code() != StatusCode::Infeasible) {
    wr.error = t.status.to_string();
    *error = wr.error;
    write_worker_result(cmd.result_path, wr);
    return cli_exit_code(t.status.code());
  }
  if (!t.result.success) {
    wr.category = ErrorCategory::Infeasible;
    wr.error = "no assignment meets the skew bound";
    *error = wr.error;
    write_worker_result(cmd.result_path, wr);
    return 2;
  }
  const RunReport& rep = t.result.report;
  wr.category = ErrorCategory::None;
  wr.degraded = rep.degraded();
  wr.resumed_zones = rep.resumed_zones;
  wr.zones_full = rep.zones_at(LadderLevel::Full);
  wr.zones_greedy = rep.zones_at(LadderLevel::Greedy);
  wr.zones_identity = rep.zones_at(LadderLevel::Identity);
  *resumed = rep.resumed_zones;
  save_tree(cmd.out, tree);
  write_worker_result(cmd.result_path, wr);
  return wr.degraded ? 3 : 0;
}

} // namespace

int run_pool_worker(const PoolWorkerConfig& cfg) noexcept {
  // The fork copied the daemon's armed fault state; drop it before this
  // long-lived child arms anything of its own.
  fault::disarm();

  SharedArtifacts artifacts;
  try {
    artifacts = load_artifacts(cfg);
  } catch (const std::exception& e) {
    // A corrupt blob (io.blob_corrupt, or real rot caught by the CRC)
    // is rejected loudly at map time — never silently recomputed.
    PoolEvent fatal;
    fatal.kind = PoolEvent::Kind::Fatal;
    fatal.error = e.what();
    send_event(cfg.event_fd, fatal);
    std::fprintf(stderr, "pool worker %d: %s\n", cfg.worker_index,
                 e.what());
    return 4;
  }

  PoolEvent ready;
  ready.kind = PoolEvent::Kind::Ready;
  ready.characterized = artifacts.characterized;
  if (!send_event(cfg.event_fd, ready)) return 4;

  std::string buf;
  char chunk[4096];
  while (true) {
    const std::size_t nl_scan = buf.find('\n');
    if (nl_scan == std::string::npos) {
      const ssize_t n = retry_read(cfg.cmd_fd, chunk, sizeof chunk);
      if (n <= 0) return 0;  // supervisor closed the pipe: clean exit
      buf.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    const std::string line = buf.substr(0, nl_scan);
    buf.erase(0, nl_scan + 1);
    if (line.empty()) continue;

    PoolCommand cmd;
    if (!decode_command(line, &cmd)) {
      PoolEvent fatal;
      fatal.kind = PoolEvent::Kind::Fatal;
      fatal.error = "undecodable pool command";
      send_event(cfg.event_fd, fatal);
      return 4;
    }
    switch (cmd.kind) {
      case PoolCommand::Kind::Exit:
        return 0;
      case PoolCommand::Kind::Ping: {
        PoolEvent pong;
        pong.kind = PoolEvent::Kind::Pong;
        pong.seq = cmd.seq;
        if (!send_event(cfg.event_fd, pong)) return 0;
        break;
      }
      case PoolCommand::Kind::Shard: {
        PoolEvent done;
        done.kind = PoolEvent::Kind::ShardDone;
        done.job = cmd.spec.id;
        done.shard = cmd.shard_index;
        const std::string spec = chaos_spec(cmd);
        try {
          if (!spec.empty()) fault::arm(spec, cfg.fault_seed);
          done.code = run_shard_cmd(artifacts, cmd, &done.error);
        } catch (const std::exception& e) {
          done.code = 4;
          done.error = e.what();
        }
        fault::disarm();
        if (!send_event(cfg.event_fd, done)) return 0;
        break;
      }
      case PoolCommand::Kind::Merge: {
        PoolEvent done;
        done.kind = PoolEvent::Kind::MergeDone;
        done.job = cmd.spec.id;
        const std::string spec = cmd.spec.fault_spec;
        try {
          if (!spec.empty()) fault::arm(spec, cfg.fault_seed);
          done.code = run_merge_cmd(artifacts, cmd,
                                    &done.resumed_zones, &done.error);
        } catch (const std::exception& e) {
          done.code = 4;
          done.error = e.what();
        }
        fault::disarm();
        if (!send_event(cfg.event_fd, done)) return 0;
        break;
      }
    }
  }
}

} // namespace wm::serve
