#pragma once
// The pool worker side of the fork boundary (docs/serving.md "Worker
// pool"), plus the NDJSON wire the supervisor speaks to it.
//
// Unlike the fork-per-attempt worker (serve/worker.hpp), a pool worker
// is long-lived: it loads the cell library + characterization LUT once
// — from the shared wavemin.blob/v1 artifact when one is configured,
// re-characterizing in-process otherwise — announces itself with a
// "ready" event, then executes shard and merge commands until told to
// exit or killed. Commands arrive on one pipe, events leave on
// another; every message is one JSON object on one line, same idiom as
// wavemin.jobs/v1:
//
//   commands:  {"cmd":"shard","job":{...},"count":4,"index":1,...}
//              {"cmd":"merge","job":{...},"count":4,"cks":[...],...}
//              {"cmd":"ping","seq":7}   {"cmd":"exit"}
//   events:    {"ev":"ready","characterized":18}
//              {"ev":"shard_done","job":"j1","shard":1,"code":0}
//              {"ev":"merge_done","job":"j1","code":0,...}
//              {"ev":"pong","seq":7}    {"ev":"fatal","error":"..."}
//
// Parsing is strict about shape and lenient about extras (decode
// returns false rather than throwing — the supervisor treats a
// garbled line from a worker like a crashed worker).

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace wm::serve {

/// Supervisor -> worker. Which fields matter depends on `kind`.
struct PoolCommand {
  enum class Kind { Shard, Merge, Ping, Exit };
  Kind kind = Kind::Ping;
  JobSpec spec;               ///< Shard/Merge
  int shard_count = 0;        ///< Shard/Merge
  int shard_index = -1;       ///< Shard
  std::string checkpoint;     ///< Shard: this stripe's .wmck
  std::vector<std::string> resume;  ///< Merge: delivered shard .wmck's
  std::vector<int> identity_shards; ///< Merge: poisoned stripes
  std::string out;            ///< Merge: output tree path
  std::string result_path;    ///< Merge: WorkerResult destination
  double deadline_ms = 0.0;   ///< remaining job budget (0 = none)
  /// Brownout degradation tier at dispatch (serve/scheduler.hpp):
  /// label_budget caps RunBudget::max_total_labels, force_greedy pins
  /// the Greedy rung. 0/false = normal service.
  std::uint64_t label_budget = 0;
  bool force_greedy = false;
  std::uint64_t seq = 0;      ///< Ping
  /// Chaos flags, resolved by the daemon's fault schedule the same way
  /// fork-path victims are (launch_ready's note() dance): the worker
  /// arms the named site itself, so chaos never destabilizes the
  /// supervisor.
  bool poison = false;  ///< Shard: inject serve.shard_poison (fails every run)
  bool stall = false;   ///< Shard: inject serve.pool_worker_stall (wedge)
  bool kill = false;    ///< Shard: inject serve.worker_kill (die now)
};

std::string encode_command(const PoolCommand& cmd);
bool decode_command(const std::string& line, PoolCommand* out);

/// Worker -> supervisor.
struct PoolEvent {
  enum class Kind { Ready, ShardDone, MergeDone, Pong, Fatal };
  Kind kind = Kind::Ready;
  std::string job;          ///< ShardDone/MergeDone
  int shard = -1;           ///< ShardDone
  int code = 0;             ///< ShardDone/MergeDone: exit-contract code
  std::uint64_t characterized = 0;  ///< Ready: fresh LUT rows built
                                    ///< (0 when restored from a blob)
  std::uint64_t resumed_zones = 0;  ///< MergeDone: preloaded zone count
  std::uint64_t seq = 0;    ///< Pong
  std::string error;        ///< ShardDone/MergeDone/Fatal
};

std::string encode_event(const PoolEvent& ev);
bool decode_event(const std::string& line, PoolEvent* out);

/// Everything a pool worker child needs (resolved by the pool at
/// spawn; the child does no policy, only work).
struct PoolWorkerConfig {
  int cmd_fd = -1;    ///< read end: commands from the supervisor
  int event_fd = -1;  ///< write end: events to the supervisor
  /// wavemin.blob/v1 path; "" = characterize in-process at boot. A
  /// blob that fails validation at map time is fatal (the worker emits
  /// a "fatal" event and exits nonzero) — never silently recomputed,
  /// the operator asked for the artifact and must learn it is bad.
  std::string blob;
  /// Characterization dt (ps) for the blob-less in-process LUT build;
  /// 0 = the library default. Ignored when a blob is mapped — the
  /// blob carries its own grid.
  double char_dt = 0.0;
  int worker_index = 0;
  std::uint64_t fault_seed = 0;
};

/// Pool worker child main loop. Returns the child's exit code (0 on a
/// clean "exit" command). Noexcept by contract: every failure becomes
/// a fatal event + nonzero exit, never an unwound exception.
int run_pool_worker(const PoolWorkerConfig& cfg) noexcept;

} // namespace wm::serve
