#pragma once
// Pool supervisor policy (docs/serving.md "Worker pool").
//
// Pure decision logic for the pre-forked worker pool: which shard runs
// on which worker, when a silent worker counts as wedged, when a shard
// that keeps dying is poisoned, and when the pool itself has failed
// enough to give up on. No syscalls, no fds, no pids beyond opaque
// bookkeeping — the event loop in server.cpp owns the processes, this
// class owns the policy, and tests/serve_test.cpp drives every branch
// with a fake clock (the same split job.hpp gives the fork-per-attempt
// path).
//
// Model:
//   * N worker slots, each Starting -> Idle <-> Busy, or Dead awaiting
//     respawn. A slot is identified by its index, never its pid.
//   * A job admitted to the pool becomes shard_count ShardTasks plus
//     one merge. Shards run anywhere; a shard whose worker dies (or is
//     stall-killed) goes back to Pending with capped backoff and is
//     re-assigned — preferring a different worker — while its siblings
//     keep their results (the per-shard checkpoint is the handoff).
//   * A shard that exhausts shard_max_retries is Poisoned: the merge
//     runs anyway with that stripe forced to the identity rung, so the
//     job completes degraded instead of failing.
//   * Every respawn increments a counter; at collapse_respawns the
//     pool is declared collapsed and the server degrades to
//     fork-per-attempt ("serve.pool_degraded").

#include <cstdint>
#include <string>
#include <vector>

namespace wm::serve {

/// Lifecycle of one zone stripe of one pool job.
enum class ShardState {
  Pending,   ///< waiting for a worker (fresh, or back off after a loss)
  Assigned,  ///< running on shards[i].worker
  Done,      ///< checkpoint delivered (or infeasible short-circuit)
  Poisoned,  ///< retries exhausted; merge forces this stripe to identity
};

const char* to_string(ShardState state);
/// Inverse of to_string; false (out untouched) on an unknown name.
/// Journal replay uses this, so it must not throw on corrupt input.
bool parse_shard_state(const std::string& name, ShardState* out);

struct ShardTask {
  int index = 0;
  ShardState state = ShardState::Pending;
  int attempts = 0;        ///< assignments so far
  int worker = -1;         ///< Assigned: worker slot
  int last_worker = -1;    ///< who ran (and lost) it last
  double next_ms = 0.0;    ///< Pending: earliest reassignment instant
  double deadline_ms = 0.0;///< Assigned: stall-kill instant (0 = none)
  bool poison = false;     ///< chaos: every run injects serve.shard_poison
};

/// Pool-side bookkeeping for one admitted job. The serve-layer Job
/// keeps owning the lifecycle; this is only the shard fan-out.
struct PoolJobPlan {
  std::string id;
  std::vector<ShardTask> shards;
  bool infeasible = false;    ///< a shard answered exit 2: skip to merge
  bool merge_assigned = false;
  int merge_worker = -1;
  int merge_attempts = 0;
  double merge_deadline_ms = 0.0;
  double deadline_ms = 0.0;   ///< job deadline instant (0 = none)
};

struct PoolWorkerSlot {
  enum class State { Dead, Starting, Idle, Busy };
  State state = State::Dead;
  long pid = -1;
  double last_heard_ms = 0.0;   ///< last event line from this worker
  double ping_sent_ms = 0.0;    ///< 0 = no ping outstanding
  std::uint64_t ping_seq = 0;   ///< last ping sent
  std::uint64_t pong_seq = 0;   ///< last pong received
  std::string job;              ///< Busy: job id
  int shard = -2;               ///< Busy: shard index, -1 = merge
};

struct PoolPolicy {
  int workers = 2;
  int shard_max_retries = 2;       ///< re-assignments per shard
  double stall_timeout_ms = 30000.0; ///< busy worker silent past this: kill
  double ping_interval_ms = 500.0;   ///< idle-worker heartbeat cadence
  double ping_timeout_ms = 2000.0;   ///< unanswered ping: kill
  int collapse_respawns = 5;       ///< respawns before the pool gives up
  double retry_base_ms = 100.0;    ///< shard re-assignment backoff
  double retry_cap_ms = 5000.0;
  std::uint64_t seed = 0;          ///< backoff jitter seed
};

class PoolSupervisor {
 public:
  PoolSupervisor() = default;
  explicit PoolSupervisor(PoolPolicy policy);

  const PoolPolicy& policy() const { return policy_; }
  int workers() const { return static_cast<int>(slots_.size()); }
  const PoolWorkerSlot& slot(int w) const { return slots_.at(w); }

  // -- worker lifecycle (driven by the event loop) --------------------
  void worker_spawned(int w, long pid, double now);
  /// The worker's "ready" event: Starting -> Idle, eligible for work.
  void worker_ready(int w, double now);
  /// Any event line counts as a heartbeat.
  void worker_heard(int w, double now);
  void worker_pong(int w, std::uint64_t seq, double now);

  /// What a dying worker was holding. shard >= 0: a shard run;
  /// shard == -1: the merge; shard == -2: nothing.
  struct Held {
    std::string job;
    int shard = -2;
  };
  /// Mark a worker dead (reaped, EOF'd or stall-killed): frees its
  /// assignment back to Pending with backoff (or bumps the merge for a
  /// re-run), counts a respawn, and reports what it held.
  Held worker_dead(int w, double now);

  /// True when worker_dead pushed the respawn count to the collapse
  /// threshold: the server must tear the pool down and degrade to
  /// fork-per-attempt.
  bool collapsed() const { return respawns_ >= policy_.collapse_respawns; }
  int respawns() const { return respawns_; }

  /// Dead slots to fork again (skipped once collapsed — no zombie
  /// respawn loop after the decision to give up).
  std::vector<int> workers_to_respawn() const;

  // -- job intake -----------------------------------------------------
  /// Fan a job out into shard_count stripes. poisoned: stripes already
  /// known bad (journal recovery) — admitted directly as Poisoned.
  void admit(const std::string& id, int shard_count, double deadline_ms,
             const std::vector<int>& poisoned);
  /// Drop a job (terminal, drained, or handed back to the fork path).
  /// Workers still running its pieces are left Busy — their done/fatal
  /// events for a forgotten job are ignored by the caller.
  void forget(const std::string& id);
  bool has(const std::string& id) const;
  const PoolJobPlan* plan(const std::string& id) const;
  std::size_t jobs() const { return plans_.size(); }
  /// Admitted job ids in admission order (pool collapse and drain walk
  /// these to hand every plan back to the serve-layer job table).
  std::vector<std::string> job_ids() const;

  // -- worker events --------------------------------------------------
  enum class ShardOutcome {
    Ok,        ///< Done (possibly the infeasible short-circuit)
    Retry,     ///< failed, re-assignment scheduled
    Poisoned,  ///< failed and out of retries
    Ignored,   ///< stale event (unknown job / not assigned here)
  };
  /// A shard_done event: code 0 = checkpoint delivered, 2 = infeasible
  /// (job short-circuits to merge), anything else = failed attempt.
  ShardOutcome shard_done(int w, const std::string& job, int shard,
                          int code, double now);
  enum class MergeOutcome {
    Terminal,  ///< the merge's exit code is the job's answer
    Retry,     ///< merge failed (exit 4), re-run scheduled
    Exhausted, ///< merge failed out of retries: fall back to fork path
    Ignored,
  };
  MergeOutcome merge_done(int w, const std::string& job, int code,
                          double now);

  // -- scheduling -----------------------------------------------------
  struct Assignment {
    enum class Kind { None, Shard, Merge };
    Kind kind = Kind::None;
    int worker = -1;
    std::string job;
    int shard = -1;               ///< Shard
    int shard_count = 0;
    bool poison = false;          ///< Shard: chaos flag for this run
    std::vector<int> done_shards; ///< Merge: stripes with checkpoints
    std::vector<int> identity_shards;  ///< Merge: poisoned stripes
    double deadline_ms = 0.0;     ///< remaining budget for this run (0 = none)
  };
  /// Pick the next (worker, work) pair, update the books, and return
  /// true; false when nothing is assignable right now. Call in a loop.
  /// A re-assigned shard prefers a worker other than the one that just
  /// lost it, when one is idle.
  bool next_assignment(double now, Assignment* out);

  /// Mark a chaos shard target: every run of (job, shard) injects
  /// serve.shard_poison until the stripe poisons for real.
  void mark_poison_target(const std::string& job, int shard);

  // -- watchdogs ------------------------------------------------------
  /// Idle workers due a heartbeat ping; marks the ping outstanding.
  std::vector<int> workers_to_ping(double now);
  /// Workers the server must SIGKILL now: busy past the stall deadline,
  /// idle with an unanswered ping past ping_timeout, or starting
  /// without a ready past stall_timeout.
  std::vector<int> stalled_workers(double now) const;
  /// Earliest instant any pool timer fires (ping due, ping timeout,
  /// stall deadline, shard backoff expiry); <0 = no timer armed.
  double next_deadline_ms() const;

 private:
  PoolJobPlan* find_plan(const std::string& id);
  int pick_idle_worker(int avoid) const;
  double shard_backoff_ms(const std::string& id, int shard,
                          int attempts) const;

  PoolPolicy policy_;
  std::vector<PoolWorkerSlot> slots_;
  std::vector<PoolJobPlan> plans_;  ///< admission order
  int respawns_ = 0;
};

} // namespace wm::serve
