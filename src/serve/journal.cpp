#include "serve/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/posix_io.hpp"

namespace wm::serve {

namespace {

// The CRC trailer: " crc " + 8 lowercase hex digits, always the line's
// final 13 bytes. Searching for the *last* marker keeps record bodies
// free to contain the marker text inside JSON strings.
constexpr const char kCrcMarker[] = " crc ";
constexpr std::size_t kCrcMarkerLen = 5;
constexpr std::size_t kCrcHexLen = 8;

std::string crc_hex(std::uint32_t crc) {
  char buf[kCrcHexLen + 1];
  std::snprintf(buf, sizeof buf, "%08x", crc);
  return std::string(buf, kCrcHexLen);
}

bool parse_crc_hex(const std::string& hex, std::uint32_t* out) {
  if (hex.size() != kCrcHexLen) return false;
  std::uint32_t v = 0;
  for (const char c : hex) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint32_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = v;
  return true;
}

const char* type_tag(JournalRecord::Type type) {
  switch (type) {
    case JournalRecord::Type::Version: return "v";
    case JournalRecord::Type::Admit: return "admit";
    case JournalRecord::Type::Launch: return "launch";
    case JournalRecord::Type::Exit: return "exit";
    case JournalRecord::Type::Shard: return "shard";
    case JournalRecord::Type::Term: return "term";
    case JournalRecord::Type::Snapshot: return "job";
    case JournalRecord::Type::Brownout: return "brownout";
  }
  return "?";
}

JournalRecord decode_body(const json::Value& root) {
  JournalRecord rec;
  const std::string tag = root.get_string("t", "journal record");
  if (tag == "v") {
    rec.type = JournalRecord::Type::Version;
    WM_REQUIRE(root.get_string("v", "journal version") == kJournalVersion,
               "journal: unknown format version");
    return rec;
  }
  if (tag == "brownout") {
    // Daemon-wide, no job id — like "v". fold_journal ignores these;
    // recovery scans the raw records for the last one to resume its
    // tier.
    rec.type = JournalRecord::Type::Brownout;
    rec.tier = static_cast<int>(root.get_number("tier", "journal brownout"));
    WM_REQUIRE(rec.tier >= 0, "journal: brownout tier must be >= 0");
    return rec;
  }
  rec.id = root.get_string("id", "journal record");
  WM_REQUIRE(!rec.id.empty(), "journal: empty job id");
  if (tag == "admit" || tag == "job") {
    rec.type = tag == "admit" ? JournalRecord::Type::Admit
                              : JournalRecord::Type::Snapshot;
    rec.fp = root.get_u64_or("fp", 0);
    const json::Value* spec = root.find("spec");
    WM_REQUIRE(spec != nullptr && spec->is_object(),
               "journal: record lacks a spec object");
    rec.spec = parse_job_spec(*spec);
    if (tag == "job") {
      rec.attempt =
          static_cast<int>(root.get_number("attempts", "journal snapshot"));
      WM_REQUIRE(parse_job_state(root.get_string("state", "journal snapshot"),
                                 &rec.state),
                 "journal: unknown job state");
      rec.error = root.get_string_or("error", "");
    }
  } else if (tag == "launch" || tag == "exit") {
    rec.type = tag == "launch" ? JournalRecord::Type::Launch
                               : JournalRecord::Type::Exit;
    rec.attempt =
        static_cast<int>(root.get_number("attempt", "journal record"));
    WM_REQUIRE(rec.attempt >= 1, "journal: attempt must be >= 1");
  } else if (tag == "shard") {
    rec.type = JournalRecord::Type::Shard;
    rec.shard = static_cast<int>(root.get_number("shard", "journal shard"));
    WM_REQUIRE(rec.shard >= 0, "journal: shard index must be >= 0");
    WM_REQUIRE(parse_shard_state(root.get_string("state", "journal shard"),
                                 &rec.shard_state),
               "journal: unknown shard state");
  } else if (tag == "term") {
    rec.type = JournalRecord::Type::Term;
    WM_REQUIRE(parse_job_state(root.get_string("state", "journal term"),
                               &rec.state),
               "journal: unknown job state");
    WM_REQUIRE(is_terminal(rec.state), "journal: term with live state");
    rec.error = root.get_string_or("error", "");
  } else {
    throw Error("journal: unknown record type \"" + tag + "\"");
  }
  return rec;
}

} // namespace

std::string encode_record(const JournalRecord& rec) {
  json::Value v = json::Value::object_v();
  v.set("t", json::Value::string_v(type_tag(rec.type)));
  switch (rec.type) {
    case JournalRecord::Type::Version:
      v.set("v", json::Value::string_v(std::string(kJournalVersion)));
      break;
    case JournalRecord::Type::Admit:
      v.set("id", json::Value::string_v(rec.id));
      v.set("fp", json::Value::number_v(rec.fp));
      v.set("spec", job_spec_to_json(rec.spec));
      break;
    case JournalRecord::Type::Launch:
    case JournalRecord::Type::Exit:
      v.set("id", json::Value::string_v(rec.id));
      v.set("attempt", json::Value::number_v(rec.attempt));
      break;
    case JournalRecord::Type::Shard:
      v.set("id", json::Value::string_v(rec.id));
      v.set("shard", json::Value::number_v(rec.shard));
      v.set("state", json::Value::string_v(to_string(rec.shard_state)));
      break;
    case JournalRecord::Type::Term:
      v.set("id", json::Value::string_v(rec.id));
      v.set("state", json::Value::string_v(to_string(rec.state)));
      if (!rec.error.empty()) {
        v.set("error", json::Value::string_v(rec.error));
      }
      break;
    case JournalRecord::Type::Snapshot:
      v.set("id", json::Value::string_v(rec.id));
      v.set("fp", json::Value::number_v(rec.fp));
      v.set("state", json::Value::string_v(to_string(rec.state)));
      v.set("attempts", json::Value::number_v(rec.attempt));
      if (!rec.error.empty()) {
        v.set("error", json::Value::string_v(rec.error));
      }
      v.set("spec", job_spec_to_json(rec.spec));
      break;
    case JournalRecord::Type::Brownout:
      v.set("tier", json::Value::number_v(rec.tier));
      break;
  }
  const std::string body = json::dump(v);
  const std::uint32_t crc = crc32(body.data(), body.size());
  return body + kCrcMarker + crc_hex(crc);
}

bool decode_record(const std::string& line, JournalRecord* out) {
  const std::size_t tail = kCrcMarkerLen + kCrcHexLen;
  if (line.size() < tail + 2) return false;  // "{}" is the minimal body
  const std::size_t marker = line.rfind(kCrcMarker);
  if (marker == std::string::npos ||
      marker != line.size() - tail) {
    return false;
  }
  std::uint32_t want = 0;
  if (!parse_crc_hex(line.substr(marker + kCrcMarkerLen), &want)) {
    return false;
  }
  if (crc32(line.data(), marker) != want) return false;
  try {
    const json::Value root = json::parse(
        std::string_view(line.data(), marker));
    if (!root.is_object()) return false;
    *out = decode_body(root);
  } catch (const Error&) {
    return false;
  }
  return true;
}

std::vector<JournalRecord> replay_journal(const std::string& path,
                                          ReplayStats* stats) {
  *stats = ReplayStats{};
  std::vector<JournalRecord> records;
  std::ifstream in(path, std::ios::binary);
  if (!in) return records;  // no journal yet: an empty one
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  if (text.empty()) return records;

  std::size_t begin = 0;
  bool good = true;
  while (begin < text.size()) {
    std::size_t end = text.find('\n', begin);
    const bool newline_terminated = end != std::string::npos;
    if (!newline_terminated) end = text.size();
    const std::string line = text.substr(begin, end - begin);
    begin = end + 1;
    if (line.empty()) continue;
    if (good) {
      JournalRecord rec;
      good = decode_record(line, &rec) && newline_terminated;
      // The whole file is only trusted when it opens with the version
      // record — anything else is a foreign or pre-v1 file.
      if (good && records.empty() &&
          rec.type != JournalRecord::Type::Version) {
        good = false;
      }
      if (good) {
        ++stats->applied;
        records.push_back(std::move(rec));
        continue;
      }
      // A complete record missing its newline is itself suspect (the
      // crash landed mid-append); drop it so replay never trusts a
      // line an append could still be concatenated onto.
      stats->torn = true;
    }
    ++stats->dropped;
  }
  return records;
}

std::vector<std::pair<std::string, RecoveredJob>> fold_journal(
    const std::vector<JournalRecord>& records) {
  std::vector<std::pair<std::string, RecoveredJob>> table;
  auto lookup = [&table](const std::string& id) -> RecoveredJob* {
    for (auto& [key, job] : table) {
      if (key == id) return &job;
    }
    return nullptr;
  };
  for (const JournalRecord& rec : records) {
    switch (rec.type) {
      case JournalRecord::Type::Version:
      case JournalRecord::Type::Brownout:  // daemon-wide, no job entry
        break;
      case JournalRecord::Type::Admit: {
        RecoveredJob* job = lookup(rec.id);
        if (job == nullptr) {
          table.emplace_back(rec.id, RecoveredJob{});
          job = &table.back().second;
        }
        // Re-admission (a failed terminal job resubmitted) resets the
        // whole entry, exactly like Server::handle_submit does live.
        *job = RecoveredJob{};
        job->spec = rec.spec;
        job->fp = rec.fp;
        break;
      }
      case JournalRecord::Type::Launch: {
        RecoveredJob* job = lookup(rec.id);
        if (job == nullptr) break;  // admit lost to a torn tail
        if (rec.attempt > job->attempts) job->attempts = rec.attempt;
        job->mid_attempt = true;
        job->terminal = false;
        job->state = JobState::Running;
        break;
      }
      case JournalRecord::Type::Exit: {
        RecoveredJob* job = lookup(rec.id);
        if (job == nullptr) break;
        job->mid_attempt = false;
        job->state = JobState::Backoff;
        break;
      }
      case JournalRecord::Type::Shard: {
        RecoveredJob* job = lookup(rec.id);
        if (job == nullptr) break;
        if (rec.shard_state == ShardState::Poisoned &&
            std::find(job->poisoned_shards.begin(),
                      job->poisoned_shards.end(),
                      rec.shard) == job->poisoned_shards.end()) {
          job->poisoned_shards.push_back(rec.shard);
        }
        break;
      }
      case JournalRecord::Type::Term: {
        RecoveredJob* job = lookup(rec.id);
        if (job == nullptr) break;
        job->mid_attempt = false;
        job->terminal = true;
        job->state = rec.state;
        job->error = rec.error;
        break;
      }
      case JournalRecord::Type::Snapshot: {
        RecoveredJob* job = lookup(rec.id);
        if (job == nullptr) {
          table.emplace_back(rec.id, RecoveredJob{});
          job = &table.back().second;
        }
        *job = RecoveredJob{};
        job->spec = rec.spec;
        job->fp = rec.fp;
        job->attempts = rec.attempt;
        job->state = rec.state;
        job->error = rec.error;
        job->terminal = is_terminal(rec.state);
        job->mid_attempt = rec.state == JobState::Running;
        break;
      }
    }
  }
  return table;
}

bool parse_sync_policy(const std::string& name, SyncPolicy* out) {
  if (name == "always") {
    *out = SyncPolicy::Always;
  } else if (name == "batch") {
    *out = SyncPolicy::Batch;
  } else if (name == "off") {
    *out = SyncPolicy::Off;
  } else {
    return false;
  }
  return true;
}

const char* to_string(SyncPolicy policy) {
  switch (policy) {
    case SyncPolicy::Always: return "always";
    case SyncPolicy::Batch: return "batch";
    case SyncPolicy::Off: return "off";
  }
  return "?";
}

bool Journal::open(const std::string& path, SyncPolicy sync,
                   obs::MetricsRegistry* metrics) {
  close();
  path_ = path;
  sync_ = sync;
  metrics_ = metrics;
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
               0644);
  if (fd_ < 0) return false;
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    close();
    return false;
  }
  bytes_ = static_cast<std::uint64_t>(st.st_size);
  if (bytes_ == 0) {
    JournalRecord version;
    version.type = JournalRecord::Type::Version;
    if (!append(version)) {
      close();
      return false;
    }
  }
  return true;
}

bool Journal::append(const JournalRecord& rec) {
  if (fd_ < 0) return false;
  std::string line = encode_record(rec);
  line += '\n';
  std::size_t n = line.size();
  try {
    fault::inject("serve.journal_torn");
  } catch (const Error&) {
    // Simulate the crash-mid-append the replay path must drop: half a
    // record lands on disk and "succeeds". The next restart's replay
    // detects it by CRC (serve.journal_truncated).
    n = n / 2;
    obs::add(metrics_, "serve.journal_torn_writes");
  }
  if (!write_all(fd_, line.data(), n)) return false;
  bytes_ += n;
  obs::add(metrics_, "serve.journal_appended");
  if (sync_ == SyncPolicy::Always) {
    if (::fsync(fd_) != 0) return false;
  } else if (sync_ == SyncPolicy::Batch) {
    dirty_ = true;
  }
  return true;
}

bool Journal::flush() {
  if (fd_ < 0 || !dirty_) return true;
  dirty_ = false;
  return ::fsync(fd_) == 0;
}

bool Journal::rewrite(const std::vector<JournalRecord>& records) {
  if (path_.empty()) return false;
  std::string text;
  JournalRecord version;
  version.type = JournalRecord::Type::Version;
  text += encode_record(version);
  text += '\n';
  for (const JournalRecord& rec : records) {
    text += encode_record(rec);
    text += '\n';
  }
  // Same tmp-plus-rename discipline as ck::save: the old journal stays
  // whole until the new one is fully on disk.
  const std::string tmp = path_ + ".tmp";
  const int fd = ::open(tmp.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  const bool wrote = write_all(fd, text.data(), text.size()) &&
                     ::fsync(fd) == 0;
  ::close(fd);
  if (!wrote || std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  if (fd_ >= 0) ::close(fd_);
  dirty_ = false;
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0) return false;
  bytes_ = static_cast<std::uint64_t>(text.size());
  obs::add(metrics_, "serve.journal_compactions");
  return true;
}

void Journal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  dirty_ = false;
}

} // namespace wm::serve
