#pragma once
// wavemin.journal/v1 — the serving layer's durable job journal
// (docs/serving.md "Crash recovery").
//
// An append-only write-ahead log in the spool directory recording
// every job lifecycle transition, so a daemon crash loses no job
// metadata: the spool checkpoints were already the durable *work*
// state, the journal makes the job *table* durable too. One record
// per line:
//
//   {"t":"admit","id":"j1","fp":123,"spec":{...}} crc 5f3a9c01
//
// The body is one wavemin.jobs/v1-style JSON object; the trailer is
// the CRC-32 (IEEE) of the body bytes. Replay stops at the first line
// that fails the CRC or does not parse — a torn tail from a crash
// mid-append is dropped at the last valid record, never an error.
// Record types: "v" (format version, always the first record),
// "admit" (job accepted, with full spec + breaker fingerprint),
// "launch" / "exit" (attempt lifecycle), "shard" (pool-mode stripe
// transitions — done/poisoned — so a restart neither re-trusts a
// poisoned stripe nor re-burns its retry budget), "term" (terminal
// state), "job" (a whole-job snapshot, written by compaction) and
// "brownout" (an admission-controller tier transition — no job id,
// like "v" — so a restart resumes in the right degradation tier).
//
// Durability is a policy knob (--journal-sync): Always fsyncs every
// append, Batch fsyncs once per event-loop iteration before the
// daemon blocks in poll(), Off leaves it to the page cache. Any write
// or fsync failure (ENOSPC, quota, a yanked disk) is reported to the
// caller, who degrades to journal-less in-memory serving rather than
// aborting — see Server::journal_append.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "serve/job.hpp"
#include "serve/protocol.hpp"
#include "serve/supervisor.hpp"

namespace wm::obs {
class MetricsRegistry;
}

namespace wm::serve {

inline constexpr std::string_view kJournalVersion = "wavemin.journal/v1";

/// One journal record. Which fields are meaningful depends on `type`
/// (see the format comment above); the rest stay at their defaults.
struct JournalRecord {
  enum class Type {
    Version, Admit, Launch, Exit, Shard, Term, Snapshot, Brownout
  };
  Type type = Type::Version;
  std::string id;
  std::uint64_t fp = 0;    ///< Admit/Snapshot: breaker fingerprint
  JobSpec spec;            ///< Admit/Snapshot
  int attempt = 0;         ///< Launch/Exit: attempt number (1-based);
                           ///< Snapshot: attempts launched so far
  JobState state = JobState::Queued;  ///< Term/Snapshot
  std::string error;       ///< Term/Snapshot: terminal failure text
  int shard = -1;          ///< Shard: stripe index
  ShardState shard_state = ShardState::Pending;  ///< Shard: done/poisoned
  int tier = 0;            ///< Brownout: the tier just entered
};

/// Record -> one journal line (CRC trailer included, no newline).
std::string encode_record(const JournalRecord& rec);

/// Line -> record. False on a CRC mismatch, malformed JSON, an unknown
/// type or a missing field — never throws (replay feeds it torn tails).
bool decode_record(const std::string& line, JournalRecord* out);

struct ReplayStats {
  std::size_t applied = 0;  ///< records decoded and returned
  std::size_t dropped = 0;  ///< trailing lines dropped (torn/corrupt)
  /// True when the file needs compaction before it is safe to append:
  /// a torn tail was dropped, or the last record lacks its newline.
  bool torn = false;
};

/// Read and decode a journal file. A missing file is an empty journal;
/// a file whose first record is not the expected version record is
/// treated as wholly corrupt (everything dropped). Never throws.
std::vector<JournalRecord> replay_journal(const std::string& path,
                                          ReplayStats* stats);

/// What recovery knows about one job after folding the journal.
struct RecoveredJob {
  JobSpec spec;
  std::uint64_t fp = 0;
  int attempts = 0;         ///< attempts launched before the crash
  bool mid_attempt = false; ///< a launch had no matching exit/term
  bool terminal = false;
  JobState state = JobState::Queued;
  std::string error;
  /// Pool-mode stripes that exhausted their retries before the crash:
  /// a relaunch admits them straight to Poisoned so the retry budget
  /// is not re-burned proving the same failure.
  std::vector<int> poisoned_shards;
};

/// Fold replayed records into the per-job recovery table, in
/// first-admit order (so recovered jobs re-enter admission in their
/// original order). Launch/exit/term records whose admit record was
/// lost to a torn tail are ignored — without the spec there is
/// nothing to recover. The table is prefix-consistent: folding the
/// first N records of a journal always yields the table the daemon
/// had after applying those N transitions (tests/serve_test.cpp
/// truncation fuzz).
std::vector<std::pair<std::string, RecoveredJob>> fold_journal(
    const std::vector<JournalRecord>& records);

/// --journal-sync policy (see the durability note above).
enum class SyncPolicy { Always, Batch, Off };
bool parse_sync_policy(const std::string& name, SyncPolicy* out);
const char* to_string(SyncPolicy policy);

/// The append handle. Plain POSIX fd, O_APPEND; not thread-safe — the
/// daemon's event loop is the only writer (ThreadRole loop_role_).
class Journal {
 public:
  Journal() = default;
  ~Journal() { close(); }
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Open (creating if absent) for append; writes the version record
  /// into an empty file. `metrics` (nullable) receives the journal's
  /// own counters. False on open/write failure.
  bool open(const std::string& path, SyncPolicy sync,
            obs::MetricsRegistry* metrics);

  /// Append one record (plus newline) in a single write(2). False on
  /// a short write, write error or (policy Always) fsync failure —
  /// the caller must treat the journal as gone. The serve.journal_torn
  /// fault site deliberately writes only half the record and reports
  /// success, simulating the crash-mid-append the replay path drops.
  bool append(const JournalRecord& rec);

  /// Policy Batch: fsync if anything was appended since the last
  /// flush. Called once per event-loop iteration, before poll().
  bool flush();

  /// Snapshot-plus-truncate compaction: atomically replace the file
  /// with a version record plus `records`, then reopen for append.
  /// On failure the old journal (and fd) are left intact.
  bool rewrite(const std::vector<JournalRecord>& records);

  void close();
  bool is_open() const { return fd_ >= 0; }
  std::uint64_t bytes() const { return bytes_; }
  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
  SyncPolicy sync_ = SyncPolicy::Batch;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::uint64_t bytes_ = 0;
  bool dirty_ = false;
};

} // namespace wm::serve
