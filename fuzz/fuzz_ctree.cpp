// libFuzzer harness for the hardened ctree reader (io/tree_io.cpp).
//
// Contract under fuzz: any byte string either parses into a valid
// ClockTree or throws wm::Error — never a crash, never a sanitizer
// report, never an unbounded allocation (the reader's hardening limits
// are the backstop). Seed corpus: tests/data/bad_io/*.ctree.
//
// Build with clang: -DWAVEMIN_FUZZERS=ON (links -fsanitize=fuzzer).
// Every toolchain also builds fuzz_ctree_replay, a standalone binary
// that feeds file arguments through the same entry point — used by the
// ctest smoke and for replaying crashers without clang.

#include <cstddef>
#include <cstdint>
#include <string>

#include "cells/library.hpp"
#include "io/tree_io.hpp"
#include "util/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  static const wm::CellLibrary lib = wm::CellLibrary::nangate45_like();
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    (void)wm::tree_from_string(text, lib);
  } catch (const wm::Error&) {
    // Rejected input with a diagnostic: exactly the contract.
  }
  return 0;
}

#ifdef WAVEMIN_FUZZ_STANDALONE
#include <cstdio>
#include <fstream>
#include <sstream>

int main(int argc, char** argv) {
  int files = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream is(argv[i], std::ios::binary);
    if (!is) {
      std::fprintf(stderr, "cannot open: %s\n", argv[i]);
      return 1;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string text = buf.str();
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
    ++files;
  }
  std::printf("fuzz_ctree_replay: %d input(s), no crash\n", files);
  return 0;
}
#endif
