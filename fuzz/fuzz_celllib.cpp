// libFuzzer harness for the hardened celllib reader (io/tree_io.cpp).
//
// Same contract as fuzz_ctree: parse or throw wm::Error, nothing else.
// Seed corpus: tests/data/bad_io/*.celllib.

#include <cstddef>
#include <cstdint>
#include <string>

#include "io/tree_io.hpp"
#include "util/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    (void)wm::library_from_string(text);
  } catch (const wm::Error&) {
    // Rejected input with a diagnostic: exactly the contract.
  }
  return 0;
}

#ifdef WAVEMIN_FUZZ_STANDALONE
#include <cstdio>
#include <fstream>
#include <sstream>

int main(int argc, char** argv) {
  int files = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream is(argv[i], std::ios::binary);
    if (!is) {
      std::fprintf(stderr, "cannot open: %s\n", argv[i]);
      return 1;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string text = buf.str();
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
    ++files;
  }
  std::printf("fuzz_celllib_replay: %d input(s), no crash\n", files);
  return 0;
}
#endif
