// Serving layer unit tests (docs/serving.md): supervisor policy
// (exit classification, retry matrix, backoff schedule), the circuit
// breaker, the wavemin.jobs/v1 protocol codec, the worker result file
// round-trip, the wavemin.journal/v1 durable job journal (including
// the every-byte-boundary truncation fuzz), and the wm::json machinery
// underneath — all pure logic, no sockets and no forks (the e2e lives
// in scripts/serve_soak.sh and scripts/serve_restart_soak.sh).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "serve/breaker.hpp"
#include "serve/job.hpp"
#include "serve/journal.hpp"
#include "serve/protocol.hpp"
#include "serve/shard.hpp"
#include "serve/supervisor.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace wm::serve {
namespace {

// ------------------------------------------------------------ wm::json

TEST(JsonTest, RoundTripsScalarsAndContainers) {
  const json::Value v =
      json::parse(R"({"a": 1, "b": "x\n", "c": [true, null, 2.5]})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.get_number("a", "t"), 1.0);
  EXPECT_EQ(v.get_string("b", "t"), "x\n");
  const json::Value* c = v.find("c");
  ASSERT_NE(c, nullptr);
  ASSERT_TRUE(c->is_array());
  ASSERT_EQ(c->array.size(), 3u);
  EXPECT_TRUE(c->array[0].boolean);
  EXPECT_EQ(c->array[1].kind, json::Value::Kind::Null);
  EXPECT_EQ(c->array[2].number, 2.5);
  // dump -> parse -> dump is a fixpoint.
  const std::string once = json::dump(v);
  EXPECT_EQ(json::dump(json::parse(once)), once);
}

TEST(JsonTest, NumbersKeepTheirRawSpelling) {
  // 64-bit counters survive exactly — no double rounding on the wire.
  const std::string big = "18446744073709551615";
  const json::Value v = json::parse("{\"n\": " + big + "}");
  EXPECT_EQ(v.get_u64_or("n", 0), 18446744073709551615ULL);
  EXPECT_NE(json::dump(v).find(big), std::string::npos);
}

TEST(JsonTest, ParseErrorsNameTheOffset) {
  try {
    json::parse("{\"a\": }");
    FAIL() << "expected wm::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
  EXPECT_THROW(json::parse(""), Error);
  EXPECT_THROW(json::parse("{} trailing"), Error);
  EXPECT_THROW(json::parse("{\"a\": 1,}"), Error);
}

TEST(JsonTest, ToU64RejectsNegativeAndFractional) {
  EXPECT_THROW(json::to_u64(json::parse("-3"), "t"), Error);
  EXPECT_THROW(json::to_u64(json::parse("1.5"), "t"), Error);
  EXPECT_EQ(json::to_u64(json::parse("42"), "t"), 42u);
}

// -------------------------------------------------- exit classification

TEST(ClassifyExitTest, ContractTable) {
  struct Case {
    bool exited;
    int code;
    bool signaled;
    int sig;
    Attempt::Outcome want;
  };
  const Case cases[] = {
      {true, 0, false, 0, Attempt::Outcome::Done},
      {true, 2, false, 0, Attempt::Outcome::Infeasible},
      {true, 3, false, 0, Attempt::Outcome::Degraded},
      {true, 4, false, 0, Attempt::Outcome::Failed},
      // Exit 1 (usage) and unknown codes are contract violations —
      // failures, never successes.
      {true, 1, false, 0, Attempt::Outcome::Failed},
      {true, 77, false, 0, Attempt::Outcome::Failed},
      {false, 0, true, 9, Attempt::Outcome::Crashed},   // SIGKILL
      {false, 0, true, 11, Attempt::Outcome::Crashed},  // SIGSEGV
      {false, 0, false, 0, Attempt::Outcome::Failed},   // defensive
  };
  for (const Case& c : cases) {
    const Attempt a = classify_exit(c.exited, c.code, c.signaled, c.sig);
    EXPECT_EQ(a.outcome, c.want)
        << "exited=" << c.exited << " code=" << c.code
        << " signaled=" << c.signaled;
    if (c.signaled) {
      EXPECT_EQ(a.signal, c.sig);
      EXPECT_EQ(a.exit_code, -1);
    } else if (c.exited) {
      EXPECT_EQ(a.exit_code, c.code);
      EXPECT_EQ(a.signal, 0);
    }
  }
}

// ------------------------------------------------------------- retryable

TEST(RetryableTest, PolicyMatrix) {
  using O = Attempt::Outcome;
  using C = ErrorCategory;
  // Crashes always retry; Failed retries unless deterministic
  // (InvalidInput); data outcomes never retry.
  EXPECT_TRUE(retryable(O::Crashed, C::Internal));
  EXPECT_TRUE(retryable(O::Crashed, C::InvalidInput));  // no result file
  EXPECT_TRUE(retryable(O::Failed, C::Internal));
  EXPECT_TRUE(retryable(O::Failed, C::None));
  EXPECT_FALSE(retryable(O::Failed, C::InvalidInput));
  EXPECT_FALSE(retryable(O::Done, C::None));
  EXPECT_FALSE(retryable(O::Degraded, C::None));
  EXPECT_FALSE(retryable(O::Infeasible, C::Infeasible));
}

// -------------------------------------------------------------- backoff

TEST(BackoffTest, DoublesAndCaps) {
  const double base = 100.0, cap = 1000.0;
  double prev = 0.0;
  for (int k = 1; k <= 8; ++k) {
    const double d = backoff_ms(k, base, cap, 7, 42);
    const double nominal = std::min(base * (1 << (k - 1)), cap);
    EXPECT_GE(d, nominal) << "attempt " << k;
    EXPECT_LE(d, nominal * 1.5) << "attempt " << k;  // <= 50% jitter
    if (k <= 4) EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(BackoffTest, DeterministicPerSeedAndJobKey) {
  EXPECT_EQ(backoff_ms(2, 100, 5000, 7, 42),
            backoff_ms(2, 100, 5000, 7, 42));
  // Different jobs jitter apart (thundering-herd spreading).
  EXPECT_NE(backoff_ms(2, 100, 5000, 7, 42),
            backoff_ms(2, 100, 5000, 7, 43));
  EXPECT_NE(backoff_ms(2, 100, 5000, 8, 42),
            backoff_ms(2, 100, 5000, 7, 42));
}

// -------------------------------------------------------------- breaker

TEST(BreakerTest, OpensAfterThresholdConsecutiveFailures) {
  CircuitBreaker b(3);
  const std::uint64_t fp = 0xabcd;
  EXPECT_FALSE(b.is_open(fp));
  EXPECT_FALSE(b.record_failure(fp));
  EXPECT_FALSE(b.record_failure(fp));
  EXPECT_FALSE(b.is_open(fp));
  EXPECT_TRUE(b.record_failure(fp));  // the opening transition
  EXPECT_TRUE(b.is_open(fp));
  EXPECT_FALSE(b.record_failure(fp));  // already open: no re-transition
  EXPECT_EQ(b.open_count(), 1u);
  // Other designs are unaffected.
  EXPECT_FALSE(b.is_open(0x1234));
}

TEST(BreakerTest, SuccessResetsTheConsecutiveCount) {
  CircuitBreaker b(2);
  const std::uint64_t fp = 1;
  b.record_failure(fp);
  b.record_success(fp);  // interleaved success: not *consecutive*
  EXPECT_FALSE(b.record_failure(fp));
  EXPECT_FALSE(b.is_open(fp));
  EXPECT_TRUE(b.record_failure(fp));
  EXPECT_TRUE(b.is_open(fp));
  b.record_success(fp);  // closes an open breaker too
  EXPECT_FALSE(b.is_open(fp));
  EXPECT_EQ(b.open_count(), 0u);
}

TEST(BreakerTest, ZeroThresholdDisables) {
  CircuitBreaker b(0);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(b.record_failure(5));
  EXPECT_FALSE(b.is_open(5));
}

TEST(BreakerTest, FingerprintTracksContentAndKnobs) {
  const std::string path = "serve_test_fp.ctree";
  {
    std::ofstream os(path);
    os << "tree bytes v1\n";
  }
  JobSpec a;
  a.tree = path;
  JobSpec b = a;
  EXPECT_EQ(design_fingerprint(a), design_fingerprint(b));
  b.kappa = 15.0;
  EXPECT_NE(design_fingerprint(a), design_fingerprint(b));
  b = a;
  b.algo = "wavemin-f";
  EXPECT_NE(design_fingerprint(a), design_fingerprint(b));
  // Same spec, different content: different design.
  {
    std::ofstream os(path);
    os << "tree bytes v2\n";
  }
  EXPECT_NE(design_fingerprint(a), design_fingerprint(b));
  std::remove(path.c_str());
  // Unreadable input still fingerprints (by path) — its jobs fail
  // deterministically, which is what the breaker exists to catch.
  EXPECT_NE(design_fingerprint(a), 0u);
}

// ------------------------------------------------------------- protocol

TEST(ProtocolTest, SubmitRoundTrip) {
  JobSpec job;
  job.id = "job-1";
  job.tree = "x.ctree";
  job.algo = "wavemin-f";
  job.kappa = 15.0;
  job.samples = 16;
  job.deadline_ms = 2500.0;
  job.max_retries = 5;
  job.seed = 99;
  job.fault_spec = "core.zone_solve=2";
  const Request req = parse_request(dump_submit(job, true));
  EXPECT_EQ(req.op, Request::Op::Submit);
  EXPECT_TRUE(req.wait);
  EXPECT_EQ(req.job.id, "job-1");
  EXPECT_EQ(req.job.tree, "x.ctree");
  EXPECT_EQ(req.job.algo, "wavemin-f");
  EXPECT_EQ(req.job.kappa, 15.0);
  EXPECT_EQ(req.job.samples, 16);
  EXPECT_EQ(req.job.deadline_ms, 2500.0);
  EXPECT_EQ(req.job.max_retries, 5);
  EXPECT_EQ(req.job.seed, 99u);
  EXPECT_EQ(req.job.fault_spec, "core.zone_solve=2");
}

TEST(ProtocolTest, SimpleOpsRoundTrip) {
  EXPECT_EQ(parse_request(dump_simple("health")).op, Request::Op::Health);
  EXPECT_EQ(parse_request(dump_simple("stats")).op, Request::Op::Stats);
  EXPECT_EQ(parse_request(dump_simple("drain")).op, Request::Op::Drain);
  const Request st = parse_request(dump_status("j7"));
  EXPECT_EQ(st.op, Request::Op::Status);
  EXPECT_EQ(st.id, "j7");
}

TEST(ProtocolTest, StrictAboutShapeLenientAboutExtras) {
  // Unknown fields are ignored (v1 clients against later daemons)...
  const Request req = parse_request(
      R"({"v":"wavemin.jobs/v1","op":"submit","tree":"t.ctree","future_knob":1})");
  EXPECT_EQ(req.job.tree, "t.ctree");
  // ...but shape violations throw.
  EXPECT_THROW(parse_request("not json"), Error);
  EXPECT_THROW(parse_request("[1,2]"), Error);
  EXPECT_THROW(parse_request(R"({"op":"frobnicate"})"), Error);
  EXPECT_THROW(parse_request(R"({"v":"wavemin.jobs/v2","op":"health"})"),
               Error);
  EXPECT_THROW(parse_request(R"({"op":"submit"})"), Error);  // no tree
  EXPECT_THROW(parse_request(R"({"op":"status"})"), Error);  // no id
  EXPECT_THROW(
      parse_request(R"({"op":"submit","tree":"t","algo":"peakmin"})"),
      Error);
  EXPECT_THROW(
      parse_request(R"({"op":"submit","tree":"t","kappa":-1})"), Error);
  EXPECT_THROW(
      parse_request(R"({"op":"submit","tree":"t","max_retries":99})"),
      Error);
  EXPECT_THROW(
      parse_request(R"({"op":"submit","tree":"t","deadline_ms":-5})"),
      Error);
}

TEST(ProtocolTest, ErrorFrameShape) {
  const json::Value v =
      json::parse(error_frame("overloaded", "queue full"));
  EXPECT_FALSE(v.get_bool_or("ok", true));
  EXPECT_EQ(v.get_string("error", "t"), "overloaded");
  EXPECT_EQ(v.get_string("message", "t"), "queue full");
}

// ------------------------------------------------------ worker results

TEST(WorkerResultTest, FileRoundTrip) {
  WorkerResult r;
  r.valid = true;
  r.category = ErrorCategory::None;
  r.degraded = true;
  r.resumed_zones = 4;
  r.zones_full = 2;
  r.zones_greedy = 1;
  r.zones_identity = 1;
  const std::string path = "serve_test_result.json";
  {
    std::ofstream os(path);
    os << dump_worker_result(r) << "\n";
  }
  const WorkerResult back = load_worker_result(path);
  std::remove(path.c_str());
  ASSERT_TRUE(back.valid);
  EXPECT_EQ(back.category, ErrorCategory::None);
  EXPECT_TRUE(back.degraded);
  EXPECT_EQ(back.resumed_zones, 4u);
  EXPECT_EQ(back.zones_full, 2u);
  EXPECT_EQ(back.zones_greedy, 1u);
  EXPECT_EQ(back.zones_identity, 1u);
}

TEST(WorkerResultTest, ErrorCategoriesRoundTrip) {
  for (const ErrorCategory cat :
       {ErrorCategory::None, ErrorCategory::InvalidInput,
        ErrorCategory::Internal, ErrorCategory::Infeasible}) {
    WorkerResult r;
    r.valid = true;
    r.category = cat;
    r.error = "why";
    const std::string path = "serve_test_cat.json";
    {
      std::ofstream os(path);
      os << dump_worker_result(r) << "\n";
    }
    const WorkerResult back = load_worker_result(path);
    std::remove(path.c_str());
    ASSERT_TRUE(back.valid);
    EXPECT_EQ(back.category, cat);
    EXPECT_EQ(back.error, "why");
  }
}

TEST(WorkerResultTest, MissingOrTornFileIsInvalidNeverAThrow) {
  // Missing: the crashed-before-reporting interpretation.
  EXPECT_FALSE(load_worker_result("no_such_result.json").valid);
  // Torn/corrupt: same, and load never throws.
  const std::string path = "serve_test_torn.json";
  {
    std::ofstream os(path);
    os << "{\"category\": \"none\", \"degr";  // torn mid-write
  }
  EXPECT_FALSE(load_worker_result(path).valid);
  std::remove(path.c_str());
}

// ----------------------------------------------------------- job states

TEST(JobStateTest, TerminalAndAcceptableSets) {
  using S = JobState;
  for (const S s : {S::Queued, S::Running, S::Backoff}) {
    EXPECT_FALSE(is_terminal(s)) << to_string(s);
    EXPECT_FALSE(is_acceptable_terminal(s)) << to_string(s);
  }
  for (const S s : {S::Done, S::Degraded, S::Infeasible, S::Failed,
                    S::Quarantined, S::Drained}) {
    EXPECT_TRUE(is_terminal(s)) << to_string(s);
  }
  for (const S s : {S::Done, S::Degraded, S::Infeasible, S::Quarantined}) {
    EXPECT_TRUE(is_acceptable_terminal(s)) << to_string(s);
  }
  EXPECT_FALSE(is_acceptable_terminal(S::Failed));
  EXPECT_FALSE(is_acceptable_terminal(S::Drained));
}

TEST(JobStateTest, StatusFrameCarriesTheContract) {
  Job job;
  job.spec.id = "j3";
  job.spec.out = "out.ctree";
  job.state = JobState::Done;
  job.attempts = 2;
  job.last = classify_exit(true, 0, false, 0);
  job.last_result.valid = true;
  job.last_result.resumed_zones = 5;
  const json::Value v = json::parse(status_frame(job));
  EXPECT_TRUE(v.get_bool_or("ok", false));
  const json::Value* j = v.find("job");
  ASSERT_NE(j, nullptr);
  EXPECT_EQ(j->get_string("id", "t"), "j3");
  EXPECT_EQ(j->get_string("state", "t"), "done");
  EXPECT_EQ(j->get_number("attempts", "t"), 2.0);
  EXPECT_TRUE(j->get_bool_or("acceptable", false));
  EXPECT_EQ(j->get_u64_or("resumed_zones", 0), 5u);
  EXPECT_EQ(j->get_string("out", "t"), "out.ctree");
}

// -------------------------------------------------------------- journal

JobSpec journal_spec(const std::string& id) {
  JobSpec s;
  s.id = id;
  s.tree = id + ".ctree";
  s.algo = "wavemin-f";
  s.kappa = 15.0;
  s.samples = 16;
  s.deadline_ms = 2500.0;
  s.max_retries = 2;
  s.seed = 7;
  return s;
}

// Record equality via the codec itself: two records are the same iff
// they encode to the same line (the codec is deterministic).
bool same_record(const JournalRecord& a, const JournalRecord& b) {
  return encode_record(a) == encode_record(b);
}

// A journal exercising every record type, including a terminal error
// string that contains the CRC marker text — the trailer must still be
// found at the line's end, not inside the body.
std::vector<JournalRecord> journal_fixture() {
  std::vector<JournalRecord> recs;
  JournalRecord v;
  v.type = JournalRecord::Type::Version;
  recs.push_back(v);

  JournalRecord admit;
  admit.type = JournalRecord::Type::Admit;
  admit.id = "j1";
  admit.fp = 18446744073709551615ULL;  // u64 fingerprints survive exactly
  admit.spec = journal_spec("j1");
  recs.push_back(admit);

  JournalRecord launch;
  launch.type = JournalRecord::Type::Launch;
  launch.id = "j1";
  launch.attempt = 1;
  recs.push_back(launch);

  JournalRecord exit_r;
  exit_r.type = JournalRecord::Type::Exit;
  exit_r.id = "j1";
  exit_r.attempt = 1;
  recs.push_back(exit_r);

  JournalRecord launch2 = launch;
  launch2.attempt = 2;
  recs.push_back(launch2);

  JournalRecord term;
  term.type = JournalRecord::Type::Term;
  term.id = "j1";
  term.state = JobState::Failed;
  term.error = "looks like \" crc 00000000\" but is payload";
  recs.push_back(term);

  JournalRecord snap;
  snap.type = JournalRecord::Type::Snapshot;
  snap.id = "j2";
  snap.fp = 42;
  snap.spec = journal_spec("j2");
  snap.attempt = 3;
  snap.state = JobState::Done;
  recs.push_back(snap);

  JournalRecord shard;
  shard.type = JournalRecord::Type::Shard;
  shard.id = "j1";
  shard.shard = 1;
  shard.shard_state = ShardState::Poisoned;
  recs.push_back(shard);

  JournalRecord brown;
  brown.type = JournalRecord::Type::Brownout;
  brown.tier = 2;
  recs.push_back(brown);
  return recs;
}

std::string journal_text(const std::vector<JournalRecord>& recs) {
  std::string text;
  for (const JournalRecord& r : recs) {
    text += encode_record(r);
    text += '\n';
  }
  return text;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(JournalTest, RecordRoundTripsEveryType) {
  for (const JournalRecord& rec : journal_fixture()) {
    const std::string line = encode_record(rec);
    JournalRecord back;
    ASSERT_TRUE(decode_record(line, &back)) << line;
    EXPECT_TRUE(same_record(rec, back)) << line;
  }
  // Spec fields survive the Admit round-trip individually, not just
  // codec-to-codec.
  JournalRecord admit = journal_fixture()[1];
  JournalRecord back;
  ASSERT_TRUE(decode_record(encode_record(admit), &back));
  EXPECT_EQ(back.fp, admit.fp);
  EXPECT_EQ(back.spec.tree, "j1.ctree");
  EXPECT_EQ(back.spec.algo, "wavemin-f");
  EXPECT_EQ(back.spec.kappa, 15.0);
  EXPECT_EQ(back.spec.samples, 16);
  EXPECT_EQ(back.spec.deadline_ms, 2500.0);
  EXPECT_EQ(back.spec.max_retries, 2);
  EXPECT_EQ(back.spec.seed, 7u);
}

TEST(JournalTest, CrcRejectsCorruption) {
  JournalRecord term;
  term.type = JournalRecord::Type::Term;
  term.id = "j1";
  term.state = JobState::Done;
  const std::string line = encode_record(term);
  JournalRecord out;
  ASSERT_TRUE(decode_record(line, &out));
  // Any single-byte flip — body or trailer — must be rejected.
  for (std::size_t i = 0; i < line.size(); ++i) {
    std::string bad = line;
    bad[i] = bad[i] == 'x' ? 'y' : 'x';
    if (bad == line) continue;
    EXPECT_FALSE(decode_record(bad, &out)) << "flip at " << i;
  }
  EXPECT_FALSE(decode_record("", &out));
  EXPECT_FALSE(decode_record("{}", &out));  // no trailer
  EXPECT_FALSE(decode_record(line + "x", &out));  // trailing garbage
  EXPECT_FALSE(decode_record(line.substr(0, line.size() - 1), &out));
}

TEST(JournalTest, DecodeRejectsValidCrcOverBadBody) {
  // A structurally broken body with a *correct* CRC (e.g. written by a
  // newer daemon) must fail decode, not crash replay.
  auto with_crc = [](const std::string& body) {
    char hex[16];
    std::snprintf(hex, sizeof hex, "%08x",
                  crc32(body.data(), body.size()));
    return body + " crc " + hex;
  };
  JournalRecord out;
  EXPECT_FALSE(decode_record(with_crc("{\"t\":\"future_type\",\"id\":\"j\"}"),
                             &out));
  EXPECT_FALSE(decode_record(with_crc("{\"t\":\"term\",\"id\":\"j\"}"),
                             &out));  // term without a state
  EXPECT_FALSE(decode_record(
      with_crc("{\"t\":\"term\",\"id\":\"j\",\"state\":\"running\"}"),
      &out));  // term with a live state
  EXPECT_FALSE(decode_record(with_crc("[1,2]"), &out));
  EXPECT_FALSE(decode_record(with_crc("not json"), &out));
  EXPECT_FALSE(decode_record(
      with_crc("{\"t\":\"v\",\"v\":\"wavemin.journal/v2\"}"), &out));
}

TEST(JournalTest, SyncPolicyParse) {
  SyncPolicy p;
  ASSERT_TRUE(parse_sync_policy("always", &p));
  EXPECT_EQ(p, SyncPolicy::Always);
  ASSERT_TRUE(parse_sync_policy("batch", &p));
  EXPECT_EQ(p, SyncPolicy::Batch);
  ASSERT_TRUE(parse_sync_policy("off", &p));
  EXPECT_EQ(p, SyncPolicy::Off);
  EXPECT_FALSE(parse_sync_policy("sometimes", &p));
  EXPECT_FALSE(parse_sync_policy("", &p));
  for (const SyncPolicy q :
       {SyncPolicy::Always, SyncPolicy::Batch, SyncPolicy::Off}) {
    SyncPolicy back;
    ASSERT_TRUE(parse_sync_policy(to_string(q), &back));
    EXPECT_EQ(back, q);
  }
}

TEST(JournalTest, ReplayDropsTornTailKeepsPrefix) {
  const std::vector<JournalRecord> recs = journal_fixture();
  const std::string path = "serve_test_journal_torn.wmj";
  // A crash mid-append: the last record is only half on disk.
  const std::string half = encode_record(recs.back());
  write_file(path, journal_text({recs[0], recs[1], recs[2]}) +
                       half.substr(0, half.size() / 2));
  ReplayStats st;
  const std::vector<JournalRecord> back = replay_journal(path, &st);
  std::remove(path.c_str());
  ASSERT_EQ(st.applied, 3u);
  EXPECT_EQ(st.dropped, 1u);
  EXPECT_TRUE(st.torn);
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_TRUE(same_record(back[i], recs[i])) << i;
  }
}

TEST(JournalTest, ReplayDistrustsCompleteButUnterminatedTail) {
  // A complete last record missing its newline is still dropped: the
  // crash landed mid-append and a later append would concatenate onto
  // it, so the replay marks the file torn (boot compacts it).
  const std::vector<JournalRecord> recs = journal_fixture();
  const std::string path = "serve_test_journal_nolf.wmj";
  write_file(path, journal_text({recs[0], recs[1]}) +
                       encode_record(recs[2]));  // no trailing '\n'
  ReplayStats st;
  const std::vector<JournalRecord> back = replay_journal(path, &st);
  std::remove(path.c_str());
  EXPECT_EQ(st.applied, 2u);
  EXPECT_EQ(back.size(), 2u);
  EXPECT_TRUE(st.torn);
}

TEST(JournalTest, ReplayRequiresTheVersionRecordFirst) {
  const std::vector<JournalRecord> recs = journal_fixture();
  const std::string path = "serve_test_journal_nover.wmj";
  write_file(path, journal_text({recs[1], recs[2]}));  // no version
  ReplayStats st;
  EXPECT_TRUE(replay_journal(path, &st).empty());
  std::remove(path.c_str());
  EXPECT_EQ(st.applied, 0u);
  EXPECT_EQ(st.dropped, 2u);
  // Missing file: an empty journal, not an error.
  EXPECT_TRUE(replay_journal("no_such_journal.wmj", &st).empty());
  EXPECT_FALSE(st.torn);
}

TEST(JournalTest, TruncationFuzzEveryByteBoundary) {
  // The satellite contract: truncate the journal at EVERY byte
  // boundary; replay must never crash and must return a consistent
  // prefix — exactly the first `applied` records of the full journal,
  // so the recovered job table is always a table the daemon really had.
  const std::vector<JournalRecord> full = journal_fixture();
  const std::string text = journal_text(full);
  const std::string path = "serve_test_journal_fuzz.wmj";
  // Cuts landing exactly after a record's newline leave a clean
  // shorter journal; every other cut is a torn tail.
  std::vector<bool> clean_cut(text.size() + 1, false);
  clean_cut[0] = true;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') clean_cut[i + 1] = true;
  }
  for (std::size_t cut = 0; cut <= text.size(); ++cut) {
    write_file(path, text.substr(0, cut));
    ReplayStats st;
    const std::vector<JournalRecord> back = replay_journal(path, &st);
    ASSERT_EQ(back.size(), st.applied) << "cut=" << cut;
    ASSERT_LE(st.applied, full.size()) << "cut=" << cut;
    for (std::size_t i = 0; i < back.size(); ++i) {
      ASSERT_TRUE(same_record(back[i], full[i]))
          << "cut=" << cut << " record=" << i;
    }
    // Folding a truncated journal never throws either (recovery path).
    const auto table = fold_journal(back);
    ASSERT_LE(table.size(), 2u) << "cut=" << cut;
    // A cut on a record boundary is a clean shorter journal; a cut
    // inside a record is a torn tail (boot compacts it before
    // appending). Either way the applied prefix above held.
    if (clean_cut[cut]) {
      EXPECT_FALSE(st.torn) << "cut=" << cut;
    } else if (cut > 0) {
      EXPECT_TRUE(st.torn || st.applied == 0) << "cut=" << cut;
    }
    if (cut == text.size()) EXPECT_EQ(st.applied, full.size());
  }
  std::remove(path.c_str());
}

TEST(JournalTest, FoldFollowsTheLiveStateMachine) {
  std::vector<JournalRecord> recs = journal_fixture();
  // After the fixture: j1 admitted, launched twice with one exit
  // between, then terminal Failed; j2 snapshotted Done.
  auto table = fold_journal(recs);
  ASSERT_EQ(table.size(), 2u);
  EXPECT_EQ(table[0].first, "j1");  // first-admit order
  const RecoveredJob& j1 = table[0].second;
  EXPECT_EQ(j1.attempts, 2);
  EXPECT_FALSE(j1.mid_attempt);
  EXPECT_TRUE(j1.terminal);
  EXPECT_EQ(j1.state, JobState::Failed);
  EXPECT_EQ(j1.spec.tree, "j1.ctree");
  EXPECT_EQ(j1.fp, 18446744073709551615ULL);
  const RecoveredJob& j2 = table[1].second;
  EXPECT_TRUE(j2.terminal);
  EXPECT_EQ(j2.state, JobState::Done);
  EXPECT_EQ(j2.attempts, 3);

  // Cut after the second launch: j1 is mid-attempt (the daemon died
  // with a worker in flight) — recovery rewinds it to Backoff.
  auto mid = fold_journal({recs[0], recs[1], recs[2], recs[3], recs[4]});
  ASSERT_EQ(mid.size(), 1u);
  EXPECT_TRUE(mid[0].second.mid_attempt);
  EXPECT_EQ(mid[0].second.attempts, 2);
  EXPECT_FALSE(mid[0].second.terminal);

  // Re-admission resets the entry (a failed job resubmitted), exactly
  // like the live handle_submit path.
  std::vector<JournalRecord> readmit = recs;
  JournalRecord again = recs[1];  // admit j1 again
  readmit.push_back(again);
  auto re = fold_journal(readmit);
  ASSERT_EQ(re.size(), 2u);
  EXPECT_EQ(re[0].first, "j1");  // keeps its original slot
  EXPECT_FALSE(re[0].second.terminal);
  EXPECT_EQ(re[0].second.attempts, 0);
  EXPECT_EQ(re[0].second.state, JobState::Queued);

  // Lifecycle records whose admit was lost to a torn tail are ignored.
  JournalRecord orphan;
  orphan.type = JournalRecord::Type::Launch;
  orphan.id = "ghost";
  orphan.attempt = 1;
  auto g = fold_journal({recs[0], orphan});
  EXPECT_TRUE(g.empty());
}

TEST(JournalTest, AppendReopenReplayRoundTrip) {
  const std::string path = "serve_test_journal_rt.wmj";
  std::remove(path.c_str());
  const std::vector<JournalRecord> recs = journal_fixture();
  {
    Journal j;
    ASSERT_TRUE(j.open(path, SyncPolicy::Always, nullptr));
    ASSERT_TRUE(j.append(recs[1]));  // admit
    ASSERT_TRUE(j.append(recs[2]));  // launch
    EXPECT_GT(j.bytes(), 0u);
  }  // destructor closes
  {
    // Reopen across a "restart": no second version record, appends
    // land after the existing tail.
    Journal j;
    ASSERT_TRUE(j.open(path, SyncPolicy::Batch, nullptr));
    ASSERT_TRUE(j.append(recs[5]));  // term
    ASSERT_TRUE(j.flush());
  }
  ReplayStats st;
  const std::vector<JournalRecord> back = replay_journal(path, &st);
  ASSERT_EQ(back.size(), 4u);
  EXPECT_FALSE(st.torn);
  EXPECT_EQ(back[0].type, JournalRecord::Type::Version);
  EXPECT_TRUE(same_record(back[1], recs[1]));
  EXPECT_TRUE(same_record(back[2], recs[2]));
  EXPECT_TRUE(same_record(back[3], recs[5]));
  std::remove(path.c_str());
}

TEST(JournalTest, RewriteCompactsAndStaysAppendable) {
  const std::string path = "serve_test_journal_cmp.wmj";
  std::remove(path.c_str());
  const std::vector<JournalRecord> recs = journal_fixture();
  Journal j;
  ASSERT_TRUE(j.open(path, SyncPolicy::Off, nullptr));
  for (int k = 0; k < 20; ++k) {
    ASSERT_TRUE(j.append(recs[2]));  // launch spam to grow the file
  }
  const std::uint64_t before = j.bytes();
  // Compact down to one snapshot; the journal must stay appendable.
  JournalRecord snap = recs[6];
  ASSERT_TRUE(j.rewrite({snap}));
  EXPECT_LT(j.bytes(), before);
  ASSERT_TRUE(j.append(recs[1]));
  j.close();
  ReplayStats st;
  const std::vector<JournalRecord> back = replay_journal(path, &st);
  std::remove(path.c_str());
  ASSERT_EQ(back.size(), 3u);
  EXPECT_FALSE(st.torn);
  EXPECT_EQ(back[0].type, JournalRecord::Type::Version);
  EXPECT_TRUE(same_record(back[1], snap));
  EXPECT_TRUE(same_record(back[2], recs[1]));
}

// ----------------------------------------------------------- pool wire

TEST(PoolWireTest, CommandRoundTripsEveryKind) {
  PoolCommand shard;
  shard.kind = PoolCommand::Kind::Shard;
  shard.spec = journal_spec("j1");
  shard.shard_count = 4;
  shard.shard_index = 2;
  shard.checkpoint = "spool/j1.s2.wmck";
  shard.deadline_ms = 1500.0;
  shard.poison = true;
  shard.stall = true;
  shard.kill = true;

  PoolCommand merge;
  merge.kind = PoolCommand::Kind::Merge;
  merge.spec = journal_spec("j1");
  merge.shard_count = 4;
  merge.resume = {"spool/j1.s0.wmck", "spool/j1.s3.wmck"};
  merge.identity_shards = {1, 2};
  merge.out = "spool/j1.out.ctree";
  merge.result_path = "spool/j1.result";
  merge.deadline_ms = 900.0;

  PoolCommand ping;
  ping.kind = PoolCommand::Kind::Ping;
  ping.seq = 41;

  PoolCommand exit_c;
  exit_c.kind = PoolCommand::Kind::Exit;

  for (const PoolCommand& cmd : {shard, merge, ping, exit_c}) {
    const std::string line = encode_command(cmd);
    PoolCommand back;
    ASSERT_TRUE(decode_command(line, &back)) << line;
    // The codec is deterministic, so re-encoding proves every field
    // survived (same idiom as same_record above).
    EXPECT_EQ(encode_command(back), line) << line;
  }

  PoolCommand back;
  ASSERT_TRUE(decode_command(encode_command(shard), &back));
  EXPECT_EQ(back.kind, PoolCommand::Kind::Shard);
  EXPECT_EQ(back.spec.tree, "j1.ctree");
  EXPECT_EQ(back.shard_count, 4);
  EXPECT_EQ(back.shard_index, 2);
  EXPECT_EQ(back.checkpoint, "spool/j1.s2.wmck");
  EXPECT_TRUE(back.poison);
  EXPECT_TRUE(back.stall);
  EXPECT_TRUE(back.kill);
  ASSERT_TRUE(decode_command(encode_command(merge), &back));
  EXPECT_EQ(back.resume, merge.resume);
  EXPECT_EQ(back.identity_shards, merge.identity_shards);
  EXPECT_EQ(back.out, "spool/j1.out.ctree");
  EXPECT_EQ(back.result_path, "spool/j1.result");
}

TEST(PoolWireTest, EventRoundTripsEveryKind) {
  PoolEvent ready;
  ready.kind = PoolEvent::Kind::Ready;
  ready.characterized = 18;

  PoolEvent sd;
  sd.kind = PoolEvent::Kind::ShardDone;
  sd.job = "j1";
  sd.shard = 3;
  sd.code = 4;
  sd.error = "injected";

  PoolEvent md;
  md.kind = PoolEvent::Kind::MergeDone;
  md.job = "j1";
  md.code = 0;
  md.resumed_zones = 77;

  PoolEvent pong;
  pong.kind = PoolEvent::Kind::Pong;
  pong.seq = 41;

  PoolEvent fatal;
  fatal.kind = PoolEvent::Kind::Fatal;
  fatal.error = "blob: bad magic";

  for (const PoolEvent& ev : {ready, sd, md, pong, fatal}) {
    const std::string line = encode_event(ev);
    PoolEvent back;
    ASSERT_TRUE(decode_event(line, &back)) << line;
    EXPECT_EQ(encode_event(back), line) << line;
  }

  PoolEvent back;
  ASSERT_TRUE(decode_event(encode_event(sd), &back));
  EXPECT_EQ(back.job, "j1");
  EXPECT_EQ(back.shard, 3);
  EXPECT_EQ(back.code, 4);
  EXPECT_EQ(back.error, "injected");
  ASSERT_TRUE(decode_event(encode_event(md), &back));
  EXPECT_EQ(back.resumed_zones, 77u);
}

TEST(PoolWireTest, GarbledLinesAreRejectedNotThrown) {
  // The supervisor treats a garbled worker line as a crashed worker;
  // decode must return false for anything malformed, never throw.
  PoolCommand cmd;
  PoolEvent ev;
  for (const char* line :
       {"", "{", "[]", "{\"cmd\":\"warp\"}", "{\"ev\":\"warp\"}",
        "{\"cmd\":\"shard\"}", "{\"ev\":\"shard_done\",\"job\":\"j\"}",
        "{\"seq\":1}", "not json at all"}) {
    EXPECT_FALSE(decode_command(line, &cmd)) << line;
    EXPECT_FALSE(decode_event(line, &ev)) << line;
  }
  // Lenient about extras, same as wavemin.jobs/v1.
  EXPECT_TRUE(decode_command("{\"cmd\":\"exit\",\"future\":1}", &cmd));
  EXPECT_TRUE(decode_event("{\"ev\":\"pong\",\"seq\":2,\"x\":[]}", &ev));
}

// ---------------------------------------------------------- pool policy

PoolPolicy pool_policy(int workers) {
  PoolPolicy p;
  p.workers = workers;
  p.shard_max_retries = 2;
  p.stall_timeout_ms = 1000.0;
  p.ping_interval_ms = 100.0;
  p.ping_timeout_ms = 200.0;
  p.collapse_respawns = 3;
  p.retry_base_ms = 50.0;
  p.retry_cap_ms = 400.0;
  return p;
}

PoolSupervisor booted_pool(PoolPolicy policy, double now) {
  PoolSupervisor s(policy);
  for (int w = 0; w < s.workers(); ++w) {
    s.worker_spawned(w, 100 + w, now);
    s.worker_ready(w, now);
  }
  return s;
}

TEST(PoolTest, ShardsFanOutThenMergeCarriesDoneShards) {
  PoolSupervisor s = booted_pool(pool_policy(2), 0.0);
  s.admit("j", 3, 0.0, {});

  PoolSupervisor::Assignment a1, a2, a3;
  ASSERT_TRUE(s.next_assignment(0.0, &a1));
  ASSERT_TRUE(s.next_assignment(0.0, &a2));
  EXPECT_FALSE(s.next_assignment(0.0, &a3));  // both workers busy
  EXPECT_EQ(a1.kind, PoolSupervisor::Assignment::Kind::Shard);
  EXPECT_NE(a1.worker, a2.worker);
  EXPECT_NE(a1.shard, a2.shard);
  EXPECT_EQ(a1.shard_count, 3);

  EXPECT_EQ(s.shard_done(a1.worker, "j", a1.shard, 0, 1.0),
            PoolSupervisor::ShardOutcome::Ok);
  PoolSupervisor::Assignment a4;
  ASSERT_TRUE(s.next_assignment(1.0, &a4));  // freed worker gets shard 2
  EXPECT_EQ(a4.kind, PoolSupervisor::Assignment::Kind::Shard);
  EXPECT_EQ(a4.worker, a1.worker);

  EXPECT_EQ(s.shard_done(a2.worker, "j", a2.shard, 0, 2.0),
            PoolSupervisor::ShardOutcome::Ok);
  EXPECT_EQ(s.shard_done(a4.worker, "j", a4.shard, 0, 3.0),
            PoolSupervisor::ShardOutcome::Ok);

  PoolSupervisor::Assignment m;
  ASSERT_TRUE(s.next_assignment(4.0, &m));
  EXPECT_EQ(m.kind, PoolSupervisor::Assignment::Kind::Merge);
  EXPECT_EQ(m.done_shards, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(m.identity_shards.empty());
  EXPECT_EQ(s.merge_done(m.worker, "j", 0, 5.0),
            PoolSupervisor::MergeOutcome::Terminal);
}

TEST(PoolTest, WorkerDeathRequeuesOnlyTheVictimShard) {
  PoolSupervisor s = booted_pool(pool_policy(3), 0.0);
  s.admit("j", 2, 0.0, {});
  PoolSupervisor::Assignment a1, a2;
  ASSERT_TRUE(s.next_assignment(0.0, &a1));
  ASSERT_TRUE(s.next_assignment(0.0, &a2));

  const PoolSupervisor::Held held = s.worker_dead(a1.worker, 1.0);
  EXPECT_EQ(held.job, "j");
  EXPECT_EQ(held.shard, a1.shard);
  EXPECT_EQ(s.workers_to_respawn(), std::vector<int>{a1.worker});

  // Only the victim's stripe went back to Pending; the sibling keeps
  // its assignment and, once done, its result.
  const PoolJobPlan* p = s.plan("j");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->shards[static_cast<std::size_t>(a1.shard)].state,
            ShardState::Pending);
  EXPECT_EQ(p->shards[static_cast<std::size_t>(a2.shard)].state,
            ShardState::Assigned);

  // Re-assignment (past the backoff) prefers a worker that is not the
  // one that just lost the stripe — worker 2 is idle, so it wins even
  // after the victim slot respawns.
  s.worker_spawned(a1.worker, 200, 2.0);
  s.worker_ready(a1.worker, 2.0);
  PoolSupervisor::Assignment r;
  ASSERT_TRUE(s.next_assignment(1000.0, &r));
  EXPECT_EQ(r.shard, a1.shard);
  EXPECT_NE(r.worker, a1.worker);
  EXPECT_EQ(p->shards[static_cast<std::size_t>(a1.shard)].attempts, 2);
}

TEST(PoolTest, RetriesExhaustedPoisonsAndMergeForcesIdentity) {
  PoolPolicy pol = pool_policy(1);
  pol.shard_max_retries = 1;
  PoolSupervisor s = booted_pool(pol, 0.0);
  s.admit("j", 2, 0.0, {});

  // Shard 0 fails its first attempt: retried with backoff.
  PoolSupervisor::Assignment a;
  ASSERT_TRUE(s.next_assignment(0.0, &a));
  EXPECT_EQ(s.shard_done(a.worker, "j", a.shard, 4, 1.0),
            PoolSupervisor::ShardOutcome::Retry);
  // Second failure exhausts the budget: poisoned, not retried again.
  double now = 1000.0;
  ASSERT_TRUE(s.next_assignment(now, &a));
  EXPECT_EQ(a.shard, 0);
  EXPECT_EQ(s.shard_done(a.worker, "j", 0, 4, now),
            PoolSupervisor::ShardOutcome::Poisoned);

  // The sibling completes normally; the merge then runs with the
  // poisoned stripe forced to identity instead of failing the job.
  now = 2000.0;
  ASSERT_TRUE(s.next_assignment(now, &a));
  EXPECT_EQ(a.shard, 1);
  EXPECT_EQ(s.shard_done(a.worker, "j", 1, 0, now),
            PoolSupervisor::ShardOutcome::Ok);
  PoolSupervisor::Assignment m;
  ASSERT_TRUE(s.next_assignment(now, &m));
  EXPECT_EQ(m.kind, PoolSupervisor::Assignment::Kind::Merge);
  EXPECT_EQ(m.identity_shards, std::vector<int>{0});
  EXPECT_EQ(m.done_shards, std::vector<int>{1});
}

TEST(PoolTest, JournalPoisonedStripesSkipTheRetryBudget) {
  PoolSupervisor s = booted_pool(pool_policy(2), 0.0);
  // Journal recovery already proved stripe 1 poisonous in a previous
  // daemon life; it must go straight to the identity ladder.
  s.admit("j", 3, 0.0, {1});
  const PoolJobPlan* p = s.plan("j");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->shards[1].state, ShardState::Poisoned);

  PoolSupervisor::Assignment a;
  ASSERT_TRUE(s.next_assignment(0.0, &a));
  EXPECT_EQ(s.shard_done(a.worker, "j", a.shard, 0, 1.0),
            PoolSupervisor::ShardOutcome::Ok);
  ASSERT_TRUE(s.next_assignment(1.0, &a));
  EXPECT_EQ(s.shard_done(a.worker, "j", a.shard, 0, 2.0),
            PoolSupervisor::ShardOutcome::Ok);
  PoolSupervisor::Assignment m;
  ASSERT_TRUE(s.next_assignment(3.0, &m));
  EXPECT_EQ(m.kind, PoolSupervisor::Assignment::Kind::Merge);
  EXPECT_EQ(m.identity_shards, std::vector<int>{1});
}

TEST(PoolTest, InfeasibleShortCircuitSkipsUnstartedShards) {
  PoolSupervisor s = booted_pool(pool_policy(1), 0.0);
  s.admit("j", 4, 0.0, {});
  PoolSupervisor::Assignment a;
  ASSERT_TRUE(s.next_assignment(0.0, &a));
  // Exit 2: the design itself is infeasible — no point solving the
  // other stripes, the merge re-derives the verdict from the design.
  EXPECT_EQ(s.shard_done(a.worker, "j", a.shard, 2, 1.0),
            PoolSupervisor::ShardOutcome::Ok);
  PoolSupervisor::Assignment m;
  ASSERT_TRUE(s.next_assignment(2.0, &m));
  EXPECT_EQ(m.kind, PoolSupervisor::Assignment::Kind::Merge);
  EXPECT_TRUE(m.identity_shards.empty());
}

TEST(PoolTest, MergeRetriesThenFallsBackToForkPath) {
  PoolSupervisor s = booted_pool(pool_policy(1), 0.0);
  s.admit("j", 1, 0.0, {});
  PoolSupervisor::Assignment a;
  ASSERT_TRUE(s.next_assignment(0.0, &a));
  ASSERT_EQ(s.shard_done(a.worker, "j", a.shard, 0, 1.0),
            PoolSupervisor::ShardOutcome::Ok);

  // Exit 4 is retriable; the budget matches the shard retry budget,
  // after which the server falls back to fork-per-attempt.
  PoolSupervisor::Assignment m;
  ASSERT_TRUE(s.next_assignment(2.0, &m));
  EXPECT_EQ(s.merge_done(m.worker, "j", 4, 3.0),
            PoolSupervisor::MergeOutcome::Retry);
  ASSERT_TRUE(s.next_assignment(4.0, &m));
  EXPECT_EQ(s.merge_done(m.worker, "j", 4, 5.0),
            PoolSupervisor::MergeOutcome::Retry);
  ASSERT_TRUE(s.next_assignment(6.0, &m));
  EXPECT_EQ(s.merge_done(m.worker, "j", 4, 7.0),
            PoolSupervisor::MergeOutcome::Exhausted);
  s.forget("j");  // what the server does on Exhausted: back to fork path

  // Degraded completion is terminal, not retriable: exit 3 means the
  // merge delivered a tree (with identity stripes), code preserved.
  s.admit("k", 1, 0.0, {});
  ASSERT_TRUE(s.next_assignment(8.0, &a));
  ASSERT_EQ(s.shard_done(a.worker, "k", a.shard, 0, 9.0),
            PoolSupervisor::ShardOutcome::Ok);
  ASSERT_TRUE(s.next_assignment(10.0, &m));
  EXPECT_EQ(s.merge_done(m.worker, "k", 3, 11.0),
            PoolSupervisor::MergeOutcome::Terminal);
}

TEST(PoolTest, StaleEventsAreIgnoredButFreeTheSlot) {
  PoolSupervisor s = booted_pool(pool_policy(1), 0.0);
  s.admit("j", 1, 0.0, {});
  PoolSupervisor::Assignment a;
  ASSERT_TRUE(s.next_assignment(0.0, &a));
  s.forget("j");  // drained or handed to the fork path mid-run
  EXPECT_FALSE(s.has("j"));
  // The worker's late done event is stale — but the slot goes back to
  // Idle so the pool keeps serving other jobs.
  EXPECT_EQ(s.shard_done(a.worker, "j", a.shard, 0, 1.0),
            PoolSupervisor::ShardOutcome::Ignored);
  EXPECT_EQ(s.slot(a.worker).state, PoolWorkerSlot::State::Idle);
}

TEST(PoolTest, IdleHeartbeatTimesOutThenPongRescues) {
  PoolSupervisor s = booted_pool(pool_policy(2), 0.0);
  // No ping due inside the interval.
  EXPECT_TRUE(s.workers_to_ping(50.0).empty());
  // Past the interval both idle workers are pinged, exactly once.
  EXPECT_EQ(s.workers_to_ping(150.0), (std::vector<int>{0, 1}));
  EXPECT_TRUE(s.workers_to_ping(160.0).empty());  // ping outstanding

  // Worker 1 answers; worker 0 stays silent. The kill fires at
  // ping_sent (150) + ping_timeout_ms (200), not a moment earlier.
  s.worker_pong(1, s.slot(1).ping_seq, 180.0);
  EXPECT_TRUE(s.stalled_workers(349.0).empty());
  EXPECT_EQ(s.stalled_workers(350.0), std::vector<int>{0});

  // The pong also re-arms worker 1's next ping cycle.
  EXPECT_EQ(s.workers_to_ping(300.0), std::vector<int>{1});
}

TEST(PoolTest, SilentStartupAndBusyStallAreKilled) {
  PoolPolicy pol = pool_policy(2);
  PoolSupervisor s(pol);
  // Worker 0 forked but never says ready (wedged loading a blob):
  // stalled after stall_timeout_ms.
  s.worker_spawned(0, 100, 0.0);
  EXPECT_TRUE(s.stalled_workers(999.0).empty());
  EXPECT_EQ(s.stalled_workers(1000.0), std::vector<int>{0});

  // Worker 1 goes busy; a job deadline tighter than the stall cap
  // bounds the assignment, so a wedged shard dies with the deadline
  // (300), well before the generic stall cap (1000) would fire.
  s.worker_spawned(1, 101, 0.0);
  s.worker_ready(1, 0.0);
  s.admit("j", 1, 300.0, {});
  PoolSupervisor::Assignment a;
  ASSERT_TRUE(s.next_assignment(0.0, &a));
  EXPECT_EQ(a.worker, 1);
  EXPECT_EQ(a.deadline_ms, 300.0);
  EXPECT_TRUE(s.stalled_workers(299.0).empty());
  EXPECT_EQ(s.stalled_workers(300.0), std::vector<int>{1});
  EXPECT_EQ(s.stalled_workers(1000.0), (std::vector<int>{0, 1}));
}

TEST(PoolTest, CollapseStopsRespawns) {
  PoolPolicy pol = pool_policy(1);
  pol.collapse_respawns = 3;
  PoolSupervisor s = booted_pool(pol, 0.0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(s.collapsed());
    s.worker_dead(0, static_cast<double>(i));
    if (i + 1 < 3) {
      EXPECT_EQ(s.workers_to_respawn(), std::vector<int>{0});
      s.worker_spawned(0, 200 + i, static_cast<double>(i));
      s.worker_ready(0, static_cast<double>(i));
    }
  }
  // Third respawn hits the budget: the pool is collapsed and no slot
  // is offered for respawn — the server degrades to fork-per-attempt.
  EXPECT_TRUE(s.collapsed());
  EXPECT_EQ(s.respawns(), 3);
  EXPECT_TRUE(s.workers_to_respawn().empty());
}

TEST(PoolTest, NextDeadlineTracksTheEarliestTimer) {
  PoolSupervisor s = booted_pool(pool_policy(2), 0.0);
  // Two idle workers: the next timer is the ping due instant.
  EXPECT_EQ(s.next_deadline_ms(), 100.0);
  // A busy worker's stall deadline competes with the idle ping.
  s.admit("j", 1, 0.0, {});
  PoolSupervisor::Assignment a;
  ASSERT_TRUE(s.next_assignment(0.0, &a));
  EXPECT_EQ(s.next_deadline_ms(), 100.0);  // ping (100) < stall (1000)
  // A pending shard's backoff expiry is a timer too.
  s.worker_dead(a.worker, 10.0);
  const double next = s.next_deadline_ms();
  EXPECT_GT(next, 10.0);
  EXPECT_LE(next, 10.0 + 400.0 + 100.0);  // within backoff cap + jitter
}

TEST(PoolTest, PoisonTargetFlagRidesEveryAssignment) {
  PoolSupervisor s = booted_pool(pool_policy(1), 0.0);
  s.admit("j", 2, 0.0, {});
  s.mark_poison_target("j", 1);
  PoolSupervisor::Assignment a;
  for (int runs = 0; runs < 2; ++runs) {
    ASSERT_TRUE(s.next_assignment(0.0, &a));
    EXPECT_EQ(a.poison, a.shard == 1) << "shard " << a.shard;
    ASSERT_EQ(s.shard_done(a.worker, "j", a.shard, 0, 1.0),
              PoolSupervisor::ShardOutcome::Ok);
  }
}

TEST(JournalTest, ShardRecordsFoldIntoPoisonedStripes) {
  JournalRecord v;
  v.type = JournalRecord::Type::Version;
  JournalRecord admit;
  admit.type = JournalRecord::Type::Admit;
  admit.id = "j1";
  admit.spec = journal_spec("j1");

  JournalRecord done;
  done.type = JournalRecord::Type::Shard;
  done.id = "j1";
  done.shard = 0;
  done.shard_state = ShardState::Done;
  JournalRecord poisoned;
  poisoned.type = JournalRecord::Type::Shard;
  poisoned.id = "j1";
  poisoned.shard = 2;
  poisoned.shard_state = ShardState::Poisoned;
  // An orphan shard record (admit lost to a torn tail) is ignored.
  JournalRecord orphan = poisoned;
  orphan.id = "ghost";

  // Duplicate poisoned records (replayed journal) must not duplicate
  // the stripe; done records don't mark anything.
  auto table = fold_journal({v, admit, done, poisoned, poisoned, orphan});
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table[0].first, "j1");
  EXPECT_EQ(table[0].second.poisoned_shards, std::vector<int>{2});

  // The codec rejects a shard record with a live (non-terminal) state
  // name that parse_shard_state doesn't know.
  JournalRecord out;
  EXPECT_FALSE(decode_record(
      "{\"t\":\"shard\",\"id\":\"j\",\"shard\":1,\"state\":\"warp\"}"
      " crc 00000000",
      &out));
}

TEST(JournalTest, BrownoutRecordCarriesTierAndFoldIgnoresIt) {
  // The brownout record has no job id — it journals the daemon's
  // degradation tier so a restart resumes degraded service.
  JournalRecord brown;
  brown.type = JournalRecord::Type::Brownout;
  brown.tier = 1;
  JournalRecord back;
  ASSERT_TRUE(decode_record(encode_record(brown), &back));
  EXPECT_EQ(back.type, JournalRecord::Type::Brownout);
  EXPECT_EQ(back.tier, 1);

  // fold_journal builds the job table; brownout is orthogonal state
  // (recovery scans for the last brownout record separately).
  JournalRecord v;
  v.type = JournalRecord::Type::Version;
  JournalRecord admit;
  admit.type = JournalRecord::Type::Admit;
  admit.id = "j1";
  admit.spec = journal_spec("j1");
  const auto table = fold_journal({v, brown, admit, brown});
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table[0].first, "j1");

  // A negative tier is a codec violation, not a crash.
  JournalRecord out;
  EXPECT_FALSE(decode_record(
      "{\"t\":\"brownout\",\"tier\":-1} crc 00000000", &out));
}

TEST(ProtocolTest, ClientFieldRoundTripsAndDefaultsEmpty) {
  JobSpec job;
  job.id = "job-1";
  job.tree = "x.ctree";
  job.client = "paced";
  const Request req = parse_request(dump_submit(job, false));
  EXPECT_EQ(req.job.client, "paced");
  // Old clients never send the field; the daemon sees the anonymous
  // client, and the spec dump omits the key entirely.
  const Request anon = parse_request(
      R"({"v":"wavemin.jobs/v1","op":"submit","tree":"t.ctree"})");
  EXPECT_EQ(anon.job.client, "");
  JobSpec plain;
  plain.id = "j";
  plain.tree = "t.ctree";
  EXPECT_EQ(dump_submit(plain, false).find("client"), std::string::npos);
}

TEST(ProtocolTest, ErrorFrameCarriesRetryAfterHint) {
  const json::Value v = json::parse(
      error_frame("overloaded", "queue full", /*retry_after_ms=*/1500.0));
  EXPECT_FALSE(v.get_bool_or("ok", true));
  EXPECT_DOUBLE_EQ(v.get_number_or("retry_after_ms", 0.0), 1500.0);
  // Errors with no meaningful hint omit the field (old clients parse
  // the frame unchanged).
  const json::Value plain =
      json::parse(error_frame("bad-request", "no tree"));
  EXPECT_EQ(plain.find("retry_after_ms"), nullptr);
}

} // namespace
} // namespace wm::serve
