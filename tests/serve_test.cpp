// Serving layer unit tests (docs/serving.md): supervisor policy
// (exit classification, retry matrix, backoff schedule), the circuit
// breaker, the wavemin.jobs/v1 protocol codec, the worker result file
// round-trip, and the wm::json machinery underneath — all pure logic,
// no sockets and no forks (the e2e lives in scripts/serve_soak.sh).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "serve/breaker.hpp"
#include "serve/job.hpp"
#include "serve/protocol.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace wm::serve {
namespace {

// ------------------------------------------------------------ wm::json

TEST(JsonTest, RoundTripsScalarsAndContainers) {
  const json::Value v =
      json::parse(R"({"a": 1, "b": "x\n", "c": [true, null, 2.5]})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.get_number("a", "t"), 1.0);
  EXPECT_EQ(v.get_string("b", "t"), "x\n");
  const json::Value* c = v.find("c");
  ASSERT_NE(c, nullptr);
  ASSERT_TRUE(c->is_array());
  ASSERT_EQ(c->array.size(), 3u);
  EXPECT_TRUE(c->array[0].boolean);
  EXPECT_EQ(c->array[1].kind, json::Value::Kind::Null);
  EXPECT_EQ(c->array[2].number, 2.5);
  // dump -> parse -> dump is a fixpoint.
  const std::string once = json::dump(v);
  EXPECT_EQ(json::dump(json::parse(once)), once);
}

TEST(JsonTest, NumbersKeepTheirRawSpelling) {
  // 64-bit counters survive exactly — no double rounding on the wire.
  const std::string big = "18446744073709551615";
  const json::Value v = json::parse("{\"n\": " + big + "}");
  EXPECT_EQ(v.get_u64_or("n", 0), 18446744073709551615ULL);
  EXPECT_NE(json::dump(v).find(big), std::string::npos);
}

TEST(JsonTest, ParseErrorsNameTheOffset) {
  try {
    json::parse("{\"a\": }");
    FAIL() << "expected wm::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
  EXPECT_THROW(json::parse(""), Error);
  EXPECT_THROW(json::parse("{} trailing"), Error);
  EXPECT_THROW(json::parse("{\"a\": 1,}"), Error);
}

TEST(JsonTest, ToU64RejectsNegativeAndFractional) {
  EXPECT_THROW(json::to_u64(json::parse("-3"), "t"), Error);
  EXPECT_THROW(json::to_u64(json::parse("1.5"), "t"), Error);
  EXPECT_EQ(json::to_u64(json::parse("42"), "t"), 42u);
}

// -------------------------------------------------- exit classification

TEST(ClassifyExitTest, ContractTable) {
  struct Case {
    bool exited;
    int code;
    bool signaled;
    int sig;
    Attempt::Outcome want;
  };
  const Case cases[] = {
      {true, 0, false, 0, Attempt::Outcome::Done},
      {true, 2, false, 0, Attempt::Outcome::Infeasible},
      {true, 3, false, 0, Attempt::Outcome::Degraded},
      {true, 4, false, 0, Attempt::Outcome::Failed},
      // Exit 1 (usage) and unknown codes are contract violations —
      // failures, never successes.
      {true, 1, false, 0, Attempt::Outcome::Failed},
      {true, 77, false, 0, Attempt::Outcome::Failed},
      {false, 0, true, 9, Attempt::Outcome::Crashed},   // SIGKILL
      {false, 0, true, 11, Attempt::Outcome::Crashed},  // SIGSEGV
      {false, 0, false, 0, Attempt::Outcome::Failed},   // defensive
  };
  for (const Case& c : cases) {
    const Attempt a = classify_exit(c.exited, c.code, c.signaled, c.sig);
    EXPECT_EQ(a.outcome, c.want)
        << "exited=" << c.exited << " code=" << c.code
        << " signaled=" << c.signaled;
    if (c.signaled) {
      EXPECT_EQ(a.signal, c.sig);
      EXPECT_EQ(a.exit_code, -1);
    } else if (c.exited) {
      EXPECT_EQ(a.exit_code, c.code);
      EXPECT_EQ(a.signal, 0);
    }
  }
}

// ------------------------------------------------------------- retryable

TEST(RetryableTest, PolicyMatrix) {
  using O = Attempt::Outcome;
  using C = ErrorCategory;
  // Crashes always retry; Failed retries unless deterministic
  // (InvalidInput); data outcomes never retry.
  EXPECT_TRUE(retryable(O::Crashed, C::Internal));
  EXPECT_TRUE(retryable(O::Crashed, C::InvalidInput));  // no result file
  EXPECT_TRUE(retryable(O::Failed, C::Internal));
  EXPECT_TRUE(retryable(O::Failed, C::None));
  EXPECT_FALSE(retryable(O::Failed, C::InvalidInput));
  EXPECT_FALSE(retryable(O::Done, C::None));
  EXPECT_FALSE(retryable(O::Degraded, C::None));
  EXPECT_FALSE(retryable(O::Infeasible, C::Infeasible));
}

// -------------------------------------------------------------- backoff

TEST(BackoffTest, DoublesAndCaps) {
  const double base = 100.0, cap = 1000.0;
  double prev = 0.0;
  for (int k = 1; k <= 8; ++k) {
    const double d = backoff_ms(k, base, cap, 7, 42);
    const double nominal = std::min(base * (1 << (k - 1)), cap);
    EXPECT_GE(d, nominal) << "attempt " << k;
    EXPECT_LE(d, nominal * 1.5) << "attempt " << k;  // <= 50% jitter
    if (k <= 4) EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(BackoffTest, DeterministicPerSeedAndJobKey) {
  EXPECT_EQ(backoff_ms(2, 100, 5000, 7, 42),
            backoff_ms(2, 100, 5000, 7, 42));
  // Different jobs jitter apart (thundering-herd spreading).
  EXPECT_NE(backoff_ms(2, 100, 5000, 7, 42),
            backoff_ms(2, 100, 5000, 7, 43));
  EXPECT_NE(backoff_ms(2, 100, 5000, 8, 42),
            backoff_ms(2, 100, 5000, 7, 42));
}

// -------------------------------------------------------------- breaker

TEST(BreakerTest, OpensAfterThresholdConsecutiveFailures) {
  CircuitBreaker b(3);
  const std::uint64_t fp = 0xabcd;
  EXPECT_FALSE(b.is_open(fp));
  EXPECT_FALSE(b.record_failure(fp));
  EXPECT_FALSE(b.record_failure(fp));
  EXPECT_FALSE(b.is_open(fp));
  EXPECT_TRUE(b.record_failure(fp));  // the opening transition
  EXPECT_TRUE(b.is_open(fp));
  EXPECT_FALSE(b.record_failure(fp));  // already open: no re-transition
  EXPECT_EQ(b.open_count(), 1u);
  // Other designs are unaffected.
  EXPECT_FALSE(b.is_open(0x1234));
}

TEST(BreakerTest, SuccessResetsTheConsecutiveCount) {
  CircuitBreaker b(2);
  const std::uint64_t fp = 1;
  b.record_failure(fp);
  b.record_success(fp);  // interleaved success: not *consecutive*
  EXPECT_FALSE(b.record_failure(fp));
  EXPECT_FALSE(b.is_open(fp));
  EXPECT_TRUE(b.record_failure(fp));
  EXPECT_TRUE(b.is_open(fp));
  b.record_success(fp);  // closes an open breaker too
  EXPECT_FALSE(b.is_open(fp));
  EXPECT_EQ(b.open_count(), 0u);
}

TEST(BreakerTest, ZeroThresholdDisables) {
  CircuitBreaker b(0);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(b.record_failure(5));
  EXPECT_FALSE(b.is_open(5));
}

TEST(BreakerTest, FingerprintTracksContentAndKnobs) {
  const std::string path = "serve_test_fp.ctree";
  {
    std::ofstream os(path);
    os << "tree bytes v1\n";
  }
  JobSpec a;
  a.tree = path;
  JobSpec b = a;
  EXPECT_EQ(design_fingerprint(a), design_fingerprint(b));
  b.kappa = 15.0;
  EXPECT_NE(design_fingerprint(a), design_fingerprint(b));
  b = a;
  b.algo = "wavemin-f";
  EXPECT_NE(design_fingerprint(a), design_fingerprint(b));
  // Same spec, different content: different design.
  {
    std::ofstream os(path);
    os << "tree bytes v2\n";
  }
  EXPECT_NE(design_fingerprint(a), design_fingerprint(b));
  std::remove(path.c_str());
  // Unreadable input still fingerprints (by path) — its jobs fail
  // deterministically, which is what the breaker exists to catch.
  EXPECT_NE(design_fingerprint(a), 0u);
}

// ------------------------------------------------------------- protocol

TEST(ProtocolTest, SubmitRoundTrip) {
  JobSpec job;
  job.id = "job-1";
  job.tree = "x.ctree";
  job.algo = "wavemin-f";
  job.kappa = 15.0;
  job.samples = 16;
  job.deadline_ms = 2500.0;
  job.max_retries = 5;
  job.seed = 99;
  job.fault_spec = "core.zone_solve=2";
  const Request req = parse_request(dump_submit(job, true));
  EXPECT_EQ(req.op, Request::Op::Submit);
  EXPECT_TRUE(req.wait);
  EXPECT_EQ(req.job.id, "job-1");
  EXPECT_EQ(req.job.tree, "x.ctree");
  EXPECT_EQ(req.job.algo, "wavemin-f");
  EXPECT_EQ(req.job.kappa, 15.0);
  EXPECT_EQ(req.job.samples, 16);
  EXPECT_EQ(req.job.deadline_ms, 2500.0);
  EXPECT_EQ(req.job.max_retries, 5);
  EXPECT_EQ(req.job.seed, 99u);
  EXPECT_EQ(req.job.fault_spec, "core.zone_solve=2");
}

TEST(ProtocolTest, SimpleOpsRoundTrip) {
  EXPECT_EQ(parse_request(dump_simple("health")).op, Request::Op::Health);
  EXPECT_EQ(parse_request(dump_simple("stats")).op, Request::Op::Stats);
  EXPECT_EQ(parse_request(dump_simple("drain")).op, Request::Op::Drain);
  const Request st = parse_request(dump_status("j7"));
  EXPECT_EQ(st.op, Request::Op::Status);
  EXPECT_EQ(st.id, "j7");
}

TEST(ProtocolTest, StrictAboutShapeLenientAboutExtras) {
  // Unknown fields are ignored (v1 clients against later daemons)...
  const Request req = parse_request(
      R"({"v":"wavemin.jobs/v1","op":"submit","tree":"t.ctree","future_knob":1})");
  EXPECT_EQ(req.job.tree, "t.ctree");
  // ...but shape violations throw.
  EXPECT_THROW(parse_request("not json"), Error);
  EXPECT_THROW(parse_request("[1,2]"), Error);
  EXPECT_THROW(parse_request(R"({"op":"frobnicate"})"), Error);
  EXPECT_THROW(parse_request(R"({"v":"wavemin.jobs/v2","op":"health"})"),
               Error);
  EXPECT_THROW(parse_request(R"({"op":"submit"})"), Error);  // no tree
  EXPECT_THROW(parse_request(R"({"op":"status"})"), Error);  // no id
  EXPECT_THROW(
      parse_request(R"({"op":"submit","tree":"t","algo":"peakmin"})"),
      Error);
  EXPECT_THROW(
      parse_request(R"({"op":"submit","tree":"t","kappa":-1})"), Error);
  EXPECT_THROW(
      parse_request(R"({"op":"submit","tree":"t","max_retries":99})"),
      Error);
  EXPECT_THROW(
      parse_request(R"({"op":"submit","tree":"t","deadline_ms":-5})"),
      Error);
}

TEST(ProtocolTest, ErrorFrameShape) {
  const json::Value v =
      json::parse(error_frame("overloaded", "queue full"));
  EXPECT_FALSE(v.get_bool_or("ok", true));
  EXPECT_EQ(v.get_string("error", "t"), "overloaded");
  EXPECT_EQ(v.get_string("message", "t"), "queue full");
}

// ------------------------------------------------------ worker results

TEST(WorkerResultTest, FileRoundTrip) {
  WorkerResult r;
  r.valid = true;
  r.category = ErrorCategory::None;
  r.degraded = true;
  r.resumed_zones = 4;
  r.zones_full = 2;
  r.zones_greedy = 1;
  r.zones_identity = 1;
  const std::string path = "serve_test_result.json";
  {
    std::ofstream os(path);
    os << dump_worker_result(r) << "\n";
  }
  const WorkerResult back = load_worker_result(path);
  std::remove(path.c_str());
  ASSERT_TRUE(back.valid);
  EXPECT_EQ(back.category, ErrorCategory::None);
  EXPECT_TRUE(back.degraded);
  EXPECT_EQ(back.resumed_zones, 4u);
  EXPECT_EQ(back.zones_full, 2u);
  EXPECT_EQ(back.zones_greedy, 1u);
  EXPECT_EQ(back.zones_identity, 1u);
}

TEST(WorkerResultTest, ErrorCategoriesRoundTrip) {
  for (const ErrorCategory cat :
       {ErrorCategory::None, ErrorCategory::InvalidInput,
        ErrorCategory::Internal, ErrorCategory::Infeasible}) {
    WorkerResult r;
    r.valid = true;
    r.category = cat;
    r.error = "why";
    const std::string path = "serve_test_cat.json";
    {
      std::ofstream os(path);
      os << dump_worker_result(r) << "\n";
    }
    const WorkerResult back = load_worker_result(path);
    std::remove(path.c_str());
    ASSERT_TRUE(back.valid);
    EXPECT_EQ(back.category, cat);
    EXPECT_EQ(back.error, "why");
  }
}

TEST(WorkerResultTest, MissingOrTornFileIsInvalidNeverAThrow) {
  // Missing: the crashed-before-reporting interpretation.
  EXPECT_FALSE(load_worker_result("no_such_result.json").valid);
  // Torn/corrupt: same, and load never throws.
  const std::string path = "serve_test_torn.json";
  {
    std::ofstream os(path);
    os << "{\"category\": \"none\", \"degr";  // torn mid-write
  }
  EXPECT_FALSE(load_worker_result(path).valid);
  std::remove(path.c_str());
}

// ----------------------------------------------------------- job states

TEST(JobStateTest, TerminalAndAcceptableSets) {
  using S = JobState;
  for (const S s : {S::Queued, S::Running, S::Backoff}) {
    EXPECT_FALSE(is_terminal(s)) << to_string(s);
    EXPECT_FALSE(is_acceptable_terminal(s)) << to_string(s);
  }
  for (const S s : {S::Done, S::Degraded, S::Infeasible, S::Failed,
                    S::Quarantined, S::Drained}) {
    EXPECT_TRUE(is_terminal(s)) << to_string(s);
  }
  for (const S s : {S::Done, S::Degraded, S::Infeasible, S::Quarantined}) {
    EXPECT_TRUE(is_acceptable_terminal(s)) << to_string(s);
  }
  EXPECT_FALSE(is_acceptable_terminal(S::Failed));
  EXPECT_FALSE(is_acceptable_terminal(S::Drained));
}

TEST(JobStateTest, StatusFrameCarriesTheContract) {
  Job job;
  job.spec.id = "j3";
  job.spec.out = "out.ctree";
  job.state = JobState::Done;
  job.attempts = 2;
  job.last = classify_exit(true, 0, false, 0);
  job.last_result.valid = true;
  job.last_result.resumed_zones = 5;
  const json::Value v = json::parse(status_frame(job));
  EXPECT_TRUE(v.get_bool_or("ok", false));
  const json::Value* j = v.find("job");
  ASSERT_NE(j, nullptr);
  EXPECT_EQ(j->get_string("id", "t"), "j3");
  EXPECT_EQ(j->get_string("state", "t"), "done");
  EXPECT_EQ(j->get_number("attempts", "t"), 2.0);
  EXPECT_TRUE(j->get_bool_or("acceptable", false));
  EXPECT_EQ(j->get_u64_or("resumed_zones", 0), 5u);
  EXPECT_EQ(j->get_string("out", "t"), "out.ctree");
}

} // namespace
} // namespace wm::serve
