// Tests for the simulation-in-the-loop refinement post-pass.

#include "core/refine.hpp"

#include <gtest/gtest.h>

#include "cells/characterizer.hpp"
#include "core/wavemin.hpp"
#include "cts/benchmarks.hpp"
#include "timing/arrival.hpp"
#include "util/error.hpp"

namespace wm {
namespace {

class RefineTest : public ::testing::Test {
 protected:
  CellLibrary lib = CellLibrary::nangate45_like();
  Characterizer chr{lib};
};

TEST_F(RefineTest, NeverWorsensTheValidatedTilePeak) {
  for (const char* name : {"s13207", "s15850"}) {
    ClockTree tree = make_benchmark(spec_by_name(name), lib);
    WaveMinOptions opts;
    opts.kappa = 20.0;
    opts.samples = 64;
    ASSERT_TRUE(clk_wavemin(tree, lib, chr, opts).success);

    RefineOptions ro;
    ro.kappa = 20.0;
    const ModeSet modes =
        ModeSet::single(spec_by_name(name).islands);
    const RefineResult r = refine_with_simulation(tree, lib, modes, ro);
    EXPECT_LE(r.peak_after, r.peak_before * 1.001) << name;
    EXPECT_GE(r.moves, 0);
  }
}

TEST_F(RefineTest, PreservesTheSkewBound) {
  ClockTree tree = make_benchmark(spec_by_name("s13207"), lib);
  WaveMinOptions opts;
  opts.kappa = 20.0;
  opts.samples = 32;
  ASSERT_TRUE(clk_wavemin(tree, lib, chr, opts).success);
  RefineOptions ro;
  ro.kappa = 20.0;
  refine_with_simulation(
      tree, lib, ModeSet::single(spec_by_name("s13207").islands), ro);
  EXPECT_LE(compute_arrivals(tree).skew(), 20.0 + 1e-6);
}

TEST_F(RefineTest, OnlyTouchesPlainLeaves) {
  ClockTree tree = make_benchmark(spec_by_name("s15850"), lib);
  const ModeSet modes = ModeSet::single(spec_by_name("s15850").islands);
  WaveMinOptions opts;
  opts.kappa = 20.0;
  opts.samples = 32;
  ASSERT_TRUE(clk_wavemin(tree, lib, chr, opts).success);
  std::vector<const Cell*> internals;
  for (const TreeNode& n : tree.nodes()) {
    if (!n.is_leaf()) internals.push_back(n.cell);
  }
  RefineOptions ro;
  ro.kappa = 20.0;
  refine_with_simulation(tree, lib, modes, ro);
  std::size_t i = 0;
  for (const TreeNode& n : tree.nodes()) {
    if (!n.is_leaf()) {
      EXPECT_EQ(n.cell, internals[i++]);
    }
  }
}

TEST_F(RefineTest, RejectsMultiMode) {
  ClockTree tree = make_benchmark(spec_by_name("s13207"), lib);
  EXPECT_THROW(refine_with_simulation(
                   tree, lib, make_mode_set(spec_by_name("s13207")), {}),
               Error);
}

} // namespace
} // namespace wm
