# Binary-guarded test runner, used via
#   cmake -DNAME=<test> -DBIN=<binary> "-DARGS=<;-separated args>"
#         -P guarded_run.cmake
#
# Asserts the binary exists before running it, so a test whose tool was
# never built fails with an actionable message instead of ctest's
# generic "Unable to find executable" — and can never be skipped
# silently. With no -DBIN (or an empty one) it fails outright; -DWHY
# adds context to that message (e.g. "bash not found on this host").

if(NOT DEFINED NAME)
  message(FATAL_ERROR "missing -DNAME=...")
endif()

if(NOT DEFINED BIN OR BIN STREQUAL "")
  if(NOT DEFINED WHY)
    set(WHY "no binary configured")
  endif()
  message(FATAL_ERROR "${NAME}: cannot run — ${WHY}")
endif()

if(NOT EXISTS ${BIN})
  message(FATAL_ERROR
      "${NAME}: required binary is missing: ${BIN}\n"
      "build it first (cmake --build <build-dir>), then re-run ctest")
endif()

if(NOT DEFINED ARGS)
  set(ARGS "")
endif()

execute_process(COMMAND ${BIN} ${ARGS} RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "${NAME}: ${BIN} exited ${rv}")
endif()
