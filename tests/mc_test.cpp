// Tests for the Monte Carlo process-variation engine (Sec. VII-D).

#include "mc/monte_carlo.hpp"

#include <gtest/gtest.h>

#include "cells/library.hpp"
#include "cts/benchmarks.hpp"
#include "timing/arrival.hpp"
#include "util/error.hpp"

namespace wm {
namespace {

class McTest : public ::testing::Test {
 protected:
  CellLibrary lib = CellLibrary::nangate45_like();
  ClockTree tree = make_benchmark(spec_by_name("s13207"), lib);
  ModeSet modes = ModeSet::single(spec_by_name("s13207").islands);
};

TEST_F(McTest, DeterministicForEqualSeeds) {
  McOptions opts;
  opts.instances = 20;
  opts.with_noise = false;
  const McResult a = run_monte_carlo(tree, modes, opts);
  const McResult b = run_monte_carlo(tree, modes, opts);
  EXPECT_DOUBLE_EQ(a.skew_yield, b.skew_yield);
  EXPECT_DOUBLE_EQ(a.mean_skew, b.mean_skew);
}

TEST_F(McTest, YieldIsMonotoneInTheBound) {
  McOptions tight;
  tight.instances = 50;
  tight.with_noise = false;
  tight.kappa = 5.0;
  McOptions loose = tight;
  loose.kappa = 200.0;
  const McResult t = run_monte_carlo(tree, modes, tight);
  const McResult l = run_monte_carlo(tree, modes, loose);
  EXPECT_LE(t.skew_yield, l.skew_yield);
  EXPECT_DOUBLE_EQ(l.skew_yield, 1.0);
}

TEST_F(McTest, VariationWidensSkew) {
  // The nominal tree is near zero skew; 5% variations must produce a
  // mean skew well above it.
  McOptions opts;
  opts.instances = 50;
  opts.with_noise = false;
  const McResult r = run_monte_carlo(tree, modes, opts);
  EXPECT_GT(r.mean_skew, compute_arrivals(tree).skew());
}

TEST_F(McTest, NoiseStatisticsTrackTheInputSigma) {
  McOptions opts;
  opts.instances = 60;
  opts.dt = 4.0;
  const McResult r = run_monte_carlo(tree, modes, opts);
  EXPECT_GT(r.mean_peak, 0.0);
  EXPECT_GT(r.mean_vdd_noise, 0.0);
  EXPECT_GT(r.mean_gnd_noise, 0.0);
  // sigma/mu of the aggregate peak is in the ballpark of the 5% input
  // variation (partially averaged across cells, so somewhat below).
  EXPECT_GT(r.norm_std_peak, 0.005);
  EXPECT_LT(r.norm_std_peak, 0.15);
}

TEST_F(McTest, BiggerSigmaBiggerSpread) {
  McOptions small;
  small.instances = 40;
  small.sigma_over_mu = 0.02;
  McOptions big = small;
  big.sigma_over_mu = 0.10;
  const McResult a = run_monte_carlo(tree, modes, small);
  const McResult b = run_monte_carlo(tree, modes, big);
  EXPECT_LT(a.mean_skew, b.mean_skew);
  EXPECT_LT(a.norm_std_peak, b.norm_std_peak);
}

TEST_F(McTest, RejectsZeroInstances) {
  McOptions opts;
  opts.instances = 0;
  EXPECT_THROW(run_monte_carlo(tree, modes, opts), Error);
}

} // namespace
} // namespace wm
