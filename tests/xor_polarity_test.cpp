// Tests for the XOR-reconfigurable polarity extension ([30],[31]):
// per-power-mode polarity selection through an XOR gate ahead of the
// leaf buffer.

#include <gtest/gtest.h>

#include "cells/characterizer.hpp"
#include "core/candidates.hpp"
#include "core/evaluate.hpp"
#include "core/wavemin.hpp"
#include "cts/benchmarks.hpp"
#include "io/tree_io.hpp"
#include "timing/arrival.hpp"
#include "tree/zone.hpp"
#include "wave/tree_sim.hpp"

namespace wm {
namespace {

class XorPolarityTest : public ::testing::Test {
 protected:
  CellLibrary lib = CellLibrary::nangate45_like();

  ModeSet two_modes(int islands) {
    std::vector<Volt> hi(static_cast<std::size_t>(islands),
                         tech::kVddNominal);
    return ModeSet({PowerMode{"a", hi, {}, {}}, PowerMode{"b", hi, {}, {}}});
  }
};

TEST_F(XorPolarityTest, CandidatesEnumeratePolarityVectors) {
  const BenchmarkSpec& spec = spec_by_name("s15850");
  ClockTree tree = make_benchmark(spec, lib);
  const ModeSet modes = two_modes(spec.islands);
  Characterizer chr(lib);
  const ZoneMap zones(tree);

  XorCandidateOptions xo;
  xo.xor_delay = 6.0;
  const Preprocessed pre = preprocess(tree, zones, modes,
                                      lib.assignment_library(), chr, lib,
                                      &xo);
  for (const SinkInfo& s : pre.sinks) {
    // 4 static + 2^2 XOR candidates.
    ASSERT_EQ(s.candidates.size(), 8u);
    int xor_count = 0;
    for (const Candidate& c : s.candidates) {
      if (c.xor_negative.empty()) continue;
      ++xor_count;
      EXPECT_EQ(c.xor_negative.size(), modes.count());
      EXPECT_DOUBLE_EQ(c.cell_extra_delay, 6.0);
      EXPECT_FALSE(c.cell->inverting());  // base is a buffer
    }
    EXPECT_EQ(xor_count, 4);
  }
}

TEST_F(XorPolarityTest, TreeSimFlipsPhasePerMode) {
  // One leaf configured negative in mode 1 only: its I_DD hump moves to
  // the second half period in that mode, and only in that mode.
  ClockTree t;
  const NodeId r = t.add_root({0, 0}, &lib.by_name("BUF_X32"));
  const NodeId l = t.add_node(r, {30, 0}, &lib.by_name("BUF_X16"));
  t.node(l).sink_cap = 12.0;
  t.node(l).xor_negative = {0, 1};
  t.node(l).cell_extra_delay = 6.0;
  const ModeSet modes = two_modes(1);
  const Ps half = 0.5 * tech::kClockPeriod;

  const TreeSim pos(t, modes, 0, {});
  const Waveform idd0 = pos.sum_rail(std::vector<NodeId>{l}, Rail::Vdd);
  EXPECT_GT(idd0.max_in(0.0, half), idd0.max_in(half, 2 * half));

  const TreeSim neg(t, modes, 1, {});
  const Waveform idd1 = neg.sum_rail(std::vector<NodeId>{l}, Rail::Vdd);
  EXPECT_LT(idd1.max_in(0.0, half), idd1.max_in(half, 2 * half));
}

TEST_F(XorPolarityTest, ExtraDelayShowsUpInArrivals) {
  ClockTree t;
  const NodeId r = t.add_root({0, 0}, &lib.by_name("BUF_X32"));
  const NodeId l = t.add_node(r, {30, 0}, &lib.by_name("BUF_X16"));
  t.node(l).sink_cap = 12.0;
  const Ps base = compute_arrivals(t).output_arrival[static_cast<std::size_t>(l)];
  t.node(l).cell_extra_delay = 6.0;
  const ArrivalResult after = compute_arrivals(t);
  EXPECT_NEAR(after.output_arrival[static_cast<std::size_t>(l)], base + 6.0,
              1e-9);
  // Simulator agrees.
  const TreeSim sim(t, ModeSet::single(), 0, {});
  EXPECT_NEAR(sim.output_arrival(l), base + 6.0, 1e-6);
}

TEST_F(XorPolarityTest, OptimizationWithXorNeverWorseOnModel) {
  const BenchmarkSpec& spec = spec_by_name("s15850");
  const ModeSet modes = two_modes(spec.islands);
  Characterizer chr(lib);

  ClockTree t1 = make_benchmark(spec, lib);
  ClockTree t2 = make_benchmark(spec, lib);
  WaveMinOptions opts;
  opts.kappa = 20.0;
  opts.samples = 16;
  opts.solver = SolverKind::Exact;
  opts.dof_beam = 0;  // full enumeration: supersets can only help
  const WaveMinResult plain =
      run_wavemin(t1, lib, chr, modes, lib.assignment_library(), opts);
  opts.enable_xor_polarity = true;
  const WaveMinResult with_xor =
      run_wavemin(t2, lib, chr, modes, lib.assignment_library(), opts);
  ASSERT_TRUE(plain.success && with_xor.success);
  // Every window of the plain enumeration also exists with XOR enabled
  // (its anchor arrivals are still candidates) with a superset of
  // options per sink, so the exact solver can only do at least as well.
  EXPECT_LE(with_xor.model_peak, plain.model_peak + 1e-6);
}

TEST_F(XorPolarityTest, SerializationRoundTripsXorFields) {
  ClockTree t;
  const NodeId r = t.add_root({0, 0}, &lib.by_name("BUF_X32"));
  const NodeId l = t.add_node(r, {30, 0}, &lib.by_name("BUF_X16"));
  t.node(l).sink_cap = 12.0;
  t.node(l).xor_negative = {1, 0, 1};
  t.node(l).cell_extra_delay = 6.5;
  const ClockTree back = tree_from_string(tree_to_string(t), lib);
  const TreeNode& n = back.node(1);
  EXPECT_EQ(n.xor_negative, (std::vector<std::uint8_t>{1, 0, 1}));
  EXPECT_DOUBLE_EQ(n.cell_extra_delay, 6.5);
}

} // namespace
} // namespace wm
