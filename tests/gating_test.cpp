// Tests for the clock-gating extension: gated islands neither switch
// nor constrain skew in their gated modes, and gating is exactly the
// scenario where per-mode (XOR) polarity selection pays off.

#include <gtest/gtest.h>

#include "cells/characterizer.hpp"
#include "core/evaluate.hpp"
#include "core/wavemin.hpp"
#include "cts/benchmarks.hpp"
#include "timing/arrival.hpp"
#include "wave/tree_sim.hpp"

namespace wm {
namespace {

class GatingTest : public ::testing::Test {
 protected:
  CellLibrary lib = CellLibrary::nangate45_like();

  /// Two islands; mode "half" gates island 1 off.
  ModeSet gated_modes() {
    PowerMode all{"all", {1.1, 1.1}, {}, {}};
    PowerMode half{"half", {1.1, 1.1}, {}, {0, 1}};
    return ModeSet({all, half});
  }

  ClockTree two_island_tree() {
    ClockTree t;
    const NodeId r = t.add_root({100.0, 50.0}, &lib.by_name("BUF_X32"));
    for (int i = 0; i < 8; ++i) {
      const Um x = 30.0 + 20.0 * static_cast<Um>(i);
      const NodeId l = t.add_node(r, {x, 50.0}, &lib.by_name("BUF_X16"));
      t.node(l).sink_cap = 14.0;
      t.node(l).island = i < 4 ? 0 : 1;
    }
    return t;
  }
};

TEST_F(GatingTest, GatedLeavesEmitNoCurrent) {
  const ClockTree t = two_island_tree();
  const ModeSet modes = gated_modes();
  const TreeSim all(t, modes, 0, {});
  const TreeSim half(t, modes, 1, {});
  // Half the leaves silent: the peak drops substantially.
  EXPECT_LT(half.peak_current(), 0.75 * all.peak_current());
  // Gated members contribute zero to rail subtotals.
  std::vector<NodeId> gated_ids;
  for (const TreeNode& n : t.nodes()) {
    if (n.is_leaf() && n.island == 1) gated_ids.push_back(n.id);
  }
  EXPECT_DOUBLE_EQ(half.sum_rail(gated_ids, Rail::Vdd).peak(), 0.0);
  EXPECT_GT(all.sum_rail(gated_ids, Rail::Vdd).peak(), 0.0);
}

TEST_F(GatingTest, GatedLeavesDoNotConstrainSkew) {
  ClockTree t = two_island_tree();
  // Make island-1 leaves grossly late.
  for (const TreeNode& n : t.nodes()) {
    if (n.is_leaf() && n.island == 1) {
      t.node(n.id).route_extra = 500.0;
    }
  }
  const ModeSet modes = gated_modes();
  EXPECT_GT(compute_arrivals(t, modes, 0).skew(), 400.0);
  EXPECT_LT(compute_arrivals(t, modes, 1).skew(), 10.0);
  const TreeSim sim(t, modes, 1, {});
  EXPECT_LT(sim.skew(), 10.0);
}

TEST_F(GatingTest, UngatedModeSetBehavesAsBefore) {
  const ModeSet modes = gated_modes();
  EXPECT_FALSE(modes.gated(0, 0));
  EXPECT_FALSE(modes.gated(0, 1));
  EXPECT_FALSE(modes.gated(1, 0));
  EXPECT_TRUE(modes.gated(1, 1));
  // Modes without the gating vector never gate.
  const ModeSet plain = ModeSet::single(3);
  EXPECT_FALSE(plain.gated(0, 2));
}

TEST_F(GatingTest, XorPolarityExploitsGating) {
  // With island 1 gated in mode 1, the active population differs per
  // mode; per-mode polarity selection (XOR) can rebalance each mode
  // separately while a static assignment must compromise.
  const BenchmarkSpec& spec = spec_by_name("s13207");
  ClockTree base = make_benchmark(spec, lib);
  std::vector<Volt> hi(static_cast<std::size_t>(spec.islands), 1.1);
  std::vector<std::uint8_t> gate(static_cast<std::size_t>(spec.islands),
                                 0);
  for (std::size_t i = 0; i < gate.size() / 2; ++i) gate[i] = 1;
  const ModeSet modes(
      {PowerMode{"all", hi, {}, {}}, PowerMode{"gated", hi, {}, gate}});
  Characterizer chr(lib);

  WaveMinOptions opts;
  opts.kappa = 20.0;
  opts.samples = 16;
  opts.solver = SolverKind::Exact;
  opts.dof_beam = 0;

  ClockTree t1 = base.clone();
  const WaveMinResult plain =
      run_wavemin(t1, lib, chr, modes, lib.assignment_library(), opts);
  opts.enable_xor_polarity = true;
  ClockTree t2 = base.clone();
  const WaveMinResult reconf =
      run_wavemin(t2, lib, chr, modes, lib.assignment_library(), opts);
  ASSERT_TRUE(plain.success && reconf.success);
  EXPECT_LE(reconf.model_peak, plain.model_peak + 1e-6);
}

TEST_F(GatingTest, EvaluationUsesGatedWorstCase) {
  const ClockTree t = two_island_tree();
  const Evaluation e = evaluate_design(t, gated_modes(), 2.0);
  ASSERT_EQ(e.peak_by_mode.size(), 2u);
  EXPECT_GT(e.peak_by_mode[0], e.peak_by_mode[1]);
  EXPECT_DOUBLE_EQ(e.peak_current, e.peak_by_mode[0]);
}

} // namespace
} // namespace wm
