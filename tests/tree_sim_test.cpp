// Tests for the superposition validation simulator (TreeSim), zone
// partitioning and the power-grid noise model.

#include "wave/tree_sim.hpp"

#include <gtest/gtest.h>

#include "cells/library.hpp"
#include "grid/power_grid.hpp"
#include "timing/arrival.hpp"
#include "tree/zone.hpp"
#include "util/rng.hpp"

namespace wm {
namespace {

class TreeSimTest : public ::testing::Test {
 protected:
  CellLibrary lib = CellLibrary::nangate45_like();
  const Cell* buf = &lib.by_name("BUF_X16");
  const Cell* inv = &lib.by_name("INV_X16");

  ClockTree star(int n_leaves) {
    ClockTree t;
    const NodeId r = t.add_root({50.0, 50.0}, &lib.by_name("BUF_X32"));
    Rng rng(5);
    for (int i = 0; i < n_leaves; ++i) {
      const NodeId l = t.add_node(
          r, {rng.uniform(10.0, 90.0), rng.uniform(10.0, 90.0)}, buf);
      t.node(l).sink_cap = 12.0;
    }
    return t;
  }
};

TEST_F(TreeSimTest, SuperpositionDecomposes) {
  const ClockTree t = star(6);
  const TreeSim sim(t, ModeSet::single(), 0, {});
  // leaves + non-leaves == total (within resampling error).
  Waveform sum = sim.leaves_rail(Rail::Vdd);
  sum.accumulate(sim.non_leaves_rail(Rail::Vdd));
  for (Ps time = 0.0; time < tech::kClockPeriod; time += 25.0) {
    EXPECT_NEAR(sum.value_at(time), sim.total_idd().value_at(time),
                1.0 + 0.01 * sim.total_idd().peak());
  }
}

TEST_F(TreeSimTest, AllBuffersLoadVddAtRisingEdge) {
  const ClockTree t = star(6);
  const TreeSim sim(t, ModeSet::single(), 0, {});
  const Ps half = 0.5 * tech::kClockPeriod;
  // First half period: charging dominates I_DD; second half: I_SS.
  EXPECT_GT(sim.total_idd().max_in(0.0, half),
            2.0 * sim.total_iss().max_in(0.0, half));
  EXPECT_GT(sim.total_iss().max_in(half, tech::kClockPeriod),
            2.0 * sim.total_idd().max_in(half, tech::kClockPeriod));
}

TEST_F(TreeSimTest, PolarityMixingReducesPeak) {
  ClockTree t = star(8);
  const TreeSim all_buf(t, ModeSet::single(), 0, {});
  // Invert half the leaves.
  int k = 0;
  for (const TreeNode& n : t.nodes()) {
    if (n.is_leaf() && (k++ % 2 == 0)) t.set_cell(n.id, inv);
  }
  const TreeSim mixed(t, ModeSet::single(), 0, {});
  EXPECT_LT(mixed.peak_current(), 0.75 * all_buf.peak_current());
}

TEST_F(TreeSimTest, NegativePolarityInputShiftsHalfPeriod) {
  // A buffer behind an inverter responds to the *falling* source edge:
  // its I_DD hump lands in the second half period.
  ClockTree t;
  const NodeId r = t.add_root({0.0, 0.0}, &lib.by_name("BUF_X32"));
  const NodeId m = t.add_node(r, {20.0, 0.0}, inv);
  const NodeId l = t.add_node(m, {40.0, 0.0}, buf);
  t.node(l).sink_cap = 12.0;
  const TreeSim sim(t, ModeSet::single(), 0, {});
  const Waveform leaf_idd = sim.sum_rail(std::vector<NodeId>{l}, Rail::Vdd);
  const Ps half = 0.5 * tech::kClockPeriod;
  EXPECT_GT(leaf_idd.max_in(half, tech::kClockPeriod),
            2.0 * leaf_idd.max_in(0.0, half));
}

TEST_F(TreeSimTest, AgreesWithArrivalAnalysis) {
  const ClockTree t = star(5);
  const TreeSim sim(t, ModeSet::single(), 0, {});
  const ArrivalResult r = compute_arrivals(t);
  for (const TreeNode& n : t.nodes()) {
    EXPECT_NEAR(sim.output_arrival(n.id),
                r.output_arrival[static_cast<std::size_t>(n.id)], 1e-6);
  }
  EXPECT_NEAR(sim.skew(), r.skew(), 1e-6);
}

TEST_F(TreeSimTest, CurrentFactorScalesPeak) {
  const ClockTree t = star(4);
  TreeSimOptions opts;
  opts.current_factor.assign(t.size(), 1.5);
  const TreeSim scaled(t, ModeSet::single(), 0, opts);
  const TreeSim base(t, ModeSet::single(), 0, {});
  EXPECT_NEAR(scaled.peak_current(), 1.5 * base.peak_current(),
              0.01 * scaled.peak_current());
}

TEST(ZoneMapTest, PartitionCoversAllLeavesOnce) {
  CellLibrary lib = CellLibrary::nangate45_like();
  ClockTree t;
  const NodeId r = t.add_root({100.0, 100.0}, &lib.by_name("BUF_X32"));
  Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    const NodeId l = t.add_node(
        r, {rng.uniform(0.0, 199.0), rng.uniform(0.0, 199.0)},
        &lib.by_name("BUF_X16"));
    t.node(l).sink_cap = 10.0;
  }
  const ZoneMap zones(t, 50.0);
  std::size_t members = 0;
  for (const Zone& z : zones.zones()) {
    members += z.members.size();
    EXPECT_FALSE(z.members.empty());
    for (NodeId id : z.members) {
      EXPECT_EQ(zones.zone_of(id),
                static_cast<int>(&z - zones.zones().data()));
      // Member really lies in the tile.
      const TreeNode& n = t.node(id);
      EXPECT_GE(n.pos.x, z.gx * 50.0);
      EXPECT_LT(n.pos.x, (z.gx + 1) * 50.0);
    }
  }
  EXPECT_EQ(members, t.leaf_count());
  EXPECT_EQ(zones.zone_of(r), -1);  // non-leaf
  EXPECT_GT(zones.mean_occupancy(), 0.0);
}

TEST(PowerGridTest, NoiseScalesWithCurrentAndDecaysWithDistance) {
  CellLibrary lib = CellLibrary::nangate45_like();
  // Two clusters of leaves far apart.
  ClockTree t;
  const NodeId r = t.add_root({200.0, 50.0}, &lib.by_name("BUF_X32"));
  for (int i = 0; i < 4; ++i) {
    const NodeId a =
        t.add_node(r, {20.0 + 5.0 * i, 50.0}, &lib.by_name("BUF_X16"));
    t.node(a).sink_cap = 12.0;
  }
  const TreeSim sim(t, ModeSet::single(), 0, {});
  const GridNoiseResult base = grid_noise(t, sim);
  EXPECT_GT(base.vdd_noise, 0.0);
  EXPECT_GT(base.gnd_noise, 0.0);
  EXPECT_GT(base.tile_peak_current, 0.0);
  EXPECT_GE(base.tiles, 2u);

  // Larger decay length -> more coupling -> at least as much noise.
  PowerGridOptions wide;
  wide.lambda = 500.0;
  const GridNoiseResult coupled = grid_noise(t, sim, wide);
  EXPECT_GE(coupled.vdd_noise, base.vdd_noise - 1e-9);

  // Doubling r0 doubles the IR drop.
  PowerGridOptions stiff;
  stiff.r0 = 2.0 * PowerGridOptions{}.r0;
  const GridNoiseResult doubled = grid_noise(t, sim, stiff);
  EXPECT_NEAR(doubled.vdd_noise, 2.0 * base.vdd_noise,
              0.01 * doubled.vdd_noise);
}

} // namespace
} // namespace wm
