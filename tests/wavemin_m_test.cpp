// End-to-end tests for the multi-power-mode flow (ClkWaveMin-M) across
// the benchmark circuits and skew bounds.

#include "core/wavemin_m.hpp"

#include <gtest/gtest.h>

#include "cells/characterizer.hpp"
#include "core/evaluate.hpp"
#include "cts/benchmarks.hpp"
#include "timing/arrival.hpp"

namespace wm {
namespace {

struct MCase {
  const char* circuit;
  Ps kappa;
};

class WaveMinMSweep : public ::testing::TestWithParam<MCase> {
 protected:
  CellLibrary lib = CellLibrary::nangate45_like();
};

TEST_P(WaveMinMSweep, AllModesLegalAfterFlow) {
  const MCase& p = GetParam();
  const BenchmarkSpec& spec = spec_by_name(p.circuit);
  ClockTree tree = make_benchmark(spec, lib);
  const ModeSet modes = make_mode_set(spec);
  CharacterizerOptions co;
  co.vdds = modes.distinct_vdds();
  const Characterizer chr(lib, co);

  WaveMinOptions opts;
  opts.kappa = p.kappa;
  opts.samples = 16;
  const WaveMinMResult r = clk_wavemin_m(tree, lib, chr, modes, opts);
  ASSERT_TRUE(r.opt.success)
      << p.circuit << " kappa=" << p.kappa
      << " used_adb=" << r.used_adb_flow;

  // Every mode within the bound (model-level, small tolerance for the
  // Observation-4 load feedback).
  for (std::size_t m = 0; m < modes.count(); ++m) {
    EXPECT_LE(compute_arrivals(tree, modes, m).skew(),
              p.kappa * 1.1 + 2.0)
        << "mode " << m;
  }

  // The ADB flow triggers exactly when the initial tree violates.
  ClockTree fresh = make_benchmark(spec, lib);
  const bool violated = worst_skew(fresh, modes) > p.kappa;
  if (!violated) {
    EXPECT_FALSE(r.used_adb_flow);
    EXPECT_EQ(r.adb_count + r.adi_count, 0);
  }
  if (r.used_adb_flow) {
    EXPECT_GT(r.adb.adbs_inserted, 0);
  }
  // ADIs only ever appear via swapped leaf ADBs.
  EXPECT_LE(r.adi_count, r.adb.adbs_inserted);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WaveMinMSweep,
    ::testing::Values(MCase{"s13207", 90.0}, MCase{"s13207", 130.0},
                      MCase{"s15850", 110.0}, MCase{"s38584", 90.0},
                      MCase{"ispd09f34", 90.0},
                      MCase{"ispd09f34", 130.0}),
    [](const auto& info) {
      return std::string(info.param.circuit) + "_k" +
             std::to_string(static_cast<int>(info.param.kappa));
    });

TEST(WaveMinM, BeatsAdbOnlyBaselineOnModel) {
  // The comparison Table VII makes: polarity assignment on top of the
  // ADB-embedded tree improves the evaluated peak in most cases; at
  // minimum the flow must never break skew legality.
  const CellLibrary lib = CellLibrary::nangate45_like();
  const BenchmarkSpec& spec = spec_by_name("ispd09f34");
  const ModeSet modes = make_mode_set(spec);
  CharacterizerOptions co;
  co.vdds = modes.distinct_vdds();
  const Characterizer chr(lib, co);
  const Ps kappa = 90.0;

  ClockTree baseline = make_benchmark(spec, lib);
  ASSERT_TRUE(allocate_adbs(baseline, lib, modes, kappa).feasible);
  const Evaluation eb = evaluate_design(baseline, modes, 2.0);

  ClockTree optimized = make_benchmark(spec, lib);
  WaveMinOptions opts;
  opts.kappa = kappa;
  opts.samples = 16;
  const WaveMinMResult r =
      clk_wavemin_m(optimized, lib, chr, modes, opts);
  ASSERT_TRUE(r.opt.success);
  const Evaluation eo = evaluate_design(optimized, modes, 2.0);

  EXPECT_LT(eo.peak_current, eb.peak_current);
  EXPECT_LE(worst_skew(optimized, modes), kappa * 1.1);
}

} // namespace
} // namespace wm
