// Tests for the logging facility.

#include "util/log.hpp"

#include <gtest/gtest.h>

namespace wm {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::Warn); }
};

TEST_F(LogTest, LevelRoundTrips) {
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Silent);
  EXPECT_EQ(log_level(), LogLevel::Silent);
}

TEST_F(LogTest, SuppressedLevelsDoNotEvaluate) {
  // The macro must not evaluate its stream operands when the level is
  // filtered out (logging in hot loops would otherwise cost even when
  // silent).
  set_log_level(LogLevel::Silent);
  int evaluations = 0;
  auto count = [&]() {
    ++evaluations;
    return 42;
  };
  WM_LOG(Debug) << "value " << count();
  EXPECT_EQ(evaluations, 0);
  set_log_level(LogLevel::Debug);
  WM_LOG(Debug) << "value " << count();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, OrderingOfLevels) {
  EXPECT_LT(static_cast<int>(LogLevel::Silent),
            static_cast<int>(LogLevel::Warn));
  EXPECT_LT(static_cast<int>(LogLevel::Warn),
            static_cast<int>(LogLevel::Info));
  EXPECT_LT(static_cast<int>(LogLevel::Info),
            static_cast<int>(LogLevel::Debug));
}

} // namespace
} // namespace wm
