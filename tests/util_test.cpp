// Tests for the utility layer: deterministic RNG, statistics helpers
// and the table renderer.

#include <gtest/gtest.h>

#include <cmath>

#include "report/table.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace wm {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(42), b(42), c(43);
  bool all_equal = true, any_diff_seed_equal = true;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    all_equal &= (va == b.next());
    any_diff_seed_equal &= (va == c.next());
  }
  EXPECT_TRUE(all_equal);
  EXPECT_FALSE(any_diff_seed_equal);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, NormalMomentsApproximatelyCorrect) {
  Rng rng(11);
  std::vector<double> xs(20000);
  for (double& x : xs) x = rng.normal(10.0, 2.0);
  EXPECT_NEAR(mean(xs), 10.0, 0.1);
  EXPECT_NEAR(stddev(xs), 2.0, 0.1);
}

TEST(RngTest, VaryStaysPositiveAndUnbiased) {
  Rng rng(13);
  std::vector<double> xs(20000);
  for (double& x : xs) {
    x = rng.vary(1.0, 0.05);
    EXPECT_GT(x, 0.0);
  }
  EXPECT_NEAR(mean(xs), 1.0, 0.01);
  EXPECT_NEAR(normalized_stddev(xs), 0.05, 0.01);
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng parent(99);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.next() == child2.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(StatsTest, BasicAggregates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(min_of(xs), 1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 4.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{5.0}), 0.0);
  EXPECT_THROW(min_of(std::vector<double>{}), Error);
}

TEST(StatsTest, DegenerateInputsReturnDocumentedZeros) {
  // The documented contract (util/stats.hpp): 0 for n < 2 spans and for
  // constant/zero-mean series — never NaN, so downstream report code
  // can format results unconditionally.
  const std::vector<double> empty{};
  const std::vector<double> one{7.5};
  const std::vector<double> constant{3.0, 3.0, 3.0, 3.0};
  const std::vector<double> zero_mean{-2.0, -1.0, 1.0, 2.0};

  EXPECT_DOUBLE_EQ(stddev(empty), 0.0);
  EXPECT_DOUBLE_EQ(stddev(one), 0.0);
  EXPECT_DOUBLE_EQ(stddev(constant), 0.0);

  EXPECT_DOUBLE_EQ(normalized_stddev(empty), 0.0);
  EXPECT_DOUBLE_EQ(normalized_stddev(one), 0.0);
  EXPECT_DOUBLE_EQ(normalized_stddev(constant), 0.0);
  EXPECT_DOUBLE_EQ(normalized_stddev(zero_mean), 0.0);  // mean == 0 guard

  const std::vector<double> rising{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(pearson(constant, rising), 0.0);
  EXPECT_DOUBLE_EQ(pearson(rising, constant), 0.0);
  EXPECT_DOUBLE_EQ(pearson(constant, constant), 0.0);
  EXPECT_DOUBLE_EQ(pearson(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(pearson(one, one), 0.0);

  // None of the degenerate paths may leak a NaN.
  EXPECT_FALSE(std::isnan(normalized_stddev(zero_mean)));
  EXPECT_FALSE(std::isnan(pearson(constant, constant)));
}

TEST(StatsTest, PearsonCorrelation) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> up{2.0, 4.0, 6.0, 8.0};
  const std::vector<double> down{8.0, 6.0, 4.0, 2.0};
  const std::vector<double> flat{1.0, 1.0, 1.0, 1.0};
  EXPECT_NEAR(pearson(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson(xs, down), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(pearson(xs, flat), 0.0);
  EXPECT_THROW(pearson(xs, std::vector<double>{1.0}), Error);
}

TEST(TableTest, RendersAlignedTextAndCsv) {
  Table t({"a", "long_header", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"wide_cell", "x", "y"});
  EXPECT_EQ(t.rows(), 2u);
  const std::string text = t.to_text();
  EXPECT_NE(text.find("long_header"), std::string::npos);
  EXPECT_NE(text.find("wide_cell"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("a,long_header,c"), std::string::npos);
  EXPECT_NE(csv.find("1,2,3"), std::string::npos);
  EXPECT_THROW(t.add_row({"too", "few"}), Error);
}

TEST(TableTest, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159), "3.14");
  EXPECT_EQ(Table::num(3.14159, 4), "3.1416");
  EXPECT_EQ(Table::pct(-12.394), "-12.39");
}

} // namespace
} // namespace wm
