# Exit-code contract test for tools/wavemin_metalint, run via
#   cmake -DMETALINT=<bin> -DREPO=<repo root> -DFIXTURES=<tests/data/metalint>
#         -P metalint_contract.cmake
# Contract (shared with wavemin_lint): 0 = no diagnostics, 1 = usage or
# a root without the src/ + docs/ layout, 2 = diagnostics found.

foreach(var METALINT REPO FIXTURES)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

function(expect_exit code)
  execute_process(COMMAND ${ARGN}
                  RESULT_VARIABLE rv
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rv EQUAL ${code})
    message(FATAL_ERROR
        "expected exit ${code}, got '${rv}' from: ${ARGN}\n"
        "stdout:\n${out}\nstderr:\n${err}")
  endif()
endfunction()

# Run on a seeded fixture: must exit 2 AND name the seeded rule id.
function(expect_finding fixture rule)
  execute_process(COMMAND ${METALINT} --root ${FIXTURES}/${fixture}
                  RESULT_VARIABLE rv
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rv EQUAL 2)
    message(FATAL_ERROR
        "fixture ${fixture}: expected exit 2, got '${rv}'\n"
        "stdout:\n${out}\nstderr:\n${err}")
  endif()
  if(NOT out MATCHES "\\[${rule}\\]")
    message(FATAL_ERROR
        "fixture ${fixture}: exit 2 but no [${rule}] diagnostic\n"
        "stdout:\n${out}")
  endif()
endfunction()

# 0: the repository itself is catalog-clean (the CI `metalint` gate).
expect_exit(0 ${METALINT} --root ${REPO} --quiet)

# 1: usage errors, and a root that lacks the src/ + docs/ layout (that
# must not "pass" by scanning nothing).
expect_exit(1 ${METALINT} --bogus-flag)
expect_exit(1 ${METALINT} --root ${FIXTURES}/clean/src)

# 2: one seeded fixture per rule id.
expect_finding(counter-uncataloged metalint.counter-uncataloged)
expect_finding(fault-site-uncataloged metalint.fault-site-uncataloged)
expect_finding(rule-id-collision metalint.rule-id-collision)
expect_finding(error-vocab-drift metalint.error-vocab-drift)
expect_finding(status-discarded metalint.status-discarded)
expect_finding(include-guard metalint.include-guard)

message(STATUS "wavemin_metalint exit-code contract holds")
