// Determinism of the parallel zone solver: thread count must not change
// the result.

#include <gtest/gtest.h>

#include "cells/characterizer.hpp"
#include "core/wavemin.hpp"
#include "cts/benchmarks.hpp"

namespace wm {
namespace {

TEST(ParallelSolve, BitIdenticalAcrossThreadCounts) {
  const CellLibrary lib = CellLibrary::nangate45_like();
  const Characterizer chr(lib);
  const BenchmarkSpec& spec = spec_by_name("s35932");

  double reference = -1.0;
  std::vector<const Cell*> ref_cells;
  for (unsigned threads : {1u, 2u, 4u}) {
    ClockTree tree = make_benchmark(spec, lib);
    WaveMinOptions opts;
    opts.kappa = 20.0;
    opts.samples = 64;
    opts.threads = threads;
    const WaveMinResult r = clk_wavemin(tree, lib, chr, opts);
    ASSERT_TRUE(r.success) << "threads=" << threads;
    if (reference < 0.0) {
      reference = r.model_peak;
      for (const TreeNode& n : tree.nodes()) ref_cells.push_back(n.cell);
    } else {
      EXPECT_DOUBLE_EQ(r.model_peak, reference) << "threads=" << threads;
      for (const TreeNode& n : tree.nodes()) {
        EXPECT_EQ(n.cell, ref_cells[static_cast<std::size_t>(n.id)]);
      }
    }
  }
}

TEST(ParallelSolve, SpeedupOnBigCircuit) {
  const CellLibrary lib = CellLibrary::nangate45_like();
  const Characterizer chr(lib);
  const BenchmarkSpec& spec = spec_by_name("s38417");
  WaveMinOptions opts;
  opts.kappa = 20.0;
  opts.samples = 158;

  ClockTree t1 = make_benchmark(spec, lib);
  opts.threads = 1;
  const WaveMinResult seq = clk_wavemin(t1, lib, chr, opts);
  ClockTree t2 = make_benchmark(spec, lib);
  opts.threads = 4;
  const WaveMinResult par = clk_wavemin(t2, lib, chr, opts);
  ASSERT_TRUE(seq.success && par.success);
  // No strict speedup assertion (CI machines vary); parallel must at
  // least not be drastically slower.
  EXPECT_LT(par.runtime_ms, seq.runtime_ms * 1.5);
}

} // namespace
} // namespace wm
