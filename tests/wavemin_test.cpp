// End-to-end property tests for the WaveMin drivers: skew legality
// across bounds and solvers, ablation flags, determinism, and the
// PeakMin-reduction sanity check.

#include "core/wavemin.hpp"

#include <gtest/gtest.h>

#include "cells/characterizer.hpp"
#include "core/evaluate.hpp"
#include "cts/benchmarks.hpp"
#include "peakmin/clkpeakmin.hpp"
#include "timing/arrival.hpp"

namespace wm {
namespace {

struct SweepCase {
  const char* circuit;
  Ps kappa;
  SolverKind solver;
  int samples;
};

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string s = info.param.circuit;
  s += "_k" + std::to_string(static_cast<int>(info.param.kappa));
  s += "_s" + std::to_string(info.param.samples);
  switch (info.param.solver) {
    case SolverKind::Warburton: s += "_wb"; break;
    case SolverKind::Greedy: s += "_gr"; break;
    case SolverKind::Exact: s += "_ex"; break;
    case SolverKind::Exhaustive: s += "_xh"; break;
  }
  return s;
}

class WaveMinSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  CellLibrary lib = CellLibrary::nangate45_like();
  Characterizer chr{lib};
};

TEST_P(WaveMinSweep, SkewBoundRespected) {
  const SweepCase& p = GetParam();
  ClockTree tree = make_benchmark(spec_by_name(p.circuit), lib);
  WaveMinOptions opts;
  opts.kappa = p.kappa;
  opts.samples = p.samples;
  opts.solver = p.solver;
  const WaveMinResult r = clk_wavemin(tree, lib, chr, opts);
  if (!r.success) {
    GTEST_SKIP() << "no feasible interval at kappa=" << p.kappa;
  }
  // The optimizer's timing model and the validation analysis share the
  // delay model; the residual gap comes only from sizing-induced load
  // changes on parents (Observation 4), so a small tolerance suffices.
  EXPECT_LE(compute_arrivals(tree).skew(), p.kappa * 1.15 + 2.0);
  EXPECT_GT(r.model_peak, 0.0);
  EXPECT_GE(r.intersections, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WaveMinSweep,
    ::testing::Values(
        SweepCase{"s13207", 10.0, SolverKind::Warburton, 32},
        SweepCase{"s13207", 20.0, SolverKind::Warburton, 158},
        SweepCase{"s13207", 20.0, SolverKind::Greedy, 158},
        SweepCase{"s13207", 20.0, SolverKind::Exact, 8},
        SweepCase{"s13207", 40.0, SolverKind::Warburton, 32},
        SweepCase{"s15850", 20.0, SolverKind::Warburton, 32},
        SweepCase{"s15850", 20.0, SolverKind::Exhaustive, 4},
        SweepCase{"ispd09f34", 20.0, SolverKind::Greedy, 32}),
    case_name);

class WaveMinTest : public ::testing::Test {
 protected:
  CellLibrary lib = CellLibrary::nangate45_like();
  Characterizer chr{lib};
};

TEST_F(WaveMinTest, DeterministicAcrossRuns) {
  const BenchmarkSpec& spec = spec_by_name("s15850");
  WaveMinOptions opts;
  opts.kappa = 20.0;
  opts.samples = 32;
  ClockTree t1 = make_benchmark(spec, lib);
  ClockTree t2 = make_benchmark(spec, lib);
  const WaveMinResult r1 = clk_wavemin(t1, lib, chr, opts);
  const WaveMinResult r2 = clk_wavemin(t2, lib, chr, opts);
  ASSERT_TRUE(r1.success);
  EXPECT_DOUBLE_EQ(r1.model_peak, r2.model_peak);
  for (const TreeNode& n : t1.nodes()) {
    EXPECT_EQ(n.cell, t2.node(n.id).cell);
  }
}

TEST_F(WaveMinTest, InfeasibleBoundLeavesTreeUntouched) {
  ClockTree tree = make_benchmark(spec_by_name("s13207"), lib);
  std::vector<const Cell*> before;
  for (const TreeNode& n : tree.nodes()) before.push_back(n.cell);
  WaveMinOptions opts;
  opts.kappa = 0.05;  // unreachable
  const WaveMinResult r = clk_wavemin(tree, lib, chr, opts);
  EXPECT_FALSE(r.success);
  for (const TreeNode& n : tree.nodes()) {
    EXPECT_EQ(n.cell, before[static_cast<std::size_t>(n.id)]);
  }
}

TEST_F(WaveMinTest, AssignsOnlyLibraryCells) {
  ClockTree tree = make_benchmark(spec_by_name("s13207"), lib);
  WaveMinOptions opts;
  opts.kappa = 20.0;
  opts.samples = 32;
  ASSERT_TRUE(clk_wavemin(tree, lib, chr, opts).success);
  const auto allowed = lib.assignment_library();
  for (const TreeNode& n : tree.nodes()) {
    if (!n.is_leaf()) continue;
    EXPECT_NE(std::find(allowed.begin(), allowed.end(), n.cell),
              allowed.end())
        << n.cell->name;
  }
}

TEST_F(WaveMinTest, ExactNeverWorseThanGreedyOnModel) {
  const BenchmarkSpec& spec = spec_by_name("s15850");
  WaveMinOptions opts;
  opts.kappa = 20.0;
  opts.samples = 16;
  ClockTree t1 = make_benchmark(spec, lib);
  ClockTree t2 = make_benchmark(spec, lib);
  opts.solver = SolverKind::Exact;
  const WaveMinResult exact = clk_wavemin(t1, lib, chr, opts);
  opts.solver = SolverKind::Greedy;
  const WaveMinResult greedy = clk_wavemin(t2, lib, chr, opts);
  ASSERT_TRUE(exact.success && greedy.success);
  EXPECT_LE(exact.model_peak, greedy.model_peak + 1e-6);
}

TEST_F(WaveMinTest, MoreSamplesDoNotWorsenTheModelObjective) {
  // With the same solver, finer sampling measures the same waveforms
  // more accurately; the chosen assignment's model peak may move, but
  // the *validated* peak should not systematically explode. Here we
  // check the cheap invariant: the run succeeds at every |S|.
  const BenchmarkSpec& spec = spec_by_name("s13207");
  for (int samples : {4, 8, 16, 64, 158}) {
    ClockTree tree = make_benchmark(spec, lib);
    WaveMinOptions opts;
    opts.kappa = 20.0;
    opts.samples = samples;
    EXPECT_TRUE(clk_wavemin(tree, lib, chr, opts).success)
        << "|S|=" << samples;
  }
}

TEST_F(WaveMinTest, DofScatterIsPopulated) {
  ClockTree tree = make_benchmark(spec_by_name("s13207"), lib);
  WaveMinOptions opts;
  opts.kappa = 20.0;
  opts.samples = 16;
  opts.dof_beam = 0;
  const WaveMinResult r = clk_wavemin(tree, lib, chr, opts);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.dof_scatter.size(), r.intersections);
  for (const DofSample& s : r.dof_scatter) {
    EXPECT_GT(s.dof, 0);
    EXPECT_GT(s.worst, 0.0);
  }
}

TEST_F(WaveMinTest, PeakMinOptionsMatchThePriorArt) {
  const WaveMinOptions o = peakmin_options(33.0);
  EXPECT_DOUBLE_EQ(o.kappa, 33.0);
  EXPECT_EQ(o.samples, 4);
  EXPECT_FALSE(o.shift_by_arrival);
  EXPECT_FALSE(o.include_nonleaf);
  EXPECT_EQ(o.solver, SolverKind::Exact);
}

TEST_F(WaveMinTest, BothAlgorithmsBeatTheUnoptimizedTree) {
  const BenchmarkSpec& spec = spec_by_name("s13207");
  ClockTree base = make_benchmark(spec, lib);
  const Evaluation e0 = evaluate_design(base);

  ClockTree t1 = make_benchmark(spec, lib);
  ASSERT_TRUE(clk_peakmin(t1, lib, chr, 20.0).success);
  const Evaluation e1 = evaluate_design(t1);

  ClockTree t2 = make_benchmark(spec, lib);
  WaveMinOptions opts;
  opts.kappa = 20.0;
  opts.samples = 158;
  ASSERT_TRUE(clk_wavemin(t2, lib, chr, opts).success);
  const Evaluation e2 = evaluate_design(t2);

  // Polarity mixing cuts the single-rail peak roughly in half.
  EXPECT_LT(e1.peak_current, 0.85 * e0.peak_current);
  EXPECT_LT(e2.peak_current, 0.85 * e0.peak_current);
}

} // namespace
} // namespace wm
