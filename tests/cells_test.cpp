// Unit tests for the cell models: library construction, delay/slew
// scaling laws and the current pulse model (the analytic HSPICE
// substitute — see DESIGN.md §2).

#include <gtest/gtest.h>

#include "cells/characterizer.hpp"
#include "cells/electrical.hpp"
#include "cells/library.hpp"
#include "util/error.hpp"

namespace wm {
namespace {

class CellLibraryTest : public ::testing::Test {
 protected:
  CellLibrary lib = CellLibrary::nangate45_like();
};

TEST_F(CellLibraryTest, ContainsExpectedFamily) {
  for (int d : {1, 2, 4, 8, 16, 32, 64}) {
    EXPECT_NE(lib.find("BUF_X" + std::to_string(d)), nullptr);
    EXPECT_NE(lib.find("INV_X" + std::to_string(d)), nullptr);
  }
  EXPECT_NE(lib.find("ADB_X8"), nullptr);
  EXPECT_NE(lib.find("ADI_X8"), nullptr);
  EXPECT_EQ(lib.find("BUF_X128"), nullptr);
  EXPECT_THROW(lib.by_name("NAND_X1"), Error);
}

TEST_F(CellLibraryTest, RejectsDuplicateNames) {
  CellLibrary l;
  Cell c;
  c.name = "BUF_X1";
  l.add(c);
  EXPECT_THROW(l.add(c), Error);
}

TEST_F(CellLibraryTest, PolaritiesMatchKinds) {
  EXPECT_EQ(lib.by_name("BUF_X8").polarity(), Polarity::Positive);
  EXPECT_EQ(lib.by_name("ADB_X8").polarity(), Polarity::Positive);
  EXPECT_EQ(lib.by_name("INV_X8").polarity(), Polarity::Negative);
  EXPECT_EQ(lib.by_name("ADI_X8").polarity(), Polarity::Negative);
  EXPECT_TRUE(lib.by_name("ADB_X8").adjustable());
  EXPECT_FALSE(lib.by_name("BUF_X8").adjustable());
}

TEST_F(CellLibraryTest, AssignmentLibraryIsThePaperSet) {
  const auto cells = lib.assignment_library();
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0]->name, "BUF_X8");
  EXPECT_EQ(cells[1]->name, "BUF_X16");
  EXPECT_EQ(cells[2]->name, "INV_X8");
  EXPECT_EQ(cells[3]->name, "INV_X16");
}

TEST_F(CellLibraryTest, OutputResistanceScalesInversely) {
  // BUF_X16 around 0.4 kOhm, as quoted in the paper's Table I setup.
  EXPECT_NEAR(lib.by_name("BUF_X16").r_out, 0.4, 0.05);
  EXPECT_GT(lib.by_name("BUF_X1").r_out, lib.by_name("BUF_X8").r_out);
}

TEST_F(CellLibraryTest, InverterInputCapScalesWithDrive) {
  // INV_X8 Cin ~ 2.2 fF (paper Table I text).
  EXPECT_NEAR(lib.by_name("INV_X8").c_in, 2.2, 0.3);
  EXPECT_LT(lib.by_name("INV_X1").c_in, lib.by_name("INV_X8").c_in);
}

TEST(VddDelayFactor, NormalizedAtNominalAndMonotone) {
  EXPECT_NEAR(vdd_delay_factor(tech::kVddNominal), 1.0, 1e-12);
  EXPECT_GT(vdd_delay_factor(0.9), 1.0);
  EXPECT_GT(vdd_delay_factor(0.8), vdd_delay_factor(0.9));
  EXPECT_LT(vdd_delay_factor(1.2), 1.0);
  EXPECT_THROW(vdd_delay_factor(0.3), Error);
}

class CellTimingTest : public ::testing::Test {
 protected:
  CellLibrary lib = CellLibrary::nangate45_like();
};

TEST_F(CellTimingTest, InvertersFasterThanBuffersOfSameDrive) {
  // Matches the ordering in the paper's Table II.
  DriveConditions dc{5.0, 20.0, tech::kVddNominal};
  const CellTiming b = cell_timing(lib.by_name("BUF_X8"), dc);
  const CellTiming i = cell_timing(lib.by_name("INV_X8"), dc);
  EXPECT_LT(i.delay(), b.delay());
}

TEST_F(CellTimingTest, BiggerDriveFasterUnderLoad) {
  DriveConditions dc{30.0, 20.0, tech::kVddNominal};
  EXPECT_LT(cell_timing(lib.by_name("BUF_X16"), dc).delay(),
            cell_timing(lib.by_name("BUF_X8"), dc).delay());
}

TEST_F(CellTimingTest, DelayIncreasesWithLoadAndLowVdd) {
  const Cell& buf = lib.by_name("BUF_X8");
  DriveConditions light{2.0, 20.0, tech::kVddNominal};
  DriveConditions heavy{40.0, 20.0, tech::kVddNominal};
  EXPECT_GT(cell_timing(buf, heavy).delay(),
            cell_timing(buf, light).delay());
  DriveConditions low{2.0, 20.0, tech::kVddLow};
  EXPECT_GT(cell_timing(buf, low).delay(),
            cell_timing(buf, light).delay());
}

TEST_F(CellTimingTest, AdiSlowerThanAdb) {
  // Sec. VII-E: the third inverter makes ADIs unavoidably slower.
  DriveConditions dc{5.0, 20.0, tech::kVddNominal};
  EXPECT_GT(cell_timing(lib.by_name("ADI_X8"), dc).delay(),
            cell_timing(lib.by_name("ADB_X8"), dc).delay());
}

class CellWaveTest : public ::testing::Test {
 protected:
  CellLibrary lib = CellLibrary::nangate45_like();
  DriveConditions dc{5.0, 20.0, tech::kVddNominal};
};

TEST_F(CellWaveTest, BufferChargesOnRisingEdge) {
  // Fig. 1(a): high I_DD hump near the rising edge, low I_SS.
  const CellWave w = simulate_cell(lib.by_name("BUF_X8"), dc);
  const Ps half = 0.5 * tech::kClockPeriod;
  EXPECT_GT(w.idd.max_in(0.0, half), 3.0 * w.iss.max_in(0.0, half));
  // And the mirror at the falling edge.
  EXPECT_GT(w.iss.max_in(half, tech::kClockPeriod),
            3.0 * w.idd.max_in(half, tech::kClockPeriod));
}

TEST_F(CellWaveTest, InverterIsTheOpposite) {
  // Fig. 1(b).
  const CellWave w = simulate_cell(lib.by_name("INV_X8"), dc);
  const Ps half = 0.5 * tech::kClockPeriod;
  EXPECT_GT(w.iss.max_in(0.0, half), 3.0 * w.idd.max_in(0.0, half));
  EXPECT_GT(w.idd.max_in(half, tech::kClockPeriod),
            3.0 * w.iss.max_in(half, tech::kClockPeriod));
}

TEST_F(CellWaveTest, ChargePerEdgeTracksSwitchedCapacitance) {
  // integral(I_DD) over the charging edge ~ (C_load + C_self) * VDD.
  const Cell& buf = lib.by_name("BUF_X8");
  const CellWave w = simulate_cell(buf, dc);
  const double q_fc = (dc.c_load + buf.c_self) * dc.vdd;
  // uA * ps = 1e-3 fC.
  const double measured =
      w.idd.integral() * 1e-3 / (1.0 + buf.sc_frac);
  EXPECT_NEAR(measured, q_fc, 0.35 * q_fc);
}

TEST_F(CellWaveTest, PulsePeakGrowsWithLoad) {
  const Cell& buf = lib.by_name("BUF_X8");
  DriveConditions heavy = dc;
  heavy.c_load = 30.0;
  EXPECT_GT(simulate_cell(buf, heavy).idd.peak(),
            simulate_cell(buf, dc).idd.peak());
}

TEST_F(CellWaveTest, ExtraDelayShiftsThePulse) {
  const Cell& adb = lib.by_name("ADB_X8");
  const CellWave base = simulate_cell(adb, dc);
  const CellWave delayed =
      simulate_cell(adb, dc, tech::kClockPeriod, 0.5, 40.0);
  EXPECT_NEAR(delayed.idd.peak_time() - base.idd.peak_time(), 40.0, 2.0);
  EXPECT_THROW(
      simulate_cell(adb, dc, tech::kClockPeriod, 0.5, adb.adj_range() + 50),
      Error);
}

TEST_F(CellWaveTest, NonAdjustableRejectsExtraDelayAboveZero) {
  // A plain buffer has no adjustable range at all.
  const Cell& buf = lib.by_name("BUF_X8");
  EXPECT_THROW(simulate_cell(buf, dc, tech::kClockPeriod, 0.5, 10.0),
               Error);
}

class CharacterizerTest : public ::testing::Test {
 protected:
  CellLibrary lib = CellLibrary::nangate45_like();
  Characterizer chr{lib};
};

TEST_F(CharacterizerTest, LookupReturnsNearestBin) {
  const Cell& buf = lib.by_name("BUF_X8");
  const CellWave& w4 = chr.lookup(buf, 4.0);
  const CellWave& w4b = chr.lookup(buf, 4.4);  // still nearest bin 4
  EXPECT_EQ(&w4, &w4b);
  const CellWave& w8 = chr.lookup(buf, 7.0);  // nearest bin 8
  EXPECT_NE(&w4, &w8);
}

TEST_F(CharacterizerTest, UncharacterizedVddThrows) {
  const Cell& buf = lib.by_name("BUF_X8");
  EXPECT_THROW(chr.lookup(buf, 4.0, 0.95), Error);
}

TEST_F(CharacterizerTest, NoiseInShiftsByArrival) {
  const Cell& buf = lib.by_name("BUF_X8");
  const CellWave& w = chr.lookup(buf, 4.0);
  const Ps peak_t = w.idd.peak_time();
  const double at_peak = chr.noise_in(buf, 4.0, tech::kVddNominal,
                                      Rail::Vdd, 100.0, peak_t + 100.0,
                                      peak_t + 100.0);
  EXPECT_NEAR(at_peak, w.idd.peak(), 1e-6);
  // Far away from the pulse: ~0.
  const double far = chr.noise_in(buf, 4.0, tech::kVddNominal, Rail::Vdd,
                                  100.0, peak_t + 400.0, peak_t + 400.0);
  EXPECT_LT(far, 0.05 * at_peak);
}

TEST_F(CharacterizerTest, NoiseInIsPeriodic) {
  // The clock is periodic: shifting the observation time by one period
  // must not change the estimate (this is what lets a negative-polarity
  // input be modelled as a +T/2 arrival shift).
  const Cell& buf = lib.by_name("BUF_X8");
  const Ps T = tech::kClockPeriod;
  for (Ps t : {30.0, 55.0, 520.0, 560.0}) {
    const double v0 = chr.noise_in(buf, 4.0, tech::kVddNominal, Rail::Vdd,
                                   0.5 * T, t, t);
    const double v1 = chr.noise_in(buf, 4.0, tech::kVddNominal, Rail::Vdd,
                                   0.5 * T, t + T, t + T);
    EXPECT_NEAR(v0, v1, 1e-9) << "t=" << t;
  }
  // And the +T/2 shift really moves the charging hump into the second
  // half period.
  const CellWave& w = chr.lookup(buf, 4.0);
  const Ps peak_t = w.idd.peak_time();
  const double shifted = chr.noise_in(buf, 4.0, tech::kVddNominal,
                                      Rail::Vdd, 0.5 * T,
                                      peak_t + 0.5 * T, peak_t + 0.5 * T);
  EXPECT_NEAR(shifted, w.idd.peak(), 1e-6);
}

} // namespace
} // namespace wm
