// Unit tests for wm::metalint (docs/static_analysis.md): the catalog
// grammars, the markdown region parser, and the full engine driven
// over the seeded-violation corpus in tests/data/metalint/ — one
// fixture mini-repo per rule id plus a clean one. The same corpus is
// driven through the real wavemin_metalint binary (exit contract) by
// tests/metalint_contract.cmake.

#include <string>

#include <gtest/gtest.h>

#include "metalint/metalint.hpp"

namespace wm::metalint {
namespace {

std::string fixture(const std::string& name) {
  return std::string(WAVEMIN_TEST_DATA_DIR) + "/metalint/" + name;
}

verify::Report run_on(const std::string& name) {
  Options opt;
  opt.root = fixture(name);
  return run(opt);
}

// ---- grammars -------------------------------------------------------

TEST(MetalintGrammar, DottedNames) {
  EXPECT_TRUE(is_dotted_name("serve.queue_depth"));
  EXPECT_TRUE(is_dotted_name("ck.kill_after_write"));
  EXPECT_TRUE(is_dotted_name("a.b.c"));
  EXPECT_TRUE(is_dotted_name("log2.v1"));

  EXPECT_FALSE(is_dotted_name("single"));          // needs >= 2 segments
  EXPECT_FALSE(is_dotted_name("mosp.beam-capped")); // dashes are rule-only
  EXPECT_FALSE(is_dotted_name("Serve.queue"));      // lowercase only
  EXPECT_FALSE(is_dotted_name("serve..queue"));     // empty segment
  EXPECT_FALSE(is_dotted_name(".queue"));
  EXPECT_FALSE(is_dotted_name("serve.queue."));
  EXPECT_FALSE(is_dotted_name("serve.queue depth"));
  EXPECT_FALSE(is_dotted_name(""));
}

TEST(MetalintGrammar, RuleNames) {
  EXPECT_TRUE(is_rule_name("mosp.beam-capped"));
  EXPECT_TRUE(is_rule_name("metalint.rule-id-collision"));
  EXPECT_TRUE(is_rule_name("tree.cycle"));

  EXPECT_FALSE(is_rule_name("beam-capped"));  // still needs a dot
  EXPECT_FALSE(is_rule_name("Tree.cycle"));
}

TEST(MetalintGrammar, VocabNames) {
  EXPECT_TRUE(is_vocab_name("breaker-open"));
  EXPECT_TRUE(is_vocab_name("overloaded"));  // dash optional

  EXPECT_FALSE(is_vocab_name("serve.shed"));  // no dots
  EXPECT_FALSE(is_vocab_name("Overloaded"));
  EXPECT_FALSE(is_vocab_name("-leading"));    // must start with a letter
  EXPECT_FALSE(is_vocab_name(""));
}

TEST(MetalintGrammar, Wildcards) {
  EXPECT_TRUE(is_wildcard("serve.*"));
  EXPECT_TRUE(is_wildcard("perf_scaling.*"));
  EXPECT_TRUE(is_wildcard("a.b.*"));

  EXPECT_FALSE(is_wildcard("serve.queue_depth"));
  EXPECT_FALSE(is_wildcard("*.wmck.tmp"));  // suffix pattern: unsupported
  EXPECT_FALSE(is_wildcard(".*"));          // empty prefix
  EXPECT_FALSE(is_wildcard("Serve.*"));
}

// ---- markdown region parser -----------------------------------------

TEST(MetalintCatalog, ExtractsBackticksInsideRegionOnly) {
  const std::string md =
      "`outside.before`\n"
      "<!-- metalint:metrics:begin -->\n"
      "| `a.one` | first |\n"
      "prose with `a.two` and `not_a_name`\n"
      "<!-- metalint:metrics:end -->\n"
      "`outside.after`\n";
  const auto entries = catalog_entries(md, "metrics", "doc.md");
  ASSERT_EQ(entries.size(), 3u);  // grammar filtering is the caller's job
  EXPECT_EQ(entries[0].name, "a.one");
  EXPECT_EQ(entries[0].file, "doc.md");
  EXPECT_EQ(entries[0].line, 3);
  EXPECT_EQ(entries[1].name, "a.two");
  EXPECT_EQ(entries[2].name, "not_a_name");
}

TEST(MetalintCatalog, MultipleRegionsOfOneKindMerge) {
  const std::string md =
      "<!-- metalint:rules:begin -->\n"
      "`x.first`\n"
      "<!-- metalint:rules:end -->\n"
      "between\n"
      "<!-- metalint:rules:begin -->\n"
      "`x.second`\n"
      "<!-- metalint:rules:end -->\n";
  const auto entries = catalog_entries(md, "rules", "doc.md");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "x.first");
  EXPECT_EQ(entries[1].name, "x.second");
}

TEST(MetalintCatalog, OtherKindsAreInvisible) {
  const std::string md =
      "<!-- metalint:metrics:begin -->\n"
      "`m.name`\n"
      "<!-- metalint:metrics:end -->\n";
  EXPECT_TRUE(catalog_entries(md, "fault-sites", "doc.md").empty());
  EXPECT_TRUE(catalog_entries(md, "rules", "doc.md").empty());
}

// ---- the engine over the seeded corpus ------------------------------

TEST(MetalintEngine, CleanFixtureIsClean) {
  const verify::Report r = run_on("clean");
  EXPECT_TRUE(r.clean()) << r.to_string();
}

struct SeededCase {
  const char* fixture;
  const char* rule;
};

class MetalintSeeded : public ::testing::TestWithParam<SeededCase> {};

TEST_P(MetalintSeeded, FixtureTripsExactlyItsRule) {
  const SeededCase& c = GetParam();
  const verify::Report r = run_on(c.fixture);
  EXPECT_TRUE(r.has(c.rule)) << r.to_string();
  EXPECT_EQ(r.error_count(), 1u) << r.to_string();
  EXPECT_EQ(r.warning_count(), 0u) << r.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, MetalintSeeded,
    ::testing::Values(
        SeededCase{"counter-uncataloged", "metalint.counter-uncataloged"},
        SeededCase{"fault-site-uncataloged",
                   "metalint.fault-site-uncataloged"},
        SeededCase{"rule-id-collision", "metalint.rule-id-collision"},
        SeededCase{"error-vocab-drift", "metalint.error-vocab-drift"},
        SeededCase{"status-discarded", "metalint.status-discarded"},
        SeededCase{"include-guard", "metalint.include-guard"}),
    [](const ::testing::TestParamInfo<SeededCase>& info) {
      std::string name = info.param.fixture;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

// The repository this test is built from must itself be metalint-clean
// — the same gate the CI `metalint` job enforces on every PR.
TEST(MetalintEngine, RepositoryIsClean) {
  Options opt;
  opt.root = std::string(WAVEMIN_TEST_DATA_DIR) + "/../..";
  const verify::Report r = run(opt);
  EXPECT_TRUE(r.clean()) << r.to_string();
}

} // namespace
} // namespace wm::metalint
