// Tests for arrival-time analysis, power modes and skew computation.

#include "timing/arrival.hpp"

#include <gtest/gtest.h>

#include "cells/electrical.hpp"
#include "cells/library.hpp"
#include "timing/power_mode.hpp"
#include "util/error.hpp"

namespace wm {
namespace {

class TimingTest : public ::testing::Test {
 protected:
  CellLibrary lib = CellLibrary::nangate45_like();
  const Cell* buf = &lib.by_name("BUF_X16");

  ClockTree chain(int depth) {
    ClockTree t;
    NodeId v = t.add_root({0.0, 0.0}, buf);
    for (int i = 1; i <= depth; ++i) {
      v = t.add_node(v, {20.0 * i, 0.0}, buf);
    }
    t.node(v).sink_cap = 10.0;
    return t;
  }
};

TEST_F(TimingTest, ArrivalsAccumulateAlongAChain) {
  ClockTree t = chain(3);
  const ArrivalResult r = compute_arrivals(t);
  // Strictly increasing along the path.
  for (NodeId v = 1; v < 4; ++v) {
    EXPECT_GT(r.input_arrival[static_cast<std::size_t>(v)],
              r.input_arrival[static_cast<std::size_t>(v - 1)]);
    EXPECT_GT(r.output_arrival[static_cast<std::size_t>(v)],
              r.input_arrival[static_cast<std::size_t>(v)]);
  }
  // Single leaf: zero skew by definition.
  EXPECT_DOUBLE_EQ(r.skew(), 0.0);
}

TEST_F(TimingTest, WireElmoreMatchesClosedForm) {
  ClockTree t = chain(1);
  const TreeNode& n = t.node(1);
  const KOhm rw = n.wire_len * tech::kWireResPerUm;
  const Ff cw = n.wire_len * tech::kWireCapPerUm;
  EXPECT_NEAR(wire_elmore(t, 1), rw * (0.5 * cw + n.cell->c_in), 1e-12);
  EXPECT_DOUBLE_EQ(wire_elmore(t, 0), 0.0);  // root has no edge
}

TEST_F(TimingTest, RouteExtraAddsPureDelay) {
  ClockTree t1 = chain(2);
  ClockTree t2 = chain(2);
  t2.node(2).route_extra = 17.0;
  const ArrivalResult r1 = compute_arrivals(t1);
  const ArrivalResult r2 = compute_arrivals(t2);
  EXPECT_NEAR(r2.output_arrival[2] - r1.output_arrival[2], 17.0, 1e-9);
  // Pure delay: slews unchanged.
  EXPECT_DOUBLE_EQ(r1.slew_in[2], r2.slew_in[2]);
}

TEST_F(TimingTest, LowVddSlowsIslandsOnly) {
  // Two leaves, one per island; mode drops island 1 to 0.9 V.
  ClockTree t;
  const NodeId r = t.add_root({0.0, 0.0}, buf);
  const NodeId l0 = t.add_node(r, {10.0, 10.0}, buf);
  const NodeId l1 = t.add_node(r, {10.0, -10.0}, buf);
  t.node(l0).sink_cap = t.node(l1).sink_cap = 10.0;
  t.node(l1).island = 1;

  const ModeSet modes({PowerMode{"hi", {1.1, 1.1}, {}, {}},
                       PowerMode{"lo", {1.1, 0.9}, {}, {}}});
  const ArrivalResult hi = compute_arrivals(t, modes, 0);
  const ArrivalResult lo = compute_arrivals(t, modes, 1);
  EXPECT_NEAR(hi.output_arrival[static_cast<std::size_t>(l0)],
              lo.output_arrival[static_cast<std::size_t>(l0)], 1e-9);
  EXPECT_GT(lo.output_arrival[static_cast<std::size_t>(l1)],
            hi.output_arrival[static_cast<std::size_t>(l1)]);
  EXPECT_GT(lo.skew(), hi.skew());
  EXPECT_NEAR(worst_skew(t, modes), lo.skew(), 1e-9);
}

TEST_F(TimingTest, AdjustableCodesAddPerModeDelay) {
  ClockTree t = chain(2);
  const Cell* adb = &lib.by_name("ADB_X16");
  t.set_cell(2, adb);
  t.node(2).adj_codes = {0, 5};
  const ModeSet modes(
      {PowerMode{"a", {1.1}, {}, {}}, PowerMode{"b", {1.1}, {}, {}}});
  const ArrivalResult a = compute_arrivals(t, modes, 0);
  const ArrivalResult b = compute_arrivals(t, modes, 1);
  EXPECT_NEAR(b.output_arrival[2] - a.output_arrival[2],
              5.0 * adb->adj_step, 1e-9);
}

TEST_F(TimingTest, PerturbationScalesDelays) {
  ClockTree t = chain(2);
  DelayPerturbation pert;
  pert.cell_factor.assign(t.size(), 1.10);
  pert.wire_factor.assign(t.size(), 1.0);
  const ArrivalResult base = compute_arrivals(t);
  const ArrivalResult slow =
      compute_arrivals(t, ModeSet::single(), 0, &pert);
  // All cell delays scaled by 1.10, wire delays untouched: the arrival
  // grows, but by less than 10% of the total.
  EXPECT_GT(slow.output_arrival[2], base.output_arrival[2]);
  EXPECT_LE(slow.output_arrival[2], 1.10 * base.output_arrival[2] + 1e-9);
}

TEST(ModeSetTest, InvariantsAndQueries) {
  EXPECT_THROW(ModeSet({PowerMode{"a", {1.1, 1.1}, {}, {}},
                        PowerMode{"b", {1.1}, {}, {}}}),
               Error);
  const ModeSet m({PowerMode{"a", {1.1, 0.9}, {}, {}},
                   PowerMode{"b", {0.9, 0.9}, {}, {}}});
  EXPECT_EQ(m.count(), 2u);
  EXPECT_EQ(m.island_count(), 2u);
  EXPECT_DOUBLE_EQ(m.vdd(0, 1), 0.9);
  EXPECT_THROW(m.vdd(0, 5), Error);
  EXPECT_THROW(m.mode(2), Error);
  EXPECT_EQ(m.distinct_vdds(), (std::vector<Volt>{0.9, 1.1}));
  const ModeSet s = ModeSet::single(3);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.vdd(0, 2), tech::kVddNominal);
}

} // namespace
} // namespace wm
