// Tests for clock tree synthesis, skew balancing, repeater insertion
// and the benchmark generator.

#include "cts/synthesis.hpp"

#include <gtest/gtest.h>

#include <set>

#include "cts/benchmarks.hpp"
#include "timing/arrival.hpp"
#include "tree/zone.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace wm {
namespace {

class CtsTest : public ::testing::Test {
 protected:
  CellLibrary lib = CellLibrary::nangate45_like();

  std::vector<LeafSpec> random_leaves(int n, std::uint64_t seed,
                                      Um die = 200.0) {
    Rng rng(seed);
    std::vector<LeafSpec> out;
    for (int i = 0; i < n; ++i) {
      LeafSpec s;
      s.pos = {rng.uniform(5.0, die - 5.0), rng.uniform(5.0, die - 5.0)};
      s.sink_cap = rng.uniform(8.0, 24.0);
      out.push_back(s);
    }
    return out;
  }
};

TEST_F(CtsTest, SynthesisCoversAllLeaves) {
  const auto leaves = random_leaves(37, 11);
  const ClockTree t = synthesize_tree(leaves, lib);
  EXPECT_EQ(t.leaf_count(), 37u);
  // Every leaf position appears exactly once.
  std::multiset<std::pair<Um, Um>> want, got;
  for (const LeafSpec& s : leaves) want.insert({s.pos.x, s.pos.y});
  for (const TreeNode& n : t.nodes()) {
    if (n.is_leaf()) got.insert({n.pos.x, n.pos.y});
  }
  EXPECT_EQ(want, got);
}

TEST_F(CtsTest, UniformLeafDepth) {
  // Depth balance is a structural invariant of the synthesizer (cell
  // count asymmetry cannot be balanced with wire snaking).
  for (int n : {5, 16, 37, 100}) {
    const ClockTree t = synthesize_tree(random_leaves(n, 23), lib);
    int depth = -1;
    for (const TreeNode& node : t.nodes()) {
      if (!node.is_leaf()) continue;
      int d = 0;
      for (NodeId v = node.id; v != kNoNode; v = t.node(v).parent) ++d;
      if (depth < 0) depth = d;
      EXPECT_EQ(d, depth) << "n=" << n;
    }
  }
}

TEST_F(CtsTest, BalanceReachesNearZeroSkew) {
  ClockTree t = synthesize_tree(random_leaves(48, 3), lib);
  const Ps final_skew = balance_skew(t, 8);
  EXPECT_LT(final_skew, 1.0);
  EXPECT_LT(compute_arrivals(t).skew(), 1.0);
}

TEST_F(CtsTest, BalanceNeverShrinksBelowManhattan) {
  ClockTree t = synthesize_tree(random_leaves(30, 5), lib);
  balance_skew(t, 8);
  for (const TreeNode& n : t.nodes()) {
    if (n.parent == kNoNode) continue;
    EXPECT_GE(n.wire_len + 1e-9,
              manhattan(n.pos, t.node(n.parent).pos));
  }
}

TEST_F(CtsTest, RepeatersInsertExactBudgetAndKeepSkewSmall) {
  ClockTree t = synthesize_tree(random_leaves(20, 9), lib);
  const std::size_t before = t.size();
  const int inserted = insert_repeaters(t, lib, "BUF_X16", 47);
  EXPECT_EQ(inserted, 47);
  EXPECT_EQ(t.size(), before + 47);
  EXPECT_EQ(t.leaf_count(), 20u);
  balance_skew(t, 8);
  EXPECT_LT(compute_arrivals(t).skew(), 1.0);
}

TEST_F(CtsTest, JitterBoundedAndDeterministic) {
  ClockTree t1 = synthesize_tree(random_leaves(24, 13), lib);
  balance_skew(t1, 8);
  ClockTree t2 = t1.clone();
  Rng r1(99), r2(99);
  jitter_leaf_arrivals(t1, r1, 9.0);
  jitter_leaf_arrivals(t2, r2, 9.0);
  const Ps skew = compute_arrivals(t1).skew();
  EXPECT_GT(skew, 0.5);
  EXPECT_LT(skew, 10.0);  // the paper's input trees are < 10 ps
  EXPECT_NEAR(skew, compute_arrivals(t2).skew(), 1e-12);
}

TEST_F(CtsTest, SynthesisPreconditions) {
  EXPECT_THROW(synthesize_tree({}, lib), Error);
  CtsOptions opts;
  opts.fanout = 1;
  EXPECT_THROW(synthesize_tree(random_leaves(4, 1), lib, opts), Error);
}

class BenchmarkSuiteTest
    : public ::testing::TestWithParam<BenchmarkSpec> {};

TEST_P(BenchmarkSuiteTest, MatchesPublishedStatistics) {
  const BenchmarkSpec& spec = GetParam();
  const CellLibrary lib = CellLibrary::nangate45_like();
  const ClockTree t = make_benchmark(spec, lib);
  EXPECT_EQ(static_cast<int>(t.size()), spec.n_total);
  EXPECT_EQ(static_cast<int>(t.leaf_count()), spec.n_leaves);
  EXPECT_LT(compute_arrivals(t).skew(), 10.0);
  // Every node lies inside the die and has a valid island.
  for (const TreeNode& n : t.nodes()) {
    EXPECT_GE(n.pos.x, 0.0);
    EXPECT_LE(n.pos.x, spec.die);
    EXPECT_GE(n.island, 0);
    EXPECT_LT(n.island, spec.islands);
  }
  // Generation is deterministic.
  const ClockTree t2 = make_benchmark(spec, lib);
  EXPECT_NEAR(compute_arrivals(t).skew(), compute_arrivals(t2).skew(),
              1e-12);
}

TEST_P(BenchmarkSuiteTest, ZoneOccupancyNearPaperValues) {
  const BenchmarkSpec& spec = GetParam();
  const CellLibrary lib = CellLibrary::nangate45_like();
  const ClockTree t = make_benchmark(spec, lib);
  const ZoneMap zones(t);
  // Paper: 4.3 (ISCAS), 4.9 (ISPD), 7.1 (s35932) leaves per zone.
  EXPECT_GT(zones.mean_occupancy(), 2.0) << spec.name;
  EXPECT_LT(zones.mean_occupancy(), 12.0) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(AllCircuits, BenchmarkSuiteTest,
                         ::testing::ValuesIn(benchmark_suite()),
                         [](const auto& info) { return info.param.name; });

TEST(BenchmarkLookup, ByName) {
  EXPECT_EQ(spec_by_name("s35932").n_leaves, 246);
  EXPECT_THROW(spec_by_name("sXXXX"), Error);
}

TEST(BenchmarkModes, FourModesOverIslands) {
  const BenchmarkSpec& spec = spec_by_name("s13207");
  const ModeSet modes = make_mode_set(spec);
  EXPECT_EQ(modes.count(), 4u);
  EXPECT_EQ(modes.island_count(),
            static_cast<std::size_t>(spec.islands));
  // Mode 1 is the all-nominal mode.
  for (Volt v : modes.mode(0).island_vdd) {
    EXPECT_DOUBLE_EQ(v, tech::kVddNominal);
  }
  // Every other mode has at least one low island.
  for (std::size_t m = 1; m < modes.count(); ++m) {
    bool low = false;
    for (Volt v : modes.mode(m).island_vdd) low |= v < 1.0;
    EXPECT_TRUE(low) << modes.mode(m).name;
  }
}

} // namespace
} // namespace wm
