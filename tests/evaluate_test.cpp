// Tests for the evaluation harness (validation metrics) and for the
// variation guard band option.

#include "core/evaluate.hpp"

#include <gtest/gtest.h>

#include "cells/characterizer.hpp"
#include "core/wavemin.hpp"
#include "cts/benchmarks.hpp"
#include "timing/arrival.hpp"

namespace wm {
namespace {

class EvaluateTest : public ::testing::Test {
 protected:
  CellLibrary lib = CellLibrary::nangate45_like();
  Characterizer chr{lib};
};

TEST_F(EvaluateTest, MetricsArePositiveAndConsistent) {
  const ClockTree tree = make_benchmark(spec_by_name("s13207"), lib);
  const Evaluation e = evaluate_design(tree);
  EXPECT_GT(e.peak_current, 0.0);
  EXPECT_GT(e.tile_peak_current, 0.0);
  // The worst tile cannot exceed the whole-chip peak by definition of a
  // subset, but may exceed it in time alignment? No: a subset's peak is
  // at most the total's value at the same instant... which is at most
  // the total's peak. (All currents are non-negative.)
  EXPECT_LE(e.tile_peak_current, e.peak_current + 1e-6);
  EXPECT_GT(e.vdd_noise, 0.0);
  EXPECT_GT(e.gnd_noise, 0.0);
  EXPECT_GT(e.avg_power_mw, 0.0);
  EXPECT_NEAR(e.worst_skew, compute_arrivals(tree).skew(), 1e-6);
  ASSERT_EQ(e.peak_by_mode.size(), 1u);
  EXPECT_DOUBLE_EQ(e.peak_by_mode[0], e.peak_current);
}

TEST_F(EvaluateTest, AveragePowerIsInvariantUnderPolarity) {
  // Polarity assignment redistributes current between rails and over
  // time, but the total charge per cycle (and hence average power) is
  // nearly unchanged — only the cell-swap (sizing) differences show up.
  ClockTree t1 = make_benchmark(spec_by_name("s13207"), lib);
  const Evaluation before = evaluate_design(t1);
  WaveMinOptions opts;
  opts.kappa = 20.0;
  opts.samples = 32;
  ASSERT_TRUE(clk_wavemin(t1, lib, chr, opts).success);
  const Evaluation after = evaluate_design(t1);
  EXPECT_NEAR(after.avg_power_mw, before.avg_power_mw,
              0.35 * before.avg_power_mw);
  // ... while the peak dropped a lot.
  EXPECT_LT(after.peak_current, 0.85 * before.peak_current);
}

TEST_F(EvaluateTest, MultiModeWorstCaseIsMaxOverModes) {
  const BenchmarkSpec& spec = spec_by_name("s13207");
  const ClockTree tree = make_benchmark(spec, lib);
  const ModeSet modes = make_mode_set(spec);
  const Evaluation e = evaluate_design(tree, modes, 2.0);
  ASSERT_EQ(e.peak_by_mode.size(), modes.count());
  UA max_mode = 0.0;
  for (UA p : e.peak_by_mode) max_mode = std::max(max_mode, p);
  EXPECT_DOUBLE_EQ(e.peak_current, max_mode);
  EXPECT_NEAR(e.worst_skew, worst_skew(tree, modes), 1e-6);
}

TEST_F(EvaluateTest, GuardBandTightensRealizedSkew) {
  const BenchmarkSpec& spec = spec_by_name("s13207");
  WaveMinOptions opts;
  opts.kappa = 30.0;
  opts.samples = 32;

  ClockTree loose = make_benchmark(spec, lib);
  ASSERT_TRUE(clk_wavemin(loose, lib, chr, opts).success);

  opts.skew_guard_band = 12.0;
  ClockTree tight = make_benchmark(spec, lib);
  ASSERT_TRUE(clk_wavemin(tight, lib, chr, opts).success);

  // The guarded run must respect the reduced bound (the unguarded run
  // may legally use the full window).
  EXPECT_LE(compute_arrivals(tight).skew(), 30.0 - 12.0 + 3.0);
  EXPECT_LE(compute_arrivals(loose).skew(), 30.0 + 3.0);
}

TEST_F(EvaluateTest, GuardBandValidation) {
  ClockTree tree = make_benchmark(spec_by_name("s13207"), lib);
  WaveMinOptions opts;
  opts.kappa = 20.0;
  opts.skew_guard_band = 25.0;  // >= kappa: invalid
  EXPECT_THROW(clk_wavemin(tree, lib, chr, opts), Error);
}

} // namespace
} // namespace wm
