// Calibration regression bands: lock the headline metrics of the
// reproduction inside generous tolerance bands, so future edits to the
// cell model, the synthesizer or the solvers cannot silently drift the
// reproduced results (EXPERIMENTS.md quotes these numbers).

#include <gtest/gtest.h>

#include "cells/characterizer.hpp"
#include "core/evaluate.hpp"
#include "core/wavemin.hpp"
#include "cts/benchmarks.hpp"
#include "peakmin/clkpeakmin.hpp"
#include "timing/arrival.hpp"
#include "tree/zone.hpp"

namespace wm {
namespace {

class RegressionTest : public ::testing::Test {
 protected:
  CellLibrary lib = CellLibrary::nangate45_like();
  Characterizer chr{lib};
};

TEST_F(RegressionTest, BenchmarkGeneratorBands) {
  // s13207: ~5-9 ps jittered skew, leaf slews near the 20 ps
  // characterization slew (+/- 20 ps), occupancy in the paper's range.
  const ClockTree tree = make_benchmark(spec_by_name("s13207"), lib);
  const ArrivalResult arr = compute_arrivals(tree);
  EXPECT_GT(arr.skew(), 2.0);
  EXPECT_LT(arr.skew(), 10.0);
  for (const TreeNode& n : tree.nodes()) {
    if (!n.is_leaf()) continue;
    const Ps slew = arr.slew_in[static_cast<std::size_t>(n.id)];
    EXPECT_GT(slew, 10.0);
    EXPECT_LT(slew, 45.0);
  }
  const ZoneMap zones(tree);
  EXPECT_GT(zones.mean_occupancy(), 2.5);
  EXPECT_LT(zones.mean_occupancy(), 8.0);
}

TEST_F(RegressionTest, PolarityMixingHalvesTheRailPeak) {
  // The first-order physics every polarity paper relies on: vs the
  // all-buffer tree, the optimized peak drops by 20-60%.
  ClockTree tree = make_benchmark(spec_by_name("s13207"), lib);
  const UA before = evaluate_design(tree, 2.0).peak_current;
  WaveMinOptions opts;
  opts.kappa = 20.0;
  opts.samples = 64;
  ASSERT_TRUE(clk_wavemin(tree, lib, chr, opts).success);
  const UA after = evaluate_design(tree, 2.0).peak_current;
  EXPECT_LT(after, 0.80 * before);
  EXPECT_GT(after, 0.40 * before);
}

TEST_F(RegressionTest, WaveMinVersusPeakMinBand) {
  // On s35932 (the largest leaf population) WaveMin's validated peak
  // must stay within [-3%, +8%] of the PeakMin baseline — the Table V
  // reproduction band (paper direction: positive; our compressed
  // margin is ~1-2% with circuit-to-circuit noise, EXPERIMENTS.md).
  const BenchmarkSpec& spec = spec_by_name("s35932");
  ClockTree t1 = make_benchmark(spec, lib);
  ClockTree t2 = make_benchmark(spec, lib);
  ASSERT_TRUE(clk_peakmin(t1, lib, chr, 20.0).success);
  WaveMinOptions opts;
  opts.kappa = 20.0;
  opts.samples = 158;
  ASSERT_TRUE(clk_wavemin(t2, lib, chr, opts).success);
  const UA pm = evaluate_design(t1, 2.0).peak_current;
  const UA wm = evaluate_design(t2, 2.0).peak_current;
  const double gain = 100.0 * (pm - wm) / pm;
  EXPECT_GT(gain, -3.0);
  EXPECT_LT(gain, 8.0);
}

TEST_F(RegressionTest, CellModelBands) {
  // BUF_X16 at a 16 fF FF bank: delay ~25-45 ps, peak ~3-9 mA.
  const Cell& buf = lib.by_name("BUF_X16");
  const DriveConditions dc{16.0, 20.0, tech::kVddNominal, 25.0};
  const CellTiming t = cell_timing(buf, dc);
  EXPECT_GT(t.delay(), 20.0);
  EXPECT_LT(t.delay(), 50.0);
  const CellWave w = simulate_cell(buf, dc);
  EXPECT_GT(w.idd.peak(), 2000.0);
  EXPECT_LT(w.idd.peak(), 12000.0);
  // INV vs BUF delay gap is the polarity lever: 8-20 ps.
  const Ps gap =
      t.delay() - cell_timing(lib.by_name("INV_X16"), dc).delay();
  EXPECT_GT(gap, 6.0);
  EXPECT_LT(gap, 25.0);
}

TEST_F(RegressionTest, MultiModeSkewBands) {
  // The mode-induced skews that drive Table VII: ISCAS under ~100 ps,
  // ISPD circuits well above 90 ps (they require ADBs).
  for (const char* name : {"s13207", "ispd09f34"}) {
    const BenchmarkSpec& spec = spec_by_name(name);
    const ClockTree tree = make_benchmark(spec, lib);
    const Ps skew = worst_skew(tree, make_mode_set(spec));
    if (std::string(name) == "s13207") {
      EXPECT_GT(skew, 20.0);
      EXPECT_LT(skew, 100.0);
    } else {
      EXPECT_GT(skew, 100.0);
      EXPECT_LT(skew, 250.0);
    }
  }
}

} // namespace
} // namespace wm
