// Tests for thermal operating points: temperature derating of delays,
// the coolest-corner noise pessimism claim ([27], revisited in the
// paper's Sec. VI), and optimization across thermal modes.

#include <gtest/gtest.h>

#include "cells/characterizer.hpp"
#include "cells/electrical.hpp"
#include "core/evaluate.hpp"
#include "core/wavemin.hpp"
#include "cts/benchmarks.hpp"
#include "timing/arrival.hpp"
#include "wave/tree_sim.hpp"

namespace wm {
namespace {

class ThermalTest : public ::testing::Test {
 protected:
  CellLibrary lib = CellLibrary::nangate45_like();

  /// Two thermal corners over one island: cool (0 C) and hot (85 C).
  ModeSet thermal_modes(int islands) {
    const auto k = static_cast<std::size_t>(islands);
    const std::vector<Volt> hi(k, tech::kVddNominal);
    return ModeSet({PowerMode{"cool", hi, std::vector<double>(k, 0.0), {}},
                    PowerMode{"hot", hi, std::vector<double>(k, 85.0), {}}});
  }
};

TEST_F(ThermalTest, TempFactorMonotone) {
  EXPECT_DOUBLE_EQ(temp_delay_factor(25.0), 1.0);
  EXPECT_GT(temp_delay_factor(85.0), 1.0);
  EXPECT_LT(temp_delay_factor(0.0), 1.0);
}

TEST_F(ThermalTest, HotCellsAreSlower) {
  const Cell& buf = lib.by_name("BUF_X16");
  DriveConditions cool{16.0, 20.0, tech::kVddNominal, 0.0};
  DriveConditions hot{16.0, 20.0, tech::kVddNominal, 85.0};
  EXPECT_GT(cell_timing(buf, hot).delay(), cell_timing(buf, cool).delay());
}

TEST_F(ThermalTest, CoolestCornerHasTheSharpestPulses) {
  // The prior art's pessimism assumption: peak noise is greatest at the
  // coolest state (pulses sharpen as transitions speed up).
  const Cell& buf = lib.by_name("BUF_X16");
  DriveConditions cool{16.0, 20.0, tech::kVddNominal, 0.0};
  DriveConditions hot{16.0, 20.0, tech::kVddNominal, 85.0};
  EXPECT_GT(simulate_cell(buf, cool).idd.peak(),
            simulate_cell(buf, hot).idd.peak());
}

TEST_F(ThermalTest, ModeSetTempDefaultsAndQueries) {
  const ModeSet m = thermal_modes(2);
  EXPECT_DOUBLE_EQ(m.temp(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.temp(1, 0), 85.0);
  EXPECT_DOUBLE_EQ(ModeSet::single(2).temp(0, 1), 25.0);
  const auto temps = m.distinct_temps();
  ASSERT_EQ(temps.size(), 3u);  // 0, 25 (implicit default), 85
  EXPECT_DOUBLE_EQ(temps.front(), 0.0);
  EXPECT_DOUBLE_EQ(temps.back(), 85.0);
}

TEST_F(ThermalTest, ThermalSkewAppearsWithMixedIslands) {
  // A gradient across islands (one island hot, one cool) creates skew
  // in the hot-gradient mode but not in the uniform mode.
  const BenchmarkSpec& spec = spec_by_name("s13207");
  ClockTree tree = make_benchmark(spec, lib);
  const auto k = static_cast<std::size_t>(spec.islands);
  const std::vector<Volt> hi(k, tech::kVddNominal);
  std::vector<double> gradient(k, 25.0);
  for (std::size_t i = 0; i < k / 2; ++i) gradient[i] = 95.0;
  const ModeSet modes({PowerMode{"uniform", hi, {}, {}},
                       PowerMode{"gradient", hi, gradient, {}}});
  const Ps uniform_skew = compute_arrivals(tree, modes, 0).skew();
  const Ps gradient_skew = compute_arrivals(tree, modes, 1).skew();
  EXPECT_GT(gradient_skew, uniform_skew + 3.0);
}

TEST_F(ThermalTest, OptimizationAcrossThermalCorners) {
  const BenchmarkSpec& spec = spec_by_name("s15850");
  ClockTree tree = make_benchmark(spec, lib);
  const ModeSet modes = thermal_modes(spec.islands);
  CharacterizerOptions co;
  co.temps = modes.distinct_temps();
  const Characterizer chr(lib, co);

  WaveMinOptions opts;
  opts.kappa = 25.0;
  opts.samples = 16;
  const WaveMinResult r =
      run_wavemin(tree, lib, chr, modes, lib.assignment_library(), opts);
  ASSERT_TRUE(r.success);
  EXPECT_LE(worst_skew(tree, modes), opts.kappa * 1.2);

  // Validation: the cool corner carries the higher peak.
  const Evaluation e = evaluate_design(tree, modes, 2.0);
  ASSERT_EQ(e.peak_by_mode.size(), 2u);
  EXPECT_GT(e.peak_by_mode[0], e.peak_by_mode[1]);
}

TEST_F(ThermalTest, UncharacterizedTempRejected) {
  Characterizer chr(lib);  // 25 C only
  EXPECT_THROW(chr.lookup(lib.by_name("BUF_X8"), 8.0,
                          tech::kVddNominal, 85.0),
               Error);
}

} // namespace
} // namespace wm
