// Unit tests for the ClockTree data structure.

#include "tree/clock_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "cells/library.hpp"
#include "util/error.hpp"

namespace wm {
namespace {

class TreeTest : public ::testing::Test {
 protected:
  CellLibrary lib = CellLibrary::nangate45_like();
  const Cell* buf = &lib.by_name("BUF_X8");
  const Cell* inv = &lib.by_name("INV_X8");

  /// root -> {a -> {l1, l2}, l3}
  ClockTree make_small() {
    ClockTree t;
    const NodeId r = t.add_root({0.0, 0.0}, buf);
    const NodeId a = t.add_node(r, {10.0, 0.0}, buf);
    t.add_node(a, {20.0, 5.0}, buf);
    t.add_node(a, {20.0, -5.0}, buf);
    t.add_node(r, {0.0, 10.0}, buf);
    return t;
  }
};

TEST_F(TreeTest, ConstructionInvariants) {
  ClockTree t = make_small();
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.leaf_count(), 3u);
  EXPECT_EQ(t.root(), 0);
  EXPECT_EQ(t.leaves(), (std::vector<NodeId>{2, 3, 4}));
  EXPECT_EQ(t.non_leaves(), (std::vector<NodeId>{0, 1}));
}

TEST_F(TreeTest, PreconditionsEnforced) {
  ClockTree t;
  EXPECT_THROW(t.add_node(0, {0, 0}, buf), Error);  // no root yet
  t.add_root({0, 0}, buf);
  EXPECT_THROW(t.add_root({0, 0}, buf), Error);  // double root
  EXPECT_THROW(t.add_node(99, {0, 0}, buf), Error);
  EXPECT_THROW(t.add_node(0, {0, 0}, nullptr), Error);
  EXPECT_THROW(t.node(42), Error);
}

TEST_F(TreeTest, DefaultWireLengthIsManhattan) {
  ClockTree t;
  const NodeId r = t.add_root({0.0, 0.0}, buf);
  const NodeId c = t.add_node(r, {3.0, 4.0}, buf);
  EXPECT_DOUBLE_EQ(t.node(c).wire_len, 7.0);
  const NodeId d = t.add_node(r, {3.0, 4.0}, buf, 42.0);  // snaked
  EXPECT_DOUBLE_EQ(t.node(d).wire_len, 42.0);
}

TEST_F(TreeTest, LoadAccountsForWiresPinsAndSinks) {
  ClockTree t = make_small();
  t.node(2).sink_cap = 5.0;
  t.node(3).sink_cap = 7.0;
  // Node 1 drives two leaf pins plus their wire caps.
  const Ff expect = t.node(2).wire_len * tech::kWireCapPerUm + buf->c_in +
                    t.node(3).wire_len * tech::kWireCapPerUm + buf->c_in;
  EXPECT_NEAR(t.load_of(1), expect, 1e-9);
  // A leaf's load is its sink capacitance only.
  EXPECT_DOUBLE_EQ(t.load_of(2), 5.0);
}

TEST_F(TreeTest, OutputPolarityCountsInversions) {
  ClockTree t = make_small();
  EXPECT_EQ(t.output_polarity(2), Polarity::Positive);
  t.set_cell(2, inv);
  EXPECT_EQ(t.output_polarity(2), Polarity::Negative);
  t.set_cell(1, inv);  // ancestor also inverts: double negative
  EXPECT_EQ(t.output_polarity(2), Polarity::Positive);
  EXPECT_EQ(t.output_polarity(3), Polarity::Negative);
  EXPECT_EQ(t.output_polarity(4), Polarity::Positive);
}

TEST_F(TreeTest, SplitEdgeRewiresAndSharesLength) {
  ClockTree t = make_small();
  const Um before = t.node(2).wire_len;
  const Point mid{15.0, 2.5};
  const NodeId m = t.split_edge(2, mid, buf);
  EXPECT_EQ(t.node(2).parent, m);
  EXPECT_EQ(t.node(m).parent, 1);
  EXPECT_EQ(t.node(m).children, std::vector<NodeId>{2});
  // Children list of the old parent now names the repeater.
  const auto& ch = t.node(1).children;
  EXPECT_NE(std::find(ch.begin(), ch.end(), m), ch.end());
  EXPECT_EQ(std::find(ch.begin(), ch.end(), 2), ch.end());
  EXPECT_NEAR(t.node(m).wire_len + t.node(2).wire_len, before, 1e-9);
  EXPECT_THROW(t.split_edge(t.root(), mid, buf), Error);
}

TEST_F(TreeTest, InsertBelowAdoptsAllChildren) {
  ClockTree t = make_small();
  const NodeId m = t.insert_below(t.root(), {1.0, 1.0}, buf);
  EXPECT_EQ(t.node(t.root()).children, std::vector<NodeId>{m});
  EXPECT_EQ(t.node(m).children.size(), 2u);
  EXPECT_EQ(t.node(1).parent, m);
  EXPECT_EQ(t.node(4).parent, m);
  EXPECT_EQ(t.leaf_count(), 3u);  // leaves unchanged
}

TEST_F(TreeTest, TopologicalOrderAfterSplits) {
  ClockTree t = make_small();
  t.split_edge(2, {15.0, 2.5}, buf);
  t.insert_below(t.root(), {0.0, 0.0}, buf);
  const auto order = t.topological_order();
  ASSERT_EQ(order.size(), t.size());
  std::vector<int> position(t.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  for (const TreeNode& n : t.nodes()) {
    if (n.parent == kNoNode) continue;
    EXPECT_LT(position[static_cast<std::size_t>(n.parent)],
              position[static_cast<std::size_t>(n.id)]);
  }
}

TEST_F(TreeTest, LeavesUnderSubtree) {
  ClockTree t = make_small();
  auto under = t.leaves_under(1);
  std::sort(under.begin(), under.end());
  EXPECT_EQ(under, (std::vector<NodeId>{2, 3}));
  EXPECT_EQ(t.leaves_under(4), std::vector<NodeId>{4});
  auto all = t.leaves_under(t.root());
  EXPECT_EQ(all.size(), 3u);
}

} // namespace
} // namespace wm
