// Malformed-input corpus for the hardened .ctree / celllib readers.
//
// Every fixture under tests/data/bad_io is a deliberately broken file;
// the readers must reject each one with wm::Error (never UB — this
// binary also runs under the asan/ubsan CI job) and the message must
// be actionable: it names the offending line for any record-level
// defect and contains a fixture-specific phrase locating the problem.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "io/blob.hpp"
#include "io/tree_io.hpp"
#include "util/error.hpp"

namespace wm {
namespace {

std::string fixture(const std::string& name) {
  return std::string(WAVEMIN_TEST_DATA_DIR) + "/bad_io/" + name;
}

/// A minimal-but-valid library for resolving cell names in tree
/// fixtures; the corpus exercises the tree reader, not cell modeling.
CellLibrary tiny_lib() {
  return library_from_string(
      "celllib v1\n"
      "cell BUF_X1 buffer 1 0.7 0.9 6.4 50 8 0.18 0 0\n"
      "cell INV_X1 inverter 1 0.3 0.5 5.6 20 7 0.10 0 0\n");
}

struct BadCase {
  const char* file;
  const char* expect;      // substring the diagnostic must contain
  bool has_line;           // message should carry a "line N:" locator
};

class BadTreeTest : public ::testing::TestWithParam<BadCase> {};
class BadLibTest : public ::testing::TestWithParam<BadCase> {};

/// wavemin.blob/v1 fixtures (regenerate: scripts/gen_bad_blobs.py).
/// Binary-format diagnostics locate the defect by byte offset instead
/// of line number; `offset` is the exact "at offset N" the message
/// must carry, or nullptr for pre-parse failures (short file).
struct BadBlobCase {
  const char* file;
  const char* expect;
  const char* offset;
};

class BadBlobTest : public ::testing::TestWithParam<BadBlobCase> {};

TEST_P(BadTreeTest, RejectedWithLocatedDiagnostic) {
  const BadCase& c = GetParam();
  const CellLibrary lib = tiny_lib();
  try {
    (void)load_tree(fixture(c.file), lib);
    FAIL() << c.file << ": expected wm::Error, got a parsed tree";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(c.expect), std::string::npos)
        << c.file << ": message '" << msg << "' lacks '" << c.expect
        << "'";
    if (c.has_line) {
      EXPECT_NE(msg.find("line "), std::string::npos)
          << c.file << ": message '" << msg << "' lacks a line number";
    }
    // load_tree prefixes the path so batch logs identify the file.
    EXPECT_NE(msg.find(c.file), std::string::npos)
        << c.file << ": message '" << msg << "' lacks the file path";
  }
}

TEST_P(BadLibTest, RejectedWithLocatedDiagnostic) {
  const BadCase& c = GetParam();
  try {
    (void)load_library(fixture(c.file));
    FAIL() << c.file << ": expected wm::Error, got a parsed library";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(c.expect), std::string::npos)
        << c.file << ": message '" << msg << "' lacks '" << c.expect
        << "'";
    if (c.has_line) {
      EXPECT_NE(msg.find("line "), std::string::npos)
          << c.file << ": message '" << msg << "' lacks a line number";
    }
  }
}

TEST_P(BadBlobTest, RejectedWithPathAndOffset) {
  const BadBlobCase& c = GetParam();
  try {
    (void)blob::View::map(fixture(c.file));
    FAIL() << c.file << ": expected wm::Error, got a mapped blob";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(c.expect), std::string::npos)
        << c.file << ": message '" << msg << "' lacks '" << c.expect
        << "'";
    if (c.offset != nullptr) {
      EXPECT_NE(msg.find(std::string("at offset ") + c.offset),
                std::string::npos)
          << c.file << ": message '" << msg << "' lacks 'at offset "
          << c.offset << "'";
    }
    // The daemon logs this verbatim when it rejects a --blob at boot;
    // the path is what lets an operator find the artifact.
    EXPECT_NE(msg.find(c.file), std::string::npos)
        << c.file << ": message '" << msg << "' lacks the file path";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, BadTreeTest,
    ::testing::Values(
        BadCase{"empty.ctree", "empty ctree input", false},
        BadCase{"bad_header.ctree", "not a ctree v1", true},
        BadCase{"bad_version.ctree", "not a ctree v1", true},
        BadCase{"not_node_record.ctree", "unexpected record 'edge'",
                true},
        BadCase{"truncated_record.ctree", "truncated record", true},
        BadCase{"nan_coord.ctree", "non-finite value", true},
        BadCase{"inf_wirelen.ctree", "non-finite value", true},
        BadCase{"nan_sinkcap.ctree", "non-finite value", true},
        BadCase{"duplicate_id.ctree", "duplicate or out-of-order",
                true},
        BadCase{"id_gap.ctree", "non-dense node id 2", true},
        BadCase{"parent_after_child.ctree", "must precede", true},
        BadCase{"parent_out_of_range.ctree", "must precede", true},
        BadCase{"unknown_cell.ctree", "unknown cell 'NO_SUCH_CELL'",
                true},
        BadCase{"multiple_roots.ctree", "multiple roots", true},
        BadCase{"huge_id.ctree", "missing or unparsable", true},
        BadCase{"trailing_token.ctree", "unexpected trailing token",
                true},
        BadCase{"bad_xtra.ctree", "malformed xtra token", true},
        BadCase{"inf_xtra.ctree", "non-finite xtra value", true},
        BadCase{"no_nodes.ctree", "no nodes", false},
        BadCase{"oversized_line.ctree", "oversized line", true}),
    [](const ::testing::TestParamInfo<BadCase>& info) {
      std::string n = info.param.file;
      for (char& ch : n) {
        if (ch == '.') ch = '_';
      }
      return n;
    });

INSTANTIATE_TEST_SUITE_P(
    Corpus, BadLibTest,
    ::testing::Values(
        BadCase{"lib_empty.celllib", "empty celllib input", false},
        BadCase{"lib_bad_header.celllib", "not a celllib v1", true},
        BadCase{"lib_truncated.celllib", "truncated record", true},
        BadCase{"lib_nan_field.celllib", "non-finite value", true},
        BadCase{"lib_unknown_kind.celllib", "unknown cell kind 'nand'",
                true},
        BadCase{"lib_duplicate_name.celllib",
                "duplicate cell name 'BUF_X1'", true},
        BadCase{"lib_bad_record.celllib",
                "unexpected record 'buffer'", true},
        BadCase{"lib_trailing.celllib", "unexpected trailing token",
                true}),
    [](const ::testing::TestParamInfo<BadCase>& info) {
      std::string n = info.param.file;
      for (char& ch : n) {
        if (ch == '.') ch = '_';
      }
      return n;
    });

INSTANTIATE_TEST_SUITE_P(
    Corpus, BadBlobTest,
    ::testing::Values(
        BadBlobCase{"blob_short.wmblob", "short file", nullptr},
        BadBlobCase{"blob_bad_magic.wmblob", "bad magic", "0"},
        BadBlobCase{"blob_bad_version.wmblob",
                    "unsupported version 99", "8"},
        BadBlobCase{"blob_section_count.wmblob",
                    "section count 65 out of range", "12"},
        BadBlobCase{"blob_size_mismatch.wmblob", "file size mismatch",
                    "16"},
        BadBlobCase{"blob_crc_flip.wmblob", "CRC mismatch", "88"},
        BadBlobCase{"blob_truncated_table.wmblob",
                    "truncated section table", "24"},
        BadBlobCase{"blob_oversize_section.wmblob",
                    "section \"library\" out of bounds", "24"},
        BadBlobCase{"blob_bad_name.wmblob", "bad section name", "24"}),
    [](const ::testing::TestParamInfo<BadBlobCase>& info) {
      std::string n = info.param.file;
      for (char& ch : n) {
        if (ch == '.') ch = '_';
      }
      return n;
    });

// A structurally valid container whose payload is garbage passes the
// mapper (magic/CRC/table all check out) but must be rejected by the
// section decoders with the section name in the message — corruption
// inside a section is attributable without a hex dump.
TEST(IoNegative, BlobSectionDecodersReject) {
  const std::string path =
      ::testing::TempDir() + "/decoder_garbage.wmblob";
  blob::Writer w;
  // Claims 2^31 cells; the bounds-checked cursor runs dry immediately.
  w.add_section("library", {0x00, 0x00, 0x00, 0x80});
  w.save(path);
  const blob::View view = blob::View::map(path);  // container is valid
  try {
    (void)blob::load_library(view);
    FAIL() << "expected wm::Error from the library decoder";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("truncated \"library\" section"),
              std::string::npos)
        << msg;
  }
  // The charlut section is absent entirely: named, not segfaulted.
  const CellLibrary lib = tiny_lib();
  try {
    (void)blob::load_characterizer(view, lib);
    FAIL() << "expected wm::Error for the missing charlut section";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("missing \"charlut\" section"),
              std::string::npos)
        << msg;
  }
  std::remove(path.c_str());
}

// Field diagnostics carry the 1-based column and field name, so a
// truncated record is locatable without opening the file.
TEST(IoNegative, TruncatedRecordNamesFieldAndColumn) {
  const CellLibrary lib = tiny_lib();
  try {
    (void)tree_from_string("ctree v1\nnode 0 -1 BUF_X1 1.0\n", lib);
    FAIL() << "expected wm::Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'y'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("field 6"), std::string::npos) << msg;
  }
}

// A missing file fails cleanly with the path in the message.
TEST(IoNegative, MissingFileNamesPath) {
  const CellLibrary lib = tiny_lib();
  EXPECT_THROW((void)load_tree(fixture("does_not_exist.ctree"), lib),
               Error);
  EXPECT_THROW((void)load_library(fixture("does_not_exist.celllib")),
               Error);
}

// The same corpus must not trip sanitizers even when driven through
// the string-based entry points (no file-size guard on that path).
TEST(IoNegative, StringEntryPointsAlsoReject) {
  const CellLibrary lib = tiny_lib();
  EXPECT_THROW((void)tree_from_string("", lib), Error);
  EXPECT_THROW((void)tree_from_string("ctree v1\nnode 0 -1 X 0", lib),
               Error);
  EXPECT_THROW((void)library_from_string("celllib v9\n"), Error);
}

} // namespace
} // namespace wm
