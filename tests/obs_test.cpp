// Tests for the wm::obs observability layer: hierarchical phase timers
// driven by a fake clock, counter/histogram atomicity under a worker
// pool, the versioned JSON schema (serialize -> parse -> compare), and
// the zero-allocation guarantee of the disabled (null-registry) path.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/metrics_json.hpp"
#include "util/error.hpp"

// ---------------------------------------------------------------------
// Global allocation tracking for the no-op-path test. Replacing the
// global operator new is binary-wide, so the counter only flips on
// inside the measured region (single-threaded, no gtest allocations).
namespace {
std::atomic<std::size_t> g_alloc_count{0};
std::atomic<bool> g_alloc_tracking{false};

void* tracked_alloc(std::size_t n) {
  if (g_alloc_tracking.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
} // namespace

void* operator new(std::size_t n) { return tracked_alloc(n); }
void* operator new[](std::size_t n) { return tracked_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace wm {
namespace {

std::uint64_t counter_value(const obs::MetricsSnapshot& s,
                            std::string_view name) {
  for (const auto& [n, v] : s.counters) {
    if (n == name) return v;
  }
  ADD_FAILURE() << "counter " << name << " not found";
  return 0;
}

// ------------------------------------------------------------- timers

TEST(ObsTimerTest, NestedScopesBuildPathsAndAggregateAcrossCalls) {
  obs::MetricsRegistry reg;
  std::uint64_t fake_now = 0;
  reg.set_clock([&fake_now] { return fake_now; });

  for (int i = 0; i < 2; ++i) {
    obs::ScopedPhase outer(&reg, "outer");
    fake_now += 5'000'000;  // 5 ms
    {
      obs::ScopedPhase inner(&reg, "inner");
      fake_now += 2'000'000;  // 2 ms
    }
    fake_now += 1'000'000;  // 1 ms
  }

  const obs::MetricsSnapshot s = reg.snapshot();
  ASSERT_EQ(s.phases.size(), 2u);
  EXPECT_EQ(s.phases[0].path, "outer");
  EXPECT_EQ(s.phases[0].calls, 2u);
  EXPECT_NEAR(s.phases[0].wall_ms, 16.0, 1e-9);  // 2 * (5 + 2 + 1)
  EXPECT_EQ(s.phases[1].path, "outer/inner");
  EXPECT_EQ(s.phases[1].calls, 2u);
  EXPECT_NEAR(s.phases[1].wall_ms, 4.0, 1e-9);
}

TEST(ObsTimerTest, SiblingScopesShareTheParentPrefix) {
  obs::MetricsRegistry reg;
  std::uint64_t fake_now = 0;
  reg.set_clock([&fake_now] { return fake_now; });

  {
    obs::ScopedPhase run(&reg, "run");
    {
      obs::ScopedPhase a(&reg, "a");
      fake_now += 1'000'000;
    }
    {
      obs::ScopedPhase b(&reg, "b");
      fake_now += 3'000'000;
    }
  }
  const obs::MetricsSnapshot s = reg.snapshot();
  ASSERT_EQ(s.phases.size(), 3u);
  EXPECT_EQ(s.phases[0].path, "run");
  EXPECT_NEAR(s.phases[0].wall_ms, 4.0, 1e-9);
  EXPECT_EQ(s.phases[1].path, "run/a");
  EXPECT_EQ(s.phases[2].path, "run/b");
  EXPECT_NEAR(s.phases[2].wall_ms, 3.0, 1e-9);
}

TEST(ObsTimerTest, RealClockIsMonotonicNonNegative) {
  obs::MetricsRegistry reg;
  {
    obs::ScopedPhase p(&reg, "tick");
  }
  const obs::MetricsSnapshot s = reg.snapshot();
  ASSERT_EQ(s.phases.size(), 1u);
  EXPECT_GE(s.phases[0].wall_ms, 0.0);
}

// ----------------------------------------------------------- counters

TEST(ObsCounterTest, AtomicUnderWorkerPool) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;

  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&reg] {
      // Half through a cached handle (the hot-loop pattern), half
      // through the by-name path, plus histogram + gauge_max traffic.
      obs::Counter& handle = reg.counter("pool.handle");
      for (int i = 0; i < kPerThread; ++i) {
        handle.add(1);
        reg.add("pool.by_name", 2);
        reg.histogram("pool.hist").record_ns(1000 + i);
        reg.gauge_max("pool.max", static_cast<double>(i));
      }
    });
  }
  for (std::thread& t : pool) t.join();

  const obs::MetricsSnapshot s = reg.snapshot();
  EXPECT_EQ(counter_value(s, "pool.handle"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(counter_value(s, "pool.by_name"),
            static_cast<std::uint64_t>(kThreads) * kPerThread * 2);
  ASSERT_EQ(s.histograms.size(), 1u);
  EXPECT_EQ(s.histograms[0].second.count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const auto& b : s.histograms[0].second.buckets) {
    bucket_total += b.count;
  }
  EXPECT_EQ(bucket_total, s.histograms[0].second.count);
  ASSERT_EQ(s.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(s.gauges[0].second, kPerThread - 1);
}

TEST(ObsHistogramTest, TracksMinMaxSumAndBuckets) {
  obs::Histogram h;
  h.record_ms(0.5);
  h.record_ms(2.0);
  h.record_ms(0.001);
  const obs::Histogram::Sample s = h.sample();
  EXPECT_EQ(s.count, 3u);
  EXPECT_NEAR(s.min_ms, 0.001, 1e-9);
  EXPECT_NEAR(s.max_ms, 2.0, 1e-9);
  EXPECT_NEAR(s.sum_ms, 2.501, 1e-9);
  EXPECT_FALSE(s.buckets.empty());
}

TEST(ObsHistogramTest, EmptySampleIsAllZero) {
  obs::Histogram h;
  const obs::Histogram::Sample s = h.sample();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min_ms, 0.0);
  EXPECT_EQ(s.max_ms, 0.0);
  EXPECT_TRUE(s.buckets.empty());
}

// --------------------------------------------------------------- JSON

obs::MetricsSnapshot populated_snapshot() {
  obs::MetricsRegistry reg;
  std::uint64_t fake_now = 0;
  reg.set_clock([&fake_now] { return fake_now; });
  {
    obs::ScopedPhase run(&reg, "run");
    fake_now += 7'500'000;
    obs::ScopedPhase inner(&reg, "inner");
    fake_now += 500'000;
  }
  reg.add("c.one", 1);
  reg.add("c.big", 123456789);
  reg.gauge_set("g.pi", 3.14159);
  reg.gauge_max("g.max", 7.0);
  reg.histogram("h.times").record_ms(0.25);
  reg.histogram("h.times").record_ms(1.75);
  return reg.snapshot();
}

TEST(ObsJsonTest, RoundTripPreservesEverything) {
  const obs::MetricsSnapshot before = populated_snapshot();
  EXPECT_TRUE(obs::validate(before).empty());

  const std::string json = obs::to_json(before);
  const obs::MetricsSnapshot after = obs::parse_metrics_json(json);
  EXPECT_TRUE(obs::validate(after).empty());

  EXPECT_EQ(after.schema, std::string(obs::kSchemaVersion));
  ASSERT_EQ(after.phases.size(), before.phases.size());
  for (std::size_t i = 0; i < before.phases.size(); ++i) {
    EXPECT_EQ(after.phases[i].path, before.phases[i].path);
    EXPECT_EQ(after.phases[i].calls, before.phases[i].calls);
    EXPECT_NEAR(after.phases[i].wall_ms, before.phases[i].wall_ms, 1e-9);
  }
  ASSERT_EQ(after.counters.size(), before.counters.size());
  EXPECT_EQ(after.counters, before.counters);
  ASSERT_EQ(after.gauges.size(), before.gauges.size());
  for (std::size_t i = 0; i < before.gauges.size(); ++i) {
    EXPECT_EQ(after.gauges[i].first, before.gauges[i].first);
    EXPECT_NEAR(after.gauges[i].second, before.gauges[i].second, 1e-9);
  }
  ASSERT_EQ(after.histograms.size(), before.histograms.size());
  for (std::size_t i = 0; i < before.histograms.size(); ++i) {
    const auto& [bn, bh] = before.histograms[i];
    const auto& [an, ah] = after.histograms[i];
    EXPECT_EQ(an, bn);
    EXPECT_EQ(ah.count, bh.count);
    EXPECT_NEAR(ah.min_ms, bh.min_ms, 1e-9);
    EXPECT_NEAR(ah.max_ms, bh.max_ms, 1e-9);
    EXPECT_NEAR(ah.sum_ms, bh.sum_ms, 1e-9);
    ASSERT_EQ(ah.buckets.size(), bh.buckets.size());
  }

  // A second serialization of the parsed snapshot is byte-identical —
  // the schema is stable under round trips (merge_into_file relies on
  // this to accumulate trajectory points without drift).
  EXPECT_EQ(obs::to_json(after), json);
}

TEST(ObsJsonTest, MalformedInputThrows) {
  EXPECT_THROW(obs::parse_metrics_json("{"), Error);
  EXPECT_THROW(obs::parse_metrics_json("[]"), Error);
  EXPECT_THROW(obs::parse_metrics_json("{\"schema\": 3}"), Error);
  EXPECT_THROW(obs::parse_metrics_json(
                   "{\"schema\": \"wavemin.metrics/v1\"}"),
               Error);  // missing sections
}

TEST(ObsJsonTest, ValidateFlagsSchemaAndShapeProblems) {
  obs::MetricsSnapshot s = populated_snapshot();
  s.schema = "wavemin.metrics/v999";
  EXPECT_FALSE(obs::validate(s).empty());

  obs::MetricsSnapshot unsorted = populated_snapshot();
  std::swap(unsorted.counters[0], unsorted.counters[1]);
  EXPECT_FALSE(obs::validate(unsorted).empty());
}

TEST(ObsJsonTest, CheckedInFixtureParsesAndValidates) {
  const std::string path =
      std::string(WAVEMIN_TEST_DATA_DIR) + "/metrics_example_v1.json";
  const obs::MetricsSnapshot s = obs::read_json_file(path);
  EXPECT_EQ(s.schema, std::string(obs::kSchemaVersion));
  EXPECT_TRUE(obs::validate(s).empty());
  EXPECT_FALSE(s.phases.empty());
  EXPECT_FALSE(s.counters.empty());
  EXPECT_FALSE(s.histograms.empty());
}

TEST(ObsJsonTest, MergePrefersNewValuesAndKeepsOld) {
  obs::MetricsSnapshot a;
  a.counters = {{"keep", 1}, {"clash", 2}};
  obs::MetricsSnapshot b;
  b.counters = {{"clash", 9}, {"new", 3}};
  obs::merge(a, b);
  ASSERT_EQ(a.counters.size(), 3u);
  EXPECT_EQ(a.counters[0], (std::pair<std::string, std::uint64_t>{
                               "clash", 9}));
  EXPECT_EQ(a.counters[1],
            (std::pair<std::string, std::uint64_t>{"keep", 1}));
  EXPECT_EQ(a.counters[2],
            (std::pair<std::string, std::uint64_t>{"new", 3}));
}

// -------------------------------------------------------- no-op path

TEST(ObsNoopTest, NullRegistryAllocatesNothingAndReadsNoClock) {
  obs::MetricsRegistry* off = nullptr;

  g_alloc_count.store(0);
  g_alloc_tracking.store(true);
  for (int i = 0; i < 1000; ++i) {
    obs::ScopedPhase phase(off, "a-phase-name-long-enough-to-heap");
    obs::add(off, "some.counter", 3);
    obs::gauge_set(off, "some.gauge", 1.0);
    obs::gauge_max(off, "some.gauge", 2.0);
    obs::observe_ms(off, "some.histogram", 0.5);
  }
  g_alloc_tracking.store(false);

  EXPECT_EQ(g_alloc_count.load(), 0u);
}

TEST(ObsNoopTest, GlobalRegistryDefaultsToNull) {
  // Nothing in the test binary installed one; library code guarded by
  // obs::global() must therefore be a no-op here.
  EXPECT_EQ(obs::global(), nullptr);
  obs::MetricsRegistry reg;
  obs::install_global(&reg);
  EXPECT_EQ(obs::global(), &reg);
  obs::install_global(nullptr);
  EXPECT_EQ(obs::global(), nullptr);
}

} // namespace
} // namespace wm
