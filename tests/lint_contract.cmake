# Exit-code contract test for tools/wavemin_lint, run via
#   cmake -DLINT=<lint> -DCLI=<cli> -DWORK=<scratch dir> -P lint_contract.cmake
# Contract (see wavemin_lint.cpp): 0 = no diagnostics, 1 = usage/load
# error, 2 = diagnostics found.

foreach(var LINT CLI WORK)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY ${WORK})

function(expect_exit code)
  execute_process(COMMAND ${ARGN}
                  RESULT_VARIABLE rv
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rv EQUAL ${code})
    message(FATAL_ERROR
        "expected exit ${code}, got '${rv}' from: ${ARGN}\n"
        "stdout:\n${out}\nstderr:\n${err}")
  endif()
endfunction()

# Generate a clean benchmark tree to lint.
expect_exit(0 ${CLI} gen s13207 -o ${WORK}/clean.ctree)

# 0: a freshly generated tree has no diagnostics (deep checks included).
expect_exit(0 ${LINT} ${WORK}/clean.ctree --quiet)

# 1: load errors (missing file) and usage errors (no tree argument).
expect_exit(1 ${LINT} ${WORK}/does_not_exist.ctree)
expect_exit(1 ${LINT})

# 2: diagnostics found — an unreachable skew bound makes the deep
# interval check report "interval.none". (Corrupt-but-loadable trees
# are exercised at the API level by tests/verify_test.cpp.)
expect_exit(2 ${LINT} ${WORK}/clean.ctree --kappa 0.001 --quiet)

message(STATUS "wavemin_lint exit-code contract holds")
