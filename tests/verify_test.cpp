// wm::verify — every corruption class must fire its rule id, and the
// clean pipeline must produce zero diagnostics (the checker is only
// trustworthy if it is silent on healthy designs).

#include <gtest/gtest.h>

#include "cells/characterizer.hpp"
#include "cells/library.hpp"
#include "core/candidates.hpp"
#include "core/intervals.hpp"
#include "core/wavemin.hpp"
#include "core/wavemin_m.hpp"
#include "cts/benchmarks.hpp"
#include "mosp/graph.hpp"
#include "tree/zone.hpp"
#include "util/error.hpp"
#include "verify/verify.hpp"

namespace wm {
namespace {

ClockTree small_tree(const CellLibrary& lib) {
  const Cell* buf = &lib.by_name("BUF_X16");
  ClockTree tree;
  const NodeId root = tree.add_root({0.0, 0.0}, buf);
  const NodeId mid = tree.add_node(root, {40.0, 0.0}, buf);
  for (int i = 0; i < 3; ++i) {
    const NodeId leaf =
        tree.add_node(mid, {80.0, 20.0 * static_cast<double>(i)}, buf);
    tree.node(leaf).sink_cap = 10.0;
  }
  return tree;
}

// --- tree rules ------------------------------------------------------

TEST(VerifyTree, CleanTreeHasNoDiagnostics) {
  const CellLibrary lib = CellLibrary::nangate45_like();
  const ClockTree tree = small_tree(lib);
  const ZoneMap zones(tree);
  EXPECT_TRUE(verify::check_tree(tree, &zones).clean());
}

TEST(VerifyTree, CycleFires) {
  const CellLibrary lib = CellLibrary::nangate45_like();
  ClockTree tree = small_tree(lib);
  // Re-adopt the mid node as a child of one of its own descendants: the
  // child walk now revisits it.
  tree.node(2).children.push_back(1);
  const verify::Report r = verify::check_tree(tree);
  EXPECT_TRUE(r.has("tree.cycle")) << r.to_string();
}

TEST(VerifyTree, BrokenParentLinkFires) {
  const CellLibrary lib = CellLibrary::nangate45_like();
  ClockTree tree = small_tree(lib);
  tree.node(2).parent = 3;  // parent no longer lists node 2 as a child
  const verify::Report r = verify::check_tree(tree);
  EXPECT_TRUE(r.has("tree.parent-link")) << r.to_string();
}

TEST(VerifyTree, UnreachableNodeFires) {
  const CellLibrary lib = CellLibrary::nangate45_like();
  ClockTree tree = small_tree(lib);
  // Detach a leaf from its parent's child list without reparenting it.
  tree.node(1).children.pop_back();
  const verify::Report r = verify::check_tree(tree);
  EXPECT_TRUE(r.has("tree.unreachable")) << r.to_string();
}

TEST(VerifyTree, MissingCellBindingFires) {
  const CellLibrary lib = CellLibrary::nangate45_like();
  ClockTree tree = small_tree(lib);
  tree.node(2).cell = nullptr;
  const verify::Report r = verify::check_tree(tree);
  EXPECT_TRUE(r.has("tree.cell-binding")) << r.to_string();
}

TEST(VerifyTree, NegativeGeometryFires) {
  const CellLibrary lib = CellLibrary::nangate45_like();
  ClockTree tree = small_tree(lib);
  tree.node(3).wire_len = -1.0;
  const verify::Report r = verify::check_tree(tree);
  EXPECT_TRUE(r.has("tree.geometry")) << r.to_string();
}

TEST(VerifyTree, InconsistentModeVectorsFire) {
  const CellLibrary lib = CellLibrary::nangate45_like();
  ClockTree tree = small_tree(lib);
  const Cell* adb = &lib.by_name("ADB_X8");
  tree.set_cell(2, adb);
  tree.set_cell(3, adb);
  tree.node(2).adj_codes = {1, 2, 3};  // three modes here...
  tree.node(3).adj_codes = {1, 2};     // ...two modes there
  const verify::Report r = verify::check_tree(tree);
  EXPECT_TRUE(r.has("tree.leaf-polarity")) << r.to_string();
}

TEST(VerifyTree, CodesOnNonAdjustableCellFire) {
  const CellLibrary lib = CellLibrary::nangate45_like();
  ClockTree tree = small_tree(lib);
  tree.node(2).adj_codes = {5};  // node 2 holds a plain BUF_X16
  const verify::Report r = verify::check_tree(tree);
  EXPECT_TRUE(r.has("tree.adj-codes")) << r.to_string();
}

TEST(VerifyTree, OutOfRangeCodeFires) {
  const CellLibrary lib = CellLibrary::nangate45_like();
  ClockTree tree = small_tree(lib);
  const Cell* adb = &lib.by_name("ADB_X8");
  tree.set_cell(2, adb);
  tree.node(2).adj_codes = {adb->adj_max_code + 1};
  const verify::Report r = verify::check_tree(tree);
  EXPECT_TRUE(r.has("tree.adj-codes")) << r.to_string();
}

TEST(VerifyTree, ZoneMembershipCorruptionFires) {
  const CellLibrary lib = CellLibrary::nangate45_like();
  ClockTree tree = small_tree(lib);
  const ZoneMap zones(tree);
  // Move a leaf across the die after the zone map was built: zone
  // membership is stale but the link structure is still sound.
  tree.node(2).pos = {1000.0, 1000.0};
  ClockTree grown = tree;
  grown.add_node(2, {1010.0, 1000.0}, &lib.by_name("BUF_X8"));
  const verify::Report r = verify::check_tree(grown, &zones);
  EXPECT_TRUE(r.has("tree.zone-membership")) << r.to_string();
}

// --- library rules ---------------------------------------------------

TEST(VerifyLibrary, CleanLibraryHasNoDiagnostics) {
  const verify::Report r =
      verify::check_library(CellLibrary::nangate45_like());
  EXPECT_TRUE(r.clean()) << r.to_string();
}

TEST(VerifyLibrary, NegativeCapFires) {
  CellLibrary lib;
  Cell bad;
  bad.name = "BUF_X1";
  bad.c_in = -0.5;
  lib.add(bad);
  const verify::Report r = verify::check_library(lib);
  EXPECT_TRUE(r.has("lib.nonpositive")) << r.to_string();
}

TEST(VerifyLibrary, AdjustableMismatchFires) {
  CellLibrary lib;
  Cell bad;
  bad.name = "ADB_X8";
  bad.kind = CellKind::Adb;
  bad.adj_step = 4.0;
  bad.adj_max_code = 0;  // adjustable kind with no usable codes
  lib.add(bad);
  const verify::Report r = verify::check_library(lib);
  EXPECT_TRUE(r.has("lib.adjustable")) << r.to_string();
}

TEST(VerifyLibrary, NonMonotoneSizingWarns) {
  CellLibrary lib;
  Cell x1;
  x1.name = "BUF_X1";
  x1.drive = 1;
  x1.r_out = 1.0;
  Cell x2 = x1;
  x2.name = "BUF_X2";
  x2.drive = 2;
  x2.r_out = 2.0;  // bigger drive, *higher* output resistance
  lib.add(x1);
  lib.add(x2);
  const verify::Report r = verify::check_library(lib);
  EXPECT_TRUE(r.has("lib.monotone-sizing")) << r.to_string();
  EXPECT_EQ(r.error_count(), 0u);  // warning severity
}

// --- MOSP rules ------------------------------------------------------

MospGraph small_mosp() {
  MospGraph g;
  g.dims = 2;
  g.rows = {{MospVertex{0, {1.0, 2.0}, "a"}},
            {MospVertex{0, {3.0, 4.0}, "b"},
             MospVertex{1, {5.0, 6.0}, "c"}}};
  g.dest_weight = {1.0, 1.0};
  return g;
}

TEST(VerifyMosp, CleanGraphHasNoDiagnostics) {
  EXPECT_TRUE(verify::check_mosp(small_mosp(), 2).clean());
}

TEST(VerifyMosp, WrongDimensionArcWeightFires) {
  MospGraph g = small_mosp();
  g.rows[1][0].weight = {3.0};  // 1-dimensional weight in a 2-dim graph
  const verify::Report r = verify::check_mosp(g);
  EXPECT_TRUE(r.has("mosp.weight-dims")) << r.to_string();
}

TEST(VerifyMosp, DimsSlotMismatchFires) {
  const verify::Report r = verify::check_mosp(small_mosp(), 5);
  EXPECT_TRUE(r.has("mosp.dims")) << r.to_string();
}

TEST(VerifyMosp, EmptyRowFires) {
  MospGraph g = small_mosp();
  g.rows[0].clear();
  const verify::Report r = verify::check_mosp(g);
  EXPECT_TRUE(r.has("mosp.row-empty")) << r.to_string();
}

TEST(VerifyMosp, NegativeWeightFires) {
  MospGraph g = small_mosp();
  g.dest_weight[1] = -0.5;
  const verify::Report r = verify::check_mosp(g);
  EXPECT_TRUE(r.has("mosp.weight-value")) << r.to_string();
}

// --- interval rules --------------------------------------------------

/// One-sink, one-mode fixture with candidate arrivals {10, 15}.
Preprocessed small_pre() {
  Preprocessed p;
  p.mode_count = 1;
  SinkInfo s;
  s.id = 1;
  s.zone = 0;
  Candidate c0;
  c0.arrival = {10.0};
  Candidate c1;
  c1.arrival = {15.0};
  s.candidates = {c0, c1};
  p.sinks = {s};
  p.arrival_grid = {{10.0, 15.0}};
  return p;
}

Intersection window_all() {
  Intersection x;
  x.windows = {TimeWindow{0.0, 20.0}};
  x.masks = {0b11u};
  x.dof = 2;
  return x;
}

TEST(VerifyInterval, CleanIntersectionHasNoDiagnostics) {
  const Preprocessed p = small_pre();
  const verify::Report r =
      verify::check_intersections(p, {window_all()}, 20.0);
  EXPECT_TRUE(r.clean()) << r.to_string();
}

TEST(VerifyInterval, EmptyModeIntersectionFires) {
  const Preprocessed p = small_pre();
  Intersection x = window_all();
  x.masks = {0u};  // no surviving candidate for the sink
  x.dof = 0;
  const verify::Report r = verify::check_intersections(p, {x}, 20.0);
  EXPECT_TRUE(r.has("interval.empty-mode")) << r.to_string();
}

TEST(VerifyInterval, StaleMaskFires) {
  const Preprocessed p = small_pre();
  Intersection x = window_all();
  x.windows = {TimeWindow{0.0, 12.0}};  // only candidate 0 is in-window
  const verify::Report r = verify::check_intersections(p, {x}, 20.0);
  EXPECT_TRUE(r.has("interval.mask-stale")) << r.to_string();
}

TEST(VerifyInterval, WindowWiderThanKappaFires) {
  const Preprocessed p = small_pre();
  const verify::Report r =
      verify::check_intersections(p, {window_all()}, 5.0);
  EXPECT_TRUE(r.has("interval.bounds")) << r.to_string();
}

TEST(VerifyInterval, WrongDofFires) {
  const Preprocessed p = small_pre();
  Intersection x = window_all();
  x.dof = 7;
  const verify::Report r = verify::check_intersections(p, {x}, 20.0);
  EXPECT_TRUE(r.has("interval.dof")) << r.to_string();
}

// --- pipeline integration --------------------------------------------

TEST(VerifyPipeline, CleanSingleModeFlowRunsWithHooksOn) {
  const CellLibrary lib = CellLibrary::nangate45_like();
  ClockTree tree = make_benchmark(spec_by_name("s15850"), lib);
  const Characterizer chr(lib);
  WaveMinOptions opts;
  opts.verify_invariants = true;
  const WaveMinResult r = clk_wavemin(tree, lib, chr, opts);
  ASSERT_TRUE(r.success);

  const ZoneMap zones(tree);
  const verify::Report post = verify::check_design(tree, lib, &zones);
  EXPECT_TRUE(post.clean()) << post.to_string();
}

TEST(VerifyPipeline, CleanMultiModeFlowRunsWithHooksOn) {
  const CellLibrary lib = CellLibrary::nangate45_like();
  const BenchmarkSpec& spec = spec_by_name("s15850");
  ClockTree tree = make_benchmark(spec, lib);
  const ModeSet modes = make_mode_set(spec);
  CharacterizerOptions co;
  co.vdds = modes.distinct_vdds();
  co.temps = modes.distinct_temps();
  const Characterizer chr(lib, co);
  WaveMinOptions opts;
  opts.verify_invariants = true;
  const WaveMinMResult r = clk_wavemin_m(tree, lib, chr, modes, opts);
  ASSERT_TRUE(r.opt.success);

  const ZoneMap zones(tree);
  const verify::Report post = verify::check_design(tree, lib, &zones);
  EXPECT_TRUE(post.clean()) << post.to_string();
}

TEST(VerifyPipeline, HookEscalatesCorruptionToError) {
  const CellLibrary lib = CellLibrary::nangate45_like();
  ClockTree tree = make_benchmark(spec_by_name("s15850"), lib);
  tree.node(3).cell = nullptr;  // corrupt before the flow runs
  const Characterizer chr(lib);
  WaveMinOptions opts;
  opts.verify_invariants = true;
  EXPECT_THROW(clk_wavemin(tree, lib, chr, opts), Error);
}

} // namespace
} // namespace wm
