// Tests for the prior-art baselines (Nieh'05 [22], Chen'09 [24]) and
// the PeakMin-equivalence of the configured WaveMin machinery.

#include "peakmin/baselines.hpp"

#include <gtest/gtest.h>

#include "cells/characterizer.hpp"
#include "core/evaluate.hpp"
#include "cts/benchmarks.hpp"
#include "peakmin/clkpeakmin.hpp"
#include "timing/arrival.hpp"

namespace wm {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  CellLibrary lib = CellLibrary::nangate45_like();
  Characterizer chr{lib};
};

TEST_F(BaselinesTest, NiehInvertsRoughlyHalfTheLeaves) {
  ClockTree tree = make_benchmark(spec_by_name("s35932"), lib);
  const int inverted_roots = apply_nieh_half_split(tree, lib);
  EXPECT_GT(inverted_roots, 0);

  std::size_t negative = 0;
  for (const TreeNode& n : tree.nodes()) {
    if (n.is_leaf() &&
        tree.output_polarity(n.id) == Polarity::Negative) {
      ++negative;
    }
  }
  const double frac =
      static_cast<double>(negative) / static_cast<double>(tree.leaf_count());
  EXPECT_GT(frac, 0.30);
  EXPECT_LT(frac, 0.70);
  // Leaf cells themselves are untouched — the inversion is at subtree
  // roots.
  for (const TreeNode& n : tree.nodes()) {
    if (n.is_leaf()) {
      EXPECT_EQ(n.cell->kind, CellKind::Buffer);
    }
  }
}

TEST_F(BaselinesTest, NiehReducesPeakOnSmallDies) {
  const BenchmarkSpec& spec = spec_by_name("s13207");
  ClockTree base = make_benchmark(spec, lib);
  const Evaluation e0 = evaluate_design(base, 2.0);
  ClockTree split = make_benchmark(spec, lib);
  apply_nieh_half_split(split, lib);
  const Evaluation e1 = evaluate_design(split, 2.0);
  EXPECT_LT(e1.peak_current, e0.peak_current);
}

TEST_F(BaselinesTest, ChenAssignsPolarityWithoutSizing) {
  ClockTree tree = make_benchmark(spec_by_name("s13207"), lib);
  const int initial_drive = 16;
  const WaveMinResult r = clk_chen_polarity(tree, lib, chr, 20.0);
  ASSERT_TRUE(r.success);
  int inverters = 0;
  for (const TreeNode& n : tree.nodes()) {
    if (!n.is_leaf()) continue;
    EXPECT_EQ(n.cell->drive, initial_drive);  // no sizing
    if (n.cell->inverting()) ++inverters;
  }
  EXPECT_GT(inverters, 0);
  EXPECT_LE(compute_arrivals(tree).skew(), 20.0 * 1.2);
}

TEST_F(BaselinesTest, PeakMinSubsumesChen) {
  // PeakMin = Chen + sizing: with the strictly larger candidate set it
  // can only match or beat Chen on the shared 4-point model objective.
  const BenchmarkSpec& spec = spec_by_name("s13207");
  ClockTree t1 = make_benchmark(spec, lib);
  ClockTree t2 = make_benchmark(spec, lib);
  const WaveMinResult chen = clk_chen_polarity(t1, lib, chr, 20.0);
  const WaveMinResult pm = clk_peakmin(t2, lib, chr, 20.0);
  ASSERT_TRUE(chen.success && pm.success);
  EXPECT_LE(pm.model_peak, chen.model_peak + 1e-6);
}

} // namespace
} // namespace wm
