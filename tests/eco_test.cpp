// Tests for the incremental (ECO) re-optimization flow.

#include "core/eco.hpp"

#include <gtest/gtest.h>

#include "cells/characterizer.hpp"
#include "core/evaluate.hpp"
#include "core/wavemin.hpp"
#include "cts/benchmarks.hpp"
#include "timing/arrival.hpp"
#include "tree/zone.hpp"

namespace wm {
namespace {

class EcoTest : public ::testing::Test {
 protected:
  CellLibrary lib = CellLibrary::nangate45_like();
  Characterizer chr{lib};
  BenchmarkSpec spec = spec_by_name("s35932");
  ModeSet modes = ModeSet::single(spec.islands);

  ClockTree optimized_tree() {
    ClockTree t = make_benchmark(spec, lib);
    WaveMinOptions opts;
    opts.kappa = 20.0;
    opts.samples = 32;
    EXPECT_TRUE(clk_wavemin(t, lib, chr, opts).success);
    return t;
  }
};

TEST_F(EcoTest, TouchesOnlyZonesNearTheChange) {
  ClockTree tree = optimized_tree();
  // Record the full assignment, then grow one leaf's load (an ECO).
  std::vector<const Cell*> before;
  for (const TreeNode& n : tree.nodes()) before.push_back(n.cell);
  const NodeId victim = tree.leaves().front();
  tree.node(victim).sink_cap *= 1.6;

  WaveMinOptions opts;
  opts.kappa = 20.0;
  opts.samples = 32;
  const EcoResult r =
      eco_reoptimize(tree, lib, chr, modes, {victim}, opts);
  ASSERT_TRUE(r.success);
  EXPECT_GT(r.zones_touched, 0u);
  EXPECT_LT(r.zones_touched, r.zones_total);

  // Every changed cell lies in a touched tile (within the one-ring of
  // the victim's zone).
  const ZoneMap zones(tree);
  const int vz = zones.zone_of(victim);
  ASSERT_GE(vz, 0);
  const Zone& vzone = zones.zones()[static_cast<std::size_t>(vz)];
  for (const TreeNode& n : tree.nodes()) {
    if (n.cell == before[static_cast<std::size_t>(n.id)]) continue;
    ASSERT_TRUE(n.is_leaf());
    const Zone& z =
        zones.zones()[static_cast<std::size_t>(zones.zone_of(n.id))];
    EXPECT_LE(std::abs(z.gx - vzone.gx), 1);
    EXPECT_LE(std::abs(z.gy - vzone.gy), 1);
  }
}

TEST_F(EcoTest, SkewStaysLegalAfterEco) {
  ClockTree tree = optimized_tree();
  const NodeId victim = tree.leaves().back();
  tree.node(victim).sink_cap *= 1.5;
  WaveMinOptions opts;
  opts.kappa = 20.0;
  opts.samples = 32;
  ASSERT_TRUE(
      eco_reoptimize(tree, lib, chr, modes, {victim}, opts).success);
  EXPECT_LE(compute_arrivals(tree).skew(), opts.kappa * 1.2);
}

TEST_F(EcoTest, NoChangesMeansNoWork) {
  ClockTree tree = optimized_tree();
  WaveMinOptions opts;
  opts.kappa = 20.0;
  const EcoResult r = eco_reoptimize(tree, lib, chr, modes, {}, opts);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.zones_touched, 0u);
}

TEST_F(EcoTest, InternalNodeSelectsItsSubtreeZones) {
  ClockTree tree = optimized_tree();
  // Pick an internal node with several leaves below.
  NodeId internal = kNoNode;
  for (const TreeNode& n : tree.nodes()) {
    if (!n.is_leaf() && n.parent != kNoNode &&
        tree.leaves_under(n.id).size() >= 4) {
      internal = n.id;
      break;
    }
  }
  ASSERT_NE(internal, kNoNode);
  WaveMinOptions opts;
  opts.kappa = 20.0;
  opts.samples = 32;
  const EcoResult r =
      eco_reoptimize(tree, lib, chr, modes, {internal}, opts);
  EXPECT_TRUE(r.success);
  EXPECT_GE(r.zones_touched, 1u);
}

TEST_F(EcoTest, MuchCheaperThanFullRerun) {
  ClockTree t1 = optimized_tree();
  const NodeId victim = t1.leaves().front();
  t1.node(victim).sink_cap *= 1.4;
  WaveMinOptions opts;
  opts.kappa = 20.0;
  opts.samples = 158;
  const EcoResult eco =
      eco_reoptimize(t1, lib, chr, modes, {victim}, opts);
  ASSERT_TRUE(eco.success);

  ClockTree t2 = make_benchmark(spec, lib);
  const WaveMinResult full = clk_wavemin(t2, lib, chr, opts);
  ASSERT_TRUE(full.success);
  EXPECT_LT(eco.runtime_ms, full.runtime_ms);
}

} // namespace
} // namespace wm
