// Unit tests for the preprocessing step: candidate enumeration and
// per-mode arrival computation (paper Sec. IV / Fig. 5).

#include "core/candidates.hpp"

#include <gtest/gtest.h>

#include "cells/characterizer.hpp"
#include "cells/electrical.hpp"
#include "cts/benchmarks.hpp"
#include "timing/arrival.hpp"
#include "tree/zone.hpp"

namespace wm {
namespace {

class CandidatesTest : public ::testing::Test {
 protected:
  CellLibrary lib = CellLibrary::nangate45_like();
  Characterizer chr{lib};
  BenchmarkSpec spec = spec_by_name("s15850");
  ClockTree tree = make_benchmark(spec, lib);
  ZoneMap zones{tree};
  ModeSet modes = ModeSet::single(spec.islands);

  Preprocessed run() {
    return preprocess(tree, zones, modes, lib.assignment_library(), chr,
                      lib);
  }
};

TEST_F(CandidatesTest, EverySinkGetsTheFullStaticLibrary) {
  const Preprocessed p = run();
  EXPECT_EQ(p.sinks.size(), tree.leaf_count());
  EXPECT_EQ(p.non_leaves.size(), tree.size() - tree.leaf_count());
  for (const SinkInfo& s : p.sinks) {
    ASSERT_EQ(s.candidates.size(), 4u);  // BUF/INV x X8/X16
    EXPECT_GE(s.zone, 0);
    for (const Candidate& c : s.candidates) {
      ASSERT_EQ(c.arrival.size(), 1u);
      EXPECT_TRUE(c.adj_codes.empty());
      EXPECT_TRUE(c.xor_negative.empty());
    }
  }
}

TEST_F(CandidatesTest, ArrivalsMatchTheTimingModel) {
  const Preprocessed p = run();
  const ArrivalResult arr = compute_arrivals(tree, modes, 0);
  for (const SinkInfo& s : p.sinks) {
    const auto i = static_cast<std::size_t>(s.id);
    EXPECT_DOUBLE_EQ(s.input_arrival[0], arr.input_arrival[i]);
    for (const Candidate& c : s.candidates) {
      const DriveConditions dc{s.load, arr.slew_in[i],
                               tech::kVddNominal};
      EXPECT_NEAR(c.arrival[0],
                  arr.input_arrival[i] + cell_timing(*c.cell, dc).delay(),
                  1e-9);
    }
    // The current cell's arrival equals the analysis' output arrival.
    bool found_current = false;
    for (const Candidate& c : s.candidates) {
      if (c.cell == tree.node(s.id).cell) {
        EXPECT_NEAR(c.arrival[0], arr.output_arrival[i], 1e-9);
        found_current = true;
      }
    }
    EXPECT_TRUE(found_current)
        << "initial cell must be among its own candidates";
  }
}

TEST_F(CandidatesTest, InverterCandidatesAreFaster) {
  const Preprocessed p = run();
  for (const SinkInfo& s : p.sinks) {
    Ps buf_arr = 0.0, inv_arr = 0.0;
    for (const Candidate& c : s.candidates) {
      if (c.cell->name == "BUF_X16") buf_arr = c.arrival[0];
      if (c.cell->name == "INV_X16") inv_arr = c.arrival[0];
    }
    EXPECT_LT(inv_arr, buf_arr);
  }
}

TEST_F(CandidatesTest, ArrivalGridIsSortedUniqueAndCoversCandidates) {
  const Preprocessed p = run();
  const auto& grid = p.arrival_grid[0];
  ASSERT_FALSE(grid.empty());
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_GT(grid[i], grid[i - 1]);
  }
  // Every candidate arrival is within merge tolerance of a grid point.
  for (const SinkInfo& s : p.sinks) {
    for (const Candidate& c : s.candidates) {
      bool close = false;
      for (Ps t : grid) {
        if (std::abs(t - c.arrival[0]) < 0.011) close = true;
      }
      EXPECT_TRUE(close);
    }
  }
}

TEST_F(CandidatesTest, MultiModeArrivalsScaleWithIslandVdd) {
  const ModeSet mm = make_mode_set(spec);
  const Preprocessed p =
      preprocess(tree, zones, mm, lib.assignment_library(), chr, lib);
  for (const SinkInfo& s : p.sinks) {
    for (const Candidate& c : s.candidates) {
      ASSERT_EQ(c.arrival.size(), mm.count());
      // Mode 0 is all-nominal; later modes only slow things down.
      for (std::size_t m = 1; m < mm.count(); ++m) {
        EXPECT_GE(c.arrival[m], c.arrival[0] - 1e-9);
      }
    }
  }
}

TEST_F(CandidatesTest, NonLeafInfoCarriesPlacementAndCells) {
  const Preprocessed p = run();
  for (const NonLeafInfo& nl : p.non_leaves) {
    EXPECT_NE(nl.cell, nullptr);
    EXPECT_FALSE(tree.node(nl.id).is_leaf());
    EXPECT_DOUBLE_EQ(nl.pos.x, tree.node(nl.id).pos.x);
    ASSERT_EQ(nl.input_arrival.size(), 1u);
    ASSERT_EQ(nl.extra_delay.size(), 1u);
    EXPECT_DOUBLE_EQ(nl.extra_delay[0], 0.0);  // no ADBs in this tree
  }
}

} // namespace
} // namespace wm
