// Tests for the design statistics report.

#include "report/design_stats.hpp"

#include <gtest/gtest.h>

#include "adb/allocation.hpp"
#include "cells/characterizer.hpp"
#include "core/wavemin.hpp"
#include "cts/benchmarks.hpp"
#include "util/error.hpp"

namespace wm {
namespace {

TEST(DesignStats, MatchesBenchmarkSpec) {
  const CellLibrary lib = CellLibrary::nangate45_like();
  const BenchmarkSpec& spec = spec_by_name("s13207");
  const ClockTree tree = make_benchmark(spec, lib);
  const DesignStats s = analyze_tree(tree);
  EXPECT_EQ(static_cast<int>(s.nodes), spec.n_total);
  EXPECT_EQ(static_cast<int>(s.leaves), spec.n_leaves);
  EXPECT_GT(s.total_wire, 0.0);
  EXPECT_GE(s.max_edge_wire, s.total_wire / static_cast<double>(s.nodes));
  EXPECT_LE(s.min_sink_cap, s.max_sink_cap);
  EXPECT_NEAR(s.total_sink_cap,
              s.leaves * 0.5 * (s.min_sink_cap + s.max_sink_cap),
              0.4 * s.total_sink_cap);
  EXPECT_GT(s.zones, 0u);
  // Initially every leaf is the generator's default cell.
  ASSERT_EQ(s.leaf_cells.size(), 1u);
  EXPECT_EQ(s.leaf_cells.begin()->second, s.leaves);
  EXPECT_EQ(s.xor_reconfigurable, 0u);
}

TEST(DesignStats, CensusTracksAssignment) {
  const CellLibrary lib = CellLibrary::nangate45_like();
  const Characterizer chr(lib);
  ClockTree tree = make_benchmark(spec_by_name("s13207"), lib);
  WaveMinOptions opts;
  opts.kappa = 20.0;
  opts.samples = 32;
  ASSERT_TRUE(clk_wavemin(tree, lib, chr, opts).success);
  const DesignStats s = analyze_tree(tree);
  std::size_t census = 0;
  for (const auto& [name, count] : s.leaf_cells) census += count;
  EXPECT_EQ(census, s.leaves);
  EXPECT_GE(s.leaf_cells.size(), 2u);  // mixed polarities after WaveMin
}

TEST(DesignStats, CountsAdjustables) {
  const CellLibrary lib = CellLibrary::nangate45_like();
  const BenchmarkSpec& spec = spec_by_name("ispd09f34");
  ClockTree tree = make_benchmark(spec, lib);
  const ModeSet modes = make_mode_set(spec);
  allocate_adbs(tree, lib, modes, 90.0);
  const DesignStats s = analyze_tree(tree);
  EXPECT_GT(s.adjustable_cells, 0u);
}

TEST(DesignStats, RenderingContainsTheNumbers) {
  const CellLibrary lib = CellLibrary::nangate45_like();
  const ClockTree tree = make_benchmark(spec_by_name("s15850"), lib);
  const std::string text = to_string(analyze_tree(tree));
  EXPECT_NE(text.find("19 leaves"), std::string::npos);
  EXPECT_NE(text.find("zones"), std::string::npos);
  EXPECT_THROW(analyze_tree(ClockTree{}), Error);
}

} // namespace
} // namespace wm
