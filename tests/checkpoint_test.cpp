// wm::ck — crash-safe checkpoint/resume (docs/robustness.md): format
// round-trips, CRC/truncation/stale-fingerprint rejection, atomic save,
// and the run_wavemin resume path producing bit-identical results.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "cells/characterizer.hpp"
#include "cells/library.hpp"
#include "core/checkpoint.hpp"
#include "core/wavemin.hpp"
#include "cts/benchmarks.hpp"
#include "io/tree_io.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"

namespace wm {
namespace {

ck::Checkpoint sample_checkpoint() {
  ck::Checkpoint c;
  c.options_hash = 0xdeadbeefcafe1234ULL;
  c.seed = 42;
  ck::ZoneEntry a;
  a.key = 17;
  a.ladder = 0;
  a.worst = 1234.5678901234567;
  a.elapsed_ms = 0.125;
  a.choice = {0, 3, 1, 2};
  c.zones.push_back(a);
  ck::ZoneEntry b;
  b.key = 99;
  b.ladder = 2;
  b.beam_capped = true;
  b.worst = 0.0;
  b.elapsed_ms = 7.5;
  b.choice = {1};
  b.error = "zone 4: bad slew (line 12)\t50% off";
  c.zones.push_back(b);
  return c;
}

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

// ------------------------------------------------------------ round-trip

TEST(Checkpoint, RoundTripsBitExactly) {
  const ck::Checkpoint c = sample_checkpoint();
  const std::string text = ck::to_string(c);
  const ck::Checkpoint back = ck::from_string(text);
  EXPECT_EQ(back.options_hash, c.options_hash);
  EXPECT_EQ(back.seed, c.seed);
  ASSERT_EQ(back.zones.size(), c.zones.size());
  for (std::size_t i = 0; i < c.zones.size(); ++i) {
    EXPECT_EQ(back.zones[i].key, c.zones[i].key);
    EXPECT_EQ(back.zones[i].ladder, c.zones[i].ladder);
    EXPECT_EQ(back.zones[i].beam_capped, c.zones[i].beam_capped);
    // Doubles must survive exactly (max_digits10 serialization) — the
    // resume bit-identity guarantee rests on this.
    EXPECT_EQ(back.zones[i].worst, c.zones[i].worst);
    EXPECT_EQ(back.zones[i].elapsed_ms, c.zones[i].elapsed_ms);
    EXPECT_EQ(back.zones[i].choice, c.zones[i].choice);
    EXPECT_EQ(back.zones[i].error, c.zones[i].error);
  }
  // Serialization is canonical: round-tripping reproduces the bytes.
  EXPECT_EQ(ck::to_string(back), text);
}

TEST(Checkpoint, SaveLoadRoundTrip) {
  const std::string path = temp_path("ck_roundtrip.wmck");
  const ck::Checkpoint c = sample_checkpoint();
  ck::save(path, c);
  const ck::Checkpoint back = ck::load(path, c.options_hash);
  EXPECT_EQ(back.zones.size(), c.zones.size());
  EXPECT_EQ(back.seed, c.seed);
  // The temp file must be gone after the atomic rename.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

// -------------------------------------------------------------- rejection

TEST(Checkpoint, RejectsCorruptedBytes) {
  std::string text = ck::to_string(sample_checkpoint());
  // Flip one payload byte; the CRC trailer must catch it.
  const auto pos = text.find("zone 17");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 5] = '8';
  try {
    ck::from_string(text);
    FAIL() << "corrupted checkpoint accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("crc mismatch"),
              std::string::npos)
        << e.what();
  }
}

TEST(Checkpoint, RejectsTruncation) {
  const std::string text = ck::to_string(sample_checkpoint());
  // Any strict prefix must be rejected (missing/invalid trailer) —
  // this is the torn-write case the atomic rename protects against.
  for (const std::size_t keep :
       {text.size() - 1, text.size() / 2, std::size_t{10},
        std::size_t{0}}) {
    EXPECT_THROW(ck::from_string(text.substr(0, keep)), Error)
        << "accepted a " << keep << "-byte prefix";
  }
}

TEST(Checkpoint, RejectsStaleFingerprint) {
  const std::string path = temp_path("ck_stale.wmck");
  const ck::Checkpoint c = sample_checkpoint();
  ck::save(path, c);
  try {
    ck::load(path, c.options_hash + 1);
    FAIL() << "stale checkpoint accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("stale checkpoint"),
              std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsGarbledRecords) {
  const auto reject = [](const std::string& body) {
    std::string text = body;
    const std::uint32_t crc = crc32(text.data(), text.size());
    std::ostringstream os;
    os << text << "crc " << std::hex << std::setw(8) << std::setfill('0')
       << crc << '\n';
    EXPECT_THROW(ck::from_string(os.str()), Error) << body;
  };
  reject("wmck v2\nopts 0\nseed 0\n");                    // bad version
  reject("wmck v1\nseed 0\n");                            // missing opts
  reject("wmck v1\nopts 0\n");                            // missing seed
  reject("wmck v1\nopts 0\nseed 0\nzone 1 0 0 1 1\n");    // truncated
  reject("wmck v1\nopts 0\nseed 0\nzone 1 9 0 1 1 0\n");  // bad ladder
  reject("wmck v1\nopts 0\nseed 0\nzone 1 0 0 nan 1 0\n");  // non-finite
  reject("wmck v1\nopts 0\nseed 0\nzone 1 0 0 1 1 2 0\n");  // short list
  reject(
      "wmck v1\nopts 0\nseed 0\nzone 1 0 0 1 1 0\nzone 1 0 0 1 1 0\n");
  reject("wmck v1\nopts 0\nseed 0\nbogus record\n");
}

// ------------------------------------------------------------ fingerprint

TEST(Checkpoint, FingerprintTracksSolverRelevantOptions) {
  const CellLibrary lib = CellLibrary::nangate45_like();
  const ClockTree tree = make_benchmark(spec_by_name("s15850"), lib);
  const ModeSet modes = ModeSet::single(1);

  WaveMinOptions opts;
  const std::uint64_t base =
      ck::options_fingerprint(opts, tree, lib, modes);
  EXPECT_EQ(ck::options_fingerprint(opts, tree, lib, modes), base);

  WaveMinOptions changed = opts;
  changed.kappa = 25.0;
  EXPECT_NE(ck::options_fingerprint(changed, tree, lib, modes), base);

  // Budget / threads / metrics knobs change how much gets solved, never
  // what a solved zone contains — they must NOT invalidate a resume.
  WaveMinOptions harmless = opts;
  harmless.threads = 8;
  harmless.budget.deadline_ms = 1000.0;
  harmless.collect_metrics = true;
  harmless.checkpoint_path = "x.wmck";
  harmless.seed = 7;
  EXPECT_EQ(ck::options_fingerprint(harmless, tree, lib, modes), base);
}

// ------------------------------------------------------------- end-to-end

TEST(Checkpoint, ResumeReproducesBitIdenticalResults) {
  const CellLibrary lib = CellLibrary::nangate45_like();
  const Characterizer chr{lib};
  const std::string path = temp_path("ck_resume.wmck");

  WaveMinOptions opts;
  opts.checkpoint_path = path;
  ClockTree t1 = make_benchmark(spec_by_name("s15850"), lib);
  const WaveMinResult r1 = clk_wavemin(t1, lib, chr, opts);
  ASSERT_TRUE(r1.success);
  EXPECT_EQ(r1.report.resumed_zones, 0u);

  WaveMinOptions resume;
  resume.resume_path = path;
  ClockTree t2 = make_benchmark(spec_by_name("s15850"), lib);
  const WaveMinResult r2 = clk_wavemin(t2, lib, chr, resume);
  ASSERT_TRUE(r2.success);
  EXPECT_GT(r2.report.resumed_zones, 0u);

  // Bit-identical: same chosen intersection, same peak, same tree.
  EXPECT_EQ(r2.model_peak, r1.model_peak);
  EXPECT_EQ(r2.chosen_dof, r1.chosen_dof);
  EXPECT_EQ(tree_to_string(t2), tree_to_string(t1));
  std::remove(path.c_str());
}

// Zone sharding (docs/serving.md "Worker pool"): shard runs solve
// disjoint stripes, the merge preloads every shard checkpoint — the
// result must be bit-identical to a monolithic run, with the merge
// finding every owned zone already memoized.
TEST(Checkpoint, ShardMergeBitIdenticalToMonolithicRun) {
  const CellLibrary lib = CellLibrary::nangate45_like();
  const Characterizer chr{lib};
  constexpr int kShards = 3;

  ClockTree mono = make_benchmark(spec_by_name("s15850"), lib);
  const WaveMinResult r1 = clk_wavemin(mono, lib, chr, WaveMinOptions{});
  ASSERT_TRUE(r1.success);
  EXPECT_FALSE(r1.sharded);

  std::vector<std::string> shard_cks;
  for (int k = 0; k < kShards; ++k) {
    WaveMinOptions so;
    so.shard_count = kShards;
    so.shard_index = k;
    so.checkpoint_path =
        temp_path(("ck_shard" + std::to_string(k) + ".wmck").c_str());
    shard_cks.push_back(so.checkpoint_path);
    ClockTree t = make_benchmark(spec_by_name("s15850"), lib);
    const std::string before = tree_to_string(t);
    const WaveMinResult rs = clk_wavemin(t, lib, chr, so);
    ASSERT_TRUE(rs.success);
    EXPECT_TRUE(rs.sharded);
    // A shard run never applies an assignment.
    EXPECT_EQ(tree_to_string(t), before);
    EXPECT_TRUE(rs.zone_peaks.empty());
  }

  WaveMinOptions mo;
  mo.shard_count = kShards;  // shard_index stays -1: merge run
  mo.resume_paths = shard_cks;
  ClockTree merged = make_benchmark(spec_by_name("s15850"), lib);
  const WaveMinResult r2 = clk_wavemin(merged, lib, chr, mo);
  ASSERT_TRUE(r2.success);
  EXPECT_FALSE(r2.sharded);
  EXPECT_GT(r2.report.resumed_zones, 0u);

  EXPECT_EQ(r2.model_peak, r1.model_peak);
  EXPECT_EQ(r2.chosen_dof, r1.chosen_dof);
  EXPECT_EQ(r2.zone_peaks, r1.zone_peaks);
  EXPECT_EQ(tree_to_string(merged), tree_to_string(mono));
  for (const std::string& p : shard_cks) std::remove(p.c_str());
}

// A stripe listed in identity_shards is never solved: its zones land on
// the ladder bottom and the merge completes degraded instead of
// failing — the serving layer's poisoned-shard recovery path.
TEST(Checkpoint, IdentityShardsDegradeInsteadOfFailing) {
  const CellLibrary lib = CellLibrary::nangate45_like();
  const Characterizer chr{lib};

  WaveMinOptions mo;
  mo.shard_count = 2;  // merge with shard 1 given up on
  mo.identity_shards = {1};
  ClockTree t = make_benchmark(spec_by_name("s15850"), lib);
  const WaveMinResult r = clk_wavemin(t, lib, chr, mo);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(r.report.degraded());
  std::size_t identity = 0;
  for (const auto& zr : r.report.zones) {
    if (zr.ladder == LadderLevel::Identity) ++identity;
  }
  EXPECT_GT(identity, 0u);
}

TEST(Checkpoint, ResumeRejectsCheckpointFromDifferentDesign) {
  const CellLibrary lib = CellLibrary::nangate45_like();
  const Characterizer chr{lib};
  const std::string path = temp_path("ck_wrongdesign.wmck");

  WaveMinOptions opts;
  opts.checkpoint_path = path;
  ClockTree t1 = make_benchmark(spec_by_name("s15850"), lib);
  ASSERT_TRUE(clk_wavemin(t1, lib, chr, opts).success);

  // Same options, different design: the fingerprint must not match.
  WaveMinOptions resume;
  resume.resume_path = path;
  ClockTree other = make_benchmark(spec_by_name("s13207"), lib);
  EXPECT_THROW(clk_wavemin(other, lib, chr, resume), Error);
  std::remove(path.c_str());
}

} // namespace
} // namespace wm
